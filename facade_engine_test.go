package rodsp_test

import (
	"testing"
	"time"

	"rodsp"
)

func TestEngineFacadeEndToEnd(t *testing.T) {
	b := rodsp.NewBuilder()
	in := b.Input("I")
	s := b.Map("m1", 0.0005, in)
	b.Map("m2", 0.0005, s)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	plan, _, _, err := rodsp.Place(g, caps, rodsp.Config{Selector: rodsp.SelectMaxPlaneDistance})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := rodsp.StartEngine(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	inputNodes := rodsp.EngineInputNodes(g, plan)
	dests := inputNodes[g.Inputs()[0]]
	if len(dests) == 0 {
		t.Fatal("no destination nodes for the input stream")
	}
	addrs := cluster.Addrs()
	src := &rodsp.EngineSource{
		Stream: g.Inputs()[0],
		Trace:  rodsp.NewTrace("const", 1, []float64{100, 100}),
		Addrs:  []string{addrs[dests[0]]},
	}
	injected, err := src.Run(700*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if injected < 40 {
		t.Fatalf("injected only %d tuples", injected)
	}
	time.Sleep(150 * time.Millisecond)
	count, _, _, _, _ := cluster.Collector.LatencyStats()
	if count < injected/2 {
		t.Fatalf("collector saw %d of %d", count, injected)
	}
	// Live migration through the façade.
	dst := 1 - plan.NodeOf[1]
	if err := cluster.MoveOperator(g, plan, 1, dst, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if plan.NodeOf[1] != dst {
		t.Fatal("façade migration did not update the plan")
	}
	sts, err := cluster.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("stats for %d nodes", len(sts))
	}
}

func TestPresetTracesFacade(t *testing.T) {
	ps := rodsp.PresetTraces(1)
	if len(ps) != 3 {
		t.Fatalf("%d presets", len(ps))
	}
	for _, tr := range ps {
		if tr.Len() == 0 || tr.CV() <= 0 {
			t.Fatalf("preset %s malformed", tr.Name)
		}
	}
	tr := rodsp.NewTrace("x", 0.5, []float64{1, 2, 3})
	if tr.Duration() != 1.5 {
		t.Fatalf("NewTrace duration %g", tr.Duration())
	}
}

func TestRebalanceFacadeTypes(t *testing.T) {
	// The simulator's dynamic mode is reachable through the façade aliases.
	b := rodsp.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", 0.003, 1, in)
	b.Delay("b", 0.003, 1, s)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rodsp.Simulate(rodsp.SimConfig{
		Graph:      g,
		NodeOf:     []int{0, 0},
		Capacities: []float64{1, 1},
		Sources: map[rodsp.StreamID]*rodsp.Trace{
			g.Inputs()[0]: rodsp.NewTrace("const", 1, []float64{120, 120}),
		},
		Duration: 60,
		Rebalance: &rodsp.RebalanceConfig{
			Period:        5,
			MigrationTime: 0.2,
			Policy:        &rodsp.LLFRebalancePolicy{Tolerance: 0.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalance.Moves == 0 {
		t.Fatal("rebalancer made no moves on an unbalanced start")
	}
}

module rodsp

go 1.22

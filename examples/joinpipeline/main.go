// Join pipeline: a nonlinear workload (time-window joins) handled through
// the Section 6.2 linearization, placed with ROD, deployed onto a real
// localhost-TCP engine cluster, and driven with bursty traces. The engine
// reports per-node utilization and end-to-end latency measured through
// actual sockets.
package main

import (
	"fmt"
	"log"
	"time"

	"rodsp"
)

const (
	numNodes = 3
	meanUtil = 0.5
	driveFor = 4 * time.Second
	speedup  = 30.0 // trace seconds per wall second
)

func main() {
	// Two join queries over four feeds: order/trade matching per venue.
	b := rodsp.NewBuilder()
	var feeds []rodsp.StreamID
	for v := 0; v < 2; v++ {
		orders := b.Input(fmt.Sprintf("orders%d", v))
		trades := b.Input(fmt.Sprintf("trades%d", v))
		feeds = append(feeds, orders, trades)
		fo := b.Filter(fmt.Sprintf("liveOrders%d", v), 0.0004, 0.7, orders)
		ft := b.Filter(fmt.Sprintf("bigTrades%d", v), 0.0004, 0.6, trades)
		j := b.Join(fmt.Sprintf("match%d", v), 0.00003, 0.04, 1.0, fo, ft)
		fills := b.Map(fmt.Sprintf("fills%d", v), 0.0005, j)
		b.Aggregate(fmt.Sprintf("volume%d", v), 0.0006, 0.2, 5, fills)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	caps := make([]float64, numNodes)
	for i := range caps {
		caps[i] = 1
	}
	plan, _, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{}, 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearized model: %d variables for %d input streams (join cuts add the rest)\n",
		lm.D(), g.NumInputs())
	for i := 0; i < plan.N; i++ {
		fmt.Printf("node %d:", i)
		for _, op := range plan.OpsOn(i) {
			fmt.Printf(" %s", g.Op(rodsp.OpID(op)).Name)
		}
		fmt.Println()
	}

	// Mean rates hitting the target mean utilization (joins make the load
	// superlinear, so solve through the nonlinear model).
	means := solveMeanRates(lm, float64(numNodes)*meanUtil)
	fmt.Printf("driving at mean rates %.0f tuples/s per feed (%.0f%% mean load), %gx time compression\n\n",
		means[0], meanUtil*100, speedup)

	cluster, err := rodsp.StartEngine(caps)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Deploy(g, plan, caps); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}

	inputNodes := rodsp.EngineInputNodes(g, plan)
	addrs := cluster.Addrs()
	presets := rodsp.PresetTraces(3)
	done := make(chan error, len(feeds))
	for i, in := range g.Inputs() {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		src := &rodsp.EngineSource{
			Stream:  in,
			Trace:   presets[i%len(presets)].ScaleToMean(means[i] / speedup),
			Addrs:   dests,
			Speedup: speedup,
			MaxRate: 4000,
		}
		go func() {
			_, err := src.Run(driveFor, nil)
			done <- err
		}()
	}
	for range feeds {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	stats, err := cluster.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("node %d: utilization=%.3f queue=%d processed=%d\n",
			s.NodeID, s.Utilization, s.QueueLen, s.Injected)
	}
	count, mean, p95, p99, _ := cluster.Collector.LatencyStats()
	fmt.Printf("sink tuples=%d, latency mean=%.1fms p95=%.1fms p99=%.1fms\n",
		count, mean*1000, p95*1000, p99*1000)
}

// solveMeanRates finds the uniform per-feed mean rate reaching targetLoad
// total CPU-seconds/second by bisection over the nonlinear model.
func solveMeanRates(lm *rodsp.LoadModel, targetLoad float64) []float64 {
	d := len(lm.G.Inputs())
	loadAt := func(r float64) float64 {
		rates := make([]float64, d)
		for i := range rates {
			rates[i] = r
		}
		x, err := lm.ResolveVars(rates)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, l := range lm.Loads(x) {
			sum += l
		}
		return sum
	}
	lo, hi := 0.0, 1.0
	for loadAt(hi) < targetLoad {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if loadAt(mid) < targetLoad {
			lo = mid
		} else {
			hi = mid
		}
	}
	rates := make([]float64, d)
	for i := range rates {
		rates[i] = hi
	}
	return rates
}

// Traffic monitor: the paper's aggregation-heavy network-monitoring
// workload, placed with ROD and with Largest-Load-First, then driven with
// bursty self-similar traces in the discrete-event simulator. The feasible
// set difference turns into an end-to-end latency difference once load
// peaks arrive.
package main

import (
	"fmt"
	"log"

	"rodsp"
)

const (
	numLinks = 4
	numNodes = 3
	meanUtil = 0.75
	simSecs  = 240.0
)

func main() {
	g := buildMonitoringQuery()
	caps := make([]float64, numNodes)
	for i := range caps {
		caps[i] = 1
	}

	rodPlan, _, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{}, 4000)
	if err != nil {
		log.Fatal(err)
	}

	// Scale the bursty preset traces so the MEAN system load is meanUtil —
	// the peaks will go well beyond it.
	traces, means := scaledTraces(lm, float64(numNodes)*meanUtil)
	llfPlan, err := rodsp.PlaceLLF(lm, caps, means)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring %d links on %d nodes, mean load %.0f%%\n\n", numLinks, numNodes, meanUtil*100)
	for name, plan := range map[string]*rodsp.Plan{"ROD": rodPlan, "LLF": llfPlan} {
		ratio, err := rodsp.FeasibleRatio(plan, lm, caps, 6000)
		if err != nil {
			log.Fatal(err)
		}
		res := simulate(g, plan, caps, traces)
		fmt.Printf("%-4s feasible-ratio=%.3f  p50=%.1fms p95=%.1fms p99=%.1fms  maxUtil=%.2f backlog=%v\n",
			name, ratio,
			res.LatencyP50*1000, res.LatencyP95*1000, res.LatencyP99*1000,
			res.MaxUtilization(), res.Backlog)
	}
}

// buildMonitoringQuery assembles per-link pipelines plus a global roll-up.
func buildMonitoringQuery() *rodsp.Graph {
	b := rodsp.NewBuilder()
	var counters []rodsp.StreamID
	for l := 0; l < numLinks; l++ {
		link := b.Input(fmt.Sprintf("link%d", l))
		valid := b.Filter(fmt.Sprintf("valid%d", l), 0.0003, 0.85, link)
		fields := b.Map(fmt.Sprintf("fields%d", l), 0.0004, valid)
		cnt := b.Aggregate(fmt.Sprintf("count%d", l), 0.0005, 0.10, 5, fields)
		hh := b.Filter(fmt.Sprintf("heavy%d", l), 0.0003, 0.08, fields)
		b.Map(fmt.Sprintf("alert%d", l), 0.0002, hh)
		counters = append(counters, cnt)
	}
	merged := b.Union("merge", 0.0001, counters...)
	roll := b.Aggregate("rollup", 0.0008, 0.2, 60, merged)
	b.Filter("top", 0.0003, 0.3, roll)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// scaledTraces gives every link a bursty preset trace scaled so the mean
// total load equals targetLoad CPU-seconds/second.
func scaledTraces(lm *rodsp.LoadModel, targetLoad float64) ([]*rodsp.Trace, []float64) {
	presets := rodsp.PresetTraces(7)
	// Total load per unit mean rate on every stream:
	ones := make([]float64, numLinks)
	for i := range ones {
		ones[i] = 1
	}
	x, err := lm.ResolveVars(ones)
	if err != nil {
		log.Fatal(err)
	}
	perUnit := 0.0
	for _, l := range lm.Loads(x) {
		perUnit += l
	}
	mean := targetLoad / perUnit
	traces := make([]*rodsp.Trace, numLinks)
	means := make([]float64, numLinks)
	for i := range traces {
		traces[i] = presets[i%len(presets)].ScaleToMean(mean)
		means[i] = mean
	}
	return traces, means
}

func simulate(g *rodsp.Graph, plan *rodsp.Plan, caps []float64, traces []*rodsp.Trace) *rodsp.SimResult {
	sources := map[rodsp.StreamID]*rodsp.Trace{}
	for i, in := range g.Inputs() {
		sources[in] = traces[i]
	}
	res, err := rodsp.Simulate(rodsp.SimConfig{
		Graph:      g,
		NodeOf:     plan.NodeOf,
		Capacities: caps,
		Sources:    sources,
		Duration:   simSecs,
		WarmUp:     simSecs * 0.1,
		Seed:       1,
		MaxEvents:  50_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// Compliance: the wide query graphs the paper's financial-services
// discussion motivates — many narrow rule pipelines hanging off shared
// preprocessing (their 3-rule proof of concept needed 25 operators; a full
// application has hundreds). Wide graphs are where resilient placement
// shines: every rule's load can be spread, and ROD also demonstrates the
// Section 6.1 lower-bound extension when one feed has a guaranteed floor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rodsp"
)

const (
	numFeeds = 3
	numRules = 40
	numNodes = 6
)

func main() {
	g := buildRuleGraph()
	caps := make([]float64, numNodes)
	for i := range caps {
		caps[i] = 1
	}
	fmt.Printf("compliance graph: %d operators over %d feeds, %d rules\n\n",
		g.NumOps(), numFeeds, numRules)

	plan, report, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{}, 4000)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := rodsp.FeasibleRatio(plan, lm, caps, 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROD:        ratio-to-ideal %.3f, min plane distance %.3f\n", ratio, report.MinPlaneDistance)

	// Baselines tuned for one observed rate mix.
	observed := []float64{500, 300, 100}
	for name, place := range map[string]func() (*rodsp.Plan, error){
		"LLF":       func() (*rodsp.Plan, error) { return rodsp.PlaceLLF(lm, caps, observed) },
		"Connected": func() (*rodsp.Plan, error) { return rodsp.PlaceConnected(g, lm, caps, observed) },
		"Random":    func() (*rodsp.Plan, error) { return rodsp.PlaceRandom(lm, numNodes, 3), nil },
	} {
		p, err := place()
		if err != nil {
			log.Fatal(err)
		}
		r, err := rodsp.FeasibleRatio(p, lm, caps, 8000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  ratio-to-ideal %.3f\n", name+":", r)
	}

	// Section 6.1: the exchange feed (feed 0) never drops below 400/s while
	// the market is open. Optimizing for {R >= B} buys a larger usable set.
	floor := []float64{400, 0, 0}
	floorPlan, _, _, err := rodsp.PlaceBest(g, caps, rodsp.Config{LowerBound: floor}, 4000)
	if err != nil {
		log.Fatal(err)
	}
	base, err := rodsp.FeasibleRatioFrom(plan, lm, caps, floor, 8000)
	if err != nil {
		log.Fatal(err)
	}
	aware, err := rodsp.FeasibleRatioFrom(floorPlan, lm, caps, floor, 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith feed-0 floor %v (restricted workload set):\n", floor)
	fmt.Printf("  base ROD plan:        %.3f of the restricted region feasible\n", base)
	fmt.Printf("  floor-aware ROD plan: %.3f\n", aware)
}

func buildRuleGraph() *rodsp.Graph {
	rng := rand.New(rand.NewSource(11))
	b := rodsp.NewBuilder()
	shared := make([]rodsp.StreamID, numFeeds)
	for f := 0; f < numFeeds; f++ {
		in := b.Input(fmt.Sprintf("feed%d", f))
		norm := b.Map(fmt.Sprintf("normalize%d", f), 0.0004, in)
		shared[f] = b.Map(fmt.Sprintf("enrich%d", f), 0.0005, norm)
	}
	for r := 0; r < numRules; r++ {
		src := shared[rng.Intn(numFeeds)]
		match := b.Filter(fmt.Sprintf("rule%d.match", r), 0.0002+rng.Float64()*0.0004, 0.1+rng.Float64()*0.5, src)
		window := b.Aggregate(fmt.Sprintf("rule%d.window", r), 0.0003+rng.Float64()*0.0005, 0.1+rng.Float64()*0.3, 10, match)
		b.Filter(fmt.Sprintf("rule%d.breach", r), 0.0002, 0.05+rng.Float64()*0.2, window)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

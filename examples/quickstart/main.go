// Quickstart: build a small monitoring query, place it with ROD, and see
// why the resilient placement beats a load-balanced one when the input mix
// shifts.
package main

import (
	"fmt"
	"log"

	"rodsp"
)

func main() {
	// A two-stream query graph: packet analysis and connection tracking.
	b := rodsp.NewBuilder()
	pkts := b.Input("packets")
	conns := b.Input("connections")

	syn := b.Filter("syn", 0.0004, 0.30, pkts)
	b.Aggregate("synRate", 0.0006, 0.05, 5, syn)
	big := b.Filter("elephants", 0.0005, 0.10, pkts)
	b.Map("tagFlows", 0.0004, big)

	open := b.Filter("opened", 0.0005, 0.60, conns)
	b.Aggregate("connRate", 0.0006, 0.05, 5, open)
	b.Filter("suspicious", 0.0007, 0.05, open)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	caps := []float64{1, 1} // two unit-capacity nodes
	plan, report, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{}, 4000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ROD placement:")
	for i := 0; i < plan.N; i++ {
		fmt.Printf("  node %d:", i)
		for _, op := range plan.OpsOn(i) {
			fmt.Printf(" %s", g.Op(rodsp.OpID(op)).Name)
		}
		fmt.Println()
	}
	rodRatio, err := rodsp.FeasibleRatio(plan, lm, caps, 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible-set ratio to ideal: %.3f (min plane distance %.3f)\n\n",
		rodRatio, report.MinPlaneDistance)

	// The classic alternative: balance the load observed "yesterday" —
	// packets dominating at 800/s, few connections.
	observed := []float64{800, 100}
	llf, err := rodsp.PlaceLLF(lm, caps, observed)
	if err != nil {
		log.Fatal(err)
	}
	llfRatio, err := rodsp.FeasibleRatio(llf, lm, caps, 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LLF (tuned for rates %v) ratio to ideal: %.3f\n\n", observed, llfRatio)

	// Now the workload shifts: a connection flood. Who survives?
	shifted := []float64{200, 1000}
	for name, p := range map[string]*rodsp.Plan{"ROD": plan, "LLF": llf} {
		ok, err := rodsp.FeasibleAt(p, lm, caps, shifted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("at shifted rates %v, %s plan feasible: %v\n", shifted, name, ok)
	}
}

// Live migration: the dynamic-movement capability the paper contrasts ROD
// against, demonstrated on the real TCP engine. A hot operator is moved
// between nodes mid-run without stopping the pipeline; the move costs a
// state-transfer stall on both nodes — the overhead that makes reactive
// migration too slow for short bursts (the paper reports a few hundred
// milliseconds per move in Borealis).
package main

import (
	"fmt"
	"log"
	"time"

	"rodsp"
)

func main() {
	// A simple pipeline whose second stage is expensive.
	b := rodsp.NewBuilder()
	in := b.Input("events")
	parsed := b.Map("parse", 0.0005, in)
	scored := b.Delay("score", 0.004, 1, parsed) // the hot operator
	b.Aggregate("report", 0.0008, 0.1, 5, scored)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	caps := []float64{1, 1}
	// Deliberately start with everything on node 0.
	plan, _, _, err := rodsp.Place(g, caps, rodsp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for op := range plan.NodeOf {
		plan.NodeOf[op] = 0
	}

	cluster, err := rodsp.StartEngine(caps)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Deploy(g, plan, caps); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	go func() {
		src := &rodsp.EngineSource{
			Stream: g.Inputs()[0],
			Trace:  rodsp.NewTrace("steady", 1, []float64{150, 150, 150, 150, 150}),
			Addrs:  []string{cluster.Nodes[0].Addr()},
		}
		if _, err := src.Run(4*time.Second, stop); err != nil {
			log.Fatal(err)
		}
	}()

	show := func(when string) {
		sts, err := cluster.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s node0 util=%.2f queue=%-4d  node1 util=%.2f queue=%d\n",
			when, sts[0].Utilization, sts[0].QueueLen, sts[1].Utilization, sts[1].QueueLen)
	}

	time.Sleep(1 * time.Second)
	show("before move:")

	// Move the hot "score" operator (id 1) to node 1, paying a 150 ms
	// state-transfer stall on both nodes.
	fmt.Println("moving 'score' to node 1 (150ms stall on both nodes)...")
	if err := cluster.MoveOperator(g, plan, 1, 1, 150*time.Millisecond); err != nil {
		log.Fatal(err)
	}

	time.Sleep(2 * time.Second)
	show("after move:")
	close(stop)
	time.Sleep(200 * time.Millisecond)

	count, mean, p95, _, _ := cluster.Collector.LatencyStats()
	fmt.Printf("pipeline never stopped: %d report tuples, latency mean=%.1fms p95=%.1fms\n",
		count, mean*1000, p95*1000)
}

// Command rodplace reads a query graph (JSON) and prints a placement plan
// with its resiliency metrics.
//
// Usage:
//
//	rodplace -graph g.json -nodes 4 [-algo rod|rod-best|llf|connected|random] \
//	         [-capacities 1,1,2,2] [-rates 10,20] [-lower 5,0] [-samples 4000]
//
// With -graph - the graph is read from stdin. Use -demo to print a sample
// graph JSON instead of placing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rodsp/internal/cliutil"
	"rodsp/internal/cluster"
	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph JSON file ('-' for stdin)")
		nodes      = flag.Int("nodes", 2, "number of nodes (used when -capacities is empty)")
		capsFlag   = flag.String("capacities", "", "comma-separated node capacities")
		algo       = flag.String("algo", "rod-best", "rod | rod-best | rod-clustered | llf | connected | random")
		ratesFlag  = flag.String("rates", "", "comma-separated average input rates (llf/connected)")
		lowerFlag  = flag.String("lower", "", "comma-separated workload lower bound (rod)")
		samples    = flag.Int("samples", 4000, "QMC samples for evaluation")
		seed       = flag.Int64("seed", 1, "seed for randomized choices")
		demo       = flag.Bool("demo", false, "print a sample graph JSON and exit")
		jsonOutput = flag.Bool("plan-json", false, "print the plan as JSON node assignments")
		ascii      = flag.Bool("ascii", false, "draw the normalized feasible region (2-variable models only)")
		describe   = flag.Bool("describe", false, "print the graph structure and linearized load model")
	)
	flag.Parse()

	if *demo {
		printDemo()
		return
	}
	if *graphPath == "" {
		fail("missing -graph (use -demo for a sample)")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		fail(err.Error())
	}
	caps, err := cliutil.ParseCaps(*capsFlag, *nodes)
	if err != nil {
		fail(err.Error())
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		fail(err.Error())
	}
	if *describe {
		fmt.Print(query.Describe(g))
		fmt.Print(query.DescribeLoadModel(lm))
	}

	var plan *placement.Plan
	switch *algo {
	case "rod-clustered":
		res, err := cluster.Sweep(lm, caps, core.Config{Selector: core.SelectMaxPlaneDistance, Seed: *seed}, []float64{0.5, 1, 2, 4})
		if err != nil {
			fail(err.Error())
		}
		plan = res.Plan
		fmt.Printf("clustering: %d clusters via %s at threshold %g (plane distance %.4f)\n",
			res.NumCluster, res.Strategy, res.Threshold, res.PlaneDist)
	case "rod":
		cfg := core.Config{Selector: core.SelectMaxPlaneDistance, Seed: *seed, Graph: g}
		if *lowerFlag != "" {
			lb, err := cliutil.ParseVec(*lowerFlag, lm.D())
			if err != nil {
				fail(err.Error())
			}
			cfg.LowerBound = lb
		}
		plan, _, err = core.Place(lm.Coef, caps, cfg)
	case "rod-best":
		cfg := core.Config{Seed: *seed, Graph: g}
		if *lowerFlag != "" {
			lb, perr := cliutil.ParseVec(*lowerFlag, lm.D())
			if perr != nil {
				fail(perr.Error())
			}
			cfg.LowerBound = lb
		}
		plan, _, err = core.PlaceBest(lm.Coef, caps, cfg, *samples)
	case "llf", "connected":
		rates, perr := cliutil.ParseVec(*ratesFlag, lm.D())
		if perr != nil {
			fail("-rates required for " + *algo + ": " + perr.Error())
		}
		if *algo == "llf" {
			plan, err = placement.LLF(lm.Coef, caps, rates)
		} else {
			plan, err = placement.Connected(g, lm.Coef, caps, rates)
		}
	case "random":
		plan = placement.Random(g.NumOps(), len(caps), newRand(*seed))
	default:
		fail("unknown -algo " + *algo)
	}
	if err != nil {
		fail(err.Error())
	}

	if *jsonOutput {
		fmt.Print("[")
		for j, n := range plan.NodeOf {
			if j > 0 {
				fmt.Print(",")
			}
			fmt.Print(n)
		}
		fmt.Println("]")
		return
	}

	fmt.Printf("graph: %d operators, %d input streams, %d model variables (%d cuts)\n",
		g.NumOps(), g.NumInputs(), lm.D(), lm.NumCuts())
	for i := 0; i < plan.N; i++ {
		ops := plan.OpsOn(i)
		names := make([]string, len(ops))
		for k, op := range ops {
			names[k] = g.Op(query.OpID(op)).Name
		}
		fmt.Printf("node %d (capacity %g): %s\n", i, caps[i], strings.Join(names, ", "))
	}
	ratio, err := placement.Evaluate(plan, lm.Coef, caps, *samples)
	if err != nil {
		fail(err.Error())
	}
	w, err := placement.WeightsOf(plan, lm.Coef, caps)
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("feasible-set ratio to ideal: %.4f\n", ratio)
	fmt.Printf("min plane distance: %.4f (ideal %.4f)\n",
		feasible.MinPlaneDistance(w), feasible.IdealPlaneDistance(lm.D()))
	fmt.Printf("min axis distances: %v\n", feasible.MinAxisDistances(w))
	if *ascii {
		if lm.D() != 2 {
			fmt.Println("(-ascii needs a 2-variable model)")
		} else {
			fmt.Println("normalized feasible region ('#' feasible, '·' wasted ideal):")
			fmt.Print(feasible.RenderASCII(w, 48, 20))
		}
	}
}

func loadGraph(path string) (*query.Graph, error) {
	if path == "-" {
		return query.ReadJSON(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return query.ReadJSON(f)
}

func printDemo() {
	b := query.NewBuilder()
	pkts := b.Input("packets")
	conns := b.Input("connections")
	syn := b.Filter("syn", 0.0002, 0.3, pkts)
	b.Aggregate("synCount", 0.0004, 0.05, 5, syn)
	big := b.Filter("elephant", 0.0003, 0.1, pkts)
	b.Map("tagged", 0.0002, big)
	j := b.Join("matchConn", 0.00005, 0.02, 1.0, big, conns)
	b.Aggregate("flowStats", 0.0005, 0.1, 10, j)
	g, err := b.Build()
	if err != nil {
		fail(err.Error())
	}
	if err := query.WriteJSON(os.Stdout, g); err != nil {
		fail(err.Error())
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rodplace:", msg)
	os.Exit(1)
}

// Command rodload is the engine's sustained-throughput benchmark harness:
// a closed+open-loop load generator over a real loopback cluster (≥ 2 nodes,
// one TCP hop between them plus the collector hop) that measures what the
// data plane actually sustains, where its feasibility knee sits, and what
// end-to-end latency looks like at half the knee rate.
//
// Usage:
//
//	rodload [-quick] [-nodes N] [-batch N] [-out FILE]
//	        [-baseline FILE] [-threshold F] [-mode all|legacy|batched]
//	        [-cores 1,4,16] [-cpuprofile FILE] [-memprofile FILE]
//	        [-trace-sample N] [-slo SPEC] [-report FILE] [-trace-out FILE]
//
// Per mode it runs three phases against a fresh cluster:
//
//  1. closed loop — blast tuples as fast as the source can push and read the
//     sustained tuples/sec off the sink collector (the bounded ingress queue
//     sheds the excess, so the sink rate is the pipeline's drain capacity);
//  2. open loop — sweep target rates up from a fraction of the sustained
//     rate; the knee is the highest target the pipeline achieves within 90%;
//  3. latency — rerun at 50% of the knee and report p50/p99 end-to-end
//     latency from the collector's uniform reservoir.
//
// The "legacy" mode forces BatchMax=1 and per-tuple wire frames (the
// pre-batching hot path); "batched" uses batch frames and lock-amortized
// runs; "sharded" drives keyed tuples through a hot operator split into one
// keyed replica per node (splitter → replicas → merge), measuring the
// partition-table routing path under scale-out. Results are written as
// machine-readable JSON (BENCH_engine.json by convention, committed and
// uploaded by CI like BENCH_placement.json).
//
// After the mode phases, rodload sweeps the multicore scaling matrix: for
// each core count in -cores (default 1,4,16, clamped nowhere — a 4-core
// sweep on a 1-core host honestly records what timesharing delivers) it
// pins GOMAXPROCS, builds the cluster with one worker lane per core
// (NodeConfig.Workers = cores), and records the closed-loop sustained
// throughput of the batched and sharded topologies as one keyed
// (cores, mode) matrix cell. -cores none skips the sweep; -quick sweeps
// only the current GOMAXPROCS.
//
// With -baseline, rodload exits non-zero on regression: when the baseline
// carries a matrix, every (cores, mode) cell present in both records is
// gated at threshold × the baseline cell; older baselines without a matrix
// fall back to the batched-mode sustained-throughput gate.
//
// -cpuprofile captures a pprof CPU profile of the first closed-loop blast
// phase (the hottest code path rodload exercises); -memprofile writes a
// heap profile at exit.
//
// Tracing is armed for every phase at 1-in-trace-sample per-stream sampling
// (default 8192; 0 disables), so the committed throughput numbers measure
// the hot path with trace capture compiled in and live. The per-stage
// latency decomposition (transit/queue/service/outbox/deliver) is reset
// before the latency probe so it describes the same steady state as the
// p50/p99 quantiles; -trace-out streams the sampled span events as JSON
// lines for rodtrace. With -slo the latency-probe results of the batched
// mode (or the only mode run) are graded pass/degraded/fail — shed and drop
// counts are deltas over the probe window only, since the closed-loop blast
// phase sheds by design — and -report writes the machine-readable
// obs.RunReport that CI archives and gates on (exit 1 on grade "fail").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// ModeResult is one mode's measurements.
type ModeResult struct {
	Name     string `json:"name"`
	BatchMax int    `json:"batch_max"`
	// Sharded marks the keyed hot-operator topology: the single middle
	// operator is split into one replica per node and tuples carry keys.
	Sharded bool `json:"sharded,omitempty"`

	SustainedTPS float64 `json:"sustained_tps"` // closed-loop sink rate
	KneeTPS      float64 `json:"knee_tps"`      // open-loop feasibility knee

	// Latency quantiles (milliseconds) measured open-loop at LatencyTPS —
	// 50% of the first (baseline) mode's knee rate, so every mode's
	// quantiles describe the same injection rate and compare directly.
	LatencyTPS float64 `json:"latency_probe_tps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`

	SinkTuples int64 `json:"sink_tuples"` // total sink deliveries this mode

	// Latency-probe resilience deltas: tuples shed at ingress queues and
	// dropped in flight (outbox overflow/faults + no-route) during phase 3
	// only — the closed-loop blast phase sheds by design, so the SLO's
	// zero-shed/max-drops gates judge the steady-state probe window.
	Shed    int64 `json:"shed"`
	Dropped int64 `json:"dropped"`

	// Stages is the phase-3 per-stage latency decomposition from sampled
	// trace capture (empty when -trace-sample 0).
	Stages []obs.StageReport `json:"stages,omitempty"`
}

// MatrixCell is one (cores, mode) cell of the multicore scaling matrix:
// closed-loop sustained throughput at GOMAXPROCS=Cores with one worker
// lane per core. The (Cores, Mode) pair keys the per-cell CI regression
// gate.
type MatrixCell struct {
	Cores        int     `json:"cores"`
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers"`
	SustainedTPS float64 `json:"sustained_tps"`
}

// Result is the whole benchmark record (BENCH_engine.json).
type Result struct {
	Bench      string       `json:"bench"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"` // physical cores of the bench host
	Nodes      int          `json:"nodes"`
	Quick      bool         `json:"quick"`
	WarmupSec  float64      `json:"warmup_seconds"`
	MeasureSec float64      `json:"measure_seconds"`
	Modes      []ModeResult `json:"modes"`
	Matrix     []MatrixCell `json:"matrix,omitempty"`
	Speedup    float64      `json:"speedup,omitempty"` // batched / legacy sustained
}

type config struct {
	nodes      int
	batch      int
	warmup     time.Duration
	measure    time.Duration
	blastRate  float64
	traceEvery int64     // 1-in-N per-stream span sampling (0 = tracing off)
	traceW     io.Writer // JSONL span sink for -trace-out (nil = ring only)

	// keys stamps each injected tuple's partition key (sharded mode only;
	// nil leaves tuples unkeyed).
	keys func() uint64
}

func main() {
	quick := flag.Bool("quick", false, "short CI run (smaller warmup/measure windows)")
	nodes := flag.Int("nodes", 2, "cluster size (>= 2 so tuples cross a real TCP hop)")
	batch := flag.Int("batch", engine.DefaultBatchMax, "BatchMax for the batched mode (>= 64 for the committed numbers)")
	mode := flag.String("mode", "all", "which modes to run: all|legacy|batched|sharded")
	out := flag.String("out", "BENCH_engine.json", "write the JSON record here ('' = stdout only)")
	baseline := flag.String("baseline", "", "compare against this committed BENCH_engine.json and fail on regression")
	threshold := flag.Float64("threshold", 0.5, "minimum fraction of the baseline's batched sustained_tps")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "per-phase warmup window")
	measure := flag.Duration("measure", 2*time.Second, "per-phase measurement window")
	blast := flag.Float64("blast-rate", 3e6, "closed-loop injection target (tuples/sec; far above capacity)")
	traceSample := flag.Int64("trace-sample", 8192, "trace 1 in N tuples per stream (0 disables tracing)")
	sloFlag := flag.String("slo", "", "SLO spec to grade the run against, e.g. p99=250ms,zero-shed,max-drops=100")
	report := flag.String("report", "", "write the graded obs.RunReport JSON here")
	traceOut := flag.String("trace-out", "", "append sampled span events as JSON lines here (for rodtrace -spans)")
	coresFlag := flag.String("cores", "", "core counts for the scaling matrix, comma-separated (default 1,4,16; -quick defaults to the current GOMAXPROCS; 'none' skips the sweep)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the first closed-loop blast phase here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit here")
	flag.Parse()

	if *nodes < 2 {
		fail(fmt.Errorf("need -nodes >= 2, got %d", *nodes))
	}
	if *traceSample < 0 {
		fail(fmt.Errorf("need -trace-sample >= 0, got %d", *traceSample))
	}
	slo := obs.SLOSpec{MaxDrops: -1}
	if *sloFlag != "" {
		var err error
		if slo, err = obs.ParseSLOSpec(*sloFlag); err != nil {
			fail(err)
		}
	}
	cfg := config{
		nodes:      *nodes,
		batch:      *batch,
		warmup:     *warmup,
		measure:    *measure,
		blastRate:  *blast,
		traceEvery: *traceSample,
	}
	if *quick {
		cfg.warmup = 200 * time.Millisecond
		cfg.measure = 600 * time.Millisecond
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cfg.traceW = f
	}

	// Read the baseline up front: -out may overwrite the same file.
	var base *Result
	if *baseline != "" {
		b, err := readResult(*baseline)
		if err != nil {
			fail(fmt.Errorf("reading baseline: %w", err))
		}
		base = b
	}

	res := Result{
		Bench:      "engine",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nodes:      cfg.nodes,
		Quick:      *quick,
		WarmupSec:  cfg.warmup.Seconds(),
		MeasureSec: cfg.measure.Seconds(),
	}
	cpuProfilePath = *cpuProfile // consumed by the first blast phase
	latRate := 0.0               // first mode's half-knee becomes every mode's latency probe rate
	for _, m := range modesFor(*mode, cfg.batch) {
		fmt.Fprintf(os.Stderr, "rodload: mode %s (batch=%d)\n", m.Name, m.BatchMax)
		mr, err := runMode(m, cfg, latRate)
		if err != nil {
			fail(err)
		}
		if latRate == 0 {
			latRate = mr.KneeTPS / 2
		}
		res.Modes = append(res.Modes, mr)
		fmt.Fprintf(os.Stderr, "rodload: %-8s sustained %.0f tps, knee %.0f tps, p50 %.2f ms, p99 %.2f ms @ %.0f tps\n",
			m.Name, mr.SustainedTPS, mr.KneeTPS, mr.P50Ms, mr.P99Ms, mr.LatencyTPS)
	}
	if legacy, batched := find(res.Modes, "legacy"), find(res.Modes, "batched"); legacy != nil && batched != nil && legacy.SustainedTPS > 0 {
		res.Speedup = batched.SustainedTPS / legacy.SustainedTPS
		fmt.Fprintf(os.Stderr, "rodload: batched/legacy speedup %.2fx\n", res.Speedup)
	}

	// Multicore scaling matrix: per core count, pin GOMAXPROCS and run the
	// batched and sharded topologies with one worker lane per core, keeping
	// the closed-loop sustained throughput per (cores, mode) cell.
	for _, c := range coresList(*coresFlag, *quick) {
		prev := runtime.GOMAXPROCS(c)
		for _, name := range []string{"batched", "sharded"} {
			m := ModeResult{Name: name, BatchMax: cfg.batch, Sharded: name == "sharded"}
			tps, err := runSustained(m, cfg, c)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				fail(err)
			}
			res.Matrix = append(res.Matrix, MatrixCell{Cores: c, Mode: name, Workers: c, SustainedTPS: tps})
			fmt.Fprintf(os.Stderr, "rodload: matrix %2d-core %-8s sustained %.0f tps\n", c, name, tps)
		}
		runtime.GOMAXPROCS(prev)
	}

	enc, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail(err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *memProfile != "" {
		runtime.GC()
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}

	// Grade the batched mode's latency probe (or the only mode run) against
	// the SLO and write the machine-readable run report CI archives.
	graded := find(res.Modes, "batched")
	if graded == nil && len(res.Modes) > 0 {
		graded = &res.Modes[len(res.Modes)-1]
	}
	grade := obs.GradePass
	if graded != nil && (*report != "" || *sloFlag != "") {
		var reasons []string
		grade, reasons = slo.Grade(graded.P99Ms, graded.Shed, graded.Dropped)
		rep := obs.RunReport{
			Harness: "rodload",
			Grade:   grade,
			Reasons: reasons,
			SLO:     slo,
			Scenario: fmt.Sprintf("mode=%s nodes=%d probe=%.0ftps quick=%v",
				graded.Name, cfg.nodes, graded.LatencyTPS, *quick),
			P50Ms:      graded.P50Ms,
			P99Ms:      graded.P99Ms,
			SinkTuples: graded.SinkTuples,
			Shed:       graded.Shed,
			Drops:      graded.Dropped,
			Stages:     graded.Stages,
		}
		if *report != "" {
			if err := rep.WriteFile(*report); err != nil {
				fail(err)
			}
		}
		msg := "rodload: grade " + grade
		if len(reasons) > 0 {
			msg += " (" + strings.Join(reasons, "; ") + ")"
		}
		fmt.Fprintln(os.Stderr, msg)
	}

	if base != nil {
		if len(base.Matrix) > 0 {
			// Per-(cores, mode) gates: every matrix cell present in both
			// records must hold its floor, so a regression that only shows at
			// one core count (a lock reintroduced on the multi-lane path, say)
			// cannot hide behind a healthy single-core number.
			gated := 0
			for i := range res.Matrix {
				cell := &res.Matrix[i]
				ref := findCell(base.Matrix, cell.Cores, cell.Mode)
				if ref == nil || ref.SustainedTPS <= 0 {
					continue
				}
				floor := ref.SustainedTPS * *threshold
				if cell.SustainedTPS < floor {
					fail(fmt.Errorf("regression: %d-core %s sustained %.0f tps < %.0f (%.0f%% of baseline %.0f)",
						cell.Cores, cell.Mode, cell.SustainedTPS, floor, *threshold*100, ref.SustainedTPS))
				}
				gated++
			}
			if gated == 0 {
				fail(fmt.Errorf("baseline has a scaling matrix but no (cores, mode) cell matches this run (ran -cores none?)"))
			}
			fmt.Fprintf(os.Stderr, "rodload: regression gate ok (%d matrix cells >= %.0f%% of baseline)\n", gated, *threshold*100)
		} else {
			// Pre-matrix baseline: fall back to the batched-mode gate.
			cur := find(res.Modes, "batched")
			ref := find(base.Modes, "batched")
			if cur == nil || ref == nil {
				fail(fmt.Errorf("baseline comparison needs a batched mode in both records"))
			}
			floor := ref.SustainedTPS * *threshold
			if cur.SustainedTPS < floor {
				fail(fmt.Errorf("regression: batched sustained %.0f tps < %.0f (%.0f%% of baseline %.0f)",
					cur.SustainedTPS, floor, *threshold*100, ref.SustainedTPS))
			}
			fmt.Fprintf(os.Stderr, "rodload: regression gate ok (%.0f tps >= %.0f tps floor)\n", cur.SustainedTPS, floor)
		}
	}

	if *sloFlag != "" && grade == obs.GradeFail {
		fail(fmt.Errorf("run graded %s against SLO %s", grade, slo))
	}
}

func modesFor(mode string, batch int) []ModeResult {
	switch mode {
	case "legacy":
		return []ModeResult{{Name: "legacy", BatchMax: 1}}
	case "batched":
		return []ModeResult{{Name: "batched", BatchMax: batch}}
	case "sharded":
		return []ModeResult{{Name: "sharded", BatchMax: batch, Sharded: true}}
	case "all", "":
		return []ModeResult{
			{Name: "legacy", BatchMax: 1},
			{Name: "batched", BatchMax: batch},
			{Name: "sharded", BatchMax: batch, Sharded: true},
		}
	default:
		fail(fmt.Errorf("unknown -mode %q (want all|legacy|batched|sharded)", mode))
		return nil
	}
}

func find(ms []ModeResult, name string) *ModeResult {
	for i := range ms {
		if ms[i].Name == name {
			return &ms[i]
		}
	}
	return nil
}

func findCell(cells []MatrixCell, cores int, mode string) *MatrixCell {
	for i := range cells {
		if cells[i].Cores == cores && cells[i].Mode == mode {
			return &cells[i]
		}
	}
	return nil
}

// coresList resolves -cores into the matrix sweep's core counts.
func coresList(spec string, quick bool) []int {
	if spec == "none" {
		return nil
	}
	if spec == "" {
		if quick {
			return []int{runtime.GOMAXPROCS(0)}
		}
		return []int{1, 4, 16}
	}
	var out []int
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		c, err := strconv.Atoi(p)
		if err != nil || c < 1 {
			fail(fmt.Errorf("bad -cores entry %q (want positive integers or 'none')", p))
		}
		out = append(out, c)
	}
	return out
}

// cpuProfilePath holds the pending -cpuprofile target; the first
// closed-loop blast phase of the run consumes it.
var cpuProfilePath string

// profiledBlast runs one blast-phase measurement, capturing it as a pprof
// CPU profile when -cpuprofile is still pending.
func profiledBlast(f func() (float64, error)) (float64, error) {
	if cpuProfilePath == "" {
		return f()
	}
	path := cpuProfilePath
	cpuProfilePath = ""
	pf, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer pf.Close()
	if err := pprof.StartCPUProfile(pf); err != nil {
		return 0, err
	}
	defer pprof.StopCPUProfile()
	return f()
}

// buildPipeline is the benchmark topology: one input fanned through a chain
// of zero-cost delay operators, one per node, so every tuple crosses
// nodes-1 TCP hops plus the collector hop and the virtual CPU never paces —
// the data plane itself is the bottleneck being measured.
func buildPipeline(nodes int) (*query.Graph, *placement.Plan, []float64) {
	b := query.NewBuilder()
	s := b.Input("load")
	for i := 0; i < nodes; i++ {
		s = b.Delay(fmt.Sprintf("hop%d", i), 0, 1, s)
	}
	g := b.MustBuild()
	assign := make([]int, nodes)
	caps := make([]float64, nodes)
	for i := range assign {
		assign[i] = i
		caps[i] = 1
	}
	plan, err := placement.NewPlan(assign, nodes)
	if err != nil {
		fail(err)
	}
	return g, plan, caps
}

// buildShardedPipeline is the keyed hot-operator topology: one zero-cost
// operator split into keyed replicas spread over the worker nodes, so every
// tuple rides the keyed wire frame, crosses the splitter's partition table,
// and merges back — the scale-out routing path itself is what's being
// measured. The flow stays strictly forward (splitter alone on node 0,
// replicas and merge on nodes 1..n-1): merged tuples must never re-enter
// the ingress queue the closed-loop blast saturates, or they queue behind
// the flood and the sink starves.
func buildShardedPipeline(nodes int) (*query.Graph, *placement.Plan, []float64) {
	k := nodes - 1
	if k < 2 {
		k = 2
	}
	b := query.NewBuilder()
	in := b.Input("load")
	b.Delay("hot", 0, 1, in)
	// Zero shuffle costs, like the unsharded pipeline's zero-cost hops: the
	// virtual CPU must never pace, so the keyed data plane is the bottleneck.
	g, err := query.Shards(b.MustBuild(), 0, query.ShardConfig{K: k})
	if err != nil {
		fail(err)
	}
	groups, err := query.ShardGroups(g)
	if err != nil {
		fail(err)
	}
	assign := make([]int, g.NumOps())
	for i, r := range groups[0].Replicas {
		assign[r] = 1 + i%(nodes-1)
	}
	assign[groups[0].Merge] = nodes - 1
	caps := make([]float64, nodes)
	for i := range caps {
		caps[i] = 1
	}
	plan, err := placement.NewPlan(assign, nodes)
	if err != nil {
		fail(err)
	}
	return g, plan, caps
}

// buildFor builds one mode's topology, arming the keyed-tuple generator on
// cfg for sharded runs (sequential keys sweep the partition table's slots
// uniformly, so the measured rate reflects all replicas in rotation).
func buildFor(m ModeResult, cfg *config) (*query.Graph, *placement.Plan, []float64) {
	if m.Sharded {
		g, plan, caps := buildShardedPipeline(cfg.nodes)
		var n uint64
		cfg.keys = func() uint64 { n++; return n }
		return g, plan, caps
	}
	cfg.keys = nil
	return buildPipeline(cfg.nodes)
}

// runSustained measures only the closed-loop sustained throughput of one
// mode on a fresh cluster with the given worker-lane count — the scaling
// matrix's per-cell measurement, with tracing armed like the full modes.
func runSustained(m ModeResult, cfg config, workers int) (float64, error) {
	g, plan, caps := buildFor(m, &cfg)
	cl, err := engine.StartClusterConfig(caps, engine.NodeConfig{BatchMax: m.BatchMax, Workers: workers})
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		return 0, err
	}
	if err := cl.Start(); err != nil {
		return 0, err
	}
	if cfg.traceEvery > 0 {
		attachObserver(cl, obs.NewEventLog(8192), obs.NewStageSet(obs.NewRegistry()), cfg.traceEvery)
	}
	input := g.Inputs()[0]
	return profiledBlast(func() (float64, error) {
		return measureRate(cl, input, cfg.blastRate, m.BatchMax <= 1, cfg)
	})
}

// runMode measures one wire/hot-path configuration on a fresh cluster.
// latRate pins the latency probe to a rate shared across modes (0 = use
// this mode's own half-knee; the caller passes the first mode's in).
func runMode(m ModeResult, cfg config, latRate float64) (ModeResult, error) {
	g, plan, caps := buildFor(m, &cfg)
	cl, err := engine.StartClusterConfig(caps, engine.NodeConfig{BatchMax: m.BatchMax})
	if err != nil {
		return m, err
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		return m, err
	}
	if err := cl.Start(); err != nil {
		return m, err
	}
	input := g.Inputs()[0]
	legacyWire := m.BatchMax <= 1

	// Arm trace capture for every phase: the committed throughput numbers
	// must include the sampled hot-path cost. The span ring doubles as the
	// -trace-out JSONL source.
	var ev *obs.EventLog
	var stages *obs.StageSet
	if cfg.traceEvery > 0 {
		ev = obs.NewEventLog(8192)
		if cfg.traceW != nil {
			ev.SetWriter(cfg.traceW)
		}
		stages = obs.NewStageSet(obs.NewRegistry())
		attachObserver(cl, ev, stages, cfg.traceEvery)
	}

	// Phase 1 — closed loop: blast far above capacity; the sink rate over
	// the measurement window is the sustained throughput.
	sustained, err := profiledBlast(func() (float64, error) {
		return measureRate(cl, input, cfg.blastRate, legacyWire, cfg)
	})
	if err != nil {
		return m, err
	}
	m.SustainedTPS = sustained

	// Phase 2 — open loop: sweep target rates toward the closed-loop rate;
	// the knee is the highest target achieved within 90%.
	knee := 0.0
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.9, 1.0} {
		target := sustained * frac
		if target < 1 {
			continue
		}
		got, err := measureRate(cl, input, target, legacyWire, cfg)
		if err != nil {
			return m, err
		}
		if got >= 0.9*target {
			knee = target
		} else {
			break
		}
	}
	if knee == 0 {
		knee = sustained // degenerate: report the closed-loop rate
	}
	m.KneeTPS = knee

	// Phase 3 — latency probe: reset the reservoir after warmup so the
	// quantiles describe steady state, not connection ramp-up. The stage
	// decomposition is rebuilt fresh so it describes this phase alone, and
	// shed/drop counters are deltas over the same window (the blast phase
	// sheds by design; the SLO judges the steady-state probe).
	m.LatencyTPS = latRate
	if m.LatencyTPS <= 0 {
		m.LatencyTPS = knee / 2
	}
	if cfg.traceEvery > 0 {
		stages = obs.NewStageSet(obs.NewRegistry())
		attachObserver(cl, ev, stages, cfg.traceEvery)
	}
	shed0, drop0 := clusterShedDrops(cl)
	if err := runDriver(cl, input, m.LatencyTPS, legacyWire, cfg, cfg.warmup+cfg.measure, func() {
		time.Sleep(cfg.warmup)
		cl.Collector.Reset()
	}); err != nil {
		return m, err
	}
	if s, ok := cl.Collector.LatencySummary(); ok {
		m.P50Ms = s.P50 * 1000
		m.P99Ms = s.P99 * 1000
	}
	count, _, _, _, _ := cl.Collector.LatencyStats()
	m.SinkTuples = count
	shed1, drop1 := clusterShedDrops(cl)
	m.Shed, m.Dropped = shed1-shed0, drop1-drop0
	m.Stages = obs.StageReportFrom(stages)
	return m, nil
}

// attachObserver wires span/stage capture into every node and the collector.
func attachObserver(cl *engine.Cluster, ev *obs.EventLog, stages *obs.StageSet, every int64) {
	for _, nd := range cl.Nodes {
		nd.SetObserver(ev, stages, every)
	}
	cl.Collector.SetObserver(nil, nil, stages, ev, every)
}

// clusterShedDrops sums ingress sheds and in-flight drops (outbox +
// no-route) across the cluster; errors read as zero (delta stays sane).
func clusterShedDrops(cl *engine.Cluster) (shed, drops int64) {
	stats, err := cl.Stats()
	if err != nil {
		return 0, 0
	}
	for _, s := range stats {
		if s == nil {
			continue
		}
		shed += s.Shed
		drops += s.OutboxDropped + s.DroppedNoRoute
	}
	return shed, drops
}

// measureRate drives the input at the target rate and returns the sink
// throughput over the post-warmup measurement window.
func measureRate(cl *engine.Cluster, input query.StreamID, target float64, legacyWire bool, cfg config) (float64, error) {
	var c0, c1 int64
	err := runDriver(cl, input, target, legacyWire, cfg, cfg.warmup+cfg.measure, func() {
		time.Sleep(cfg.warmup)
		c0, _, _, _, _ = cl.Collector.LatencyStats()
		time.Sleep(cfg.measure)
		c1, _, _, _, _ = cl.Collector.LatencyStats()
	})
	if err != nil {
		return 0, err
	}
	return float64(c1-c0) / cfg.measure.Seconds(), nil
}

// runDriver runs one SourceDriver pass at a constant rate for the given
// duration while sample() observes the cluster from the main goroutine.
// Trace sampling is marked at the source so spans carry origin timestamps
// (legacy wire strips the context; the first ingress re-picks the same
// tuples by the shared per-stream stride).
func runDriver(cl *engine.Cluster, input query.StreamID, rate float64, legacyWire bool, cfg config, d time.Duration, sample func()) error {
	// Start from a drained cluster: the previous phase's backlog (the blast
	// phase leaves the ingress queue full by design) would otherwise bleed
	// queue-drain latency into this phase's window. Slow-draining topologies
	// (the sharded splitter paces at its split cost) need the long timeout;
	// a failure here just means measuring against residual backlog.
	cl.AwaitQuiescence(30*time.Second, 50*time.Millisecond) //nolint:errcheck
	drv := &engine.SourceDriver{
		Stream:     input,
		Trace:      trace.New("const", 1, []float64{rate}),
		Addrs:      []string{cl.Addrs()[0]},
		Legacy:     legacyWire,
		TraceEvery: cfg.traceEvery,
		Keys:       cfg.keys,
	}
	errc := make(chan error, 1)
	go func() {
		_, err := drv.Run(d, nil)
		errc <- err
	}()
	sample()
	return <-errc
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodload:", err)
	os.Exit(1)
}

func readResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Command rodtop is a terminal viewer for a running rodengine coordinator's
// observability endpoints. It polls /series on the address given by -addr
// and redraws one sparkline per time series (utilization, queue depth,
// feasibility headroom, source rates, latency quantiles), so you can watch
// overload onset and migrations live:
//
//	rodengine -seconds 30 -metrics-addr 127.0.0.1:9900 -hold 60 &
//	rodtop -addr 127.0.0.1:9900
//
// When the monitor exports the sampled trace decomposition, each frame
// leads with a per-stage latency table (p50/p99 and the sampled-crossing
// rate per stage), and ends with a tail of the most recent structured
// events polled from /events.
//
// Flags:
//
//	-addr     host:port of the coordinator's -metrics-addr (required)
//	-interval refresh period (default 1s)
//	-frames   number of frames to draw before exiting; 0 = until interrupt
//	-last     how many trailing points each sparkline shows (default 60)
//	-events   events shown in the tail (default 8; 0 hides it)
//	-filter   only show series whose name{labels} — and events whose
//	          rendered type/fields, span and trace events included —
//	          contain this substring (e.g. -filter shed, -filter node=1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"rodsp/internal/obs"
)

// sparkChars ramp from empty to full; index 0 renders missing/zero-range.
var sparkChars = []rune(" ▁▂▃▄▅▆▇█")

type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points [][2]float64      `json:"points"`
}

type seriesResp struct {
	Series []seriesJSON `json:"series"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "host:port serving /series (rodengine -metrics-addr)")
		interval = flag.Duration("interval", time.Second, "refresh period")
		frames   = flag.Int("frames", 0, "frames to render before exiting (0 = until interrupt)")
		last     = flag.Int("last", 60, "trailing points per sparkline")
		events   = flag.Int("events", 8, "events shown in the tail (0 hides it)")
		filter   = flag.String("filter", "", "only show series and events containing this substring")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "rodtop: need -addr (the coordinator's -metrics-addr)")
		os.Exit(2)
	}
	url := "http://" + *addr + "/series"
	eventsURL := "http://" + *addr + "/events"
	client := &http.Client{Timeout: 5 * time.Second}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)

	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			select {
			case <-interrupt:
				return
			case <-time.After(*interval):
			}
		}
		frame, err := fetch(client, url, *last, *filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rodtop:", err)
			os.Exit(1)
		}
		tail := ""
		if *events > 0 {
			// The events tail is best-effort: a monitor without an event
			// log serves 404 and the panel just stays absent.
			tail, _ = fetchEvents(client, eventsURL, *events, *filter)
		}
		// Home the cursor and clear below rather than clearing the whole
		// screen, so the redraw doesn't flicker.
		fmt.Print("\x1b[H\x1b[J")
		fmt.Printf("rodtop — %s — %s\n\n", *addr, time.Now().Format("15:04:05"))
		fmt.Print(frame)
		fmt.Print(tail)
	}
}

// fetch pulls /series and renders one frame: the per-stage latency
// decomposition table (when the monitor exports it), then a sparkline per
// remaining series over the trailing `last` points, with the latest value
// and observed min/max. A non-empty filter keeps only table rows and series
// whose rendered id contains it.
func fetch(client *http.Client, url string, last int, filter string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	var sr seriesResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	sort.Slice(sr.Series, func(i, j int) bool { return seriesID(sr.Series[i]) < seriesID(sr.Series[j]) })

	// Pull the stage-decomposition series out into their own table; their
	// sparklines would only repeat the same numbers 15 rows tall.
	stageTable, rest := stagePanel(sr.Series, filter)
	sr.Series = rest
	ctrlLine, rest := controllerPanel(sr.Series, filter)
	sr.Series = rest
	shardTable, rest := shardPanel(sr.Series, filter)
	sr.Series = rest
	laneTable, rest := lanePanel(sr.Series, filter)
	sr.Series = rest
	recoveryTable, rest := recoveryPanel(sr.Series, filter)
	sr.Series = rest
	if filter != "" {
		kept := sr.Series[:0]
		for _, s := range sr.Series {
			if strings.Contains(seriesID(s), filter) {
				kept = append(kept, s)
			}
		}
		sr.Series = kept
	}

	var b strings.Builder
	b.WriteString(stageTable)
	b.WriteString(ctrlLine)
	b.WriteString(shardTable)
	b.WriteString(laneTable)
	b.WriteString(recoveryTable)
	width := 0
	for _, s := range sr.Series {
		if w := len(seriesID(s)); w > width {
			width = w
		}
	}
	for _, s := range sr.Series {
		vals := make([]float64, 0, len(s.Points))
		for _, p := range s.Points {
			vals = append(vals, p[1])
		}
		if len(vals) > last {
			vals = vals[len(vals)-last:]
		}
		cur := math.NaN()
		if len(vals) > 0 {
			cur = vals[len(vals)-1]
		}
		fmt.Fprintf(&b, "%-*s %s %s%s\n", width, seriesID(s), sparkline(vals, last), fmtVal(cur), rateCol(s))
	}
	return b.String(), nil
}

// stagePanel extracts the trace-decomposition series (stage latency
// quantiles and crossing counters) and renders them as one aligned table:
//
//	stage      p50_ms    p99_ms  crossings    rate/s
//	transit     0.105     0.488       1234      12.3
//
// It returns the rendered table ("" when the monitor exports no stage
// series or the filter drops every row) and the remaining series. The
// filter matches against "stage=<name>" plus the stage metric names, so
// -filter queue or -filter stage narrows the table like any series.
func stagePanel(series []seriesJSON, filter string) (string, []seriesJSON) {
	type row struct {
		p50, p99  float64
		crossings float64
		rate      string
		seen      bool
	}
	rows := map[string]*row{}
	var order []string
	get := func(stage string) *row {
		r := rows[stage]
		if r == nil {
			r = &row{p50: math.NaN(), p99: math.NaN(), crossings: math.NaN()}
			rows[stage] = r
			order = append(order, stage)
		}
		return r
	}
	rest := series[:0]
	for _, s := range series {
		stage := s.Labels["stage"]
		if stage == "" || (s.Name != obs.MetricStageLatencyQuantile && s.Name != obs.MetricStageTuples) {
			rest = append(rest, s)
			continue
		}
		var cur float64 = math.NaN()
		if len(s.Points) > 0 {
			cur = s.Points[len(s.Points)-1][1]
		}
		r := get(stage)
		r.seen = true
		switch {
		case s.Name == obs.MetricStageTuples:
			r.crossings = cur
			r.rate = strings.TrimPrefix(rateCol(s), "  ")
		case s.Labels["quantile"] == "p50":
			r.p50 = cur * 1000
		case s.Labels["quantile"] == "p99":
			r.p99 = cur * 1000
		}
	}
	if len(order) == 0 {
		return "", rest
	}
	// Keep the canonical pipeline order for known stages.
	sort.SliceStable(order, func(i, j int) bool { return stageRank(order[i]) < stageRank(order[j]) })
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %10s %9s\n", "stage", "p50_ms", "p99_ms", "crossings", "rate/s")
	shown := 0
	for _, stage := range order {
		if filter != "" &&
			!strings.Contains("stage="+stage, filter) &&
			!strings.Contains(obs.MetricStageLatencyQuantile, filter) &&
			!strings.Contains(obs.MetricStageTuples, filter) {
			continue
		}
		r := rows[stage]
		rate := r.rate
		if rate == "" {
			rate = "-"
		}
		fmt.Fprintf(&b, "%-8s %9s %9s %10s %9s\n",
			stage, fmtMs(r.p50), fmtMs(r.p99), fmtVal(r.crossings), rate)
		shown++
	}
	if shown == 0 {
		return "", rest
	}
	b.WriteString("\n")
	return b.String(), rest
}

// controllerPanel extracts the elastic controller's series and renders them
// as a single status line above the sparklines:
//
//	controller  decisions 42 (2.1/s)  moves 3  failures 0  forecast headroom 0.312
//
// It returns "" (and the series untouched) when the coordinator runs without
// -controller, and respects the filter like any other row.
func controllerPanel(series []seriesJSON, filter string) (string, []seriesJSON) {
	cur := map[string]float64{}
	var decRate string
	rest := series[:0]
	for _, s := range series {
		switch s.Name {
		case obs.MetricControllerDecisions, obs.MetricControllerMoves,
			obs.MetricControllerMoveFailures, obs.MetricControllerForecastHeadroom:
			if len(s.Points) > 0 {
				cur[s.Name] = s.Points[len(s.Points)-1][1]
			}
			if s.Name == obs.MetricControllerDecisions {
				decRate = strings.TrimPrefix(rateCol(s), "  ")
			}
		default:
			rest = append(rest, s)
		}
	}
	if len(cur) == 0 {
		return "", rest
	}
	line := fmt.Sprintf("controller  decisions %s", fmtVal(cur[obs.MetricControllerDecisions]))
	if decRate != "" {
		line += fmt.Sprintf(" (%s)", decRate)
	}
	line += fmt.Sprintf("  moves %s  failures %s  forecast headroom %s\n\n",
		fmtVal(cur[obs.MetricControllerMoves]),
		fmtVal(cur[obs.MetricControllerMoveFailures]),
		fmtVal(cur[obs.MetricControllerForecastHeadroom]))
	if filter != "" && !strings.Contains(line, filter) && !strings.Contains("rodsp_controller", filter) {
		return "", rest
	}
	return line, rest
}

// shardPanel extracts the per-shard routed-rate series (rodsp_shard_rate)
// and groups the replicas of each keyed shard group under the operator that
// was sharded:
//
//	shards of hot (4 replicas, tuples/s):  #0 123  #1 118  #2 121  #3 124
//
// It returns "" (and the series untouched) when the deployment has no keyed
// shard groups, and respects the filter like any other row.
func shardPanel(series []seriesJSON, filter string) (string, []seriesJSON) {
	type replica struct {
		idx  int
		rate float64
	}
	groups := map[string][]replica{}
	var order []string
	rest := series[:0]
	for _, s := range series {
		if s.Name != obs.MetricShardRate {
			rest = append(rest, s)
			continue
		}
		op := s.Labels["op"]
		idx, _ := strconv.Atoi(s.Labels["shard"])
		cur := math.NaN()
		if len(s.Points) > 0 {
			cur = s.Points[len(s.Points)-1][1]
		}
		if _, seen := groups[op]; !seen {
			order = append(order, op)
		}
		groups[op] = append(groups[op], replica{idx: idx, rate: cur})
	}
	if len(order) == 0 {
		return "", rest
	}
	sort.Strings(order)
	var b strings.Builder
	shown := 0
	for _, op := range order {
		rs := groups[op]
		sort.Slice(rs, func(i, j int) bool { return rs[i].idx < rs[j].idx })
		line := fmt.Sprintf("shards of %s (%d replicas, tuples/s): ", op, len(rs))
		for _, r := range rs {
			line += fmt.Sprintf(" #%d %s", r.idx, fmtVal(r.rate))
		}
		if filter != "" && !strings.Contains(line, filter) && !strings.Contains(obs.MetricShardRate, filter) {
			continue
		}
		b.WriteString(line + "\n")
		shown++
	}
	if shown == 0 {
		return "", rest
	}
	b.WriteString("\n")
	return b.String(), rest
}

// lanePanel extracts the per-worker-lane series (emitted by multi-lane
// nodes when the monitor runs with lane series enabled) and renders one
// aligned row per (node, lane):
//
//	node/lane      util     queue  processed    rate/s
//	0/0            0.42        12      12345      61.2
//
// It returns "" (and the series untouched) when no node exports lane
// series, and respects the filter like any other row.
func lanePanel(series []seriesJSON, filter string) (string, []seriesJSON) {
	type row struct {
		util, queue, processed float64
		rate                   string
	}
	rows := map[string]*row{}
	var order []string
	get := func(key string) *row {
		r := rows[key]
		if r == nil {
			r = &row{util: math.NaN(), queue: math.NaN(), processed: math.NaN()}
			rows[key] = r
			order = append(order, key)
		}
		return r
	}
	rest := series[:0]
	for _, s := range series {
		if s.Name != obs.MetricLaneQueueDepth && s.Name != obs.MetricLaneProcessed &&
			s.Name != obs.MetricLaneUtilization {
			rest = append(rest, s)
			continue
		}
		key := s.Labels["node"] + "/" + s.Labels["lane"]
		cur := math.NaN()
		if len(s.Points) > 0 {
			cur = s.Points[len(s.Points)-1][1]
		}
		r := get(key)
		switch s.Name {
		case obs.MetricLaneUtilization:
			r.util = cur
		case obs.MetricLaneQueueDepth:
			r.queue = cur
		case obs.MetricLaneProcessed:
			r.processed = cur
			r.rate = strings.TrimPrefix(rateCol(s), "  ")
		}
	}
	if len(order) == 0 {
		return "", rest
	}
	sort.Slice(order, func(i, j int) bool {
		ni, li := splitLaneKey(order[i])
		nj, lj := splitLaneKey(order[j])
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %9s %10s %9s\n", "node/lane", "util", "queue", "processed", "rate/s")
	shown := 0
	for _, key := range order {
		if filter != "" && !strings.Contains("lane="+key, filter) &&
			!strings.Contains(obs.MetricLaneQueueDepth, filter) &&
			!strings.Contains(obs.MetricLaneUtilization, filter) &&
			!strings.Contains(obs.MetricLaneProcessed, filter) {
			continue
		}
		r := rows[key]
		rate := r.rate
		if rate == "" {
			rate = "-"
		}
		fmt.Fprintf(&b, "%-10s %9s %9s %10s %9s\n",
			key, fmtVal(r.util), fmtVal(r.queue), fmtVal(r.processed), rate)
		shown++
	}
	if shown == 0 {
		return "", rest
	}
	b.WriteString("\n")
	return b.String(), rest
}

// recoveryPanel extracts the per-node durability series (exported by WAL-
// backed nodes: rodsp_wal_* and rodsp_recovery_*) and renders one aligned
// row per node:
//
//	node   wal_recs    rate/s   syncs   wal_kb   ckpts  replayed  dedup_drop
//	0          1234     103/s    1197     42.1      17         0           0
//
// It returns "" (and the series untouched) when no node runs with a WAL
// directory, and respects the filter like any other row.
func recoveryPanel(series []seriesJSON, filter string) (string, []seriesJSON) {
	type row struct {
		records, syncs, bytes, ckpts float64
		replayed, dedup              float64
		rate                         string
	}
	rows := map[string]*row{}
	var order []string
	get := func(node string) *row {
		r := rows[node]
		if r == nil {
			r = &row{records: math.NaN(), syncs: math.NaN(), bytes: math.NaN(),
				ckpts: math.NaN(), replayed: math.NaN(), dedup: math.NaN()}
			rows[node] = r
			order = append(order, node)
		}
		return r
	}
	rest := series[:0]
	for _, s := range series {
		switch s.Name {
		case obs.MetricWALRecords, obs.MetricWALSyncs, obs.MetricWALBytes,
			obs.MetricWALCheckpoints, obs.MetricRecoveryReplayed, obs.MetricRecoveryDedupDropped:
		default:
			rest = append(rest, s)
			continue
		}
		cur := math.NaN()
		if len(s.Points) > 0 {
			cur = s.Points[len(s.Points)-1][1]
		}
		r := get(s.Labels["node"])
		switch s.Name {
		case obs.MetricWALRecords:
			r.records = cur
			r.rate = strings.TrimPrefix(rateCol(s), "  ")
		case obs.MetricWALSyncs:
			r.syncs = cur
		case obs.MetricWALBytes:
			r.bytes = cur
		case obs.MetricWALCheckpoints:
			r.ckpts = cur
		case obs.MetricRecoveryReplayed:
			r.replayed = cur
		case obs.MetricRecoveryDedupDropped:
			r.dedup = cur
		}
	}
	if len(order) == 0 {
		return "", rest
	}
	sort.Slice(order, func(i, j int) bool {
		a, _ := strconv.Atoi(order[i])
		b, _ := strconv.Atoi(order[j])
		return a < b
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s %9s %7s %8s %7s %9s %11s\n",
		"node", "wal_recs", "rate/s", "syncs", "wal_kb", "ckpts", "replayed", "dedup_drop")
	shown := 0
	for _, node := range order {
		if filter != "" && !strings.Contains("node="+node, filter) &&
			!strings.Contains("rodsp_wal", filter) && !strings.Contains("rodsp_recovery", filter) {
			continue
		}
		r := rows[node]
		rate := r.rate
		if rate == "" {
			rate = "-"
		}
		kb := r.bytes
		if !math.IsNaN(kb) {
			kb /= 1024
		}
		fmt.Fprintf(&b, "%-6s %9s %9s %7s %8s %7s %9s %11s\n",
			node, fmtVal(r.records), rate, fmtVal(r.syncs), fmtVal(math.Round(kb*10)/10),
			fmtVal(r.ckpts), fmtVal(r.replayed), fmtVal(r.dedup))
		shown++
	}
	if shown == 0 {
		return "", rest
	}
	b.WriteString("\n")
	return b.String(), rest
}

// splitLaneKey parses a "node/lane" panel key into numeric parts for sorting.
func splitLaneKey(key string) (int, int) {
	parts := strings.SplitN(key, "/", 2)
	n, _ := strconv.Atoi(parts[0])
	l := 0
	if len(parts) == 2 {
		l, _ = strconv.Atoi(parts[1])
	}
	return n, l
}

// stageRank orders table rows along the data path; unknown stages sort last
// alphabetically after the known five.
func stageRank(stage string) int {
	for i := 0; i < obs.NumStages; i++ {
		if obs.StageName(i) == stage {
			return i
		}
	}
	return obs.NumStages
}

func fmtMs(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fetchEvents pulls /events and renders the last `n` events whose rendered
// line (type, level and fields — span and trace events included) contains
// the filter.
func fetchEvents(client *http.Client, url string, n int, filter string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		return "", err
	}
	var lines []string
	for _, e := range events {
		line := fmt.Sprintf("%9.3fs %-5s %-16s %s", e.T, e.Level, e.Type, fieldsStr(e.Fields))
		if filter != "" && !strings.Contains(line, filter) {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return "", nil
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return "\nevents:\n  " + strings.Join(lines, "\n  ") + "\n", nil
}

// fieldsStr renders event fields as sorted k=v pairs.
func fieldsStr(fields map[string]any) string {
	if len(fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, fields[k]))
	}
	return strings.Join(parts, " ")
}

// rateCol renders a live tuples/sec column for cumulative counter series
// (name suffix "_total"): the delta of the two most recent samples over
// their
// timestamp gap, so injected/emitted throughput is visible at a glance.
func rateCol(s seriesJSON) string {
	if !strings.HasSuffix(s.Name, "_total") || len(s.Points) < 2 {
		return ""
	}
	a, b := s.Points[len(s.Points)-2], s.Points[len(s.Points)-1]
	dt := b[0] - a[0]
	if dt <= 0 {
		return ""
	}
	rate := (b[1] - a[1]) / dt
	if rate < 0 {
		rate = 0 // counter reset between samples
	}
	return fmt.Sprintf("  %s/s", fmtVal(rate))
}

func seriesID(s seriesJSON) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.Labels[k])
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// sparkline maps vals onto the block ramp, scaled to the window's own
// min..max (a flat series renders mid-height). The result is left-padded to
// `width` cells so columns align across series.
func sparkline(vals []float64, width int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for i := len(vals); i < width; i++ {
		sb.WriteRune(sparkChars[0])
	}
	for _, v := range vals {
		idx := len(sparkChars) / 2
		if hi > lo {
			frac := (v - lo) / (hi - lo)
			idx = 1 + int(frac*float64(len(sparkChars)-2)+0.5)
			if idx >= len(sparkChars) {
				idx = len(sparkChars) - 1
			}
		}
		sb.WriteRune(sparkChars[idx])
	}
	return sb.String()
}

func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Command rodtop is a terminal viewer for a running rodengine coordinator's
// observability endpoints. It polls /series on the address given by -addr
// and redraws one sparkline per time series (utilization, queue depth,
// feasibility headroom, source rates, latency quantiles), so you can watch
// overload onset and migrations live:
//
//	rodengine -seconds 30 -metrics-addr 127.0.0.1:9900 -hold 60 &
//	rodtop -addr 127.0.0.1:9900
//
// Flags:
//
//	-addr     host:port of the coordinator's -metrics-addr (required)
//	-interval refresh period (default 1s)
//	-frames   number of frames to draw before exiting; 0 = until interrupt
//	-last     how many trailing points each sparkline shows (default 60)
//	-filter   only show series whose name{labels} contains this substring
//	          (e.g. -filter shed, -filter node=1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"
)

// sparkChars ramp from empty to full; index 0 renders missing/zero-range.
var sparkChars = []rune(" ▁▂▃▄▅▆▇█")

type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points [][2]float64      `json:"points"`
}

type seriesResp struct {
	Series []seriesJSON `json:"series"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "host:port serving /series (rodengine -metrics-addr)")
		interval = flag.Duration("interval", time.Second, "refresh period")
		frames   = flag.Int("frames", 0, "frames to render before exiting (0 = until interrupt)")
		last     = flag.Int("last", 60, "trailing points per sparkline")
		filter   = flag.String("filter", "", "only show series whose name{labels} contains this substring")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "rodtop: need -addr (the coordinator's -metrics-addr)")
		os.Exit(2)
	}
	url := "http://" + *addr + "/series"
	client := &http.Client{Timeout: 5 * time.Second}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)

	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			select {
			case <-interrupt:
				return
			case <-time.After(*interval):
			}
		}
		frame, err := fetch(client, url, *last, *filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rodtop:", err)
			os.Exit(1)
		}
		// Home the cursor and clear below rather than clearing the whole
		// screen, so the redraw doesn't flicker.
		fmt.Print("\x1b[H\x1b[J")
		fmt.Printf("rodtop — %s — %s\n\n", *addr, time.Now().Format("15:04:05"))
		fmt.Print(frame)
	}
}

// fetch pulls /series and renders one frame: a sparkline per series over the
// trailing `last` points, with the latest value and observed min/max. A
// non-empty filter keeps only series whose rendered id contains it.
func fetch(client *http.Client, url string, last int, filter string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	var sr seriesResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	sort.Slice(sr.Series, func(i, j int) bool { return seriesID(sr.Series[i]) < seriesID(sr.Series[j]) })
	if filter != "" {
		kept := sr.Series[:0]
		for _, s := range sr.Series {
			if strings.Contains(seriesID(s), filter) {
				kept = append(kept, s)
			}
		}
		sr.Series = kept
	}

	var b strings.Builder
	width := 0
	for _, s := range sr.Series {
		if w := len(seriesID(s)); w > width {
			width = w
		}
	}
	for _, s := range sr.Series {
		vals := make([]float64, 0, len(s.Points))
		for _, p := range s.Points {
			vals = append(vals, p[1])
		}
		if len(vals) > last {
			vals = vals[len(vals)-last:]
		}
		cur := math.NaN()
		if len(vals) > 0 {
			cur = vals[len(vals)-1]
		}
		fmt.Fprintf(&b, "%-*s %s %s%s\n", width, seriesID(s), sparkline(vals, last), fmtVal(cur), rateCol(s))
	}
	return b.String(), nil
}

// rateCol renders a live tuples/sec column for cumulative counter series
// (name suffix "_total"): the delta of the two most recent samples over
// their
// timestamp gap, so injected/emitted throughput is visible at a glance.
func rateCol(s seriesJSON) string {
	if !strings.HasSuffix(s.Name, "_total") || len(s.Points) < 2 {
		return ""
	}
	a, b := s.Points[len(s.Points)-2], s.Points[len(s.Points)-1]
	dt := b[0] - a[0]
	if dt <= 0 {
		return ""
	}
	rate := (b[1] - a[1]) / dt
	if rate < 0 {
		rate = 0 // counter reset between samples
	}
	return fmt.Sprintf("  %s/s", fmtVal(rate))
}

func seriesID(s seriesJSON) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.Labels[k])
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// sparkline maps vals onto the block ramp, scaled to the window's own
// min..max (a flat series renders mid-height). The result is left-padded to
// `width` cells so columns align across series.
func sparkline(vals []float64, width int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for i := len(vals); i < width; i++ {
		sb.WriteRune(sparkChars[0])
	}
	for _, v := range vals {
		idx := len(sparkChars) / 2
		if hi > lo {
			frac := (v - lo) / (hi - lo)
			idx = 1 + int(frac*float64(len(sparkChars)-2)+0.5)
			if idx >= len(sparkChars) {
				idx = len(sparkChars) - 1
			}
		}
		sb.WriteRune(sparkChars[idx])
	}
	return sb.String()
}

func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"rodsp/internal/obs"
)

// Span-trace analysis: the engine emits one "span" event per stage crossing
// of a sampled tuple (ingress, process, outbox on every hop; sink once).
// All spans of one tuple share its origin timestamp and sequence number, so
// (ts, seq) is the correlation key even as operators rewrite the stream id
// hop by hop.

// hop is one reconstructed stage crossing.
type hop struct {
	eventSeq int64   // emission order within the event log
	t        float64 // event wall-clock offset (seconds since log start)
	stage    string  // ingress | process | outbox | sink
	where    string  // node or peer address
	stream   int64
	// Stage durations (seconds). ingress→transit wait; process→queue+
	// service; outbox→wait; sink→deliver (+end-to-end latency).
	durs map[string]float64
}

// tupleTrace is every hop of one sampled tuple in emission order.
type tupleTrace struct {
	ts, seq int64
	hops    []hop
	latency float64 // end-to-end sink latency (seconds; 0 until the sink hop)
	sunk    bool
}

// runSpans implements rodtrace -spans: parse, correlate, report.
func runSpans(path string, top int) error {
	events, err := readSpanEvents(path)
	if err != nil {
		return err
	}
	traces, stageVals := correlate(events)
	if len(traces) == 0 {
		return fmt.Errorf("no span events in %s (run rodload with -trace-out, or fetch /events from a monitor)", path)
	}

	// Aggregate decomposition across every sampled stage crossing.
	fmt.Printf("spans: %d span events, %d correlated tuples\n\n", len(events), len(traces))
	fmt.Printf("%-8s %8s %10s %10s %10s\n", "stage", "count", "mean_ms", "p50_ms", "p99_ms")
	for _, st := range []string{"transit", "queue", "service", "outbox", "deliver"} {
		vals := stageVals[st]
		if len(vals) == 0 {
			fmt.Printf("%-8s %8d %10s %10s %10s\n", st, 0, "-", "-", "-")
			continue
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		qs, _ := obs.Quantiles(vals, 50, 99)
		fmt.Printf("%-8s %8d %10.3f %10.3f %10.3f\n",
			st, len(vals), sum/float64(len(vals))*1000, qs[0]*1000, qs[1]*1000)
	}

	// Causality audit: within one tuple, hops must appear in emission order
	// with non-decreasing wall offsets.
	complete, broken := 0, 0
	for _, tr := range traces {
		if !sort.SliceIsSorted(tr.hops, func(i, j int) bool { return tr.hops[i].eventSeq < tr.hops[j].eventSeq }) {
			sort.Slice(tr.hops, func(i, j int) bool { return tr.hops[i].eventSeq < tr.hops[j].eventSeq })
		}
		for i := 1; i < len(tr.hops); i++ {
			if tr.hops[i].t < tr.hops[i-1].t {
				broken++
				break
			}
		}
		if tr.sunk && len(tr.hops) > 1 {
			complete++
		}
	}
	fmt.Printf("\n%d fully-correlated traces (source→…→sink), %d with non-monotone hop times\n", complete, broken)

	// Render the slowest complete traces, starring the critical-path stage.
	full := make([]*tupleTrace, 0, complete)
	for _, tr := range traces {
		if tr.sunk && len(tr.hops) > 1 {
			full = append(full, tr)
		}
	}
	sort.Slice(full, func(i, j int) bool { return full[i].latency > full[j].latency })
	if top > len(full) {
		top = len(full)
	}
	for _, tr := range full[:top] {
		fmt.Printf("\ntrace ts=%d seq=%d  end-to-end %.3f ms over %d hops\n",
			tr.ts, tr.seq, tr.latency*1000, len(tr.hops))
		// Critical path = the single largest stage duration in the trace.
		worst, worstDur := -1, 0.0
		type line struct {
			label string
			dur   float64
		}
		var lines []line
		for _, h := range tr.hops {
			for _, st := range stagesOf(h.stage) {
				d, ok := h.durs[st]
				if !ok {
					continue
				}
				lines = append(lines, line{fmt.Sprintf("%-8s %s", st, h.where), d})
				if d > worstDur {
					worst, worstDur = len(lines)-1, d
				}
			}
		}
		for i, l := range lines {
			mark := " "
			if i == worst {
				mark = "*"
			}
			fmt.Printf("  %s %-24s %9.3f ms\n", mark, l.label, l.dur*1000)
		}
	}
	return nil
}

// stagesOf maps a span's emission point to its stage duration keys in
// causal order (a process span carries both the queue wait and service).
func stagesOf(stage string) []string {
	switch stage {
	case "ingress":
		return []string{"transit"}
	case "process":
		return []string{"queue", "service"}
	case "outbox":
		return []string{"outbox"}
	case "sink":
		return []string{"deliver"}
	}
	return nil
}

// readSpanEvents loads obs events from JSONL (one object per line, the
// EventLog writer format) or a JSON array (the /events endpoint), keeping
// only span events.
func readSpanEvents(path string) ([]obs.Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var all []obs.Event
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &all); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var e obs.Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			all = append(all, e)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	spans := all[:0]
	for _, e := range all {
		if e.Type == obs.EventSpan {
			spans = append(spans, e)
		}
	}
	return spans, nil
}

// correlate groups spans into per-tuple traces and collects per-stage
// duration samples (seconds) for the aggregate table.
func correlate(events []obs.Event) (map[[2]int64]*tupleTrace, map[string][]float64) {
	traces := map[[2]int64]*tupleTrace{}
	stageVals := map[string][]float64{}
	record := func(st string, v float64) float64 {
		stageVals[st] = append(stageVals[st], v)
		return v
	}
	for _, e := range events {
		f := e.Fields
		stage, _ := f["stage"].(string)
		ts, tsOK := num(f["ts"])
		seq, seqOK := num(f["seq"])
		if stage == "" || !tsOK || !seqOK {
			continue
		}
		key := [2]int64{int64(ts), int64(seq)}
		tr := traces[key]
		if tr == nil {
			tr = &tupleTrace{ts: int64(ts), seq: int64(seq)}
			traces[key] = tr
		}
		h := hop{eventSeq: e.Seq, t: e.T, stage: stage, durs: map[string]float64{}}
		if v, ok := num(f["stream"]); ok {
			h.stream = int64(v)
		}
		if v, ok := num(f["node"]); ok {
			h.where = fmt.Sprintf("node %.0f", v)
		} else if a, ok := f["addr"].(string); ok {
			h.where = "→ " + a
		}
		switch stage {
		case "ingress":
			if v, ok := num(f["wait"]); ok {
				h.durs["transit"] = record("transit", v)
			}
		case "process":
			if v, ok := num(f["queue"]); ok {
				h.durs["queue"] = record("queue", v)
			}
			if v, ok := num(f["service"]); ok {
				h.durs["service"] = record("service", v)
			}
		case "outbox":
			if v, ok := num(f["wait"]); ok {
				h.durs["outbox"] = record("outbox", v)
			}
		case "sink":
			h.where = "sink"
			if v, ok := num(f["deliver"]); ok {
				h.durs["deliver"] = record("deliver", v)
			}
			if v, ok := num(f["latency"]); ok {
				tr.latency = v
			}
			tr.sunk = true
		}
		tr.hops = append(tr.hops, h)
	}
	return traces, stageVals
}

// num coerces a JSON-decoded field (float64 after round-trip, or the
// original int/int64 when read in-process) to float64.
func num(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// Command rodtrace generates and inspects the synthetic input-rate traces
// used throughout the experiments, and renders causal tuple traces captured
// by the engine's sampled span instrumentation.
//
// Usage:
//
//	rodtrace -kind pkt|tcp|http|poisson|bmodel|onoff|diurnal [-seed 1] \
//	         [-bins 4096] [-mean 100] [-stats] [-csv out.csv] [-sparkline]
//	rodtrace -spans spans.jsonl [-top 5]
//
// With -spans, rodtrace reads span events (JSON lines from rodload
// -trace-out, or the JSON array served by the monitor's /events endpoint),
// correlates them into per-tuple traces keyed by origin timestamp and
// sequence number, prints the per-stage latency decomposition across all
// sampled tuples, and renders the slowest fully-correlated traces hop by
// hop with the critical-path stage starred. Traces whose hops appear out of
// causal order are reported (they indicate clock or instrumentation bugs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rodsp/internal/trace"
)

func main() {
	var (
		kind      = flag.String("kind", "http", "pkt | tcp | http | poisson | bmodel | onoff | diurnal")
		seed      = flag.Int64("seed", 1, "generator seed")
		bins      = flag.Int("bins", 4096, "trace length in 1s bins (non-preset kinds)")
		mean      = flag.Float64("mean", 1, "scale the trace to this mean rate")
		csvPath   = flag.String("csv", "", "write the trace as CSV to this path ('-' for stdout)")
		stats     = flag.Bool("stats", true, "print summary statistics")
		sparkline = flag.Bool("sparkline", false, "print a coarse text sparkline")
		spansPath = flag.String("spans", "", "correlate span events from this file (JSONL or JSON array) instead of generating a trace")
		top       = flag.Int("top", 5, "with -spans: render the N slowest fully-correlated traces")
	)
	flag.Parse()

	if *spansPath != "" {
		if err := runSpans(*spansPath, *top); err != nil {
			fail(err.Error())
		}
		return
	}

	var tr *trace.Trace
	switch *kind {
	case "pkt":
		tr = trace.PKT(*seed)
	case "tcp":
		tr = trace.TCP(*seed)
	case "http":
		tr = trace.HTTP(*seed)
	case "poisson":
		tr = trace.Poisson(trace.PoissonConfig{Mean: 1, Dt: 1, Bins: *bins, Seed: *seed})
	case "bmodel":
		levels := 1
		for 1<<levels < *bins {
			levels++
		}
		tr = trace.BModel(trace.BModelConfig{Bias: 0.62, Levels: levels, Total: float64(int(1) << levels), Dt: 1, Seed: *seed})
	case "onoff":
		tr = trace.ParetoOnOff(trace.ParetoOnOffConfig{
			Sources: 30, OnAlpha: 1.4, OffAlpha: 1.5, MeanOn: 2, MeanOff: 6,
			PeakRate: 1, Dt: 1, Bins: *bins, Seed: *seed,
		})
	case "diurnal":
		tr = trace.Diurnal(trace.DiurnalConfig{
			Mean: 1, Swing: 0.6, Period: float64(*bins) / 2, Noise: 0.1, Dt: 1, Bins: *bins, Seed: *seed,
		})
	default:
		fail("unknown -kind " + *kind)
	}
	tr = tr.ScaleToMean(*mean)

	if *stats {
		fmt.Printf("trace %s: %d bins x %gs\n", tr.Name, tr.Len(), tr.Dt)
		fmt.Printf("mean=%.3f std=%.3f cv=%.3f peak/mean=%.2f hurst=%.3f\n",
			tr.Mean(), tr.Std(), tr.CV(), tr.PeakToMean(), tr.Hurst())
		for _, k := range []int{4, 16, 64} {
			if tr.Len()/k >= 16 {
				fmt.Printf("cv@x%d=%.3f ", k, tr.Aggregate(k).CV())
			}
		}
		fmt.Println()
	}
	if *sparkline {
		fmt.Println(spark(tr, 96))
	}
	if *csvPath != "" {
		out := os.Stdout
		if *csvPath != "-" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fail(err.Error())
			}
			defer f.Close()
			out = f
		}
		if err := trace.WriteCSV(out, tr); err != nil {
			fail(err.Error())
		}
	}
}

// spark renders the trace as a one-line block-character sparkline.
func spark(tr *trace.Trace, width int) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	agg := tr
	if tr.Len() > width {
		agg = tr.Aggregate(tr.Len() / width)
	}
	max := agg.Max()
	if max == 0 {
		return strings.Repeat(" ", agg.Len())
	}
	var b strings.Builder
	for _, r := range agg.Rates {
		idx := int(r / max * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rodtrace:", msg)
	os.Exit(1)
}

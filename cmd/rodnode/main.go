// Command rodnode runs one engine node as its own OS process, making the
// prototype genuinely distributable: start a rodnode per machine (or per
// terminal), then attach a coordinator with engine.ConnectCluster (or the
// rodengine tool pointed at the addresses) to deploy and drive a query
// graph across them.
//
// Usage:
//
//	rodnode -addr 127.0.0.1:7101 -capacity 1.0 \
//	        [-workers 0] [-queue 100000] [-shed-policy drop-newest|drop-oldest] \
//	        [-outbox 4096] [-events events.jsonl]
//
// -workers sets the node's worker-lane count — parallel data-plane shards,
// each with its own bounded ingress queue and lock-free per-peer outbox
// ring. 0 (the default) runs one lane per core (GOMAXPROCS); 1 restores
// the single-lane data plane. -queue bounds the ingress queue (arrivals
// beyond it are shed under -shed-policy; with W lanes each lane holds
// queue/W), -outbox bounds each per-peer send buffer, and -events appends
// the node's structured JSON-lines events (shed onset/clearance, relay
// errors, peer recovery, injected link faults) to a file, or stderr with
// "-".
//
// The node serves both the JSON control plane and the binary tuple plane on
// the same port and runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	capacity := flag.Float64("capacity", 1.0, "virtual CPU capacity (cost-units/second)")
	queue := flag.Int("queue", engine.DefaultIngressCap, "ingress queue bound (tuples); arrivals beyond it are shed")
	shedPolicy := flag.String("shed-policy", "drop-newest", "load-shedding policy at the ingress bound: drop-newest | drop-oldest")
	outboxCap := flag.Int("outbox", engine.DefaultOutboxCap, "per-peer outbox buffer (tuples); overflow is dropped and counted")
	batchMax := flag.Int("batch", engine.DefaultBatchMax, "max tuples moved per lock acquisition / wire batch (1 = per-tuple hot path)")
	workers := flag.Int("workers", 0, "worker lanes (parallel data-plane shards; 0 = one per core, 1 = single-lane)")
	eventsPath := flag.String("events", "", "append JSON-lines events to this file ('-' for stderr)")
	flag.Parse()

	policy, err := engine.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fail(err)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	node, err := engine.NewNodeConfig(*addr, *capacity, engine.NodeConfig{
		IngressCap: *queue,
		ShedPolicy: policy,
		OutboxCap:  *outboxCap,
		BatchMax:   *batchMax,
		Workers:    w,
	})
	if err != nil {
		fail(err)
	}
	if *eventsPath != "" {
		ev := obs.NewEventLog(0)
		if *eventsPath == "-" {
			ev.SetWriter(os.Stderr)
		} else {
			f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			ev.SetWriter(f)
		}
		node.SetObserver(ev, nil, 0)
	}
	fmt.Printf("rodnode listening on %s (capacity %g, %d worker lanes)\n", node.Addr(), *capacity, node.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rodnode: shutting down")
	node.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodnode:", err)
	os.Exit(1)
}

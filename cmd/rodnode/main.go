// Command rodnode runs one engine node as its own OS process, making the
// prototype genuinely distributable: start a rodnode per machine (or per
// terminal), then attach a coordinator with engine.ConnectCluster (or the
// rodengine tool pointed at the addresses) to deploy and drive a query
// graph across them.
//
// Usage:
//
//	rodnode -addr 127.0.0.1:7101 -capacity 1.0 \
//	        [-queue 100000] [-shed-policy drop-newest|drop-oldest] \
//	        [-outbox 4096] [-events events.jsonl]
//
// -queue bounds the ingress queue (arrivals beyond it are shed under
// -shed-policy), -outbox bounds each per-peer send buffer, and -events
// appends the node's structured JSON-lines events (shed onset/clearance,
// relay errors, peer recovery, injected link faults) to a file, or stderr
// with "-".
//
// The node serves both the JSON control plane and the binary tuple plane on
// the same port and runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	capacity := flag.Float64("capacity", 1.0, "virtual CPU capacity (cost-units/second)")
	queue := flag.Int("queue", engine.DefaultIngressCap, "ingress queue bound (tuples); arrivals beyond it are shed")
	shedPolicy := flag.String("shed-policy", "drop-newest", "load-shedding policy at the ingress bound: drop-newest | drop-oldest")
	outboxCap := flag.Int("outbox", engine.DefaultOutboxCap, "per-peer outbox buffer (tuples); overflow is dropped and counted")
	batchMax := flag.Int("batch", engine.DefaultBatchMax, "max tuples moved per lock acquisition / wire batch (1 = per-tuple hot path)")
	eventsPath := flag.String("events", "", "append JSON-lines events to this file ('-' for stderr)")
	flag.Parse()

	policy, err := engine.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fail(err)
	}
	node, err := engine.NewNodeConfig(*addr, *capacity, engine.NodeConfig{
		IngressCap: *queue,
		ShedPolicy: policy,
		OutboxCap:  *outboxCap,
		BatchMax:   *batchMax,
	})
	if err != nil {
		fail(err)
	}
	if *eventsPath != "" {
		ev := obs.NewEventLog(0)
		if *eventsPath == "-" {
			ev.SetWriter(os.Stderr)
		} else {
			f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			ev.SetWriter(f)
		}
		node.SetObserver(ev, nil, 0)
	}
	fmt.Printf("rodnode listening on %s (capacity %g)\n", node.Addr(), *capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rodnode: shutting down")
	node.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodnode:", err)
	os.Exit(1)
}

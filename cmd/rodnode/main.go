// Command rodnode runs one engine node as its own OS process, making the
// prototype genuinely distributable: start a rodnode per machine (or per
// terminal), then attach a coordinator with engine.ConnectCluster (or the
// rodengine tool pointed at the addresses) to deploy and drive a query
// graph across them.
//
// Usage:
//
//	rodnode -addr 127.0.0.1:7101 -capacity 1.0
//
// The node serves both the JSON control plane and the binary tuple plane on
// the same port and runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rodsp/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	capacity := flag.Float64("capacity", 1.0, "virtual CPU capacity (cost-units/second)")
	flag.Parse()

	node, err := engine.NewNode(*addr, *capacity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rodnode:", err)
		os.Exit(1)
	}
	fmt.Printf("rodnode listening on %s (capacity %g)\n", node.Addr(), *capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rodnode: shutting down")
	node.Close()
}

// Command rodnode runs one engine node as its own OS process, making the
// prototype genuinely distributable: start a rodnode per machine (or per
// terminal), then attach a coordinator with engine.ConnectCluster (or the
// rodengine tool pointed at the addresses) to deploy and drive a query
// graph across them.
//
// Usage:
//
//	rodnode -addr 127.0.0.1:7101 -capacity 1.0 \
//	        [-workers 0] [-queue 100000] [-shed-policy drop-newest|drop-oldest] \
//	        [-outbox 4096] [-events events.jsonl] \
//	        [-wal-dir /var/lib/rodsp/n0] [-checkpoint-interval 100ms]
//
// -workers sets the node's worker-lane count — parallel data-plane shards,
// each with its own bounded ingress queue and lock-free per-peer outbox
// ring. 0 (the default) runs one lane per core (GOMAXPROCS); 1 restores
// the single-lane data plane. -queue bounds the ingress queue (arrivals
// beyond it are shed under -shed-policy; with W lanes each lane holds
// queue/W), -outbox bounds each per-peer send buffer, and -events appends
// the node's structured JSON-lines events (shed onset/clearance, relay
// errors, peer recovery, injected link faults) to a file, or stderr with
// "-".
//
// -wal-dir enables the durability layer: ingress batches are logged to a
// segmented, CRC-framed write-ahead log (fsync-batched group commit) and
// acked to senders only once committed; operator state checkpoints land at
// drained moments every -checkpoint-interval, truncating the log. A
// rodnode restarted with the same -wal-dir recovers its deployed graph,
// operator state and unprocessed backlog before accepting connections.
//
// The node serves both the JSON control plane and the binary tuple plane
// on the same port and runs until interrupted. With -wal-dir the process
// also supervises the control plane's restart command: the node is torn
// down and recreated in-process on the same address and WAL directory
// (a kill still exits, as does an interrupt).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	capacity := flag.Float64("capacity", 1.0, "virtual CPU capacity (cost-units/second)")
	queue := flag.Int("queue", engine.DefaultIngressCap, "ingress queue bound (tuples); arrivals beyond it are shed")
	shedPolicy := flag.String("shed-policy", "drop-newest", "load-shedding policy at the ingress bound: drop-newest | drop-oldest")
	outboxCap := flag.Int("outbox", engine.DefaultOutboxCap, "per-peer outbox buffer (tuples); overflow is dropped and counted")
	batchMax := flag.Int("batch", engine.DefaultBatchMax, "max tuples moved per lock acquisition / wire batch (1 = per-tuple hot path)")
	workers := flag.Int("workers", 0, "worker lanes (parallel data-plane shards; 0 = one per core, 1 = single-lane)")
	eventsPath := flag.String("events", "", "append JSON-lines events to this file ('-' for stderr)")
	walDir := flag.String("wal-dir", "", "enable the durability layer: WAL + checkpoints in this directory (recovered on restart)")
	ckEvery := flag.Duration("checkpoint-interval", 0, "interval between checkpoint attempts (0 = engine default; needs -wal-dir)")
	flag.Parse()

	policy, err := engine.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fail(err)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if *ckEvery > 0 && *walDir == "" {
		fail(fmt.Errorf("-checkpoint-interval requires -wal-dir"))
	}
	cfg := engine.NodeConfig{
		IngressCap:      *queue,
		ShedPolicy:      policy,
		OutboxCap:       *outboxCap,
		BatchMax:        *batchMax,
		Workers:         w,
		WALDir:          *walDir,
		CheckpointEvery: *ckEvery,
	}
	var ev *obs.EventLog
	if *eventsPath != "" {
		ev = obs.NewEventLog(0)
		if *eventsPath == "-" {
			ev.SetWriter(os.Stderr)
		} else {
			f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			ev.SetWriter(f)
		}
	}
	start := func(addr string) *engine.Node {
		node, err := engine.NewNodeConfig(addr, *capacity, cfg)
		if err != nil {
			fail(err)
		}
		if ev != nil {
			node.SetObserver(ev, nil, 0)
		}
		return node
	}
	node := start(*addr)
	fmt.Printf("rodnode listening on %s (capacity %g, %d worker lanes)\n", node.Addr(), *capacity, node.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// Supervision loop: the control plane's restart command closes the node
	// with restart intent; recreate it on the SAME address and WAL directory
	// so it recovers from its own log. A kill (no intent) or an interrupt
	// exits the process instead.
	for {
		select {
		case <-sig:
			fmt.Println("rodnode: shutting down")
			node.Close()
			return
		case <-node.Done():
			if !node.RestartRequested() {
				fmt.Println("rodnode: node closed, exiting")
				return
			}
			boundAddr := node.Addr()
			fmt.Printf("rodnode: restart requested, recovering on %s\n", boundAddr)
			// The kernel can hold the old port briefly; retry the bind.
			var next *engine.Node
			deadline := time.Now().Add(5 * time.Second)
			for {
				n, err := engine.NewNodeConfig(boundAddr, *capacity, cfg)
				if err == nil {
					next = n
					break
				}
				if time.Now().After(deadline) {
					fail(err)
				}
				time.Sleep(20 * time.Millisecond)
			}
			if ev != nil {
				next.SetObserver(ev, nil, 0)
			}
			node = next
			fmt.Printf("rodnode listening on %s (recovered)\n", node.Addr())
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodnode:", err)
	os.Exit(1)
}

// Command rodsim runs the discrete-event simulator on a graph + placement
// and reports end-to-end latency and node utilization.
//
// Usage:
//
//	rodsim -graph g.json -plan 0,1,0,1 -capacities 1,1 \
//	       [-trace pkt|tcp|http|poisson] [-util 0.7] [-duration 300] [-seed 1] \
//	       [-series-csv out.csv] [-events events.jsonl]
//
// The input traces are the synthetic PKT/TCP/HTTP stand-ins scaled so the
// mean system utilization equals -util. With -series-csv the run samples
// the engine-identical observability schema (utilization, queue depth,
// feasibility headroom, source rates, latency quantiles) at virtual-time
// intervals and writes the series as long-form CSV; -events writes the
// structured event log (overload onset/clearance, migrations) as JSON
// lines ('-' for stderr on either flag).
package main

import (
	"flag"
	"fmt"
	"os"

	"rodsp/internal/cliutil"
	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph JSON file ('-' for stdin)")
		planFlag  = flag.String("plan", "", "comma-separated node per operator")
		capsFlag  = flag.String("capacities", "1,1", "comma-separated node capacities")
		traceKind = flag.String("trace", "mixed", "pkt | tcp | http | poisson | mixed")
		util      = flag.Float64("util", 0.6, "target mean system utilization")
		duration  = flag.Float64("duration", 300, "simulated seconds")
		seed      = flag.Int64("seed", 1, "random seed")
		seriesCSV = flag.String("series-csv", "", "write sampled observability series to this CSV file ('-' for stdout)")
		eventsOut = flag.String("events", "", "write structured events as JSON lines to this file ('-' for stderr)")
	)
	flag.Parse()
	if *graphPath == "" || *planFlag == "" {
		fail("need -graph and -plan")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		fail(err.Error())
	}
	caps, err := cliutil.ParseCaps(*capsFlag, 0)
	if err != nil {
		fail(err.Error())
	}
	nodeOf, err := cliutil.ParseInts(*planFlag)
	if err != nil {
		fail(err.Error())
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		fail(err.Error())
	}
	traces, means, err := workload.ScaledTraces(lm, caps.Sum(), *util, *seed)
	if err != nil {
		fail(err.Error())
	}
	// Optionally override trace shapes while keeping the solved mean rates.
	if *traceKind != "mixed" {
		for k := range traces {
			var tr *trace.Trace
			switch *traceKind {
			case "pkt":
				tr = trace.PKT(*seed + int64(k))
			case "tcp":
				tr = trace.TCP(*seed + int64(k))
			case "http":
				tr = trace.HTTP(*seed + int64(k))
			case "poisson":
				tr = trace.Poisson(trace.PoissonConfig{Mean: 1, Dt: 1, Bins: 4096, Seed: *seed + int64(k)})
			default:
				fail("unknown -trace " + *traceKind)
			}
			traces[k] = tr.ScaleToMean(means[k])
		}
	}
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range g.Inputs() {
		sources[in] = traces[i]
	}
	cfg := sim.Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: caps,
		Sources:    sources,
		Duration:   *duration,
		WarmUp:     *duration * 0.1,
		Arrivals:   sim.PoissonArrivals,
		Seed:       *seed,
		MaxEvents:  100_000_000,
	}
	if *seriesCSV != "" || *eventsOut != "" {
		cfg.Obs = &sim.ObsConfig{}
		if *eventsOut != "" {
			ev := obs.NewEventLog(0)
			w, closeW, err := openSink(*eventsOut, os.Stderr)
			if err != nil {
				fail(err.Error())
			}
			defer closeW()
			ev.SetWriter(w)
			cfg.Obs.Events = ev
		}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fail(err.Error())
	}
	if *seriesCSV != "" {
		w, closeW, err := openSink(*seriesCSV, os.Stdout)
		if err != nil {
			fail(err.Error())
		}
		if err := res.Series.WriteCSV(w); err != nil {
			fail(err.Error())
		}
		closeW()
	}
	fmt.Printf("tuples: in=%d out=%d events=%d\n", res.TuplesIn, res.TuplesOut, res.Events)
	fmt.Printf("latency: mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms (%d samples)\n",
		res.LatencyMean*1000, res.LatencyP50*1000, res.LatencyP95*1000,
		res.LatencyP99*1000, res.LatencyMax*1000, res.LatencySamples)
	for i := range res.Utilization {
		fmt.Printf("node %d: utilization=%.3f backlog=%d peakQueue=%d\n",
			i, res.Utilization[i], res.Backlog[i], res.PeakQueue[i])
	}
	if res.EventLog != nil {
		if n := res.EventLog.Count(obs.EventOverloadOnset); n > 0 {
			fmt.Printf("overload: %d onset / %d clearance events\n",
				n, res.EventLog.Count(obs.EventOverloadClear))
		}
	}
	if res.Overloaded(0.95, 500) {
		fmt.Println("verdict: OVERLOADED")
	} else {
		fmt.Println("verdict: feasible")
	}
}

// openSink opens path for writing, mapping "-" to the given standard stream.
func openSink(path string, std *os.File) (*os.File, func(), error) {
	if path == "-" {
		return std, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func loadGraph(path string) (*query.Graph, error) {
	if path == "-" {
		return query.ReadJSON(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return query.ReadJSON(f)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "rodsim:", msg)
	os.Exit(1)
}

// Command rodbench regenerates the paper's tables and figures from this
// repository's implementations.
//
// Usage:
//
//	rodbench [-quick] [-seed N] [experiment ...]
//
// With no experiment names it runs the full suite. Known experiments:
// figure2, table2, figure9, figure14, figure15, optimal, latency,
// loadshift, lowerbound, joins, clustering, rodvariants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rodsp/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameters for a fast run")
	seed := flag.Int64("seed", 1, "experiment seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *list {
		for _, name := range bench.ExperimentNames {
			fmt.Println(name)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		names = bench.ExperimentNames
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		tables, err := bench.RunTables(name, *quick, *seed)
		if err != nil {
			fail(err)
		}
		for i, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", name, i))
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fail(err)
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodbench:", err)
	os.Exit(1)
}

// Command rodbench regenerates the paper's tables and figures from this
// repository's implementations.
//
// Usage:
//
//	rodbench [-quick] [-seed N] [-workers N] [-perf FILE] [experiment ...]
//
// With no experiment names it runs the full suite. Known experiments:
// figure2, table2, figure9, figure14, figure15, optimal, latency,
// loadshift, lowerbound, joins, clustering, rodvariants.
//
// -workers sets the compute-plane worker count (0 = GOMAXPROCS). The
// rendered tables on stdout are byte-identical for any worker count;
// per-experiment wall-clock timings go to stderr, and -perf additionally
// writes them as a machine-readable JSON record (BENCH_placement.json by
// convention).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rodsp/internal/bench"
	"rodsp/internal/par"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameters for a fast run")
	seed := flag.Int64("seed", 1, "experiment seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	workers := flag.Int("workers", 0, "compute-plane worker count (0 = GOMAXPROCS)")
	perfPath := flag.String("perf", "", "write per-experiment wall-clock timings as JSON to this file")
	flag.Parse()

	if *list {
		for _, name := range bench.ExperimentNames {
			fmt.Println(name)
		}
		return
	}
	par.SetWorkers(*workers)
	names := flag.Args()
	if len(names) == 0 {
		names = bench.ExperimentNames
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	perf := bench.NewPerfRecord(par.Workers(), *seed, *quick)
	total := time.Duration(0)
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		tables, err := bench.RunTables(name, *quick, *seed)
		elapsed := time.Since(start)
		if err != nil {
			fail(err)
		}
		perf.Add(name, elapsed)
		total += elapsed
		fmt.Fprintf(os.Stderr, "rodbench: %-12s %8.3fs (workers=%d)\n", name, elapsed.Seconds(), par.Workers())
		for i, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", name, i))
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fail(err)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "rodbench: total        %8.3fs (workers=%d)\n", total.Seconds(), par.Workers())
	if *perfPath != "" {
		if err := perf.Write(*perfPath); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodbench:", err)
	os.Exit(1)
}

// Command rodcheck runs the cluster-wide conformance harness: the
// metamorphic invariant catalog, optional lockstep sim↔engine
// cross-validation, and seeded chaos episodes on a loopback engine cluster
// gated by the tuple-conservation ledger (internal/check).
//
// Usage:
//
//	rodcheck -seed 1 -episodes 20 [-nodes 4] [-lockstep] [-v]
//	rodcheck -seed 1 -soak 30m [-fail-out failing.json]
//	rodcheck -seed 1 -episodes 20 -slo p99=750ms,zero-shed -report report.json
//	rodcheck -seed 1 -episodes 0 -controller 1
//	rodcheck -seed 1 -episodes 0 -sharded 1
//	rodcheck -seed 1 -episodes 0 -recover 3
//
// -controller N runs N closed-loop acceptance pairs: a flash-crowd episode
// executed twice, elastic controller on and off. The on-arm must migrate the
// hot operator autonomously and strictly before any overload onset, settle
// at ledger residual 0 with zero shed; the off-arm must shed or overload
// (proving the workload genuinely exceeded the static placement). During
// -soak a controller pair is interleaved every fifteenth episode.
//
// -sharded N runs N keyed-parallelism acceptance pairs: a hot operator whose
// load exceeds any single node, driven unsharded (must shed), sharded k=4
// with uniform hashing, and sharded with a skew-aware slot table plus one
// live repartition. Both sharded arms must hold the ledger at residual 0
// with zero shed, and under Zipf(1.1) keys the skew-aware arm's minimum
// node headroom must strictly beat uniform's.
//
// -recover N runs N kill-and-recover episodes: a durable cluster (every
// node logs its ingress to a WAL and checkpoints at drained moments), an
// interior victim node killed mid-episode and restarted from its log. The
// gate is exact: ledger residual 0 with zero slack, zero shed, zero
// duplicate sink deliveries, and a recorded restart latency. A failing
// episode keeps its WAL root on disk and reports the path.
//
// -ctrl-lockstep N cross-validates the closed loop itself: the engine's
// autonomous migrations are replayed in the simulator and the per-node
// series must agree under an identical obs schema (controller instruments
// included).
//
// Each episode derives its own seed (base seed + index) and class: every
// third episode kills a node, every seventh drives a correlated spike (two
// chains ramping together, strict ledger), the rest stay strict. With
// -soak the episode loop runs until the duration elapses instead of a fixed
// count, interleaving a lockstep cross-validation every tenth episode, a
// kill-and-recover episode every twelfth, a controller pair every
// fifteenth, a controller lockstep every twentieth, and a sharded pair
// every twenty-fifth. On the first failure rodcheck
// writes the failing seed and diagnosis to -fail-out (if set) so CI can
// archive a one-command reproduction, then exits 1.
//
// With -slo each strict episode's sink p99 and ledger shed/drop counts are
// graded against the spec; the run's grade is the worst episode's. KillNode
// episodes are exempt (losing a node legitimately sheds and drops — the
// ledger still holds them to conservation) and only counted. -report writes
// the aggregate obs.RunReport; an invariant failure always grades fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rodsp/internal/check"
	"rodsp/internal/obs"
)

type failure struct {
	Kind     string `json:"kind"` // metamorphic | lockstep | episode
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	Class    string `json:"class,omitempty"`
	Error    string `json:"error"`
	Repro    string `json:"repro"`
	Episodes int    `json:"episodes_run"`
	// WALDir points at the failing recover episode's retained WAL root (logs
	// and checkpoints for every node), kept on disk for triage.
	WALDir string `json:"wal_dir,omitempty"`
}

func main() {
	var (
		seed        = flag.Int64("seed", 1, "base random seed")
		episodes    = flag.Int("episodes", 10, "chaos episodes to run")
		nodes       = flag.Int("nodes", 4, "loopback cluster size")
		soak        = flag.Duration("soak", 0, "run episodes until this duration elapses (overrides -episodes)")
		lockstep    = flag.Bool("lockstep", false, "also run sim↔engine lockstep cross-validation")
		controllerN = flag.Int("controller", 0, "controller pair episodes to run (flash-crowd, elastic controller on vs off)")
		shardedN    = flag.Int("sharded", 0, "sharded pair episodes to run (hot operator: unsharded vs k=4 uniform vs skew-aware)")
		recoverN    = flag.Int("recover", 0, "kill-and-recover episodes to run (durable cluster, victim killed and restarted from its WAL)")
		ctrlLockN   = flag.Int("ctrl-lockstep", 0, "controller lockstep cross-validations to run (engine closed loop replayed in the simulator)")
		failOut     = flag.String("fail-out", "", "write the first failure as JSON to this file")
		sloFlag     = flag.String("slo", "", "SLO spec graded per strict episode, e.g. p99=750ms,zero-shed")
		report      = flag.String("report", "", "write the aggregate obs.RunReport JSON here")
		verbose     = flag.Bool("v", false, "per-episode ledger summaries")
	)
	flag.Parse()

	slo := obs.SLOSpec{MaxDrops: -1}
	if *sloFlag != "" {
		var err error
		if slo, err = obs.ParseSLOSpec(*sloFlag); err != nil {
			fmt.Fprintln(os.Stderr, "rodcheck:", err)
			os.Exit(2)
		}
	}
	// rep aggregates across episodes: worst strict-episode quantiles, summed
	// strict shed/drop counts, worst grade. fatal() stamps it fail.
	rep := obs.RunReport{Harness: "rodcheck", Grade: obs.GradePass, SLO: slo,
		Scenario: fmt.Sprintf("seed=%d nodes=%d", *seed, *nodes)}
	writeReport := func() {
		if *report == "" {
			return
		}
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "rodcheck: writing %s: %v\n", *report, err)
		}
	}

	fatal := func(f failure) {
		f.Nodes = *nodes
		f.Repro = fmt.Sprintf("go run ./cmd/rodcheck -seed %d -episodes 1 -nodes %d", f.Seed, *nodes)
		if f.Kind == "lockstep" {
			f.Repro += " -lockstep"
		}
		if f.Kind == "controller" {
			f.Repro = fmt.Sprintf("go run ./cmd/rodcheck -seed %d -episodes 0 -controller 1", f.Seed)
		}
		if f.Kind == "sharded" {
			f.Repro = fmt.Sprintf("go run ./cmd/rodcheck -seed %d -episodes 0 -sharded 1", f.Seed)
		}
		if f.Kind == "ctrl-lockstep" {
			f.Repro = fmt.Sprintf("go run ./cmd/rodcheck -seed %d -episodes 0 -ctrl-lockstep 1", f.Seed)
		}
		if f.Kind == "recover" {
			f.Repro = fmt.Sprintf("go run ./cmd/rodcheck -seed %d -episodes 0 -recover 1 -nodes %d", f.Seed, *nodes)
		}
		fmt.Fprintf(os.Stderr, "rodcheck: FAIL (%s, seed %d): %s\n", f.Kind, f.Seed, f.Error)
		if *failOut != "" {
			if data, err := json.MarshalIndent(f, "", "  "); err == nil {
				if werr := os.WriteFile(*failOut, append(data, '\n'), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "rodcheck: writing %s: %v\n", *failOut, werr)
				}
			}
		}
		rep.Grade = obs.GradeFail
		rep.Reasons = append(rep.Reasons, fmt.Sprintf("%s failure at seed %d: %s", f.Kind, f.Seed, f.Error))
		rep.Episodes = f.Episodes
		writeReport()
		os.Exit(1)
	}

	// Pure compute-plane invariants first: cheap, deterministic, no cluster.
	if err := check.RunMetamorphic(check.MetamorphicConfig{Seed: *seed}); err != nil {
		fatal(failure{Kind: "metamorphic", Seed: *seed, Error: err.Error()})
	}
	fmt.Println("rodcheck: metamorphic invariants ok")

	runLockstep := func(s int64) {
		res, err := check.RunLockstep(check.LockstepConfig{Seed: s, Nodes: *nodes})
		if err != nil {
			fatal(failure{Kind: "lockstep", Seed: s, Error: err.Error()})
		}
		if res.Violation != nil {
			fatal(failure{Kind: "lockstep", Seed: s, Error: res.Violation.Error()})
		}
		fmt.Printf("rodcheck: lockstep ok (seed %d: sim delivered %d, engine delivered %d, %d migrations)\n",
			s, res.SimDelivered, res.EngDelivered, res.Migrations)
	}
	if *lockstep {
		runLockstep(*seed)
	}
	ran := 0

	// Controller pairs: the closed-loop acceptance gate. Each pair runs the
	// seeded flash-crowd episode twice — elastic controller on, then off —
	// and fails unless the on-arm migrated proactively (every migration
	// strictly before any overload onset) at residual 0 with zero shed while
	// the off-arm genuinely shed or overloaded.
	runControllerPair := func(s int64) {
		ev := obs.NewEventLog(1024)
		pr, err := check.RunControllerPair(s, ev)
		if err != nil {
			fatal(failure{Kind: "controller", Seed: s, Class: "controller", Error: err.Error(), Episodes: ran})
		}
		if pr.Violation != nil {
			fatal(failure{Kind: "controller", Seed: s, Class: "controller", Error: pr.Violation.Error(), Episodes: ran})
		}
		fmt.Printf("rodcheck: controller pair ok (seed %d: %d proactive migrations, first at %.3fs; baseline shed %d)\n",
			s, pr.On.Migrations, pr.FirstMoveT, pr.Off.Ledger.Shed)
	}
	for i := 0; i < *controllerN; i++ {
		runControllerPair(*seed + int64(i))
	}

	// Sharded pairs: the keyed-parallelism acceptance gate. Each pair drives
	// the seeded hot-operator workload three ways — unsharded (must shed),
	// k=4 uniform hashing, k=4 skew-aware with a live repartition — and
	// fails unless both sharded arms settle at residual 0 with zero shed and
	// the skew-aware table strictly wins on minimum node headroom.
	runShardedPair := func(s int64) {
		ev := obs.NewEventLog(1024)
		pr, err := check.RunShardedPair(s, 0, ev)
		if err != nil {
			fatal(failure{Kind: "sharded", Seed: s, Class: "sharded", Error: err.Error(), Episodes: ran})
		}
		if pr.Violation != nil {
			fatal(failure{Kind: "sharded", Seed: s, Class: "sharded", Error: pr.Violation.Error(), Episodes: ran})
		}
		fmt.Printf("rodcheck: sharded pair ok (seed %d: unsharded shed %d; k=%d headroom uniform %.3f vs skew-aware %.3f)\n",
			s, pr.Unsharded.Ledger.Shed, pr.Scenario.K, pr.HeadroomUniform, pr.HeadroomSkew)
	}
	for i := 0; i < *shardedN; i++ {
		runShardedPair(*seed + int64(i))
	}

	// Recover episodes: the durability acceptance gate. Each episode deploys
	// onto a WAL-backed cluster, kills the interior victim mid-run, restarts
	// it from its log, and fails unless the conservation ledger closes at
	// residual 0 with zero shed and the sink saw zero duplicate deliveries.
	// On failure the episode's WAL root is retained and reported for triage.
	runRecover := func(s int64) {
		ev := obs.NewEventLog(1024)
		sc, err := check.GenerateRecover(s, *nodes)
		if err != nil {
			fatal(failure{Kind: "recover", Seed: s, Class: "recover", Error: err.Error(), Episodes: ran})
		}
		res, err := check.RunRecoverEpisode(sc, ev)
		if err != nil {
			fatal(failure{Kind: "recover", Seed: s, Class: "recover", Error: err.Error(), Episodes: ran})
		}
		if res.Violation != nil {
			fatal(failure{Kind: "recover", Seed: s, Class: "recover",
				Error: res.Violation.Error(), Episodes: ran, WALDir: res.WALDir})
		}
		fmt.Printf("rodcheck: recover episode ok (seed %d: sources %d, delivered %d, dups %d, restart %.1f ms)\n",
			s, res.Sources, res.Delivered, res.Duplicates, res.RecoverMillis)
	}
	for i := 0; i < *recoverN; i++ {
		runRecover(*seed + int64(i))
	}

	runCtrlLockstep := func(s int64) {
		res, err := check.RunControllerLockstep(s, check.Tolerances{})
		if err != nil {
			fatal(failure{Kind: "ctrl-lockstep", Seed: s, Class: "controller", Error: err.Error(), Episodes: ran})
		}
		if res.Violation != nil {
			fatal(failure{Kind: "ctrl-lockstep", Seed: s, Class: "controller", Error: res.Violation.Error(), Episodes: ran})
		}
		fmt.Printf("rodcheck: controller lockstep ok (seed %d: %d autonomous moves replayed, sim delivered %d, engine delivered %d)\n",
			s, len(res.Moves), res.SimDelivered, res.EngDelivered)
	}
	for i := 0; i < *ctrlLockN; i++ {
		runCtrlLockstep(*seed + int64(i))
	}

	deadline := time.Time{}
	if *soak > 0 {
		deadline = time.Now().Add(*soak)
	}
	for i := 0; ; i++ {
		if *soak > 0 {
			if time.Now().After(deadline) {
				break
			}
		} else if i >= *episodes {
			break
		}
		epSeed := *seed + int64(i)
		class := check.Strict
		switch {
		case i%3 == 2:
			class = check.KillNode
		case i%7 == 3:
			class = check.CorrSpike
		}
		if *soak > 0 && i > 0 && i%10 == 0 {
			runLockstep(epSeed)
		}
		if *soak > 0 && i > 0 && i%15 == 0 {
			runControllerPair(epSeed)
		}
		if *soak > 0 && i > 0 && i%20 == 0 {
			runCtrlLockstep(epSeed)
		}
		if *soak > 0 && i > 0 && i%25 == 0 {
			runShardedPair(epSeed)
		}
		if *soak > 0 && i > 0 && i%12 == 0 {
			runRecover(epSeed)
		}
		var sc *check.Scenario
		var err error
		if class == check.CorrSpike {
			sc, err = check.GenerateCorrSpike(epSeed, *nodes)
		} else {
			sc, err = check.Generate(epSeed, *nodes, class)
		}
		if err != nil {
			fatal(failure{Kind: "episode", Seed: epSeed, Class: class.String(), Error: err.Error(), Episodes: ran})
		}
		ev := obs.NewEventLog(1024)
		res, err := check.RunEpisode(sc, ev)
		if err != nil {
			fatal(failure{Kind: "episode", Seed: epSeed, Class: class.String(), Error: err.Error(), Episodes: ran})
		}
		if res.Violation != nil {
			fatal(failure{Kind: "episode", Seed: epSeed, Class: class.String(), Error: res.Violation.Error(), Episodes: ran})
		}
		ran++
		// Grade strict-path episodes only (Strict and CorrSpike hold the full
		// ledger): KillNode episodes shed and drop by design (the ledger
		// still audits them), so they'd poison the SLO.
		if class == check.Strict || class == check.CorrSpike {
			g, reasons := slo.Grade(res.P99Ms, res.Ledger.Shed, res.Ledger.OutboxDropped+res.Ledger.NoRoute)
			if res.P99Ms > rep.P99Ms {
				rep.P50Ms, rep.P99Ms = res.P50Ms, res.P99Ms
			}
			rep.SinkTuples += res.Delivered
			rep.Shed += res.Ledger.Shed
			rep.Drops += res.Ledger.OutboxDropped + res.Ledger.NoRoute
			if gradeRank(g) > gradeRank(rep.Grade) {
				rep.Grade = g
			}
			for _, r := range reasons {
				rep.Reasons = append(rep.Reasons, fmt.Sprintf("episode %d (seed %d): %s", i, epSeed, r))
			}
		}
		if *verbose {
			fmt.Printf("rodcheck: episode %d ok (seed %d, %s, %d faults, %d migrations, residual %d)\n%s\n",
				i, epSeed, class, len(sc.Schedule), res.Migrations, res.Ledger.Residual(), res.Ledger)
		} else {
			fmt.Printf("rodcheck: episode %d ok (seed %d, %s: sources %d, delivered %d, shed %d, residual %d)\n",
				i, epSeed, class, res.Sources, res.Delivered, res.Ledger.Shed, res.Ledger.Residual())
		}
	}
	rep.Episodes = ran
	writeReport()
	if *sloFlag != "" {
		fmt.Printf("rodcheck: grade %s against %s (worst p99 %.2f ms, shed %d, drops %d)\n",
			rep.Grade, slo, rep.P99Ms, rep.Shed, rep.Drops)
		if rep.Grade == obs.GradeFail {
			fmt.Fprintf(os.Stderr, "rodcheck: FAIL (slo): %s\n", rep.Reasons)
			os.Exit(1)
		}
	}
	fmt.Printf("rodcheck: PASS (%d episodes)\n", ran)
}

// gradeRank orders run grades for worst-of aggregation.
func gradeRank(g string) int {
	switch g {
	case obs.GradeDegraded:
		return 1
	case obs.GradeFail:
		return 2
	}
	return 0
}

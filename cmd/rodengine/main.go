// Command rodengine spins up an in-process distributed engine cluster on
// localhost TCP, deploys a graph under a chosen placement algorithm, drives
// it with bursty traces, and reports utilization and end-to-end latency —
// the prototype counterpart of the paper's Borealis experiments.
//
// Usage:
//
//	rodengine [-nodes 3] [-streams 3] [-algo rod|llf|random] [-util 0.6] \
//	          [-seconds 5] [-speedup 20] [-seed 1] [-max-shards 4] \
//	          [-controller] [-forecast-horizon 1.5s] [-cooldown 2s] [-max-moves 1] \
//	          [-queue 100000] [-shed-policy drop-newest|drop-oldest] [-outbox 4096] \
//	          [-workers 0] [-metrics-addr 127.0.0.1:9900] [-events events.jsonl] [-hold 30] \
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-pprof-addr 127.0.0.1:6060]
//
// -workers sets each in-process node's worker-lane count — parallel
// data-plane shards with per-lane bounded queues and lock-free per-peer
// outbox rings. 0 (the default) runs one lane per core (GOMAXPROCS); 1
// restores the single-lane data plane. Multi-lane runs additionally export
// per-lane series (rodsp_lane_*) that rodtop renders as a lane panel.
//
// -cpuprofile / -memprofile write pprof profiles of the coordinator process
// (CPU over the whole run, heap at exit); -pprof-addr serves the live
// net/http/pprof handlers (goroutine, heap, profile, trace) for attaching
// `go tool pprof` to a run in flight.
//
// -max-shards k enables keyed operator parallelism: before placement, any
// operator whose forecast load exceeds a single node's capacity is split
// into up to k key-partitioned replicas (splitter → replicas → merge), and
// the replicas are placed like first-class operators. 0 (the default)
// leaves the graph unsharded.
//
// -controller closes the loop: an elastic placement controller watches the
// monitor's live headroom, forecasts input rates a -forecast-horizon ahead
// (Holt trend + optional seasonality), and when the forecast headroom sinks
// below threshold re-runs ROD placement and live-migrates up to -max-moves
// operators per cycle, at most once per -cooldown. Decisions and migrations
// surface as controller_decide / controller_migrate events and
// rodsp_controller_* metrics.
//
// -queue bounds each node's ingress queue (arrivals beyond it are shed under
// -shed-policy and counted), and -outbox bounds each per-peer send buffer;
// both surface in the final report and in /metrics as shed/drop counters.
//
// With -metrics-addr the coordinator serves live observability over HTTP
// (/metrics Prometheus text, /series JSON, /series.csv, /events) while the
// run is in flight; -hold keeps serving that many seconds after the drive
// finishes (point rodtop at the address). -events appends structured
// JSON-lines events (deploys, migrations, overload onset/clearance,
// control errors) to a file, or stderr with "-".
//
// With -attach addr1,addr2,... it drives externally started rodnode
// processes instead of in-process nodes — a genuinely multi-process (or
// multi-machine) deployment:
//
//	rodnode -addr 127.0.0.1:7101 &
//	rodnode -addr 127.0.0.1:7102 &
//	rodengine -attach 127.0.0.1:7101,127.0.0.1:7102 -algo rod
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof-addr
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rodsp/internal/cliutil"
	"rodsp/internal/core"
	"rodsp/internal/engine"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 3, "cluster size (ignored with -attach)")
		attach  = flag.String("attach", "", "comma-separated addresses of running rodnode processes to drive instead of starting in-process nodes")
		caprStr = flag.String("capacities", "", "comma-separated capacities of attached nodes (default 1 each)")
		streams = flag.Int("streams", 3, "input streams in the monitoring workload")
		algo    = flag.String("algo", "rod", "rod | llf | random")
		util    = flag.Float64("util", 0.6, "target mean system utilization")
		seconds = flag.Float64("seconds", 5, "wall-clock drive time")
		speedup = flag.Float64("speedup", 20, "trace seconds played per wall second")
		seed    = flag.Int64("seed", 1, "random seed")

		maxShards = flag.Int("max-shards", 0, "split operators hotter than one node into up to this many keyed shards before placement (0 = off)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /series and /events over HTTP on this address (empty = disabled)")
		eventsPath  = flag.String("events", "", "append JSON-lines events to this file ('-' for stderr)")
		hold        = flag.Float64("hold", 0, "keep serving -metrics-addr this many seconds after the drive ends")
		traceEvery  = flag.Int64("trace-sample", 8192, "trace 1 in N tuples per stream through the data plane (0 disables)")

		controller      = flag.Bool("controller", false, "run the elastic placement controller: watch headroom, re-place proactively, migrate under load")
		forecastHorizon = flag.Duration("forecast-horizon", 0, "controller forecast lead time (default 3× the decision interval)")
		cooldown        = flag.Duration("cooldown", 0, "minimum gap between controller migration rounds (default 2s)")
		maxMoves        = flag.Int("max-moves", 0, "controller migration budget per decision cycle (default 1)")

		queue      = flag.Int("queue", engine.DefaultIngressCap, "per-node ingress queue bound (tuples); arrivals beyond it are shed")
		shedPolicy = flag.String("shed-policy", "drop-newest", "load-shedding policy at the ingress bound: drop-newest | drop-oldest")
		outboxCap  = flag.Int("outbox", engine.DefaultOutboxCap, "per-peer outbox buffer (tuples); overflow is dropped and counted")
		batchMax   = flag.Int("batch", engine.DefaultBatchMax, "max tuples moved per lock acquisition / wire batch (1 = per-tuple hot path)")
		workers    = flag.Int("workers", 0, "worker lanes per node (parallel data-plane shards; 0 = one per core, 1 = single-lane)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run here")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit here")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	policy, err := engine.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fail(err)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	nodeCfg := engine.NodeConfig{
		IngressCap: *queue,
		ShedPolicy: policy,
		OutboxCap:  *outboxCap,
		BatchMax:   *batchMax,
		Workers:    w,
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			runtime.GC()
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rodengine:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rodengine:", err)
			}
		}()
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fail(err)
		}
		defer ln.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck // DefaultServeMux carries net/http/pprof
	}

	g, err := workload.TrafficMonitoring(workload.MonitoringConfig{Streams: *streams, Seed: *seed})
	if err != nil {
		fail(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		fail(err)
	}
	attachAddrs := cliutil.ParseAddrs(*attach)
	if len(attachAddrs) > 0 {
		*nodes = len(attachAddrs)
	}
	caps, err := cliutil.ParseCaps(*caprStr, *nodes)
	if err != nil {
		fail(err)
	}
	if len(caps) != *nodes {
		fail(fmt.Errorf("-capacities has %d entries for %d nodes", len(caps), *nodes))
	}
	traces, means, err := workload.ScaledTraces(lm, caps.Sum(), *util, *seed)
	if err != nil {
		fail(err)
	}
	// The source driver multiplies rates by the speedup (it plays trace time
	// faster); divide the means out so the wall-clock load stays at -util.
	if *speedup > 1 {
		for k := range traces {
			traces[k] = traces[k].ScaleToMean(means[k] / *speedup)
		}
	}

	// Keyed parallelism: shard any operator the forecast says no single node
	// can host, then rebuild the load model so placement sees the replicas.
	if *maxShards > 1 {
		var decisions []core.ShardDecision
		g, decisions, err = core.PlanShards(g, caps, means, core.ShardPlanConfig{MaxShards: *maxShards})
		if err != nil {
			fail(err)
		}
		for _, d := range decisions {
			fmt.Printf("sharding %s into %d keyed replicas (standalone load %.2f)\n", d.Op, d.K, d.Load)
		}
		if len(decisions) > 0 {
			if lm, err = query.BuildLoadModel(g); err != nil {
				fail(err)
			}
		}
	}

	var plan *placement.Plan
	switch *algo {
	case "rod":
		plan, _, err = core.PlaceBest(lm.Coef, caps, core.Config{Graph: g}, 3000)
	case "llf":
		var avg mat.Vec
		avg, err = lm.ResolveVars(means)
		if err == nil {
			plan, err = placement.LLF(lm.Coef, caps, avg)
		}
	case "random":
		plan = placement.Random(g.NumOps(), *nodes, newRand(*seed))
	default:
		fail(fmt.Errorf("unknown -algo %s", *algo))
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("deploying %d operators over %d nodes with %s...\n", g.NumOps(), *nodes, *algo)
	var cl *engine.Cluster
	if len(attachAddrs) > 0 {
		cl, err = engine.ConnectCluster(attachAddrs)
	} else {
		cl, err = engine.StartClusterConfig(caps, nodeCfg)
	}
	if err != nil {
		fail(err)
	}
	defer cl.Close()
	// Observability: event log (optionally mirrored to a JSONL sink), the
	// monitoring loop computing live feasibility headroom from the load
	// model, and the optional HTTP exposition.
	ev := obs.NewEventLog(0)
	if *eventsPath != "" {
		if *eventsPath == "-" {
			ev.SetWriter(os.Stderr)
		} else {
			f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			ev.SetWriter(f)
		}
	}
	mon := cl.StartMonitor(engine.MonitorConfig{
		LM:         lm,
		Plan:       plan,
		Caps:       caps,
		Events:     ev,
		TraceEvery: *traceEvery,
		LaneSeries: w > 1, // per-lane series for multicore nodes (rodtop lane panel)
	})
	if *metricsAddr != "" {
		bound, closeHTTP, err := obs.ServeHTTP(*metricsAddr, mon.Registry(), mon.Series(), mon.Events())
		if err != nil {
			fail(err)
		}
		defer closeHTTP() //nolint:errcheck
		fmt.Printf("observability on http://%s (/metrics /series /series.csv /events)\n", bound)
	}

	if err := cl.Deploy(g, plan, caps); err != nil {
		fail(err)
	}
	if err := cl.Start(); err != nil {
		fail(err)
	}
	var ctrl *engine.Controller
	if *controller {
		ctrl, err = cl.StartController(engine.ControllerConfig{
			Horizon:  *forecastHorizon,
			Cooldown: *cooldown,
			MaxMoves: *maxMoves,
			Seed:     *seed,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("elastic controller running (headroom-triggered proactive re-placement)")
	}

	inputNodes := engine.InputNodes(g, plan)
	addrs := cl.Addrs()
	done := make(chan error, len(traces))
	for i, in := range g.Inputs() {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		src := &engine.SourceDriver{
			Stream:     in,
			Trace:      traces[i],
			Addrs:      dests,
			Speedup:    *speedup,
			MaxRate:    5000,
			Count:      mon.SourceCounter(in),
			TraceEvery: *traceEvery,
		}
		go func() {
			_, err := src.Run(time.Duration(*seconds*float64(time.Second)), nil)
			done <- err
		}()
	}
	for range traces {
		if err := <-done; err != nil {
			fail(err)
		}
	}
	if ctrl != nil {
		ctrl.Close() // stop deciding before the drain
	}
	time.Sleep(300 * time.Millisecond) // drain

	sts, err := cl.Stats()
	if err != nil {
		fail(err)
	}
	var shed, oDropped int64
	for i, s := range sts {
		if s == nil {
			fmt.Printf("node %d: unreachable\n", i)
			continue
		}
		fmt.Printf("node %d: utilization=%.3f queue=%d injected=%d emitted=%d",
			s.NodeID, s.Utilization, s.QueueLen, s.Injected, s.Emitted)
		if s.Shed > 0 || s.OutboxDropped > 0 {
			fmt.Printf(" shed=%d outbox_dropped=%d", s.Shed, s.OutboxDropped)
		}
		fmt.Println()
		shed += s.Shed
		oDropped += s.OutboxDropped
	}
	if shed > 0 || oDropped > 0 {
		fmt.Printf("load shedding: %d tuples shed at ingress, %d dropped at outboxes\n", shed, oDropped)
	}
	count, mean, p95, p99, max := cl.Collector.LatencyStats()
	fmt.Printf("sink tuples=%d latency mean=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		count, mean*1000, p95*1000, p99*1000, max*1000)
	if n := ev.Count(obs.EventOverloadOnset); n > 0 {
		fmt.Printf("overload: %d onset / %d clearance events (see -events or /events)\n",
			n, ev.Count(obs.EventOverloadClear))
	}
	if ctrl != nil {
		st := ctrl.Stats()
		fmt.Printf("controller: %d decisions, %d migrations (%d failed), last action %s, forecast headroom %.3f\n",
			st.Decisions, st.Moves, st.MoveFailures, st.LastAction, st.ForecastHeadroom)
		for _, mv := range ctrl.Moves() {
			status := "ok"
			if !mv.OK {
				status = "FAILED"
			}
			fmt.Printf("  migrated op %d: node %d -> node %d (%s)\n", mv.Op, mv.From, mv.To, status)
		}
	}
	if *hold > 0 && *metricsAddr != "" {
		fmt.Printf("holding observability endpoints for %gs...\n", *hold)
		time.Sleep(time.Duration(*hold * float64(time.Second)))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rodengine:", err)
	os.Exit(1)
}

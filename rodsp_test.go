package rodsp_test

import (
	"math"
	"testing"

	"rodsp"
	"rodsp/internal/trace"
)

func demoGraph(t *testing.T) *rodsp.Graph {
	t.Helper()
	b := rodsp.NewBuilder()
	for i := 0; i < 3; i++ {
		in := b.Input("")
		f := b.Filter("", 0.0004, 0.6, in)
		m := b.Map("", 0.0003, f)
		b.Aggregate("", 0.0005, 0.1, 5, m)
		b.Filter("", 0.0002, 0.4, m)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlaceAndEvaluate(t *testing.T) {
	g := demoGraph(t)
	caps := []float64{1, 1, 1}
	plan, report, lm, err := rodsp.Place(g, caps, rodsp.Config{Selector: rodsp.SelectMaxPlaneDistance})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps() != g.NumOps() {
		t.Fatal("plan must cover the graph")
	}
	if report.MinPlaneDistance <= 0 {
		t.Fatal("report missing plane distance")
	}
	ratio, err := rodsp.FeasibleRatio(plan, lm, caps, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("ratio = %g", ratio)
	}
	// ROD beats a random placement on this workload.
	randPlan := rodsp.PlaceRandom(lm, 3, 1)
	randRatio, err := rodsp.FeasibleRatio(randPlan, lm, caps, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if randRatio > ratio+0.05 {
		t.Fatalf("random (%g) should not beat ROD (%g)", randRatio, ratio)
	}
}

func TestPlaceBestPortfolio(t *testing.T) {
	g := demoGraph(t)
	caps := []float64{1, 1, 1}
	plan, _, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	best, err := rodsp.FeasibleRatio(plan, lm, caps, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []rodsp.Selector{rodsp.SelectMaxPlaneDistance, rodsp.SelectAxisBalance} {
		p, _, _, err := rodsp.Place(g, caps, rodsp.Config{Selector: sel})
		if err != nil {
			t.Fatal(err)
		}
		r, err := rodsp.FeasibleRatio(p, lm, caps, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if r > best+0.03 {
			t.Fatalf("portfolio (%g) lost to %v (%g)", best, sel, r)
		}
	}
}

func TestFeasibleAt(t *testing.T) {
	b := rodsp.NewBuilder()
	in := b.Input("I")
	b.Map("m", 0.01, in)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1}
	plan, _, lm, err := rodsp.Place(g, caps, rodsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rodsp.FeasibleAt(plan, lm, caps, []float64{50})
	if err != nil || !ok {
		t.Fatalf("rate 50 (load 0.5) must be feasible: %v %v", ok, err)
	}
	ok, err = rodsp.FeasibleAt(plan, lm, caps, []float64{150})
	if err != nil || ok {
		t.Fatalf("rate 150 (load 1.5) must be infeasible: %v %v", ok, err)
	}
}

func TestFeasibleRatioFrom(t *testing.T) {
	g := demoGraph(t)
	caps := []float64{1, 1, 1}
	lb := []float64{10, 0, 0}
	plan, _, lm, err := rodsp.PlaceBest(g, caps, rodsp.Config{LowerBound: lb}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rodsp.FeasibleRatioFrom(plan, lm, caps, lb, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > 1 {
		t.Fatalf("restricted ratio = %g", r)
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	b := rodsp.NewBuilder()
	in := b.Input("I")
	b.Delay("d", 0.002, 1, in)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rodsp.Simulate(rodsp.SimConfig{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: []float64{1},
		Sources: map[rodsp.StreamID]*rodsp.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{100, 100, 100, 100, 100}),
		},
		Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization[0]-0.2) > 0.05 {
		t.Fatalf("utilization = %g", res.Utilization[0])
	}
}

func TestPlaceClusteredFacade(t *testing.T) {
	b := rodsp.NewBuilder()
	for k := 0; k < 2; k++ {
		s := b.Input("")
		for j := 0; j < 5; j++ {
			out := b.Delay("", 0.001, 1, s)
			b.SetXferCost(out, 0.01) // shipping costs 10x processing
			s = out
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	res, lm, err := rodsp.PlaceClustered(g, caps, rodsp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCluster >= g.NumOps() {
		t.Fatalf("dominant transfer costs should cluster: %d clusters for %d ops",
			res.NumCluster, g.NumOps())
	}
	// The clustered plan pays less network CPU than a random one.
	randPlan := rodsp.PlaceRandom(lm, 2, 5)
	rates := []float64{50, 50}
	clustered, err := rodsp.NetworkCostAt(lm, res.Plan, rates)
	if err != nil {
		t.Fatal(err)
	}
	random, err := rodsp.NetworkCostAt(lm, randPlan, rates)
	if err != nil {
		t.Fatal(err)
	}
	if clustered > random {
		t.Fatalf("clustered plan pays more network cost: %g vs %g", clustered, random)
	}
}

func TestBaselineFacades(t *testing.T) {
	g := demoGraph(t)
	caps := []float64{1, 1, 1}
	_, _, lm, err := rodsp.Place(g, caps, rodsp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{10, 10, 10}
	if _, err := rodsp.PlaceLLF(lm, caps, rates); err != nil {
		t.Fatal(err)
	}
	if _, err := rodsp.PlaceConnected(g, lm, caps, rates); err != nil {
		t.Fatal(err)
	}
}

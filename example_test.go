package rodsp_test

import (
	"fmt"

	"rodsp"
)

// ExamplePlace builds a tiny two-stream query, places it with ROD on two
// nodes and reports how much of the ideal feasible set the plan attains.
func ExamplePlace() {
	b := rodsp.NewBuilder()
	i1 := b.Input("packets")
	i2 := b.Input("requests")
	// Two identical pipelines per stream so every stream can be balanced.
	for _, in := range []rodsp.StreamID{i1, i2} {
		f := b.Filter("", 0.001, 0.5, in)
		b.Map("", 0.001, f)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	caps := []float64{1, 1}
	plan, _, lm, err := rodsp.Place(g, caps, rodsp.Config{Selector: rodsp.SelectMaxPlaneDistance})
	if err != nil {
		panic(err)
	}
	ratio, err := rodsp.FeasibleRatio(plan, lm, caps, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("operators: %d, feasible ratio: %.2f\n", plan.NumOps(), ratio)
	// Output:
	// operators: 4, feasible ratio: 0.75
}

// ExampleFeasibleAt checks whether concrete input rates overload any node
// under a plan.
func ExampleFeasibleAt() {
	b := rodsp.NewBuilder()
	in := b.Input("events")
	b.Map("work", 0.01, in) // 10 ms per tuple
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	caps := []float64{1}
	plan, _, lm, err := rodsp.Place(g, caps, rodsp.Config{})
	if err != nil {
		panic(err)
	}
	for _, rate := range []float64{50, 150} {
		ok, err := rodsp.FeasibleAt(plan, lm, caps, []float64{rate})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v tuples/s feasible: %v\n", rate, ok)
	}
	// Output:
	// 50 tuples/s feasible: true
	// 150 tuples/s feasible: false
}

// ExampleBuilder_join shows the Section 6.2 linearization: the join's
// output rate becomes a model variable of its own.
func ExampleBuilder_join() {
	b := rodsp.NewBuilder()
	l := b.Input("orders")
	r := b.Input("trades")
	fl := b.Filter("live", 0.001, 0.8, l)
	fr := b.Filter("big", 0.001, 0.8, r)
	j := b.Join("match", 0.0001, 0.05, 2.0, fl, fr)
	b.Map("enrich", 0.002, j)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	_, _, lm, err := rodsp.Place(g, []float64{1, 1}, rodsp.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inputs: %d, model variables: %d\n", g.NumInputs(), lm.D())
	// Output:
	// inputs: 2, model variables: 3
}

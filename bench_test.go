// Benchmarks regenerating every table and figure of the paper's evaluation
// (one per experiment-index row of DESIGN.md), plus micro-benchmarks of the
// hot machinery. Run a single figure with e.g.
//
//	go test -bench Figure14 -benchtime 1x
//
// The per-figure benchmarks use the quick parameter sets; cmd/rodbench
// (without -quick) runs the full paper-scale sweeps.
package rodsp_test

import (
	"io"
	"math/rand"
	"testing"

	"rodsp"
	"rodsp/internal/bench"
	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, name, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per paper artifact (see DESIGN.md experiment index).

// BenchmarkFigure2TraceVariability regenerates Figure 2 (trace stats).
func BenchmarkFigure2TraceVariability(b *testing.B) { runExperiment(b, "figure2") }

// BenchmarkTable2ExamplePlans regenerates Table 2 / Figures 5-6 (the
// Example 2 plans, exact feasible sets).
func BenchmarkTable2ExamplePlans(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure9PlaneDistance regenerates Figure 9 (feasible ratio vs
// r/r* over random coefficient matrices).
func BenchmarkFigure9PlaneDistance(b *testing.B) { runExperiment(b, "figure9") }

// BenchmarkFigure14BaseResiliency regenerates Figure 14 (ratio-to-ideal and
// ratio-to-ROD vs operator count, all five algorithms).
func BenchmarkFigure14BaseResiliency(b *testing.B) { runExperiment(b, "figure14") }

// BenchmarkFigure15VaryInputs regenerates Figure 15 (ratio-to-ROD vs number
// of input streams).
func BenchmarkFigure15VaryInputs(b *testing.B) { runExperiment(b, "figure15") }

// BenchmarkOptimalComparison regenerates the Section 7.3.1 ROD-vs-optimal
// study on small graphs.
func BenchmarkOptimalComparison(b *testing.B) { runExperiment(b, "optimal") }

// BenchmarkLatencyUnderBurst regenerates the reconstructed Figure 16
// (end-to-end latency under bursty traces at rising mean load).
func BenchmarkLatencyUnderBurst(b *testing.B) { runExperiment(b, "latency") }

// BenchmarkLoadShiftRobustness regenerates the reconstructed Figure 17
// (feasibility after the load mix shifts away from the observed point).
func BenchmarkLoadShiftRobustness(b *testing.B) { runExperiment(b, "loadshift") }

// BenchmarkLowerBoundExtension regenerates the Section 6.1 experiment
// (floor-aware ROD on restricted workload sets).
func BenchmarkLowerBoundExtension(b *testing.B) { runExperiment(b, "lowerbound") }

// BenchmarkNonlinearJoins regenerates the Section 6.2 experiment (join
// workloads through linearization cuts).
func BenchmarkNonlinearJoins(b *testing.B) { runExperiment(b, "joins") }

// BenchmarkOperatorClustering regenerates the Section 6.3 experiment
// (clustering under communication CPU costs).
func BenchmarkOperatorClustering(b *testing.B) { runExperiment(b, "clustering") }

// BenchmarkRODVariantsAblation regenerates the ablation over ROD's Class-I
// and Class-II design choices.
func BenchmarkRODVariantsAblation(b *testing.B) { runExperiment(b, "rodvariants") }

// BenchmarkStaticVsDynamic regenerates the static-vs-dynamic-migration
// experiment behind the paper's Section 1 argument.
func BenchmarkStaticVsDynamic(b *testing.B) { runExperiment(b, "dynamic") }

// BenchmarkOrderingAblation regenerates the phase-1 ordering ablation plus
// the heterogeneous-capacity check.
func BenchmarkOrderingAblation(b *testing.B) { runExperiment(b, "ordering") }

// BenchmarkSimVsPrototype regenerates the simulator-vs-engine utilization
// cross-validation (the paper's Section 7.3.1 trust argument).
func BenchmarkSimVsPrototype(b *testing.B) { runExperiment(b, "crossval") }

// BenchmarkEmpiricalFeasibleSet regenerates the Section 7.1 methodology
// check: feasible-set ratios measured by actually running the system at
// sampled workload points vs the analytic integrator.
func BenchmarkEmpiricalFeasibleSet(b *testing.B) { runExperiment(b, "empirical") }

// ---- Micro-benchmarks of the machinery under the experiments.

// BenchmarkRODPlacement200 places a 200-operator, 5-stream workload on 10
// nodes — the paper's largest Figure 14 point.
func BenchmarkRODPlacement200(b *testing.B) {
	g, err := workload.RandomTrees(workload.TreeConfig{Streams: 5, OpsPerStream: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		b.Fatal(err)
	}
	caps := make(mat.Vec, 10)
	for i := range caps {
		caps[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectMaxPlaneDistance}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQMCFeasibleRatio measures the Quasi-Monte-Carlo feasible-set
// integrator at d=5 with 4096 samples.
func BenchmarkQMCFeasibleRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := mat.NewMatrix(10, 5)
	for k := 0; k < 5; k++ {
		var sum float64
		col := make([]float64, 10)
		for i := range col {
			col[i] = rng.Float64()
			sum += col[i]
		}
		for i := range col {
			w.Set(i, k, col[i]/sum*10)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feasible.RatioToIdeal(w, 4096)
	}
}

// BenchmarkHalton measures low-discrepancy point generation (d=6).
func BenchmarkHalton(b *testing.B) {
	h := feasible.NewHalton(6)
	p := make([]float64, 6)
	for i := 0; i < b.N; i++ {
		h.Next(p)
	}
}

// BenchmarkLoadModelBuild measures linearized load-model construction on a
// 200-operator graph.
func BenchmarkLoadModelBuild(b *testing.B) {
	g, err := workload.RandomTrees(workload.TreeConfig{Streams: 5, OpsPerStream: 40, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.BuildLoadModel(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures discrete-event simulation speed
// (events/op reported as ns/op over a fixed 60-simulated-second run).
func BenchmarkSimulatorThroughput(b *testing.B) {
	gb := query.NewBuilder()
	in := gb.Input("I")
	s := gb.Filter("f", 0.0005, 0.7, in)
	s = gb.Map("m", 0.0004, s)
	gb.Aggregate("a", 0.0005, 0.1, 5, s)
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.Poisson(trace.PoissonConfig{Mean: 500, Dt: 1, Bins: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Graph:      g,
			NodeOf:     []int{0, 0, 0},
			Capacities: mat.VecOf(1),
			Sources:    map[query.StreamID]*trace.Trace{g.Inputs()[0]: tr},
			Duration:   60,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatePlan measures end-to-end plan evaluation (NodeCoef +
// weights + QMC) as used thousands of times by the sweeps.
func BenchmarkEvaluatePlan(b *testing.B) {
	g, err := workload.RandomTrees(workload.TreeConfig{Streams: 4, OpsPerStream: 25, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	caps := []float64{1, 1, 1, 1, 1, 1}
	plan, _, lm, err := rodsp.Place(g, caps, rodsp.Config{Selector: rodsp.SelectMaxPlaneDistance})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rodsp.FeasibleRatio(plan, lm, caps, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

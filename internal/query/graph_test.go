package query

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// fig4 builds the paper's Figure 4 example graph:
// I1 → o1 → o2, I2 → o3 → o4.
func fig4(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	i1 := b.Input("I1")
	i2 := b.Input("I2")
	s1 := b.Delay("o1", 4, 1, i1)
	b.Delay("o2", 6, 1, s1)
	s3 := b.Delay("o3", 9, 0.5, i2)
	b.Delay("o4", 4, 1, s3)
	return b.MustBuild()
}

func TestFig4Structure(t *testing.T) {
	g := fig4(t)
	if g.NumOps() != 4 {
		t.Fatalf("NumOps = %d", g.NumOps())
	}
	if g.NumInputs() != 2 {
		t.Fatalf("NumInputs = %d", g.NumInputs())
	}
	if g.NumStreams() != 6 {
		t.Fatalf("NumStreams = %d", g.NumStreams())
	}
	sinks := g.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("Sinks = %v", sinks)
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	g := fig4(t)
	order := g.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("topo order covers %d ops", len(order))
	}
	pos := map[OpID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, op := range g.Ops() {
		for _, in := range op.Inputs {
			if g.Stream(in).Input() {
				continue
			}
			if pos[g.Stream(in).Producer] >= pos[op.ID] {
				t.Fatalf("producer of %s not before it in topo order", op.Name)
			}
		}
	}
}

func TestArcsAndConnected(t *testing.T) {
	g := fig4(t)
	arcs := g.Arcs()
	if len(arcs) != 2 {
		t.Fatalf("Arcs = %v", arcs)
	}
	if !g.Connected(0, 1) || !g.Connected(1, 0) {
		t.Fatal("o1 and o2 should be connected")
	}
	if g.Connected(0, 2) {
		t.Fatal("o1 and o3 should not be connected")
	}
}

func TestConsumersFanOut(t *testing.T) {
	b := NewBuilder()
	in := b.Input("I")
	s := b.Map("m", 1, in)
	b.Filter("f1", 1, 0.5, s)
	b.Filter("f2", 1, 0.5, s)
	b.Filter("f3", 1, 0.5, s)
	g := b.MustBuild()
	if got := len(g.Consumers(s)); got != 3 {
		t.Fatalf("Consumers = %d, want 3 (fan-out)", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder()
		in := b.Input("I")
		b.Map("m", 1, in)
		b.Map("m", 1, in)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected duplicate-name error")
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		b := NewBuilder()
		b.Input("I")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected no-operator error")
		}
	})
	t.Run("undefined stream", func(t *testing.T) {
		b := NewBuilder()
		b.Input("I")
		b.Map("m", 1, StreamID(99))
		if _, err := b.Build(); err == nil {
			t.Fatal("expected undefined-stream error")
		}
	})
	t.Run("join window required", func(t *testing.T) {
		b := NewBuilder()
		i1, i2 := b.Input("a"), b.Input("b")
		b.Join("j", 1, 0.1, 0, i1, i2)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected join-window error")
		}
	})
	t.Run("join selectivity required", func(t *testing.T) {
		b := NewBuilder()
		i1, i2 := b.Input("a"), b.Input("b")
		b.Join("j", 1, 0, 1, i1, i2)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected join-selectivity error")
		}
	})
	t.Run("negative cost", func(t *testing.T) {
		b := NewBuilder()
		in := b.Input("I")
		b.Map("m", -1, in)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected negative-cost error")
		}
	})
	t.Run("mark input as variable selectivity", func(t *testing.T) {
		b := NewBuilder()
		in := b.Input("I")
		b.MarkVariableSelectivity(in)
		b.Map("m", 1, in)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error marking an input stream")
		}
	})
}

func TestKindString(t *testing.T) {
	want := []string{"filter", "map", "union", "aggregate", "join", "delay"}
	for k := Filter; k <= Delay; k++ {
		if k.String() != want[int(k)] {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want[int(k)])
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Fatal("unknown kind should render its number")
	}
	for _, name := range want {
		k, err := ParseKind(name)
		if err != nil || k.String() != name {
			t.Fatalf("ParseKind(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind should reject unknown names")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	b := NewBuilder()
	i1 := b.Input("pkts")
	i2 := b.Input("conns")
	f := b.Filter("f", 0.001, 0.5, i1)
	m := b.Map("m", 0.0005, f)
	j := b.Join("j", 0.0001, 0.01, 2.0, m, i2)
	b.SetXferCost(j, 0.0002)
	u := b.Union("u", 0.0001, j, f)
	b.Aggregate("agg", 0.002, 0.1, 5.0, u)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumOps() != g.NumOps() || g2.NumInputs() != g.NumInputs() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumOps(), g2.NumInputs(), g.NumOps(), g.NumInputs())
	}
	// Load models must be identical.
	lm1, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	lm2, err := BuildLoadModel(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !lm1.Coef.Equal(lm2.Coef, 1e-12) {
		t.Fatalf("round trip changed load model:\n%v\nvs\n%v", lm1.Coef, lm2.Coef)
	}
	// Xfer cost must survive.
	var found bool
	for _, s := range g2.Streams() {
		if s.XferCost == 0.0002 {
			found = true
		}
	}
	if !found {
		t.Fatal("xfer cost lost in round trip")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected JSON error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"inputs":[{"name":"a"}],"operators":[{"name":"x","kind":"nope","cost":1,"selectivity":1,"inputs":["a"]}]}`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"inputs":[{"name":"a"}],"operators":[{"name":"x","kind":"map","cost":1,"selectivity":1,"inputs":["missing"]}]}`)); err == nil {
		t.Fatal("expected missing-input error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"inputs":[{"name":"a"},{"name":"a"}],"operators":[]}`)); err == nil {
		t.Fatal("expected duplicate-input error")
	}
}

// randomTree builds a random linear operator tree for property tests.
func randomTree(rng *rand.Rand, inputs, ops int) *Graph {
	b := NewBuilder()
	var streams []StreamID
	for i := 0; i < inputs; i++ {
		streams = append(streams, b.Input(""))
	}
	for i := 0; i < ops; i++ {
		in := streams[rng.Intn(len(streams))]
		out := b.Delay("", 0.0001+rng.Float64()*0.0009, 0.5+rng.Float64()*0.5, in)
		streams = append(streams, out)
	}
	return b.MustBuild()
}

func TestValidateCatchesCycles(t *testing.T) {
	// Assemble a cyclic graph by hand (the builder cannot produce one).
	g := &Graph{consumers: map[StreamID][]OpID{}}
	g.streams = []*Stream{
		{ID: 0, Name: "in", Producer: -1},
		{ID: 1, Name: "a.out", Producer: 0},
		{ID: 2, Name: "b.out", Producer: 1},
	}
	g.inputs = []StreamID{0}
	g.ops = []*Operator{
		{ID: 0, Name: "a", Kind: Union, Cost: 1, Selectivity: 1, Inputs: []StreamID{0, 2}, Out: 1},
		{ID: 1, Name: "b", Kind: Map, Cost: 1, Selectivity: 1, Inputs: []StreamID{1}, Out: 2},
	}
	g.consumers[0] = []OpID{0}
	g.consumers[2] = []OpID{0}
	g.consumers[1] = []OpID{1}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("Validate = %v, want cyclic error", err)
	}
}

package query

import (
	"fmt"

	"rodsp/internal/mat"
)

// Variable is one dimension of the (linearized) load model. The first
// NumInputs variables are the system input stream rates; any further
// variables are cut streams introduced by the Section 6.2 linearization
// (outputs of joins and of variable-selectivity operators).
type Variable struct {
	Name   string
	Stream StreamID
	// Cut is true for linearization variables (not system inputs).
	Cut bool
}

// LoadModel is the linear(ized) load model of a query graph: the load of
// every operator is a linear function of the model variables,
// load(o_j) = Σ_k Coef[j][k] · x_k.
type LoadModel struct {
	G    *Graph
	Vars []Variable

	// Coef is the m×d operator load coefficient matrix L^o.
	Coef *mat.Matrix

	// Rate maps every stream to its rate expressed as a linear combination
	// of the model variables.
	Rate map[StreamID]mat.Vec
}

// BuildLoadModel derives the linearized load model of g. Operators are
// processed in topological order propagating symbolic rate vectors; every
// nonlinear operator (Join) and every variable-selectivity operator cuts the
// graph by introducing its output rate as a fresh variable, exactly as in
// the paper's Example 3. The join's own load becomes (cost·window / (sel·window)) =
// (cost/sel) times its output-rate variable.
func BuildLoadModel(g *Graph) (*LoadModel, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}

	// Pass 1: fix the variable set so vector dimensions are known.
	var vars []Variable
	varOfStream := map[StreamID]int{}
	for _, in := range g.Inputs() {
		varOfStream[in] = len(vars)
		vars = append(vars, Variable{Name: g.Stream(in).Name, Stream: in})
	}
	order := g.TopoOrder()
	for _, id := range order {
		op := g.Op(id)
		if op.Nonlinear() || op.VariableSelectivity {
			varOfStream[op.Out] = len(vars)
			vars = append(vars, Variable{Name: g.Stream(op.Out).Name, Stream: op.Out, Cut: true})
		}
	}
	d := len(vars)

	// Pass 2: propagate rate vectors and fill the coefficient matrix.
	lm := &LoadModel{
		G:    g,
		Vars: vars,
		Coef: mat.NewMatrix(g.NumOps(), d),
		Rate: make(map[StreamID]mat.Vec, g.NumStreams()),
	}
	for sid, k := range varOfStream {
		if !vars[k].Cut {
			e := mat.NewVec(d)
			e[k] = 1
			lm.Rate[sid] = e
		}
	}
	if err := propagate(lm, g, order, varOfStream, d); err != nil {
		return nil, err
	}

	// Drop variables no operator loads against (e.g. an input stream feeding
	// only joins: after the cut, all of its load is carried by the join's
	// output variable). The feasible set is a cylinder along such axes —
	// they cannot constrain any node — so the model projects them out.
	sums := lm.Coef.ColSums()
	keep := make([]int, 0, d)
	for k, s := range sums {
		if s > 0 {
			keep = append(keep, k)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("query: every variable has zero load (all operator costs zero?)")
	}
	if len(keep) < d {
		lm = projectVars(lm, keep)
	}
	return lm, nil
}

// propagate fills the coefficient matrix and stream-rate expressions by
// walking operators in topological order.
func propagate(lm *LoadModel, g *Graph, order []OpID, varOfStream map[StreamID]int, d int) error {
	for _, id := range order {
		op := g.Op(id)
		row := lm.Coef.Row(int(id))
		switch {
		case op.Nonlinear():
			// load = cost·window·r_u·r_v = (cost/sel)·r_out; r_out is the cut
			// variable (output rate = sel·window·r_u·r_v).
			k := varOfStream[op.Out]
			row[k] = op.Cost / op.Selectivity
			e := mat.NewVec(d)
			e[k] = 1
			lm.Rate[op.Out] = e
		case op.VariableSelectivity:
			in, err := totalInputRate(lm, op)
			if err != nil {
				return err
			}
			row.AddScaled(op.Cost, in)
			k := varOfStream[op.Out]
			e := mat.NewVec(d)
			e[k] = 1
			lm.Rate[op.Out] = e
		default:
			in, err := totalInputRate(lm, op)
			if err != nil {
				return err
			}
			row.AddScaled(op.Cost, in)
			lm.Rate[op.Out] = in.Scale(op.Selectivity)
		}
	}
	return nil
}

// projectVars rebuilds the model keeping only the listed variable indices.
func projectVars(lm *LoadModel, keep []int) *LoadModel {
	out := &LoadModel{
		G:    lm.G,
		Vars: make([]Variable, len(keep)),
		Coef: mat.NewMatrix(lm.Coef.Rows, len(keep)),
		Rate: make(map[StreamID]mat.Vec, len(lm.Rate)),
	}
	for nk, ok := range keep {
		out.Vars[nk] = lm.Vars[ok]
	}
	for j := 0; j < lm.Coef.Rows; j++ {
		src := lm.Coef.Row(j)
		dst := out.Coef.Row(j)
		for nk, ok := range keep {
			dst[nk] = src[ok]
		}
	}
	for sid, r := range lm.Rate {
		nr := mat.NewVec(len(keep))
		for nk, ok := range keep {
			nr[nk] = r[ok]
		}
		out.Rate[sid] = nr
	}
	return out
}

func totalInputRate(lm *LoadModel, op *Operator) (mat.Vec, error) {
	total := mat.NewVec(len(lm.Vars))
	for _, in := range op.Inputs {
		r, ok := lm.Rate[in]
		if !ok {
			return nil, fmt.Errorf("query: stream %d rate unknown when processing %q (topological order broken)", in, op.Name)
		}
		total.AddInPlace(r)
	}
	// A shard replica reads one key partition of the keyed stream: 1/k of
	// its rate. Each replica's coefficient row therefore inherits l/k of the
	// parent's, and the k rows column-sum back to the parent's exactly.
	if op.Shard == ShardReplica && op.ShardK > 1 {
		total = total.Scale(1 / float64(op.ShardK))
	}
	return total, nil
}

// D returns the number of model variables.
func (lm *LoadModel) D() int { return len(lm.Vars) }

// NumCuts returns how many linearization variables the model needed.
func (lm *LoadModel) NumCuts() int {
	n := 0
	for _, v := range lm.Vars {
		if v.Cut {
			n++
		}
	}
	return n
}

// CoefSums returns l_k = Σ_j l^o_jk, the total load coefficient of each
// variable across all operators.
func (lm *LoadModel) CoefSums() mat.Vec { return lm.Coef.ColSums() }

// Loads evaluates every operator's load at variable point x (length D).
func (lm *LoadModel) Loads(x mat.Vec) mat.Vec { return lm.Coef.MulVec(x) }

// ResolveVars computes the concrete value of every model variable given the
// system input stream rates, by resolving cut variables through the actual
// nonlinear rate equations in topological order (join output =
// sel·window·r_left·r_right; variable-selectivity output = sel·Σ inputs).
// This is the bridge for validating the linearization: Loads(ResolveVars(R))
// must equal the true nonlinear operator loads at R.
func (lm *LoadModel) ResolveVars(inputRates mat.Vec) (mat.Vec, error) {
	g := lm.G
	inputs := g.Inputs()
	if len(inputRates) != len(inputs) {
		return nil, fmt.Errorf("query: ResolveVars got %d rates for %d inputs", len(inputRates), len(inputs))
	}
	rate := make(map[StreamID]float64, g.NumStreams())
	for i, in := range inputs {
		rate[in] = inputRates[i]
	}
	for _, id := range g.TopoOrder() {
		op := g.Op(id)
		switch {
		case op.Nonlinear():
			rate[op.Out] = op.Selectivity * op.Window * rate[op.Inputs[0]] * rate[op.Inputs[1]]
		default:
			var total float64
			for _, in := range op.Inputs {
				total += rate[in]
			}
			if op.Shard == ShardReplica && op.ShardK > 1 {
				total /= float64(op.ShardK)
			}
			rate[op.Out] = op.Selectivity * total
		}
	}
	x := mat.NewVec(lm.D())
	for k, v := range lm.Vars {
		x[k] = rate[v.Stream]
	}
	return x, nil
}

// ActualLoads computes the true (possibly nonlinear) load of every operator
// at the given system input rates, independently of the linear model. Used
// to cross-check the linearization.
func (lm *LoadModel) ActualLoads(inputRates mat.Vec) (mat.Vec, error) {
	g := lm.G
	inputs := g.Inputs()
	if len(inputRates) != len(inputs) {
		return nil, fmt.Errorf("query: ActualLoads got %d rates for %d inputs", len(inputRates), len(inputs))
	}
	rate := make(map[StreamID]float64, g.NumStreams())
	for i, in := range inputs {
		rate[in] = inputRates[i]
	}
	loads := mat.NewVec(g.NumOps())
	for _, id := range g.TopoOrder() {
		op := g.Op(id)
		switch {
		case op.Nonlinear():
			pairs := op.Window * rate[op.Inputs[0]] * rate[op.Inputs[1]]
			loads[id] = op.Cost * pairs
			rate[op.Out] = op.Selectivity * pairs
		default:
			var total float64
			for _, in := range op.Inputs {
				total += rate[in]
			}
			if op.Shard == ShardReplica && op.ShardK > 1 {
				total /= float64(op.ShardK)
			}
			loads[id] = op.Cost * total
			rate[op.Out] = op.Selectivity * total
		}
	}
	return loads, nil
}

// Linear reports whether the model needed no cut variables (pure linear
// graph: filters, maps, unions, aggregates, delays with stable selectivity).
func (lm *LoadModel) Linear() bool { return lm.NumCuts() == 0 }

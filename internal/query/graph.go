// Package query models data-flow continuous-query graphs — the task unit of
// the paper — and derives their (linearized) load model: the operator load
// coefficient matrix L^o whose row j gives the load of operator o_j as a
// linear function of the system input stream rates (plus any variables
// introduced by the Section 6.2 linearization of nonlinear operators).
package query

import (
	"fmt"
	"sort"
)

// Kind enumerates the operator types the paper discusses. Filter, Map,
// Union, Aggregate and Delay have linear load (load = cost × input rate,
// output rate = selectivity × input rate); Join is the canonical nonlinear
// operator (load = cost × window × r_u × r_v) and triggers a linearization
// cut.
type Kind int

const (
	// Filter passes a tuple with probability Selectivity (cost per tuple).
	Filter Kind = iota
	// Map transforms every tuple (selectivity is usually 1).
	Map
	// Union merges its input streams; output rate is the sum of inputs.
	Union
	// Aggregate computes time-window aggregates; Selectivity is the ratio of
	// emitted aggregates to input tuples (e.g. 1/windowTuples).
	Aggregate
	// Join is a time-window-based join over exactly two inputs. Its load is
	// Cost × Window × r_left × r_right; Selectivity is per tuple pair.
	Join
	// Delay is the paper's instrumentation operator: an operator whose
	// per-tuple cost and selectivity are directly configurable (Section 7.1).
	Delay
)

// String returns the lower-case operator kind name.
func (k Kind) String() string {
	switch k {
	case Filter:
		return "filter"
	case Map:
		return "map"
	case Union:
		return "union"
	case Aggregate:
		return "aggregate"
	case Join:
		return "join"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ShardRole marks an operator's role in a keyed shard group created by the
// Shards transform: the splitter that key-partitions the parent's input, the
// k replicas that each process one partition, and the merge that reunifies
// their outputs. ShardNone is every ordinary operator.
type ShardRole int

const (
	// ShardNone is an ordinary (unsharded) operator.
	ShardNone ShardRole = iota
	// ShardSplit is the key-partitioning splitter; its output stream is the
	// keyed stream the engine routes through a partition table.
	ShardSplit
	// ShardReplica is one of the k key-partitioned replicas of the parent
	// operator; it sees 1/k of the keyed stream's rate.
	ShardReplica
	// ShardMerge is the union reunifying the k replica outputs into the
	// stream the parent's consumers read.
	ShardMerge
)

// String names the shard role.
func (r ShardRole) String() string {
	switch r {
	case ShardNone:
		return "none"
	case ShardSplit:
		return "split"
	case ShardReplica:
		return "replica"
	case ShardMerge:
		return "merge"
	default:
		return fmt.Sprintf("shardrole(%d)", int(r))
	}
}

// OpID identifies an operator within a Graph (dense, 0-based).
type OpID int

// StreamID identifies a stream within a Graph (dense, 0-based).
type StreamID int

// Operator is a continuous-query operator: the minimum allocation unit.
type Operator struct {
	ID   OpID
	Name string
	Kind Kind

	// Cost is the CPU time (seconds of a capacity-1 node) to process one
	// input tuple; for Join it is the cost per tuple *pair*.
	Cost float64

	// Selectivity is the ratio of output rate to total input rate; for Join
	// it is per tuple pair.
	Selectivity float64

	// Window is the time window in seconds (Join and Aggregate only).
	Window float64

	// VariableSelectivity marks an operator whose selectivity is not stable,
	// forcing a linearization cut at its output (Section 6.2, Example 3's o1).
	VariableSelectivity bool

	// Shard, ShardParent, ShardIndex and ShardK describe the operator's role
	// in a keyed shard group (the Shards transform). ShardParent is the name
	// of the operator that was sharded; ShardIndex is the replica's position
	// in [0, ShardK) (replicas only); ShardK is the group's shard count.
	Shard       ShardRole
	ShardParent string
	ShardIndex  int
	ShardK      int

	Inputs []StreamID
	Out    StreamID
}

// Nonlinear reports whether this operator's load cannot be written as a
// linear function of its input rates (and thus requires a cut variable).
func (o *Operator) Nonlinear() bool { return o.Kind == Join }

// Stream is a directed arc carrying tuples from one producer (a system input
// or an operator) to any number of consumer operators.
type Stream struct {
	ID   StreamID
	Name string

	// Producer is the operator producing this stream, or -1 for a system
	// input stream.
	Producer OpID

	// XferCost is the per-tuple CPU overhead of shipping this stream across
	// a node boundary (Section 6.3 operator clustering); zero by default.
	XferCost float64
}

// Input reports whether the stream is a system input (pushed from an
// external data source).
func (s *Stream) Input() bool { return s.Producer < 0 }

// Graph is an acyclic data-flow query graph.
type Graph struct {
	ops       []*Operator
	streams   []*Stream
	consumers map[StreamID][]OpID
	inputs    []StreamID // system input streams, in creation order
}

// NumOps returns the number of operators m.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumStreams returns the number of streams.
func (g *Graph) NumStreams() int { return len(g.streams) }

// NumInputs returns the number of system input streams d (before
// linearization adds cut variables).
func (g *Graph) NumInputs() int { return len(g.inputs) }

// Op returns the operator with the given id.
func (g *Graph) Op(id OpID) *Operator { return g.ops[id] }

// Ops returns the operator slice (shared; callers must not mutate).
func (g *Graph) Ops() []*Operator { return g.ops }

// Stream returns the stream with the given id.
func (g *Graph) Stream(id StreamID) *Stream { return g.streams[id] }

// Streams returns the stream slice (shared; callers must not mutate).
func (g *Graph) Streams() []*Stream { return g.streams }

// Inputs returns the system input streams in creation order.
func (g *Graph) Inputs() []StreamID {
	out := make([]StreamID, len(g.inputs))
	copy(out, g.inputs)
	return out
}

// Consumers returns the operators reading the given stream.
func (g *Graph) Consumers(id StreamID) []OpID {
	out := make([]OpID, len(g.consumers[id]))
	copy(out, g.consumers[id])
	return out
}

// Sinks returns the streams with no consumers (application outputs).
func (g *Graph) Sinks() []StreamID {
	var out []StreamID
	for _, s := range g.streams {
		if len(g.consumers[s.ID]) == 0 {
			out = append(out, s.ID)
		}
	}
	return out
}

// TopoOrder returns the operators in a topological order of the data flow
// (every operator appears after the producers of all its inputs). The graph
// is acyclic by construction, so this always succeeds.
func (g *Graph) TopoOrder() []OpID {
	order := make([]OpID, 0, len(g.ops))
	done := make([]bool, len(g.ops))
	// Kahn's algorithm over operator dependencies.
	indeg := make([]int, len(g.ops))
	for _, o := range g.ops {
		for _, in := range o.Inputs {
			if !g.streams[in].Input() {
				indeg[o.ID]++
			}
		}
	}
	queue := make([]OpID, 0, len(g.ops))
	for _, o := range g.ops {
		if indeg[o.ID] == 0 {
			queue = append(queue, o.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if done[id] {
			continue
		}
		done[id] = true
		order = append(order, id)
		for _, c := range g.consumers[g.ops[id].Out] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return order
}

// Arc is a producer→consumer operator pair connected by a stream; system
// input arcs (no producer operator) are not Arcs.
type Arc struct {
	From, To OpID
	Stream   StreamID
}

// Arcs returns every operator-to-operator arc in the graph, ordered by
// (From, To).
func (g *Graph) Arcs() []Arc {
	var arcs []Arc
	for _, s := range g.streams {
		if s.Input() {
			continue
		}
		for _, c := range g.consumers[s.ID] {
			arcs = append(arcs, Arc{From: s.Producer, To: c, Stream: s.ID})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs
}

// Connected reports whether operators a and b share a stream (either
// direction).
func (g *Graph) Connected(a, b OpID) bool {
	oa, ob := g.ops[a], g.ops[b]
	for _, in := range ob.Inputs {
		if !g.streams[in].Input() && g.streams[in].Producer == a {
			return true
		}
	}
	for _, in := range oa.Inputs {
		if !g.streams[in].Input() && g.streams[in].Producer == b {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: every operator has at least one
// input, joins have exactly two, selectivities and costs are non-negative,
// every input stream id is in range, and the flow is acyclic (guaranteed by
// the builder, but re-checked for graphs assembled from specs).
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("query: graph has no operators")
	}
	if len(g.inputs) == 0 {
		return fmt.Errorf("query: graph has no system input streams")
	}
	for _, o := range g.ops {
		if len(o.Inputs) == 0 {
			return fmt.Errorf("query: operator %q has no inputs", o.Name)
		}
		if o.Kind == Join && len(o.Inputs) != 2 {
			return fmt.Errorf("query: join %q must have exactly 2 inputs, has %d", o.Name, len(o.Inputs))
		}
		if o.Kind != Union && o.Kind != Join && len(o.Inputs) != 1 {
			return fmt.Errorf("query: %s %q must have exactly 1 input, has %d", o.Kind, o.Name, len(o.Inputs))
		}
		if o.Cost < 0 {
			return fmt.Errorf("query: operator %q has negative cost %g", o.Name, o.Cost)
		}
		if o.Selectivity < 0 {
			return fmt.Errorf("query: operator %q has negative selectivity %g", o.Name, o.Selectivity)
		}
		if o.Kind == Join && o.Selectivity <= 0 {
			return fmt.Errorf("query: join %q needs positive selectivity for linearization", o.Name)
		}
		if o.Kind == Join && o.Window <= 0 {
			return fmt.Errorf("query: join %q needs a positive window", o.Name)
		}
		for _, in := range o.Inputs {
			if int(in) < 0 || int(in) >= len(g.streams) {
				return fmt.Errorf("query: operator %q references unknown stream %d", o.Name, in)
			}
		}
		if int(o.Out) < 0 || int(o.Out) >= len(g.streams) {
			return fmt.Errorf("query: operator %q has unknown output stream %d", o.Name, o.Out)
		}
		if g.streams[o.Out].Producer != o.ID {
			return fmt.Errorf("query: output stream of %q does not point back at it", o.Name)
		}
	}
	if got := len(g.TopoOrder()); got != len(g.ops) {
		return fmt.Errorf("query: graph is cyclic (topological order covers %d of %d operators)", got, len(g.ops))
	}
	return nil
}

package query

import "fmt"

// Builder assembles an acyclic query graph. Each operator constructor takes
// the ids of already-created streams, so cycles are impossible by
// construction. Names are optional ("" auto-generates one) and must be
// unique when given.
type Builder struct {
	g     *Graph
	names map[string]bool
	err   error
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{
		g:     &Graph{consumers: map[StreamID][]OpID{}},
		names: map[string]bool{},
	}
}

// Input declares a system input stream and returns its id.
func (b *Builder) Input(name string) StreamID {
	id := b.newStream(name, -1)
	b.g.inputs = append(b.g.inputs, id)
	return id
}

// Filter adds a filter with the given per-tuple cost and selectivity.
func (b *Builder) Filter(name string, cost, sel float64, in StreamID) StreamID {
	return b.addOp(&Operator{Name: name, Kind: Filter, Cost: cost, Selectivity: sel, Inputs: []StreamID{in}})
}

// Map adds a map operator (selectivity 1).
func (b *Builder) Map(name string, cost float64, in StreamID) StreamID {
	return b.addOp(&Operator{Name: name, Kind: Map, Cost: cost, Selectivity: 1, Inputs: []StreamID{in}})
}

// Union merges two or more input streams (selectivity 1 per input tuple).
func (b *Builder) Union(name string, cost float64, ins ...StreamID) StreamID {
	inputs := make([]StreamID, len(ins))
	copy(inputs, ins)
	return b.addOp(&Operator{Name: name, Kind: Union, Cost: cost, Selectivity: 1, Inputs: inputs})
}

// Aggregate adds a time-window aggregate; sel is the ratio of emitted
// aggregate tuples to input tuples.
func (b *Builder) Aggregate(name string, cost, sel, window float64, in StreamID) StreamID {
	return b.addOp(&Operator{Name: name, Kind: Aggregate, Cost: cost, Selectivity: sel, Window: window, Inputs: []StreamID{in}})
}

// Join adds a time-window join of two streams; cost and sel are per tuple
// pair, window in seconds.
func (b *Builder) Join(name string, cost, sel, window float64, left, right StreamID) StreamID {
	return b.addOp(&Operator{Name: name, Kind: Join, Cost: cost, Selectivity: sel, Window: window, Inputs: []StreamID{left, right}})
}

// Delay adds the paper's configurable-cost instrumentation operator.
func (b *Builder) Delay(name string, cost, sel float64, in StreamID) StreamID {
	return b.addOp(&Operator{Name: name, Kind: Delay, Cost: cost, Selectivity: sel, Inputs: []StreamID{in}})
}

// AddOp adds a pre-filled operator (Inputs and scalar fields set; ID, Out
// and name bookkeeping are filled in) and returns its output stream.
func (b *Builder) AddOp(op *Operator) StreamID { return b.addOp(op) }

// MarkVariableSelectivity flags the producer of stream s as having unstable
// selectivity, forcing a linearization cut at s (Section 6.2).
func (b *Builder) MarkVariableSelectivity(s StreamID) {
	if b.err != nil {
		return
	}
	st := b.g.streams[s]
	if st.Input() {
		b.err = fmt.Errorf("query: cannot mark input stream %q as variable-selectivity", st.Name)
		return
	}
	b.g.ops[st.Producer].VariableSelectivity = true
}

// SetXferCost sets the per-tuple network transfer CPU cost of stream s
// (Section 6.3 clustering input).
func (b *Builder) SetXferCost(s StreamID, cost float64) {
	if b.err == nil {
		b.g.streams[s].XferCost = cost
	}
}

// Build validates and returns the graph. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build for tests and examples with known-good graphs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func (b *Builder) addOp(op *Operator) StreamID {
	if b.err != nil {
		return -1
	}
	for _, in := range op.Inputs {
		if int(in) < 0 || int(in) >= len(b.g.streams) {
			b.err = fmt.Errorf("query: operator %q uses undefined stream %d", op.Name, in)
			return -1
		}
	}
	op.ID = OpID(len(b.g.ops))
	if op.Name == "" {
		op.Name = fmt.Sprintf("%s%d", op.Kind, op.ID)
	}
	if b.names[op.Name] {
		b.err = fmt.Errorf("query: duplicate operator name %q", op.Name)
		return -1
	}
	b.names[op.Name] = true
	out := b.newStream(op.Name+".out", op.ID)
	op.Out = out
	b.g.ops = append(b.g.ops, op)
	for _, in := range op.Inputs {
		b.g.consumers[in] = append(b.g.consumers[in], op.ID)
	}
	return out
}

func (b *Builder) newStream(name string, producer OpID) StreamID {
	id := StreamID(len(b.g.streams))
	if name == "" {
		name = fmt.Sprintf("s%d", id)
	}
	b.g.streams = append(b.g.streams, &Stream{ID: id, Name: name, Producer: producer})
	return id
}

package query

import (
	"fmt"
	"sort"
)

// ShardSlots is the fixed slot count of every keyed partition table: keys
// hash onto slots, slots map onto shard replicas. Fixed (Flink-style max
// parallelism) so repartitioning reassigns slots without rehashing keys.
const ShardSlots = 64

// SlotOfKey hashes a tuple key onto a partition-table slot. Fibonacci
// (multiplicative) hashing spreads sequential and clustered key spaces
// evenly across the slot range.
func SlotOfKey(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> 58)
}

// UniformSlots is the uniform (hash-modulo) slot assignment: slot i to
// shard i % k. The baseline skew-aware assignment is measured against.
func UniformSlots(k int) []int {
	a := make([]int, ShardSlots)
	for i := range a {
		a[i] = i % k
	}
	return a
}

// ShardConfig tunes the Shards transform. SplitCost and MergeCost are the
// per-tuple CPU cost of the key-partitioning splitter and the reunifying
// merge (the explicit shuffle-cost terms the load model carries); XferCost
// is the per-tuple transfer cost stamped on every cut arc (splitter→replica
// and replica→merge), so clustering and the migration planner see the
// shuffle's network price.
type ShardConfig struct {
	K         int
	SplitCost float64
	MergeCost float64
	XferCost  float64
}

// DefaultShardConfig returns the shuffle-cost defaults used when a caller
// only knows k: splitter/merge at a fraction of the cheapest realistic
// operator cost, cut arcs at the same transfer cost.
func DefaultShardConfig(k int) ShardConfig {
	return ShardConfig{K: k, SplitCost: 0.00002, MergeCost: 0.00001, XferCost: 0.00001}
}

// Shards rebuilds g with operator target split into cfg.K key-partitioned
// shards: a splitter consuming the target's input (its output is the keyed
// stream), K replica operators each inheriting the target's kind, cost,
// selectivity and window but seeing 1/K of the keyed stream's rate, and a
// merge union whose output takes the target's place for every downstream
// consumer. The returned graph is freshly built — operator and stream ids
// are renumbered — so Shards must run before placement and deployment.
//
// Join and Union operators cannot be sharded (their multi-input semantics
// would need co-partitioning), and a shard-group member cannot be sharded
// again.
func Shards(g *Graph, target OpID, cfg ShardConfig) (*Graph, error) {
	if int(target) < 0 || int(target) >= g.NumOps() {
		return nil, fmt.Errorf("query: Shards target %d outside [0,%d)", target, g.NumOps())
	}
	t := g.Op(target)
	if cfg.K < 2 {
		return nil, fmt.Errorf("query: Shards(%q) needs k ≥ 2, got %d", t.Name, cfg.K)
	}
	if t.Kind == Join || t.Kind == Union {
		return nil, fmt.Errorf("query: cannot shard %s %q (multi-input operators need co-partitioning)", t.Kind, t.Name)
	}
	if t.Shard != ShardNone {
		return nil, fmt.Errorf("query: %q is already part of shard group %q", t.Name, t.ShardParent)
	}
	if cfg.SplitCost < 0 || cfg.MergeCost < 0 || cfg.XferCost < 0 {
		return nil, fmt.Errorf("query: Shards(%q) costs must be non-negative", t.Name)
	}

	b := NewBuilder()
	// System inputs first, in the original creation order, so input indices
	// (and therefore load-model variable positions) are stable.
	smap := make(map[StreamID]StreamID, g.NumStreams())
	for _, in := range g.Inputs() {
		smap[in] = b.Input(g.Stream(in).Name)
	}
	for _, id := range g.TopoOrder() {
		op := g.Op(id)
		ins := make([]StreamID, len(op.Inputs))
		for i, in := range op.Inputs {
			ns, ok := smap[in]
			if !ok {
				return nil, fmt.Errorf("query: Shards: stream %d unmapped at %q (topological order broken)", in, op.Name)
			}
			ins[i] = ns
		}
		if id != target {
			smap[op.Out] = b.AddOp(cloneOp(op, ins))
			continue
		}
		// Splitter: consumes the parent's input, emits the keyed stream.
		split := &Operator{
			Name: t.Name + "#split", Kind: Map, Cost: cfg.SplitCost, Selectivity: 1,
			Shard: ShardSplit, ShardParent: t.Name, ShardK: cfg.K,
			Inputs: []StreamID{ins[0]},
		}
		keyed := b.AddOp(split)
		b.SetXferCost(keyed, cfg.XferCost)
		// K replicas, each a 1/K-rate copy of the parent.
		outs := make([]StreamID, cfg.K)
		for i := 0; i < cfg.K; i++ {
			r := &Operator{
				Name: fmt.Sprintf("%s#%d", t.Name, i), Kind: t.Kind,
				Cost: t.Cost, Selectivity: t.Selectivity, Window: t.Window,
				VariableSelectivity: t.VariableSelectivity,
				Shard:               ShardReplica, ShardParent: t.Name, ShardIndex: i, ShardK: cfg.K,
				Inputs: []StreamID{keyed},
			}
			outs[i] = b.AddOp(r)
			b.SetXferCost(outs[i], cfg.XferCost)
		}
		// Merge: reunifies the replica outputs under the parent's old stream
		// identity for every downstream consumer.
		merge := &Operator{
			Name: t.Name + "#merge", Kind: Union, Cost: cfg.MergeCost, Selectivity: 1,
			Shard: ShardMerge, ShardParent: t.Name, ShardK: cfg.K,
			Inputs: outs,
		}
		smap[op.Out] = b.AddOp(merge)
	}
	// Preserve the original per-stream transfer costs.
	for _, s := range g.Streams() {
		if s.XferCost != 0 {
			if ns, ok := smap[s.ID]; ok {
				b.SetXferCost(ns, s.XferCost)
			}
		}
	}
	return b.Build()
}

// cloneOp copies an operator for re-insertion into a fresh builder (ID, Out
// and name bookkeeping are reassigned by AddOp).
func cloneOp(op *Operator, ins []StreamID) *Operator {
	return &Operator{
		Name: op.Name, Kind: op.Kind, Cost: op.Cost, Selectivity: op.Selectivity,
		Window: op.Window, VariableSelectivity: op.VariableSelectivity,
		Shard: op.Shard, ShardParent: op.ShardParent,
		ShardIndex: op.ShardIndex, ShardK: op.ShardK,
		Inputs: ins,
	}
}

// ShardGroup collects the members of one keyed shard group: the splitter,
// the replicas ordered by shard index, the merge, and the keyed stream the
// engine routes through a partition table.
type ShardGroup struct {
	Parent   string
	Split    OpID
	Replicas []OpID
	Merge    OpID
	Stream   StreamID // the splitter's output: the keyed stream
	K        int
}

// ShardGroups returns every shard group in the graph, ordered by splitter
// id (deterministic). It errors on structurally broken groups — a replica
// without its splitter, a mismatched K — which can only arise from graphs
// assembled outside the Shards transform.
func ShardGroups(g *Graph) ([]ShardGroup, error) {
	byParent := map[string]*ShardGroup{}
	for _, op := range g.Ops() {
		if op.Shard == ShardNone {
			continue
		}
		grp := byParent[op.ShardParent]
		if grp == nil {
			grp = &ShardGroup{Parent: op.ShardParent, Split: -1, Merge: -1, Stream: -1, K: op.ShardK}
			byParent[op.ShardParent] = grp
		}
		if op.ShardK != grp.K {
			return nil, fmt.Errorf("query: shard group %q has mixed k (%d vs %d)", op.ShardParent, op.ShardK, grp.K)
		}
		switch op.Shard {
		case ShardSplit:
			grp.Split = op.ID
			grp.Stream = op.Out
		case ShardReplica:
			grp.Replicas = append(grp.Replicas, op.ID)
		case ShardMerge:
			grp.Merge = op.ID
		}
	}
	out := make([]ShardGroup, 0, len(byParent))
	for _, grp := range byParent {
		if grp.Split < 0 || grp.Merge < 0 {
			return nil, fmt.Errorf("query: shard group %q is missing its splitter or merge", grp.Parent)
		}
		if len(grp.Replicas) != grp.K {
			return nil, fmt.Errorf("query: shard group %q has %d replicas for k=%d", grp.Parent, len(grp.Replicas), grp.K)
		}
		sort.Slice(grp.Replicas, func(i, j int) bool {
			return g.Op(grp.Replicas[i]).ShardIndex < g.Op(grp.Replicas[j]).ShardIndex
		})
		out = append(out, *grp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Split < out[j].Split })
	return out, nil
}

// ShardGroupOf returns the group a replica operator belongs to, or an error
// when op is not a shard replica.
func ShardGroupOf(g *Graph, op OpID) (ShardGroup, error) {
	o := g.Op(op)
	if o.Shard != ShardReplica {
		return ShardGroup{}, fmt.Errorf("query: %q is not a shard replica", o.Name)
	}
	groups, err := ShardGroups(g)
	if err != nil {
		return ShardGroup{}, err
	}
	for _, grp := range groups {
		if grp.Parent == o.ShardParent {
			return grp, nil
		}
	}
	return ShardGroup{}, fmt.Errorf("query: shard group %q not found", o.ShardParent)
}

package query

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
)

// TestExample1LoadCoefficients reproduces the paper's Example 1/2: for the
// Figure 4 graph with costs (4, 6, 9, 4) and selectivities s1=1, s3=0.5,
// L^o must be [[4 0] [6 0] [0 9] [0 2]].
func TestExample1LoadCoefficients(t *testing.T) {
	g := fig4(t)
	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.MatrixOf(
		[]float64{4, 0},
		[]float64{6, 0},
		[]float64{0, 9},
		[]float64{0, 2},
	)
	if !lm.Coef.Equal(want, 1e-12) {
		t.Fatalf("L^o =\n%v\nwant\n%v", lm.Coef, want)
	}
	if !lm.Linear() {
		t.Fatal("Figure 4 graph is linear")
	}
	if got := lm.CoefSums(); !got.Equal(mat.VecOf(10, 11), 1e-12) {
		t.Fatalf("l_k = %v, want [10 11]", got)
	}
}

// TestExample3Linearization reproduces the paper's Example 3 (Figure 13):
// o1 has variable selectivity (cut at r3), o5 is a join (cut at r4). The
// model must have 4 variables and the join's load must be (c5/s5)·r4.
func TestExample3Linearization(t *testing.T) {
	b := NewBuilder()
	r1 := b.Input("r1")
	r2 := b.Input("r2")
	s1 := b.Filter("o1", 1.0, 0.5, r1) // variable selectivity
	b.MarkVariableSelectivity(s1)
	s2 := b.Map("o2", 2.0, s1)
	s3 := b.Filter("o3", 3.0, 0.8, r2)
	s4 := b.Map("o4", 4.0, s3)
	const c5, sel5, w5 = 5.0, 0.25, 2.0
	s5 := b.Join("o5", c5, sel5, w5, s2, s4)
	b.Map("o6", 6.0, s5)
	g := b.MustBuild()

	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if lm.D() != 4 {
		t.Fatalf("D = %d, want 4 (r1, r2, cut(o1.out), cut(o5.out))", lm.D())
	}
	if lm.NumCuts() != 2 {
		t.Fatalf("NumCuts = %d, want 2", lm.NumCuts())
	}
	// Locate the variable indices.
	varIdx := map[string]int{}
	for k, v := range lm.Vars {
		varIdx[v.Name] = k
	}
	kr1, kr2 := varIdx["r1"], varIdx["r2"]
	k3, ok3 := varIdx["o1.out"]
	k4, ok4 := varIdx["o5.out"]
	if !ok3 || !ok4 {
		t.Fatalf("cut variables missing: %v", lm.Vars)
	}
	// o1 loads against r1; o2 against the cut r3; o5 against the cut r4 with
	// coefficient c5/s5; o6 against r4 with its own cost.
	check := func(op int, k int, want float64) {
		t.Helper()
		if got := lm.Coef.At(op, k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Coef[o%d][var %d] = %g, want %g\n%v", op+1, k, got, want, lm.Coef)
		}
	}
	check(0, kr1, 1.0)
	check(1, k3, 2.0)
	check(2, kr2, 3.0)
	check(3, kr2, 4.0*0.8)
	check(4, k4, c5/sel5)
	check(5, k4, 6.0*1.0) // o6 sees o5's output stream rate = r4 directly

	// Each row must have exactly one block of support; spot-check zeros.
	if lm.Coef.At(4, kr1) != 0 || lm.Coef.At(4, kr2) != 0 {
		t.Fatal("join load must not depend directly on system inputs after the cut")
	}
}

// TestLinearizationConsistency is the core property of Section 6.2: for any
// graph, evaluating the linear model at the resolved variable values must
// equal the true nonlinear loads.
func TestLinearizationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := randomMixedGraph(rng)
		lm, err := BuildLoadModel(g)
		if err != nil {
			t.Fatal(err)
		}
		rates := mat.NewVec(g.NumInputs())
		for i := range rates {
			rates[i] = rng.Float64() * 100
		}
		x, err := lm.ResolveVars(rates)
		if err != nil {
			t.Fatal(err)
		}
		linear := lm.Loads(x)
		actual, err := lm.ActualLoads(rates)
		if err != nil {
			t.Fatal(err)
		}
		if !linear.Equal(actual, 1e-6) {
			t.Fatalf("trial %d: linearized loads %v != actual loads %v", trial, linear, actual)
		}
	}
}

// randomMixedGraph builds a random graph mixing linear operators, joins and
// variable-selectivity operators.
func randomMixedGraph(rng *rand.Rand) *Graph {
	b := NewBuilder()
	var streams []StreamID
	for i := 0; i < 2+rng.Intn(3); i++ {
		streams = append(streams, b.Input(""))
	}
	nops := 3 + rng.Intn(12)
	for i := 0; i < nops; i++ {
		in := streams[rng.Intn(len(streams))]
		cost := 0.0001 + rng.Float64()*0.001
		var out StreamID
		switch rng.Intn(6) {
		case 0:
			out = b.Filter("", cost, 0.2+rng.Float64()*0.8, in)
		case 1:
			out = b.Map("", cost, in)
		case 2:
			in2 := streams[rng.Intn(len(streams))]
			out = b.Union("", cost, in, in2)
		case 3:
			out = b.Aggregate("", cost, 0.1+rng.Float64()*0.4, 1+rng.Float64()*5, in)
		case 4:
			in2 := streams[rng.Intn(len(streams))]
			if in2 == in {
				out = b.Map("", cost, in)
			} else {
				out = b.Join("", cost, 0.01+rng.Float64()*0.2, 0.5+rng.Float64()*2, in, in2)
			}
		default:
			out = b.Filter("", cost, 0.2+rng.Float64()*0.8, in)
			if rng.Intn(2) == 0 {
				b.MarkVariableSelectivity(out)
			}
		}
		streams = append(streams, out)
	}
	return b.MustBuild()
}

// An input stream consumed only by a join carries no load coefficient after
// the linearization cut; the model must project that variable out (the
// feasible set is a cylinder along it) while keeping resolution exact.
func TestJoinOnlyInputProjectedOut(t *testing.T) {
	b := NewBuilder()
	l := b.Input("left")
	r := b.Input("right") // feeds only the join
	fl := b.Filter("fl", 0.001, 0.5, l)
	j := b.Join("j", 0.0001, 0.1, 1.0, fl, r)
	b.Map("m", 0.002, j)
	g := b.MustBuild()
	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	// Variables: left + join cut. "right" must be gone.
	if lm.D() != 2 {
		t.Fatalf("D = %d, want 2 (left + cut), vars %v", lm.D(), lm.Vars)
	}
	for _, v := range lm.Vars {
		if v.Name == "right" {
			t.Fatal("zero-coefficient variable not projected out")
		}
	}
	for k, s := range lm.CoefSums() {
		if s <= 0 {
			t.Fatalf("column %d sum %g after projection", k, s)
		}
	}
	// Resolution and actual loads still agree (the dropped rate is consumed
	// inside the nonlinear cut resolution).
	rates := mat.VecOf(40, 25)
	x, err := lm.ResolveVars(rates)
	if err != nil {
		t.Fatal(err)
	}
	linear := lm.Loads(x)
	actual, err := lm.ActualLoads(rates)
	if err != nil {
		t.Fatal(err)
	}
	if !linear.Equal(actual, 1e-9) {
		t.Fatalf("projection broke the linearization: %v vs %v", linear, actual)
	}
}

func TestResolveVarsErrors(t *testing.T) {
	g := fig4(t)
	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lm.ResolveVars(mat.VecOf(1)); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := lm.ActualLoads(mat.VecOf(1, 2, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestLoadsOfRandomLinearTreeAreNonNegativeAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomTree(rng, 1+rng.Intn(4), 5+rng.Intn(20))
		lm, err := BuildLoadModel(g)
		if err != nil {
			t.Fatal(err)
		}
		r1 := mat.NewVec(lm.D())
		r2 := mat.NewVec(lm.D())
		for i := range r1 {
			r1[i] = rng.Float64() * 10
			r2[i] = r1[i] * 2
		}
		l1, l2 := lm.Loads(r1), lm.Loads(r2)
		for j := range l1 {
			if l1[j] < 0 {
				t.Fatalf("negative load %g", l1[j])
			}
			if l2[j] < l1[j]-1e-12 {
				t.Fatal("loads must be monotone in rates")
			}
			if math.Abs(l2[j]-2*l1[j]) > 1e-9 {
				t.Fatal("linear model must be homogeneous of degree 1")
			}
		}
	}
}

func TestBuildLoadModelRejectsInvalidGraph(t *testing.T) {
	g := &Graph{consumers: map[StreamID][]OpID{}}
	if _, err := BuildLoadModel(g); err == nil {
		t.Fatal("expected validation error for empty graph")
	}
}

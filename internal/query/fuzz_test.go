package query

import (
	"strings"
	"testing"
)

// FuzzReadJSON ensures graph-spec parsing never panics and that every graph
// it accepts is valid and survives a serialization round trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"inputs":[{"name":"a"}],"operators":[{"name":"m","kind":"map","cost":1,"selectivity":1,"inputs":["a"]}]}`)
	f.Add(`{"inputs":[{"name":"a"},{"name":"b"}],"operators":[{"name":"j","kind":"join","cost":1,"selectivity":0.1,"window":2,"inputs":["a","b"]}]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var sb strings.Builder
		if err := WriteJSON(&sb, g); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumOps() != g.NumOps() || g2.NumInputs() != g.NumInputs() {
			t.Fatal("round trip changed the graph shape")
		}
	})
}

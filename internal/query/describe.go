package query

import (
	"fmt"
	"strings"
)

// Describe renders a human-readable summary of a graph: inputs, operators
// in topological order with their parameters and wiring, and sinks — the
// view the command-line tools print for inspection.
func Describe(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d operators, %d inputs, %d streams\n",
		g.NumOps(), g.NumInputs(), g.NumStreams())
	for _, in := range g.Inputs() {
		s := g.Stream(in)
		consumers := consumerNames(g, in)
		fmt.Fprintf(&b, "  input %-16s -> %s\n", s.Name, consumers)
	}
	for _, id := range g.TopoOrder() {
		op := g.Op(id)
		var parts []string
		parts = append(parts, fmt.Sprintf("cost=%g", op.Cost))
		parts = append(parts, fmt.Sprintf("sel=%g", op.Selectivity))
		if op.Window > 0 {
			parts = append(parts, fmt.Sprintf("win=%gs", op.Window))
		}
		if op.VariableSelectivity {
			parts = append(parts, "var-sel")
		}
		if x := g.Stream(op.Out).XferCost; x > 0 {
			parts = append(parts, fmt.Sprintf("xfer=%g", x))
		}
		dest := consumerNames(g, op.Out)
		fmt.Fprintf(&b, "  %-9s %-16s (%s) -> %s\n",
			op.Kind.String(), op.Name, strings.Join(parts, " "), dest)
	}
	return b.String()
}

func consumerNames(g *Graph, sid StreamID) string {
	consumers := g.Consumers(sid)
	if len(consumers) == 0 {
		return "[sink]"
	}
	names := make([]string, len(consumers))
	for i, c := range consumers {
		names[i] = g.Op(c).Name
	}
	return strings.Join(names, ", ")
}

// DescribeLoadModel renders the linearized load model: each variable with
// its total coefficient, and each operator's coefficient row.
func DescribeLoadModel(lm *LoadModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load model: %d variables (%d linearization cuts)\n", lm.D(), lm.NumCuts())
	sums := lm.CoefSums()
	for k, v := range lm.Vars {
		kind := "input"
		if v.Cut {
			kind = "cut"
		}
		fmt.Fprintf(&b, "  x%d = rate(%s) [%s], total coefficient l_%d = %.6g\n",
			k, v.Name, kind, k, sums[k])
	}
	for j := 0; j < lm.Coef.Rows; j++ {
		fmt.Fprintf(&b, "  load(%s) = %s\n", lm.G.Op(OpID(j)).Name, linearForm(lm.Coef.Row(j)))
	}
	return b.String()
}

func linearForm(row []float64) string {
	var terms []string
	for k, c := range row {
		if c != 0 {
			terms = append(terms, fmt.Sprintf("%.6g·x%d", c, k))
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}

package query

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is the JSON-serializable form of a query graph, used by the command
// line tools to load and store graphs.
type Spec struct {
	Inputs []InputSpec `json:"inputs"`
	Ops    []OpSpec    `json:"operators"`
}

// InputSpec declares one system input stream.
type InputSpec struct {
	Name string `json:"name"`
}

// OpSpec declares one operator; inputs reference either input-stream names
// or other operators' names (meaning that operator's output stream).
type OpSpec struct {
	Name                string   `json:"name"`
	Kind                string   `json:"kind"`
	Cost                float64  `json:"cost"`
	Selectivity         float64  `json:"selectivity"`
	Window              float64  `json:"window,omitempty"`
	VariableSelectivity bool     `json:"variableSelectivity,omitempty"`
	Inputs              []string `json:"inputs"`
	XferCost            float64  `json:"xferCost,omitempty"`
}

// ParseKind converts a kind name to its Kind value.
func ParseKind(s string) (Kind, error) {
	for k := Filter; k <= Delay; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("query: unknown operator kind %q", s)
}

// FromSpec builds a validated graph from a spec.
func FromSpec(spec *Spec) (*Graph, error) {
	b := NewBuilder()
	streams := map[string]StreamID{}
	for _, in := range spec.Inputs {
		if _, dup := streams[in.Name]; dup {
			return nil, fmt.Errorf("query: duplicate input name %q", in.Name)
		}
		streams[in.Name] = b.Input(in.Name)
	}
	for _, os := range spec.Ops {
		kind, err := ParseKind(os.Kind)
		if err != nil {
			return nil, err
		}
		ins := make([]StreamID, len(os.Inputs))
		for i, name := range os.Inputs {
			id, ok := streams[name]
			if !ok {
				return nil, fmt.Errorf("query: operator %q input %q not defined yet", os.Name, name)
			}
			ins[i] = id
		}
		out := b.AddOp(&Operator{
			Name:                os.Name,
			Kind:                kind,
			Cost:                os.Cost,
			Selectivity:         os.Selectivity,
			Window:              os.Window,
			VariableSelectivity: os.VariableSelectivity,
			Inputs:              ins,
		})
		if out >= 0 {
			if _, dup := streams[os.Name]; dup {
				return nil, fmt.Errorf("query: operator name %q collides with an earlier name", os.Name)
			}
			streams[os.Name] = out
			if os.XferCost > 0 {
				b.SetXferCost(out, os.XferCost)
			}
		}
	}
	return b.Build()
}

// ToSpec converts a graph back to its serializable form.
func ToSpec(g *Graph) *Spec {
	spec := &Spec{}
	nameOfStream := map[StreamID]string{}
	for _, in := range g.Inputs() {
		name := g.Stream(in).Name
		spec.Inputs = append(spec.Inputs, InputSpec{Name: name})
		nameOfStream[in] = name
	}
	for _, id := range g.TopoOrder() {
		op := g.Op(id)
		nameOfStream[op.Out] = op.Name
		os := OpSpec{
			Name:                op.Name,
			Kind:                op.Kind.String(),
			Cost:                op.Cost,
			Selectivity:         op.Selectivity,
			Window:              op.Window,
			VariableSelectivity: op.VariableSelectivity,
			XferCost:            g.Stream(op.Out).XferCost,
		}
		for _, in := range op.Inputs {
			os.Inputs = append(os.Inputs, nameOfStream[in])
		}
		spec.Ops = append(spec.Ops, os)
	}
	return spec
}

// ReadJSON parses a graph from JSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var spec Spec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("query: decoding graph spec: %w", err)
	}
	return FromSpec(&spec)
}

// WriteJSON serializes a graph as indented JSON.
func WriteJSON(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToSpec(g))
}

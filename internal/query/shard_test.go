package query

import (
	"math"
	"testing"
)

// hotChain builds in → pre → hot → tail with a deliberately heavy hot
// operator.
func hotChain() *Graph {
	b := NewBuilder()
	in := b.Input("hot")
	pre := b.Delay("pre", 0.0001, 1, in)
	h := b.Delay("hotop", 0.002, 1, pre)
	b.Delay("tail", 0.0001, 0.5, h)
	return b.MustBuild()
}

func findOp(g *Graph, name string) *Operator {
	for _, op := range g.Ops() {
		if op.Name == name {
			return op
		}
	}
	return nil
}

func TestShardsColumnSumsConserved(t *testing.T) {
	g := hotChain()
	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	want := lm.CoefSums()

	for _, k := range []int{2, 4, 8} {
		sg, err := Shards(g, findOp(g, "hotop").ID, ShardConfig{K: k})
		if err != nil {
			t.Fatalf("Shards k=%d: %v", k, err)
		}
		slm, err := BuildLoadModel(sg)
		if err != nil {
			t.Fatalf("sharded load model k=%d: %v", k, err)
		}
		got := slm.CoefSums()
		if len(got) != len(want) {
			t.Fatalf("k=%d: variable count changed: %d vs %d", k, len(got), len(want))
		}
		// Zero shuffle costs: the k replica rows must column-sum exactly to
		// the parent's row, so the model totals are unchanged.
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("k=%d: column %d sum changed: %g vs %g", k, j, got[j], want[j])
			}
		}
	}
}

func TestShardsShuffleCostExplicit(t *testing.T) {
	g := hotChain()
	lm, _ := BuildLoadModel(g)
	base := lm.CoefSums()

	cfg := ShardConfig{K: 4, SplitCost: 0.0003, MergeCost: 0.0002, XferCost: 0.0001}
	sg, err := Shards(g, findOp(g, "hotop").ID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slm, err := BuildLoadModel(sg)
	if err != nil {
		t.Fatal(err)
	}
	got := slm.CoefSums()
	// The splitter sees the parent's input rate (1 per unit of the input
	// variable here: pre has selectivity 1) and the merge sees the parent's
	// output rate (selectivity 1), so the shuffle adds exactly
	// SplitCost + MergeCost per unit input.
	wantExtra := cfg.SplitCost + cfg.MergeCost
	if math.Abs((got[0]-base[0])-wantExtra) > 1e-12 {
		t.Fatalf("shuffle-cost term: got extra %g, want %g", got[0]-base[0], wantExtra)
	}
	// Cut arcs carry the transfer cost.
	grp := mustGroup(t, sg, "hotop")
	if sg.Stream(grp.Stream).XferCost != cfg.XferCost {
		t.Fatalf("keyed stream xfer cost = %g, want %g", sg.Stream(grp.Stream).XferCost, cfg.XferCost)
	}
	for _, r := range grp.Replicas {
		if sg.Stream(sg.Op(r).Out).XferCost != cfg.XferCost {
			t.Fatalf("replica out xfer cost = %g, want %g", sg.Stream(sg.Op(r).Out).XferCost, cfg.XferCost)
		}
	}
}

func TestShardsPreservesDownstreamRates(t *testing.T) {
	g := hotChain()
	lm, _ := BuildLoadModel(g)
	sg, err := Shards(g, findOp(g, "hotop").ID, ShardConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	slm, err := BuildLoadModel(sg)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{1000}
	want, err := lm.ActualLoads(rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := slm.ActualLoads(rates)
	if err != nil {
		t.Fatal(err)
	}
	// The tail sees the same rate and load either way.
	tail := findOp(g, "tail")
	stail := findOp(sg, "tail")
	if math.Abs(got[stail.ID]-want[tail.ID]) > 1e-9 {
		t.Fatalf("tail load changed under sharding: %g vs %g", got[stail.ID], want[tail.ID])
	}
	// Each replica carries exactly 1/3 of the parent's load.
	hot := findOp(g, "hotop")
	grp := mustGroup(t, sg, "hotop")
	for _, r := range grp.Replicas {
		if math.Abs(got[r]-want[hot.ID]/3) > 1e-9 {
			t.Fatalf("replica load %g, want %g", got[r], want[hot.ID]/3)
		}
	}
}

func TestShardsRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	l := b.Input("l")
	r := b.Input("r")
	j := b.Join("j", 0.0001, 0.5, 1, l, r)
	u := b.Union("u", 0.0001, j)
	b.Map("m", 0.0001, u)
	g := b.MustBuild()

	if _, err := Shards(g, findOp(g, "j").ID, ShardConfig{K: 2}); err == nil {
		t.Fatal("sharding a join must fail")
	}
	if _, err := Shards(g, findOp(g, "u").ID, ShardConfig{K: 2}); err == nil {
		t.Fatal("sharding a union must fail")
	}
	if _, err := Shards(g, findOp(g, "m").ID, ShardConfig{K: 1}); err == nil {
		t.Fatal("k=1 must fail")
	}
	sg, err := Shards(g, findOp(g, "m").ID, ShardConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	grp := mustGroup(t, sg, "m")
	if _, err := Shards(sg, grp.Replicas[0], ShardConfig{K: 2}); err == nil {
		t.Fatal("re-sharding a replica must fail")
	}
}

func TestShardGroupOf(t *testing.T) {
	g := hotChain()
	sg, err := Shards(g, findOp(g, "hotop").ID, ShardConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	grp := mustGroup(t, sg, "hotop")
	if grp.K != 4 || len(grp.Replicas) != 4 {
		t.Fatalf("group shape: %+v", grp)
	}
	for i, r := range grp.Replicas {
		if sg.Op(r).ShardIndex != i {
			t.Fatalf("replica %d has index %d", i, sg.Op(r).ShardIndex)
		}
		got, err := ShardGroupOf(sg, r)
		if err != nil || got.Parent != "hotop" {
			t.Fatalf("ShardGroupOf(%d): %+v, %v", r, got, err)
		}
	}
	if sg.Op(grp.Split).Out != grp.Stream {
		t.Fatal("group keyed stream is not the splitter's output")
	}
	if _, err := ShardGroupOf(sg, grp.Split); err == nil {
		t.Fatal("ShardGroupOf on the splitter must fail")
	}
}

func TestSlotOfKeyInRange(t *testing.T) {
	for key := uint64(0); key < 10000; key++ {
		if s := SlotOfKey(key); s < 0 || s >= ShardSlots {
			t.Fatalf("SlotOfKey(%d) = %d out of range", key, s)
		}
	}
	// Sequential keys should spread over many slots, not collapse.
	seen := map[int]bool{}
	for key := uint64(0); key < 1000; key++ {
		seen[SlotOfKey(key)] = true
	}
	if len(seen) < ShardSlots/2 {
		t.Fatalf("sequential keys hit only %d/%d slots", len(seen), ShardSlots)
	}
}

func mustGroup(t *testing.T, g *Graph, parent string) ShardGroup {
	t.Helper()
	groups, err := ShardGroups(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range groups {
		if grp.Parent == parent {
			return grp
		}
	}
	t.Fatalf("no shard group %q", parent)
	return ShardGroup{}
}

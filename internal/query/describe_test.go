package query

import (
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	b := NewBuilder()
	i1 := b.Input("pkts")
	i2 := b.Input("conns")
	f := b.Filter("f", 0.001, 0.5, i1)
	b.SetXferCost(f, 0.002)
	j := b.Join("j", 0.0001, 0.01, 2.0, f, i2)
	b.Map("m", 0.0005, j)
	g := b.MustBuild()

	out := Describe(g)
	for _, want := range []string{
		"3 operators", "2 inputs",
		"input pkts", "input conns",
		"filter", "join", "map",
		"win=2s", "xfer=0.002",
		"[sink]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeVariableSelectivity(t *testing.T) {
	b := NewBuilder()
	in := b.Input("I")
	s := b.Filter("f", 0.001, 0.5, in)
	b.MarkVariableSelectivity(s)
	b.Map("m", 0.001, s)
	g := b.MustBuild()
	if !strings.Contains(Describe(g), "var-sel") {
		t.Fatal("variable selectivity not surfaced")
	}
}

func TestDescribeLoadModel(t *testing.T) {
	b := NewBuilder()
	i1 := b.Input("a")
	i2 := b.Input("b")
	f := b.Filter("f", 2, 0.5, i1)
	b.Join("j", 1, 0.1, 1, f, i2)
	g := b.MustBuild()
	lm, err := BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	out := DescribeLoadModel(lm)
	for _, want := range []string{
		"linearization cuts",
		"rate(a) [input]",
		"[cut]",
		"load(f) = 2·x0",
		"load(j) = 10·x", // cost/sel = 10 on the cut variable
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DescribeLoadModel missing %q:\n%s", want, out)
		}
	}
}

func TestLinearFormZeroRow(t *testing.T) {
	if got := linearForm([]float64{0, 0}); got != "0" {
		t.Fatalf("zero row = %q", got)
	}
}

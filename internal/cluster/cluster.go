// Package cluster implements the Section 6.3 preprocessing step: greedy
// operator clustering that keeps costly arcs off the network by forcing
// their end operators onto the same machine. Two strategies are provided —
// merging the arc with the largest clustering ratio, and merging the
// connected pair with the smallest total weight — plus the paper's
// practical recipe: sweep thresholds under both strategies, run ROD on
// every clustering, and keep the plan with the maximum plane distance.
package cluster

import (
	"fmt"
	"math"

	"rodsp/internal/mat"
	"rodsp/internal/query"
)

// Strategy selects which greedy merge rule drives the clustering.
type Strategy int

const (
	// ByRatio merges the end operators of the arc with the largest
	// clustering ratio (per-tuple transfer overhead over the minimum
	// processing cost of the two end operators) until every ratio is below
	// the threshold — the first approach of Section 6.3.
	ByRatio Strategy = iota
	// ByMinWeight merges, among arcs above the threshold, the connected
	// cluster pair with the minimum total weight — the second approach,
	// which avoids creating overweight clusters.
	ByMinWeight
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case ByRatio:
		return "by-ratio"
	case ByMinWeight:
		return "by-min-weight"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config tunes one clustering pass.
type Config struct {
	Strategy Strategy
	// Threshold is the clustering-ratio cutoff: arcs whose ratio is below
	// it are left alone. Zero clusters nothing.
	Threshold float64
	// MaxWeight caps a cluster's weight — its largest share of any single
	// model variable, max_k (Σ_{j∈cluster} l^o_jk / l_k). A merge that
	// would exceed the cap is skipped. Zero means 0.5.
	MaxWeight float64
}

// Clustered is the result of a clustering pass: a coarse set of allocation
// units (clusters) with their own load coefficient matrix, ready for ROD.
type Clustered struct {
	// Members lists the operator ids inside each cluster.
	Members [][]int
	// ClusterOf maps operator id → cluster index.
	ClusterOf []int
	// Coef is the cluster-level load coefficient matrix: member rows summed,
	// plus the transfer coefficients of every arc that still crosses
	// clusters (charged to both end clusters, the pessimistic assumption
	// that a cross-cluster arc crosses the network).
	Coef *mat.Matrix
}

// NumClusters returns the number of allocation units after clustering.
func (cl *Clustered) NumClusters() int { return len(cl.Members) }

// ExpandPlan converts a plan over clusters to a plan over operators.
func (cl *Clustered) ExpandPlan(clusterNodeOf []int, n int) []int {
	nodeOf := make([]int, len(cl.ClusterOf))
	for j, c := range cl.ClusterOf {
		nodeOf[j] = clusterNodeOf[c]
	}
	return nodeOf
}

// Build runs one clustering pass over the load model. Arc transfer costs
// come from each stream's XferCost; arcs with zero transfer cost are never
// merged.
func Build(lm *query.LoadModel, cfg Config) (*Clustered, error) {
	g := lm.G
	m := g.NumOps()
	maxWeight := cfg.MaxWeight
	if maxWeight == 0 {
		maxWeight = 0.5
	}
	if maxWeight < 0 {
		return nil, fmt.Errorf("cluster: negative MaxWeight %g", maxWeight)
	}
	lk := lm.CoefSums()

	// Union-find over operators.
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Cluster weight = max_k share of variable k, tracked incrementally.
	share := make([]mat.Vec, m)
	for j := 0; j < m; j++ {
		share[j] = make(mat.Vec, lm.D())
		row := lm.Coef.Row(j)
		for k := range row {
			share[j][k] = row[k] / lk[k]
		}
	}
	weight := func(root int) float64 { return share[root].Max() }
	mergedWeight := func(a, b int) float64 {
		w := 0.0
		for k := range share[a] {
			if s := share[a][k] + share[b][k]; s > w {
				w = s
			}
		}
		return w
	}
	merge := func(a, b int) {
		ra, rb := find(a), find(b)
		share[ra].AddInPlace(share[rb])
		parent[rb] = ra
	}

	arcs := g.Arcs()
	ratio := func(a query.Arc) float64 {
		xfer := g.Stream(a.Stream).XferCost
		if xfer <= 0 {
			return 0
		}
		cf, ct := g.Op(a.From).Cost, g.Op(a.To).Cost
		minCost := math.Min(cf, ct)
		if minCost <= 0 {
			return math.Inf(1)
		}
		return xfer / minCost
	}

	for {
		// Collect candidate arcs still crossing clusters with ratio ≥ threshold.
		bestArc := -1
		bestKey := math.Inf(-1)
		for i, a := range arcs {
			ra, rb := find(int(a.From)), find(int(a.To))
			if ra == rb {
				continue
			}
			r := ratio(a)
			if r < cfg.Threshold || cfg.Threshold <= 0 {
				continue
			}
			if mergedWeight(ra, rb) > maxWeight {
				continue
			}
			var key float64
			switch cfg.Strategy {
			case ByRatio:
				key = r
			case ByMinWeight:
				key = -(weight(ra) + weight(rb))
			default:
				return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
			}
			if key > bestKey {
				bestArc, bestKey = i, key
			}
		}
		if bestArc == -1 {
			break
		}
		merge(int(arcs[bestArc].From), int(arcs[bestArc].To))
	}

	// Materialize clusters in deterministic (min member id) order.
	rootIndex := map[int]int{}
	cl := &Clustered{ClusterOf: make([]int, m)}
	for j := 0; j < m; j++ {
		r := find(j)
		idx, ok := rootIndex[r]
		if !ok {
			idx = len(cl.Members)
			rootIndex[r] = idx
			cl.Members = append(cl.Members, nil)
		}
		cl.Members[idx] = append(cl.Members[idx], j)
		cl.ClusterOf[j] = idx
	}

	// Cluster coefficients: member rows plus cross-cluster transfer loads.
	cl.Coef = mat.NewMatrix(len(cl.Members), lm.D())
	for j := 0; j < m; j++ {
		cl.Coef.Row(cl.ClusterOf[j]).AddInPlace(lm.Coef.Row(j))
	}
	for _, a := range arcs {
		ca, cb := cl.ClusterOf[a.From], cl.ClusterOf[a.To]
		if ca == cb {
			continue
		}
		xfer := g.Stream(a.Stream).XferCost
		if xfer <= 0 {
			continue
		}
		rate, ok := lm.Rate[a.Stream]
		if !ok {
			continue
		}
		cl.Coef.Row(ca).AddScaled(xfer, rate)
		cl.Coef.Row(cb).AddScaled(xfer, rate)
	}
	return cl, nil
}

// NodeCoefWithTransfer computes the true node load coefficient matrix of an
// operator-level plan: operator coefficients aggregated per node, plus the
// send/receive transfer coefficients of every arc that actually crosses a
// node boundary.
func NodeCoefWithTransfer(lm *query.LoadModel, nodeOf []int, n int) *mat.Matrix {
	g := lm.G
	ln := mat.NewMatrix(n, lm.D())
	for j := 0; j < g.NumOps(); j++ {
		ln.Row(nodeOf[j]).AddInPlace(lm.Coef.Row(j))
	}
	for _, a := range g.Arcs() {
		na, nb := nodeOf[a.From], nodeOf[a.To]
		if na == nb {
			continue
		}
		xfer := g.Stream(a.Stream).XferCost
		if xfer <= 0 {
			continue
		}
		rate := lm.Rate[a.Stream]
		ln.Row(na).AddScaled(xfer, rate)
		ln.Row(nb).AddScaled(xfer, rate)
	}
	return ln
}

// NetworkCostAt returns the total per-second CPU cost of cross-node
// communication under an operator plan at the given variable values:
// Σ over arcs crossing nodes of XferCost · rate(stream) · 2 (send + receive).
func NetworkCostAt(lm *query.LoadModel, nodeOf []int, x mat.Vec) float64 {
	g := lm.G
	var total float64
	for _, a := range g.Arcs() {
		if nodeOf[a.From] == nodeOf[a.To] {
			continue
		}
		xfer := g.Stream(a.Stream).XferCost
		if xfer <= 0 {
			continue
		}
		total += 2 * xfer * lm.Rate[a.Stream].Dot(x)
	}
	return total
}

// CutArcs counts the arcs crossing node boundaries under a plan.
func CutArcs(g *query.Graph, nodeOf []int) int {
	n := 0
	for _, a := range g.Arcs() {
		if nodeOf[a.From] != nodeOf[a.To] {
			n++
		}
	}
	return n
}

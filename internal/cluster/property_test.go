package cluster

import (
	"math/rand"
	"testing"

	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// Seeded random load models with transfer costs, for property checks over
// many instances rather than one hand-built graph.
func randomModel(t *testing.T, rng *rand.Rand) *query.LoadModel {
	t.Helper()
	g, err := workload.RandomTrees(workload.TreeConfig{
		Streams:      1 + rng.Intn(3),
		OpsPerStream: 3 + rng.Intn(5),
		Seed:         rng.Int63(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// RandomTrees leaves XferCost to the caller; rebuild the graph giving
	// most arcs a random shipping cost so clustering has something to merge.
	g2, err := rebuildWithXfer(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g2)
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

// rebuildWithXfer clones g as a fresh builder graph, attaching a random
// transfer cost to ~70% of operator output streams.
func rebuildWithXfer(g *query.Graph, rng *rand.Rand) (*query.Graph, error) {
	b := query.NewBuilder()
	streams := map[query.StreamID]query.StreamID{}
	for _, in := range g.Inputs() {
		streams[in] = b.Input("")
	}
	for _, op := range g.Ops() {
		ins := make([]query.StreamID, len(op.Inputs))
		for i, s := range op.Inputs {
			ins[i] = streams[s]
		}
		cost := 0.0005 + rng.Float64()*0.002
		var out query.StreamID
		if len(ins) == 1 {
			out = b.Delay("", cost, 1, ins[0])
		} else {
			out = b.Union("", cost, ins...)
		}
		if rng.Float64() < 0.7 {
			b.SetXferCost(out, rng.Float64()*0.01)
		}
		streams[op.Out] = out
	}
	return b.Build()
}

// TestSweepWinnerProperties: for any model, (1) the winning threshold is 0
// or one of the swept values, (2) the winner's plane distance is at least
// the unclustered baseline's — the sweep may never return something worse
// than not clustering, and (3) the expanded plan covers every operator.
func TestSweepWinnerProperties(t *testing.T) {
	thresholds := []float64{0.5, 1, 2, 5}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lm := randomModel(t, rng)
		nodes := 2 + rng.Intn(3)
		c := make(mat.Vec, nodes)
		for i := range c {
			c[i] = 0.5 + rng.Float64()*1.5
		}
		res, err := Sweep(lm, c, core.Config{Selector: core.SelectMaxPlaneDistance}, thresholds)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inSwept := res.Threshold == 0
		for _, th := range thresholds {
			if res.Threshold == th {
				inSwept = true
			}
		}
		if !inSwept {
			t.Fatalf("seed %d: winner threshold %g not in swept set", seed, res.Threshold)
		}
		if res.Plan.NumOps() != lm.G.NumOps() {
			t.Fatalf("seed %d: expanded plan covers %d of %d operators", seed, res.Plan.NumOps(), lm.G.NumOps())
		}

		// Baseline: unclustered placement evaluated the same way Sweep
		// scores its candidates.
		base, err := Sweep(lm, c, core.Config{Selector: core.SelectMaxPlaneDistance}, nil)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		if base.Threshold != 0 {
			t.Fatalf("seed %d: empty sweep must return the unclustered baseline", seed)
		}
		if res.PlaneDist < base.PlaneDist-1e-12 {
			t.Fatalf("seed %d: sweep winner (%g) worse than unclustered baseline (%g)",
				seed, res.PlaneDist, base.PlaneDist)
		}
	}
}

// TestClusteringNeverIncreasesTotalLoad: merging operators can only remove
// cross-cluster transfer charges — never add any — so for every threshold
// the cluster-level coefficient column sums stay at or below the
// unclustered (all arcs cut) baseline. Note the bound is against threshold
// 0, not the previous threshold: the greedy merge order under the
// MaxWeight cap means a higher threshold does not always dominate a lower
// one.
func TestClusteringNeverIncreasesTotalLoad(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		lm := randomModel(t, rng)
		for _, strat := range []Strategy{ByRatio, ByMinWeight} {
			base, err := Build(lm, Config{Strategy: strat, Threshold: 0})
			if err != nil {
				t.Fatal(err)
			}
			baseSums := base.Coef.ColSums()
			for _, th := range []float64{0.5, 1, 2, 5, 1e9} {
				cl, err := Build(lm, Config{Strategy: strat, Threshold: th})
				if err != nil {
					t.Fatal(err)
				}
				sums := cl.Coef.ColSums()
				for k := range sums {
					if sums[k] > baseSums[k]+1e-12 {
						t.Fatalf("seed %d %s th=%g: clustering increased var %d load: %g > %g",
							seed, strat, th, k, sums[k], baseSums[k])
					}
				}

				// And clustering is a partition: every operator in exactly
				// one cluster, Members consistent with ClusterOf.
				seen := make([]int, lm.G.NumOps())
				for ci, ms := range cl.Members {
					for _, op := range ms {
						seen[op]++
						if cl.ClusterOf[op] != ci {
							t.Fatalf("seed %d: op %d in Members[%d] but ClusterOf says %d", seed, op, ci, cl.ClusterOf[op])
						}
					}
				}
				for op, k := range seen {
					if k != 1 {
						t.Fatalf("seed %d th=%g: op %d appears in %d clusters", seed, th, op, k)
					}
				}
			}
		}
	}
}

// TestSweepBaselineMatchesDirectPlacement: with no thresholds the sweep's
// plane distance equals scoring the direct unclustered ROD placement in
// the same normalization — the sweep adds selection, not a different
// objective.
func TestSweepBaselineMatchesDirectPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lm := randomModel(t, rng)
	c := mat.VecOf(1, 1, 1)
	res, err := Sweep(lm, c, core.Config{Selector: core.SelectMaxPlaneDistance}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln := NodeCoefWithTransfer(lm, res.Plan.NodeOf, len(c))
	w, err := feasible.Weights(ln, c, lm.CoefSums())
	if err != nil {
		t.Fatal(err)
	}
	if got := feasible.MinPlaneDistance(w); got != res.PlaneDist {
		t.Fatalf("reported plane distance %g != recomputed %g", res.PlaneDist, got)
	}
}

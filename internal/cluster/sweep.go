package cluster

import (
	"fmt"

	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// SweepResult describes the winning clustering+placement combination.
type SweepResult struct {
	Plan       *placement.Plan // operator-level plan
	Clustered  *Clustered
	Strategy   Strategy
	Threshold  float64
	PlaneDist  float64 // min plane distance in the common (transfer-free) normalization
	NumCluster int
}

// Sweep implements the paper's practical recipe: generate clusterings for
// both strategies across the given thresholds, place each with ROD, and
// return the combination with the maximum plane distance. The unclustered
// placement (threshold 0) is always evaluated as the baseline.
//
// Candidates are compared in a *common* normalization — the transfer-free
// base coefficient sums — over the node coefficients that include the
// transfer loads each plan actually pays for its cut arcs. Comparing each
// plan under its own normalization would cancel out uniform transfer
// overhead and make heavy communication look free.
func Sweep(lm *query.LoadModel, c mat.Vec, rodCfg core.Config, thresholds []float64) (*SweepResult, error) {
	lk0 := lm.CoefSums()
	var best *SweepResult
	try := func(strat Strategy, th float64) error {
		cl, err := Build(lm, Config{Strategy: strat, Threshold: th})
		if err != nil {
			return err
		}
		cfg := rodCfg
		cfg.Graph = nil // cluster-level coefficients, not operator-level
		if cfg.Selector == core.SelectMinConnections {
			cfg.Selector = core.SelectMaxPlaneDistance
		}
		clusterPlan, _, err := core.Place(cl.Coef, c, cfg)
		if err != nil {
			return err
		}
		nodeOf := cl.ExpandPlan(clusterPlan.NodeOf, len(c))
		opPlan, err := placement.NewPlan(nodeOf, len(c))
		if err != nil {
			return fmt.Errorf("cluster: expanding plan: %w", err)
		}
		ln := NodeCoefWithTransfer(lm, nodeOf, len(c))
		w, err := feasible.Weights(ln, c, lk0)
		if err != nil {
			return err
		}
		res := &SweepResult{
			Plan:       opPlan,
			Clustered:  cl,
			Strategy:   strat,
			Threshold:  th,
			PlaneDist:  feasible.MinPlaneDistance(w),
			NumCluster: cl.NumClusters(),
		}
		if best == nil || res.PlaneDist > best.PlaneDist {
			best = res
		}
		return nil
	}
	// Threshold 0 (no clustering) is strategy-independent: run it once.
	if err := try(ByRatio, 0); err != nil {
		return nil, err
	}
	for _, strat := range []Strategy{ByRatio, ByMinWeight} {
		for _, th := range thresholds {
			if th <= 0 {
				continue
			}
			if err := try(strat, th); err != nil {
				return nil, err
			}
		}
	}
	return best, nil
}

package cluster

import (
	"math"
	"testing"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/query"
)

// chainWithXfer builds input → a → b → c where the a→b arc is expensive to
// ship (xfer per tuple) and the b→c arc is cheap.
func chainWithXfer(t *testing.T, xferAB, xferBC float64) (*query.Graph, *query.LoadModel) {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	sa := b.Delay("a", 0.001, 1, in)
	b.SetXferCost(sa, xferAB)
	sb := b.Delay("b", 0.001, 1, sa)
	b.SetXferCost(sb, xferBC)
	b.Delay("c", 0.001, 1, sb)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, lm
}

func TestBuildNoThresholdKeepsSingletons(t *testing.T) {
	_, lm := chainWithXfer(t, 0.01, 0.0001)
	cl, err := Build(lm, Config{Strategy: ByRatio, Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 3 {
		t.Fatalf("threshold 0 must not cluster: %d clusters", cl.NumClusters())
	}
	// Coefficients = operator coefficients + transfer loads on both ends of
	// both (cut) arcs.
	if cl.Coef.Rows != 3 {
		t.Fatalf("Coef rows = %d", cl.Coef.Rows)
	}
}

func TestBuildMergesExpensiveArc(t *testing.T) {
	g, lm := chainWithXfer(t, 0.01, 0.00001) // a→b ratio 10, b→c ratio 0.01
	cl, err := Build(lm, Config{Strategy: ByRatio, Threshold: 1, MaxWeight: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 2 {
		t.Fatalf("expected 2 clusters, got %d", cl.NumClusters())
	}
	if cl.ClusterOf[0] != cl.ClusterOf[1] {
		t.Fatalf("a and b must be clustered: %v", cl.ClusterOf)
	}
	if cl.ClusterOf[2] == cl.ClusterOf[0] {
		t.Fatalf("c must stay separate: %v", cl.ClusterOf)
	}
	_ = g
}

func TestBuildRespectsMaxWeight(t *testing.T) {
	_, lm := chainWithXfer(t, 0.01, 0.01) // both arcs expensive
	// With a generous cap everything merges into one cluster.
	cl, err := Build(lm, Config{Strategy: ByRatio, Threshold: 0.5, MaxWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 1 {
		t.Fatalf("generous cap: %d clusters, want 1", cl.NumClusters())
	}
	// Each operator holds share 1/3 of the single stream; capping at 0.5
	// allows one merge (2/3 > 0.5 would be... 1/3+1/3=2/3 > 0.5 so NO merge
	// is allowed at cap 0.5; at cap 0.7 exactly one merge fits).
	cl, err = Build(lm, Config{Strategy: ByRatio, Threshold: 0.5, MaxWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 3 {
		t.Fatalf("tight cap: %d clusters, want 3", cl.NumClusters())
	}
	cl, err = Build(lm, Config{Strategy: ByRatio, Threshold: 0.5, MaxWeight: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 2 {
		t.Fatalf("medium cap: %d clusters, want 2", cl.NumClusters())
	}
}

func TestBuildNegativeMaxWeight(t *testing.T) {
	_, lm := chainWithXfer(t, 0.01, 0.01)
	if _, err := Build(lm, Config{MaxWeight: -1}); err == nil {
		t.Fatal("negative MaxWeight must error")
	}
}

func TestByMinWeightPrefersLightPairs(t *testing.T) {
	// Two parallel chains: one heavy (high cost ops), one light, both with
	// expensive arcs. ByMinWeight must merge the light pair first; with a
	// cap that only admits one merge, only the light chain clusters.
	b := query.NewBuilder()
	in1 := b.Input("I1")
	in2 := b.Input("I2")
	h1 := b.Delay("h1", 0.010, 1, in1)
	b.SetXferCost(h1, 0.1)
	b.Delay("h2", 0.010, 1, h1)
	l1 := b.Delay("l1", 0.001, 1, in2)
	b.SetXferCost(l1, 0.1)
	b.Delay("l2", 0.001, 1, l1)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Build(lm, Config{Strategy: ByMinWeight, Threshold: 1, MaxWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both chains merge (each stream is separate so shares don't conflict);
	// verify the light pair is together.
	if cl.ClusterOf[2] != cl.ClusterOf[3] {
		t.Fatalf("light pair not merged: %v", cl.ClusterOf)
	}
	_ = g
}

func TestClusterCoefConservation(t *testing.T) {
	// Merging all operators of a stream removes its transfer loads; the
	// cluster coefficient must then equal the exact member sum.
	_, lm := chainWithXfer(t, 0.01, 0.01)
	cl, err := Build(lm, Config{Strategy: ByRatio, Threshold: 0.5, MaxWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 1 {
		t.Fatalf("expected full merge, got %d clusters", cl.NumClusters())
	}
	want := lm.Coef.ColSums()
	if !cl.Coef.Row(0).Equal(want, 1e-12) {
		t.Fatalf("fully merged coefficients %v, want %v", cl.Coef.Row(0), want)
	}
}

func TestCrossClusterTransferChargedBothSides(t *testing.T) {
	_, lm := chainWithXfer(t, 0.02, 0)                            // only a→b has transfer cost
	cl, err := Build(lm, Config{Strategy: ByRatio, Threshold: 0}) // no merging
	if err != nil {
		t.Fatal(err)
	}
	// a's cluster coefficient = own cost + xfer·rate(a.out);
	// rate(a.out) = 1·r (selectivity 1).
	wantA := 0.001 + 0.02
	if got := cl.Coef.At(0, 0); math.Abs(got-wantA) > 1e-12 {
		t.Fatalf("cluster a coef = %g, want %g", got, wantA)
	}
	// b pays receive on a→b; b→c has no cost.
	wantB := 0.001 + 0.02
	if got := cl.Coef.At(1, 0); math.Abs(got-wantB) > 1e-12 {
		t.Fatalf("cluster b coef = %g, want %g", got, wantB)
	}
	// c pays nothing extra.
	if got := cl.Coef.At(2, 0); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("cluster c coef = %g, want 0.001", got)
	}
}

func TestExpandPlan(t *testing.T) {
	cl := &Clustered{
		Members:   [][]int{{0, 2}, {1}},
		ClusterOf: []int{0, 1, 0},
	}
	nodeOf := cl.ExpandPlan([]int{1, 0}, 2)
	want := []int{1, 0, 1}
	for j := range want {
		if nodeOf[j] != want[j] {
			t.Fatalf("ExpandPlan = %v, want %v", nodeOf, want)
		}
	}
}

func TestNetworkCostAtAndCutArcs(t *testing.T) {
	g, lm := chainWithXfer(t, 0.01, 0.02)
	// All co-located: no cost, no cuts.
	if got := NetworkCostAt(lm, []int{0, 0, 0}, mat.VecOf(100)); got != 0 {
		t.Fatalf("co-located cost = %g", got)
	}
	if CutArcs(g, []int{0, 0, 0}) != 0 {
		t.Fatal("co-located cut arcs != 0")
	}
	// Split after b: only the b→c arc (xfer 0.02) crosses; rate(b.out) = r.
	got := NetworkCostAt(lm, []int{0, 0, 1}, mat.VecOf(100))
	want := 2 * 0.02 * 100.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("network cost = %g, want %g", got, want)
	}
	if CutArcs(g, []int{0, 0, 1}) != 1 {
		t.Fatal("expected one cut arc")
	}
}

func TestSweepPrefersClusteringWhenTransferDominates(t *testing.T) {
	// Heavy transfer costs: the unclustered plan inflates every node's
	// coefficients with transfer load, shrinking the plane distance, so the
	// sweep should pick a clustered configuration.
	b := query.NewBuilder()
	for k := 0; k < 2; k++ {
		s := b.Input("")
		for j := 0; j < 6; j++ {
			out := b.Delay("", 0.001, 1, s)
			b.SetXferCost(out, 0.01)
			s = out
		}
	}
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mat.VecOf(1, 1)
	res, err := Sweep(lm, c, core.Config{Selector: core.SelectMaxPlaneDistance}, []float64{0.5, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold == 0 {
		t.Fatalf("sweep picked the unclustered plan despite dominant transfer costs: %+v", res)
	}
	if res.NumCluster >= g.NumOps() {
		t.Fatalf("winning config did not cluster: %d clusters", res.NumCluster)
	}
	if res.Plan.NumOps() != g.NumOps() {
		t.Fatal("expanded plan must cover all operators")
	}
}

func TestSweepNoTransferCostsPicksUnclustered(t *testing.T) {
	_, lm := chainWithXfer(t, 0, 0)
	res, err := Sweep(lm, mat.VecOf(1, 1), core.Config{Selector: core.SelectMaxPlaneDistance}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCluster != lm.G.NumOps() {
		t.Fatalf("no transfer costs: expected singleton clusters, got %d", res.NumCluster)
	}
}

func TestStrategyString(t *testing.T) {
	if ByRatio.String() != "by-ratio" || ByMinWeight.String() != "by-min-weight" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(7).String() == "" {
		t.Fatal("unknown strategy must render")
	}
}

// Package wal is a segmented write-ahead log with CRC-framed records and
// fsync-batched group commit — the durability substrate under the engine's
// crash recovery. It is deliberately generic: payloads are opaque byte
// slices, sequence numbers are assigned densely from 1, and the engine
// layers its own record types (ingress batches) and checkpoint files on
// top.
//
// On-disk format. A log is a directory of segment files named
// wal-<%016x>.seg, where the hex field is the sequence number of the
// segment's first record. Each record is framed as
//
//	uint32 crc32c(payload) | uint32 len(payload) | payload
//
// with big-endian integers and CRC-32 (Castagnoli). Records never span
// segments. A crash can leave a torn tail — a partially written final
// record — which Open detects by short read or CRC mismatch and truncates;
// everything before the tear is intact by construction (records are
// written in order and fsynced in order).
//
// Group commit. Append serializes framing under a mutex and writes into
// the active segment's OS buffer, then returns; a dedicated flusher
// goroutine fsyncs the segment and advances the committed watermark,
// batching every append that landed while the previous fsync was in
// flight. Callers that need durability (e.g. before acking a batch
// upstream) block on WaitCommitted(seq), so one fsync commits every
// record appended since the last one — classic group commit.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MaxRecordBytes bounds one record's payload; larger appends are rejected
// and larger length prefixes on disk are treated as corruption (bounding
// the reader's allocation no matter what a torn length field claims).
const MaxRecordBytes = 4 << 20

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 1 << 20

const recordHeaderSize = 8 // crc32 + len

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// <= 0 selects DefaultSegmentBytes.
	SegmentBytes int
	// NoSync skips the physical fsync syscalls (the committed watermark
	// still advances). Test hook modeling a volatile page cache: crash
	// simulations chop the file tail to stand in for the lost writes.
	NoSync bool
	// preSync, when non-nil, runs in the flusher between capturing the
	// active segment and fsyncing it — a test hook (unexported, so only
	// in-package tests can set it) that widens the race window against
	// Append's segment rotation.
	preSync func()
}

// Stats is a snapshot of a log's accounting.
type Stats struct {
	FirstSeq  uint64 // lowest replayable sequence number (0 when empty)
	LastSeq   uint64 // highest appended sequence number (0 when empty)
	Committed uint64 // highest durable (fsynced) sequence number
	Records   int64  // records appended this process lifetime
	Bytes     int64  // payload bytes appended this process lifetime
	Syncs     int64  // fsync batches issued (group commits)
	Segments  int    // live segment files
	TornBytes int64  // bytes discarded at Open (torn tail / trailing corruption)
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	cond     *sync.Cond // wakes the flusher
	commitMu sync.Mutex
	commitCh *sync.Cond // broadcast when committed advances
	// closed/failed mirrors guarded by commitMu, so WaitCommitted never
	// has to take l.mu (lock order is always mu → commitMu).
	commitClosed bool
	commitErr    error

	f        *os.File // active segment
	segStart uint64   // first seq of the active segment
	segSize  int64
	segments []uint64 // start seq of every live segment, ascending (incl. active)

	firstSeq  uint64
	nextSeq   uint64 // seq the next Append receives
	appended  uint64 // highest seq written into the OS buffer
	synced    uint64 // highest seq covered by a finished fsync
	committed uint64 // published watermark (== synced, guarded by commitMu)

	records   int64
	bytes     int64
	syncs     int64
	tornBytes int64

	closed  bool
	failed  error // sticky I/O failure; appends error out after it
	flushed chan struct{}
}

// Open opens (creating if necessary) the log in dir, scanning existing
// segments and truncating any torn tail left by a crash.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, flushed: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	l.commitCh = sync.NewCond(&l.commitMu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	go l.flusher()
	return l, nil
}

// segPath names the segment whose first record has the given seq.
func (l *Log) segPath(start uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", start))
}

// listSegments returns the start seqs of on-disk segments, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var starts []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		v, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
		if err != nil {
			continue
		}
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// scan walks existing segments in seq order, validating records until the
// first tear or corruption; everything from that point on (including any
// later segments) is discarded, matching the fsync order guarantee.
func (l *Log) scan() error {
	starts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	next := uint64(1)
	if len(starts) > 0 {
		next = starts[0]
		l.firstSeq = starts[0]
	}
	valid := true
	for i, start := range starts {
		if !valid || start != next {
			// Either a previous segment ended in a tear, or the chain has a
			// gap: later records cannot be trusted (fsync order means they
			// may predate the lost ones). Drop the file.
			if info, err := os.Stat(l.segPath(start)); err == nil {
				l.tornBytes += info.Size()
			}
			if err := os.Remove(l.segPath(start)); err != nil {
				return fmt.Errorf("wal: dropping orphaned segment: %w", err)
			}
			starts[i] = 0 // mark removed
			valid = false
			continue
		}
		n, endOff, err := scanSegment(l.segPath(start))
		if err != nil {
			return err
		}
		next = start + uint64(n)
		info, statErr := os.Stat(l.segPath(start))
		if statErr == nil && info.Size() > endOff {
			// Torn tail: truncate to the last intact record.
			l.tornBytes += info.Size() - endOff
			if err := os.Truncate(l.segPath(start), endOff); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			valid = false // later segments are untrustworthy
		}
	}
	kept := starts[:0]
	for _, s := range starts {
		if s != 0 {
			if _, err := os.Stat(l.segPath(s)); err == nil {
				kept = append(kept, s)
			}
		}
	}
	l.segments = append([]uint64(nil), kept...)
	l.nextSeq = next
	l.appended = next - 1
	l.synced = next - 1
	l.committed = next - 1
	if l.firstSeq == 0 {
		l.firstSeq = 1
	}

	// Open (or create) the active segment: the last on-disk segment if it
	// has room, a fresh one otherwise.
	if len(l.segments) > 0 {
		last := l.segments[len(l.segments)-1]
		info, err := os.Stat(l.segPath(last))
		if err == nil && info.Size() < int64(l.opt.SegmentBytes) {
			f, err := os.OpenFile(l.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: reopening segment: %w", err)
			}
			l.f = f
			l.segStart = last
			l.segSize = info.Size()
			return nil
		}
	}
	return l.newSegmentLocked()
}

// scanSegment validates one segment file, returning the number of intact
// records and the byte offset just past the last one.
func scanSegment(path string) (n int, endOff int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	var hdr [recordHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return n, endOff, nil // clean EOF or torn header: stop here
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		ln := binary.BigEndian.Uint32(hdr[4:8])
		if ln > MaxRecordBytes {
			return n, endOff, nil // corrupt length field
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := io.ReadFull(f, payload); err != nil {
			return n, endOff, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return n, endOff, nil // corruption: end of trustworthy log
		}
		n++
		endOff += recordHeaderSize + int64(ln)
	}
}

// newSegmentLocked rotates to a fresh segment starting at nextSeq. Callers
// hold l.mu (or are inside Open before the flusher starts).
func (l *Log) newSegmentLocked() error {
	start := l.nextSeq
	f, err := os.OpenFile(l.segPath(start), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f = f
	l.segStart = start
	l.segSize = 0
	l.segments = append(l.segments, start)
	return nil
}

// Append frames payload into the active segment and returns its sequence
// number. The record is buffered (not yet durable): pair with
// WaitCommitted to block until the group-commit fsync covers it.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], crc32.Checksum(payload, castagnoli))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if l.segSize >= int64(l.opt.SegmentBytes) {
		// Rotate: fsync and close the filled segment first, so the
		// committed watermark can always advance segment by segment.
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
		l.f.Close()
		if err := l.newSegmentLocked(); err != nil {
			l.fail(err)
			return 0, err
		}
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.fail(err)
		return 0, err
	}
	if _, err := l.f.Write(payload); err != nil {
		l.fail(err)
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.appended = seq
	l.segSize += recordHeaderSize + int64(len(payload))
	l.records++
	l.bytes += int64(len(payload))
	l.cond.Signal()
	return seq, nil
}

// syncLocked fsyncs the active segment and publishes the watermark; callers
// hold l.mu.
func (l *Log) syncLocked() error {
	if l.appended <= l.synced {
		return nil
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return err
		}
	}
	l.syncs++
	l.synced = l.appended
	l.publishCommitted(l.synced)
	return nil
}

func (l *Log) publishCommitted(seq uint64) {
	l.commitMu.Lock()
	if seq > l.committed {
		l.committed = seq
		l.commitCh.Broadcast()
	}
	l.commitMu.Unlock()
}

// flusher is the group-commit goroutine: whenever records are appended
// beyond the synced watermark it issues one fsync covering all of them.
func (l *Log) flusher() {
	defer close(l.flushed)
	for {
		l.mu.Lock()
		for !l.closed && l.failed == nil && l.appended <= l.synced {
			l.cond.Wait()
		}
		if l.failed != nil || (l.closed && l.appended <= l.synced) {
			l.mu.Unlock()
			return
		}
		target := l.appended
		f := l.f
		noSync := l.opt.NoSync
		l.mu.Unlock()

		if l.opt.preSync != nil {
			l.opt.preSync()
		}
		var err error
		if !noSync {
			err = f.Sync()
		}

		l.mu.Lock()
		if err != nil {
			if l.f != f {
				// The segment rotated while our fsync was in flight: Append's
				// rotation path syncs the old file (advancing l.synced past
				// target) before closing it, so every record this batch meant
				// to cover is already durable and the error is the close
				// racing the fsync, not an I/O failure. Go around again for
				// whatever landed in the new segment.
				l.mu.Unlock()
				continue
			}
			l.fail(err)
			l.mu.Unlock()
			return
		}
		l.syncs++
		if target > l.synced {
			l.synced = target
		}
		done := l.closed && l.appended <= l.synced
		synced := l.synced
		l.mu.Unlock()
		l.publishCommitted(synced)
		if done {
			return
		}
	}
}

// Committed returns the highest durable sequence number.
func (l *Log) Committed() uint64 {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	return l.committed
}

// WaitCommitted blocks until the group commit covers seq (or the log
// closes/fails, returning the error).
func (l *Log) WaitCommitted(seq uint64) error {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	for l.committed < seq {
		if l.commitErr != nil {
			return l.commitErr
		}
		if l.commitClosed {
			return ErrClosed
		}
		l.commitCh.Wait()
	}
	return nil
}

// fail records a sticky I/O failure; callers hold l.mu.
func (l *Log) fail(err error) {
	if l.failed == nil {
		l.failed = err
	}
	l.commitMu.Lock()
	if l.commitErr == nil {
		l.commitErr = err
	}
	l.commitCh.Broadcast()
	l.commitMu.Unlock()
}

// Sync forces an immediate group commit covering every appended record.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Replay streams records with sequence numbers >= from, in order, to fn.
// Stops early if fn returns an error. Callers must not Append concurrently
// (recovery runs before serving) — Replay reads the segment files, which
// see every record Append has written (OS-buffered writes are visible to
// readers of the same file).
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segments...)
	last := l.appended
	l.mu.Unlock()
	for i, start := range segs {
		end := last + 1
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if end <= from && end > start {
			continue // whole segment below the replay point
		}
		if err := replaySegment(l.segPath(start), start, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, start, from uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	var hdr [recordHeaderSize]byte
	var payload []byte
	seq := start
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		ln := binary.BigEndian.Uint32(hdr[4:8])
		if ln > MaxRecordBytes {
			return nil
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil
		}
		if seq >= from {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		seq++
	}
}

// TruncateBefore releases records with sequence numbers < seq at segment
// granularity: whole segments whose every record is below seq are deleted.
// The active segment is never deleted.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segments[:0]
	for i, start := range l.segments {
		end := l.nextSeq // one past the last record of the final segment
		if i+1 < len(l.segments) {
			end = l.segments[i+1]
		}
		if end <= seq && start != l.segStart {
			if err := os.Remove(l.segPath(start)); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		kept = append(kept, start)
	}
	l.segments = kept
	if len(l.segments) > 0 && l.segments[0] > l.firstSeq {
		l.firstSeq = l.segments[0]
	}
	return nil
}

// Stats snapshots the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		LastSeq:   l.appended,
		Records:   l.records,
		Bytes:     l.bytes,
		Syncs:     l.syncs,
		Segments:  len(l.segments),
		TornBytes: l.tornBytes,
	}
	if l.appended >= l.firstSeq {
		s.FirstSeq = l.firstSeq
	}
	l.commitMu.Lock()
	s.Committed = l.committed
	l.commitMu.Unlock()
	return s
}

// Close flushes outstanding records, stops the flusher and closes the
// active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.flushed
	l.commitMu.Lock()
	l.commitClosed = true
	l.commitCh.Broadcast()
	l.commitMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked() // flusher may have exited before the last batch
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// WriteFileAtomic writes data to path via a temp file + rename, so readers
// never observe a partially written file — the checkpoint discipline: a
// crash mid-write leaves the previous checkpoint intact.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// payloads returns n deterministic, variable-length payloads.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 1+(i*7)%53)
		for j := range p {
			p[j] = byte(i*131 + j*17)
		}
		out[i] = p
	}
	return out
}

// appendAll writes every payload and syncs.
func appendAll(t *testing.T, l *Log, ps [][]byte) {
	t.Helper()
	for i, p := range ps {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want && l.Stats().FirstSeq == 1 {
			// Dense numbering from 1 only holds on a fresh log.
			_ = want
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// replayAll collects every (seq, payload) from seq `from`.
func replayAll(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := l.Replay(from, func(seq uint64, p []byte) error {
		got[seq] = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(100)
	appendAll(t, l, ps)
	if c := l.Committed(); c != 100 {
		t.Fatalf("committed %d, want 100", c)
	}
	got := replayAll(t, l, 1)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("record %d mismatch", i+1)
		}
	}
	// Idempotent replay: a second pass yields the identical set.
	again := replayAll(t, l, 1)
	if len(again) != len(got) {
		t.Fatalf("second replay %d records, want %d", len(again), len(got))
	}
	l.Close()

	// Reopen: same contents, appends continue the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 1); len(got) != 100 {
		t.Fatalf("reopen replayed %d, want 100", len(got))
	}
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != 101 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestWaitCommittedGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 50; i++ {
		last, err = l.Append([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitCommitted(last); err != nil {
		t.Fatal(err)
	}
	if c := l.Committed(); c < last {
		t.Fatalf("committed %d < appended %d after WaitCommitted", c, last)
	}
	st := l.Stats()
	if st.Syncs <= 0 {
		t.Fatalf("no sync batches recorded")
	}
	if st.Syncs >= st.Records {
		t.Logf("group commit batched %d records into %d syncs", st.Records, st.Syncs)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(60)
	appendAll(t, l, ps)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	// Truncate the first half; replay must still yield everything >= 31,
	// and may retain earlier records (segment granularity), never lose
	// later ones.
	if err := l.TruncateBefore(31); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l, 31)
	for i := 31; i <= 60; i++ {
		if !bytes.Equal(got[uint64(i)], ps[i-1]) {
			t.Fatalf("record %d lost or corrupted after truncate", i)
		}
	}
	if l.Stats().Segments >= st.Segments {
		t.Fatalf("truncate removed no segments (%d -> %d)", st.Segments, l.Stats().Segments)
	}
	l.Close()
	// Reopen after truncation: the log resumes from the surviving tail.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got2 := replayAll(t, l2, 31)
	for i := 31; i <= 60; i++ {
		if !bytes.Equal(got2[uint64(i)], ps[i-1]) {
			t.Fatalf("record %d lost across reopen after truncate", i)
		}
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	starts, err := listSegments(dir)
	if err != nil || len(starts) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", starts[len(starts)-1]))
}

// TestCrashAtEveryByteBoundary is the crash-point injection suite: a log of
// known records is "killed" by truncating its file at EVERY byte offset —
// including every record boundary and every torn intermediate position —
// and each resulting directory must recover exactly the longest intact
// prefix, with the tear detected (never a corrupted record surfaced, never
// a panic).
func TestCrashAtEveryByteBoundary(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(12)
	appendAll(t, l, ps)
	l.Close()
	seg := lastSegment(t, master)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries for prefix accounting.
	bounds := []int{0}
	off := 0
	for _, p := range ps {
		off += recordHeaderSize + len(p)
		bounds = append(bounds, off)
	}
	if off != len(data) {
		t.Fatalf("segment is %d bytes, records account for %d", len(data), off)
	}
	intactBelow := func(cut int) int {
		n := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= cut {
				n = i
			}
		}
		return n
	}
	for cut := 0; cut <= len(data); cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut%04d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		want := intactBelow(cut)
		got := replayAll(t, rl, 1)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 1; i <= want; i++ {
			if !bytes.Equal(got[uint64(i)], ps[i-1]) {
				t.Fatalf("cut %d: record %d corrupted after recovery", cut, i)
			}
		}
		torn := cut != bounds[want]
		if torn && rl.Stats().TornBytes == 0 {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		// Recovery must leave an appendable log: writes after the crash
		// continue the sequence cleanly.
		seq, err := rl.Append([]byte("resume"))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if seq != uint64(want+1) {
			t.Fatalf("cut %d: append got seq %d, want %d", cut, seq, want+1)
		}
		rl.Close()
	}
}

// TestCorruptionMidFile flips a byte inside an interior record: CRC must
// detect it and recovery must stop at the last record before the damage
// (fsync ordering means nothing after it can be trusted).
func TestCorruptionMidFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(10)
	appendAll(t, l, ps)
	l.Close()
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of record 4 (header is 8 bytes per record).
	off := 0
	for i := 0; i < 3; i++ {
		off += recordHeaderSize + len(ps[i])
	}
	data[off+recordHeaderSize] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rl, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over corruption: %v", err)
	}
	defer rl.Close()
	got := replayAll(t, rl, 1)
	if len(got) != 3 {
		t.Fatalf("recovered %d records past corruption, want 3", len(got))
	}
	if rl.Stats().TornBytes == 0 {
		t.Fatal("corruption not reported in TornBytes")
	}
}

// TestCrashDropsLaterSegments: a tear in an interior segment must also
// discard every later segment — records are fsynced in order, so data
// after a tear cannot be trusted even if its own CRCs validate.
func TestCrashDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(40)
	appendAll(t, l, ps)
	if l.Stats().Segments < 3 {
		t.Fatalf("need >= 3 segments, got %d", l.Stats().Segments)
	}
	l.Close()
	starts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the middle segment in half.
	mid := filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", starts[1]))
	info, err := os.Stat(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(mid, info.Size()/2+1); err != nil {
		t.Fatal(err)
	}
	rl, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("open over interior tear: %v", err)
	}
	defer rl.Close()
	got := replayAll(t, rl, 1)
	maxSeq := uint64(0)
	for seq, p := range got {
		if !bytes.Equal(p, ps[seq-1]) {
			t.Fatalf("record %d corrupted", seq)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq >= starts[2] {
		t.Fatalf("records from a post-tear segment survived (max seq %d, third segment starts at %d)", maxSeq, starts[2])
	}
	if uint64(len(got)) != maxSeq {
		t.Fatalf("recovered set has gaps: %d records, max seq %d", len(got), maxSeq)
	}
}

// TestPreFsyncLoss models a crash before the group commit: with NoSync the
// committed watermark is a lie the OS may not honor, so the test chops the
// tail back to a record boundary below the watermark and recovery must
// surface exactly the surviving prefix — never an error, never a gap.
func TestPreFsyncLoss(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(20)
	appendAll(t, l, ps)
	l.Close()
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Lose the last 5 records (the unsynced page-cache tail).
	keep := 0
	for i := 0; i < 15; i++ {
		keep += recordHeaderSize + len(ps[i])
	}
	if err := os.WriteFile(seg, data[:keep], 0o644); err != nil {
		t.Fatal(err)
	}
	rl, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	got := replayAll(t, rl, 1)
	if len(got) != 15 {
		t.Fatalf("recovered %d records, want the 15 durable ones", len(got))
	}
	if c := rl.Committed(); c != 15 {
		t.Fatalf("committed watermark %d after recovery, want 15", c)
	}
}

// TestCheckpointAtomicWrite models a crash mid-checkpoint: a stray temp
// file (the torn write) must not shadow the intact previous checkpoint.
func TestCheckpointAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := WriteFileAtomic(path, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Crash mid-rewrite: the temp file holds garbage, the rename never ran.
	if err := os.WriteFile(path+".tmp-crash", []byte(`{"v":2,"TORN`), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"v":1}` {
		t.Fatalf("previous checkpoint damaged: %q", data)
	}
	// A completed rewrite replaces it atomically.
	if err := WriteFileAtomic(path, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != `{"v":2}` {
		t.Fatalf("rewrite not visible: %q", data)
	}
}

// TestFlusherSurvivesRotationClose pins the rotation race deterministically:
// the flusher captures the active segment, then (held at the preSync hook)
// Append's rotation path syncs and CLOSES that very file before the
// flusher's own fsync runs. The resulting ErrClosed must be recognized as
// the benign rotation race — everything the flusher meant to cover was
// synced by rotation — not a sticky I/O failure that wedges the log.
func TestFlusherSurvivesRotationClose(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	l, err := Open(dir, Options{
		SegmentBytes: 64,
		preSync: func() {
			once.Do(func() {
				close(entered)
				<-gate
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the active segment past the rotation threshold; the flusher
	// captures it and parks at the hook.
	if _, err := l.Append(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	<-entered
	// This append rotates: the captured segment is synced and closed under
	// the lock while the flusher still holds its *os.File.
	if _, err := l.Append([]byte("post-rotation")); err != nil {
		t.Fatal(err)
	}
	close(gate) // flusher now fsyncs the closed file
	seq, err := l.Append([]byte("after-race"))
	if err != nil {
		t.Fatalf("append after rotation race: %v", err)
	}
	if err := l.WaitCommitted(seq); err != nil {
		t.Fatalf("log failed after rotation race: %v", err)
	}
	if got := replayAll(t, l, 1); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestRotationFlusherRace hammers group commit against segment rotation:
// tiny segments make Append rotate (sync + close the active file under the
// lock) on nearly every record while the flusher fsyncs the file it captured
// outside the lock. A flusher that treats the resulting ErrClosed as an I/O
// failure marks the log permanently failed — every appender here would start
// erroring out.
func TestRotationFlusherRace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 150
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := []byte{byte(g), 0, 0}
			for i := 0; i < perWriter; i++ {
				p[1], p[2] = byte(i), byte(i>>8)
				seq, err := l.Append(p)
				if err != nil {
					t.Errorf("writer %d append %d: %v", g, i, err)
					return
				}
				if err := l.WaitCommitted(seq); err != nil {
					t.Errorf("writer %d wait %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 1); len(got) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(got), writers*perWriter)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
}

// FuzzWALRecord feeds arbitrary bytes as a segment file: Open/Replay must
// never panic, never allocate unboundedly, and only surface records whose
// CRC validates. A valid-prefix seed checks the decoder still recovers real
// records when the fuzzer mutates the tail.
func FuzzWALRecord(f *testing.F) {
	// Seed: two valid records followed by junk.
	seedDir := f.TempDir()
	l, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	l.Append([]byte("hello"))
	l.Append([]byte("world"))
	l.Sync()
	l.Close()
	starts, _ := listSegments(seedDir)
	seed, _ := os.ReadFile(filepath.Join(seedDir, fmt.Sprintf("wal-%016x.seg", starts[0])))
	f.Add(seed)
	f.Add(append(append([]byte{}, seed...), 0xDE, 0xAD, 0xBE, 0xEF))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // I/O errors are acceptable; panics are not
		}
		n := 0
		prev := uint64(0)
		l.Replay(1, func(seq uint64, p []byte) error {
			if seq != prev+1 {
				t.Fatalf("replay seq gap: %d after %d", seq, prev)
			}
			prev = seq
			if len(p) > MaxRecordBytes {
				t.Fatalf("oversize record surfaced: %d bytes", len(p))
			}
			n++
			return nil
		})
		// The log must stay appendable after decoding arbitrary input.
		if _, err := l.Append([]byte("post")); err != nil {
			t.Fatalf("append after fuzz open: %v", err)
		}
		l.Close()
	})
}

// Package par is the process-wide worker pool of the placement/evaluation
// compute plane. Every parallel path in the repository — chunked QMC
// integration, concurrent portfolio placement, the bench trial-runner —
// fans out through this package so a single knob (SetWorkers, surfaced as
// rodbench -workers) controls the parallelism everywhere.
//
// Determinism contract: all helpers assign work by index and collect
// results by index. Callers that keep per-item state derive it from the
// item index (never from goroutine identity or arrival order), so any
// worker count — including 1 — produces bit-identical results.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// SetWorkers sets the process-wide worker count. n <= 0 resets to the
// default (GOMAXPROCS at the time of use).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count (always >= 1).
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// Chunks splits [0, n) into at most parts contiguous near-equal ranges
// (the first n%parts ranges are one longer). It returns nil when n <= 0.
func Chunks(n, parts int) []Chunk {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Chunk, 0, parts)
	size, rem := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + size
		if p < rem {
			hi++
		}
		out = append(out, Chunk{lo, hi})
		lo = hi
	}
	return out
}

// FixedChunks splits [0, n) into contiguous ranges of exactly size indices
// (the last may be shorter). Unlike Chunks, the layout is independent of
// the worker count — use it when per-chunk state (e.g. a derived RNG seed)
// must not change as parallelism changes.
func FixedChunks(n, size int) []Chunk {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	out := make([]Chunk, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Chunk{lo, hi})
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n) across Workers() goroutines.
// Work is dealt as contiguous chunks via an atomic cursor, so the mapping
// of index to chunk is fixed while the mapping of chunk to goroutine is
// not — callers must only key state off the index. If any fn returns an
// error, ForEach returns the error carried by the lowest index (a
// deterministic choice); remaining chunks may still run.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	chunks := Chunks(n, w)
	errs := make([]error, len(chunks))
	errAt := make([]int, len(chunks))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w && g < len(chunks); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
					if err := fn(i); err != nil {
						errs[c], errAt[c] = err, i
						break // abandon this chunk, keep draining others
					}
				}
			}
		}()
	}
	wg.Wait()
	best, bestAt := error(nil), n
	for c, err := range errs {
		if err != nil && errAt[c] < bestAt {
			best, bestAt = err, errAt[c]
		}
	}
	return best
}

// Map evaluates fn(i) for every i in [0, n) across Workers() goroutines
// and returns the results ordered by index. On error the slice is nil and
// the returned error is the one carried by the lowest failing index.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestChunksCoverAndPartition(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{1, 1}, {10, 3}, {10, 10}, {10, 100}, {7, 2}, {1000, 16}, {5, 0},
	} {
		cs := Chunks(tc.n, tc.parts)
		lo := 0
		for _, c := range cs {
			if c.Lo != lo || c.Hi <= c.Lo {
				t.Fatalf("Chunks(%d,%d) = %v: not a partition", tc.n, tc.parts, cs)
			}
			lo = c.Hi
		}
		if lo != tc.n {
			t.Fatalf("Chunks(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.parts, lo, tc.n)
		}
		if tc.parts > 0 && len(cs) > tc.parts {
			t.Fatalf("Chunks(%d,%d) produced %d chunks", tc.n, tc.parts, len(cs))
		}
	}
	if Chunks(0, 4) != nil || Chunks(-3, 4) != nil {
		t.Fatal("Chunks of empty range must be nil")
	}
}

func TestFixedChunksLayoutIgnoresWorkers(t *testing.T) {
	cs := FixedChunks(10, 4)
	want := []Chunk{{0, 4}, {4, 8}, {8, 10}}
	if len(cs) != len(want) {
		t.Fatalf("FixedChunks(10,4) = %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("FixedChunks(10,4) = %v, want %v", cs, want)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		const n = 257
		var visits [n]atomic.Int64
		if err := ForEach(n, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, got)
			}
		}
	}
	SetWorkers(0)
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		err := ForEach(100, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 93:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the error from the lowest index", w, err)
		}
	}
	SetWorkers(0)
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		out, err := Map(50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestWorkersDefaultsPositive(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Fatal("negative SetWorkers must reset to default")
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
}

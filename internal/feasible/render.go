package feasible

import (
	"fmt"
	"strings"

	"rodsp/internal/mat"
)

// RenderASCII draws a two-variable system's normalized feasible region as a
// text plot over [0,1]² — the picture Figures 3, 5 and 6 of the paper draw:
// '#' marks feasible points, '·' points inside the ideal simplex that the
// plan wastes, and ' ' points beyond the ideal hyperplane that no plan can
// reach. The origin sits bottom-left; the x-axis is variable 0.
func RenderASCII(w *mat.Matrix, width, height int) string {
	if w.Cols != 2 {
		panic(fmt.Sprintf("feasible: RenderASCII needs d=2, got %d", w.Cols))
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	x := make(mat.Vec, 2)
	for row := height - 1; row >= 0; row-- {
		x[1] = (float64(row) + 0.5) / float64(height)
		b.WriteByte('|')
		for col := 0; col < width; col++ {
			x[0] = (float64(col) + 0.5) / float64(width)
			switch {
			case x[0]+x[1] > 1:
				b.WriteByte(' ')
			case feasiblePoint(w, x):
				b.WriteByte('#')
			default:
				b.WriteString("·")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	return b.String()
}

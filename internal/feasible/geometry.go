// Package feasible implements the feasible-set machinery of the paper:
// node hyperplanes, the ideal node load coefficient matrix of Theorem 1, the
// normalized weight matrix W, the MMAD/MMPD distance metrics, and feasible-
// set size estimation by Quasi-Monte Carlo integration over the ideal
// simplex (with an exact 2-D polygon-clipping cross-check).
//
// Normalization convention: with x_k = l_k r_k / C_T the ideal feasible set
// becomes the standard simplex {x ≥ 0, Σ x_k ≤ 1} and the i-th node
// hyperplane becomes W_i · x = 1 where
//
//	w_ik = (l^n_ik / l_k) / (C_i / C_T).
package feasible

import (
	"fmt"
	"math"

	"rodsp/internal/mat"
)

// System couples a node load coefficient matrix L^n (n×d) with the node
// capacity vector C (length n). The system is feasible at rate point R iff
// L^n R ≤ C.
type System struct {
	Ln *mat.Matrix
	C  mat.Vec
}

// FeasibleAt reports whether no node is overloaded at rate point R.
func (s *System) FeasibleAt(r mat.Vec) bool {
	return s.Ln.MulVec(r).AllLeq(s.C, 1e-12)
}

// Utilizations returns each node's load/capacity ratio at R.
func (s *System) Utilizations(r mat.Vec) mat.Vec {
	u := s.Ln.MulVec(r)
	for i := range u {
		u[i] /= s.C[i]
	}
	return u
}

// IdealCoef returns the ideal node load coefficient matrix of Theorem 1:
// l*_ik = l_k · C_i / C_T, which balances every stream's load across nodes
// in proportion to capacity and attains the maximum possible feasible set.
func IdealCoef(lk, c mat.Vec) *mat.Matrix {
	ct := c.Sum()
	m := mat.NewMatrix(len(c), len(lk))
	for i := range c {
		row := m.Row(i)
		for k := range lk {
			row[k] = lk[k] * c[i] / ct
		}
	}
	return m
}

// IdealVolume returns the volume of the ideal feasible set,
// C_T^d / (d! · Π_k l_k). Every l_k must be positive.
func IdealVolume(lk, c mat.Vec) (float64, error) {
	ct := c.Sum()
	if ct <= 0 {
		return 0, fmt.Errorf("feasible: total capacity must be positive, got %g", ct)
	}
	v := 1.0
	for k, l := range lk {
		if l <= 0 {
			return 0, fmt.Errorf("feasible: coefficient sum l_%d = %g must be positive (stream feeds no operator?)", k, l)
		}
		v *= ct / l / float64(k+1) // accumulate C_T^d / (Π l_k) / d! incrementally
	}
	return v, nil
}

// Weights computes the normalized weight matrix W from node coefficients,
// capacities and the per-stream coefficient sums l_k. It errors if any
// capacity or coefficient sum is non-positive.
func Weights(ln *mat.Matrix, c, lk mat.Vec) (*mat.Matrix, error) {
	if ln.Rows != len(c) {
		return nil, fmt.Errorf("feasible: %d nodes vs %d capacities", ln.Rows, len(c))
	}
	if ln.Cols != len(lk) {
		return nil, fmt.Errorf("feasible: %d streams vs %d coefficient sums", ln.Cols, len(lk))
	}
	ct := c.Sum()
	w := mat.NewMatrix(ln.Rows, ln.Cols)
	for i := 0; i < ln.Rows; i++ {
		if c[i] <= 0 {
			return nil, fmt.Errorf("feasible: node %d capacity %g must be positive", i, c[i])
		}
		share := c[i] / ct
		row := w.Row(i)
		src := ln.Row(i)
		for k := range row {
			if lk[k] <= 0 {
				return nil, fmt.Errorf("feasible: coefficient sum l_%d = %g must be positive", k, lk[k])
			}
			row[k] = (src[k] / lk[k]) / share
		}
	}
	return w, nil
}

// PlaneDistance returns the distance from the origin to the hyperplane
// W_i·x = 1, i.e. 1/‖W_i‖. A zero row (empty node) is at infinity.
func PlaneDistance(wi mat.Vec) float64 {
	n := wi.Norm()
	if n == 0 {
		return math.Inf(1)
	}
	return 1 / n
}

// PlaneDistanceFrom returns the distance from point b to the hyperplane
// W_i·x = 1, i.e. (1 − W_i·b)/‖W_i‖ — the Section 6.1 lower-bound metric.
// It is negative if b is already beyond the hyperplane.
func PlaneDistanceFrom(wi, b mat.Vec) float64 {
	n := wi.Norm()
	if n == 0 {
		return math.Inf(1)
	}
	return (1 - wi.Dot(b)) / n
}

// MinPlaneDistance returns r = min_i 1/‖W_i‖, the MMPD objective.
func MinPlaneDistance(w *mat.Matrix) float64 {
	r := math.Inf(1)
	for i := 0; i < w.Rows; i++ {
		if d := PlaneDistance(w.Row(i)); d < r {
			r = d
		}
	}
	return r
}

// MinPlaneDistanceFrom returns min_i (1 − W_i·b)/‖W_i‖.
func MinPlaneDistanceFrom(w *mat.Matrix, b mat.Vec) float64 {
	r := math.Inf(1)
	for i := 0; i < w.Rows; i++ {
		if d := PlaneDistanceFrom(w.Row(i), b); d < r {
			r = d
		}
	}
	return r
}

// IdealPlaneDistance returns r* = 1/√d, the distance from the origin to the
// ideal hyperplane Σ x_k = 1.
func IdealPlaneDistance(d int) float64 { return 1 / math.Sqrt(float64(d)) }

// MinAxisDistances returns, per axis k, the minimum over nodes of the axis
// distance 1/w_ik — the MMAD objective wants each entry close to 1.
func MinAxisDistances(w *mat.Matrix) mat.Vec {
	out := make(mat.Vec, w.Cols)
	for k := 0; k < w.Cols; k++ {
		m := math.Inf(1)
		for i := 0; i < w.Rows; i++ {
			wik := w.At(i, k)
			var d float64
			if wik == 0 {
				d = math.Inf(1)
			} else {
				d = 1 / wik
			}
			if d < m {
				m = d
			}
		}
		out[k] = m
	}
	return out
}

// MMADLowerBound returns the Section 4.1 lower bound on feasible-set ratio,
// Π_k min_i (1/w_ik), clamped to [0, 1].
func MMADLowerBound(w *mat.Matrix) float64 {
	p := 1.0
	for _, d := range MinAxisDistances(w) {
		if math.IsInf(d, 1) {
			continue
		}
		if d > 1 {
			d = 1
		}
		p *= d
	}
	if p < 0 {
		return 0
	}
	return p
}

// HypersphereLowerBound returns the ratio of the positive-orthant portion of
// a radius-r hypersphere to the volume of the standard simplex — the curve
// drawn in Figure 9. In d dimensions the orthant ball volume is
// (π^{d/2} r^d / Γ(d/2+1)) / 2^d and the simplex volume is 1/d!.
func HypersphereLowerBound(r float64, d int) float64 {
	if r <= 0 {
		return 0
	}
	rStar := IdealPlaneDistance(d)
	if r > rStar {
		r = rStar // the ball cannot exceed the ideal simplex portion it certifies
	}
	ball := math.Pow(math.Pi, float64(d)/2) * math.Pow(r, float64(d)) / math.Gamma(float64(d)/2+1)
	orthant := ball / math.Pow(2, float64(d))
	simplex := 1.0
	for k := 1; k <= d; k++ {
		simplex /= float64(k)
	}
	ratio := orthant / simplex
	if ratio > 1 {
		ratio = 1
	}
	return ratio
}

package feasible

import (
	"math/rand"
	"testing"
)

func BenchmarkRatioToIdeal(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := randWeights(rng, 8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RatioToIdeal(w, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRatioToIdealFrom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := randWeights(rng, 8, 5)
	lb := make([]float64, 5)
	for k := range lb {
		lb[k] = 0.05
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RatioToIdealFrom(w, lb, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

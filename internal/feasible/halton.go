package feasible

import "fmt"

// Halton generates the Halton low-discrepancy sequence in (0,1)^dims, the
// quasi-random point source for feasible-set integration ("Quasi Monte
// Carlo integration", Section 7.1). Dimension k uses the k-th prime as its
// radical-inverse base.
type Halton struct {
	bases []int
	index int64
}

// NewHalton returns a Halton sequence over the given number of dimensions,
// starting at index 1 (index 0 is the all-zero point, useless for
// integration). Panics if dims is not positive.
func NewHalton(dims int) *Halton {
	if dims <= 0 {
		panic(fmt.Sprintf("feasible: Halton dims must be positive, got %d", dims))
	}
	return &Halton{bases: firstPrimes(dims), index: 1}
}

// NewHaltonAt returns a Halton sequence positioned so its next point is the
// sequence's point number pos (0-based: NewHaltonAt(dims, 0) is NewHalton).
// Because each point is a pure function of its index, a worker given
// NewHaltonAt(d, chunk.Lo) generates exactly the points a serial generator
// would produce for that chunk — the jump-ahead that makes chunked QMC
// bit-identical to the serial sweep. Panics if pos is negative.
func NewHaltonAt(dims int, pos int64) *Halton {
	h := NewHalton(dims)
	if pos < 0 {
		panic(fmt.Sprintf("feasible: Halton position must be non-negative, got %d", pos))
	}
	h.index += pos
	return h
}

// Next fills dst with the next point of the sequence. len(dst) must equal
// the dimension count.
func (h *Halton) Next(dst []float64) {
	if len(dst) != len(h.bases) {
		panic(fmt.Sprintf("feasible: Halton.Next dst length %d, want %d", len(dst), len(h.bases)))
	}
	for k, b := range h.bases {
		dst[k] = radicalInverse(h.index, b)
	}
	h.index++
}

// Skip advances the sequence by n points.
func (h *Halton) Skip(n int64) { h.index += n }

// Pos returns the 0-based position of the next point Next will produce.
func (h *Halton) Pos() int64 { return h.index - 1 }

// At fills dst with the sequence's point number pos (0-based) without
// moving the generator — random access into the sequence. len(dst) must
// equal the dimension count and pos must be non-negative.
func (h *Halton) At(pos int64, dst []float64) {
	if len(dst) != len(h.bases) {
		panic(fmt.Sprintf("feasible: Halton.At dst length %d, want %d", len(dst), len(h.bases)))
	}
	if pos < 0 {
		panic(fmt.Sprintf("feasible: Halton.At position must be non-negative, got %d", pos))
	}
	for k, b := range h.bases {
		dst[k] = radicalInverse(pos+1, b)
	}
}

// radicalInverse reflects the base-b digits of i about the radix point.
func radicalInverse(i int64, b int) float64 {
	var (
		f    = 1.0
		r    = 0.0
		base = float64(b)
	)
	for i > 0 {
		f /= base
		r += f * float64(i%int64(b))
		i /= int64(b)
	}
	return r
}

// firstPrimes returns the first n primes via trial division (n is tiny —
// one per workload dimension).
func firstPrimes(n int) []int {
	primes := make([]int, 0, n)
	for cand := 2; len(primes) < n; cand++ {
		isPrime := true
		for _, p := range primes {
			if p*p > cand {
				break
			}
			if cand%p == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			primes = append(primes, cand)
		}
	}
	return primes
}

package feasible

import (
	"math/rand"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/par"
)

// The chunked evaluators must be bit-identical for any worker count: the
// compute plane's core determinism guarantee (ISSUE 3). Covers the plain
// ratio, the restricted (lb != nil) path, the MC cross-check, and
// SamplePoints, at workers 1, 2 and 8.
func TestEvaluatorsBitIdenticalAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)

	rng := rand.New(rand.NewSource(71))
	type input struct {
		w  *mat.Matrix
		lb mat.Vec
	}
	var inputs []input
	for trial := 0; trial < 6; trial++ {
		w := randWeights(rng, 2+rng.Intn(5), 2+rng.Intn(4))
		lb := mat.NewVec(w.Cols)
		for k := range lb {
			lb[k] = 0.3 * rng.Float64() / float64(w.Cols)
		}
		inputs = append(inputs, input{w, lb})
	}

	type result struct {
		plain, from, mc float64
		pts             []mat.Vec
	}
	run := func(in input) result {
		plain := mustRatio(t, in.w, 5000)
		from := mustRatioFrom(t, in.w, in.lb, 5000)
		mc, err := RatioToIdealMC(in.w, 20000, 9)
		if err != nil {
			t.Fatalf("RatioToIdealMC: %v", err)
		}
		return result{plain, from, mc, SamplePoints(in.w.Cols, 500)}
	}

	par.SetWorkers(1)
	var want []result
	for _, in := range inputs {
		want = append(want, run(in))
	}

	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		for i, in := range inputs {
			got := run(in)
			if got.plain != want[i].plain {
				t.Fatalf("workers=%d input %d: RatioToIdeal %v != %v", w, i, got.plain, want[i].plain)
			}
			if got.from != want[i].from {
				t.Fatalf("workers=%d input %d: RatioToIdealFrom %v != %v", w, i, got.from, want[i].from)
			}
			if got.mc != want[i].mc {
				t.Fatalf("workers=%d input %d: RatioToIdealMC %v != %v", w, i, got.mc, want[i].mc)
			}
			for p := range want[i].pts {
				if !got.pts[p].Equal(want[i].pts[p], 0) {
					t.Fatalf("workers=%d input %d: SamplePoints[%d] differs", w, i, p)
				}
			}
		}
	}
}

package feasible

import (
	"fmt"
	"math"
	"math/rand"

	"rodsp/internal/mat"
	"rodsp/internal/par"
)

// SimplexPoint maps d+1 independent uniforms in (0,1) to a point uniformly
// distributed in the solid standard simplex {x ≥ 0, Σ x_k ≤ 1} ⊂ R^d, via
// the exponential-spacings construction: y_i = −ln(1−u_i) are i.i.d.
// exponentials, (y_1,…,y_{d+1})/Σ y is uniform on the boundary simplex of
// dimension d, and dropping the last coordinate projects it uniformly onto
// the solid simplex. len(u) must be len(dst)+1.
func SimplexPoint(u []float64, dst []float64) {
	if len(u) != len(dst)+1 {
		panic(fmt.Sprintf("feasible: SimplexPoint needs %d uniforms for dimension %d", len(dst)+1, len(dst)))
	}
	var sum float64
	for _, ui := range u {
		sum += -math.Log1p(-ui)
	}
	for k := range dst {
		dst[k] = -math.Log1p(-u[k]) / sum
	}
}

// RatioToIdeal estimates |F(W)| / |F*|: the fraction of the ideal simplex
// (in normalized coordinates) that satisfies every node constraint
// W_i·x ≤ 1. Uses Halton QMC with the given sample budget, fanned across
// the par worker pool. It errors on a non-positive sample budget.
func RatioToIdeal(w *mat.Matrix, samples int) (float64, error) {
	return RatioToIdealFrom(w, nil, samples)
}

// RatioAuto computes the feasible ratio with exact geometry where available
// (d = 2 polygon clipping, d = 3 polytope enumeration) and QMC otherwise.
func RatioAuto(w *mat.Matrix, samples int) (float64, error) {
	switch w.Cols {
	case 2:
		return ExactRatio2D(w), nil
	case 3:
		return ExactRatio3D(w), nil
	default:
		return RatioToIdeal(w, samples)
	}
}

// RatioToIdealFrom estimates the feasible fraction of the *restricted*
// ideal region {x ≥ lb, Σ x_k ≤ 1} (Section 6.1 workload sets with lower
// bound B, already normalized). A nil lb means the origin. Returns 0 when
// the restricted region is empty (Σ lb ≥ 1).
//
// The sample sweep is chunked across the par worker pool: each worker
// jump-ahead-seeds its own Halton generator at its chunk start, so every
// sample point is identical to the serial sweep's, and the per-chunk hit
// counts are integers reduced in chunk order — the result is bit-identical
// for any worker count. A malformed budget or lower bound returns an error
// (not a panic), so a bad config cannot crash a long bench run.
func RatioToIdealFrom(w *mat.Matrix, lb mat.Vec, samples int) (float64, error) {
	d := w.Cols
	if samples <= 0 {
		return 0, fmt.Errorf("feasible: sample budget must be positive, got %d", samples)
	}
	scale := 1.0
	if lb != nil {
		if len(lb) != d {
			return 0, fmt.Errorf("feasible: lower bound length %d, want %d", len(lb), d)
		}
		scale = 1 - lb.Sum()
		if scale <= 0 {
			return 0, nil
		}
	}
	chunks := par.Chunks(samples, par.Workers())
	hits := make([]int, len(chunks))
	_ = par.ForEach(len(chunks), func(ci int) error {
		c := chunks[ci]
		h := NewHaltonAt(d+1, int64(c.Lo))
		u := make([]float64, d+1)
		x := make(mat.Vec, d)
		n := 0
		for s := c.Lo; s < c.Hi; s++ {
			h.Next(u)
			SimplexPoint(u, x)
			if lb != nil {
				for k := range x {
					x[k] = lb[k] + scale*x[k]
				}
			}
			if feasiblePoint(w, x) {
				n++
			}
		}
		hits[ci] = n
		return nil
	})
	total := 0
	for _, n := range hits {
		total += n
	}
	return float64(total) / float64(samples), nil
}

// mcChunk is the fixed Monte-Carlo chunk size. It is independent of the
// worker count so the per-chunk derived RNG streams — and therefore the
// estimate — never change as parallelism changes.
const mcChunk = 8192

// RatioToIdealMC is the plain (pseudo-random) Monte Carlo counterpart of
// RatioToIdeal, used to cross-validate the QMC estimator. Samples are
// drawn in fixed-size chunks, each from an RNG stream derived from seed
// and the chunk index, evaluated across the par worker pool; the result is
// identical for any worker count.
func RatioToIdealMC(w *mat.Matrix, samples int, seed int64) (float64, error) {
	d := w.Cols
	if samples <= 0 {
		return 0, fmt.Errorf("feasible: sample budget must be positive, got %d", samples)
	}
	chunks := par.FixedChunks(samples, mcChunk)
	hits := make([]int, len(chunks))
	_ = par.ForEach(len(chunks), func(ci int) error {
		c := chunks[ci]
		rng := rand.New(rand.NewSource(seed + int64(ci)*0x9E3779B9))
		u := make([]float64, d+1)
		x := make(mat.Vec, d)
		n := 0
		for s := c.Lo; s < c.Hi; s++ {
			for i := range u {
				u[i] = rng.Float64()
			}
			SimplexPoint(u, x)
			if feasiblePoint(w, x) {
				n++
			}
		}
		hits[ci] = n
		return nil
	})
	total := 0
	for _, n := range hits {
		total += n
	}
	return float64(total) / float64(samples), nil
}

// SamplePoints returns n QMC points uniformly covering the ideal simplex in
// normalized coordinates — the workload points the Borealis experiments
// draw "all within the ideal feasible set" (Section 7.1). Each point is a
// pure function of its sequence index, so the chunked parallel generation
// reproduces the serial sequence exactly.
func SamplePoints(d, n int) []mat.Vec {
	pts := make([]mat.Vec, n)
	chunks := par.Chunks(n, par.Workers())
	_ = par.ForEach(len(chunks), func(ci int) error {
		c := chunks[ci]
		h := NewHaltonAt(d+1, int64(c.Lo))
		u := make([]float64, d+1)
		for s := c.Lo; s < c.Hi; s++ {
			h.Next(u)
			x := make(mat.Vec, d)
			SimplexPoint(u, x)
			pts[s] = x
		}
		return nil
	})
	return pts
}

// Denormalize converts a normalized point x back to raw input rates:
// r_k = x_k · C_T / l_k.
func Denormalize(x, lk mat.Vec, ct float64) mat.Vec {
	r := make(mat.Vec, len(x))
	for k := range x {
		r[k] = x[k] * ct / lk[k]
	}
	return r
}

// Normalize converts raw input rates to normalized coordinates:
// x_k = l_k r_k / C_T.
func Normalize(r, lk mat.Vec, ct float64) mat.Vec {
	x := make(mat.Vec, len(r))
	for k := range r {
		x[k] = lk[k] * r[k] / ct
	}
	return x
}

func feasiblePoint(w *mat.Matrix, x mat.Vec) bool {
	for i := 0; i < w.Rows; i++ {
		if w.Row(i).Dot(x) > 1+1e-12 {
			return false
		}
	}
	return true
}

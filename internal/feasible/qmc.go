package feasible

import (
	"fmt"
	"math"
	"math/rand"

	"rodsp/internal/mat"
)

// SimplexPoint maps d+1 independent uniforms in (0,1) to a point uniformly
// distributed in the solid standard simplex {x ≥ 0, Σ x_k ≤ 1} ⊂ R^d, via
// the exponential-spacings construction: y_i = −ln(1−u_i) are i.i.d.
// exponentials, (y_1,…,y_{d+1})/Σ y is uniform on the boundary simplex of
// dimension d, and dropping the last coordinate projects it uniformly onto
// the solid simplex. len(u) must be len(dst)+1.
func SimplexPoint(u []float64, dst []float64) {
	if len(u) != len(dst)+1 {
		panic(fmt.Sprintf("feasible: SimplexPoint needs %d uniforms for dimension %d", len(dst)+1, len(dst)))
	}
	var sum float64
	for _, ui := range u {
		sum += -math.Log1p(-ui)
	}
	for k := range dst {
		dst[k] = -math.Log1p(-u[k]) / sum
	}
}

// RatioToIdeal estimates |F(W)| / |F*|: the fraction of the ideal simplex
// (in normalized coordinates) that satisfies every node constraint
// W_i·x ≤ 1. Uses Halton QMC with the given sample budget.
func RatioToIdeal(w *mat.Matrix, samples int) float64 {
	return RatioToIdealFrom(w, nil, samples)
}

// RatioAuto computes the feasible ratio with exact geometry where available
// (d = 2 polygon clipping, d = 3 polytope enumeration) and QMC otherwise.
func RatioAuto(w *mat.Matrix, samples int) float64 {
	switch w.Cols {
	case 2:
		return ExactRatio2D(w)
	case 3:
		return ExactRatio3D(w)
	default:
		return RatioToIdeal(w, samples)
	}
}

// RatioToIdealFrom estimates the feasible fraction of the *restricted*
// ideal region {x ≥ lb, Σ x_k ≤ 1} (Section 6.1 workload sets with lower
// bound B, already normalized). A nil lb means the origin. Returns 0 when
// the restricted region is empty (Σ lb ≥ 1).
func RatioToIdealFrom(w *mat.Matrix, lb mat.Vec, samples int) float64 {
	d := w.Cols
	if samples <= 0 {
		panic("feasible: sample budget must be positive")
	}
	scale := 1.0
	if lb != nil {
		if len(lb) != d {
			panic(fmt.Sprintf("feasible: lower bound length %d, want %d", len(lb), d))
		}
		scale = 1 - lb.Sum()
		if scale <= 0 {
			return 0
		}
	}
	h := NewHalton(d + 1)
	u := make([]float64, d+1)
	x := make(mat.Vec, d)
	hits := 0
	for s := 0; s < samples; s++ {
		h.Next(u)
		SimplexPoint(u, x)
		if lb != nil {
			for k := range x {
				x[k] = lb[k] + scale*x[k]
			}
		}
		if feasiblePoint(w, x) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// RatioToIdealMC is the plain (pseudo-random) Monte Carlo counterpart of
// RatioToIdeal, used to cross-validate the QMC estimator.
func RatioToIdealMC(w *mat.Matrix, samples int, rng *rand.Rand) float64 {
	d := w.Cols
	u := make([]float64, d+1)
	x := make(mat.Vec, d)
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range u {
			u[i] = rng.Float64()
		}
		SimplexPoint(u, x)
		if feasiblePoint(w, x) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// SamplePoints returns n QMC points uniformly covering the ideal simplex in
// normalized coordinates — the workload points the Borealis experiments
// draw "all within the ideal feasible set" (Section 7.1).
func SamplePoints(d, n int) []mat.Vec {
	h := NewHalton(d + 1)
	u := make([]float64, d+1)
	pts := make([]mat.Vec, n)
	for s := 0; s < n; s++ {
		h.Next(u)
		x := make(mat.Vec, d)
		SimplexPoint(u, x)
		pts[s] = x
	}
	return pts
}

// Denormalize converts a normalized point x back to raw input rates:
// r_k = x_k · C_T / l_k.
func Denormalize(x, lk mat.Vec, ct float64) mat.Vec {
	r := make(mat.Vec, len(x))
	for k := range x {
		r[k] = x[k] * ct / lk[k]
	}
	return r
}

// Normalize converts raw input rates to normalized coordinates:
// x_k = l_k r_k / C_T.
func Normalize(r, lk mat.Vec, ct float64) mat.Vec {
	x := make(mat.Vec, len(r))
	for k := range r {
		x[k] = lk[k] * r[k] / ct
	}
	return x
}

func feasiblePoint(w *mat.Matrix, x mat.Vec) bool {
	for i := 0; i < w.Rows; i++ {
		if w.Row(i).Dot(x) > 1+1e-12 {
			return false
		}
	}
	return true
}

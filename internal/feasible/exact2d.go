package feasible

import (
	"fmt"

	"rodsp/internal/mat"
)

// ExactRatio2D computes |F(W)| / |F*| exactly for d = 2 by clipping the
// ideal triangle (0,0)-(1,0)-(0,1) against every node half-plane
// W_i·x ≤ 1 (Sutherland–Hodgman) and taking the shoelace area over the
// ideal area 1/2. Used to validate the QMC estimator and in the small-case
// optimal-placement search.
func ExactRatio2D(w *mat.Matrix) float64 {
	if w.Cols != 2 {
		panic(fmt.Sprintf("feasible: ExactRatio2D needs d=2, got %d", w.Cols))
	}
	poly := []point{{0, 0}, {1, 0}, {0, 1}}
	for i := 0; i < w.Rows; i++ {
		a, b := w.At(i, 0), w.At(i, 1)
		poly = clipHalfPlane(poly, a, b, 1)
		if len(poly) == 0 {
			return 0
		}
	}
	return shoelace(poly) / 0.5
}

type point struct{ x, y float64 }

// clipHalfPlane keeps the part of poly with a·x + b·y ≤ c.
func clipHalfPlane(poly []point, a, b, c float64) []point {
	if len(poly) == 0 {
		return nil
	}
	inside := func(p point) bool { return a*p.x+b*p.y <= c+1e-12 }
	var out []point
	for i := range poly {
		cur := poly[i]
		prev := poly[(i+len(poly)-1)%len(poly)]
		curIn, prevIn := inside(cur), inside(prev)
		if curIn != prevIn {
			out = append(out, intersect(prev, cur, a, b, c))
		}
		if curIn {
			out = append(out, cur)
		}
	}
	return out
}

// intersect returns the point on segment p-q where a·x + b·y = c.
func intersect(p, q point, a, b, c float64) point {
	fp := a*p.x + b*p.y - c
	fq := a*q.x + b*q.y - c
	t := fp / (fp - fq)
	return point{p.x + t*(q.x-p.x), p.y + t*(q.y-p.y)}
}

func shoelace(poly []point) float64 {
	var s float64
	for i := range poly {
		j := (i + 1) % len(poly)
		s += poly[i].x*poly[j].y - poly[j].x*poly[i].y
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

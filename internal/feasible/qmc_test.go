package feasible

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rodsp/internal/mat"
)

// mustRatio unwraps RatioToIdeal for tests with well-formed inputs.
func mustRatio(t *testing.T, w *mat.Matrix, samples int) float64 {
	t.Helper()
	r, err := RatioToIdeal(w, samples)
	if err != nil {
		t.Fatalf("RatioToIdeal: %v", err)
	}
	return r
}

// mustRatioFrom unwraps RatioToIdealFrom for tests with well-formed inputs.
func mustRatioFrom(t *testing.T, w *mat.Matrix, lb mat.Vec, samples int) float64 {
	t.Helper()
	r, err := RatioToIdealFrom(w, lb, samples)
	if err != nil {
		t.Fatalf("RatioToIdealFrom: %v", err)
	}
	return r
}

// mustAuto unwraps RatioAuto for tests with well-formed inputs.
func mustAuto(t *testing.T, w *mat.Matrix, samples int) float64 {
	t.Helper()
	r, err := RatioAuto(w, samples)
	if err != nil {
		t.Fatalf("RatioAuto: %v", err)
	}
	return r
}

func TestHaltonFirstValues(t *testing.T) {
	h := NewHalton(2)
	want := [][2]float64{
		{1. / 2, 1. / 3},
		{1. / 4, 2. / 3},
		{3. / 4, 1. / 9},
		{1. / 8, 4. / 9},
	}
	p := make([]float64, 2)
	for i, w := range want {
		h.Next(p)
		if math.Abs(p[0]-w[0]) > 1e-15 || math.Abs(p[1]-w[1]) > 1e-15 {
			t.Fatalf("point %d = %v, want %v", i, p, w)
		}
	}
}

func TestHaltonRangeAndMean(t *testing.T) {
	h := NewHalton(3)
	p := make([]float64, 3)
	sums := make([]float64, 3)
	const n = 5000
	for i := 0; i < n; i++ {
		h.Next(p)
		for k, x := range p {
			if x <= 0 || x >= 1 {
				t.Fatalf("Halton value %g out of (0,1)", x)
			}
			sums[k] += x
		}
	}
	for k, s := range sums {
		if math.Abs(s/n-0.5) > 0.01 {
			t.Fatalf("dimension %d mean %g far from 0.5", k, s/n)
		}
	}
}

func TestHaltonSkip(t *testing.T) {
	a, b := NewHalton(1), NewHalton(1)
	p, q := make([]float64, 1), make([]float64, 1)
	for i := 0; i < 5; i++ {
		a.Next(p)
	}
	b.Skip(4)
	b.Next(q)
	if p[0] != q[0] {
		t.Fatalf("Skip mismatch: %g vs %g", p[0], q[0])
	}
}

func TestHaltonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dims=0")
		}
	}()
	NewHalton(0)
}

func TestHaltonNextWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	NewHalton(2).Next(make([]float64, 3))
}

func TestFirstPrimes(t *testing.T) {
	got := firstPrimes(8)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firstPrimes = %v", got)
		}
	}
}

func TestSimplexPointInSimplex(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		u := []float64{
			(float64(a) + 0.5) / (1 << 33),
			float64(b)/(1<<33) + 0.25,
			float64(c)/(1<<33) + 0.1,
			float64(d)/(1<<33) + 0.4,
		}
		x := make([]float64, 3)
		SimplexPoint(u, x)
		var sum float64
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Uniform on the solid simplex has E[x_k] = 1/(d+2)... no: for the solid
// simplex in R^d (x>=0, sum<=1) the expectation of each coordinate is
// 1/(d+1). Check d=1 (uniform on [0,1], mean 1/2) and d=2 (mean 1/3).
func TestSimplexPointMean(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		h := NewHalton(d + 1)
		u := make([]float64, d+1)
		x := make([]float64, d)
		sums := make([]float64, d)
		const n = 20000
		for i := 0; i < n; i++ {
			h.Next(u)
			SimplexPoint(u, x)
			for k, v := range x {
				sums[k] += v
			}
		}
		want := 1.0 / float64(d+1)
		for k, s := range sums {
			if math.Abs(s/n-want) > 0.01 {
				t.Fatalf("d=%d: coordinate %d mean %g, want %g", d, k, s/n, want)
			}
		}
	}
}

func TestSimplexPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	SimplexPoint([]float64{0.5}, make([]float64, 3))
}

func TestRatioToIdealOfIdealIsOne(t *testing.T) {
	for _, d := range []int{1, 2, 5} {
		w := mat.NewMatrix(3, d)
		for i := range w.Data {
			w.Data[i] = 1
		}
		if got := mustRatio(t, w, 2000); got != 1 {
			t.Fatalf("d=%d: ideal plan ratio = %g, want 1", d, got)
		}
	}
}

func TestRatioToIdealAgainstExact2D(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		w := randWeights(rng, 2+rng.Intn(4), 2)
		exact := ExactRatio2D(w)
		qmc := mustRatio(t, w, 20000)
		if math.Abs(exact-qmc) > 0.01 {
			t.Fatalf("trial %d: exact %g vs QMC %g for\n%v", trial, exact, qmc, w)
		}
	}
}

func TestRatioToIdealAgainstMC(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	w := randWeights(rng, 4, 4)
	qmc := mustRatio(t, w, 30000)
	mc, err := RatioToIdealMC(w, 200000, 33)
	if err != nil {
		t.Fatalf("RatioToIdealMC: %v", err)
	}
	if math.Abs(qmc-mc) > 0.015 {
		t.Fatalf("QMC %g vs MC %g disagree", qmc, mc)
	}
}

func TestRatioAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// d=2 and d=3 must match the exact routines bit for bit.
	w2 := randWeights(rng, 3, 2)
	if mustAuto(t, w2, 10) != ExactRatio2D(w2) {
		t.Fatal("d=2 must dispatch to the exact routine")
	}
	w3 := randWeights(rng, 3, 3)
	if mustAuto(t, w3, 10) != ExactRatio3D(w3) {
		t.Fatal("d=3 must dispatch to the exact routine")
	}
	// d=4 falls back to QMC.
	w4 := randWeights(rng, 3, 4)
	if mustAuto(t, w4, 5000) != mustRatio(t, w4, 5000) {
		t.Fatal("d=4 must dispatch to QMC")
	}
}

func TestRatioToIdealFrom(t *testing.T) {
	// Ideal plan restricted anywhere is still fully feasible.
	w := mat.MatrixOf([]float64{1, 1}, []float64{1, 1})
	if got := mustRatioFrom(t, w, mat.VecOf(0.2, 0.3), 2000); got != 1 {
		t.Fatalf("restricted ideal ratio = %g", got)
	}
	// Empty restricted region.
	if got := mustRatioFrom(t, w, mat.VecOf(0.6, 0.5), 100); got != 0 {
		t.Fatalf("empty region ratio = %g, want 0", got)
	}
	// A plan infeasible at the lower bound scores 0.
	bad := mat.MatrixOf([]float64{5, 0}, []float64{0, 1})
	if got := mustRatioFrom(t, bad, mat.VecOf(0.4, 0), 2000); got != 0 {
		t.Fatalf("plan violating the floor should score 0, got %g", got)
	}
}

func TestRatioToIdealFromMatchesUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := randWeights(rng, 3, 3)
	a := mustRatio(t, w, 10000)
	b := mustRatioFrom(t, w, mat.NewVec(3), 10000)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("zero lower bound must match unrestricted: %g vs %g", a, b)
	}
}

// Malformed sample budgets and lower bounds return errors (not panics), so
// a bad config cannot crash a long bench run.
func TestRatioErrors(t *testing.T) {
	w := mat.NewMatrix(1, 2)
	for name, f := range map[string]func() (float64, error){
		"zero samples":    func() (float64, error) { return RatioToIdeal(w, 0) },
		"negative budget": func() (float64, error) { return RatioToIdealFrom(w, nil, -5) },
		"bad lb len":      func() (float64, error) { return RatioToIdealFrom(w, mat.VecOf(1), 10) },
		"mc zero samples": func() (float64, error) { return RatioToIdealMC(w, 0, 1) },
	} {
		if _, err := f(); err == nil {
			t.Fatalf("%s should return an error", name)
		}
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	lk := mat.VecOf(10, 11, 3)
	ct := 4.0
	r := mat.VecOf(0.1, 0.02, 0.5)
	x := Normalize(r, lk, ct)
	back := Denormalize(x, lk, ct)
	if !back.Equal(r, 1e-12) {
		t.Fatalf("round trip %v -> %v -> %v", r, x, back)
	}
}

func TestSamplePoints(t *testing.T) {
	pts := SamplePoints(3, 100)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Sum() > 1+1e-12 || p.Min() < 0 {
			t.Fatalf("point %v outside simplex", p)
		}
	}
	// QMC points are deterministic.
	again := SamplePoints(3, 100)
	for i := range pts {
		if !pts[i].Equal(again[i], 0) {
			t.Fatal("SamplePoints must be deterministic")
		}
	}
}

func TestExactRatio2DKnownCases(t *testing.T) {
	// Single constraint x+y <= 1 is exactly the ideal simplex.
	if got := ExactRatio2D(mat.MatrixOf([]float64{1, 1})); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identity constraint ratio = %g", got)
	}
	// x <= 1/2 cuts the triangle to area 1/2 - 1/8 = 3/8, ratio 3/4.
	if got := ExactRatio2D(mat.MatrixOf([]float64{2, 0})); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("half-cut ratio = %g, want 0.75", got)
	}
	// Infeasible everywhere.
	if got := ExactRatio2D(mat.MatrixOf([]float64{1e9, 1e9})); got > 1e-6 {
		t.Fatalf("degenerate ratio = %g", got)
	}
	// Two constraints x<=1/2 and y<=1/2: cut both corners, area 1/2-2/8=1/4...
	// each corner triangle has legs 1/2 so area 1/8; remaining 0.5-0.25=0.25,
	// ratio 0.5.
	got := ExactRatio2D(mat.MatrixOf([]float64{2, 0}, []float64{0, 2}))
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("double half-cut ratio = %g, want 0.5", got)
	}
}

func TestExactRatio2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d != 2")
		}
	}()
	ExactRatio2D(mat.NewMatrix(1, 3))
}

package feasible

import (
	"fmt"
	"math"
	"sort"

	"rodsp/internal/mat"
)

// ExactRatio3D computes |F(W)| / |F*| exactly for d = 3. The feasible
// region is the convex polytope cut from the ideal tetrahedron
// {x ≥ 0, Σx ≤ 1} by the node half-spaces W_i·x ≤ 1; its vertices are
// enumerated from all plane triples, each facet is ordered and the volume
// accumulated as pyramids from the vertex centroid. Used to make the d = 3
// optimal-placement search exact (and to validate the QMC integrator).
func ExactRatio3D(w *mat.Matrix) float64 {
	if w.Cols != 3 {
		panic(fmt.Sprintf("feasible: ExactRatio3D needs d=3, got %d", w.Cols))
	}
	// Half-spaces a·x <= b: coordinate planes, ideal plane, node planes.
	type half struct {
		a mat.Vec
		b float64
	}
	planes := []half{
		{mat.VecOf(-1, 0, 0), 0},
		{mat.VecOf(0, -1, 0), 0},
		{mat.VecOf(0, 0, -1), 0},
		{mat.VecOf(1, 1, 1), 1},
	}
	for i := 0; i < w.Rows; i++ {
		planes = append(planes, half{w.RowCopy(i), 1})
	}
	// Deduplicate coincident planes (e.g. a node row equal to the ideal
	// plane) so no facet is counted twice: canonicalize by the largest
	// coefficient magnitude.
	uniq := planes[:0]
	for _, h := range planes {
		scale := h.a.Norm()
		if scale == 0 {
			continue
		}
		dup := false
		for _, u := range uniq {
			us := u.a.Norm()
			same := math.Abs(h.b/scale-u.b/us) < 1e-9
			for k := 0; k < 3 && same; k++ {
				if math.Abs(h.a[k]/scale-u.a[k]/us) > 1e-9 {
					same = false
				}
			}
			if same {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, h)
		}
	}
	planes = uniq

	const eps = 1e-9
	inside := func(p mat.Vec) bool {
		for _, h := range planes {
			if h.a.Dot(p) > h.b+eps {
				return false
			}
		}
		return true
	}

	// Vertex enumeration over plane triples.
	var verts []mat.Vec
	for i := 0; i < len(planes); i++ {
		for j := i + 1; j < len(planes); j++ {
			for k := j + 1; k < len(planes); k++ {
				p, ok := solve3(planes[i].a, planes[j].a, planes[k].a,
					planes[i].b, planes[j].b, planes[k].b)
				if !ok || !inside(p) {
					continue
				}
				dup := false
				for _, v := range verts {
					if v.Sub(p).Norm() < 1e-7 {
						dup = true
						break
					}
				}
				if !dup {
					verts = append(verts, p)
				}
			}
		}
	}
	if len(verts) < 4 {
		return 0
	}

	// Interior reference point.
	c := mat.NewVec(3)
	for _, v := range verts {
		c.AddInPlace(v)
	}
	c = c.Scale(1 / float64(len(verts)))

	// Per plane: its facet polygon (vertices on the plane), ordered around
	// the facet centroid; pyramid volume to c.
	var vol float64
	for _, h := range planes {
		var facet []mat.Vec
		for _, v := range verts {
			if math.Abs(h.a.Dot(v)-h.b) < 1e-7*math.Max(1, math.Abs(h.b))+1e-9 {
				facet = append(facet, v)
			}
		}
		if len(facet) < 3 {
			continue
		}
		vol += pyramidVolume(facet, h.a, c)
	}
	return vol / (1.0 / 6.0)
}

// solve3 solves the 3x3 system [a1;a2;a3]·x = b by Cramer's rule.
func solve3(a1, a2, a3 mat.Vec, b1, b2, b3 float64) (mat.Vec, bool) {
	det := det3(a1, a2, a3)
	if math.Abs(det) < 1e-12 {
		return nil, false
	}
	bx := mat.VecOf(b1, b2, b3)
	x := mat.NewVec(3)
	for col := 0; col < 3; col++ {
		m1, m2, m3 := a1.Clone(), a2.Clone(), a3.Clone()
		m1[col], m2[col], m3[col] = bx[0], bx[1], bx[2]
		x[col] = det3(m1, m2, m3) / det
	}
	return x, true
}

func det3(r1, r2, r3 mat.Vec) float64 {
	return r1[0]*(r2[1]*r3[2]-r2[2]*r3[1]) -
		r1[1]*(r2[0]*r3[2]-r2[2]*r3[0]) +
		r1[2]*(r2[0]*r3[1]-r2[1]*r3[0])
}

// pyramidVolume orders the facet polygon around its centroid (in the plane
// with normal n) and returns the volume of the pyramid with apex c.
func pyramidVolume(facet []mat.Vec, n mat.Vec, c mat.Vec) float64 {
	// Facet centroid and an in-plane basis (u, v).
	fc := mat.NewVec(3)
	for _, p := range facet {
		fc.AddInPlace(p)
	}
	fc = fc.Scale(1 / float64(len(facet)))
	u := facet[0].Sub(fc)
	if u.Norm() < 1e-12 {
		return 0
	}
	u = u.Scale(1 / u.Norm())
	v := cross(n, u)
	if v.Norm() < 1e-12 {
		return 0
	}
	v = v.Scale(1 / v.Norm())
	sort.Slice(facet, func(i, j int) bool {
		di, dj := facet[i].Sub(fc), facet[j].Sub(fc)
		return math.Atan2(di.Dot(v), di.Dot(u)) < math.Atan2(dj.Dot(v), dj.Dot(u))
	})
	// Triangulate the polygon as a fan from facet[0]; each triangle with
	// apex c forms a tetrahedron.
	var vol float64
	for i := 1; i+1 < len(facet); i++ {
		vol += math.Abs(det3(
			facet[0].Sub(c),
			facet[i].Sub(c),
			facet[i+1].Sub(c),
		)) / 6
	}
	return vol
}

func cross(a, b mat.Vec) mat.Vec {
	return mat.VecOf(
		a[1]*b[2]-a[2]*b[1],
		a[2]*b[0]-a[0]*b[2],
		a[0]*b[1]-a[1]*b[0],
	)
}

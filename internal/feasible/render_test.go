package feasible

import (
	"strings"
	"testing"

	"rodsp/internal/mat"
)

func TestRenderASCIIIdealPlan(t *testing.T) {
	// All-ones weights: every ideal point feasible — no '·' anywhere.
	w := mat.MatrixOf([]float64{1, 1})
	out := RenderASCII(w, 20, 10)
	if strings.Contains(out, "·") {
		t.Fatalf("ideal plan should waste nothing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("ideal plan should be feasible somewhere:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // height rows + axis
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestRenderASCIIHalfPlan(t *testing.T) {
	// x <= 1/2: the right part of the triangle is wasted.
	w := mat.MatrixOf([]float64{2, 0})
	out := RenderASCII(w, 20, 10)
	if !strings.Contains(out, "·") || !strings.Contains(out, "#") {
		t.Fatalf("half plan should show both regions:\n%s", out)
	}
	// The bottom row: feasible to the left, wasted to the right.
	lines := strings.Split(out, "\n")
	bottom := lines[9]
	if !strings.Contains(bottom, "#·") && !strings.Contains(bottom, "#·") {
		t.Fatalf("bottom row should transition #→·: %q", bottom)
	}
}

func TestRenderASCIIClampsTinySizes(t *testing.T) {
	out := RenderASCII(mat.MatrixOf([]float64{1, 1}), 1, 1)
	if len(out) == 0 {
		t.Fatal("render must clamp sizes and still draw")
	}
}

func TestRenderASCIIPanicsOnWrongDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d != 2")
		}
	}()
	RenderASCII(mat.NewMatrix(1, 3), 10, 10)
}

package feasible

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
)

func TestFeasibleAt(t *testing.T) {
	s := &System{
		Ln: mat.MatrixOf([]float64{1, 0}, []float64{0, 2}),
		C:  mat.VecOf(1, 1),
	}
	if !s.FeasibleAt(mat.VecOf(1, 0.5)) {
		t.Fatal("boundary point should be feasible")
	}
	if s.FeasibleAt(mat.VecOf(1.1, 0)) {
		t.Fatal("overloaded node 0 should be infeasible")
	}
	u := s.Utilizations(mat.VecOf(0.5, 0.25))
	if !u.Equal(mat.VecOf(0.5, 0.5), 1e-12) {
		t.Fatalf("Utilizations = %v", u)
	}
}

func TestIdealCoefBalancesEveryStream(t *testing.T) {
	lk := mat.VecOf(10, 11)
	c := mat.VecOf(1, 3)
	ideal := IdealCoef(lk, c)
	// Column sums must equal l_k (constraint 1) and rows proportional to C_i.
	if !ideal.ColSums().Equal(lk, 1e-12) {
		t.Fatalf("column sums %v, want %v", ideal.ColSums(), lk)
	}
	if got := ideal.At(1, 0) / ideal.At(0, 0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rows not proportional to capacity: %g", got)
	}
	// Weights of the ideal matrix are exactly 1 everywhere.
	w, err := Weights(ideal, c, lk)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w.Data {
		if math.Abs(x-1) > 1e-12 {
			t.Fatalf("ideal weight %g != 1", x)
		}
	}
}

func TestIdealVolume(t *testing.T) {
	// d=2, l=(10,11), C=(1,1): V = 2^2 / (2! · 110).
	got, err := IdealVolume(mat.VecOf(10, 11), mat.VecOf(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / (2 * 110)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("IdealVolume = %g, want %g", got, want)
	}
	if _, err := IdealVolume(mat.VecOf(0, 1), mat.VecOf(1)); err == nil {
		t.Fatal("zero l_k must error")
	}
	if _, err := IdealVolume(mat.VecOf(1), mat.VecOf(0)); err == nil {
		t.Fatal("zero capacity must error")
	}
}

func TestWeightsErrors(t *testing.T) {
	ln := mat.MatrixOf([]float64{1, 2}, []float64{3, 4})
	if _, err := Weights(ln, mat.VecOf(1), mat.VecOf(1, 1)); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
	if _, err := Weights(ln, mat.VecOf(1, 1), mat.VecOf(1)); err == nil {
		t.Fatal("lk length mismatch must error")
	}
	if _, err := Weights(ln, mat.VecOf(1, 0), mat.VecOf(1, 1)); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := Weights(ln, mat.VecOf(1, 1), mat.VecOf(1, 0)); err == nil {
		t.Fatal("zero lk must error")
	}
}

func TestPlaneDistances(t *testing.T) {
	if got := PlaneDistance(mat.VecOf(3, 4)); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("PlaneDistance = %g, want 0.2", got)
	}
	if !math.IsInf(PlaneDistance(mat.VecOf(0, 0)), 1) {
		t.Fatal("empty node must be at infinity")
	}
	// From the origin the two forms agree.
	wi := mat.VecOf(1, 2)
	if math.Abs(PlaneDistance(wi)-PlaneDistanceFrom(wi, mat.VecOf(0, 0))) > 1e-12 {
		t.Fatal("PlaneDistanceFrom(origin) must equal PlaneDistance")
	}
	// A point beyond the plane has negative distance.
	if PlaneDistanceFrom(mat.VecOf(1, 1), mat.VecOf(1, 1)) >= 0 {
		t.Fatal("point beyond plane must give negative distance")
	}
	w := mat.MatrixOf([]float64{3, 4}, []float64{0.5, 0})
	if got := MinPlaneDistance(w); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MinPlaneDistance = %g", got)
	}
	if got := MinPlaneDistanceFrom(w, mat.VecOf(0.1, 0.1)); got >= MinPlaneDistance(w) {
		t.Fatal("moving the reference point into the set must shrink the distance")
	}
}

func TestIdealPlaneDistance(t *testing.T) {
	if got := IdealPlaneDistance(2); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("IdealPlaneDistance(2) = %g", got)
	}
	// All-ones weight rows sit exactly on the ideal hyperplane.
	w := mat.MatrixOf([]float64{1, 1, 1}, []float64{1, 1, 1})
	if math.Abs(MinPlaneDistance(w)-IdealPlaneDistance(3)) > 1e-12 {
		t.Fatal("ideal weights must attain the ideal plane distance")
	}
}

func TestMinAxisDistancesAndMMADBound(t *testing.T) {
	w := mat.MatrixOf([]float64{2, 0.5}, []float64{1, 1})
	ax := MinAxisDistances(w)
	if !ax.Equal(mat.VecOf(0.5, 1), 1e-12) {
		t.Fatalf("MinAxisDistances = %v", ax)
	}
	if got := MMADLowerBound(w); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MMADLowerBound = %g, want 0.5", got)
	}
	// A zero column (stream absent from every node) contributes nothing.
	w2 := mat.MatrixOf([]float64{0, 2}, []float64{0, 1})
	if got := MMADLowerBound(w2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MMADLowerBound with zero column = %g", got)
	}
}

// The MMAD product is a true lower bound on the feasible ratio (Section 4.1):
// the simplex with the clamped axis intercepts is contained in F(W) ∩ F*.
func TestMMADBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n, d := 2+rng.Intn(4), 2+rng.Intn(3)
		w := randWeights(rng, n, d)
		lb := MMADLowerBound(w)
		ratio := mustRatio(t, w, 4000)
		if lb > ratio+0.02 {
			t.Fatalf("MMAD bound %g exceeds measured ratio %g for\n%v", lb, ratio, w)
		}
	}
}

func TestHypersphereLowerBound(t *testing.T) {
	if HypersphereLowerBound(0, 3) != 0 {
		t.Fatal("zero radius gives zero bound")
	}
	if HypersphereLowerBound(-1, 3) != 0 {
		t.Fatal("negative radius gives zero bound")
	}
	// d=2 at the ideal radius: (π/8)/(1/2) = π/4.
	got := HypersphereLowerBound(IdealPlaneDistance(2), 2)
	if math.Abs(got-math.Pi/4) > 1e-12 {
		t.Fatalf("HypersphereLowerBound = %g, want π/4", got)
	}
	// Monotone in r, capped at 1.
	if HypersphereLowerBound(0.1, 2) >= HypersphereLowerBound(0.2, 2) {
		t.Fatal("bound must grow with r")
	}
	if HypersphereLowerBound(100, 2) > 1 {
		t.Fatal("bound must be capped at 1")
	}
}

// The hypersphere bound really is a lower bound on the feasible ratio.
func TestHypersphereBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n, d := 2+rng.Intn(4), 2+rng.Intn(3)
		w := randWeights(rng, n, d)
		r := MinPlaneDistance(w)
		bound := HypersphereLowerBound(r, d)
		ratio := mustRatio(t, w, 4000)
		if bound > ratio+0.02 {
			t.Fatalf("hypersphere bound %g exceeds ratio %g (r=%g)", bound, ratio, r)
		}
	}
}

// randWeights builds a random weight matrix whose columns sum to n (the
// normalized form of the allocation constraint: Σ_i w_ik·(C_i/C_T) = 1 with
// equal capacities).
func randWeights(rng *rand.Rand, n, d int) *mat.Matrix {
	w := mat.NewMatrix(n, d)
	for k := 0; k < d; k++ {
		var col mat.Vec = make([]float64, n)
		var sum float64
		for i := range col {
			col[i] = rng.Float64()
			sum += col[i]
		}
		for i := range col {
			w.Set(i, k, col[i]/sum*float64(n))
		}
	}
	return w
}

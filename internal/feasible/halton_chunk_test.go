package feasible

import (
	"testing"

	"rodsp/internal/par"
)

// The jump-ahead constructor must land exactly where a serial generator
// would be: chunked generation is only legal for the parallel evaluators if
// every chunk reproduces the serial subsequence bit for bit.
func TestHaltonChunkedMatchesSerial(t *testing.T) {
	const (
		dims = 5
		n    = 2000
	)
	serial := NewHalton(dims)
	want := make([][]float64, n)
	for i := range want {
		want[i] = make([]float64, dims)
		serial.Next(want[i])
	}

	for _, chunks := range [][]par.Chunk{
		par.Chunks(n, 1),
		par.Chunks(n, 2),
		par.Chunks(n, 7),
		par.FixedChunks(n, 128),
	} {
		got := make([][]float64, n)
		for _, c := range chunks {
			h := NewHaltonAt(dims, int64(c.Lo))
			for i := c.Lo; i < c.Hi; i++ {
				got[i] = make([]float64, dims)
				h.Next(got[i])
			}
		}
		for i := range want {
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("chunks=%d: point %d dim %d = %v, want %v",
						len(chunks), i, k, got[i][k], want[i][k])
				}
			}
		}
	}
}

// At, Skip and NewHaltonAt are three routes to the same position; all must
// agree exactly with the serial sequence.
func TestHaltonRandomAccessAgreesWithSerial(t *testing.T) {
	const dims = 3
	serial := NewHalton(dims)
	want := make([][]float64, 100)
	for i := range want {
		want[i] = make([]float64, dims)
		serial.Next(want[i])
	}

	ra := NewHalton(dims)
	p := make([]float64, dims)
	for _, pos := range []int64{0, 1, 17, 63, 64, 99} {
		ra.At(pos, p)
		for k := range p {
			if p[k] != want[pos][k] {
				t.Fatalf("At(%d) dim %d = %v, want %v", pos, k, p[k], want[pos][k])
			}
		}

		skipped := NewHalton(dims)
		skipped.Skip(pos)
		if got := skipped.Pos(); got != pos {
			t.Fatalf("Skip(%d) landed at Pos %d", pos, got)
		}
		skipped.Next(p)
		for k := range p {
			if p[k] != want[pos][k] {
				t.Fatalf("Skip(%d)+Next dim %d = %v, want %v", pos, k, p[k], want[pos][k])
			}
		}

		at := NewHaltonAt(dims, pos)
		at.Next(p)
		for k := range p {
			if p[k] != want[pos][k] {
				t.Fatalf("NewHaltonAt(%d)+Next dim %d = %v, want %v", pos, k, p[k], want[pos][k])
			}
		}
	}
	// At must not move the generator.
	if got := ra.Pos(); got != 0 {
		t.Fatalf("At moved the generator to Pos %d", got)
	}
}

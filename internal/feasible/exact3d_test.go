package feasible

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
)

func TestExactRatio3DIdeal(t *testing.T) {
	w := mat.MatrixOf([]float64{1, 1, 1}, []float64{1, 1, 1})
	if got := ExactRatio3D(w); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ideal ratio = %g, want 1", got)
	}
}

func TestExactRatio3DAxisCut(t *testing.T) {
	// x0 <= 1/2 removes the corner tetrahedron of edge 1/2: ratio 7/8.
	w := mat.MatrixOf([]float64{2, 0, 0})
	if got := ExactRatio3D(w); math.Abs(got-0.875) > 1e-9 {
		t.Fatalf("axis-cut ratio = %g, want 0.875", got)
	}
	// Three axis cuts at 1/2: 1 - 3/8 = 5/8.
	w3 := mat.MatrixOf([]float64{2, 0, 0}, []float64{0, 2, 0}, []float64{0, 0, 2})
	if got := ExactRatio3D(w3); math.Abs(got-0.625) > 1e-9 {
		t.Fatalf("triple-cut ratio = %g, want 0.625", got)
	}
}

func TestExactRatio3DParallelPlane(t *testing.T) {
	// 2(x+y+z) <= 1: a shrunken tetrahedron of scale 1/2: ratio 1/8.
	w := mat.MatrixOf([]float64{2, 2, 2})
	if got := ExactRatio3D(w); math.Abs(got-0.125) > 1e-9 {
		t.Fatalf("parallel-plane ratio = %g, want 0.125", got)
	}
}

func TestExactRatio3DEmpty(t *testing.T) {
	w := mat.MatrixOf([]float64{1e9, 1e9, 1e9})
	if got := ExactRatio3D(w); got > 1e-6 {
		t.Fatalf("degenerate ratio = %g", got)
	}
}

func TestExactRatio3DAgainstQMC(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		w := randWeights(rng, 2+rng.Intn(4), 3)
		exact := ExactRatio3D(w)
		qmc := mustRatio(t, w, 30000)
		if math.Abs(exact-qmc) > 0.012 {
			t.Fatalf("trial %d: exact %g vs QMC %g for\n%v", trial, exact, qmc, w)
		}
	}
}

func TestExactRatio3DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d != 3")
		}
	}()
	ExactRatio3D(mat.NewMatrix(1, 2))
}

func TestCrossAndSolve3(t *testing.T) {
	c := cross(mat.VecOf(1, 0, 0), mat.VecOf(0, 1, 0))
	if !c.Equal(mat.VecOf(0, 0, 1), 1e-12) {
		t.Fatalf("cross = %v", c)
	}
	x, ok := solve3(mat.VecOf(1, 0, 0), mat.VecOf(0, 1, 0), mat.VecOf(0, 0, 1), 2, 3, 4)
	if !ok || !x.Equal(mat.VecOf(2, 3, 4), 1e-12) {
		t.Fatalf("solve3 = %v, %v", x, ok)
	}
	if _, ok := solve3(mat.VecOf(1, 0, 0), mat.VecOf(1, 0, 0), mat.VecOf(0, 0, 1), 1, 2, 3); ok {
		t.Fatal("singular system must fail")
	}
}

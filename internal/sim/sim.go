// Package sim is the custom-built distributed stream-processing simulator
// of Section 7: a discrete-event model in which each node is a single CPU
// serving a FIFO queue of per-tuple work, sources replay rate traces, and
// end-to-end latency, node utilization and backlog are measured. A system
// driven at a feasible rate point keeps bounded queues and low latency; an
// overloaded one grows its backlog without bound — the behavioural ground
// truth the feasible-set machinery predicts analytically.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Arrivals selects how source tuples are spaced inside each trace bin.
type Arrivals int

const (
	// DeterministicArrivals spaces tuples evenly at the bin's rate — exact
	// and convenient for tests.
	DeterministicArrivals Arrivals = iota
	// PoissonArrivals draws exponential gaps at the bin's rate.
	PoissonArrivals
)

// Config describes one simulation run.
type Config struct {
	Graph      *query.Graph
	NodeOf     []int   // operator → node (a placement plan)
	Capacities mat.Vec // CPU seconds of work each node completes per second

	// Sources maps each system input stream to its driving trace (rates in
	// tuples/second). Every input stream must be covered.
	Sources map[query.StreamID]*trace.Trace

	Duration float64 // simulated seconds
	WarmUp   float64 // latencies recorded only after this time
	Arrivals Arrivals
	Seed     int64

	// NetworkDelay is added to tuples hopping between nodes (seconds).
	NetworkDelay float64
	// ChargeTransfer also charges each stream's XferCost as CPU work on
	// both the sending and the receiving node for cross-node hops
	// (Section 6.3's communication CPU cost).
	ChargeTransfer bool

	// MaxEvents aborts runaway simulations (default 10M).
	MaxEvents int
	// LatencyReservoir caps the retained latency samples (default 100k,
	// reservoir-sampled beyond that).
	LatencyReservoir int

	// Rebalance enables dynamic operator redistribution (nil = static
	// placement, the paper's setting for ROD).
	Rebalance *RebalanceConfig

	// Moves schedules explicit operator migrations at fixed virtual times,
	// independent of any rebalancing policy — the hook the conformance
	// harness (internal/check) uses to drive the simulator through the
	// exact fault schedule applied to the live engine. Each move relocates
	// one operator and, when Stall > 0, freezes both nodes for the
	// state-transfer time, mirroring engine Cluster.MoveOperator.
	Moves []ScheduledMove

	// Partitions overrides the slot table of keyed (sharded) streams; any
	// keyed stream not listed defaults to query.UniformSlots(k). Keys must
	// be keyed streams, tables must have query.ShardSlots entries in
	// [0, k). Keyed streams route each tuple to exactly one replica — a
	// deterministic per-stream counter stands in for the engine's tuple
	// key, spread by the same query.SlotOfKey hash.
	Partitions map[query.StreamID][]int

	// Repartitions schedules slot-table swaps at fixed virtual times,
	// mirroring engine Cluster.Repartition (the shard scale actuator's
	// effect) for lockstep cross-validation.
	Repartitions []ScheduledRepartition

	// Obs enables in-run observability: virtual-time sampling of the same
	// metric schema the engine monitor emits, plus overload and migration
	// events (nil = disabled).
	Obs *ObsConfig
}

// Result summarizes a run.
type Result struct {
	// Latency statistics over sink tuples (seconds), post-warm-up.
	LatencyMean, LatencyP50, LatencyP95, LatencyP99, LatencyMax float64
	LatencySamples                                              int64

	// Utilization is busy-time/duration per node (capped at 1).
	Utilization mat.Vec
	// Backlog is the number of queued work items per node at the end.
	Backlog []int
	// PeakQueue is the maximum queue length observed per node.
	PeakQueue []int

	TuplesIn, TuplesOut int64
	Events              int64

	// Rebalance reports what the dynamic mechanism did (zero when static).
	Rebalance RebalanceStats
	// FinalNodeOf is the operator→node map at the end of the run (differs
	// from the initial plan only under rebalancing).
	FinalNodeOf []int
	// OpUtilization is each operator's CPU-seconds of work per simulated
	// second (its measured load — the quantity the load model predicts as
	// L^o_j·R).
	OpUtilization mat.Vec

	// Series and EventLog carry the sampled time series and events when
	// Config.Obs was set (nil otherwise).
	Series   *obs.SeriesSet
	EventLog *obs.EventLog
}

// Overloaded reports whether any node ended the run effectively saturated:
// utilization at or above util with at least backlog items still queued.
func (r *Result) Overloaded(util float64, backlog int) bool {
	for i := range r.Utilization {
		if r.Utilization[i] >= util && r.Backlog[i] >= backlog {
			return true
		}
	}
	return false
}

// MaxUtilization returns the highest per-node utilization.
func (r *Result) MaxUtilization() float64 {
	if len(r.Utilization) == 0 {
		return 0
	}
	return r.Utilization.Max()
}

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evSource
	evRebalance
	evSample
	evMove
	evRepart
)

// overheadOp marks a work item that burns CPU (network send/receive cost)
// without producing output.
const overheadOp query.OpID = -1

// ScheduledMove is one scripted operator migration (Config.Moves): at
// virtual time Time, operator Op relocates to node To, charging Stall
// seconds of state-transfer freeze to both the old and the new home.
type ScheduledMove struct {
	Time  float64
	Op    int
	To    int
	Stall float64
}

// ScheduledRepartition is one scripted slot-table swap (Config.Repartitions):
// at virtual time Time, keyed stream Stream adopts the Slots assignment.
type ScheduledRepartition struct {
	Time   float64
	Stream query.StreamID
	Slots  []int
}

// keyedStream is the simulator's partition table for one sharded stream.
type keyedStream struct {
	slots    []int
	replicas []query.OpID
	next     uint64 // deterministic synthetic key (the engine's Seq fallback)
}

type workItem struct {
	op    query.OpID
	ts    float64 // origin timestamp of the tuple lineage
	enq   float64 // when the item joined its node's queue (stage decomposition)
	side  int8    // which join input the tuple arrived on
	extra float64 // additional CPU seconds (transfer overhead)
}

type event struct {
	time float64
	kind eventKind
	node int
	item workItem
	src  int // source index for evSource
	seq  int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // deterministic FIFO tie-break
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// opState holds per-operator runtime state.
type opState struct {
	selAcc float64 // fractional-selectivity accumulator
	// join window state: timestamps seen per input side, pruned to the
	// window on each service.
	window [2][]float64
	// pendingPairs carries the pair count from service start to completion
	// (safe: an operator lives on one node whose server is sequential).
	pendingPairs int
}

type nodeState struct {
	queue    []workItem
	head     int
	busy     bool
	busyTime float64
	peak     int
}

func (ns *nodeState) qlen() int { return len(ns.queue) - ns.head }

func (ns *nodeState) push(w workItem) {
	ns.queue = append(ns.queue, w)
	if ns.qlen() > ns.peak {
		ns.peak = ns.qlen()
	}
}

func (ns *nodeState) pop() workItem {
	w := ns.queue[ns.head]
	ns.head++
	if ns.head > 1024 && ns.head*2 > len(ns.queue) {
		ns.queue = append(ns.queue[:0], ns.queue[ns.head:]...)
		ns.head = 0
	}
	return w
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.NodeOf) != g.NumOps() {
		return nil, fmt.Errorf("sim: plan covers %d of %d operators", len(cfg.NodeOf), g.NumOps())
	}
	n := len(cfg.Capacities)
	if n == 0 {
		return nil, fmt.Errorf("sim: no nodes")
	}
	for i, c := range cfg.Capacities {
		if c <= 0 {
			return nil, fmt.Errorf("sim: node %d capacity %g must be positive", i, c)
		}
	}
	for j, node := range cfg.NodeOf {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("sim: operator %d on node %d outside [0,%d)", j, node, n)
		}
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %g must be positive", cfg.Duration)
	}
	inputs := g.Inputs()
	for _, in := range inputs {
		if cfg.Sources[in] == nil {
			return nil, fmt.Errorf("sim: input stream %q has no source trace", g.Stream(in).Name)
		}
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	reservoirCap := cfg.LatencyReservoir
	if reservoirCap == 0 {
		reservoirCap = 100_000
	}

	if cfg.Rebalance != nil {
		if err := cfg.Rebalance.validate(); err != nil {
			return nil, err
		}
	}
	for i, mv := range cfg.Moves {
		if mv.Op < 0 || mv.Op >= g.NumOps() {
			return nil, fmt.Errorf("sim: scheduled move %d targets unknown operator %d", i, mv.Op)
		}
		if mv.To < 0 || mv.To >= n {
			return nil, fmt.Errorf("sim: scheduled move %d targets node %d outside [0,%d)", i, mv.To, n)
		}
		if mv.Time < 0 || mv.Stall < 0 {
			return nil, fmt.Errorf("sim: scheduled move %d has negative time or stall", i)
		}
	}

	// Keyed (sharded) streams route 1-of-k through a partition table
	// instead of broadcasting to every replica.
	groups, err := query.ShardGroups(g)
	if err != nil {
		return nil, err
	}
	keyed := map[query.StreamID]*keyedStream{}
	validSlots := func(slots []int, k int) error {
		if len(slots) != query.ShardSlots {
			return fmt.Errorf("%d slots, want %d", len(slots), query.ShardSlots)
		}
		for i, s := range slots {
			if s < 0 || s >= k {
				return fmt.Errorf("slot %d assigned to shard %d outside [0,%d)", i, s, k)
			}
		}
		return nil
	}
	for _, grp := range groups {
		slots := cfg.Partitions[grp.Stream]
		if slots == nil {
			slots = query.UniformSlots(grp.K)
		} else if err := validSlots(slots, grp.K); err != nil {
			return nil, fmt.Errorf("sim: partition table for stream %d: %w", grp.Stream, err)
		}
		keyed[grp.Stream] = &keyedStream{
			slots:    append([]int(nil), slots...),
			replicas: grp.Replicas,
		}
	}
	for sid := range cfg.Partitions {
		if keyed[sid] == nil {
			return nil, fmt.Errorf("sim: partition table for stream %d, which is not keyed", sid)
		}
	}
	for i, rp := range cfg.Repartitions {
		ks := keyed[rp.Stream]
		if ks == nil {
			return nil, fmt.Errorf("sim: scheduled repartition %d targets stream %d, which is not keyed", i, rp.Stream)
		}
		if err := validSlots(rp.Slots, len(ks.replicas)); err != nil {
			return nil, fmt.Errorf("sim: scheduled repartition %d: %w", i, err)
		}
		if rp.Time < 0 {
			return nil, fmt.Errorf("sim: scheduled repartition %d has negative time", i)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]nodeState, n)
	ops := make([]opState, g.NumOps())
	// Mutable operator→node map (changes only under rebalancing).
	nodeOf := make([]int, len(cfg.NodeOf))
	copy(nodeOf, cfg.NodeOf)
	// Per-operator busy time within the current rebalance window, plus the
	// cumulative total for Result.OpUtilization.
	opBusy := make([]float64, g.NumOps())
	opBusyTotal := make([]float64, g.NumOps())

	// joinSide[op][stream] tells which window side a stream feeds.
	joinSide := map[query.OpID]map[query.StreamID]int8{}
	for _, op := range g.Ops() {
		if op.Kind == query.Join {
			joinSide[op.ID] = map[query.StreamID]int8{op.Inputs[0]: 0, op.Inputs[1]: 1}
		}
	}

	var (
		h         eventHeap
		seq       int64
		result    = &Result{Utilization: make(mat.Vec, n), Backlog: make([]int, n), PeakQueue: make([]int, n)}
		latencies []float64
		obsv      *observer
	)
	if cfg.Obs != nil {
		obsv = newObserver(&cfg, g, inputs, n)
		result.Series = obsv.set
		result.EventLog = obsv.ev
		perNode := make([]int, n)
		for _, node := range nodeOf {
			perNode[node]++
		}
		for i, ops := range perNode {
			obsv.ev.EmitAt(0, obs.LevelInfo, obs.EventDeploy, "node", i, "ops", ops)
		}
	}
	sched := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}

	// nextArrival returns the time of the next source tuple strictly after t,
	// or -1 past the horizon.
	nextArrival := func(srcIdx int, t float64) float64 {
		tr := cfg.Sources[inputs[srcIdx]]
		for t < cfg.Duration {
			rate := tr.RateAt(t)
			if rate <= 0 {
				// Skip to the start of the next bin.
				bin := int(t/tr.Dt) + 1
				t = float64(bin) * tr.Dt
				continue
			}
			var gap float64
			if cfg.Arrivals == PoissonArrivals {
				gap = rng.ExpFloat64() / rate
			} else {
				gap = 1 / rate
			}
			next := t + gap
			// If the gap crosses the bin boundary into a different rate,
			// restart the draw from the boundary instead of committing to
			// the stale rate.
			binEnd := (float64(int(t/tr.Dt)) + 1) * tr.Dt
			if next > binEnd && tr.RateAt(binEnd) != rate {
				t = binEnd
				continue
			}
			return next
		}
		return -1
	}

	// routeTo enqueues a tuple at a consumer operator, adding network delay
	// and (optionally) transfer CPU overhead when it crosses nodes.
	routeTo := func(consumer query.OpID, via query.StreamID, fromNode int, ts, now float64) {
		dst := nodeOf[consumer]
		at := now
		var extra float64
		if fromNode >= 0 && dst != fromNode {
			at += cfg.NetworkDelay
			if obsv != nil && cfg.NetworkDelay > 0 {
				// Cross-node hop: the same transit stage the engine's traced
				// tuples record between outbox ship and remote ingress.
				obsv.onStage(obs.StageTransit, cfg.NetworkDelay)
			}
			if cfg.ChargeTransfer {
				xfer := g.Stream(via).XferCost
				if xfer > 0 {
					// Send cost occupies the sender's CPU as an overhead item.
					sched(event{time: now, kind: evArrival, node: fromNode,
						item: workItem{op: overheadOp, ts: ts, extra: xfer}})
					extra = xfer // receive cost rides on the tuple itself
				}
			}
		}
		var side int8
		if m, ok := joinSide[consumer]; ok {
			side = m[via]
		}
		sched(event{time: at, kind: evArrival, node: dst,
			item: workItem{op: consumer, ts: ts, side: side, extra: extra}})
	}

	// Seed one source event per input stream.
	for s := range inputs {
		if t0 := nextArrival(s, 0); t0 >= 0 {
			sched(event{time: t0, kind: evSource, src: s})
		}
	}
	if cfg.Rebalance != nil {
		sched(event{time: cfg.Rebalance.Period, kind: evRebalance})
	}
	for i := range cfg.Moves {
		sched(event{time: cfg.Moves[i].Time, kind: evMove, src: i})
	}
	for i := range cfg.Repartitions {
		sched(event{time: cfg.Repartitions[i].Time, kind: evRepart, src: i})
	}
	if obsv != nil {
		sched(event{time: obsv.cfg.Interval, kind: evSample})
	}

	// rebalance collects one window's statistics, asks the policy for moves
	// and applies them, freezing source and destination for the migration
	// time each (the state-transfer stall the paper measures in the
	// hundreds of milliseconds).
	rebalance := func(now float64) {
		rc := cfg.Rebalance
		result.Rebalance.Rounds++
		opLoads := make([]float64, len(opBusy))
		for op := range opBusy {
			opLoads[op] = opBusy[op] / rc.Period
			opBusy[op] = 0
		}
		if cp, ok := rc.Policy.(*CorrelationPolicy); ok {
			cp.observe(opLoads)
		}
		moves := rc.Policy.Plan(opLoads, nodeOf, cfg.Capacities)
		sortMovesDeterministic(moves)
		if rc.MaxMovesPerRound > 0 && len(moves) > rc.MaxMovesPerRound {
			moves = moves[:rc.MaxMovesPerRound]
		}
		for _, mv := range moves {
			if mv.Op < 0 || mv.Op >= len(nodeOf) || mv.To < 0 || mv.To >= n {
				continue // defensive: ignore out-of-range policy output
			}
			from := nodeOf[mv.Op]
			if from == mv.To {
				continue
			}
			nodeOf[mv.Op] = mv.To
			result.Rebalance.Moves++
			if obsv != nil {
				obsv.ev.EmitAt(now, obs.LevelInfo, obs.EventMigrateInstall, "op", mv.Op, "from", from, "to", mv.To)
				obsv.ev.EmitAt(now, obs.LevelInfo, obs.EventMigrateRemove, "op", mv.Op, "from", from, "to", mv.To)
			}
			if rc.MigrationTime > 0 {
				// Freeze both ends: an overhead item occupying exactly
				// MigrationTime of wall time on each node.
				for _, node := range []int{from, mv.To} {
					sched(event{time: now, kind: evArrival, node: node,
						item: workItem{op: overheadOp, ts: now, extra: rc.MigrationTime * cfg.Capacities[node]}})
				}
				result.Rebalance.StallSeconds += 2 * rc.MigrationTime
				if obsv != nil {
					obsv.ev.EmitAt(now, obs.LevelInfo, obs.EventMigrateStall, "op", mv.Op, "sec", rc.MigrationTime)
				}
			}
		}
	}

	// serviceTime computes the CPU seconds a work item needs, updating join
	// windows as the side effect of "processing" the tuple.
	serviceTime := func(w workItem, now float64) float64 {
		if w.op == overheadOp {
			return w.extra
		}
		op := g.Op(w.op)
		if op.Kind != query.Join {
			return op.Cost + w.extra
		}
		st := &ops[w.op]
		st.window[w.side] = append(st.window[w.side], now)
		// Each arrival probes the opposite window of width Window/2; with
		// both sides probing, the expected pair throughput is exactly the
		// paper's load-model value w·r_u·r_v pairs per second.
		for s := range st.window {
			win := st.window[s]
			lo := 0
			for lo < len(win) && win[lo] < now-op.Window/2 {
				lo++
			}
			st.window[s] = win[lo:]
		}
		st.pendingPairs = len(st.window[1-w.side])
		return op.Cost*float64(st.pendingPairs) + w.extra
	}

	// emitted returns how many output tuples the completed item produces.
	emitted := func(w workItem) int {
		if w.op == overheadOp {
			return 0
		}
		op := g.Op(w.op)
		st := &ops[w.op]
		produced := op.Selectivity
		if op.Kind == query.Join {
			produced = op.Selectivity * float64(st.pendingPairs)
		}
		st.selAcc += produced
		k := int(st.selAcc)
		st.selAcc -= float64(k)
		return k
	}

	startService := func(node int, now float64) {
		ns := &nodes[node]
		w := ns.pop()
		ns.busy = true
		svc := serviceTime(w, now) / cfg.Capacities[node]
		ns.busyTime += svc
		if w.op >= 0 {
			work := svc * cfg.Capacities[node]
			opBusy[w.op] += work
			opBusyTotal[w.op] += work
			if obsv != nil {
				// Stage decomposition: queue wait since enqueue, then the
				// service time itself (overhead items are not tuples and are
				// excluded, matching the engine's per-tuple tracing).
				obsv.onStage(obs.StageQueue, now-w.enq)
				obsv.onStage(obs.StageService, svc)
			}
		}
		sched(event{time: now + svc, kind: evCompletion, node: node, item: w})
	}

	recordLatency := func(lat, now float64) {
		if obsv != nil {
			obsv.onSink(lat) // histogram mirrors every sink tuple, like the engine collector
		}
		if now < cfg.WarmUp {
			return
		}
		result.LatencySamples++
		if len(latencies) < reservoirCap {
			latencies = append(latencies, lat)
		} else if idx := rng.Int63n(result.LatencySamples); idx < int64(reservoirCap) {
			latencies[idx] = lat
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if e.time > cfg.Duration {
			break
		}
		result.Events++
		if result.Events > int64(maxEvents) {
			return nil, fmt.Errorf("sim: exceeded %d events at t=%.3f (system badly overloaded? shorten Duration or raise MaxEvents)", maxEvents, e.time)
		}
		switch e.kind {
		case evSource:
			result.TuplesIn++
			if obsv != nil {
				obsv.onSource(e.src)
			}
			for _, consumer := range g.Consumers(inputs[e.src]) {
				routeTo(consumer, inputs[e.src], -1, e.time, e.time)
			}
			if t := nextArrival(e.src, e.time); t >= 0 {
				sched(event{time: t, kind: evSource, src: e.src})
			}
		case evRebalance:
			rebalance(e.time)
			if next := e.time + cfg.Rebalance.Period; next <= cfg.Duration {
				sched(event{time: next, kind: evRebalance})
			}
		case evMove:
			mv := cfg.Moves[e.src]
			from := nodeOf[mv.Op]
			if from == mv.To {
				break
			}
			nodeOf[mv.Op] = mv.To
			result.Rebalance.Moves++
			if obsv != nil {
				obsv.ev.EmitAt(e.time, obs.LevelInfo, obs.EventMigrateInstall, "op", mv.Op, "from", from, "to", mv.To)
				obsv.ev.EmitAt(e.time, obs.LevelInfo, obs.EventMigrateRemove, "op", mv.Op, "from", from, "to", mv.To)
				obsv.onMove(e.time, mv.Op, from, mv.To)
			}
			if mv.Stall > 0 {
				for _, node := range []int{from, mv.To} {
					sched(event{time: e.time, kind: evArrival, node: node,
						item: workItem{op: overheadOp, ts: e.time, extra: mv.Stall * cfg.Capacities[node]}})
				}
				result.Rebalance.StallSeconds += 2 * mv.Stall
				if obsv != nil {
					obsv.ev.EmitAt(e.time, obs.LevelInfo, obs.EventMigrateStall, "op", mv.Op, "sec", mv.Stall)
				}
			}
		case evRepart:
			rp := cfg.Repartitions[e.src]
			ks := keyed[rp.Stream]
			ks.slots = append(ks.slots[:0], rp.Slots...)
			if obsv != nil {
				obsv.onRepart(e.time, int(rp.Stream), len(ks.replicas))
			}
		case evSample:
			obsv.sample(e.time, nodes, nodeOf)
			if next := e.time + obsv.cfg.Interval; next <= cfg.Duration {
				sched(event{time: next, kind: evSample})
			}
		case evArrival:
			ns := &nodes[e.node]
			e.item.enq = e.time
			ns.push(e.item)
			if obsv != nil {
				obsv.injC[e.node].Inc()
			}
			if !ns.busy {
				startService(e.node, e.time)
			}
		case evCompletion:
			k := emitted(e.item)
			if k > 0 && obsv != nil {
				obsv.emiC[e.node].Add(int64(k))
			}
			if k > 0 {
				op := g.Op(e.item.op)
				consumers := g.Consumers(op.Out)
				ks := keyed[op.Out]
				for c := 0; c < k; c++ {
					if len(consumers) == 0 {
						result.TuplesOut++
						recordLatency(e.time-e.item.ts, e.time)
						continue
					}
					if ks != nil {
						// Keyed stream: exactly one replica per tuple, chosen
						// by the partition table.
						ks.next++
						r := ks.replicas[ks.slots[query.SlotOfKey(ks.next)]]
						routeTo(r, op.Out, e.node, e.item.ts, e.time)
						continue
					}
					for _, consumer := range consumers {
						routeTo(consumer, op.Out, e.node, e.item.ts, e.time)
					}
				}
			}
			ns := &nodes[e.node]
			ns.busy = false
			if ns.qlen() > 0 {
				startService(e.node, e.time)
			}
		}
	}

	for i := range nodes {
		result.Utilization[i] = nodes[i].busyTime / cfg.Duration
		if result.Utilization[i] > 1 {
			result.Utilization[i] = 1
		}
		result.Backlog[i] = nodes[i].qlen()
		result.PeakQueue[i] = nodes[i].peak
	}
	// Shared latency digest (obs.Summarize never panics on an empty set,
	// unlike the stats percentile helpers).
	if sum, ok := obs.Summarize(latencies); ok {
		result.LatencyP50, result.LatencyP95, result.LatencyP99, result.LatencyMax = sum.P50, sum.P95, sum.P99, sum.Max
		result.LatencyMean = sum.Mean
	}
	result.FinalNodeOf = nodeOf
	result.OpUtilization = make(mat.Vec, len(opBusyTotal))
	for op, busy := range opBusyTotal {
		result.OpUtilization[op] = busy / cfg.Duration
	}
	return result, nil
}

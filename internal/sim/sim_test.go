package sim

import (
	"math"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// singleOpGraph: one input → one delay op (cost, sel 1) → sink.
func singleOpGraph(t *testing.T, cost float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	b.Delay("op", cost, 1, in)
	return b.MustBuild()
}

func constantTrace(rate, duration float64) *trace.Trace {
	bins := int(duration) + 1
	rates := make([]float64, bins)
	for i := range rates {
		rates[i] = rate
	}
	return trace.New("const", 1, rates)
}

func sources(g *query.Graph, trs ...*trace.Trace) map[query.StreamID]*trace.Trace {
	m := map[query.StreamID]*trace.Trace{}
	for i, in := range g.Inputs() {
		m[in] = trs[i]
	}
	return m
}

func TestHalfLoadedSingleServer(t *testing.T) {
	g := singleOpGraph(t, 0.05) // service 50ms
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(10, 100)), // rho = 0.5
		Duration:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization[0]-0.5) > 0.05 {
		t.Fatalf("utilization = %g, want ~0.5", res.Utilization[0])
	}
	// Deterministic arrivals at gap 100ms, service 50ms: no queueing, every
	// tuple's latency is exactly the service time.
	if math.Abs(res.LatencyMean-0.05) > 1e-9 {
		t.Fatalf("latency = %g, want 0.05 exactly", res.LatencyMean)
	}
	if res.Overloaded(0.9, 1) {
		t.Fatal("half-loaded system must not be overloaded")
	}
	if res.TuplesIn == 0 || res.TuplesOut == 0 {
		t.Fatal("no tuples flowed")
	}
	// Selectivity 1, single sink: out == in (minus any in-flight at the end).
	if res.TuplesOut < res.TuplesIn-2 {
		t.Fatalf("tuples out %d vs in %d", res.TuplesOut, res.TuplesIn)
	}
}

func TestOverloadedServerGrowsBacklog(t *testing.T) {
	g := singleOpGraph(t, 0.05)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(40, 60)), // rho = 2
		Duration:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization[0] < 0.99 {
		t.Fatalf("utilization = %g, want pinned at 1", res.Utilization[0])
	}
	// Backlog should be roughly (rho-1)*rate_served*duration = 20/s·60 = 1200.
	if res.Backlog[0] < 600 {
		t.Fatalf("backlog = %d, want large", res.Backlog[0])
	}
	if !res.Overloaded(0.99, 100) {
		t.Fatal("overloaded system not detected")
	}
	// Latency must blow up relative to service time.
	if res.LatencyP95 < 1 {
		t.Fatalf("overloaded P95 latency = %g, want seconds-scale", res.LatencyP95)
	}
}

func TestCapacityScalesService(t *testing.T) {
	g := singleOpGraph(t, 0.05)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(2), // double speed
		Sources:    sources(g, constantTrace(10, 50)),
		Duration:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization[0]-0.25) > 0.05 {
		t.Fatalf("utilization = %g, want ~0.25", res.Utilization[0])
	}
	if math.Abs(res.LatencyMean-0.025) > 1e-9 {
		t.Fatalf("latency = %g, want 0.025", res.LatencyMean)
	}
}

func TestSelectivityAccumulator(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	b.Filter("f", 0.001, 0.5, in)
	g := b.MustBuild()
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(100, 20)),
		Duration:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.TuplesOut) / float64(res.TuplesIn)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("output ratio = %g, want 0.5", ratio)
	}
}

func TestFanOutDuplicates(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Map("m", 0.0001, in)
	b.Map("a", 0.0001, s)
	b.Map("b", 0.0001, s)
	g := b.MustBuild()
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0, 0, 0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(50, 10)),
		Duration:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sinks: roughly 2 output tuples per input.
	ratio := float64(res.TuplesOut) / float64(res.TuplesIn)
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("fan-out ratio = %g, want 2", ratio)
	}
}

func TestNetworkDelayAddsLatency(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Map("m1", 0.001, in)
	b.Map("m2", 0.001, s)
	g := b.MustBuild()
	run := func(nodeOf []int) *Result {
		res, err := Run(Config{
			Graph:        g,
			NodeOf:       nodeOf,
			Capacities:   mat.VecOf(1, 1),
			Sources:      sources(g, constantTrace(10, 20)),
			Duration:     20,
			NetworkDelay: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	colocated := run([]int{0, 0})
	split := run([]int{0, 1})
	gap := split.LatencyMean - colocated.LatencyMean
	if math.Abs(gap-0.5) > 0.01 {
		t.Fatalf("cross-node latency gap = %g, want ~0.5", gap)
	}
}

func TestChargeTransferRaisesUtilization(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Map("m1", 0.001, in)
	b.SetXferCost(s, 0.004)
	b.Map("m2", 0.001, s)
	g := b.MustBuild()
	run := func(charge bool) *Result {
		res, err := Run(Config{
			Graph:          g,
			NodeOf:         []int{0, 1},
			Capacities:     mat.VecOf(1, 1),
			Sources:        sources(g, constantTrace(100, 30)),
			Duration:       30,
			ChargeTransfer: charge,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	charged := run(true)
	// Sender: 0.001 + 0.004 xfer at rate 100 → ~0.5 vs ~0.1.
	if charged.Utilization[0] < plain.Utilization[0]+0.3 {
		t.Fatalf("transfer charge missing: %g vs %g", charged.Utilization[0], plain.Utilization[0])
	}
	if charged.Utilization[1] < plain.Utilization[1]+0.3 {
		t.Fatalf("receive charge missing: %g vs %g", charged.Utilization[1], plain.Utilization[1])
	}
}

func TestJoinPairsLoad(t *testing.T) {
	b := query.NewBuilder()
	l := b.Input("L")
	r := b.Input("R")
	b.Join("j", 0.0005, 0.1, 1.0, l, r)
	g := b.MustBuild()
	// Both sides at 20/s, window 1s: expected pair throughput w·rL·rR =
	// 400/s, so load ≈ 400 · 0.0005 = 0.2 — matching the paper's model.
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(20, 40), constantTrace(20, 40)),
		Duration:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization[0]-0.2) > 0.05 {
		t.Fatalf("join utilization = %g, want ~0.2", res.Utilization[0])
	}
	// Output rate ≈ sel·window·rL·rR = 0.1·1·20·20 = 40/s ≈ input rate 40/s.
	ratio := float64(res.TuplesOut) / float64(res.TuplesIn)
	if math.Abs(ratio-1) > 0.15 {
		t.Fatalf("join output ratio = %g, want ~1", ratio)
	}
}

// The load-model prediction L^n·R/C must match simulated utilization on a
// random linear graph — the bridge between the analytical machinery and
// the executable system.
func TestUtilizationMatchesLoadModel(t *testing.T) {
	b := query.NewBuilder()
	i1, i2 := b.Input("a"), b.Input("b")
	f1 := b.Filter("f1", 0.002, 0.8, i1)
	m1 := b.Map("m1", 0.003, f1)
	f2 := b.Filter("f2", 0.004, 0.5, i2)
	u := b.Union("u", 0.001, m1, f2)
	b.Aggregate("agg", 0.002, 0.2, 5, u)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := []int{0, 1, 0, 1, 0}
	rates := mat.VecOf(40, 25)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.VecOf(1, 1),
		Sources:    sources(g, constantTrace(rates[0], 60), constantTrace(rates[1], 60)),
		Duration:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Predicted node loads.
	predicted := mat.NewVec(2)
	for j, node := range nodeOf {
		predicted[node] += lm.Coef.Row(j).Dot(rates)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.Utilization[i]-predicted[i]) > 0.05 {
			t.Fatalf("node %d: simulated %g vs predicted %g", i, res.Utilization[i], predicted[i])
		}
	}
}

// Per-operator utilization must match the load model prediction op by op.
func TestOpUtilizationMatchesModel(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	f := b.Filter("f", 0.002, 0.5, in)
	b.Map("m", 0.004, f)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	rates := mat.VecOf(80)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0, 0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(rates[0], 60)),
		Duration:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := lm.Loads(rates) // f: 0.16, m: 0.16
	for op := range predicted {
		if math.Abs(res.OpUtilization[op]-predicted[op]) > 0.02 {
			t.Fatalf("op %d utilization %g, model predicts %g",
				op, res.OpUtilization[op], predicted[op])
		}
	}
}

// The nonlinear (join) load model of Section 6.2, evaluated at the actual
// rates, must match the executed utilization too.
func TestJoinUtilizationMatchesNonlinearModel(t *testing.T) {
	b := query.NewBuilder()
	l := b.Input("L")
	r := b.Input("R")
	fl := b.Filter("fl", 0.001, 0.5, l)
	fr := b.Filter("fr", 0.001, 0.5, r)
	j := b.Join("j", 0.0004, 0.05, 2.0, fl, fr)
	b.Map("m", 0.002, j)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := []int{0, 1, 0, 1}
	rates := mat.VecOf(30, 24)
	actual, err := lm.ActualLoads(rates)
	if err != nil {
		t.Fatal(err)
	}
	predicted := mat.NewVec(2)
	for op, node := range nodeOf {
		predicted[node] += actual[op]
	}
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.VecOf(1, 1),
		Sources:    sources(g, constantTrace(rates[0], 80), constantTrace(rates[1], 80)),
		Duration:   80,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.Utilization[i]-predicted[i]) > 0.06 {
			t.Fatalf("node %d: simulated %g vs nonlinear-model %g", i, res.Utilization[i], predicted[i])
		}
	}
}

// The simulator against queueing theory: Poisson arrivals + deterministic
// service is an M/D/1 queue, whose mean sojourn time is
// 1/μ + ρ/(2μ(1−ρ)) (Pollaczek–Khinchine). The measured mean must match.
func TestMD1MeanLatencyMatchesTheory(t *testing.T) {
	const (
		cost = 0.01  // service time 1/μ
		rate = 60.0  // λ → ρ = 0.6
		dur  = 400.0 // long run for a stable mean
	)
	g := singleOpGraph(t, cost)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(rate, dur)),
		Duration:   dur,
		WarmUp:     dur * 0.1,
		Arrivals:   PoissonArrivals,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rho := rate * cost
	want := cost + rho*cost/(2*(1-rho)) // 0.01 + 0.0075 = 0.0175
	if math.Abs(res.LatencyMean-want) > want*0.12 {
		t.Fatalf("M/D/1 mean latency = %gs, theory %gs (ρ=%g)", res.LatencyMean, want, rho)
	}
}

func TestPoissonArrivalsApproximateRate(t *testing.T) {
	g := singleOpGraph(t, 0.001)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(100, 50)),
		Duration:   50,
		Arrivals:   PoissonArrivals,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.TuplesIn) / 50
	if math.Abs(rate-100) > 10 {
		t.Fatalf("poisson arrival rate = %g, want ~100", rate)
	}
	// Poisson queueing at rho=0.1 still must show some variability.
	if res.LatencyMax <= res.LatencyP50 {
		t.Fatal("poisson run should show latency variation")
	}
}

func TestTimeVaryingTraceChangesLoad(t *testing.T) {
	g := singleOpGraph(t, 0.01)
	// 30s at rate 10, then 30s at rate 80 (rho 0.1 then 0.8).
	rates := make([]float64, 60)
	for i := range rates {
		if i < 30 {
			rates[i] = 10
		} else {
			rates[i] = 80
		}
	}
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, trace.New("step", 1, rates)),
		Duration:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := (10*30 + 80*30) * 0.01 / 60.0 // 0.45
	if math.Abs(res.Utilization[0]-expected) > 0.05 {
		t.Fatalf("utilization = %g, want ~%g", res.Utilization[0], expected)
	}
	// ~2700 tuples.
	if res.TuplesIn < 2500 || res.TuplesIn > 2900 {
		t.Fatalf("TuplesIn = %d, want ~2700", res.TuplesIn)
	}
}

func TestZeroRateBinsSkipped(t *testing.T) {
	g := singleOpGraph(t, 0.001)
	rates := []float64{0, 0, 50, 0, 50, 0}
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, trace.New("sparse", 1, rates)),
		Duration:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Note RateAt clamps past the trace end, so only bins 2 and 4 fire
	// within [0,6): ~100 tuples.
	if res.TuplesIn < 90 || res.TuplesIn > 110 {
		t.Fatalf("TuplesIn = %d, want ~100", res.TuplesIn)
	}
}

func TestConfigErrors(t *testing.T) {
	g := singleOpGraph(t, 0.01)
	tr := constantTrace(1, 10)
	base := Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, tr),
		Duration:   10,
	}
	cases := map[string]func(c Config) Config{
		"nil graph":     func(c Config) Config { c.Graph = nil; return c },
		"plan size":     func(c Config) Config { c.NodeOf = []int{0, 0}; return c },
		"no nodes":      func(c Config) Config { c.Capacities = nil; return c },
		"zero capacity": func(c Config) Config { c.Capacities = mat.VecOf(0); return c },
		"bad node":      func(c Config) Config { c.NodeOf = []int{5}; return c },
		"zero duration": func(c Config) Config { c.Duration = 0; return c },
		"no source":     func(c Config) Config { c.Sources = nil; return c },
	}
	for name, mod := range cases {
		if _, err := Run(mod(base)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	g := singleOpGraph(t, 0.001)
	_, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(1000, 100)),
		Duration:   100,
		MaxEvents:  500,
	})
	if err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := singleOpGraph(t, 0.002)
	cfg := Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.VecOf(1),
		Sources:    sources(g, constantTrace(200, 20)),
		Duration:   20,
		Arrivals:   PoissonArrivals,
		Seed:       42,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TuplesIn != b2.TuplesIn || a.Events != b2.Events || a.LatencyMean != b2.LatencyMean {
		t.Fatal("same seed must replay identically")
	}
}

func TestWarmUpExcludesEarlyLatencies(t *testing.T) {
	g := singleOpGraph(t, 0.001)
	all, err := Run(Config{
		Graph: g, NodeOf: []int{0}, Capacities: mat.VecOf(1),
		Sources: sources(g, constantTrace(100, 10)), Duration: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	late, err := Run(Config{
		Graph: g, NodeOf: []int{0}, Capacities: mat.VecOf(1),
		Sources: sources(g, constantTrace(100, 10)), Duration: 10, WarmUp: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if late.LatencySamples >= all.LatencySamples {
		t.Fatalf("warm-up did not reduce samples: %d vs %d", late.LatencySamples, all.LatencySamples)
	}
	if late.LatencySamples < all.LatencySamples/3 {
		t.Fatalf("warm-up removed too much: %d vs %d", late.LatencySamples, all.LatencySamples)
	}
}

func TestMaxUtilization(t *testing.T) {
	r := &Result{Utilization: mat.VecOf(0.2, 0.9, 0.5)}
	if r.MaxUtilization() != 0.9 {
		t.Fatalf("MaxUtilization = %g", r.MaxUtilization())
	}
	if (&Result{}).MaxUtilization() != 0 {
		t.Fatal("empty result must give 0")
	}
}

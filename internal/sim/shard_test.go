package sim

import (
	"math"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// shardedChain builds I → a → b with a sharded k ways.
func shardedChain(t *testing.T, costA, costB float64, k int) (*query.Graph, query.ShardGroup) {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", costA, 1, in)
	b.Delay("b", costB, 1, s)
	g, err := query.Shards(b.MustBuild(), 0, query.DefaultShardConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := query.ShardGroups(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, groups[0]
}

// Keyed routing delivers each tuple to exactly one replica: total replica
// work equals the unsharded operator's, split per the slot table, and sink
// throughput is unchanged (no duplication, no loss).
func TestSimShardedRouting(t *testing.T) {
	g, grp := shardedChain(t, 0.002, 0.0005, 4)
	nodeOf := make([]int, g.NumOps())
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.Vec{4},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{400, 400, 400, 400, 400}),
		},
		Duration: 5,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every source tuple reaches the sink exactly once through the shards.
	if float64(res.TuplesOut) < float64(res.TuplesIn)*0.99 || res.TuplesOut > res.TuplesIn {
		t.Fatalf("out %d of in %d — keyed routing lost or duplicated", res.TuplesOut, res.TuplesIn)
	}
	// Total replica utilization == rate·cost (the unsharded load), and the
	// uniform table splits it ~evenly (16 of 64 slots each).
	var repl float64
	for _, r := range grp.Replicas {
		u := res.OpUtilization[r]
		if math.Abs(u-0.2) > 0.05 {
			t.Fatalf("replica %d utilization %g, want ~0.2 (uniform quarter of 0.8)", r, u)
		}
		repl += u
	}
	if math.Abs(repl-0.8) > 0.05 {
		t.Fatalf("summed replica utilization %g, want ~0.8", repl)
	}
}

// A fully skewed partition table concentrates all keyed work on one replica.
func TestSimPartitionTableHonored(t *testing.T) {
	g, grp := shardedChain(t, 0.002, 0.0005, 2)
	all0 := make([]int, query.ShardSlots)
	nodeOf := make([]int, g.NumOps())
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.Vec{4},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{200, 200, 200}),
		},
		Duration:   3,
		Partitions: map[query.StreamID][]int{grp.Stream: all0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.OpUtilization[grp.Replicas[0]]; u < 0.3 {
		t.Fatalf("replica 0 utilization %g, want the whole 0.4", u)
	}
	if u := res.OpUtilization[grp.Replicas[1]]; u != 0 {
		t.Fatalf("replica 1 utilization %g, want 0 under an all-0 table", u)
	}
}

// A scheduled repartition swaps the table mid-run: work shifts between
// replicas at the scheduled time, and the event is recorded.
func TestSimScheduledRepartition(t *testing.T) {
	g, grp := shardedChain(t, 0.002, 0.0005, 2)
	all0 := make([]int, query.ShardSlots)
	all1 := make([]int, query.ShardSlots)
	for i := range all1 {
		all1[i] = 1
	}
	nodeOf := make([]int, g.NumOps())
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.Vec{4},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{200, 200, 200, 200}),
		},
		Duration:     4,
		Partitions:   map[query.StreamID][]int{grp.Stream: all0},
		Repartitions: []ScheduledRepartition{{Time: 2, Stream: grp.Stream, Slots: all1}},
		Obs:          &ObsConfig{Controller: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	u0 := res.OpUtilization[grp.Replicas[0]]
	u1 := res.OpUtilization[grp.Replicas[1]]
	if u0 < 0.15 || u1 < 0.15 {
		t.Fatalf("replica utilizations %g/%g, want ~0.2 each (half the run)", u0, u1)
	}
	if res.EventLog.Count("repartition") != 1 || res.EventLog.Count("controller_scale") != 1 {
		t.Fatalf("want 1 repartition + 1 controller_scale event, got %d/%d",
			res.EventLog.Count("repartition"), res.EventLog.Count("controller_scale"))
	}
}

// Config validation for partition tables and scheduled repartitions.
func TestSimPartitionValidation(t *testing.T) {
	g, grp := shardedChain(t, 0.001, 0.0005, 2)
	nodeOf := make([]int, g.NumOps())
	base := Config{
		Graph:      g,
		NodeOf:     nodeOf,
		Capacities: mat.Vec{1},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{10}),
		},
		Duration: 1,
	}
	cfg := base
	cfg.Partitions = map[query.StreamID][]int{grp.Stream: {0, 1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("short table must error")
	}
	cfg = base
	bad := query.UniformSlots(2)
	bad[0] = 5
	cfg.Partitions = map[query.StreamID][]int{grp.Stream: bad}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range shard must error")
	}
	cfg = base
	cfg.Partitions = map[query.StreamID][]int{g.Inputs()[0]: query.UniformSlots(2)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("non-keyed stream must error")
	}
	cfg = base
	cfg.Repartitions = []ScheduledRepartition{{Time: 0.5, Stream: g.Inputs()[0], Slots: query.UniformSlots(2)}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("repartition of a non-keyed stream must error")
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"

	"rodsp/internal/mat"
)

// The paper's Section 1 argument against purely dynamic load distribution:
// capturing short-term variations needs frequent statistics gathering, and
// reacting requires operator state migration that stalls processing for
// hundreds of milliseconds. This file adds exactly that machinery to the
// simulator so the argument can be measured rather than asserted: a
// rebalancer observes per-operator load over a window, asks a policy for
// moves, and every move freezes both the source and destination node for
// the configured migration time while the operator relocates.

// Move relocates one operator to a destination node.
type Move struct {
	Op int
	To int
}

// Policy decides the moves for one rebalancing round.
type Policy interface {
	// Plan receives the per-operator average load (CPU-seconds/second over
	// the last window), the current operator→node map and the node
	// capacities, and returns the desired moves.
	Plan(opLoads []float64, nodeOf []int, caps mat.Vec) []Move
}

// RebalanceConfig switches the simulator into dynamic-distribution mode.
type RebalanceConfig struct {
	// Period between statistics collections / decisions (seconds).
	Period float64
	// MigrationTime is the processing stall charged to BOTH the source and
	// the destination node per moved operator (the paper reports a base
	// overhead of a few hundred milliseconds, more with large state).
	MigrationTime float64
	// Policy chooses the moves; nil disables rebalancing.
	Policy Policy
	// MaxMovesPerRound caps the moves applied per period (0 = unlimited).
	MaxMovesPerRound int
}

// RebalanceStats reports what the dynamic mechanism did during a run.
type RebalanceStats struct {
	Rounds int
	Moves  int
	// StallSeconds is the total node-time frozen by migrations.
	StallSeconds float64
}

// validate checks the configuration.
func (rc *RebalanceConfig) validate() error {
	if rc.Period <= 0 {
		return fmt.Errorf("sim: rebalance period %g must be positive", rc.Period)
	}
	if rc.MigrationTime < 0 {
		return fmt.Errorf("sim: negative migration time %g", rc.MigrationTime)
	}
	if rc.Policy == nil {
		return fmt.Errorf("sim: rebalance configured without a policy")
	}
	return nil
}

// LLFPolicy is the classic reactive balancer: repeatedly move the largest
// movable operator from the most-utilized node to the least-utilized one
// while the spread exceeds the tolerance.
type LLFPolicy struct {
	// Tolerance is the max-minus-min utilization spread that triggers moves
	// (e.g. 0.1 = rebalance when nodes differ by more than 10 points).
	Tolerance float64
	// MaxMoves bounds the moves suggested per round (0 = 8).
	MaxMoves int
}

// Plan implements Policy.
func (p *LLFPolicy) Plan(opLoads []float64, nodeOf []int, caps mat.Vec) []Move {
	maxMoves := p.MaxMoves
	if maxMoves == 0 {
		maxMoves = 8
	}
	node := make([]int, len(nodeOf))
	copy(node, nodeOf)
	util := make(mat.Vec, len(caps))
	for op, n := range node {
		util[n] += opLoads[op] / caps[n]
	}
	var moves []Move
	for len(moves) < maxMoves {
		hi, lo := util.ArgMax(), util.ArgMin()
		if util[hi]-util[lo] <= p.Tolerance {
			break
		}
		// Largest operator on the hot node that fits the gap without
		// overshooting past the cold node's new level.
		gap := (util[hi] - util[lo]) / 2
		best, bestLoad := -1, 0.0
		for op, n := range node {
			if n != hi {
				continue
			}
			l := opLoads[op] / caps[hi]
			if l <= gap+1e-12 && l > bestLoad {
				best, bestLoad = op, l
			}
		}
		if best == -1 {
			break // nothing movable without making things worse
		}
		moves = append(moves, Move{Op: best, To: lo})
		node[best] = lo
		util[hi] -= opLoads[best] / caps[hi]
		util[lo] += opLoads[best] / caps[lo]
	}
	return moves
}

// CorrelationPolicy mimics the paper's earlier dynamic scheme in spirit:
// like LLFPolicy but it prefers moving, among the hot node's candidates,
// the operator whose load history correlates most with the node's total
// (separating correlated load). History is supplied by the simulator as
// the per-operator load of the last few windows.
type CorrelationPolicy struct {
	Tolerance float64
	MaxMoves  int

	history [][]float64 // ring of per-op load snapshots
}

// observe records one window's per-op loads (called by the simulator).
func (p *CorrelationPolicy) observe(opLoads []float64) {
	snap := make([]float64, len(opLoads))
	copy(snap, opLoads)
	p.history = append(p.history, snap)
	if len(p.history) > 16 {
		p.history = p.history[1:]
	}
}

// Plan implements Policy.
func (p *CorrelationPolicy) Plan(opLoads []float64, nodeOf []int, caps mat.Vec) []Move {
	maxMoves := p.MaxMoves
	if maxMoves == 0 {
		maxMoves = 8
	}
	node := make([]int, len(nodeOf))
	copy(node, nodeOf)
	util := make(mat.Vec, len(caps))
	for op, n := range node {
		util[n] += opLoads[op] / caps[n]
	}
	var moves []Move
	for len(moves) < maxMoves {
		hi, lo := util.ArgMax(), util.ArgMin()
		if util[hi]-util[lo] <= p.Tolerance {
			break
		}
		gap := (util[hi] - util[lo]) / 2
		candidates := candidates(node, opLoads, caps, hi, gap)
		if len(candidates) == 0 {
			break
		}
		best := p.mostCorrelated(candidates, node, hi)
		moves = append(moves, Move{Op: best, To: lo})
		node[best] = lo
		util[hi] -= opLoads[best] / caps[hi]
		util[lo] += opLoads[best] / caps[lo]
	}
	return moves
}

func candidates(node []int, opLoads []float64, caps mat.Vec, hi int, gap float64) []int {
	var out []int
	for op, n := range node {
		if n == hi && opLoads[op]/caps[hi] <= gap+1e-12 && opLoads[op] > 0 {
			out = append(out, op)
		}
	}
	return out
}

func (p *CorrelationPolicy) mostCorrelated(candidates []int, node []int, hi int) int {
	if len(p.history) < 3 {
		// No history yet: fall back to the largest candidate.
		best := candidates[0]
		last := p.lastLoads()
		for _, op := range candidates[1:] {
			if last != nil && last[op] > last[best] {
				best = op
			}
		}
		return best
	}
	// Node series = sum of member op series per window.
	nodeSeries := make([]float64, len(p.history))
	for t, snap := range p.history {
		for op, n := range node {
			if n == hi {
				nodeSeries[t] += snap[op]
			}
		}
	}
	best, bestScore := candidates[0], -2.0
	for _, op := range candidates {
		opSeries := make([]float64, len(p.history))
		for t, snap := range p.history {
			opSeries[t] = snap[op]
		}
		if score := correlation(opSeries, nodeSeries); score > bestScore {
			best, bestScore = op, score
		}
	}
	return best
}

func (p *CorrelationPolicy) lastLoads() []float64 {
	if len(p.history) == 0 {
		return nil
	}
	return p.history[len(p.history)-1]
}

// correlation is a local Pearson correlation (avoids importing stats here).
func correlation(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// sortMovesDeterministic keeps move application order stable.
func sortMovesDeterministic(moves []Move) {
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Op != moves[j].Op {
			return moves[i].Op < moves[j].Op
		}
		return moves[i].To < moves[j].To
	})
}

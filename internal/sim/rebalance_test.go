package sim

import (
	"math"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// twoChains builds two independent op chains (one per input), both placed
// initially on node 0.
func twoChains(t *testing.T, cost float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	for k := 0; k < 2; k++ {
		in := b.Input("")
		s := b.Delay("", cost, 1, in)
		b.Delay("", cost, 1, s)
	}
	return b.MustBuild()
}

func TestLLFPolicyMovesFromHotToCold(t *testing.T) {
	p := &LLFPolicy{Tolerance: 0.1}
	// 4 ops, all on node 0, loads 0.4/0.3/0.2/0.1; node 1 empty.
	moves := p.Plan([]float64{0.4, 0.3, 0.2, 0.1}, []int{0, 0, 0, 0}, mat.VecOf(1, 1))
	if len(moves) == 0 {
		t.Fatal("policy must propose moves for a 1.0-vs-0 spread")
	}
	// Apply and verify the spread shrank below tolerance or no candidate fit.
	node := []int{0, 0, 0, 0}
	util := mat.VecOf(1.0, 0.0)
	loads := []float64{0.4, 0.3, 0.2, 0.1}
	for _, mv := range moves {
		util[node[mv.Op]] -= loads[mv.Op]
		util[mv.To] += loads[mv.Op]
		node[mv.Op] = mv.To
	}
	if util.Max()-util.Min() > 0.25 {
		t.Fatalf("spread after moves = %g (moves %v)", util.Max()-util.Min(), moves)
	}
}

func TestLLFPolicyRespectsTolerance(t *testing.T) {
	p := &LLFPolicy{Tolerance: 0.5}
	moves := p.Plan([]float64{0.3, 0.2}, []int{0, 1}, mat.VecOf(1, 1))
	if len(moves) != 0 {
		t.Fatalf("spread 0.1 < tolerance 0.5 must yield no moves, got %v", moves)
	}
}

func TestLLFPolicyMaxMoves(t *testing.T) {
	p := &LLFPolicy{Tolerance: 0.0001, MaxMoves: 1}
	moves := p.Plan([]float64{0.2, 0.2, 0.2, 0.2}, []int{0, 0, 0, 0}, mat.VecOf(1, 1))
	if len(moves) != 1 {
		t.Fatalf("MaxMoves=1 violated: %v", moves)
	}
}

func TestCorrelationPolicyPrefersCorrelatedOp(t *testing.T) {
	p := &CorrelationPolicy{Tolerance: 0.05}
	// History: ops 0 and 1 on the hot node; op 0 tracks the node total
	// (correlated), op 1 anti-tracks. Equal current loads.
	p.observe([]float64{0.5, 0.1, 0})
	p.observe([]float64{0.1, 0.5, 0})
	p.observe([]float64{0.6, 0.05, 0})
	p.observe([]float64{0.05, 0.6, 0})
	p.observe([]float64{0.7, 0.02, 0})
	moves := p.Plan([]float64{0.3, 0.3, 0}, []int{0, 0, 1}, mat.VecOf(1, 1))
	if len(moves) == 0 {
		t.Fatal("expected a move")
	}
	// Node series = op0+op1 ≈ dominated by whichever spikes; op0's spikes
	// are larger, so op0 correlates more with the node total.
	if moves[0].Op != 0 {
		t.Fatalf("expected the correlated operator (0) to move, got %v", moves)
	}
}

func TestCorrelationPolicyNoHistoryFallsBackToLargest(t *testing.T) {
	p := &CorrelationPolicy{Tolerance: 0.05}
	moves := p.Plan([]float64{0.1, 0.4, 0}, []int{0, 0, 1}, mat.VecOf(1, 1))
	if len(moves) == 0 {
		t.Fatal("expected a move")
	}
	if moves[0].Op > 1 {
		t.Fatalf("moved a non-hot-node op: %v", moves)
	}
}

func TestRebalanceConfigValidation(t *testing.T) {
	g := twoChains(t, 0.001)
	base := Config{
		Graph:      g,
		NodeOf:     []int{0, 0, 0, 0},
		Capacities: mat.VecOf(1, 1),
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: constantTrace(10, 10),
			g.Inputs()[1]: constantTrace(10, 10),
		},
		Duration: 10,
	}
	bad := base
	bad.Rebalance = &RebalanceConfig{Period: 0, Policy: &LLFPolicy{}}
	if _, err := Run(bad); err == nil {
		t.Fatal("zero period must error")
	}
	bad = base
	bad.Rebalance = &RebalanceConfig{Period: 1}
	if _, err := Run(bad); err == nil {
		t.Fatal("missing policy must error")
	}
	bad = base
	bad.Rebalance = &RebalanceConfig{Period: 1, MigrationTime: -1, Policy: &LLFPolicy{}}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative migration time must error")
	}
}

// Dynamic rebalancing fixes a bad static plan under steady load: all four
// operators start on node 0; the balancer spreads them and utilization
// evens out.
func TestRebalancingFixesBadPlanUnderSteadyLoad(t *testing.T) {
	g := twoChains(t, 0.004)
	sources := map[query.StreamID]*trace.Trace{
		g.Inputs()[0]: constantTrace(60, 120),
		g.Inputs()[1]: constantTrace(60, 120),
	}
	run := func(rb *RebalanceConfig) *Result {
		res, err := Run(Config{
			Graph:      g,
			NodeOf:     []int{0, 0, 0, 0},
			Capacities: mat.VecOf(1, 1),
			Sources:    sources,
			Duration:   120,
			Rebalance:  rb,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(nil)
	dynamic := run(&RebalanceConfig{
		Period:        5,
		MigrationTime: 0.3,
		Policy:        &LLFPolicy{Tolerance: 0.1},
	})
	// Static: node 0 carries everything (0.96), node 1 idle.
	if static.Utilization[1] != 0 {
		t.Fatalf("static plan should leave node 1 idle, got %v", static.Utilization)
	}
	if static.Rebalance.Moves != 0 || static.FinalNodeOf[0] != 0 {
		t.Fatal("static run must not move anything")
	}
	// Dynamic: moves happened, both nodes loaded, spread small.
	if dynamic.Rebalance.Moves == 0 {
		t.Fatal("dynamic run made no moves")
	}
	spread := dynamic.Utilization.Max() - dynamic.Utilization.Min()
	if spread > 0.25 {
		t.Fatalf("dynamic spread = %g, want balanced (util %v)", spread, dynamic.Utilization)
	}
	moved := false
	for _, n := range dynamic.FinalNodeOf {
		if n != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("FinalNodeOf shows no migration")
	}
	if dynamic.Rebalance.StallSeconds <= 0 {
		t.Fatal("migrations must report stall time")
	}
}

// The paper's argument: under fast bursts, migration chases the load and
// its stall cost adds latency; a resilient static plan needs no moves. We
// verify the mechanism (stall inflates latency) with an aggressive
// rebalancer under an alternating load.
func TestAggressiveMigrationUnderBurstsHurts(t *testing.T) {
	g := twoChains(t, 0.003)
	// Anti-phase square waves: stream 0 busy while stream 1 idles, 4s phase.
	mk := func(phase int) *trace.Trace {
		rates := make([]float64, 120)
		for i := range rates {
			if (i/4)%2 == phase {
				rates[i] = 250
			} else {
				rates[i] = 10
			}
		}
		return trace.New("square", 1, rates)
	}
	sources := map[query.StreamID]*trace.Trace{
		g.Inputs()[0]: mk(0),
		g.Inputs()[1]: mk(1),
	}
	run := func(plan []int, rb *RebalanceConfig) *Result {
		res, err := Run(Config{
			Graph:      g,
			NodeOf:     plan,
			Capacities: mat.VecOf(1, 1),
			Sources:    sources,
			Duration:   120,
			WarmUp:     10,
			Rebalance:  rb,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Resilient static plan: each stream's chain split across both nodes —
	// the anti-phase bursts are absorbed without any movement.
	resilient := run([]int{0, 1, 1, 0}, nil)
	if resilient.Rebalance.Moves != 0 {
		t.Fatal("static run must not move")
	}
	// Stream-segregated plan (what a single-point balancer builds) driven
	// dynamically: the balancer reacts to each phase, always one step behind,
	// and pays migration stalls.
	chasing := run([]int{0, 0, 1, 1}, &RebalanceConfig{
		Period:        2,
		MigrationTime: 0.5,
		Policy:        &LLFPolicy{Tolerance: 0.05},
	})
	if chasing.Rebalance.Moves == 0 {
		t.Fatal("expected the rebalancer to chase the bursts")
	}
	if chasing.LatencyP99 <= resilient.LatencyP99 {
		t.Fatalf("resilient static plan should beat the chasing rebalancer: static %g vs chasing %g",
			resilient.LatencyP99, chasing.LatencyP99)
	}
}

func TestRebalanceIgnoresBogusPolicyMoves(t *testing.T) {
	g := twoChains(t, 0.001)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0, 0, 0, 0},
		Capacities: mat.VecOf(1, 1),
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: constantTrace(50, 20),
			g.Inputs()[1]: constantTrace(50, 20),
		},
		Duration:  20,
		Rebalance: &RebalanceConfig{Period: 5, Policy: bogusPolicy{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalance.Moves != 0 {
		t.Fatalf("bogus moves must be ignored, got %d", res.Rebalance.Moves)
	}
	if res.Rebalance.Rounds == 0 {
		t.Fatal("rounds must still be counted")
	}
}

type bogusPolicy struct{}

func (bogusPolicy) Plan(opLoads []float64, nodeOf []int, caps mat.Vec) []Move {
	return []Move{{Op: -1, To: 0}, {Op: 0, To: 99}, {Op: 1, To: nodeOf[1]}}
}

func TestMaxMovesPerRound(t *testing.T) {
	g := twoChains(t, 0.004)
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0, 0, 0, 0},
		Capacities: mat.VecOf(1, 1),
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: constantTrace(60, 10),
			g.Inputs()[1]: constantTrace(60, 10),
		},
		Duration: 10,
		Rebalance: &RebalanceConfig{
			Period:           5,
			Policy:           &LLFPolicy{Tolerance: 0.001},
			MaxMovesPerRound: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalance.Moves > res.Rebalance.Rounds {
		t.Fatalf("moves %d exceed rounds %d with MaxMovesPerRound=1",
			res.Rebalance.Moves, res.Rebalance.Rounds)
	}
}

func TestCorrelationHelperFunctions(t *testing.T) {
	if got := correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("correlation = %g", got)
	}
	if got := correlation([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("constant-series correlation = %g", got)
	}
	if got := correlation(nil, nil); got != 0 {
		t.Fatalf("empty correlation = %g", got)
	}
}

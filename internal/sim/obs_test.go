package sim

import (
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

func obsGraph(t *testing.T, cost float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	b.Delay("d", cost, 1, in)
	return b.MustBuild()
}

// TestSimObsOverload drives the simulator past capacity and asserts the
// virtual-time observability story mirrors the engine monitor's: overload
// onset at saturation, headroom series going non-positive, and samples
// stamped with simulation (not wall) time.
func TestSimObsOverload(t *testing.T) {
	g := obsGraph(t, 0.02) // 50 tuples/s capacity
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.Vec{1},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{150, 150, 150, 150, 150}),
		},
		Duration: 5,
		Obs:      &ObsConfig{Interval: 0.1, OverloadQueue: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || res.EventLog == nil {
		t.Fatal("obs run must attach Series and EventLog to the result")
	}

	onset, ok := res.EventLog.Find(obs.EventOverloadOnset)
	if !ok {
		t.Fatalf("no overload_onset; events: %+v", res.EventLog.Events())
	}
	if onset.Level != obs.LevelWarn {
		t.Fatalf("onset level = %s", onset.Level)
	}
	if onset.T <= 0 || onset.T > 5 {
		t.Fatalf("onset stamped at %g, want simulation time in (0,5]", onset.T)
	}

	head := res.Series.Series(obs.MetricNodeHeadroom, "node", "0")
	if min, ok := head.Min(); !ok || min > 0 {
		t.Fatalf("headroom min = %g ok=%v, want ≤ 0 (true headroom is 1−150·0.02 = −2)", min, ok)
	}

	util := res.Series.Series(obs.MetricNodeUtilization, "node", "0")
	if lt, lv, ok := util.Last(); !ok || lv < 0.9 || lt > 5 {
		t.Fatalf("final utilization sample = (%g, %g, %v), want saturated within the horizon", lt, lv, ok)
	}

	// Queue depth grows roughly at the 100 tuples/s overload rate.
	if _, qv, ok := res.Series.Series(obs.MetricNodeQueueDepth, "node", "0").Last(); !ok || qv < 100 {
		t.Fatalf("final queue depth = %g, want a large backlog", qv)
	}
}

// TestSimObsFeasible asserts a comfortably feasible run raises no overload
// events and keeps the headroom near its model-predicted value.
func TestSimObsFeasible(t *testing.T) {
	g := obsGraph(t, 0.002) // load 0.2 at 100 tuples/s
	res, err := Run(Config{
		Graph:      g,
		NodeOf:     []int{0},
		Capacities: mat.Vec{1},
		Sources: map[query.StreamID]*trace.Trace{
			g.Inputs()[0]: trace.New("const", 1, []float64{100, 100, 100, 100, 100}),
		},
		Duration: 5,
		Obs:      &ObsConfig{Interval: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.EventLog.Count(obs.EventOverloadOnset); n != 0 {
		t.Fatalf("%d overload events on a feasible run", n)
	}
	_, v, ok := res.Series.Series(obs.MetricNodeHeadroom, "node", "0").Last()
	if !ok || v < 0.7 || v > 0.9 {
		t.Fatalf("headroom = %g ok=%v, want ≈ 0.8", v, ok)
	}
	// Sink tuples flowed through the shared counters.
	if _, sv, ok := res.Series.Series(obs.MetricSinkTuples).Last(); !ok || sv == 0 {
		t.Fatalf("sink tuple series = %g ok=%v", sv, ok)
	}
	// Latency summary still populated via the shared digest.
	if res.LatencySamples == 0 || res.LatencyP95 <= 0 {
		t.Fatalf("latency summary missing: %+v", res)
	}
}

package sim

import (
	"strconv"

	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/query"
)

// ObsConfig enables observability inside a simulation run: the same metric
// schema the engine's Monitor emits (per-node utilization, queue depth,
// feasibility headroom, tuple counts, source rates, sink latency), sampled
// at virtual-time intervals into ring-buffered series, plus overload
// onset/clearance and migration events stamped with simulation time.
type ObsConfig struct {
	// Interval is the virtual-time sampling period (simulated seconds).
	// Default Duration/100.
	Interval float64
	// SeriesCap bounds the points retained per series (obs default when 0).
	SeriesCap int

	// Registry and Events receive the metrics and events; fresh instances
	// are created for any left nil (exposed on the Result).
	Registry *obs.Registry
	Events   *obs.EventLog

	// Overload detection thresholds, matching engine.MonitorConfig:
	// onset at OverloadUtil (default 0.95) with OverloadQueue queued items
	// (default 100); clearance below OverloadUtil with the queue at or
	// under ClearQueue (default OverloadQueue/4, clamped to at least 1;
	// negative requests an explicit empty-queue threshold of 0).
	OverloadUtil  float64
	OverloadQueue int
	ClearQueue    int

	// RateAlpha is the EWMA smoothing for source rates (default 0.4).
	RateAlpha float64

	// Controller mirrors the engine's elastic-controller observability:
	// the rodsp_controller_* series are registered (so a controller-mode
	// engine run and a sim replay of its recorded decisions keep identical
	// series schemas for the lockstep cross-validation), scheduled moves
	// emit controller_migrate events and feed the decision/move counters,
	// and the forecast-headroom gauge tracks the minimum node headroom.
	Controller bool
}

// observer carries the per-run observability state; nil when disabled.
type observer struct {
	cfg     ObsConfig
	reg     *obs.Registry
	set     *obs.SeriesSet
	ev      *obs.EventLog
	sampler *obs.Sampler

	lm   *query.LoadModel // nil when the graph has no valid load model
	caps mat.Vec

	utilG  []*obs.Gauge
	queueG []*obs.Gauge
	headG  []*obs.Gauge
	injC   []*obs.Counter
	emiC   []*obs.Counter

	srcG     []*obs.Gauge
	srcTotC  []*obs.Counter
	srcRate  []*obs.EWMA
	srcCount []int64 // arrivals per input stream (cumulative)
	srcLast  []int64

	hist  *obs.Histogram
	sinkC *obs.Counter
	latQ  map[float64]*obs.Gauge

	stages   *obs.StageSet
	stageP50 []*obs.Gauge
	stageP99 []*obs.Gauge

	lastBusy []float64
	over     []bool

	// Controller-mirror instruments; nil unless ObsConfig.Controller.
	ctrlDecC  *obs.Counter
	ctrlMovC  *obs.Counter
	ctrlFailC *obs.Counter
	ctrlSclC  *obs.Counter
	ctrlHeadG *obs.Gauge

	scratch mat.Scratch // per-sample vectors; sample() runs on one goroutine
}

// newObserver builds the observer for one run; cfg.Obs must be non-nil.
func newObserver(cfg *Config, g *query.Graph, inputs []query.StreamID, n int) *observer {
	oc := *cfg.Obs
	if oc.Interval <= 0 {
		oc.Interval = cfg.Duration / 100
	}
	if oc.Registry == nil {
		oc.Registry = obs.NewRegistry()
	}
	if oc.Events == nil {
		oc.Events = obs.NewEventLog(0)
	}
	if oc.OverloadUtil <= 0 {
		oc.OverloadUtil = 0.95
	}
	if oc.OverloadQueue <= 0 {
		oc.OverloadQueue = 100
	}
	switch {
	case oc.ClearQueue < 0:
		oc.ClearQueue = 0 // explicit empty-queue requirement
	case oc.ClearQueue == 0:
		oc.ClearQueue = oc.OverloadQueue / 4
		if oc.ClearQueue < 1 {
			oc.ClearQueue = 1
		}
	}

	o := &observer{
		cfg:      oc,
		reg:      oc.Registry,
		set:      obs.NewSeriesSet(oc.SeriesCap),
		ev:       oc.Events,
		caps:     cfg.Capacities,
		utilG:    make([]*obs.Gauge, n),
		queueG:   make([]*obs.Gauge, n),
		headG:    make([]*obs.Gauge, n),
		injC:     make([]*obs.Counter, n),
		emiC:     make([]*obs.Counter, n),
		srcG:     make([]*obs.Gauge, len(inputs)),
		srcTotC:  make([]*obs.Counter, len(inputs)),
		srcRate:  make([]*obs.EWMA, len(inputs)),
		srcCount: make([]int64, len(inputs)),
		srcLast:  make([]int64, len(inputs)),
		latQ:     map[float64]*obs.Gauge{},
		lastBusy: make([]float64, n),
		over:     make([]bool, n),
	}
	o.sampler = obs.NewSampler(o.set)
	if lm, err := query.BuildLoadModel(g); err == nil {
		o.lm = lm
	}
	for i := 0; i < n; i++ {
		node := strconv.Itoa(i)
		o.utilG[i] = o.reg.Gauge(obs.MetricNodeUtilization, "node", node)
		o.queueG[i] = o.reg.Gauge(obs.MetricNodeQueueDepth, "node", node)
		o.headG[i] = o.reg.Gauge(obs.MetricNodeHeadroom, "node", node)
		o.headG[i].Set(1)
		o.injC[i] = o.reg.Counter(obs.MetricNodeInjected, "node", node)
		o.emiC[i] = o.reg.Counter(obs.MetricNodeEmitted, "node", node)
		o.sampler.ProbeGauge(obs.MetricNodeUtilization, o.utilG[i], "node", node)
		o.sampler.ProbeGauge(obs.MetricNodeQueueDepth, o.queueG[i], "node", node)
		o.sampler.ProbeGauge(obs.MetricNodeHeadroom, o.headG[i], "node", node)
		o.sampler.ProbeCounter(obs.MetricNodeInjected, o.injC[i], "node", node)
		o.sampler.ProbeCounter(obs.MetricNodeEmitted, o.emiC[i], "node", node)
		// The simulator's unbounded queues never shed and its delivery is
		// lossless, so the engine's resilience counters stay at zero — but
		// they are emitted to keep the two runtimes' series schemas identical
		// (the sim-vs-prototype cross-validation asserts exact equality).
		for _, name := range []string{
			obs.MetricNodeShed, obs.MetricNodeOutboxDrop, obs.MetricNodePeerReconnects,
			obs.MetricNodeNoRoute,
		} {
			o.sampler.ProbeCounter(name, o.reg.Counter(name, "node", node), "node", node)
		}
	}
	for s, in := range inputs {
		label := strconv.Itoa(int(in))
		if st := g.Stream(in); st != nil && st.Name != "" {
			label = st.Name
		}
		o.srcTotC[s] = o.reg.Counter(obs.MetricSourceTuples, "stream", label)
		o.srcG[s] = o.reg.Gauge(obs.MetricSourceRate, "stream", label)
		o.srcRate[s] = obs.NewEWMA(oc.RateAlpha)
		o.sampler.ProbeGauge(obs.MetricSourceRate, o.srcG[s], "stream", label)
	}
	o.hist = o.reg.Histogram(obs.MetricSinkLatency, nil)
	o.sinkC = o.reg.Counter(obs.MetricSinkTuples)
	for _, p := range []float64{50, 95, 99} {
		q := "p" + strconv.FormatFloat(p, 'g', -1, 64)
		g := o.reg.Gauge(obs.MetricSinkLatencyQuantile, "quantile", q)
		o.latQ[p] = g
		o.sampler.ProbeGauge(obs.MetricSinkLatencyQuantile, g, "quantile", q)
	}
	o.sampler.ProbeCounter(obs.MetricSinkTuples, o.sinkC)
	// Per-stage latency decomposition, matching the engine monitor's schema.
	// The simulator genuinely populates transit (network delay), queue and
	// service; outbox and deliver are engine wire artifacts and stay at zero
	// observations — but every stage's series is registered and probed so
	// the two runtimes' schemas remain identical.
	o.stages = obs.NewStageSet(o.reg)
	o.stageP50 = make([]*obs.Gauge, obs.NumStages)
	o.stageP99 = make([]*obs.Gauge, obs.NumStages)
	for st := 0; st < obs.NumStages; st++ {
		name := obs.StageName(st)
		o.stageP50[st] = o.reg.Gauge(obs.MetricStageLatencyQuantile, "stage", name, "quantile", "p50")
		o.stageP99[st] = o.reg.Gauge(obs.MetricStageLatencyQuantile, "stage", name, "quantile", "p99")
		o.sampler.ProbeGauge(obs.MetricStageLatencyQuantile, o.stageP50[st], "stage", name, "quantile", "p50")
		o.sampler.ProbeGauge(obs.MetricStageLatencyQuantile, o.stageP99[st], "stage", name, "quantile", "p99")
		o.sampler.ProbeCounter(obs.MetricStageTuples,
			o.reg.Counter(obs.MetricStageTuples, "stage", name), "stage", name)
	}
	if oc.Controller {
		// One mirrored decision per sample window; scheduled moves feed the
		// move counter and the failure counter stays at zero (the simulator
		// cannot abort a migration). Registered only on request so the
		// schema matches the engine, which registers these series only when
		// its controller is running.
		o.ctrlDecC = o.reg.Counter(obs.MetricControllerDecisions)
		o.ctrlMovC = o.reg.Counter(obs.MetricControllerMoves)
		o.ctrlFailC = o.reg.Counter(obs.MetricControllerMoveFailures)
		o.ctrlSclC = o.reg.Counter(obs.MetricControllerScales)
		o.ctrlHeadG = o.reg.Gauge(obs.MetricControllerForecastHeadroom)
		o.ctrlHeadG.Set(1)
		o.sampler.ProbeCounter(obs.MetricControllerDecisions, o.ctrlDecC)
		o.sampler.ProbeCounter(obs.MetricControllerMoves, o.ctrlMovC)
		o.sampler.ProbeCounter(obs.MetricControllerMoveFailures, o.ctrlFailC)
		o.sampler.ProbeCounter(obs.MetricControllerScales, o.ctrlSclC)
		o.sampler.ProbeGauge(obs.MetricControllerForecastHeadroom, o.ctrlHeadG)
	}
	return o
}

// onMove mirrors one applied scheduled move into the controller series
// (no-op unless ObsConfig.Controller).
func (o *observer) onMove(now float64, op, from, to int) {
	if o.ctrlMovC == nil {
		return
	}
	o.ctrlMovC.Inc()
	o.ev.EmitAt(now, obs.LevelInfo, obs.EventControllerMigrate,
		"op", op, "from", from, "to", to, "ok", true)
}

// onRepart mirrors one applied scheduled repartition: always an event,
// plus the controller scale counter when ObsConfig.Controller (the engine
// increments it from the shard scale actuator).
func (o *observer) onRepart(now float64, stream, k int) {
	o.ev.EmitAt(now, obs.LevelInfo, obs.EventRepartition, "stream", stream, "k", k)
	if o.ctrlSclC != nil {
		o.ctrlSclC.Inc()
		o.ev.EmitAt(now, obs.LevelInfo, obs.EventControllerScale,
			"stream", stream, "k", k, "ok", true)
	}
}

// onStage records one stage crossing (seconds of wall/sim time).
func (o *observer) onStage(stage int, sec float64) {
	o.stages.Observe(stage, sec)
}

// onSource records one source arrival on input stream index s and feeds
// the per-stream injection counter.
func (o *observer) onSource(s int) {
	o.srcCount[s]++
	o.srcTotC[s].Inc()
}

// onSink records one sink tuple's end-to-end latency.
func (o *observer) onSink(lat float64) {
	o.hist.Observe(lat)
	o.sinkC.Inc()
}

// sample takes one virtual-time sample at now, reading node and placement
// state owned by the (single-threaded) event loop.
func (o *observer) sample(now float64, nodes []nodeState, nodeOf []int) {
	// Windowed utilization from busy-time deltas. Service time is charged
	// up front at service start, so a window's delta can exceed the
	// interval; cap at 1 like the engine monitor.
	o.scratch.Reset()
	utils := o.scratch.Vec(len(nodes))
	for i := range nodes {
		util := (nodes[i].busyTime - o.lastBusy[i]) / o.cfg.Interval
		o.lastBusy[i] = nodes[i].busyTime
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		utils[i] = util
		o.utilG[i].Set(util)
		o.queueG[i].Set(float64(nodes[i].qlen()))
	}

	// Source rates (EWMA of per-window arrival counts).
	for s := range o.srcCount {
		o.srcRate[s].Observe(float64(o.srcCount[s]-o.srcLast[s]) / o.cfg.Interval)
		o.srcLast[s] = o.srcCount[s]
		o.srcG[s].Set(o.srcRate[s].Value())
	}

	// Feasibility headroom at the smoothed rate point, against the live
	// operator→node map (rebalancing mutates it mid-run).
	if o.lm != nil {
		rhat := o.scratch.Vec(len(o.srcRate))
		for s := range o.srcRate {
			rhat[s] = o.srcRate[s].Value()
		}
		if x, err := o.lm.ResolveVars(rhat); err == nil {
			opLoads := o.scratch.Vec(o.lm.Coef.Rows)
			o.lm.Coef.MulVecTo(opLoads, x)
			loads := o.scratch.Vec(len(nodes))
			for op, node := range nodeOf {
				if node >= 0 && node < len(loads) {
					loads[node] += opLoads[op]
				}
			}
			minHead := 1.0
			for i := range loads {
				cap := 1.0
				if i < len(o.caps) && o.caps[i] > 0 {
					cap = o.caps[i]
				}
				h := 1 - loads[i]/cap
				o.headG[i].Set(h)
				if i == 0 || h < minHead {
					minHead = h
				}
			}
			if o.ctrlHeadG != nil {
				o.ctrlHeadG.Set(minHead)
			}
		}
	}
	if o.ctrlDecC != nil {
		o.ctrlDecC.Inc() // one mirrored decision per sample window
	}

	// Sink latency quantiles from the cumulative histogram.
	for p, g := range o.latQ {
		if v, ok := o.hist.Quantile(p); ok {
			g.Set(v)
		}
	}

	// Per-stage latency quantiles from the decomposition histograms.
	for st := 0; st < obs.NumStages; st++ {
		h := o.stages.Hist(st)
		if v, ok := h.Quantile(50); ok {
			o.stageP50[st].Set(v)
		}
		if v, ok := h.Quantile(99); ok {
			o.stageP99[st].Set(v)
		}
	}

	// Overload onset/clearance with queue hysteresis.
	for i := range nodes {
		q := nodes[i].qlen()
		if !o.over[i] && utils[i] >= o.cfg.OverloadUtil && q >= o.cfg.OverloadQueue {
			o.over[i] = true
			o.ev.EmitAt(now, obs.LevelWarn, obs.EventOverloadOnset,
				"node", i, "util", utils[i], "queue", q, "headroom", o.headG[i].Value())
		} else if o.over[i] && utils[i] < o.cfg.OverloadUtil && q <= o.cfg.ClearQueue {
			o.over[i] = false
			o.ev.EmitAt(now, obs.LevelInfo, obs.EventOverloadClear,
				"node", i, "util", utils[i], "queue", q, "headroom", o.headG[i].Value())
		}
	}

	o.sampler.Sample(now)
}

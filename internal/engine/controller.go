package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// The elastic placement controller closes the paper's loop: resilient
// static placement (ROD) buys time under load variation, but surviving
// sustained shifts requires dynamic operator movement. The controller
// watches the Monitor's live feasibility headroom and overload latches,
// forecasts each source rate a short horizon ahead (Holt/Holt-Winters, see
// forecast.go), and when the *forecast* rate point erodes the minimum
// headroom below a threshold it re-runs ROD placement against that point
// and executes the smallest admissible set of MoveOperator calls — so
// migration completes before the overload onset rather than after it.
//
// Guard rails, in decision order:
//
//   - warmup: no actuation until every stream's forecaster has seen a
//     minimum number of samples (a trend fitted to one point is noise);
//   - cooldown: a minimum wall-clock gap between actuations, so one hot
//     window cannot thrash operators back and forth;
//   - admissibility: a migration destination must hold no route — past or
//     present — for any of the operator's streams, the same no-duplication
//     constraint internal/check enforces for scheduled migrations (relays
//     left behind by earlier moves would otherwise double-deliver);
//   - budget: at most MaxMoves migrations per actuation;
//   - hysteresis: the post-budget candidate must improve the forecast
//     minimum headroom by at least HysteresisGain, or the controller holds.
//
// An aborted migration (MoveOperator rolled the destination back) counts as
// actuation failure: the failure counter increments, controller_migrate is
// emitted with ok=false, and the destination is conservatively marked
// routed so it is never retried for that operator's streams.

// ControllerConfig tunes the elastic placement controller.
type ControllerConfig struct {
	// Interval between decision cycles. Default 500ms.
	Interval time.Duration
	// Horizon is how far ahead the rate forecast is projected; migrations
	// should complete within it. Default 3×Interval.
	Horizon time.Duration
	// Cooldown is the minimum gap between actuations. Default 2s.
	Cooldown time.Duration
	// MaxMoves caps migrations per actuation. Default 1.
	MaxMoves int
	// HeadroomLow triggers re-placement when the forecast minimum headroom
	// drops below it (or a node is already overloaded). Default 0.1.
	HeadroomLow float64
	// HysteresisGain is the minimum forecast-headroom improvement the
	// budgeted move set must deliver for the controller to act. Default 0.02.
	HysteresisGain float64
	// Samples drives PlaceBest's feasible-set estimation. Default 400.
	Samples int
	// Stall is the state-transfer pause charged per migration. Default 0.
	Stall time.Duration
	// Seed drives the ROD re-placement.
	Seed int64

	// Forecaster smoothing: Alpha (level), Beta (trend), Gamma (seasonal);
	// defaults 0.5/0.3/0.2. SeasonPeriod is the seasonal cycle length in
	// decision ticks (0 disables the seasonal term). Warmup is the minimum
	// samples per stream before the controller may act; default 3.
	Alpha, Beta, Gamma float64
	SeasonPeriod       int
	Warmup             int

	// LoadCeiling clamps the forecast rate point so the total resolved load
	// stays at or under this fraction of the live capacity sum before it is
	// fed to placement as a lower bound (an infeasible floor would distort
	// every Class II decision). Default 0.9.
	LoadCeiling float64

	// ShardRebalance, when set, arms the shard scale actuator: given a
	// keyed stream's observed per-slot rates and shard count it returns a
	// fresh slot assignment (wire workload.AssignSkewAware here; the engine
	// deliberately does not import the generator package). The actuator
	// shares the migration cooldown, acts on at most one stream per cycle,
	// and only when the assignment cuts the maximum per-shard load share by
	// at least RebalanceGain. nil disables scaling.
	ShardRebalance func(rates []float64, k int) []int
	// RebalanceGain is the minimum relative reduction of the maximum
	// per-shard load share a reassignment must deliver. Default 0.1.
	RebalanceGain float64
	// RebalanceMinRate is the minimum total observed keyed-stream rate
	// (tuples/second) before the actuator considers it. Default 10.
	RebalanceMinRate float64
}

func (cfg *ControllerConfig) applyDefaults() {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 3 * cfg.Interval
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 1
	}
	if cfg.HeadroomLow <= 0 {
		cfg.HeadroomLow = 0.1
	}
	if cfg.HysteresisGain <= 0 {
		cfg.HysteresisGain = 0.02
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 400
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 3
	}
	if cfg.LoadCeiling <= 0 || cfg.LoadCeiling > 1 {
		cfg.LoadCeiling = 0.9
	}
	if cfg.RebalanceGain <= 0 {
		cfg.RebalanceGain = 0.1
	}
	if cfg.RebalanceMinRate <= 0 {
		cfg.RebalanceMinRate = 10
	}
}

// ControllerMove records one controller-initiated migration attempt.
type ControllerMove struct {
	T        float64 // seconds since controller start
	Op       int
	From, To int
	OK       bool
	Err      string
}

// ControllerStats is a point-in-time summary of the controller's activity.
type ControllerStats struct {
	Decisions        int64
	Moves            int64
	MoveFailures     int64
	Scales           int64
	ForecastHeadroom float64
	LastAction       string // "hold:<reason>", "migrate:<n>" or "scale:<stream>"
}

// Controller is the closed-loop elastic placement controller. Start it with
// Cluster.StartController after StartMonitor; it is the only actuator that
// should call MoveOperator while running.
type Controller struct {
	cl  *Cluster
	m   *Monitor
	cfg ControllerConfig
	lm  *query.LoadModel

	decC   *obs.Counter
	movC   *obs.Counter
	failC  *obs.Counter
	sclC   *obs.Counter
	fheadG *obs.Gauge

	fc     map[query.StreamID]*forecaster
	routed map[query.StreamID]map[int]bool
	keyed  map[query.StreamID]bool // partitioned streams: exempt from the
	// no-duplication admissibility constraint (targeted delivery routes
	// each keyed tuple to exactly one replica, so relays cannot duplicate)

	mu            sync.Mutex
	log           []ControllerMove
	lastAction    string
	cooldownUntil time.Time

	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// StartController attaches the elastic controller to a cluster whose
// monitor was started with a load model and plan (the headroom inputs) and
// starts its decision loop. Close the controller before the monitor.
func (cl *Cluster) StartController(cfg ControllerConfig) (*Controller, error) {
	cfg.applyDefaults()
	m := cl.monitor
	if m == nil {
		return nil, fmt.Errorf("engine: StartController requires StartMonitor first")
	}
	if m.cfg.LM == nil || m.cfg.Plan == nil {
		return nil, fmt.Errorf("engine: StartController requires a monitor with LM and Plan (headroom inputs)")
	}
	c := &Controller{
		cl:     cl,
		m:      m,
		cfg:    cfg,
		lm:     m.cfg.LM,
		fc:     map[query.StreamID]*forecaster{},
		routed: map[query.StreamID]map[int]bool{},
		keyed:  map[query.StreamID]bool{},
		start:  time.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	reg := m.cfg.Registry
	c.decC = reg.Counter(obs.MetricControllerDecisions)
	c.movC = reg.Counter(obs.MetricControllerMoves)
	c.failC = reg.Counter(obs.MetricControllerMoveFailures)
	c.sclC = reg.Counter(obs.MetricControllerScales)
	c.fheadG = reg.Gauge(obs.MetricControllerForecastHeadroom)
	c.fheadG.Set(1)
	m.sampler.ProbeCounter(obs.MetricControllerDecisions, c.decC)
	m.sampler.ProbeCounter(obs.MetricControllerMoves, c.movC)
	m.sampler.ProbeCounter(obs.MetricControllerMoveFailures, c.failC)
	m.sampler.ProbeCounter(obs.MetricControllerScales, c.sclC)
	m.sampler.ProbeGauge(obs.MetricControllerForecastHeadroom, c.fheadG)

	if groups, err := query.ShardGroups(c.lm.G); err == nil {
		for _, grp := range groups {
			c.keyed[grp.Stream] = true
		}
	}

	snap := m.Snapshot()
	for _, in := range snap.Inputs {
		c.fc[in] = newForecaster(cfg.Alpha, cfg.Beta, cfg.Gamma, cfg.SeasonPeriod)
	}
	// Seed the no-duplication sets from the placement at controller start.
	// Migrations executed by other actors afterwards are not tracked — the
	// controller assumes it is the only mover while running.
	seedRouted(c.routed, c.keyed, c.lm.G, snap.NodeOf)

	go c.run()
	return c, nil
}

// Close stops the decision loop and waits for it to exit.
func (c *Controller) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// Stats summarizes the controller's activity so far.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	last := c.lastAction
	c.mu.Unlock()
	return ControllerStats{
		Decisions:        c.decC.Value(),
		Moves:            c.movC.Value(),
		MoveFailures:     c.failC.Value(),
		Scales:           c.sclC.Value(),
		ForecastHeadroom: c.fheadG.Value(),
		LastAction:       last,
	}
}

// Moves returns the executed-migration log (successes and aborts) in
// decision order.
func (c *Controller) Moves() []ControllerMove {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ControllerMove(nil), c.log...)
}

func (c *Controller) run() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.decide(now)
		}
	}
}

// decide runs one decision cycle: observe, forecast, evaluate, and — when
// the guard rails allow — re-place and migrate.
func (c *Controller) decide(now time.Time) {
	ev := c.m.cfg.Events
	c.decC.Inc()
	snap := c.m.Snapshot()

	// Feed this cycle's smoothed rates into the per-stream forecasters and
	// project the rate point Horizon ahead.
	h := int((c.cfg.Horizon + c.cfg.Interval - 1) / c.cfg.Interval)
	warm := true
	fRates := mat.NewVec(len(snap.Inputs))
	for k, in := range snap.Inputs {
		f := c.fc[in]
		if f == nil {
			f = newForecaster(c.cfg.Alpha, c.cfg.Beta, c.cfg.Gamma, c.cfg.SeasonPeriod)
			c.fc[in] = f
		}
		f.Observe(snap.Rates[k])
		if f.seen < c.cfg.Warmup {
			warm = false
		}
		fRates[k] = f.Forecast(h)
	}

	opLoads, fRates, err := c.resolveClamped(fRates, snap)
	if err != nil {
		ev.Emit(obs.LevelWarn, obs.EventControlError, "op", "controller_resolve", "err", err.Error())
		return
	}
	loads := nodeLoads(opLoads, snap.NodeOf, len(snap.Caps))
	minHead, hotNode := minHeadroom(loads, snap.Caps, snap.Stale)
	c.fheadG.Set(minHead)

	overloaded := false
	for i, ov := range snap.Overloaded {
		if ov && !snap.Stale[i] {
			overloaded = true
			break
		}
	}

	hold := func(reason string) {
		c.setAction("hold:" + reason)
		ev.Emit(obs.LevelInfo, obs.EventControllerDecide,
			"action", "hold", "reason", reason,
			"forecast_headroom", minHead, "hot_node", hotNode)
	}

	c.mu.Lock()
	cooling := now.Before(c.cooldownUntil)
	c.mu.Unlock()

	// Shard scale actuator first: it acts on observed per-slot skew, which
	// the model headroom cannot see (the load model assumes each replica
	// carries a uniform 1/k of the keyed stream). Shares the cooldown and
	// actuates at most one stream per cycle.
	if !cooling && c.maybeRebalance(snap) {
		c.mu.Lock()
		c.cooldownUntil = now.Add(c.cfg.Cooldown)
		c.mu.Unlock()
		return
	}

	if minHead >= c.cfg.HeadroomLow && !overloaded {
		hold("headroom_ok")
		return
	}
	if !warm {
		hold("warmup")
		return
	}
	if cooling {
		hold("cooldown")
		return
	}

	// Re-place against the forecast rate point. Stale nodes keep their
	// pinned operators and a vanishing capacity so the placer routes load
	// away from them.
	caps := append(mat.Vec(nil), snap.Caps...)
	pinned := map[int]int{}
	for i, st := range snap.Stale {
		if st {
			caps[i] = 1e-6
			for op, node := range snap.NodeOf {
				if node == i {
					pinned[op] = i
				}
			}
		}
	}
	cand, _, err := core.PlaceBest(c.lm.Coef, caps, core.Config{
		Graph:      c.lm.G,
		LowerBound: fRates,
		Seed:       c.cfg.Seed,
		Pinned:     pinned,
	}, c.cfg.Samples)
	if err != nil {
		ev.Emit(obs.LevelWarn, obs.EventControlError, "op", "controller_place", "err", err.Error())
		hold("place_error")
		return
	}

	moves := planMoves(snap.NodeOf, cand.NodeOf, opLoads, snap.Stale, c.lm.G, c.routed, c.keyed, c.cfg.MaxMoves)
	if len(moves) == 0 {
		hold("no_admissible_moves")
		return
	}

	// Hysteresis: the budgeted subset must actually buy headroom at the
	// forecast point.
	next := append([]int(nil), snap.NodeOf...)
	for _, mv := range moves {
		next[mv.Op] = mv.To
	}
	newHead, _ := minHeadroom(nodeLoads(opLoads, next, len(snap.Caps)), snap.Caps, snap.Stale)
	if newHead < minHead+c.cfg.HysteresisGain {
		hold("insufficient_gain")
		return
	}

	c.setAction(fmt.Sprintf("migrate:%d", len(moves)))
	ev.Emit(obs.LevelInfo, obs.EventControllerDecide,
		"action", "migrate", "moves", len(moves),
		"forecast_headroom", minHead, "projected_headroom", newHead,
		"hot_node", hotNode)
	c.execute(moves, snap)

	c.mu.Lock()
	c.cooldownUntil = now.Add(c.cfg.Cooldown)
	c.mu.Unlock()
}

// execute runs the budgeted move set against the live cluster, updating the
// no-duplication sets and the migration log per outcome.
func (c *Controller) execute(moves []ctrlMove, snap MonitorSnapshot) {
	ev := c.m.cfg.Events
	plan := &placement.Plan{NodeOf: append([]int(nil), snap.NodeOf...), N: len(snap.Caps)}
	for _, mv := range moves {
		from := plan.NodeOf[mv.Op]
		err := c.cl.MoveOperator(c.lm.G, plan, query.OpID(mv.Op), mv.To, c.cfg.Stall)
		rec := ControllerMove{
			T:    time.Since(c.start).Seconds(),
			Op:   mv.Op,
			From: from,
			To:   mv.To,
			OK:   err == nil,
		}
		if err == nil {
			c.movC.Inc()
			ev.Emit(obs.LevelInfo, obs.EventControllerMigrate,
				"op", mv.Op, "from", from, "to", mv.To, "ok", true)
		} else {
			rec.Err = err.Error()
			c.failC.Inc()
			ev.Emit(obs.LevelWarn, obs.EventControllerMigrate,
				"op", mv.Op, "from", from, "to", mv.To, "ok", false, "err", err.Error())
		}
		// Mark the destination routed either way: even an aborted move
		// briefly installed routes there, so it is never reused for these
		// streams (conservative, keeps the ledger exact).
		markRouted(c.routed, c.keyed, c.lm.G.Op(query.OpID(mv.Op)), mv.To)
		c.mu.Lock()
		c.log = append(c.log, rec)
		c.mu.Unlock()
	}
}

func (c *Controller) setAction(a string) {
	c.mu.Lock()
	c.lastAction = a
	c.mu.Unlock()
}

// maybeRebalance runs the shard scale actuator over the observed per-slot
// rates: for the first keyed stream (ascending id) whose reassignment cuts
// the maximum per-shard load share by at least RebalanceGain, it pushes
// the new slot table via Repartition. Returns whether it actuated (success
// or failure — either way the caller applies the cooldown).
func (c *Controller) maybeRebalance(snap MonitorSnapshot) bool {
	if c.cfg.ShardRebalance == nil || len(snap.SlotRates) == 0 {
		return false
	}
	ev := c.m.cfg.Events
	sids := make([]int, 0, len(snap.SlotRates))
	for sid := range snap.SlotRates {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	for _, sid := range sids {
		k := c.cl.ShardK(query.StreamID(sid))
		if k < 2 {
			continue
		}
		rates := snap.SlotRates[sid]
		total := 0.0
		for _, r := range rates {
			total += r
		}
		if total < c.cfg.RebalanceMinRate {
			continue
		}
		cur := c.cl.ShardSlotsOf(query.StreamID(sid))
		if len(cur) != len(rates) {
			continue
		}
		next := c.cfg.ShardRebalance(rates, k)
		if len(next) != len(rates) {
			continue
		}
		curMax := maxShardShare(cur, rates, k)
		nextMax := maxShardShare(next, rates, k)
		// Hysteresis: the reassignment must cut the hottest shard's share
		// by the configured relative gain, or the actuator holds.
		if curMax <= 0 || nextMax >= curMax*(1-c.cfg.RebalanceGain) {
			continue
		}
		same := true
		for i := range cur {
			if cur[i] != next[i] {
				same = false
				break
			}
		}
		if same {
			continue
		}
		err := c.cl.Repartition(query.StreamID(sid), next)
		c.setAction(fmt.Sprintf("scale:%d", sid))
		if err == nil {
			c.sclC.Inc()
			ev.Emit(obs.LevelInfo, obs.EventControllerScale,
				"stream", sid, "k", k, "ok", true,
				"max_share_before", curMax/total, "max_share_after", nextMax/total)
		} else {
			c.failC.Inc()
			ev.Emit(obs.LevelWarn, obs.EventControllerScale,
				"stream", sid, "k", k, "ok", false, "err", err.Error())
		}
		return true
	}
	return false
}

// maxShardShare is the largest per-shard rate sum under the assignment.
func maxShardShare(assign []int, rates []float64, k int) float64 {
	loads := make([]float64, k)
	for i, s := range assign {
		if s >= 0 && s < k && i < len(rates) {
			loads[s] += rates[i]
		}
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// resolveClamped resolves per-operator loads at the forecast rate point,
// scaling the rates down if the total load exceeds LoadCeiling × the live
// (non-stale) capacity sum — an infeasible lower bound would distort the
// re-placement rather than inform it.
func (c *Controller) resolveClamped(fRates mat.Vec, snap MonitorSnapshot) ([]float64, mat.Vec, error) {
	x, err := c.lm.ResolveVars(fRates)
	if err != nil {
		return nil, nil, err
	}
	opLoads := c.lm.Loads(x)
	total := 0.0
	for _, l := range opLoads {
		total += l
	}
	capSum := 0.0
	for i, cp := range snap.Caps {
		if i < len(snap.Stale) && snap.Stale[i] {
			continue
		}
		capSum += cp
	}
	if ceil := c.cfg.LoadCeiling * capSum; total > ceil && total > 0 {
		scale := ceil / total
		scaled := append(mat.Vec(nil), fRates...)
		for k := range scaled {
			scaled[k] *= scale
		}
		x, err = c.lm.ResolveVars(scaled)
		if err != nil {
			return nil, nil, err
		}
		return c.lm.Loads(x), scaled, nil
	}
	return opLoads, fRates, nil
}

// ctrlMove is one (operator, destination) migration the controller plans.
type ctrlMove struct {
	Op   int
	To   int
	Load float64
}

// nodeLoads aggregates per-operator loads by placement.
func nodeLoads(opLoads []float64, nodeOf []int, n int) []float64 {
	loads := make([]float64, n)
	for op, node := range nodeOf {
		if op < len(opLoads) && node >= 0 && node < n {
			loads[node] += opLoads[op]
		}
	}
	return loads
}

// minHeadroom returns the minimum 1 − load_i/C_i over non-stale nodes and
// the node attaining it (−1 when every node is stale).
func minHeadroom(loads []float64, caps mat.Vec, stale []bool) (float64, int) {
	min, arg := 1.0, -1
	for i, l := range loads {
		if i < len(stale) && stale[i] {
			continue
		}
		cp := 1.0
		if i < len(caps) && caps[i] > 0 {
			cp = caps[i]
		}
		h := 1 - l/cp
		if arg < 0 || h < min {
			min, arg = h, i
		}
	}
	return min, arg
}

// planMoves diffs the candidate plan against the current placement and
// returns the admissible moves, highest forecast load first, capped at
// maxMoves. A move is admissible when neither endpoint is stale and the
// destination holds no route — past or present — for any of the operator's
// streams (the relay no-duplication constraint). Later candidates see
// earlier admitted moves through a tentative overlay; the shared routed
// sets are only committed by execute, so a move set the hysteresis gate
// rejects burns no admissibility.
func planMoves(cur, cand []int, opLoads []float64, stale []bool, g *query.Graph, routed map[query.StreamID]map[int]bool, keyed map[query.StreamID]bool, maxMoves int) []ctrlMove {
	var diff []ctrlMove
	for op := range cur {
		if cand[op] == cur[op] {
			continue
		}
		load := 0.0
		if op < len(opLoads) {
			load = opLoads[op]
		}
		diff = append(diff, ctrlMove{Op: op, To: cand[op], Load: load})
	}
	// Highest-load operators first: moving them buys the most headroom per
	// migration, and the budget truncates the tail. Stable insertion sort —
	// the diff is small and ties keep operator order deterministic.
	for i := 1; i < len(diff); i++ {
		for j := i; j > 0 && diff[j].Load > diff[j-1].Load; j-- {
			diff[j], diff[j-1] = diff[j-1], diff[j]
		}
	}
	tent := map[query.StreamID]map[int]bool{}
	var moves []ctrlMove
	for _, mv := range diff {
		if len(moves) >= maxMoves {
			break
		}
		src := cur[mv.Op]
		if src < len(stale) && stale[src] {
			continue // source control plane unreachable
		}
		if mv.To < len(stale) && stale[mv.To] {
			continue
		}
		op := g.Op(query.OpID(mv.Op))
		if !admissible(routed, keyed, op, mv.To) || !admissible(tent, keyed, op, mv.To) {
			continue
		}
		markRouted(tent, keyed, op, mv.To)
		moves = append(moves, mv)
	}
	return moves
}

// admissible reports whether dst holds no route for any of op's streams.
// Keyed (partitioned) streams are exempt: their targeted routing delivers
// each tuple to exactly one replica regardless of how many nodes hold the
// table, so a shard replica (or splitter) can migrate anywhere.
func admissible(routed map[query.StreamID]map[int]bool, keyed map[query.StreamID]bool, op *query.Operator, dst int) bool {
	if !keyed[op.Out] && routed[op.Out][dst] {
		return false
	}
	for _, in := range op.Inputs {
		if keyed[in] {
			continue
		}
		if routed[in][dst] {
			return false
		}
	}
	return true
}

// markRouted records dst as holding routes for op's non-keyed streams.
func markRouted(routed map[query.StreamID]map[int]bool, keyed map[query.StreamID]bool, op *query.Operator, dst int) {
	mark := func(sid query.StreamID) {
		if keyed[sid] {
			return
		}
		m := routed[sid]
		if m == nil {
			m = map[int]bool{}
			routed[sid] = m
		}
		m[dst] = true
	}
	mark(op.Out)
	for _, in := range op.Inputs {
		mark(in)
	}
}

// seedRouted marks every stream's producer and consumer homes under the
// given placement (mirrors internal/check's routedNodes).
func seedRouted(routed map[query.StreamID]map[int]bool, keyed map[query.StreamID]bool, g *query.Graph, nodeOf []int) {
	for _, op := range g.Ops() {
		if int(op.ID) >= len(nodeOf) {
			continue
		}
		markRouted(routed, keyed, op, nodeOf[op.ID])
	}
}

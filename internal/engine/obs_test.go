package engine

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// TestMonitorOverloadLifecycle drives a one-node cluster well past its
// capacity and asserts the monitor's full observable story: an
// overload_onset event while saturated, an overload_clear event after the
// queue drains, a feasibility-headroom series that goes non-positive at
// the EWMA-estimated rates, and a Prometheus exposition carrying the
// canonical metrics.
func TestMonitorOverloadLifecycle(t *testing.T) {
	// One delay operator costing 0.02 cost-units/tuple on a capacity-1
	// node: sustainable throughput 50 tuples/s.
	b := query.NewBuilder()
	in := b.Input("I")
	b.Delay("d", 0.02, 1, in)
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := placement.NewPlan([]int{0}, 1)
	caps := []float64{1}

	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	m := cl.StartMonitor(MonitorConfig{
		Interval:      50 * time.Millisecond,
		LM:            lm,
		Plan:          plan,
		Caps:          caps,
		OverloadQueue: 15,
		TraceEvery:    25,
	})
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	// 150 tuples/s against 50/s of capacity: the queue builds at ~100/s.
	src := &SourceDriver{
		Stream: in,
		Trace:  trace.New("const", 1, []float64{150, 150}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Count:  m.SourceCounter(in),
	}
	if _, err := src.Run(600*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}

	// Wait for the queue to drain and the monitor to see the clearance.
	deadline := time.Now().Add(8 * time.Second)
	ev := m.Events()
	for ev.Count(obs.EventOverloadClear) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no overload_clear before deadline; events: %+v", ev.Events())
		}
		time.Sleep(50 * time.Millisecond)
	}

	onset, ok := ev.Find(obs.EventOverloadOnset)
	if !ok {
		t.Fatal("no overload_onset event")
	}
	if onset.Level != obs.LevelWarn {
		t.Fatalf("onset level = %s, want warn", onset.Level)
	}
	clr, _ := ev.Find(obs.EventOverloadClear)
	if clr.Seq <= onset.Seq {
		t.Fatalf("clear (seq %d) must follow onset (seq %d)", clr.Seq, onset.Seq)
	}

	// The headroom at the observed ~150 tuples/s is 1 − 150·0.02 = −2.
	head := m.Series().Series(obs.MetricNodeHeadroom, "node", "0")
	if min, ok := head.Min(); !ok || min > 0 {
		t.Fatalf("headroom min = %g (ok=%v), want ≤ 0 during overload", min, ok)
	}
	if onset.Fields["headroom"] == nil {
		t.Fatal("onset event must carry the headroom")
	}

	// Utilization must have been sampled at saturation.
	util := m.Series().Series(obs.MetricNodeUtilization, "node", "0")
	sawSaturated := false
	_, vs := util.Points()
	for _, v := range vs {
		if v >= 0.9 {
			sawSaturated = true
		}
	}
	if !sawSaturated {
		t.Fatalf("utilization series never reached saturation: %v", vs)
	}

	// Sink tuples flowed through the shared histogram path.
	if m.Registry().Histogram(obs.MetricSinkLatency, nil).Count() == 0 {
		t.Fatal("sink latency histogram is empty")
	}
	if sum, ok := cl.Collector.LatencySummary(); !ok || sum.Count == 0 {
		t.Fatalf("latency summary = %+v ok=%v", sum, ok)
	}

	// Per-tuple trace spans were sampled.
	if _, ok := ev.Find(obs.EventSpan); !ok {
		t.Fatal("no span events despite TraceEvery")
	}
	// Control-plane lifecycle appears in the log.
	if _, ok := ev.Find(obs.EventNodeConnect); !ok {
		t.Fatal("no node_connect event")
	}
	if _, ok := ev.Find(obs.EventDeploy); !ok {
		t.Fatal("no deploy event")
	}

	// Prometheus exposition carries the canonical metric families.
	var buf bytes.Buffer
	if err := m.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		obs.MetricNodeUtilization,
		obs.MetricNodeQueueDepth,
		obs.MetricNodeHeadroom,
		obs.MetricSinkLatency + "_bucket",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics output missing %s:\n%s", name, text)
		}
	}
}

// TestMonitorTracksMigration checks that a live migration keeps the
// headroom computation on the new placement and emits the three migration
// phase events in order.
func TestMonitorTracksMigration(t *testing.T) {
	g := pipeline(t, 0.002, 0.001)
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := placement.NewPlan([]int{0, 0}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	m := cl.StartMonitor(MonitorConfig{
		Interval: 25 * time.Millisecond,
		LM:       lm,
		Plan:     plan,
		Caps:     caps,
	})
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{100, 100}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Count:  m.SourceCounter(g.Inputs()[0]),
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		src.Run(5*time.Second, stop)
	}()
	time.Sleep(300 * time.Millisecond)

	// Move operator "b" to node 1 mid-stream.
	opB := query.OpID(1)
	if err := cl.MoveOperator(g, plan, opB, 1, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done

	ev := m.Events()
	install, okI := ev.Find(obs.EventMigrateInstall)
	stall, okS := ev.Find(obs.EventMigrateStall)
	remove, okR := ev.Find(obs.EventMigrateRemove)
	if !okI || !okS || !okR {
		t.Fatalf("missing migration events: install=%v stall=%v remove=%v", okI, okS, okR)
	}
	if !(install.Seq < stall.Seq && stall.Seq < remove.Seq) {
		t.Fatalf("migration phases out of order: %d %d %d", install.Seq, stall.Seq, remove.Seq)
	}

	// After the move the monitor attributes b's load to node 1: at 100
	// tuples/s node 1 carries 0.1, so its headroom settles near 0.9.
	_, v, ok := m.Series().Series(obs.MetricNodeHeadroom, "node", "1").Last()
	if !ok {
		t.Fatal("no headroom samples for node 1")
	}
	if v > 0.95 || v < 0.8 {
		t.Fatalf("node 1 headroom after migration = %g, want ≈ 0.9", v)
	}
}

package engine

import (
	"strconv"
	"sync"
	"time"

	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// MonitorConfig configures the coordinator-side observability monitor.
type MonitorConfig struct {
	// Interval between samples. Default 200ms.
	Interval time.Duration

	// Registry, Series and Events receive the metrics, sampled time series
	// and structured events; fresh instances are created for any left nil.
	Registry *obs.Registry
	Series   *obs.SeriesSet
	Events   *obs.EventLog

	// LM, Plan and Caps enable the live feasibility headroom
	// 1 − L^n_i·R̂/C_i: node coefficients L^n follow the plan (updated on
	// migrations), R̂ is the EWMA of the observed input rates. Leave LM nil
	// to monitor without headroom. Caps defaults to the in-process node
	// capacities (or 1 per node when attached to remote nodes).
	LM   *query.LoadModel
	Plan *placement.Plan
	Caps mat.Vec

	// Overload detection: onset fires when a node's windowed utilization
	// reaches OverloadUtil (default 0.95) with at least OverloadQueue queued
	// tuples (default 100); clearance fires once utilization drops below
	// OverloadUtil and the queue drains to ClearQueue (default
	// OverloadQueue/4, clamped to at least 1 so a small OverloadQueue never
	// demands a perfectly empty queue to clear). Set ClearQueue negative to
	// request an explicit empty-queue clearance threshold of 0. The queue
	// hysteresis keeps a saturated-but-draining node in the overloaded
	// state.
	OverloadUtil  float64
	OverloadQueue int
	ClearQueue    int

	// RateAlpha is the EWMA smoothing factor for source rates. Default 0.4.
	RateAlpha float64

	// LaneSeries enables per-worker-lane series (queue depth, processed
	// count, utilization, labeled node+lane) for multi-lane nodes. Off by
	// default: the simulator has no lane concept, and the lockstep
	// cross-validation requires an identical series schema from both
	// runtimes.
	LaneSeries bool

	// TraceEvery enables causal tracing: 1 in TraceEvery tuples per stream
	// (rotating per-stream offsets, so every stream is sampled) carries
	// trace context through the data plane, emitting correlated span events
	// at each hop and feeding the per-stage latency decomposition
	// histograms. 0 disables tracing; the stage series are registered
	// either way so the schema does not depend on the sampling rate.
	TraceEvery int64
}

func (cfg *MonitorConfig) applyDefaults() {
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Series == nil {
		cfg.Series = obs.NewSeriesSet(0)
	}
	if cfg.Events == nil {
		cfg.Events = obs.NewEventLog(0)
	}
	if cfg.OverloadUtil <= 0 {
		cfg.OverloadUtil = 0.95
	}
	if cfg.OverloadQueue <= 0 {
		cfg.OverloadQueue = 100
	}
	switch {
	case cfg.ClearQueue < 0:
		cfg.ClearQueue = 0 // explicit empty-queue requirement
	case cfg.ClearQueue == 0:
		cfg.ClearQueue = cfg.OverloadQueue / 4
		if cfg.ClearQueue < 1 {
			cfg.ClearQueue = 1
		}
	}
	if cfg.RateAlpha <= 0 || cfg.RateAlpha > 1 {
		cfg.RateAlpha = 0.4
	}
}

// Monitor polls a running cluster, feeding the obs registry, time series
// and event log: per-node windowed utilization, queue depth, tuple counts,
// EWMA-smoothed source rates, sink latency quantiles, and — when a load
// model is attached — the live feasibility headroom per node, with overload
// onset/clearance events derived from the samples.
type Monitor struct {
	cl  *Cluster
	cfg MonitorConfig

	sampler *obs.Sampler

	utilG  []*obs.Gauge
	queueG []*obs.Gauge
	headG  []*obs.Gauge
	injC   []*obs.Counter
	emiC   []*obs.Counter
	shedC  []*obs.Counter
	oDropC []*obs.Counter
	reconC []*obs.Counter
	noRteC []*obs.Counter

	// Per-victim-stream shed counters, created lazily when a node first
	// reports shedding on that stream (key "node/stream"). Touched only by
	// the sampling goroutine.
	shedStreamC map[string]*obs.Counter

	// WAL/recovery counters (key: node index), created lazily when a node
	// first reports an active WAL, so the default schema stays identical
	// between the simulator (no WAL) and a non-durable engine run. Touched
	// only by the sampling goroutine.
	walC map[int]*walCounters

	// Per-worker-lane series (key "node/lane"), created lazily when a
	// multi-lane node first reports lane stats and cfg.LaneSeries is set.
	// Touched only by the sampling goroutine.
	laneQ    map[string]*obs.Gauge
	laneU    map[string]*obs.Gauge
	laneP    map[string]*obs.Counter
	laneBusy map[string]float64

	latHist  *obs.Histogram
	sinkC    *obs.Counter
	latQ     map[float64]*obs.Gauge
	stages   *obs.StageSet
	stageP50 []*obs.Gauge
	stageP99 []*obs.Gauge
	lastBusy []float64
	lastElap []float64
	havePrev bool

	// stateMu guards the overload latch and staleness flags, which the
	// sampling goroutine writes and Snapshot (the elastic controller's read
	// path) copies.
	stateMu sync.Mutex
	overQ   []bool
	stale   []bool

	srcMu   sync.Mutex
	srcC    map[query.StreamID]*obs.Counter
	srcRate map[query.StreamID]*obs.EWMA
	srcG    map[query.StreamID]*obs.Gauge
	srcLast map[query.StreamID]int64
	inputs  []query.StreamID // rate-vector order = LM.G.Inputs()

	planMu sync.Mutex
	nodeOf []int
	caps   mat.Vec

	// Per-slot routed rates of keyed streams, EWMA-smoothed from the
	// cumulative PartCounts the splitter homes report — the observed skew
	// signal the controller's shard-rebalance actuator feeds on.
	partMu   sync.Mutex
	partLast map[int][]int64
	partRate map[int][]float64
	// shardG exposes each keyed stream's per-shard routed rate (slot rates
	// summed per the live partition table) as rodsp_shard_rate gauges,
	// labeled with the sharded parent operator's name and the replica index.
	shardG map[int][]*obs.Gauge

	start    time.Time
	lastTick time.Time
	stop     chan struct{}
	done     chan struct{}
}

// StartMonitor attaches a monitor to the cluster and starts its sampling
// loop. It wires the cluster's collector (latency histogram, sink counter,
// trace spans) and any in-process nodes (relay-error events, trace spans)
// to the monitor's event log, and registers itself so MoveOperator keeps
// the headroom computation tracking the live placement. Close the monitor
// before closing the cluster.
func (cl *Cluster) StartMonitor(cfg MonitorConfig) *Monitor {
	cfg.applyDefaults()
	n := len(cl.Controls)
	m := &Monitor{
		cl:      cl,
		cfg:     cfg,
		sampler: obs.NewSampler(cfg.Series),
		utilG:   make([]*obs.Gauge, n),
		queueG:  make([]*obs.Gauge, n),
		headG:   make([]*obs.Gauge, n),
		injC:    make([]*obs.Counter, n),
		emiC:    make([]*obs.Counter, n),
		shedC:   make([]*obs.Counter, n),
		oDropC:  make([]*obs.Counter, n),
		reconC:  make([]*obs.Counter, n),
		noRteC:  make([]*obs.Counter, n),

		shedStreamC: map[string]*obs.Counter{},
		walC:        map[int]*walCounters{},
		laneQ:       map[string]*obs.Gauge{},
		laneU:       map[string]*obs.Gauge{},
		laneP:       map[string]*obs.Counter{},
		laneBusy:    map[string]float64{},

		latQ:     map[float64]*obs.Gauge{},
		overQ:    make([]bool, n),
		stale:    make([]bool, n),
		lastBusy: make([]float64, n),
		lastElap: make([]float64, n),
		srcC:     map[query.StreamID]*obs.Counter{},
		srcRate:  map[query.StreamID]*obs.EWMA{},
		srcG:     map[query.StreamID]*obs.Gauge{},
		srcLast:  map[query.StreamID]int64{},
		partLast: map[int][]int64{},
		partRate: map[int][]float64{},
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.lastTick = m.start
	reg := cfg.Registry
	for i := 0; i < n; i++ {
		node := strconv.Itoa(i)
		m.utilG[i] = reg.Gauge(obs.MetricNodeUtilization, "node", node)
		m.queueG[i] = reg.Gauge(obs.MetricNodeQueueDepth, "node", node)
		m.headG[i] = reg.Gauge(obs.MetricNodeHeadroom, "node", node)
		m.headG[i].Set(1) // no observed load yet
		m.injC[i] = reg.Counter(obs.MetricNodeInjected, "node", node)
		m.emiC[i] = reg.Counter(obs.MetricNodeEmitted, "node", node)
		m.shedC[i] = reg.Counter(obs.MetricNodeShed, "node", node)
		m.oDropC[i] = reg.Counter(obs.MetricNodeOutboxDrop, "node", node)
		m.reconC[i] = reg.Counter(obs.MetricNodePeerReconnects, "node", node)
		m.noRteC[i] = reg.Counter(obs.MetricNodeNoRoute, "node", node)
		m.sampler.ProbeGauge(obs.MetricNodeUtilization, m.utilG[i], "node", node)
		m.sampler.ProbeGauge(obs.MetricNodeQueueDepth, m.queueG[i], "node", node)
		m.sampler.ProbeGauge(obs.MetricNodeHeadroom, m.headG[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodeInjected, m.injC[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodeEmitted, m.emiC[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodeShed, m.shedC[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodeOutboxDrop, m.oDropC[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodePeerReconnects, m.reconC[i], "node", node)
		m.sampler.ProbeCounter(obs.MetricNodeNoRoute, m.noRteC[i], "node", node)
	}
	m.latHist = reg.Histogram(obs.MetricSinkLatency, nil)
	m.sinkC = reg.Counter(obs.MetricSinkTuples)
	for _, p := range []float64{50, 95, 99} {
		q := "p" + strconv.FormatFloat(p, 'g', -1, 64)
		g := reg.Gauge(obs.MetricSinkLatencyQuantile, "quantile", q)
		m.latQ[p] = g
		m.sampler.ProbeGauge(obs.MetricSinkLatencyQuantile, g, "quantile", q)
	}
	m.sampler.ProbeCounter(obs.MetricSinkTuples, m.sinkC)

	// Per-stage latency decomposition: the histograms traced tuples feed at
	// each hop, plus sampled p50/p99 gauges and crossing counters per stage.
	m.stages = obs.NewStageSet(reg)
	m.stageP50 = make([]*obs.Gauge, obs.NumStages)
	m.stageP99 = make([]*obs.Gauge, obs.NumStages)
	for st := 0; st < obs.NumStages; st++ {
		name := obs.StageName(st)
		m.stageP50[st] = reg.Gauge(obs.MetricStageLatencyQuantile, "stage", name, "quantile", "p50")
		m.stageP99[st] = reg.Gauge(obs.MetricStageLatencyQuantile, "stage", name, "quantile", "p99")
		m.sampler.ProbeGauge(obs.MetricStageLatencyQuantile, m.stageP50[st], "stage", name, "quantile", "p50")
		m.sampler.ProbeGauge(obs.MetricStageLatencyQuantile, m.stageP99[st], "stage", name, "quantile", "p99")
		m.sampler.ProbeCounter(obs.MetricStageTuples,
			reg.Counter(obs.MetricStageTuples, "stage", name), "stage", name)
	}

	if cfg.LM != nil {
		m.inputs = cfg.LM.G.Inputs()
		for _, in := range m.inputs {
			m.sourceCounterLocked(in)
		}
		// Per-shard routed-rate gauges for every keyed shard group, so a
		// viewer can group replicas under the operator that was sharded.
		if groups, err := query.ShardGroups(cfg.LM.G); err == nil && len(groups) > 0 {
			m.shardG = map[int][]*obs.Gauge{}
			for _, grp := range groups {
				parent := cfg.LM.G.Op(grp.Replicas[0]).ShardParent
				gs := make([]*obs.Gauge, len(grp.Replicas))
				for i := range gs {
					shard := strconv.Itoa(i)
					gs[i] = reg.Gauge(obs.MetricShardRate, "op", parent, "shard", shard)
					m.sampler.ProbeGauge(obs.MetricShardRate, gs[i], "op", parent, "shard", shard)
				}
				m.shardG[int(grp.Stream)] = gs
			}
		}
	}
	if cfg.Plan != nil {
		m.nodeOf = make([]int, len(cfg.Plan.NodeOf))
		copy(m.nodeOf, cfg.Plan.NodeOf)
	}
	m.caps = cfg.Caps
	if m.caps == nil {
		m.caps = mat.NewVec(n)
		for i := range m.caps {
			m.caps[i] = 1
			if i < len(cl.Nodes) && cl.Nodes[i] != nil {
				m.caps[i] = cl.Nodes[i].capacity
			}
		}
	}

	if cl.Collector != nil {
		cl.Collector.SetObserver(m.latHist, m.sinkC, m.stages, cfg.Events, cfg.TraceEvery)
	}
	for _, nd := range cl.Nodes {
		if nd != nil {
			nd.SetObserver(cfg.Events, m.stages, cfg.TraceEvery)
		}
	}
	cl.SetEvents(cfg.Events)
	cl.monitor = m

	go m.run()
	return m
}

// Registry returns the metrics registry the monitor feeds.
func (m *Monitor) Registry() *obs.Registry { return m.cfg.Registry }

// Series returns the sampled time-series set.
func (m *Monitor) Series() *obs.SeriesSet { return m.cfg.Series }

// Events returns the event log.
func (m *Monitor) Events() *obs.EventLog { return m.cfg.Events }

// Stages returns the per-stage latency decomposition traced tuples feed.
func (m *Monitor) Stages() *obs.StageSet { return m.stages }

// SourceCounter returns the injection counter for one input stream; wire it
// to the matching SourceDriver.Count so the monitor can estimate R̂. The
// counter (and its rate series) is created on first use.
func (m *Monitor) SourceCounter(sid query.StreamID) *obs.Counter {
	m.srcMu.Lock()
	defer m.srcMu.Unlock()
	return m.sourceCounterLocked(sid)
}

func (m *Monitor) sourceCounterLocked(sid query.StreamID) *obs.Counter {
	if c, ok := m.srcC[sid]; ok {
		return c
	}
	label := strconv.Itoa(int(sid))
	if m.cfg.LM != nil {
		if st := m.cfg.LM.G.Stream(sid); st != nil && st.Name != "" {
			label = st.Name
		}
	}
	c := m.cfg.Registry.Counter(obs.MetricSourceTuples, "stream", label)
	g := m.cfg.Registry.Gauge(obs.MetricSourceRate, "stream", label)
	m.srcC[sid] = c
	m.srcRate[sid] = obs.NewEWMA(m.cfg.RateAlpha)
	m.srcG[sid] = g
	m.sampler.ProbeGauge(obs.MetricSourceRate, g, "stream", label)
	return c
}

// setOp tracks a migration: MoveOperator calls it after updating the plan
// so headroom follows the live placement without racing plan mutations.
func (m *Monitor) setOp(opID query.OpID, node int) {
	m.planMu.Lock()
	if int(opID) < len(m.nodeOf) {
		m.nodeOf[opID] = node
	}
	m.planMu.Unlock()
}

// MonitorSnapshot is a point-in-time copy of the monitor's view of the
// cluster, consumed by the elastic controller's decision cycle.
type MonitorSnapshot struct {
	// Utils, Queues and Headrooms are the per-node windowed utilization,
	// queue depth and live feasibility headroom gauges.
	Utils     []float64
	Queues    []float64
	Headrooms []float64
	// Overloaded is the hysteresis overload latch; Stale marks nodes whose
	// stats went unreachable (gauges zeroed, latch cleared).
	Overloaded []bool
	Stale      []bool
	// Inputs is the load model's rate-vector order and Rates the matching
	// EWMA-smoothed source rates R̂ (nil without an attached load model).
	Inputs []query.StreamID
	Rates  mat.Vec
	// NodeOf is the live operator placement as tracked across migrations;
	// Caps the node capacities used in the headroom computation.
	NodeOf []int
	Caps   mat.Vec
	// SlotRates holds, per keyed stream, the EWMA-smoothed per-slot routed
	// rates (tuples/second) — empty until a sharded stream reports counts.
	SlotRates map[int][]float64
}

// Snapshot copies the monitor's current view of the cluster. Safe to call
// from any goroutine.
func (m *Monitor) Snapshot() MonitorSnapshot {
	n := len(m.utilG)
	s := MonitorSnapshot{
		Utils:     make([]float64, n),
		Queues:    make([]float64, n),
		Headrooms: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.Utils[i] = m.utilG[i].Value()
		s.Queues[i] = m.queueG[i].Value()
		s.Headrooms[i] = m.headG[i].Value()
	}
	m.stateMu.Lock()
	s.Overloaded = append([]bool(nil), m.overQ...)
	s.Stale = append([]bool(nil), m.stale...)
	m.stateMu.Unlock()
	m.srcMu.Lock()
	if len(m.inputs) > 0 {
		s.Inputs = append([]query.StreamID(nil), m.inputs...)
		s.Rates = mat.NewVec(len(m.inputs))
		for k, in := range m.inputs {
			if e, ok := m.srcRate[in]; ok {
				s.Rates[k] = e.Value()
			}
		}
	}
	m.srcMu.Unlock()
	m.planMu.Lock()
	s.NodeOf = append([]int(nil), m.nodeOf...)
	m.planMu.Unlock()
	s.Caps = append(mat.Vec(nil), m.caps...)
	m.partMu.Lock()
	if len(m.partRate) > 0 {
		s.SlotRates = make(map[int][]float64, len(m.partRate))
		for sid, r := range m.partRate {
			s.SlotRates[sid] = append([]float64(nil), r...)
		}
	}
	m.partMu.Unlock()
	return s
}

// Close stops the sampling loop and waits for it to exit.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

func (m *Monitor) run() {
	defer close(m.done)
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-tick.C:
			m.tick(now)
		}
	}
}

// walCounters bundles one durable node's WAL/recovery series.
type walCounters struct {
	records, syncs, bytes, checkpoints *obs.Counter
	replayed, dedupDropped             *obs.Counter
}

// walTick feeds one durable node's WAL/recovery counters, registering the
// series on the node's first WAL-active report.
func (m *Monitor) walTick(node int, s *NodeStats) {
	wc, ok := m.walC[node]
	if !ok {
		reg, lbl := m.cfg.Registry, strconv.Itoa(node)
		wc = &walCounters{
			records:      reg.Counter(obs.MetricWALRecords, "node", lbl),
			syncs:        reg.Counter(obs.MetricWALSyncs, "node", lbl),
			bytes:        reg.Counter(obs.MetricWALBytes, "node", lbl),
			checkpoints:  reg.Counter(obs.MetricWALCheckpoints, "node", lbl),
			replayed:     reg.Counter(obs.MetricRecoveryReplayed, "node", lbl),
			dedupDropped: reg.Counter(obs.MetricRecoveryDedupDropped, "node", lbl),
		}
		m.sampler.ProbeCounter(obs.MetricWALRecords, wc.records, "node", lbl)
		m.sampler.ProbeCounter(obs.MetricWALSyncs, wc.syncs, "node", lbl)
		m.sampler.ProbeCounter(obs.MetricWALBytes, wc.bytes, "node", lbl)
		m.sampler.ProbeCounter(obs.MetricWALCheckpoints, wc.checkpoints, "node", lbl)
		m.sampler.ProbeCounter(obs.MetricRecoveryReplayed, wc.replayed, "node", lbl)
		m.sampler.ProbeCounter(obs.MetricRecoveryDedupDropped, wc.dedupDropped, "node", lbl)
		m.walC[node] = wc
	}
	wc.records.Store(s.WALRecords)
	wc.syncs.Store(s.WALSyncs)
	wc.bytes.Store(s.WALBytes)
	wc.checkpoints.Store(s.Checkpoints)
	wc.replayed.Store(s.Replayed)
	wc.dedupDropped.Store(s.DedupDropped)
}

// laneTick feeds the per-worker-lane series of one multi-lane node: queue
// depth (queued + in-flight), cumulative processed count, and windowed
// utilization from the lane's busy-seconds delta over the node's elapsed
// delta. prevElap is the node's elapsed seconds at the previous tick (0 on
// the first, making the first window the whole run so far).
func (m *Monitor) laneTick(node int, s *NodeStats, prevElap float64) {
	nodeLbl := strconv.Itoa(node)
	dElap := s.ElapsedSec - prevElap
	for _, ls := range s.Lanes {
		laneLbl := strconv.Itoa(ls.Lane)
		key := nodeLbl + "/" + laneLbl
		qg, ok := m.laneQ[key]
		if !ok {
			reg := m.cfg.Registry
			qg = reg.Gauge(obs.MetricLaneQueueDepth, "node", nodeLbl, "lane", laneLbl)
			m.sampler.ProbeGauge(obs.MetricLaneQueueDepth, qg, "node", nodeLbl, "lane", laneLbl)
			m.laneQ[key] = qg
			ug := reg.Gauge(obs.MetricLaneUtilization, "node", nodeLbl, "lane", laneLbl)
			m.sampler.ProbeGauge(obs.MetricLaneUtilization, ug, "node", nodeLbl, "lane", laneLbl)
			m.laneU[key] = ug
			pc := reg.Counter(obs.MetricLaneProcessed, "node", nodeLbl, "lane", laneLbl)
			m.sampler.ProbeCounter(obs.MetricLaneProcessed, pc, "node", nodeLbl, "lane", laneLbl)
			m.laneP[key] = pc
		}
		qg.Set(float64(ls.Queue + ls.InFlight))
		m.laneP[key].Store(ls.Processed)
		util := 0.0
		if dElap > 0 {
			util = (ls.BusySec - m.laneBusy[key]) / dElap
			if util < 0 {
				util = 0
			}
			if util > 1 {
				util = 1
			}
		}
		m.laneBusy[key] = ls.BusySec
		m.laneU[key].Set(util)
	}
}

func (m *Monitor) tick(now time.Time) {
	ev := m.cfg.Events
	dt := now.Sub(m.lastTick).Seconds()
	m.lastTick = now
	if dt <= 0 {
		return
	}

	sts, err := m.cl.Stats()
	if err != nil {
		ev.Emit(obs.LevelWarn, obs.EventControlError, "op", "stats", "err", err.Error())
		return
	}

	// Per-node gauges: windowed utilization from busy-time deltas (the
	// control plane reports cumulative busy/elapsed), queue depth, counts.
	// Unreachable nodes report nil stats (Cluster.Stats is partial); they
	// are marked stale: utilization/queue gauges zeroed and any overload
	// latch cleared, so nothing — controller included — keeps reacting to
	// frozen last-observed values or chases a dead node.
	utils := make([]float64, len(sts))
	for i, s := range sts {
		if s == nil {
			if !m.stale[i] {
				m.stateMu.Lock()
				wasOver := m.overQ[i]
				m.overQ[i] = false
				m.stale[i] = true
				m.stateMu.Unlock()
				m.utilG[i].Set(0)
				m.queueG[i].Set(0)
				m.headG[i].Set(0)
				ev.Emit(obs.LevelWarn, obs.EventNodeStale,
					"node", i, "state", "stale", "was_overloaded", wasOver)
			}
			continue
		}
		if m.stale[i] {
			m.stateMu.Lock()
			m.stale[i] = false
			m.stateMu.Unlock()
			ev.Emit(obs.LevelInfo, obs.EventNodeStale, "node", i, "state", "fresh")
		}
		busy := s.Utilization * s.ElapsedSec
		util := s.Utilization
		if m.havePrev && s.ElapsedSec > m.lastElap[i] {
			util = (busy - m.lastBusy[i]) / (s.ElapsedSec - m.lastElap[i])
			if util < 0 {
				util = 0
			}
			if util > 1 {
				util = 1
			}
		}
		if m.cfg.LaneSeries && len(s.Lanes) > 0 {
			m.laneTick(i, s, m.lastElap[i])
		}
		if s.WALActive {
			m.walTick(i, s)
		}
		m.lastBusy[i], m.lastElap[i] = busy, s.ElapsedSec
		utils[i] = util
		m.utilG[i].Set(util)
		m.queueG[i].Set(float64(s.QueueLen))
		m.injC[i].Store(s.Injected)
		m.emiC[i].Store(s.Emitted)
		m.shedC[i].Store(s.Shed)
		m.oDropC[i].Store(s.OutboxDropped)
		m.reconC[i].Store(s.PeerReconnects)
		m.noRteC[i].Store(s.DroppedNoRoute)
		for sid, cnt := range s.ShedByStream {
			node, stream := strconv.Itoa(i), strconv.Itoa(sid)
			key := node + "/" + stream
			c, ok := m.shedStreamC[key]
			if !ok {
				c = m.cfg.Registry.Counter(obs.MetricStreamShed, "node", node, "stream", stream)
				m.sampler.ProbeCounter(obs.MetricStreamShed, c, "node", node, "stream", stream)
				m.shedStreamC[key] = c
			}
			c.Store(cnt)
		}
	}
	m.havePrev = true

	// Per-slot keyed-stream rates: PartCounts deltas over the window,
	// EWMA-smoothed per slot. Summing over nodes is safe — only a
	// splitter's home accumulates counts for its stream.
	partTotals := map[int][]int64{}
	for _, s := range sts {
		if s == nil {
			continue
		}
		for sid, counts := range s.PartCounts {
			tot := partTotals[sid]
			if len(tot) < len(counts) {
				tot = append(tot, make([]int64, len(counts)-len(tot))...)
			}
			for j, c := range counts {
				tot[j] += c
			}
			partTotals[sid] = tot
		}
	}
	m.partMu.Lock()
	for sid, tot := range partTotals {
		last := m.partLast[sid]
		rate := m.partRate[sid]
		if len(last) != len(tot) {
			last = make([]int64, len(tot))
			rate = make([]float64, len(tot))
		}
		for j := range tot {
			obsRate := float64(tot[j]-last[j]) / dt
			if obsRate < 0 {
				obsRate = 0 // counter reset (redeploy)
			}
			rate[j] += m.cfg.RateAlpha * (obsRate - rate[j])
			last[j] = tot[j]
		}
		m.partLast[sid] = last
		m.partRate[sid] = rate
	}
	// Fold slot rates into per-shard gauges through the live partition
	// table, so /series carries each replica's routed share.
	for sid, rate := range m.partRate {
		gs := m.shardG[sid]
		if gs == nil {
			continue
		}
		slots := m.cl.ShardSlotsOf(query.StreamID(sid))
		sums := make([]float64, len(gs))
		for j, sh := range slots {
			if j < len(rate) && sh >= 0 && sh < len(sums) {
				sums[sh] += rate[j]
			}
		}
		for i, g := range gs {
			g.Set(sums[i])
		}
	}
	m.partMu.Unlock()

	// Source rates: counter deltas over the window, EWMA-smoothed into R̂.
	m.srcMu.Lock()
	for sid, c := range m.srcC {
		cur := c.Value()
		m.srcRate[sid].Observe(float64(cur-m.srcLast[sid]) / dt)
		m.srcLast[sid] = cur
		m.srcG[sid].Set(m.srcRate[sid].Value())
	}
	// Feasibility headroom 1 − L^n_i·R̂/C_i at the smoothed rate point.
	if m.cfg.LM != nil && m.nodeOf != nil {
		rhat := mat.NewVec(len(m.inputs))
		for k, in := range m.inputs {
			rhat[k] = m.srcRate[in].Value()
		}
		m.srcMu.Unlock()
		if x, err := m.cfg.LM.ResolveVars(rhat); err == nil {
			opLoads := m.cfg.LM.Loads(x)
			loads := make([]float64, len(sts))
			m.planMu.Lock()
			for op, node := range m.nodeOf {
				if node >= 0 && node < len(loads) {
					loads[node] += opLoads[op]
				}
			}
			m.planMu.Unlock()
			for i := range loads {
				if m.stale[i] {
					continue // gauge pinned at 0 until the node recovers
				}
				cap := 1.0
				if i < len(m.caps) && m.caps[i] > 0 {
					cap = m.caps[i]
				}
				m.headG[i].Set(1 - loads[i]/cap)
			}
		}
	} else {
		m.srcMu.Unlock()
	}

	// Sink latency quantiles from the cumulative histogram.
	for p, g := range m.latQ {
		if v, ok := m.latHist.Quantile(p); ok {
			g.Set(v)
		}
	}

	// Per-stage latency quantiles from the decomposition histograms.
	for st := 0; st < obs.NumStages; st++ {
		h := m.stages.Hist(st)
		if v, ok := h.Quantile(50); ok {
			m.stageP50[st].Set(v)
		}
		if v, ok := h.Quantile(99); ok {
			m.stageP99[st].Set(v)
		}
	}

	// Overload onset/clearance with queue hysteresis. Stale nodes were
	// already un-latched above.
	for i, s := range sts {
		if s == nil {
			continue
		}
		m.stateMu.Lock()
		var onset, clear bool
		if !m.overQ[i] && utils[i] >= m.cfg.OverloadUtil && s.QueueLen >= m.cfg.OverloadQueue {
			m.overQ[i] = true
			onset = true
		} else if m.overQ[i] && utils[i] < m.cfg.OverloadUtil && s.QueueLen <= m.cfg.ClearQueue {
			m.overQ[i] = false
			clear = true
		}
		m.stateMu.Unlock()
		if onset {
			ev.Emit(obs.LevelWarn, obs.EventOverloadOnset,
				"node", i, "util", utils[i], "queue", s.QueueLen,
				"headroom", m.headG[i].Value())
		} else if clear {
			ev.Emit(obs.LevelInfo, obs.EventOverloadClear,
				"node", i, "util", utils[i], "queue", s.QueueLen,
				"headroom", m.headG[i].Value())
		}
	}

	m.sampler.Sample(now.Sub(m.start).Seconds())
}

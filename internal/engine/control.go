package engine

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// Control plane: JSON request handling plus the route mutators. Mutators
// serialize on n.mu, clone the current route snapshot, edit the clone and
// publish it with one atomic store — the data plane keeps running against
// the old snapshot until the successor lands.

// controlRequest is one JSON control-plane message.
type controlRequest struct {
	Cmd      string         `json:"cmd"`
	Spec     *NodeSpec      `json:"spec,omitempty"`
	Op       *OpSpec        `json:"op,omitempty"`
	OpID     *int           `json:"opId,omitempty"`
	Routes   map[int][]Dest `json:"routes,omitempty"`
	Part     *PartitionSpec `json:"part,omitempty"`
	StallSec *float64       `json:"stallSec,omitempty"`
	Fault    *FaultSpec     `json:"fault,omitempty"`
}

// FaultSpec is the control-plane fault-injection command: sever/drop/delay
// an outbound link, clear faults, or kill the node outright (the process
// answers OK, then closes — restart it externally to recover).
type FaultSpec struct {
	Addr    string  `json:"addr,omitempty"`
	Sever   bool    `json:"sever,omitempty"`
	Drop    bool    `json:"drop,omitempty"`
	DelayMs float64 `json:"delayMs,omitempty"`
	Clear   bool    `json:"clear,omitempty"`
	Kill    bool    `json:"kill,omitempty"`
}

// ControlResponse answers a control request.
type ControlResponse struct {
	OK    bool       `json:"ok"`
	Err   string     `json:"err,omitempty"`
	Stats *NodeStats `json:"stats,omitempty"`
}

// LaneStats is one worker lane's slice of the node metrics (reported only
// when the node runs more than one lane).
type LaneStats struct {
	Lane      int     `json:"lane"`
	Queue     int     `json:"queue"`
	InFlight  int     `json:"inFlight,omitempty"`
	Processed int64   `json:"processed,omitempty"`
	Shed      int64   `json:"shed,omitempty"`
	BusySec   float64 `json:"busySec,omitempty"`
}

// NodeStats is the metrics snapshot the control plane reports.
type NodeStats struct {
	NodeID      int     `json:"nodeId"`
	Utilization float64 `json:"utilization"`
	QueueLen    int     `json:"queueLen"`
	Injected    int64   `json:"injected"`
	Emitted     int64   `json:"emitted"`
	ElapsedSec  float64 `json:"elapsedSec"`

	// WorkerInFlight counts tuples the workers have dequeued but not yet
	// finished processing and routing: admitted work that QueueLen no
	// longer covers (a costly batch can hold it for hundreds of ms).
	WorkerInFlight int64 `json:"workerInFlight,omitempty"`

	// Workers is the node's worker-lane count; Lanes breaks the queue,
	// in-flight, processed and shed figures down per lane when Workers > 1
	// (so skewed lane assignment is visible).
	Workers int         `json:"workers,omitempty"`
	Lanes   []LaneStats `json:"lanes,omitempty"`

	// Load-shedding accounting: tuples refused (or evicted from) the
	// bounded ingress queue, total and per stream.
	Shed         int64         `json:"shed,omitempty"`
	ShedByStream map[int]int64 `json:"shedByStream,omitempty"`

	// DroppedNoRoute counts inbound tuples discarded because their stream
	// had neither a local subscription nor a relay route (a routing gap —
	// each affected stream also emits one no_route warn event).
	DroppedNoRoute int64 `json:"droppedNoRoute,omitempty"`

	// PartCounts reports, per keyed stream, the cumulative tuples routed
	// through each partition slot. Only a splitter's home accumulates
	// counts (every keyed tuple crosses it exactly once), so summing over
	// nodes never double-counts.
	PartCounts map[int][]int64 `json:"partCounts,omitempty"`

	// Outbox accounting summed over peers: enqueued == sent + dropped +
	// pending at quiescence. Reconnects counts links re-established after
	// a failure; SendMaxMs is the worst wall time one send() spent handing
	// a tuple to an outbox (the non-blocking-worker-path guarantee).
	OutboxEnqueued int64   `json:"outboxEnqueued,omitempty"`
	OutboxSent     int64   `json:"outboxSent,omitempty"`
	OutboxDropped  int64   `json:"outboxDropped,omitempty"`
	OutboxPending  int64   `json:"outboxPending,omitempty"`
	PeerReconnects int64   `json:"peerReconnects,omitempty"`
	SendMaxMs      float64 `json:"sendMaxMs,omitempty"`

	// Per-operator measured cost and selectivity (the Section 7.1 trial-run
	// statistics used to build load models).
	OpCost map[int]float64 `json:"opCost,omitempty"`
	OpSel  map[int]float64 `json:"opSel,omitempty"`

	// Durability accounting (only when the node runs a WAL). WALRecords /
	// WALSyncs / WALBytes mirror the log's counters; Checkpoints counts
	// landed (drained-moment) checkpoints; Replayed is the tuple count
	// re-admitted from the WAL at the last recovery; DedupDropped counts
	// duplicate tuples discarded by the per-stream watermarks (re-sent
	// retained batches after a restart); Recovered marks a node that
	// restored state or backlog from a prior incarnation's WAL directory.
	WALActive    bool  `json:"walActive,omitempty"`
	WALRecords   int64 `json:"walRecords,omitempty"`
	WALSyncs     int64 `json:"walSyncs,omitempty"`
	WALBytes     int64 `json:"walBytes,omitempty"`
	Checkpoints  int64 `json:"checkpoints,omitempty"`
	Replayed     int64 `json:"replayed,omitempty"`
	DedupDropped int64 `json:"dedupDropped,omitempty"`
	Recovered    bool  `json:"recovered,omitempty"`
}

func (n *Node) serveControl(br *bufio.Reader, conn net.Conn) {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(br)
	for {
		var req controlRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := n.handleControl(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handleControl(req *controlRequest) *ControlResponse {
	switch req.Cmd {
	case "deploy":
		if req.Spec == nil {
			return &ControlResponse{Err: "deploy without spec"}
		}
		if err := n.deploy(req.Spec); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		n.persistManifest()
		return &ControlResponse{OK: true}
	case "start":
		n.mu.Lock()
		n.startNano.Store(time.Now().UnixNano())
		n.busy.Store(0)
		n.injected.Store(0)
		n.emitted.Store(0)
		for _, l := range n.lanes {
			l.busy.Store(0)
		}
		n.started.Store(true)
		n.mu.Unlock()
		n.persistManifest()
		return &ControlResponse{OK: true}
	case "stats":
		return &ControlResponse{OK: true, Stats: n.Stats()}
	case "addop":
		if req.Op == nil {
			return &ControlResponse{Err: "addop without op"}
		}
		n.addOp(req.Op, req.Routes)
		return &ControlResponse{OK: true}
	case "removeop":
		if req.OpID == nil {
			return &ControlResponse{Err: "removeop without opId"}
		}
		if err := n.removeOp(*req.OpID, req.Routes); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "repart":
		if req.Part == nil {
			return &ControlResponse{Err: "repart without partition spec"}
		}
		if err := n.repart(req.Part); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "stall":
		if req.StallSec == nil || *req.StallSec < 0 {
			return &ControlResponse{Err: "stall needs a non-negative duration"}
		}
		n.stall(*req.StallSec)
		return &ControlResponse{OK: true}
	case "fault":
		if req.Fault == nil {
			return &ControlResponse{Err: "fault without spec"}
		}
		switch f := req.Fault; {
		case f.Kill:
			// Answer first, then die: the brief delay lets the OK response
			// flush before the listener and connections are torn down.
			go func() {
				time.Sleep(20 * time.Millisecond)
				n.Close()
			}()
		case f.Clear:
			n.ClearLinkFault(f.Addr)
		default:
			if f.Addr == "" {
				return &ControlResponse{Err: "fault needs an addr (or clear/kill)"}
			}
			n.SetLinkFault(f.Addr, LinkFault{
				Sever: f.Sever,
				Drop:  f.Drop,
				Delay: time.Duration(f.DelayMs * float64(time.Millisecond)),
			})
		}
		return &ControlResponse{OK: true}
	case "stop":
		n.started.Store(false)
		n.persistManifest()
		return &ControlResponse{OK: true}
	case "restart":
		// Like kill, but flags the intent: a supervisor (rodnode's main
		// loop, or the coordinator's RestartNode) observes
		// RestartRequested and recreates the node on the same address and
		// WAL directory, which replays the log and recovers.
		n.restartIntent.Store(true)
		go func() {
			time.Sleep(20 * time.Millisecond)
			n.Close()
		}()
		return &ControlResponse{OK: true}
	default:
		return &ControlResponse{Err: fmt.Sprintf("unknown command %q", req.Cmd)}
	}
}

func (n *Node) deploy(spec *NodeSpec) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started.Load() {
		return errors.New("engine: cannot deploy while started")
	}
	rs := emptyRouteState()
	rs.spec = spec
	for i := range spec.Parts {
		rs.parts[spec.Parts[i].Stream] = newPartTable(&spec.Parts[i])
	}
	for _, os := range spec.Ops {
		lo := &liveOp{spec: os, sideOf: map[int]int{}}
		for i, in := range os.Inputs {
			if i < 2 {
				lo.sideOf[in] = i
			}
		}
		rs.ops[os.ID] = lo
	}
	for sid, dests := range spec.Routes {
		for _, d := range dests {
			if d.Local {
				rs.subs[sid] = append(rs.subs[sid], d.LocalOp)
			} else {
				rs.fwd[sid] = append(rs.fwd[sid], d)
			}
		}
	}
	for sid, x := range spec.XferCost {
		rs.xfer[sid] = x
	}
	rs.computeLanes(n.workers)
	n.route.Store(rs)
	// The durable peer set may have changed with the spec; outboxes created
	// under the previous route must not keep a stale durability mode.
	n.refreshOutboxDurability()
	return nil
}

// addOp installs one operator at runtime and merges the supplied routes
// (local subscriptions and forwards), deduplicating existing entries.
func (n *Node) addOp(spec *OpSpec, routes map[int][]Dest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rs := n.route.Load().clone()
	lo := &liveOp{spec: *spec, sideOf: map[int]int{}}
	for i, in := range spec.Inputs {
		if i < 2 {
			lo.sideOf[in] = i
		}
	}
	rs.ops[spec.ID] = lo
	rs.mergeRoutes(routes)
	rs.computeLanes(n.workers)
	n.route.Store(rs)
}

// removeOp uninstalls one operator: its local subscriptions disappear and
// the given relay routes take over its input streams (forwarding in-flight
// and future tuples toward the new home).
func (n *Node) removeOp(id int, relay map[int][]Dest) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	rs := n.route.Load().clone()
	if _, ok := rs.ops[id]; !ok {
		return fmt.Errorf("engine: operator %d not deployed here", id)
	}
	delete(rs.ops, id)
	for sid, subs := range rs.subs {
		kept := subs[:0]
		for _, op := range subs {
			if op != id {
				kept = append(kept, op)
			}
		}
		rs.subs[sid] = kept
	}
	// Tuples on the removed operator's input streams now relay to its new
	// home — both tuples arriving from the network (relays, kept separate
	// from producer forwards so they never loop: a relay target consumes
	// locally and installs no relay of its own) and tuples produced by
	// co-located upstream operators (fwd).
	for sid, dests := range relay {
		for _, d := range dests {
			if d.Local {
				continue
			}
			if !hasDest(rs.relays[sid], d.Addr) {
				rs.relays[sid] = append(rs.relays[sid], d)
			}
			if !hasDest(rs.fwd[sid], d.Addr) {
				rs.fwd[sid] = append(rs.fwd[sid], d)
			}
			// A migrating shard replica: repoint its shard slot at the new
			// home and record the per-op relay, so keyed tuples — queued,
			// in-flight, or arriving from peers with stale tables — follow
			// it. (The blanket relays/fwd entries above are inert for
			// partitioned streams, whose routing bypasses those maps.)
			if pt := rs.parts[sid]; pt != nil {
				for i, opID := range pt.ops {
					if opID == id && pt.shards[i].Local && pt.shards[i].LocalOp == id {
						pt.shards[i] = Dest{Addr: d.Addr}
					}
				}
				pt.relay[id] = d.Addr
			}
		}
	}
	rs.computeLanes(n.workers)
	n.route.Store(rs)
	return nil
}

// repart installs or replaces the keyed routing table of one sharded
// stream at runtime (slot reassignment, or a post-migration table push).
// Per-slot counters survive the swap so observed slot rates keep
// accumulating; relay entries for replicas the new table marks local
// again are retired.
func (n *Node) repart(ps *PartitionSpec) error {
	if ps.K < 1 || len(ps.Shards) != ps.K || len(ps.Ops) != ps.K {
		return fmt.Errorf("engine: repart stream %d: malformed table (k=%d, %d shards, %d ops)",
			ps.Stream, ps.K, len(ps.Shards), len(ps.Ops))
	}
	for _, s := range ps.Slots {
		if s < 0 || s >= ps.K {
			return fmt.Errorf("engine: repart stream %d: slot shard %d outside [0,%d)", ps.Stream, s, ps.K)
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rs := n.route.Load().clone()
	pt := rs.parts[ps.Stream]
	if pt == nil {
		rs.parts[ps.Stream] = newPartTable(ps)
		n.route.Store(rs)
		return nil
	}
	pt.parent = ps.Parent
	pt.k = ps.K
	pt.slots = append([]int(nil), ps.Slots...)
	pt.shards = append([]Dest(nil), ps.Shards...)
	pt.ops = append([]int(nil), ps.Ops...)
	if len(pt.counts) != len(pt.slots) {
		pt.counts = make([]int64, len(pt.slots))
	}
	for i, d := range pt.shards {
		if d.Local {
			delete(pt.relay, pt.ops[i])
		}
	}
	n.route.Store(rs)
	return nil
}

func hasDest(dests []Dest, addr string) bool {
	for _, d := range dests {
		if !d.Local && d.Addr == addr {
			return true
		}
	}
	return false
}

// mergeRoutes merges route entries into the (cloned, unpublished) snapshot,
// skipping exact duplicates.
func (rs *routeState) mergeRoutes(routes map[int][]Dest) {
	for sid, dests := range routes {
		for _, d := range dests {
			if d.Local {
				dup := false
				for _, existing := range rs.subs[sid] {
					if existing == d.LocalOp {
						dup = true
					}
				}
				if !dup {
					rs.subs[sid] = append(rs.subs[sid], d.LocalOp)
				}
			} else {
				dup := false
				for _, existing := range rs.fwd[sid] {
					if existing.Addr == d.Addr {
						dup = true
					}
				}
				if !dup {
					rs.fwd[sid] = append(rs.fwd[sid], d)
				}
			}
		}
	}
}

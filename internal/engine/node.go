package engine

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/stats"
	"rodsp/internal/wal"
)

// ShedPolicy selects which tuple is sacrificed when the bounded ingress
// queue is full.
type ShedPolicy int

const (
	// DropNewest rejects the arriving tuple (default: keeps the oldest
	// work, preserving FIFO latency for tuples already admitted).
	DropNewest ShedPolicy = iota
	// DropOldest evicts the head of the queue to admit the arrival
	// (bounds staleness: fresh tuples win over stale backlog).
	DropOldest
)

func (p ShedPolicy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "drop-newest"
}

// ParseShedPolicy parses "drop-newest" | "drop-oldest".
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "drop-newest":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return DropNewest, fmt.Errorf("engine: unknown shed policy %q (want drop-newest|drop-oldest)", s)
	}
}

// NodeConfig tunes the node's data-plane resilience knobs. The zero value
// selects the defaults noted on each field.
type NodeConfig struct {
	// IngressCap bounds the work queue; arrivals beyond it are shed per
	// ShedPolicy. With W worker lanes each lane is bounded at
	// ceil(IngressCap/W). <= 0 selects DefaultIngressCap.
	IngressCap int
	// ShedPolicy picks the victim when the ingress queue is full.
	ShedPolicy ShedPolicy
	// OutboxCap bounds each per-peer outbox; overflow drops with a
	// counter. With W lanes each lane's SPSC ring holds ceil(OutboxCap/W).
	// <= 0 selects DefaultOutboxCap.
	OutboxCap int
	// BackoffBase/BackoffMax shape the reconnect schedule
	// (base·2^attempt capped at max, ±25% jitter). Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DialTimeout bounds each outbox dial. Default 2s.
	DialTimeout time.Duration
	// FlushTimeout is the per-flush write deadline, so a stalled (but not
	// dead) peer surfaces as a link failure. Default 2s.
	FlushTimeout time.Duration
	// BatchMax bounds how many tuples one lock acquisition may move on the
	// hot path: an ingress admission chunk, a worker dequeue run, and an
	// outbox wire batch. 1 restores the per-tuple hot path (the
	// pre-batching baseline rodload measures against). <= 0 selects
	// DefaultBatchMax.
	BatchMax int
	// Workers is the worker-lane count: parallel data-plane shards, each
	// with its own bounded queue, shed accounting and worker goroutine
	// (see lane.go for the (stream, key) → lane assignment). <= 0 selects
	// a single lane — the deterministic legacy data plane; deployments
	// that want one lane per core pass runtime.GOMAXPROCS(0). Capped at
	// maxWorkers.
	Workers int
	// WALDir enables the per-node durability layer: ingress batches from
	// durable peers are WAL-logged (fsync-batched) before admission and
	// acked back so senders release their retained copies, and a restart
	// with the same WALDir recovers the deployed spec, operator state and
	// the unprocessed backlog (see durable.go). Empty disables durability
	// (the legacy volatile data plane).
	WALDir string
	// CheckpointEvery is the interval between checkpoint attempts; a
	// checkpoint only lands at a drained moment (empty lanes, empty
	// outboxes), truncating the WAL behind it. <= 0 selects 100ms when
	// WALDir is set.
	CheckpointEvery time.Duration
	// WALSegmentBytes overrides the WAL segment size (tests). 0 = default.
	WALSegmentBytes int
}

// Default data-plane bounds.
const (
	DefaultIngressCap = 100000
	DefaultOutboxCap  = 4096
	DefaultBatchMax   = 256
)

func (cfg *NodeConfig) applyDefaults() {
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = DefaultIngressCap
	}
	if cfg.OutboxCap <= 0 {
		cfg.OutboxCap = DefaultOutboxCap
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 2 * time.Second
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = DefaultBatchMax
	}
	if cfg.BatchMax > MaxBatchWire {
		cfg.BatchMax = MaxBatchWire
	}
	cfg.Workers = resolveWorkers(cfg.Workers)
	if cfg.WALDir != "" && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 100 * time.Millisecond
	}
}

// Node is one engine process: it listens for control and tuple connections,
// hosts deployed operators, and runs a virtual CPU of the configured
// capacity (cost-units of operator work completed per wall second), shared
// by its worker lanes. Routing state is a copy-on-write snapshot (n.route)
// so the data plane never locks against the control plane; counters are
// atomics aggregated by Stats.
type Node struct {
	capacity float64
	cfg      NodeConfig
	ln       net.Listener
	workers  uint32
	lanes    []*lane

	mu    sync.Mutex // serializes route mutators and start/stop
	route atomic.Pointer[routeState]

	started   atomic.Bool
	startNano atomic.Int64
	busy      atomic.Int64 // virtual CPU ns consumed (all lanes + transfer)
	injected  atomic.Int64
	emitted   atomic.Int64
	dropNoRt  atomic.Int64 // inbound tuples with no local sub and no relay
	closed    atomic.Bool

	warnMu        sync.Mutex
	noRouteWarned map[int32]bool // per-stream one-shot warn latch
	relayWarned   map[string]bool

	peers       map[string]*outbox
	peersMu     sync.Mutex
	peersClosed bool
	retired     []*outbox // outboxes replaced by a durability-mode change; swept at Close

	faultsMu sync.Mutex
	faults   map[string]*LinkFault

	connsMu sync.Mutex
	conns   map[net.Conn]bool

	estimator    *stats.CostEstimator
	wg           sync.WaitGroup
	sendMaxNanos atomic.Int64 // worst observed send() duration (worker path)
	scratch      sync.Pool    // *ingressScratch

	probe atomic.Pointer[nodeProbe] // observer state; see SetObserver

	// Durability state (see durable.go). bornNano doubles as the outbox
	// incarnation, so a restarted node announces a fresh identity.
	bornNano        int64
	wal             *wal.Log
	durableInflight atomic.Int64 // durable admissions between WAL append and enqueue
	dedupMu         sync.Mutex
	dedup           map[int32]int64 // stream → max admitted durable tuple Seq
	admitsMu        sync.Mutex
	admits          map[string]*sync.Mutex // per-sender durable admission serialization
	dedupDropped    atomic.Int64
	replayed        atomic.Int64
	checkpoints     atomic.Int64
	recovered       atomic.Bool // restored state or backlog from a prior run
	restartIntent   atomic.Bool // set by the control-plane restart command
	ckQuit          chan struct{}
	done            chan struct{} // closed when Close completes (see Done)
}

// nodeProbe bundles the observer state so data-plane goroutines (ingress,
// workers, outboxes) read it with one atomic load.
type nodeProbe struct {
	ev     *obs.EventLog
	stages *obs.StageSet
	every  int64
}

type liveOp struct {
	spec OpSpec

	// mu guards the operator's mutable state. Steady state it is
	// uncontended (one lane owns the operator's input streams); it exists
	// for the transient window where a route republish moves a stream to
	// another lane while the old lane still drains queued tuples.
	mu        sync.Mutex
	selAcc    float64
	window    [2][]int64 // join windows: origin-arrival wall ns per side
	sideOf    map[int]int
	processed int64
}

// partTable is a node's keyed routing table for one sharded stream: fixed
// slots map to shard indices, shard indices to destinations (a co-located
// replica, or a remote replica home). relay records the new home of a
// replica that migrated away from this node, so keyed tuples addressed to
// the departed copy follow it instead of vanishing. counts accumulates
// per-slot routed tuples on the splitter's home — the observed slot rates
// skew-aware repartitioning feeds on; its entries are accessed atomically
// and the slice is shared across route snapshots. The other fields are
// immutable once the table is published in a snapshot.
type partTable struct {
	parent string
	k      int
	slots  []int
	shards []Dest
	ops    []int
	counts []int64
	relay  map[int]string
}

func newPartTable(ps *PartitionSpec) *partTable {
	return &partTable{
		parent: ps.Parent,
		k:      ps.K,
		slots:  append([]int(nil), ps.Slots...),
		shards: append([]Dest(nil), ps.Shards...),
		ops:    append([]int(nil), ps.Ops...),
		counts: make([]int64, len(ps.Slots)),
		relay:  map[int]string{},
	}
}

// slotOf maps a tuple to its partition slot. Unkeyed tuples (Key zero)
// hash their sequence number instead, so a keyless workload degrades to a
// uniform spread rather than collapsing onto one shard.
func slotOf(t *Tuple) int {
	k := t.Key
	if k == 0 {
		k = uint64(t.Seq)
	}
	return query.SlotOfKey(k)
}

// NewNode starts a node listening on addr ("127.0.0.1:0" for an ephemeral
// port) with the given virtual CPU capacity and default resilience bounds.
func NewNode(addr string, capacity float64) (*Node, error) {
	return NewNodeConfig(addr, capacity, NodeConfig{})
}

// NewNodeConfig starts a node with explicit data-plane bounds.
func NewNodeConfig(addr string, capacity float64, cfg NodeConfig) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("engine: capacity %g must be positive", capacity)
	}
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: listen %s: %w", addr, err)
	}
	w := cfg.Workers
	n := &Node{
		capacity:      capacity,
		cfg:           cfg,
		ln:            ln,
		workers:       uint32(w),
		noRouteWarned: map[int32]bool{},
		relayWarned:   map[string]bool{},
		peers:         map[string]*outbox{},
		faults:        map[string]*LinkFault{},
		conns:         map[net.Conn]bool{},
		estimator:     stats.NewCostEstimator(),
		dedup:         map[int32]int64{},
		admits:        map[string]*sync.Mutex{},
		bornNano:      time.Now().UnixNano(),
		done:          make(chan struct{}),
	}
	n.route.Store(emptyRouteState())
	laneCap := (cfg.IngressCap + w - 1) / w
	n.lanes = make([]*lane, w)
	for i := range n.lanes {
		n.lanes[i] = newLane(uint32(i), laneCap)
	}
	n.scratch.New = func() any { return newIngressScratch(w) }
	// Recovery runs BEFORE any goroutine starts: the WAL's surviving
	// backlog is replayed into the lane queues while no connection can be
	// accepted, so re-sent retained batches from upstream peers cannot
	// race the replay (they would advance the dedup watermarks past
	// records not yet re-admitted). Peers dialing during replay queue in
	// the listen backlog.
	if cfg.WALDir != "" {
		if err := n.openDurability(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	n.wg.Add(1 + w)
	go n.acceptLoop()
	for _, l := range n.lanes {
		go n.laneWorker(l)
	}
	if n.wal != nil {
		n.ckQuit = make(chan struct{})
		n.wg.Add(1)
		go n.checkpointLoop()
	}
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Workers returns the node's worker-lane count.
func (n *Node) Workers() int { return int(n.workers) }

// SetObserver attaches an event log for control-plane events and sampled
// per-tuple trace spans, plus the per-stage latency histograms the spans
// feed (1 in traceEvery tuples per stream is sampled; 0 disables tracing).
// The obs.EventLog methods and obs.StageSet.Observe are nil-receiver safe,
// so instrumentation sites emit unconditionally.
func (n *Node) SetObserver(ev *obs.EventLog, stages *obs.StageSet, traceEvery int64) {
	n.probe.Store(&nodeProbe{ev: ev, stages: stages, every: traceEvery})
}

// observer returns the attached observer state (nil/0 before SetObserver).
func (n *Node) observer() (*obs.EventLog, *obs.StageSet, int64) {
	if p := n.probe.Load(); p != nil {
		return p.ev, p.stages, p.every
	}
	return nil, nil, 0
}

// tracePick reports whether the sampling stride selects tuple t. The
// stride offset is derived from the stream id (a splitmix-style hash), so
// every stream rotates through its own sampling phase: with the previous
// shared `Seq%every == 0` residue, streams whose seqs never hit zero modulo
// the stride (or that emit fewer than `every` tuples) went entirely
// unsampled for whole runs.
func tracePick(every int64, t Tuple) bool {
	if every <= 0 || t.Stream < 0 {
		return false
	}
	off := int64(((uint64(uint32(t.Stream)) * 0x9E3779B97F4A7C15) >> 33) % uint64(every))
	return t.Seq%every == off
}

// Close shuts the node down and waits for its goroutines. Outboxes drain
// best-effort (buffered tuples are flushed when the link is up, counted as
// dropped otherwise) before their goroutines exit; once every producer has
// stopped, any tuples stranded in outbox rings are swept into the drop
// counters so the outbox accounting closes post-Close.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	if n.ckQuit != nil {
		close(n.ckQuit)
	}
	for _, l := range n.lanes {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	err := n.ln.Close()
	n.peersMu.Lock()
	if !n.peersClosed {
		n.peersClosed = true
		for _, o := range n.peers {
			close(o.quit)
		}
	}
	n.peersMu.Unlock()
	n.connsMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connsMu.Unlock()
	n.wg.Wait()
	// Lane workers may have pushed to SPSC rings after an outbox writer's
	// final drain; with all goroutines stopped, sweep the leftovers (live
	// outboxes and any retired by a durability-mode change alike).
	n.peersMu.Lock()
	for _, o := range n.peers {
		o.dropRemaining()
	}
	for _, o := range n.retired {
		o.dropRemaining()
	}
	n.peersMu.Unlock()
	if n.wal != nil {
		n.wal.Close()
	}
	close(n.done)
	return err
}

// Done is closed once Close has fully completed — every goroutine joined,
// the WAL closed. A supervisor (rodnode) blocks on it to learn the node
// went down, then consults RestartRequested.
func (n *Node) Done() <-chan struct{} { return n.done }

// RestartRequested reports whether the node was closed by the control
// plane's restart command (a supervisor should recreate it with the same
// address and WAL directory) rather than killed or stopped.
func (n *Node) RestartRequested() bool { return n.restartIntent.Load() }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

func (n *Node) serveConn(conn net.Conn) {
	n.connsMu.Lock()
	n.conns[conn] = true
	n.connsMu.Unlock()
	defer func() {
		conn.Close()
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 16*1024)
	kind, err := br.ReadByte()
	if err != nil {
		return
	}
	switch kind {
	case connControl:
		n.serveControl(br, conn)
	case connTuples:
		n.serveTuples(br, conn)
	}
}

// serveTuples drains one tuple connection. Seqmark-tagged batches from
// durable senders take the durability path: dedup against the per-stream
// watermarks, WAL-append the survivors, wait for the group commit, admit,
// then ack the mark so the sender releases its retained copy — the ack is
// written only after fsync, which is the at-least-once linchpin (anything
// unacked is still retained upstream and re-sent). Unmarked frames (legacy
// senders, sources, or a node without a WAL) take the volatile path
// unchanged; both coexist on one connection.
//
// The whole filter→log→commit→advance window runs under a per-sender
// admission lock: a sender that reconnects and replays a retained batch
// while the OLD connection's goroutine is still mid-admission (blocked in
// WaitCommitted, marks not yet advanced) would otherwise pass dedupFilter a
// second time and be delivered twice. The lock is keyed on the hello
// identity (stable across reconnects and restarts), so admissions from
// DIFFERENT senders still share one group commit.
func (n *Node) serveTuples(r io.Reader, conn net.Conn) {
	tr := NewTupleReader(r)
	var keep []Tuple
	var payload []byte
	var admit *sync.Mutex
	for {
		batch, err := tr.ReadBatch()
		if err != nil {
			return
		}
		seq, marked := tr.TakeMark()
		if !marked || n.wal == nil {
			n.enqueueInboundBatch(batch)
			continue
		}
		if admit == nil {
			_, sender, _ := tr.Hello()
			admit = n.admitLock(sender)
		}
		admit.Lock()
		n.durableInflight.Add(1)
		keep = n.dedupFilter(batch, keep[:0])
		if len(keep) > 0 {
			payload = append(payload[:0], walRecordTuples)
			payload = appendFrames(payload, keep)
			rec, err := n.wal.Append(payload)
			if err == nil {
				err = n.wal.WaitCommitted(rec)
			}
			if err != nil {
				n.durableInflight.Add(-1)
				admit.Unlock()
				// The WAL failed: without durability we must not ack (the
				// sender keeps the batch and re-sends), and the watermarks
				// were not advanced, so nothing is stranded. Drop the
				// connection.
				ev, _, _ := n.observer()
				ev.Emit(obs.LevelWarn, obs.EventWALError,
					"node", n.route.Load().nodeID(), "err", err.Error())
				return
			}
			n.advanceMarks(keep)
			n.enqueueInboundBatch(keep)
		}
		n.durableInflight.Add(-1)
		admit.Unlock()
		if err := writeAck(conn, seq); err != nil {
			return
		}
	}
}

// admitLock returns (creating on first use) the durable-admission mutex for
// one sender identity — the address announced in its hello frame, which an
// outbox keeps across reconnects and a restarted node re-announces. Marked
// batches that arrive without a hello (hand-rolled senders) share the ""
// key, which is safe (over-serialization, never under-).
func (n *Node) admitLock(sender string) *sync.Mutex {
	n.admitsMu.Lock()
	defer n.admitsMu.Unlock()
	m, ok := n.admits[sender]
	if !ok {
		m = &sync.Mutex{}
		n.admits[sender] = m
	}
	return m
}

// enqueueInbound accepts a single tuple arriving from the network (or a
// source injector); see enqueueInboundBatch for the amortized path.
func (n *Node) enqueueInbound(t Tuple) {
	batch := [1]Tuple{t}
	n.enqueueInboundBatch(batch[:])
}

// relayRun is one per-destination slice of tuples to forward, built while
// admitting a batch and shipped after all queue locks are released.
type relayRun struct {
	addr string
	ts   []Tuple
}

// enqueueInboundBatch admits a batch of tuples arriving from the network
// (or a source injector) to the bounded per-lane work queues, processing
// chunks of at most BatchMax tuples. Shedding (per the configured policy),
// per-stream shed counters, the shed-onset hysteresis latch and relay
// fan-out are all computed batch-wise with per-tuple accounting preserved;
// relays are grouped per destination so the outbox is offered slices
// rather than single tuples.
func (n *Node) enqueueInboundBatch(ts []Tuple) {
	for len(ts) > 0 {
		chunk := ts
		if len(chunk) > n.cfg.BatchMax {
			chunk = ts[:n.cfg.BatchMax]
		}
		ts = ts[len(chunk):]
		n.enqueueChunk(chunk)
	}
}

// ingressSpan records one traced tuple's transit crossing for the span
// event emitted after admission.
type ingressSpan struct {
	stream int32
	seq    int64
	ts     int64
	wait   float64
}

// ingressScratch is the pooled per-call grouping state of enqueueChunk:
// admissions bucketed per lane, relay runs per destination, deferred
// events. Pooled (not per-call) so the unsampled ingress path stays
// allocation-free.
type ingressScratch struct {
	perLane [][]Tuple
	relays  []relayRun
	spans   []ingressSpan
	noRoute []int32
}

func newIngressScratch(w int) *ingressScratch {
	return &ingressScratch{perLane: make([][]Tuple, w)}
}

func (sc *ingressScratch) reset() {
	for i := range sc.perLane {
		sc.perLane[i] = sc.perLane[i][:0]
	}
	sc.relays = sc.relays[:0]
	sc.spans = sc.spans[:0]
	sc.noRoute = sc.noRoute[:0]
}

// relayTo groups one tuple into the per-destination relay runs, reusing
// backing arrays across pooled uses.
func (sc *ingressScratch) relayTo(addr string, t Tuple) {
	i := 0
	for ; i < len(sc.relays); i++ {
		if sc.relays[i].addr == addr {
			break
		}
	}
	if i == len(sc.relays) {
		if i < cap(sc.relays) {
			sc.relays = sc.relays[:i+1]
			sc.relays[i].addr = addr
			sc.relays[i].ts = sc.relays[i].ts[:0]
		} else {
			sc.relays = append(sc.relays, relayRun{addr: addr})
		}
	}
	sc.relays[i].ts = append(sc.relays[i].ts, t)
}

// enqueueChunk routes one ingress chunk: it loads the route snapshot once,
// buckets admissible tuples per worker lane, then admits each bucket with
// one lane-lock acquisition. No node-wide lock is taken anywhere on this
// path.
func (n *Node) enqueueChunk(chunk []Tuple) {
	if n.closed.Load() {
		return
	}
	rs := n.route.Load()
	ev, stages, every := n.observer()
	sc := n.scratch.Get().(*ingressScratch)
	sc.reset()
	var spanNow int64 // lazy arrival timestamp shared by the chunk's traced tuples
	var xferBusy int64
	nodeID := rs.nodeID()
	n.injected.Add(int64(len(chunk)))
	for ci := range chunk {
		t := &chunk[ci]
		// Mark trace samples at first ingress. Sources that pre-flag their
		// tuples use the same stride, so a legacy link that strips the
		// context re-selects the same tuples here (TraceTs restarts from the
		// origin Ts, keeping the telescoped sum equal to the sink latency).
		if every > 0 && t.Flags&TupleTraced == 0 && tracePick(every, *t) {
			t.Flags |= TupleTraced
		}
		if t.Flags&TupleTraced != 0 {
			if spanNow == 0 {
				spanNow = time.Now().UnixNano()
			}
			if t.TraceTs == 0 {
				t.TraceTs = t.Ts
			}
			wait := float64(spanNow-t.TraceTs) / float64(time.Second)
			t.TraceTs = spanNow
			stages.Observe(obs.StageTransit, wait)
			if ev != nil {
				sc.spans = append(sc.spans, ingressSpan{stream: t.Stream, seq: t.Seq, ts: t.Ts, wait: wait})
			}
		}
		// Receive-side transfer CPU cost.
		if x := rs.xfer[int(t.Stream)]; x > 0 {
			xferBusy += int64(time.Duration(x / n.capacity * float64(time.Second)))
		}
		// Keyed (sharded) streams route through the partition table: each
		// tuple goes to exactly one replica — targeted locally when that
		// replica lives here, forwarded to its home otherwise. The broadcast
		// subs/relays paths below never see partitioned streams.
		var relay []Dest
		var partFwd [1]Dest
		hasLocal := false
		if pt := rs.parts[int(t.Stream)]; pt != nil {
			d := pt.shards[pt.slots[slotOf(t)]]
			if d.Local {
				if _, ok := rs.ops[d.LocalOp]; ok {
					t.target = int32(d.LocalOp) + 1
					hasLocal = true
				} else if addr := pt.relay[d.LocalOp]; addr != "" {
					// The replica migrated away; follow it to its new home.
					partFwd[0] = Dest{Addr: addr}
					relay = partFwd[:]
				}
			} else {
				partFwd[0] = d
				relay = partFwd[:]
			}
		} else {
			relay = rs.relays[int(t.Stream)]
			hasLocal = len(rs.subs[int(t.Stream)]) > 0
		}
		if hasLocal {
			li := rs.laneFor(t, n.workers)
			sc.perLane[li] = append(sc.perLane[li], *t)
		} else if len(relay) == 0 {
			// No local consumer and no relay route: the tuple has nowhere
			// to go. Count it (and warn once per stream) instead of
			// silently absorbing it into the injected count.
			n.dropNoRt.Add(1)
			n.warnMu.Lock()
			if !n.noRouteWarned[t.Stream] {
				n.noRouteWarned[t.Stream] = true
				sc.noRoute = append(sc.noRoute, t.Stream)
			}
			n.warnMu.Unlock()
		}
		for _, d := range relay {
			sc.relayTo(d.Addr, *t)
		}
	}
	if xferBusy > 0 {
		n.busy.Add(xferBusy)
	}
	for li := range sc.perLane {
		if len(sc.perLane[li]) == 0 {
			continue
		}
		res := n.lanes[li].admit(sc.perLane[li], n.cfg.ShedPolicy)
		if res.shedOnset {
			ev.Emit(obs.LevelWarn, obs.EventShedOnset,
				"node", nodeID, "lane", int(n.lanes[li].id),
				"queue", res.qlen, "cap", n.lanes[li].cap,
				"policy", n.cfg.ShedPolicy.String(), "stream", int(res.onsetStream),
				"shed", res.shedTotal)
		}
	}
	for _, sid := range sc.noRoute {
		ev.Emit(obs.LevelWarn, obs.EventNoRoute,
			"node", nodeID, "stream", int(sid))
	}
	for _, sp := range sc.spans {
		ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "ingress",
			"node", nodeID, "stream", int(sp.stream), "seq", sp.seq,
			"ts", sp.ts, "wait", sp.wait)
	}
	// Relays are best-effort: the per-peer outbox absorbs (or drops) the
	// run without ever blocking the receive path, and link failures
	// surface as warn events latched per destination (re-armed on
	// recovery, so a peer that heals and fails again stays visible).
	for i := range sc.relays {
		n.sendBatch(sc.relays[i].addr, sc.relays[i].ts)
	}
	n.scratch.Put(sc)
}

// QueueLen returns the current work-queue length summed over lanes.
func (n *Node) QueueLen() int {
	total := 0
	for _, l := range n.lanes {
		l.mu.Lock()
		total += l.qlenLocked()
		l.mu.Unlock()
	}
	return total
}

// stall charges the virtual CPU with a state-transfer pause by enqueueing
// an overhead work item of the given wall-clock duration (on lane 0; the
// virtual CPU accumulator is node-wide, so every lane paces against it).
func (n *Node) stall(sec float64) {
	if n.closed.Load() {
		return
	}
	l := n.lanes[0]
	l.mu.Lock()
	l.queue = append(l.queue, Tuple{Stream: stallStream, Value: sec * n.capacity})
	l.cond.Signal()
	l.mu.Unlock()
}

// stallStream is the reserved stream id carrying stall work items.
const stallStream int32 = -1

// send hands one tuple to the destination's outbox without ever blocking;
// see sendBatch. Reports whether the tuple was accepted; rejected tuples
// are counted in the outbox's drop counter.
func (n *Node) send(addr string, t Tuple) bool {
	batch := [1]Tuple{t}
	return n.sendBatch(addr, batch[:]) == 1
}

// sendBatch offers a run of tuples to the destination's outbox (shared
// mutex ring — the multi-producer path used by ingress relays and tests)
// without ever blocking: a dead, slow or partitioned peer costs the caller
// one bounded ring insertion (accounted, worst case, in sendMaxNanos — the
// chaos test asserts the worker path never stalls). It returns how many
// tuples were accepted (a prefix of ts); the rest are counted in the
// outbox's drop counter.
func (n *Node) sendBatch(addr string, ts []Tuple) int {
	t0 := time.Now()
	o := n.outboxFor(addr)
	accepted := 0
	if o != nil {
		accepted = o.enqueueBatch(ts)
	}
	if d := int64(time.Since(t0)); d > n.sendMaxNanos.Load() {
		n.sendMaxNanos.Store(d)
	}
	return accepted
}

// sendBatchLane offers a run of tuples to the destination's outbox on the
// calling lane's lock-free SPSC ring (single producer: the lane worker).
// Same non-blocking, drop-with-counter contract as sendBatch.
func (n *Node) sendBatchLane(laneID uint32, addr string, ts []Tuple) int {
	t0 := time.Now()
	o := n.outboxFor(addr)
	accepted := 0
	if o != nil {
		accepted = o.enqueueLane(int(laneID), ts)
	}
	if d := int64(time.Since(t0)); d > n.sendMaxNanos.Load() {
		n.sendMaxNanos.Store(d)
	}
	return accepted
}

// outboxFor returns (creating on first use) the outbox for addr; nil once
// the node is closing.
func (n *Node) outboxFor(addr string) *outbox {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peersClosed {
		return nil
	}
	o, ok := n.peers[addr]
	if !ok {
		o = newOutbox(n, addr, n.durablePeer(addr))
		n.peers[addr] = o
		n.wg.Add(1)
		go o.run()
	}
	return o
}

// durablePeer reports whether the link to addr should run in durable
// (retain-until-ack) mode: this node has a WAL and the deployed spec names
// addr as a durable peer (another WAL-running node — the collector is
// excluded, since sinks sit outside the ack protocol).
func (n *Node) durablePeer(addr string) bool {
	if n.cfg.WALDir == "" {
		return false
	}
	rs := n.route.Load()
	if rs.spec == nil {
		return false
	}
	for _, a := range rs.spec.DurablePeers {
		if a == addr {
			return true
		}
	}
	return false
}

// refreshOutboxDurability retires any live outbox whose durable mode no
// longer matches the deployed spec: the mode is decided once at creation
// (outboxFor), so an outbox created before the spec named its peer durable —
// or a redeploy that changes the durable peer set — would otherwise silently
// keep the wrong mode, dropping the retain-until-ack guarantee for that
// path. The retired writer drains best-effort and exits (deploy precedes
// start, so the link is normally idle); the next send to the address creates
// a fresh outbox in the correct mode.
func (n *Node) refreshOutboxDurability() {
	ev, _, _ := n.observer()
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peersClosed {
		return
	}
	for addr, o := range n.peers {
		want := n.durablePeer(addr)
		if o.durable == want {
			continue
		}
		close(o.quit)
		delete(n.peers, addr)
		n.retired = append(n.retired, o)
		ev.Emit(obs.LevelInfo, obs.EventDeploy,
			"node", n.route.Load().nodeID(), "addr", addr,
			"outboxDurable", want, "recreated", true)
	}
}

// linkFault returns the injected fault for addr (nil when healthy).
func (n *Node) linkFault(addr string) *LinkFault {
	n.faultsMu.Lock()
	defer n.faultsMu.Unlock()
	return n.faults[addr]
}

// SetLinkFault injects a fault on the outbound link to addr: severing also
// breaks the live connection so the outbox falls into its reconnect cycle.
func (n *Node) SetLinkFault(addr string, f LinkFault) {
	n.faultsMu.Lock()
	n.faults[addr] = &f
	n.faultsMu.Unlock()
	if f.Sever {
		n.peersMu.Lock()
		o := n.peers[addr]
		n.peersMu.Unlock()
		if o != nil {
			o.breakConn()
		}
	}
	ev, _, _ := n.observer()
	ev.Emit(obs.LevelWarn, obs.EventLinkFault, "node", n.route.Load().nodeID(), "addr", addr,
		"sever", f.Sever, "drop", f.Drop, "delayMs", f.Delay.Seconds()*1000)
}

// ClearLinkFault heals the link to addr ("" heals every link).
func (n *Node) ClearLinkFault(addr string) {
	n.faultsMu.Lock()
	if addr == "" {
		n.faults = map[string]*LinkFault{}
	} else {
		delete(n.faults, addr)
	}
	n.faultsMu.Unlock()
	ev, _, _ := n.observer()
	ev.Emit(obs.LevelInfo, obs.EventLinkFault, "node", n.route.Load().nodeID(), "addr", addr, "clear", true)
}

// peerDown records a link failure. The relay-error warn event is latched
// per destination so a flapping peer does not flood the log, and the latch
// is re-armed by peerUp so each new failure episode stays visible.
func (n *Node) peerDown(addr string, err error) {
	n.warnMu.Lock()
	warned := n.relayWarned[addr]
	n.relayWarned[addr] = true
	n.warnMu.Unlock()
	if !warned {
		ev, _, _ := n.observer()
		ev.Emit(obs.LevelWarn, obs.EventRelayError,
			"node", n.route.Load().nodeID(), "addr", addr, "err", err.Error())
	}
}

// peerUp re-arms the relay-error latch after a successful (re)connection.
func (n *Node) peerUp(addr string) {
	n.warnMu.Lock()
	warned := n.relayWarned[addr]
	delete(n.relayWarned, addr)
	n.warnMu.Unlock()
	if warned {
		ev, _, _ := n.observer()
		ev.Emit(obs.LevelInfo, obs.EventPeerUp, "node", n.route.Load().nodeID(), "addr", addr)
	}
}

// outboxSnapshots returns per-peer outbox accounting, sorted by address.
func (n *Node) outboxSnapshots() []outboxStats {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	out := make([]outboxStats, 0, len(n.peers))
	for _, o := range n.peers {
		out = append(out, o.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats snapshots the node's metrics. Counters come from atomics and the
// immutable route snapshot; the only locks taken are the per-lane queue
// mutexes (each held for a few loads), so a high-rate stats poller never
// stalls ingress or the control plane.
func (n *Node) Stats() *NodeStats {
	rs := n.route.Load()
	s := &NodeStats{
		NodeID:         rs.nodeID(),
		Injected:       n.injected.Load(),
		Emitted:        n.emitted.Load(),
		DroppedNoRoute: n.dropNoRt.Load(),
		SendMaxMs:      float64(n.sendMaxNanos.Load()) / float64(time.Millisecond),
		OpCost:         map[int]float64{},
		OpSel:          map[int]float64{},
		Workers:        int(n.workers),
	}
	if s.NodeID < 0 {
		s.NodeID = 0
	}
	multi := n.workers > 1
	var shedBy map[int]int64
	for _, l := range n.lanes {
		l.mu.Lock()
		q := l.qlenLocked()
		ir := l.inRun
		if len(l.shedByStream) > 0 {
			if shedBy == nil {
				shedBy = map[int]int64{}
			}
			for sid, v := range l.shedByStream {
				shedBy[int(sid)] += v
			}
		}
		l.mu.Unlock()
		s.QueueLen += q
		s.WorkerInFlight += int64(ir)
		s.Shed += l.shed.Load()
		if multi {
			s.Lanes = append(s.Lanes, LaneStats{
				Lane:      int(l.id),
				Queue:     q,
				InFlight:  ir,
				Processed: l.processed.Load(),
				Shed:      l.shed.Load(),
				BusySec:   float64(l.busy.Load()) / float64(time.Second),
			})
		}
	}
	s.ShedByStream = shedBy
	for sid, pt := range rs.parts {
		routed := false
		for i := range pt.counts {
			if atomic.LoadInt64(&pt.counts[i]) > 0 {
				routed = true
				break
			}
		}
		if !routed {
			continue
		}
		if s.PartCounts == nil {
			s.PartCounts = map[int][]int64{}
		}
		counts := make([]int64, len(pt.counts))
		for i := range pt.counts {
			counts[i] = atomic.LoadInt64(&pt.counts[i])
		}
		s.PartCounts[sid] = counts
	}
	if n.started.Load() {
		elapsed := time.Duration(time.Now().UnixNano() - n.startNano.Load())
		s.ElapsedSec = elapsed.Seconds()
		if elapsed > 0 {
			s.Utilization = float64(n.busy.Load()) / float64(elapsed)
			if s.Utilization > 1 {
				s.Utilization = 1
			}
		}
	}
	for id := range rs.ops {
		if c, ok := n.estimator.Cost(id); ok {
			s.OpCost[id] = c
		}
		if sel, ok := n.estimator.Selectivity(id); ok {
			s.OpSel[id] = sel
		}
	}
	for _, o := range n.outboxSnapshots() {
		s.OutboxEnqueued += o.Enqueued
		s.OutboxSent += o.Sent
		s.OutboxDropped += o.Dropped
		s.OutboxPending += o.Pending
		s.PeerReconnects += o.Reconnects
	}
	if n.wal != nil {
		ws := n.wal.Stats()
		s.WALActive = true
		s.WALRecords = ws.Records
		s.WALSyncs = ws.Syncs
		s.WALBytes = ws.Bytes
		s.Checkpoints = n.checkpoints.Load()
		s.Replayed = n.replayed.Load()
		s.DedupDropped = n.dedupDropped.Load()
		s.Recovered = n.recovered.Load()
	}
	return s
}

package engine

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/stats"
)

// Node is one engine process: it listens for control and tuple connections,
// hosts deployed operators, and runs a single virtual CPU of the configured
// capacity (cost-units of operator work completed per wall second).
type Node struct {
	capacity float64
	ln       net.Listener

	mu       sync.Mutex
	spec     *NodeSpec
	ops      map[int]*liveOp
	subs     map[int][]int  // stream → local consumer ops
	fwd      map[int][]Dest // stream → remote destinations (producer side)
	relays   map[int][]Dest // stream → relay targets for *inbound* tuples (post-migration)
	xfer     map[int]float64
	started  bool
	startT   time.Time
	busy     time.Duration // virtual CPU time consumed
	injected int64
	emitted  int64

	queue   []Tuple
	qhead   int
	qcond   *sync.Cond
	closing bool

	peers   map[string]*peerConn
	peersMu sync.Mutex

	connsMu sync.Mutex
	conns   map[net.Conn]bool

	estimator *stats.CostEstimator
	wg        sync.WaitGroup

	events      *obs.EventLog // nil-safe; see SetObserver
	traceEvery  int64
	relayWarned map[string]bool
}

type liveOp struct {
	spec      OpSpec
	selAcc    float64
	window    [2][]int64 // join windows: origin-arrival wall ns per side
	sideOf    map[int]int
	processed int64
}

type peerConn struct {
	mu sync.Mutex
	tw *TupleWriter
	c  net.Conn
}

// NewNode starts a node listening on addr ("127.0.0.1:0" for an ephemeral
// port) with the given virtual CPU capacity.
func NewNode(addr string, capacity float64) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("engine: capacity %g must be positive", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: listen %s: %w", addr, err)
	}
	n := &Node{
		capacity:  capacity,
		ln:        ln,
		ops:       map[int]*liveOp{},
		subs:      map[int][]int{},
		fwd:       map[int][]Dest{},
		relays:    map[int][]Dest{},
		xfer:      map[int]float64{},
		peers:     map[string]*peerConn{},
		conns:     map[net.Conn]bool{},
		estimator: stats.NewCostEstimator(),
	}
	n.qcond = sync.NewCond(&n.mu)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.worker()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetObserver attaches an event log for relay-error events and sampled
// per-tuple trace spans (tuples whose Seq is a multiple of traceEvery emit
// span events; 0 disables spans). The obs.EventLog methods are nil-receiver
// safe, so instrumentation sites emit unconditionally.
func (n *Node) SetObserver(ev *obs.EventLog, traceEvery int64) {
	n.mu.Lock()
	n.events = ev
	n.traceEvery = traceEvery
	n.relayWarned = map[string]bool{}
	n.mu.Unlock()
}

// traced reports whether tuple t should emit trace spans under the
// configured sampling stride.
func traced(every int64, t Tuple) bool {
	return every > 0 && t.Stream >= 0 && t.Seq%every == 0
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return nil
	}
	n.closing = true
	n.qcond.Broadcast()
	n.mu.Unlock()
	err := n.ln.Close()
	n.peersMu.Lock()
	for _, p := range n.peers {
		p.mu.Lock()
		p.tw.Flush()
		p.c.Close()
		p.mu.Unlock()
	}
	n.peersMu.Unlock()
	n.connsMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connsMu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

func (n *Node) serveConn(conn net.Conn) {
	n.connsMu.Lock()
	n.conns[conn] = true
	n.connsMu.Unlock()
	defer func() {
		conn.Close()
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 16*1024)
	kind, err := br.ReadByte()
	if err != nil {
		return
	}
	switch kind {
	case connControl:
		n.serveControl(br, conn)
	case connTuples:
		n.serveTuples(br)
	}
}

func (n *Node) serveTuples(r io.Reader) {
	for {
		t, err := ReadTuple(r)
		if err != nil {
			return
		}
		n.enqueueInbound(t)
	}
}

// enqueueInbound accepts a tuple arriving from the network (or a source
// injector), queues it for local consumers of its stream, and forwards it
// along any relay routes installed by a migration.
func (n *Node) enqueueInbound(t Tuple) {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return
	}
	n.injected++
	// Receive-side transfer CPU cost.
	if x := n.xfer[int(t.Stream)]; x > 0 {
		n.busy += time.Duration(x / n.capacity * float64(time.Second))
	}
	relay := n.relays[int(t.Stream)]
	hasLocal := len(n.subs[int(t.Stream)]) > 0
	if hasLocal {
		n.queue = append(n.queue, t)
		n.qcond.Signal()
	}
	ev, every, nodeID := n.events, n.traceEvery, n.nodeIDLocked()
	n.mu.Unlock()
	if traced(every, t) {
		ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "ingress",
			"node", nodeID, "stream", int(t.Stream), "seq", t.Seq)
	}
	for _, d := range relay {
		// Relays are best-effort (a failed hop drops tuples, it does not
		// stall the data plane), but failures surface as warn events once
		// per destination instead of vanishing.
		if err := n.send(d.Addr, t); err != nil {
			n.mu.Lock()
			warned := n.relayWarned[d.Addr]
			if !warned && n.relayWarned != nil {
				n.relayWarned[d.Addr] = true
			}
			n.mu.Unlock()
			if !warned {
				ev.Emit(obs.LevelWarn, obs.EventRelayError,
					"node", nodeID, "addr", d.Addr, "stream", int(t.Stream), "err", err.Error())
			}
		}
	}
}

// nodeIDLocked returns the deployed node id (-1 before deployment).
// Callers must hold n.mu.
func (n *Node) nodeIDLocked() int {
	if n.spec == nil {
		return -1
	}
	return n.spec.NodeID
}

// QueueLen returns the current work-queue length.
func (n *Node) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue) - n.qhead
}

// worker is the node's single virtual CPU: it dequeues tuples, charges
// their processing cost against wall time (sleeping whenever virtual time
// runs ahead), and routes outputs.
func (n *Node) worker() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for len(n.queue)-n.qhead == 0 && !n.closing {
			n.qcond.Wait()
		}
		if n.closing {
			n.mu.Unlock()
			return
		}
		t := n.queue[n.qhead]
		n.qhead++
		if n.qhead > 4096 && n.qhead*2 > len(n.queue) {
			n.queue = append(n.queue[:0], n.queue[n.qhead:]...)
			n.qhead = 0
		}
		consumers := n.subs[int(t.Stream)]
		started := n.started
		start := n.startT
		ev, every, nodeID := n.events, n.traceEvery, n.nodeIDLocked()
		n.mu.Unlock()

		var cost float64
		var outs []Tuple
		if t.Stream == stallStream {
			// Migration state-transfer pause: Value already carries the
			// cost units making svc = Value/capacity = the stall seconds.
			cost = t.Value
		} else {
			for _, opID := range consumers {
				c, o := n.process(opID, t)
				cost += c
				outs = append(outs, o...)
			}
		}
		if cost > 0 {
			n.mu.Lock()
			n.busy += time.Duration(cost / n.capacity * float64(time.Second))
			due := n.busy
			n.mu.Unlock()
			if started {
				// Pace: virtual time must not run ahead of wall time.
				if ahead := due - time.Since(start); ahead > 500*time.Microsecond {
					time.Sleep(ahead)
				}
			}
		}
		if traced(every, t) {
			ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "process",
				"node", nodeID, "stream", int(t.Stream), "seq", t.Seq,
				"cost", cost, "outs", len(outs))
		}
		for _, o := range outs {
			n.route(o, true)
		}
	}
}

// process runs one tuple through one operator, returning the cost-units
// consumed and the emitted tuples.
func (n *Node) process(opID int, t Tuple) (float64, []Tuple) {
	n.mu.Lock()
	op, ok := n.ops[opID]
	n.mu.Unlock()
	if !ok {
		return 0, nil
	}
	cost := op.spec.Cost
	produced := op.spec.Selectivity
	if op.spec.Kind == "join" {
		now := time.Now().UnixNano()
		side := op.sideOf[int(t.Stream)]
		op.window[side] = append(op.window[side], now)
		horizon := now - int64(op.spec.Window/2*float64(time.Second))
		for s := range op.window {
			win := op.window[s]
			lo := 0
			for lo < len(win) && win[lo] < horizon {
				lo++
			}
			op.window[s] = win[lo:]
		}
		pairs := len(op.window[1-side])
		cost = op.spec.Cost * float64(pairs)
		produced = op.spec.Selectivity * float64(pairs)
	}
	op.selAcc += produced
	k := int(op.selAcc)
	op.selAcc -= float64(k)
	op.processed++
	n.estimator.Record(opID, stats.OpSample{In: 1, Out: int64(k), CPU: cost})
	outs := make([]Tuple, 0, k)
	for i := 0; i < k; i++ {
		outs = append(outs, Tuple{Stream: int32(op.spec.Out), Ts: t.Ts, Seq: t.Seq, Value: t.Value})
	}
	return cost, outs
}

// route delivers an operator-emitted tuple: local consumers re-enter the
// queue; remote destinations are forwarded (charging send-side transfer
// cost). Inbound network tuples never re-forward (fromLocal=false path is
// handled by enqueueInbound).
func (n *Node) route(t Tuple, fromLocal bool) {
	n.mu.Lock()
	dests := n.fwd[int(t.Stream)]
	hasLocal := len(n.subs[int(t.Stream)]) > 0
	n.mu.Unlock()
	if fromLocal && hasLocal {
		n.mu.Lock()
		if !n.closing {
			n.emitted++
			n.queue = append(n.queue, t)
			n.qcond.Signal()
		}
		n.mu.Unlock()
	}
	for _, d := range dests {
		if err := n.send(d.Addr, t); err == nil {
			n.mu.Lock()
			if x := n.xfer[int(t.Stream)]; x > 0 {
				n.busy += time.Duration(x / n.capacity * float64(time.Second))
			}
			n.emitted++
			n.mu.Unlock()
		}
	}
}

func (n *Node) send(addr string, t Tuple) error {
	n.peersMu.Lock()
	p, ok := n.peers[addr]
	if !ok {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			n.peersMu.Unlock()
			return err
		}
		tw, err := NewTupleWriter(conn)
		if err != nil {
			conn.Close()
			n.peersMu.Unlock()
			return err
		}
		p = &peerConn{tw: tw, c: conn}
		n.peers[addr] = p
	}
	n.peersMu.Unlock()
	p.mu.Lock()
	err := p.tw.Send(t)
	if err == nil {
		err = p.tw.Flush()
	}
	p.mu.Unlock()
	if err != nil {
		// Drop the broken connection so the next send redials instead of
		// failing forever against a dead socket.
		n.peersMu.Lock()
		if n.peers[addr] == p {
			delete(n.peers, addr)
		}
		n.peersMu.Unlock()
		p.c.Close()
	}
	return err
}

// controlRequest is one JSON control-plane message.
type controlRequest struct {
	Cmd      string         `json:"cmd"`
	Spec     *NodeSpec      `json:"spec,omitempty"`
	Op       *OpSpec        `json:"op,omitempty"`
	OpID     *int           `json:"opId,omitempty"`
	Routes   map[int][]Dest `json:"routes,omitempty"`
	StallSec *float64       `json:"stallSec,omitempty"`
}

// ControlResponse answers a control request.
type ControlResponse struct {
	OK    bool       `json:"ok"`
	Err   string     `json:"err,omitempty"`
	Stats *NodeStats `json:"stats,omitempty"`
}

// NodeStats is the metrics snapshot the control plane reports.
type NodeStats struct {
	NodeID      int     `json:"nodeId"`
	Utilization float64 `json:"utilization"`
	QueueLen    int     `json:"queueLen"`
	Injected    int64   `json:"injected"`
	Emitted     int64   `json:"emitted"`
	ElapsedSec  float64 `json:"elapsedSec"`

	// Per-operator measured cost and selectivity (the Section 7.1 trial-run
	// statistics used to build load models).
	OpCost map[int]float64 `json:"opCost,omitempty"`
	OpSel  map[int]float64 `json:"opSel,omitempty"`
}

func (n *Node) serveControl(br *bufio.Reader, conn net.Conn) {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(br)
	for {
		var req controlRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := n.handleControl(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handleControl(req *controlRequest) *ControlResponse {
	switch req.Cmd {
	case "deploy":
		if req.Spec == nil {
			return &ControlResponse{Err: "deploy without spec"}
		}
		if err := n.deploy(req.Spec); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "start":
		n.mu.Lock()
		n.started = true
		n.startT = time.Now()
		n.busy = 0
		n.injected, n.emitted = 0, 0
		n.mu.Unlock()
		return &ControlResponse{OK: true}
	case "stats":
		return &ControlResponse{OK: true, Stats: n.Stats()}
	case "addop":
		if req.Op == nil {
			return &ControlResponse{Err: "addop without op"}
		}
		n.addOp(req.Op, req.Routes)
		return &ControlResponse{OK: true}
	case "removeop":
		if req.OpID == nil {
			return &ControlResponse{Err: "removeop without opId"}
		}
		if err := n.removeOp(*req.OpID, req.Routes); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "stall":
		if req.StallSec == nil || *req.StallSec < 0 {
			return &ControlResponse{Err: "stall needs a non-negative duration"}
		}
		n.stall(*req.StallSec)
		return &ControlResponse{OK: true}
	case "stop":
		n.mu.Lock()
		n.started = false
		n.mu.Unlock()
		return &ControlResponse{OK: true}
	default:
		return &ControlResponse{Err: fmt.Sprintf("unknown command %q", req.Cmd)}
	}
}

func (n *Node) deploy(spec *NodeSpec) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return errors.New("engine: cannot deploy while started")
	}
	n.spec = spec
	n.ops = map[int]*liveOp{}
	n.subs = map[int][]int{}
	n.fwd = map[int][]Dest{}
	n.relays = map[int][]Dest{}
	n.xfer = map[int]float64{}
	for _, os := range spec.Ops {
		lo := &liveOp{spec: os, sideOf: map[int]int{}}
		for i, in := range os.Inputs {
			if i < 2 {
				lo.sideOf[in] = i
			}
		}
		n.ops[os.ID] = lo
	}
	for sid, dests := range spec.Routes {
		for _, d := range dests {
			if d.Local {
				n.subs[sid] = append(n.subs[sid], d.LocalOp)
			} else {
				n.fwd[sid] = append(n.fwd[sid], d)
			}
		}
	}
	for sid, x := range spec.XferCost {
		n.xfer[sid] = x
	}
	return nil
}

// addOp installs one operator at runtime and merges the supplied routes
// (local subscriptions and forwards), deduplicating existing entries.
func (n *Node) addOp(spec *OpSpec, routes map[int][]Dest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo := &liveOp{spec: *spec, sideOf: map[int]int{}}
	for i, in := range spec.Inputs {
		if i < 2 {
			lo.sideOf[in] = i
		}
	}
	n.ops[spec.ID] = lo
	n.mergeRoutesLocked(routes)
}

// removeOp uninstalls one operator: its local subscriptions disappear and
// the given relay routes take over its input streams (forwarding in-flight
// and future tuples toward the new home).
func (n *Node) removeOp(id int, relay map[int][]Dest) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ops[id]; !ok {
		return fmt.Errorf("engine: operator %d not deployed here", id)
	}
	delete(n.ops, id)
	for sid, subs := range n.subs {
		kept := subs[:0]
		for _, op := range subs {
			if op != id {
				kept = append(kept, op)
			}
		}
		n.subs[sid] = kept
	}
	// Tuples on the removed operator's input streams now relay to its new
	// home — both tuples arriving from the network (relays, kept separate
	// from producer forwards so they never loop: a relay target consumes
	// locally and installs no relay of its own) and tuples produced by
	// co-located upstream operators (fwd).
	for sid, dests := range relay {
		for _, d := range dests {
			if d.Local {
				continue
			}
			if !hasDest(n.relays[sid], d.Addr) {
				n.relays[sid] = append(n.relays[sid], d)
			}
			if !hasDest(n.fwd[sid], d.Addr) {
				n.fwd[sid] = append(n.fwd[sid], d)
			}
		}
	}
	return nil
}

func hasDest(dests []Dest, addr string) bool {
	for _, d := range dests {
		if !d.Local && d.Addr == addr {
			return true
		}
	}
	return false
}

// mergeRoutesLocked merges route entries, skipping exact duplicates.
func (n *Node) mergeRoutesLocked(routes map[int][]Dest) {
	for sid, dests := range routes {
		for _, d := range dests {
			if d.Local {
				dup := false
				for _, existing := range n.subs[sid] {
					if existing == d.LocalOp {
						dup = true
					}
				}
				if !dup {
					n.subs[sid] = append(n.subs[sid], d.LocalOp)
				}
			} else {
				dup := false
				for _, existing := range n.fwd[sid] {
					if existing.Addr == d.Addr {
						dup = true
					}
				}
				if !dup {
					n.fwd[sid] = append(n.fwd[sid], d)
				}
			}
		}
	}
}

// stall charges the virtual CPU with a state-transfer pause by enqueueing
// an overhead work item of the given wall-clock duration.
func (n *Node) stall(sec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closing {
		return
	}
	n.queue = append(n.queue, Tuple{Stream: stallStream, Value: sec * n.capacity})
	n.qcond.Signal()
}

// stallStream is the reserved stream id carrying stall work items.
const stallStream int32 = -1

// Stats snapshots the node's metrics.
func (n *Node) Stats() *NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := &NodeStats{
		QueueLen: len(n.queue) - n.qhead,
		Injected: n.injected,
		Emitted:  n.emitted,
		OpCost:   map[int]float64{},
		OpSel:    map[int]float64{},
	}
	if n.spec != nil {
		s.NodeID = n.spec.NodeID
	}
	if n.started {
		elapsed := time.Since(n.startT)
		s.ElapsedSec = elapsed.Seconds()
		if elapsed > 0 {
			s.Utilization = float64(n.busy) / float64(elapsed)
			if s.Utilization > 1 {
				s.Utilization = 1
			}
		}
	}
	for id := range n.ops {
		if c, ok := n.estimator.Cost(id); ok {
			s.OpCost[id] = c
		}
		if sel, ok := n.estimator.Selectivity(id); ok {
			s.OpSel[id] = sel
		}
	}
	return s
}

package engine

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/stats"
)

// ShedPolicy selects which tuple is sacrificed when the bounded ingress
// queue is full.
type ShedPolicy int

const (
	// DropNewest rejects the arriving tuple (default: keeps the oldest
	// work, preserving FIFO latency for tuples already admitted).
	DropNewest ShedPolicy = iota
	// DropOldest evicts the head of the queue to admit the arrival
	// (bounds staleness: fresh tuples win over stale backlog).
	DropOldest
)

func (p ShedPolicy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "drop-newest"
}

// ParseShedPolicy parses "drop-newest" | "drop-oldest".
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "drop-newest":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return DropNewest, fmt.Errorf("engine: unknown shed policy %q (want drop-newest|drop-oldest)", s)
	}
}

// NodeConfig tunes the node's data-plane resilience knobs. The zero value
// selects the defaults noted on each field.
type NodeConfig struct {
	// IngressCap bounds the work queue; arrivals beyond it are shed per
	// ShedPolicy. <= 0 selects DefaultIngressCap.
	IngressCap int
	// ShedPolicy picks the victim when the ingress queue is full.
	ShedPolicy ShedPolicy
	// OutboxCap bounds each per-peer outbox channel; overflow drops with a
	// counter. <= 0 selects DefaultOutboxCap.
	OutboxCap int
	// BackoffBase/BackoffMax shape the reconnect schedule
	// (base·2^attempt capped at max, ±25% jitter). Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DialTimeout bounds each outbox dial. Default 2s.
	DialTimeout time.Duration
	// FlushTimeout is the per-flush write deadline, so a stalled (but not
	// dead) peer surfaces as a link failure. Default 2s.
	FlushTimeout time.Duration
	// BatchMax bounds how many tuples one lock acquisition may move on the
	// hot path: an ingress admission chunk, a worker dequeue run, and an
	// outbox wire batch. 1 restores the per-tuple hot path (the
	// pre-batching baseline rodload measures against). <= 0 selects
	// DefaultBatchMax.
	BatchMax int
}

// Default data-plane bounds.
const (
	DefaultIngressCap = 100000
	DefaultOutboxCap  = 4096
	DefaultBatchMax   = 256
)

func (cfg *NodeConfig) applyDefaults() {
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = DefaultIngressCap
	}
	if cfg.OutboxCap <= 0 {
		cfg.OutboxCap = DefaultOutboxCap
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 2 * time.Second
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = DefaultBatchMax
	}
	if cfg.BatchMax > MaxBatchWire {
		cfg.BatchMax = MaxBatchWire
	}
}

// Node is one engine process: it listens for control and tuple connections,
// hosts deployed operators, and runs a single virtual CPU of the configured
// capacity (cost-units of operator work completed per wall second).
type Node struct {
	capacity float64
	cfg      NodeConfig
	ln       net.Listener

	mu       sync.Mutex
	spec     *NodeSpec
	ops      map[int]*liveOp
	subs     map[int][]int  // stream → local consumer ops
	fwd      map[int][]Dest // stream → remote destinations (producer side)
	relays   map[int][]Dest // stream → relay targets for *inbound* tuples (post-migration)
	parts    map[int]*partTable
	xfer     map[int]float64
	started  bool
	startT   time.Time
	busy     time.Duration // virtual CPU time consumed
	injected int64
	emitted  int64

	queue        []Tuple
	qhead        int
	inRun        int // tuples drained into the worker's current run
	qcond        *sync.Cond
	closing      bool
	shedTotal    int64
	shedByStream map[int32]int64
	shedding     bool

	droppedNoRoute int64          // inbound tuples with no local sub and no relay
	noRouteWarned  map[int32]bool // per-stream one-shot warn latch

	peers       map[string]*outbox
	peersMu     sync.Mutex
	peersClosed bool

	faultsMu sync.Mutex
	faults   map[string]*LinkFault

	connsMu sync.Mutex
	conns   map[net.Conn]bool

	estimator    *stats.CostEstimator
	wg           sync.WaitGroup
	sendMaxNanos atomic.Int64 // worst observed send() duration (worker path)
	egress       []egressRun  // worker-owned routeBatch grouping scratch

	probe       atomic.Pointer[nodeProbe] // observer state; see SetObserver
	relayWarned map[string]bool           // per-peer latch; re-armed on recovery
}

// nodeProbe bundles the observer state so data-plane goroutines (ingress,
// worker, outboxes) read it with one atomic load instead of contending n.mu.
type nodeProbe struct {
	ev     *obs.EventLog
	stages *obs.StageSet
	every  int64
}

type liveOp struct {
	spec      OpSpec
	selAcc    float64
	window    [2][]int64 // join windows: origin-arrival wall ns per side
	sideOf    map[int]int
	processed int64
}

// partTable is a node's keyed routing table for one sharded stream: fixed
// slots map to shard indices, shard indices to destinations (a co-located
// replica, or a remote replica home). relay records the new home of a
// replica that migrated away from this node, so keyed tuples addressed to
// the departed copy follow it instead of vanishing. counts accumulates
// per-slot routed tuples on the splitter's home — the observed slot rates
// skew-aware repartitioning feeds on. All fields are guarded by n.mu.
type partTable struct {
	parent string
	k      int
	slots  []int
	shards []Dest
	ops    []int
	counts []int64
	relay  map[int]string
}

func newPartTable(ps *PartitionSpec) *partTable {
	return &partTable{
		parent: ps.Parent,
		k:      ps.K,
		slots:  append([]int(nil), ps.Slots...),
		shards: append([]Dest(nil), ps.Shards...),
		ops:    append([]int(nil), ps.Ops...),
		counts: make([]int64, len(ps.Slots)),
		relay:  map[int]string{},
	}
}

// slotOf maps a tuple to its partition slot. Unkeyed tuples (Key zero)
// hash their sequence number instead, so a keyless workload degrades to a
// uniform spread rather than collapsing onto one shard.
func slotOf(t *Tuple) int {
	k := t.Key
	if k == 0 {
		k = uint64(t.Seq)
	}
	return query.SlotOfKey(k)
}

// NewNode starts a node listening on addr ("127.0.0.1:0" for an ephemeral
// port) with the given virtual CPU capacity and default resilience bounds.
func NewNode(addr string, capacity float64) (*Node, error) {
	return NewNodeConfig(addr, capacity, NodeConfig{})
}

// NewNodeConfig starts a node with explicit data-plane bounds.
func NewNodeConfig(addr string, capacity float64, cfg NodeConfig) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("engine: capacity %g must be positive", capacity)
	}
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: listen %s: %w", addr, err)
	}
	n := &Node{
		capacity:      capacity,
		cfg:           cfg,
		ln:            ln,
		ops:           map[int]*liveOp{},
		subs:          map[int][]int{},
		fwd:           map[int][]Dest{},
		relays:        map[int][]Dest{},
		parts:         map[int]*partTable{},
		xfer:          map[int]float64{},
		shedByStream:  map[int32]int64{},
		noRouteWarned: map[int32]bool{},
		peers:         map[string]*outbox{},
		faults:        map[string]*LinkFault{},
		conns:         map[net.Conn]bool{},
		estimator:     stats.NewCostEstimator(),
		relayWarned:   map[string]bool{},
	}
	n.qcond = sync.NewCond(&n.mu)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.worker()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetObserver attaches an event log for control-plane events and sampled
// per-tuple trace spans, plus the per-stage latency histograms the spans
// feed (1 in traceEvery tuples per stream is sampled; 0 disables tracing).
// The obs.EventLog methods and obs.StageSet.Observe are nil-receiver safe,
// so instrumentation sites emit unconditionally.
func (n *Node) SetObserver(ev *obs.EventLog, stages *obs.StageSet, traceEvery int64) {
	n.probe.Store(&nodeProbe{ev: ev, stages: stages, every: traceEvery})
}

// observer returns the attached observer state (nil/0 before SetObserver).
func (n *Node) observer() (*obs.EventLog, *obs.StageSet, int64) {
	if p := n.probe.Load(); p != nil {
		return p.ev, p.stages, p.every
	}
	return nil, nil, 0
}

// tracePick reports whether the sampling stride selects tuple t. The
// stride offset is derived from the stream id (a splitmix-style hash), so
// every stream rotates through its own sampling phase: with the previous
// shared `Seq%every == 0` residue, streams whose seqs never hit zero modulo
// the stride (or that emit fewer than `every` tuples) went entirely
// unsampled for whole runs.
func tracePick(every int64, t Tuple) bool {
	if every <= 0 || t.Stream < 0 {
		return false
	}
	off := int64(((uint64(uint32(t.Stream)) * 0x9E3779B97F4A7C15) >> 33) % uint64(every))
	return t.Seq%every == off
}

// Close shuts the node down and waits for its goroutines. Outboxes drain
// best-effort (buffered tuples are flushed when the link is up, counted as
// dropped otherwise) before their goroutines exit.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return nil
	}
	n.closing = true
	n.qcond.Broadcast()
	n.mu.Unlock()
	err := n.ln.Close()
	n.peersMu.Lock()
	if !n.peersClosed {
		n.peersClosed = true
		for _, o := range n.peers {
			close(o.quit)
		}
	}
	n.peersMu.Unlock()
	n.connsMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connsMu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

func (n *Node) serveConn(conn net.Conn) {
	n.connsMu.Lock()
	n.conns[conn] = true
	n.connsMu.Unlock()
	defer func() {
		conn.Close()
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 16*1024)
	kind, err := br.ReadByte()
	if err != nil {
		return
	}
	switch kind {
	case connControl:
		n.serveControl(br, conn)
	case connTuples:
		n.serveTuples(br)
	}
}

func (n *Node) serveTuples(r io.Reader) {
	tr := NewTupleReader(r)
	for {
		batch, err := tr.ReadBatch()
		if err != nil {
			return
		}
		n.enqueueInboundBatch(batch)
	}
}

// enqueueInbound accepts a single tuple arriving from the network (or a
// source injector); see enqueueInboundBatch for the amortized path.
func (n *Node) enqueueInbound(t Tuple) {
	batch := [1]Tuple{t}
	n.enqueueInboundBatch(batch[:])
}

// relayRun is one per-destination slice of tuples to forward, built while
// admitting a batch and shipped after the node lock is released.
type relayRun struct {
	addr string
	ts   []Tuple
}

// enqueueInboundBatch admits a batch of tuples arriving from the network
// (or a source injector) to the bounded work queue, taking n.mu once per
// chunk of at most BatchMax tuples instead of once per tuple. Shedding
// (per the configured policy), per-stream shed counters, the shed-onset
// hysteresis latch and relay fan-out are all computed batch-wise with
// per-tuple accounting preserved; relays are grouped per destination so
// the outbox is offered slices rather than single tuples.
func (n *Node) enqueueInboundBatch(ts []Tuple) {
	for len(ts) > 0 {
		chunk := ts
		if len(chunk) > n.cfg.BatchMax {
			chunk = ts[:n.cfg.BatchMax]
		}
		ts = ts[len(chunk):]
		n.enqueueChunk(chunk)
	}
}

// ingressSpan records one traced tuple's transit crossing for the span
// event emitted after the node lock is released.
type ingressSpan struct {
	stream int32
	seq    int64
	ts     int64
	wait   float64
}

func (n *Node) enqueueChunk(chunk []Tuple) {
	var relays []relayRun
	var noRouteStreams []int32
	admitted := false
	shedOnset := false
	var shedStream int32
	ev, stages, every := n.observer()
	var spans []ingressSpan
	var spanNow int64 // lazy arrival timestamp shared by the chunk's traced tuples
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return
	}
	for ci := range chunk {
		t := &chunk[ci]
		n.injected++
		// Mark trace samples at first ingress. Sources that pre-flag their
		// tuples use the same stride, so a legacy link that strips the
		// context re-selects the same tuples here (TraceTs restarts from the
		// origin Ts, keeping the telescoped sum equal to the sink latency).
		if every > 0 && t.Flags&TupleTraced == 0 && tracePick(every, *t) {
			t.Flags |= TupleTraced
		}
		if t.Flags&TupleTraced != 0 {
			if spanNow == 0 {
				spanNow = time.Now().UnixNano()
			}
			if t.TraceTs == 0 {
				t.TraceTs = t.Ts
			}
			wait := float64(spanNow-t.TraceTs) / float64(time.Second)
			t.TraceTs = spanNow
			stages.Observe(obs.StageTransit, wait)
			if ev != nil {
				spans = append(spans, ingressSpan{stream: t.Stream, seq: t.Seq, ts: t.Ts, wait: wait})
			}
		}
		// Receive-side transfer CPU cost.
		if x := n.xfer[int(t.Stream)]; x > 0 {
			n.busy += time.Duration(x / n.capacity * float64(time.Second))
		}
		// Keyed (sharded) streams route through the partition table: each
		// tuple goes to exactly one replica — targeted locally when that
		// replica lives here, forwarded to its home otherwise. The broadcast
		// subs/relays paths below never see partitioned streams.
		var relay []Dest
		var partFwd [1]Dest
		hasLocal := false
		if pt := n.parts[int(t.Stream)]; pt != nil {
			d := pt.shards[pt.slots[slotOf(t)]]
			if d.Local {
				if _, ok := n.ops[d.LocalOp]; ok {
					t.target = int32(d.LocalOp) + 1
					hasLocal = true
				} else if addr := pt.relay[d.LocalOp]; addr != "" {
					// The replica migrated away; follow it to its new home.
					partFwd[0] = Dest{Addr: addr}
					relay = partFwd[:]
				}
			} else {
				partFwd[0] = d
				relay = partFwd[:]
			}
		} else {
			relay = n.relays[int(t.Stream)]
			hasLocal = len(n.subs[int(t.Stream)]) > 0
		}
		if hasLocal {
			if len(n.queue)-n.qhead >= n.cfg.IngressCap {
				// Queue full: shed. Drop-newest rejects the arrival;
				// drop-oldest evicts the head to admit it.
				victim := *t
				if n.cfg.ShedPolicy == DropOldest {
					victim = n.queue[n.qhead]
					n.queue[n.qhead] = Tuple{}
					n.qhead++
					n.queue = append(n.queue, *t)
					admitted = true
				}
				n.shedTotal++
				n.shedByStream[victim.Stream]++
				if !n.shedding {
					n.shedding = true
					shedOnset = true
					shedStream = victim.Stream
				}
			} else {
				n.queue = append(n.queue, *t)
				admitted = true
			}
		} else if len(relay) == 0 {
			// No local consumer and no relay route: the tuple has nowhere
			// to go. Count it (and warn once per stream) instead of
			// silently absorbing it into the injected count.
			n.droppedNoRoute++
			if !n.noRouteWarned[t.Stream] {
				n.noRouteWarned[t.Stream] = true
				noRouteStreams = append(noRouteStreams, t.Stream)
			}
		}
		for _, d := range relay {
			i := 0
			for ; i < len(relays); i++ {
				if relays[i].addr == d.Addr {
					break
				}
			}
			if i == len(relays) {
				relays = append(relays, relayRun{addr: d.Addr})
			}
			relays[i].ts = append(relays[i].ts, *t)
		}
	}
	if admitted {
		n.qcond.Signal()
	}
	qlen := len(n.queue) - n.qhead
	shedTotal := n.shedTotal
	nodeID := n.nodeIDLocked()
	n.mu.Unlock()
	if shedOnset {
		ev.Emit(obs.LevelWarn, obs.EventShedOnset,
			"node", nodeID, "queue", qlen, "cap", n.cfg.IngressCap,
			"policy", n.cfg.ShedPolicy.String(), "stream", int(shedStream),
			"shed", shedTotal)
	}
	for _, sid := range noRouteStreams {
		ev.Emit(obs.LevelWarn, obs.EventNoRoute,
			"node", nodeID, "stream", int(sid))
	}
	for _, sp := range spans {
		ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "ingress",
			"node", nodeID, "stream", int(sp.stream), "seq", sp.seq,
			"ts", sp.ts, "wait", sp.wait)
	}
	// Relays are best-effort: the per-peer outbox absorbs (or drops) the
	// run without ever blocking the receive path, and link failures
	// surface as warn events latched per destination (re-armed on
	// recovery, so a peer that heals and fails again stays visible).
	for _, r := range relays {
		n.sendBatch(r.addr, r.ts)
	}
}

// nodeIDLocked returns the deployed node id (-1 before deployment).
// Callers must hold n.mu.
func (n *Node) nodeIDLocked() int {
	if n.spec == nil {
		return -1
	}
	return n.spec.NodeID
}

// QueueLen returns the current work-queue length.
func (n *Node) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue) - n.qhead
}

// workerRun holds the worker's reusable per-run scratch: the drained
// tuples, the per-stream consumer snapshot (subs slices are compacted in
// place by removeOp, so the worker copies the ids it needs under the
// drain lock), and the emitted outputs. Reuse keeps the steady-state
// dequeue path allocation-free.
type workerRun struct {
	tuples []Tuple
	outs   []Tuple
	cons   []consEntry
	tgts   []tgtEntry
	fwds   []relayRun // queued-before-migration tuples to relay onward
}

// tgtEntry caches the resolution of one targeted (keyed) delivery for the
// current run: the addressed replica when it is still installed, or the
// relay address of its new home when it migrated away mid-queue.
type tgtEntry struct {
	id    int32
	op    *liveOp
	relay string
}

// targetOf returns the cached resolution for a targeted tuple, resolving
// it from n.ops (and the stream's partition-table relay map) on a miss.
// Like consumersOf, the worker warms the cache for every tuple in the run
// under the drain lock, so out-of-lock calls always hit.
func (r *workerRun) targetOf(n *Node, t *Tuple) *tgtEntry {
	for i := range r.tgts {
		if r.tgts[i].id == t.target {
			return &r.tgts[i]
		}
	}
	e := tgtEntry{id: t.target}
	if op := n.ops[int(t.target)-1]; op != nil {
		e.op = op
	} else if pt := n.parts[int(t.Stream)]; pt != nil {
		e.relay = pt.relay[int(t.target)-1]
	}
	r.tgts = append(r.tgts, e)
	return &r.tgts[len(r.tgts)-1]
}

// fwdTo groups one tuple into the run's per-destination forward slices,
// reusing backing arrays across runs.
func (r *workerRun) fwdTo(addr string, t Tuple) {
	i := 0
	for ; i < len(r.fwds); i++ {
		if r.fwds[i].addr == addr {
			break
		}
	}
	if i == len(r.fwds) {
		if i < cap(r.fwds) {
			r.fwds = r.fwds[:i+1]
			r.fwds[i].addr = addr
			r.fwds[i].ts = r.fwds[i].ts[:0]
		} else {
			r.fwds = append(r.fwds, relayRun{addr: addr})
		}
	}
	r.fwds[i].ts = append(r.fwds[i].ts, t)
}

// consEntry caches one stream's local consumer operators for the current
// run. liveOp pointers stay valid after the lock is dropped: their mutable
// state is touched only by the worker itself, and a concurrent addOp or
// removeOp swaps map entries without mutating existing ones. The ops
// backing array is reused across runs. When a stream's subscriptions have
// all been removed (its operator migrated away between admission and
// processing), relay carries the stream's relay routes so the drained
// tuples follow the operator to its new home instead of vanishing.
type consEntry struct {
	sid   int32
	ops   []*liveOp
	relay []Dest
}

// consumersOf returns the cached consumer set for sid, resolving it from
// n.subs/n.ops on a miss (the worker resolves every stream in the run
// under the drain lock, so out-of-lock calls always hit the cache).
func (r *workerRun) consumersOf(n *Node, sid int32) []*liveOp {
	for i := range r.cons {
		if r.cons[i].sid == sid {
			return r.cons[i].ops
		}
	}
	if len(r.cons) < cap(r.cons) {
		r.cons = r.cons[:len(r.cons)+1]
	} else {
		r.cons = append(r.cons, consEntry{})
	}
	e := &r.cons[len(r.cons)-1]
	e.sid = sid
	e.ops = e.ops[:0]
	for _, id := range n.subs[int(sid)] {
		if op := n.ops[id]; op != nil {
			e.ops = append(e.ops, op)
		}
	}
	e.relay = e.relay[:0]
	if len(e.ops) == 0 {
		// The stream's consumer left after these tuples were admitted
		// (operator migration). Snapshot the relay routes so the worker can
		// forward the stranded tuples to the new home.
		e.relay = append(e.relay, n.relays[int(sid)]...)
	}
	return e.ops
}

// relayOf returns the relay routes snapshotted for sid (non-empty only
// when the stream has no local consumers).
func (r *workerRun) relayOf(sid int32) []Dest {
	for i := range r.cons {
		if r.cons[i].sid == sid {
			return r.cons[i].relay
		}
	}
	return nil
}

// worker is the node's single virtual CPU: it dequeues tuples, charges
// their processing cost against wall time (sleeping whenever virtual time
// runs ahead), and routes outputs. The queue lock is taken once per run
// of up to BatchMax tuples, not once per tuple; per-tuple semantics
// (cost pacing, shed-clear hysteresis, trace spans) are preserved.
func (n *Node) worker() {
	defer n.wg.Done()
	var run workerRun
	for {
		n.mu.Lock()
		for len(n.queue)-n.qhead == 0 && !n.closing {
			n.qcond.Wait()
		}
		if n.closing {
			n.mu.Unlock()
			return
		}
		k := len(n.queue) - n.qhead
		if k > n.cfg.BatchMax {
			k = n.cfg.BatchMax
		}
		run.tuples = append(run.tuples[:0], n.queue[n.qhead:n.qhead+k]...)
		for i := 0; i < k; i++ {
			n.queue[n.qhead+i] = Tuple{}
		}
		n.qhead += k
		// Tuples leave the queue before they finish processing; a costly
		// run can hold them for hundreds of milliseconds. Track the count
		// so stats (and the quiescence barrier) never report an empty
		// pipeline while the worker still owns admitted tuples.
		n.inRun = k
		if n.qhead > 4096 && n.qhead*2 > len(n.queue) {
			n.queue = append(n.queue[:0], n.queue[n.qhead:]...)
			n.qhead = 0
		}
		qlen := len(n.queue) - n.qhead
		shedClear := false
		if n.shedding && qlen <= n.cfg.IngressCap/2 {
			// Hysteresis: declare shedding over once the backlog has
			// drained to half the cap, not at the first free slot.
			n.shedding = false
			shedClear = true
		}
		shedTotal := n.shedTotal
		run.cons = run.cons[:0]
		run.tgts = run.tgts[:0]
		for i := range run.tuples {
			t := &run.tuples[i]
			if t.Stream == stallStream {
				continue
			}
			if t.target != 0 {
				run.targetOf(n, t)
			} else {
				run.consumersOf(n, t.Stream)
			}
		}
		started := n.started
		start := n.startT
		busyBase := n.busy
		nodeID := n.nodeIDLocked()
		n.mu.Unlock()
		ev, stages, _ := n.observer()
		if shedClear {
			ev.Emit(obs.LevelInfo, obs.EventShedClear,
				"node", nodeID, "queue", qlen, "cap", n.cfg.IngressCap,
				"shed", shedTotal)
		}

		// Process the run outside the lock, pacing per tuple against a
		// locally accumulated busy delta (concurrent transfer-cost charges
		// land in n.busy and are picked up by the next run's base).
		var busyDelta time.Duration
		var stranded int64
		run.outs = run.outs[:0]
		run.fwds = run.fwds[:0]
		for _, t := range run.tuples {
			var cost float64
			outsBefore := len(run.outs)
			// Stage boundary: a traced tuple leaves the queue now; the time
			// since its ingress admission is queue wait, the time until its
			// outputs are ready (including virtual-CPU pacing) is service.
			tracedT := t.Flags&TupleTraced != 0 && t.Stream != stallStream
			var svcStart int64
			if tracedT {
				svcStart = time.Now().UnixNano()
			}
			if t.Stream == stallStream {
				// Migration state-transfer pause: Value already carries the
				// cost units making svc = Value/capacity = the stall seconds.
				cost = t.Value
			} else if t.target != 0 {
				// Targeted (keyed) delivery: exactly one addressed replica,
				// never the stream's broadcast consumer set. If the replica
				// migrated between admission and draining, forward to its
				// recorded new home; with no record left, count the loss.
				if e := run.targetOf(n, &t); e.op != nil {
					cost = n.process(e.op, t, &run.outs)
				} else if e.relay != "" {
					run.fwdTo(e.relay, t)
				} else {
					stranded++
				}
			} else if cons := run.consumersOf(n, t.Stream); len(cons) > 0 {
				for _, op := range cons {
					cost += n.process(op, t, &run.outs)
				}
			} else {
				// Admitted while a local consumer existed, drained after it
				// migrated away: relay toward the new home, or — with no
				// relay route left — count the loss instead of silently
				// absorbing the tuple (the conservation ledger audits this).
				relay := run.relayOf(t.Stream)
				if len(relay) == 0 {
					stranded++
				}
				for _, d := range relay {
					run.fwdTo(d.Addr, t)
				}
			}
			if cost > 0 {
				busyDelta += time.Duration(cost / n.capacity * float64(time.Second))
				if started {
					// Pace: virtual time must not run ahead of wall time.
					if ahead := busyBase + busyDelta - time.Since(start); ahead > 500*time.Microsecond {
						// Flush the accumulated virtual time before sleeping
						// so stats polled mid-sleep see it (a costly run can
						// carry seconds of virtual time; utilization must not
						// lag by that much). The zero-cost path never locks.
						n.mu.Lock()
						n.busy += busyDelta
						busyBase = n.busy
						n.mu.Unlock()
						busyDelta = 0
						time.Sleep(ahead)
					}
				}
			}
			if tracedT {
				svcEnd := time.Now().UnixNano()
				var queueSec float64
				if t.TraceTs > 0 {
					queueSec = float64(svcStart-t.TraceTs) / float64(time.Second)
				}
				svcSec := float64(svcEnd-svcStart) / float64(time.Second)
				stages.Observe(obs.StageQueue, queueSec)
				stages.Observe(obs.StageService, svcSec)
				// Outputs inherit the service-end boundary, so their next
				// crossing (outbox residence or local re-queue wait) starts
				// here and the stage durations keep telescoping.
				for j := outsBefore; j < len(run.outs); j++ {
					run.outs[j].TraceTs = svcEnd
				}
				ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "process",
					"node", nodeID, "stream", int(t.Stream), "seq", t.Seq,
					"ts", t.Ts, "queue", queueSec, "service", svcSec,
					"cost", cost, "outs", len(run.outs)-outsBefore)
			}
		}
		if busyDelta > 0 || stranded > 0 {
			n.mu.Lock()
			n.busy += busyDelta
			n.droppedNoRoute += stranded
			n.mu.Unlock()
		}
		for i := range run.fwds {
			n.sendBatch(run.fwds[i].addr, run.fwds[i].ts)
		}
		n.routeBatch(run.outs)
		// Only after the outputs are routed (and counted) does the run's
		// in-flight claim lapse — one uncontended lock per run, not per
		// tuple.
		n.mu.Lock()
		n.inRun = 0
		n.mu.Unlock()
	}
}

// process runs one tuple through one operator, appending emitted tuples
// to outs and returning the cost-units consumed. The caller resolved op
// under n.mu; op's mutable state is worker-owned, so no lock is held here.
func (n *Node) process(op *liveOp, t Tuple, outs *[]Tuple) float64 {
	cost := op.spec.Cost
	produced := op.spec.Selectivity
	if op.spec.Kind == "join" {
		now := time.Now().UnixNano()
		side := op.sideOf[int(t.Stream)]
		op.window[side] = append(op.window[side], now)
		horizon := now - int64(op.spec.Window/2*float64(time.Second))
		for s := range op.window {
			win := op.window[s]
			lo := 0
			for lo < len(win) && win[lo] < horizon {
				lo++
			}
			op.window[s] = win[lo:]
		}
		pairs := len(op.window[1-side])
		cost = op.spec.Cost * float64(pairs)
		produced = op.spec.Selectivity * float64(pairs)
	}
	op.selAcc += produced
	k := int(op.selAcc)
	op.selAcc -= float64(k)
	op.processed++
	n.estimator.Record(op.spec.ID, stats.OpSample{In: 1, Out: int64(k), CPU: cost})
	for i := 0; i < k; i++ {
		// Outputs inherit the partition key (so downstream sharded stages
		// keep keyed semantics) but never the in-memory target: addressing
		// is resolved per stream by whoever routes the output.
		*outs = append(*outs, Tuple{
			Stream: int32(op.spec.Out), Ts: t.Ts, Seq: t.Seq, Value: t.Value,
			Key: t.Key, Flags: t.Flags, TraceTs: t.TraceTs,
		})
	}
	return cost
}

// egressRun is one per-destination slice of operator outputs, grouped by
// routeBatch so the outbox is offered whole slices. Worker-owned scratch.
type egressRun struct {
	addr string
	ts   []Tuple
}

// routeBatch delivers a run of operator-emitted tuples: local consumers
// re-enter the queue under a single lock acquisition; remote destinations
// are aggregated per peer and handed to the outbox as slices (charging
// send-side transfer cost per accepted tuple). Only the worker calls
// this, so the grouping scratch is reused across runs without locking.
func (n *Node) routeBatch(outs []Tuple) {
	if len(outs) == 0 {
		return
	}
	groups := n.egress[:0]
	admitted := false
	n.mu.Lock()
	for _, t := range outs {
		// Partitioned (keyed) streams: pick the one replica owning the
		// tuple's slot — a targeted local re-entry when it lives here, a
		// grouped remote send otherwise. This is also where the per-slot
		// rate counters accumulate: every tuple of the keyed stream passes
		// through its splitter's home exactly once.
		if pt := n.parts[int(t.Stream)]; pt != nil {
			slot := slotOf(&t)
			pt.counts[slot]++
			d := pt.shards[pt.slots[slot]]
			if d.Local {
				if _, ok := n.ops[d.LocalOp]; ok && !n.closing {
					t.target = int32(d.LocalOp) + 1
					n.emitted++
					n.queue = append(n.queue, t)
					admitted = true
					continue
				}
				addr := pt.relay[d.LocalOp]
				if addr == "" {
					n.droppedNoRoute++
					continue
				}
				d = Dest{Addr: addr}
			}
			i := 0
			for ; i < len(groups); i++ {
				if groups[i].addr == d.Addr {
					break
				}
			}
			if i == len(groups) {
				if i < cap(groups) {
					groups = groups[:i+1]
					groups[i].addr = d.Addr
					groups[i].ts = groups[i].ts[:0]
				} else {
					groups = append(groups, egressRun{addr: d.Addr})
				}
			}
			groups[i].ts = append(groups[i].ts, t)
			continue
		}
		if len(n.subs[int(t.Stream)]) > 0 && !n.closing {
			n.emitted++
			n.queue = append(n.queue, t)
			admitted = true
		}
		for _, d := range n.fwd[int(t.Stream)] {
			i := 0
			for ; i < len(groups); i++ {
				if groups[i].addr == d.Addr {
					break
				}
			}
			if i == len(groups) {
				if i < cap(groups) {
					groups = groups[:i+1]
					groups[i].addr = d.Addr
					groups[i].ts = groups[i].ts[:0]
				} else {
					groups = append(groups, egressRun{addr: d.Addr})
				}
			}
			groups[i].ts = append(groups[i].ts, t)
		}
	}
	if admitted {
		n.qcond.Signal()
	}
	n.mu.Unlock()
	n.egress = groups
	for gi := range groups {
		g := &groups[gi]
		accepted := n.sendBatch(g.addr, g.ts)
		if accepted == 0 {
			continue
		}
		var xferBusy time.Duration
		n.mu.Lock()
		for _, t := range g.ts[:accepted] {
			if x := n.xfer[int(t.Stream)]; x > 0 {
				xferBusy += time.Duration(x / n.capacity * float64(time.Second))
			}
			n.emitted++
		}
		n.busy += xferBusy
		n.mu.Unlock()
	}
}

// send hands one tuple to the destination's outbox without ever blocking;
// see sendBatch. Reports whether the tuple was accepted; rejected tuples
// are counted in the outbox's drop counter.
func (n *Node) send(addr string, t Tuple) bool {
	batch := [1]Tuple{t}
	return n.sendBatch(addr, batch[:]) == 1
}

// sendBatch offers a run of tuples to the destination's outbox without
// ever blocking: a dead, slow or partitioned peer costs the caller one
// bounded ring insertion (accounted, worst case, in sendMaxNanos — the
// chaos test asserts the worker path never stalls). It returns how many
// tuples were accepted (a prefix of ts); the rest are counted in the
// outbox's drop counter.
func (n *Node) sendBatch(addr string, ts []Tuple) int {
	t0 := time.Now()
	o := n.outboxFor(addr)
	accepted := 0
	if o != nil {
		accepted = o.enqueueBatch(ts)
	}
	if d := int64(time.Since(t0)); d > n.sendMaxNanos.Load() {
		n.sendMaxNanos.Store(d)
	}
	return accepted
}

// outboxFor returns (creating on first use) the outbox for addr; nil once
// the node is closing.
func (n *Node) outboxFor(addr string) *outbox {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peersClosed {
		return nil
	}
	o, ok := n.peers[addr]
	if !ok {
		o = newOutbox(n, addr)
		n.peers[addr] = o
		n.wg.Add(1)
		go o.run()
	}
	return o
}

// linkFault returns the injected fault for addr (nil when healthy).
func (n *Node) linkFault(addr string) *LinkFault {
	n.faultsMu.Lock()
	defer n.faultsMu.Unlock()
	return n.faults[addr]
}

// SetLinkFault injects a fault on the outbound link to addr: severing also
// breaks the live connection so the outbox falls into its reconnect cycle.
func (n *Node) SetLinkFault(addr string, f LinkFault) {
	n.faultsMu.Lock()
	n.faults[addr] = &f
	n.faultsMu.Unlock()
	if f.Sever {
		n.peersMu.Lock()
		o := n.peers[addr]
		n.peersMu.Unlock()
		if o != nil {
			o.breakConn()
		}
	}
	n.mu.Lock()
	nodeID := n.nodeIDLocked()
	n.mu.Unlock()
	ev, _, _ := n.observer()
	ev.Emit(obs.LevelWarn, obs.EventLinkFault, "node", nodeID, "addr", addr,
		"sever", f.Sever, "drop", f.Drop, "delayMs", f.Delay.Seconds()*1000)
}

// ClearLinkFault heals the link to addr ("" heals every link).
func (n *Node) ClearLinkFault(addr string) {
	n.faultsMu.Lock()
	if addr == "" {
		n.faults = map[string]*LinkFault{}
	} else {
		delete(n.faults, addr)
	}
	n.faultsMu.Unlock()
	n.mu.Lock()
	nodeID := n.nodeIDLocked()
	n.mu.Unlock()
	ev, _, _ := n.observer()
	ev.Emit(obs.LevelInfo, obs.EventLinkFault, "node", nodeID, "addr", addr, "clear", true)
}

// peerDown records a link failure. The relay-error warn event is latched
// per destination so a flapping peer does not flood the log, and the latch
// is re-armed by peerUp so each new failure episode stays visible.
func (n *Node) peerDown(addr string, err error) {
	n.mu.Lock()
	warned := n.relayWarned[addr]
	n.relayWarned[addr] = true
	nodeID := n.nodeIDLocked()
	n.mu.Unlock()
	ev, _, _ := n.observer()
	if !warned {
		ev.Emit(obs.LevelWarn, obs.EventRelayError,
			"node", nodeID, "addr", addr, "err", err.Error())
	}
}

// peerUp re-arms the relay-error latch after a successful (re)connection.
func (n *Node) peerUp(addr string) {
	n.mu.Lock()
	warned := n.relayWarned[addr]
	delete(n.relayWarned, addr)
	nodeID := n.nodeIDLocked()
	n.mu.Unlock()
	ev, _, _ := n.observer()
	if warned {
		ev.Emit(obs.LevelInfo, obs.EventPeerUp, "node", nodeID, "addr", addr)
	}
}

// outboxSnapshots returns per-peer outbox accounting, sorted by address.
func (n *Node) outboxSnapshots() []outboxStats {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	out := make([]outboxStats, 0, len(n.peers))
	for _, o := range n.peers {
		out = append(out, o.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// controlRequest is one JSON control-plane message.
type controlRequest struct {
	Cmd      string         `json:"cmd"`
	Spec     *NodeSpec      `json:"spec,omitempty"`
	Op       *OpSpec        `json:"op,omitempty"`
	OpID     *int           `json:"opId,omitempty"`
	Routes   map[int][]Dest `json:"routes,omitempty"`
	Part     *PartitionSpec `json:"part,omitempty"`
	StallSec *float64       `json:"stallSec,omitempty"`
	Fault    *FaultSpec     `json:"fault,omitempty"`
}

// FaultSpec is the control-plane fault-injection command: sever/drop/delay
// an outbound link, clear faults, or kill the node outright (the process
// answers OK, then closes — restart it externally to recover).
type FaultSpec struct {
	Addr    string  `json:"addr,omitempty"`
	Sever   bool    `json:"sever,omitempty"`
	Drop    bool    `json:"drop,omitempty"`
	DelayMs float64 `json:"delayMs,omitempty"`
	Clear   bool    `json:"clear,omitempty"`
	Kill    bool    `json:"kill,omitempty"`
}

// ControlResponse answers a control request.
type ControlResponse struct {
	OK    bool       `json:"ok"`
	Err   string     `json:"err,omitempty"`
	Stats *NodeStats `json:"stats,omitempty"`
}

// NodeStats is the metrics snapshot the control plane reports.
type NodeStats struct {
	NodeID      int     `json:"nodeId"`
	Utilization float64 `json:"utilization"`
	QueueLen    int     `json:"queueLen"`
	Injected    int64   `json:"injected"`
	Emitted     int64   `json:"emitted"`
	ElapsedSec  float64 `json:"elapsedSec"`

	// WorkerInFlight counts tuples the worker has dequeued but not yet
	// finished processing and routing: admitted work that QueueLen no
	// longer covers (a costly batch can hold it for hundreds of ms).
	WorkerInFlight int64 `json:"workerInFlight,omitempty"`

	// Load-shedding accounting: tuples refused (or evicted from) the
	// bounded ingress queue, total and per stream.
	Shed         int64         `json:"shed,omitempty"`
	ShedByStream map[int]int64 `json:"shedByStream,omitempty"`

	// DroppedNoRoute counts inbound tuples discarded because their stream
	// had neither a local subscription nor a relay route (a routing gap —
	// each affected stream also emits one no_route warn event).
	DroppedNoRoute int64 `json:"droppedNoRoute,omitempty"`

	// PartCounts reports, per keyed stream, the cumulative tuples routed
	// through each partition slot. Only a splitter's home accumulates
	// counts (every keyed tuple crosses it exactly once), so summing over
	// nodes never double-counts.
	PartCounts map[int][]int64 `json:"partCounts,omitempty"`

	// Outbox accounting summed over peers: enqueued == sent + dropped +
	// pending at quiescence. Reconnects counts links re-established after
	// a failure; SendMaxMs is the worst wall time one send() spent handing
	// a tuple to an outbox (the non-blocking-worker-path guarantee).
	OutboxEnqueued int64   `json:"outboxEnqueued,omitempty"`
	OutboxSent     int64   `json:"outboxSent,omitempty"`
	OutboxDropped  int64   `json:"outboxDropped,omitempty"`
	OutboxPending  int64   `json:"outboxPending,omitempty"`
	PeerReconnects int64   `json:"peerReconnects,omitempty"`
	SendMaxMs      float64 `json:"sendMaxMs,omitempty"`

	// Per-operator measured cost and selectivity (the Section 7.1 trial-run
	// statistics used to build load models).
	OpCost map[int]float64 `json:"opCost,omitempty"`
	OpSel  map[int]float64 `json:"opSel,omitempty"`
}

func (n *Node) serveControl(br *bufio.Reader, conn net.Conn) {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(br)
	for {
		var req controlRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := n.handleControl(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handleControl(req *controlRequest) *ControlResponse {
	switch req.Cmd {
	case "deploy":
		if req.Spec == nil {
			return &ControlResponse{Err: "deploy without spec"}
		}
		if err := n.deploy(req.Spec); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "start":
		n.mu.Lock()
		n.started = true
		n.startT = time.Now()
		n.busy = 0
		n.injected, n.emitted = 0, 0
		n.mu.Unlock()
		return &ControlResponse{OK: true}
	case "stats":
		return &ControlResponse{OK: true, Stats: n.Stats()}
	case "addop":
		if req.Op == nil {
			return &ControlResponse{Err: "addop without op"}
		}
		n.addOp(req.Op, req.Routes)
		return &ControlResponse{OK: true}
	case "removeop":
		if req.OpID == nil {
			return &ControlResponse{Err: "removeop without opId"}
		}
		if err := n.removeOp(*req.OpID, req.Routes); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "repart":
		if req.Part == nil {
			return &ControlResponse{Err: "repart without partition spec"}
		}
		if err := n.repart(req.Part); err != nil {
			return &ControlResponse{Err: err.Error()}
		}
		return &ControlResponse{OK: true}
	case "stall":
		if req.StallSec == nil || *req.StallSec < 0 {
			return &ControlResponse{Err: "stall needs a non-negative duration"}
		}
		n.stall(*req.StallSec)
		return &ControlResponse{OK: true}
	case "fault":
		if req.Fault == nil {
			return &ControlResponse{Err: "fault without spec"}
		}
		switch f := req.Fault; {
		case f.Kill:
			// Answer first, then die: the brief delay lets the OK response
			// flush before the listener and connections are torn down.
			go func() {
				time.Sleep(20 * time.Millisecond)
				n.Close()
			}()
		case f.Clear:
			n.ClearLinkFault(f.Addr)
		default:
			if f.Addr == "" {
				return &ControlResponse{Err: "fault needs an addr (or clear/kill)"}
			}
			n.SetLinkFault(f.Addr, LinkFault{
				Sever: f.Sever,
				Drop:  f.Drop,
				Delay: time.Duration(f.DelayMs * float64(time.Millisecond)),
			})
		}
		return &ControlResponse{OK: true}
	case "stop":
		n.mu.Lock()
		n.started = false
		n.mu.Unlock()
		return &ControlResponse{OK: true}
	default:
		return &ControlResponse{Err: fmt.Sprintf("unknown command %q", req.Cmd)}
	}
}

func (n *Node) deploy(spec *NodeSpec) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return errors.New("engine: cannot deploy while started")
	}
	n.spec = spec
	n.ops = map[int]*liveOp{}
	n.subs = map[int][]int{}
	n.fwd = map[int][]Dest{}
	n.relays = map[int][]Dest{}
	n.parts = map[int]*partTable{}
	n.xfer = map[int]float64{}
	for i := range spec.Parts {
		n.parts[spec.Parts[i].Stream] = newPartTable(&spec.Parts[i])
	}
	for _, os := range spec.Ops {
		lo := &liveOp{spec: os, sideOf: map[int]int{}}
		for i, in := range os.Inputs {
			if i < 2 {
				lo.sideOf[in] = i
			}
		}
		n.ops[os.ID] = lo
	}
	for sid, dests := range spec.Routes {
		for _, d := range dests {
			if d.Local {
				n.subs[sid] = append(n.subs[sid], d.LocalOp)
			} else {
				n.fwd[sid] = append(n.fwd[sid], d)
			}
		}
	}
	for sid, x := range spec.XferCost {
		n.xfer[sid] = x
	}
	return nil
}

// addOp installs one operator at runtime and merges the supplied routes
// (local subscriptions and forwards), deduplicating existing entries.
func (n *Node) addOp(spec *OpSpec, routes map[int][]Dest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo := &liveOp{spec: *spec, sideOf: map[int]int{}}
	for i, in := range spec.Inputs {
		if i < 2 {
			lo.sideOf[in] = i
		}
	}
	n.ops[spec.ID] = lo
	n.mergeRoutesLocked(routes)
}

// removeOp uninstalls one operator: its local subscriptions disappear and
// the given relay routes take over its input streams (forwarding in-flight
// and future tuples toward the new home).
func (n *Node) removeOp(id int, relay map[int][]Dest) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ops[id]; !ok {
		return fmt.Errorf("engine: operator %d not deployed here", id)
	}
	delete(n.ops, id)
	for sid, subs := range n.subs {
		kept := subs[:0]
		for _, op := range subs {
			if op != id {
				kept = append(kept, op)
			}
		}
		n.subs[sid] = kept
	}
	// Tuples on the removed operator's input streams now relay to its new
	// home — both tuples arriving from the network (relays, kept separate
	// from producer forwards so they never loop: a relay target consumes
	// locally and installs no relay of its own) and tuples produced by
	// co-located upstream operators (fwd).
	for sid, dests := range relay {
		for _, d := range dests {
			if d.Local {
				continue
			}
			if !hasDest(n.relays[sid], d.Addr) {
				n.relays[sid] = append(n.relays[sid], d)
			}
			if !hasDest(n.fwd[sid], d.Addr) {
				n.fwd[sid] = append(n.fwd[sid], d)
			}
			// A migrating shard replica: repoint its shard slot at the new
			// home and record the per-op relay, so keyed tuples — queued,
			// in-flight, or arriving from peers with stale tables — follow
			// it. (The blanket relays/fwd entries above are inert for
			// partitioned streams, whose routing bypasses those maps.)
			if pt := n.parts[sid]; pt != nil {
				for i, opID := range pt.ops {
					if opID == id && pt.shards[i].Local && pt.shards[i].LocalOp == id {
						pt.shards[i] = Dest{Addr: d.Addr}
					}
				}
				pt.relay[id] = d.Addr
			}
		}
	}
	return nil
}

// repart installs or replaces the keyed routing table of one sharded
// stream at runtime (slot reassignment, or a post-migration table push).
// Per-slot counters survive the swap so observed slot rates keep
// accumulating; relay entries for replicas the new table marks local
// again are retired.
func (n *Node) repart(ps *PartitionSpec) error {
	if ps.K < 1 || len(ps.Shards) != ps.K || len(ps.Ops) != ps.K {
		return fmt.Errorf("engine: repart stream %d: malformed table (k=%d, %d shards, %d ops)",
			ps.Stream, ps.K, len(ps.Shards), len(ps.Ops))
	}
	for _, s := range ps.Slots {
		if s < 0 || s >= ps.K {
			return fmt.Errorf("engine: repart stream %d: slot shard %d outside [0,%d)", ps.Stream, s, ps.K)
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	pt := n.parts[ps.Stream]
	if pt == nil {
		n.parts[ps.Stream] = newPartTable(ps)
		return nil
	}
	pt.parent = ps.Parent
	pt.k = ps.K
	pt.slots = append(pt.slots[:0], ps.Slots...)
	pt.shards = append(pt.shards[:0], ps.Shards...)
	pt.ops = append(pt.ops[:0], ps.Ops...)
	if len(pt.counts) != len(pt.slots) {
		pt.counts = make([]int64, len(pt.slots))
	}
	for i, d := range pt.shards {
		if d.Local {
			delete(pt.relay, pt.ops[i])
		}
	}
	return nil
}

func hasDest(dests []Dest, addr string) bool {
	for _, d := range dests {
		if !d.Local && d.Addr == addr {
			return true
		}
	}
	return false
}

// mergeRoutesLocked merges route entries, skipping exact duplicates.
func (n *Node) mergeRoutesLocked(routes map[int][]Dest) {
	for sid, dests := range routes {
		for _, d := range dests {
			if d.Local {
				dup := false
				for _, existing := range n.subs[sid] {
					if existing == d.LocalOp {
						dup = true
					}
				}
				if !dup {
					n.subs[sid] = append(n.subs[sid], d.LocalOp)
				}
			} else {
				dup := false
				for _, existing := range n.fwd[sid] {
					if existing.Addr == d.Addr {
						dup = true
					}
				}
				if !dup {
					n.fwd[sid] = append(n.fwd[sid], d)
				}
			}
		}
	}
}

// stall charges the virtual CPU with a state-transfer pause by enqueueing
// an overhead work item of the given wall-clock duration.
func (n *Node) stall(sec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closing {
		return
	}
	n.queue = append(n.queue, Tuple{Stream: stallStream, Value: sec * n.capacity})
	n.qcond.Signal()
}

// stallStream is the reserved stream id carrying stall work items.
const stallStream int32 = -1

// Stats snapshots the node's metrics.
func (n *Node) Stats() *NodeStats {
	n.mu.Lock()
	s := &NodeStats{
		QueueLen:       len(n.queue) - n.qhead,
		WorkerInFlight: int64(n.inRun),
		Injected:       n.injected,
		Emitted:        n.emitted,
		Shed:           n.shedTotal,
		DroppedNoRoute: n.droppedNoRoute,
		SendMaxMs:      float64(n.sendMaxNanos.Load()) / float64(time.Millisecond),
		OpCost:         map[int]float64{},
		OpSel:          map[int]float64{},
	}
	if len(n.shedByStream) > 0 {
		s.ShedByStream = make(map[int]int64, len(n.shedByStream))
		for sid, v := range n.shedByStream {
			s.ShedByStream[int(sid)] = v
		}
	}
	for sid, pt := range n.parts {
		routed := false
		for _, c := range pt.counts {
			if c > 0 {
				routed = true
				break
			}
		}
		if !routed {
			continue
		}
		if s.PartCounts == nil {
			s.PartCounts = map[int][]int64{}
		}
		s.PartCounts[sid] = append([]int64(nil), pt.counts...)
	}
	if n.spec != nil {
		s.NodeID = n.spec.NodeID
	}
	if n.started {
		elapsed := time.Since(n.startT)
		s.ElapsedSec = elapsed.Seconds()
		if elapsed > 0 {
			s.Utilization = float64(n.busy) / float64(elapsed)
			if s.Utilization > 1 {
				s.Utilization = 1
			}
		}
	}
	for id := range n.ops {
		if c, ok := n.estimator.Cost(id); ok {
			s.OpCost[id] = c
		}
		if sel, ok := n.estimator.Selectivity(id); ok {
			s.OpSel[id] = sel
		}
	}
	n.mu.Unlock()
	for _, o := range n.outboxSnapshots() {
		s.OutboxEnqueued += o.Enqueued
		s.OutboxSent += o.Sent
		s.OutboxDropped += o.Dropped
		s.OutboxPending += o.Pending
		s.PeerReconnects += o.Reconnects
	}
	return s
}

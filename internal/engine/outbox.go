package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Per-peer outbox: every remote destination gets its own goroutine fed by a
// bounded channel, so one dead or slow peer can never head-of-line-block the
// worker (the old Node.send dialed synchronously under a shared lock with a
// 2s timeout — a single unreachable destination stalled every send). The
// outbox dials with exponential backoff plus jitter, drops with a counter
// when the channel overflows or the link is down, and re-arms the per-peer
// relay-error latch on recovery so repeated failures stay visible.

// errOutboxClosed signals an orderly shutdown of the writer loop.
var errOutboxClosed = errors.New("engine: outbox closed")

// outboxBatchMax bounds how many tuples one flush batch may carry, so a
// saturated channel cannot delay the flush (and hence delivery) unboundedly.
const outboxBatchMax = 512

// LinkFault is an injected fault on the outbound link to one peer address:
// Sever fails dials and breaks the live connection, Drop silently discards
// tuples (counted as outbox drops), Delay stalls each flush by the given
// duration. Faults compose (a Drop+Delay link discards slowly).
type LinkFault struct {
	Sever bool
	Drop  bool
	Delay time.Duration
}

// outboxStats is an atomic snapshot of one outbox's accounting. The
// invariant enqueued == sent + dropped + pending holds at quiescence.
type outboxStats struct {
	Addr       string
	Enqueued   int64 // tuples accepted into the channel
	Sent       int64 // tuples flushed to the socket
	Dropped    int64 // overflow + fault-drop + lost-on-disconnect
	Pending    int64 // still buffered in the channel
	Reconnects int64 // successful connections after a loss
}

type outbox struct {
	node *Node
	addr string
	ch   chan Tuple
	quit chan struct{}

	connMu sync.Mutex
	conn   net.Conn

	enqueued   atomic.Int64
	sent       atomic.Int64
	dropped    atomic.Int64
	reconnects atomic.Int64
}

func newOutbox(n *Node, addr string) *outbox {
	return &outbox{
		node: n,
		addr: addr,
		ch:   make(chan Tuple, n.cfg.OutboxCap),
		quit: make(chan struct{}),
	}
}

// enqueue offers one tuple without blocking; on overflow the tuple is
// dropped and counted.
func (o *outbox) enqueue(t Tuple) bool {
	o.enqueued.Add(1)
	select {
	case o.ch <- t:
		return true
	default:
		o.dropped.Add(1)
		return false
	}
}

func (o *outbox) stats() outboxStats {
	return outboxStats{
		Addr:       o.addr,
		Enqueued:   o.enqueued.Load(),
		Sent:       o.sent.Load(),
		Dropped:    o.dropped.Load(),
		Pending:    int64(len(o.ch)),
		Reconnects: o.reconnects.Load(),
	}
}

// setConn publishes the live connection so a sever fault can break it.
func (o *outbox) setConn(c net.Conn) {
	o.connMu.Lock()
	o.conn = c
	o.connMu.Unlock()
}

// breakConn severs the live connection (if any); the writer loop sees the
// write error and falls back into the dial/backoff cycle.
func (o *outbox) breakConn() {
	o.connMu.Lock()
	c := o.conn
	o.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dial connects to the peer, honoring an injected link fault.
func (o *outbox) dial() (net.Conn, error) {
	if f := o.node.linkFault(o.addr); f != nil && f.Sever {
		return nil, fmt.Errorf("engine: link to %s severed by fault", o.addr)
	}
	return net.DialTimeout("tcp", o.addr, o.node.cfg.DialTimeout)
}

// run is the outbox goroutine: connect (with backoff), drain the channel,
// reconnect on failure, until quit.
func (o *outbox) run() {
	defer o.node.wg.Done()
	attempt := 0
	connected := false
	for {
		conn, err := o.dial()
		if err != nil {
			o.node.peerDown(o.addr, err)
			d := backoffDelay(o.node.cfg.BackoffBase, o.node.cfg.BackoffMax, attempt, rand.Float64())
			attempt++
			select {
			case <-o.quit:
				o.dropRemaining()
				return
			case <-time.After(d):
			}
			continue
		}
		if connected || attempt > 0 {
			o.reconnects.Add(1)
		}
		attempt = 0
		connected = true
		o.setConn(conn)
		o.node.peerUp(o.addr)
		err = o.writeLoop(conn)
		o.setConn(nil)
		conn.Close()
		if errors.Is(err, errOutboxClosed) {
			return
		}
		o.node.peerDown(o.addr, err)
	}
}

// writeLoop ships tuples over one connection until it fails or quit fires.
// Tuples are batched: drain the channel (bounded by outboxBatchMax), then
// flush under a write deadline so a stalled peer surfaces as an error
// instead of blocking shutdown.
func (o *outbox) writeLoop(conn net.Conn) error {
	tw, err := NewTupleWriter(conn)
	if err != nil {
		return err
	}
	pending := 0
	write := func(t Tuple, f *LinkFault) error {
		if f != nil && f.Drop {
			o.dropped.Add(1)
			return nil
		}
		if err := tw.Send(t); err != nil {
			o.dropped.Add(int64(pending) + 1)
			pending = 0
			return err
		}
		pending++
		return nil
	}
	flush := func(f *LinkFault) error {
		if pending == 0 {
			return nil
		}
		if f != nil && f.Delay > 0 {
			select {
			case <-o.quit:
			case <-time.After(f.Delay):
			}
		}
		conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
		if err := tw.Flush(); err != nil {
			o.dropped.Add(int64(pending))
			pending = 0
			return err
		}
		o.sent.Add(int64(pending))
		pending = 0
		return nil
	}
	for {
		var t Tuple
		select {
		case <-o.quit:
			// Best-effort final drain of whatever is already buffered.
			f := o.node.linkFault(o.addr)
			for {
				select {
				case t = <-o.ch:
					if err := write(t, f); err != nil {
						o.dropRemaining()
						return errOutboxClosed
					}
				default:
					flush(f) //nolint:errcheck
					return errOutboxClosed
				}
			}
		case t = <-o.ch:
		}
		f := o.node.linkFault(o.addr)
		if err := write(t, f); err != nil {
			return err
		}
	drain:
		for i := 1; i < outboxBatchMax; i++ {
			select {
			case t = <-o.ch:
				if err := write(t, f); err != nil {
					return err
				}
			default:
				break drain
			}
		}
		if err := flush(f); err != nil {
			return err
		}
	}
}

// dropRemaining counts everything still buffered as dropped (shutdown or
// terminal link failure with no connection to drain into).
func (o *outbox) dropRemaining() {
	for {
		select {
		case <-o.ch:
			o.dropped.Add(1)
		default:
			return
		}
	}
}

// backoffDelay computes the reconnect delay for the given attempt:
// base·2^attempt capped at max, scaled by a jitter factor in [0.75, 1.25)
// derived from jitter ∈ [0, 1). Exposed as a pure function for testing.
func backoffDelay(base, max time.Duration, attempt int, jitter float64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	scaled := time.Duration(float64(d) * (0.75 + 0.5*jitter))
	if scaled <= 0 {
		scaled = base
	}
	return scaled
}

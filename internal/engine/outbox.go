package engine

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rodsp/internal/obs"
)

// Per-peer outbox: every remote destination gets its own goroutine fed by
// two kinds of buffer. The shared mutex ring serves multi-producer callers
// (ingress relays, tests, legacy send()); each worker lane additionally
// owns one lock-free SPSC ring to this peer, so the hot egress path never
// takes a mutex. The writer gathers runs from the shared ring and every
// lane ring per wakeup, encodes them into per-run buffers, and flushes the
// whole gather with one vectored net.Buffers write. The outbox dials with
// exponential backoff plus jitter, drops with a counter when a ring
// overflows or the link is down, and re-arms the per-peer relay-error
// latch on recovery so repeated failures stay visible.

// errOutboxClosed signals an orderly shutdown of the writer loop.
var errOutboxClosed = errors.New("engine: outbox closed")

// outboxBatchMax bounds how many tuples one gather may take per source
// ring, so a saturated ring cannot delay the flush (and hence delivery)
// unboundedly.
const outboxBatchMax = 512

// LinkFault is an injected fault on the outbound link to one peer address:
// Sever fails dials and breaks the live connection, Drop silently discards
// tuples (counted as outbox drops), Delay stalls each flush by the given
// duration. Faults compose (a Drop+Delay link discards slowly).
type LinkFault struct {
	Sever bool
	Drop  bool
	Delay time.Duration
}

// outboxStats is a snapshot of one outbox's accounting. The invariant
// enqueued == sent + dropped + pending holds at quiescence (Pending counts
// ring-buffered tuples — shared and per-lane — plus a gathered-but-
// unflushed writer run; mid-gather the split between ring and in-flight is
// racy, which is why the ledger audits it only once the node is drained).
type outboxStats struct {
	Addr       string
	Enqueued   int64 // tuples accepted into a ring
	Sent       int64 // tuples flushed to the socket
	Dropped    int64 // overflow + fault-drop + lost-on-disconnect
	Pending    int64 // still buffered (rings + writer in-flight)
	Reconnects int64 // successful connections after a loss
}

type outbox struct {
	node *Node
	addr string
	quit chan struct{}

	mu     sync.Mutex
	ring   []Tuple       // fixed capacity cfg.OutboxCap (multi-producer path)
	head   int           // index of the oldest buffered tuple
	count  int           // buffered tuples
	notify chan struct{} // capacity-1 writer wakeup

	lanes []*spscRing // one SPSC ring per worker lane (lane-worker producers)

	connMu sync.Mutex
	conn   net.Conn

	enqueued   atomic.Int64
	sent       atomic.Int64
	dropped    atomic.Int64
	inflight   atomic.Int64 // gathered from the rings, not yet flushed
	reconnects atomic.Int64

	// Writer-owned scratch: the gathered tuples, the boundaries between
	// source runs within the gather, per-run encode buffers and the
	// net.Buffers vector reused across flushes.
	gather  []Tuple
	segEnds []int
	encBufs [][]byte
	vbufs   net.Buffers

	// Durable (retain-until-ack) mode: the peer runs a WAL, so every
	// shipped gather goes out as one seqmark+batch pair and is retained
	// (copied) until the peer's cumulative ack covers its sequence —
	// `sent` advances on ack, not on write, and a reconnect replays the
	// hello plus every retained batch in order. Retention is bounded by
	// OutboxCap tuples; the writer poll-waits for ack room rather than
	// dropping, so overload backpressures into the rings (where the
	// existing overflow accounting applies).
	durable     bool
	incarnation uint64 // sender identity: the owning node's birth nanos
	batchSeq    uint64 // writer-owned per-outbox durability sequence
	retMu       sync.Mutex
	retained    []retainedBatch
	retTuples   atomic.Int64 // tuples held in retained (stats + cap check)
	reenc       []byte       // writer-owned durable encode buffer
}

// retainedBatch is one shipped-but-unacked durable batch.
type retainedBatch struct {
	seq uint64
	ts  []Tuple
}

func newOutbox(n *Node, addr string, durable bool) *outbox {
	w := int(n.workers)
	o := &outbox{
		node:        n,
		addr:        addr,
		ring:        make([]Tuple, n.cfg.OutboxCap),
		notify:      make(chan struct{}, 1),
		quit:        make(chan struct{}),
		lanes:       make([]*spscRing, w),
		encBufs:     make([][]byte, w+1),
		durable:     durable,
		incarnation: uint64(n.bornNano),
	}
	laneCap := (n.cfg.OutboxCap + w - 1) / w
	for i := range o.lanes {
		o.lanes[i] = newSPSCRing(laneCap)
	}
	return o
}

// enqueue offers one tuple without blocking; on overflow the tuple is
// dropped and counted.
func (o *outbox) enqueue(t Tuple) bool {
	batch := [1]Tuple{t}
	return o.enqueueBatch(batch[:]) == 1
}

// enqueueBatch offers a run of tuples to the shared mutex ring under a
// single lock acquisition, accepting the longest prefix the ring has room
// for and dropping (with a counter) the rest. It never blocks; the tuples
// are copied, so the caller keeps ownership of ts.
func (o *outbox) enqueueBatch(ts []Tuple) int {
	o.enqueued.Add(int64(len(ts)))
	o.mu.Lock()
	k := len(o.ring) - o.count
	if k > len(ts) {
		k = len(ts)
	}
	tail := (o.head + o.count) % len(o.ring)
	first := len(o.ring) - tail
	if first > k {
		first = k
	}
	copy(o.ring[tail:], ts[:first])
	copy(o.ring, ts[first:k])
	o.count += k
	o.mu.Unlock()
	if k < len(ts) {
		o.dropped.Add(int64(len(ts) - k))
	}
	if k > 0 {
		o.wake()
	}
	return k
}

// enqueueLane offers a run of tuples on one lane's SPSC ring: no lock, a
// couple of atomic loads and one atomic store. Same prefix-accept,
// drop-with-counter contract as enqueueBatch. Must only be called from
// that lane's worker goroutine (single producer).
func (o *outbox) enqueueLane(lane int, ts []Tuple) int {
	o.enqueued.Add(int64(len(ts)))
	k := o.lanes[lane].push(ts)
	if k < len(ts) {
		o.dropped.Add(int64(len(ts) - k))
	}
	if k > 0 {
		o.wake()
	}
	return k
}

func (o *outbox) wake() {
	select {
	case o.notify <- struct{}{}:
	default:
	}
}

// gatherRuns drains one run from the shared ring and one from every lane
// ring (each bounded by outboxBatchMax) into the writer's gather buffer,
// recording the boundary after each source so the flush can keep the runs
// as separate writev segments. The total is marked in-flight for the
// stats invariant.
func (o *outbox) gatherRuns() []Tuple {
	dst := o.gather[:0]
	o.segEnds = o.segEnds[:0]
	o.mu.Lock()
	k := o.count
	if k > outboxBatchMax {
		k = outboxBatchMax
	}
	for i := 0; i < k; i++ {
		dst = append(dst, o.ring[(o.head+i)%len(o.ring)])
	}
	o.head = (o.head + k) % len(o.ring)
	o.count -= k
	o.inflight.Store(int64(k))
	o.mu.Unlock()
	o.segEnds = append(o.segEnds, len(dst))
	for _, r := range o.lanes {
		dst = r.drainInto(dst, outboxBatchMax)
		o.segEnds = append(o.segEnds, len(dst))
		o.inflight.Store(int64(len(dst)))
	}
	o.gather = dst
	return dst
}

func (o *outbox) stats() outboxStats {
	o.mu.Lock()
	pending := int64(o.count)
	o.mu.Unlock()
	for _, r := range o.lanes {
		pending += int64(r.size())
	}
	return outboxStats{
		Addr:       o.addr,
		Enqueued:   o.enqueued.Load(),
		Sent:       o.sent.Load(),
		Dropped:    o.dropped.Load(),
		Pending:    pending + o.inflight.Load() + o.retTuples.Load(),
		Reconnects: o.reconnects.Load(),
	}
}

// applyAck settles every retained batch covered by the peer's cumulative
// ack: their tuples count as sent and the retention space frees up. Late
// acks for batches already swept by dropRemaining are no-ops (each batch is
// settled exactly once, under retMu).
func (o *outbox) applyAck(seq uint64) {
	var freed int64
	o.retMu.Lock()
	i := 0
	for ; i < len(o.retained) && o.retained[i].seq <= seq; i++ {
		freed += int64(len(o.retained[i].ts))
	}
	if i > 0 {
		rest := len(o.retained) - i
		copy(o.retained, o.retained[i:])
		for j := rest; j < len(o.retained); j++ {
			o.retained[j] = retainedBatch{}
		}
		o.retained = o.retained[:rest]
		o.retTuples.Add(-freed)
	}
	o.retMu.Unlock()
	if freed > 0 {
		o.sent.Add(freed)
	}
}

// ackReader drains durability acks off one connection's return direction,
// settling retained batches until the connection fails; the failure is
// reported so the write loop reconnects (and re-sends what is still
// retained) even when it has nothing new to ship.
func (o *outbox) ackReader(conn net.Conn, done chan<- error) {
	br := bufio.NewReaderSize(conn, 512)
	for {
		seq, err := readAck(br)
		if err != nil {
			done <- err
			return
		}
		o.applyAck(seq)
	}
}

// sendHelloAndRetained opens a durable connection: announce the sender
// identity, then replay every still-retained batch in sequence order so
// the peer (which may have just restarted) recovers anything it lost.
func (o *outbox) sendHelloAndRetained(conn net.Conn) error {
	buf := appendHello(o.reenc[:0], o.incarnation, o.node.Addr())
	o.retMu.Lock()
	for _, rb := range o.retained {
		buf = appendSeqMark(buf, rb.seq)
		buf = appendDurableBatch(buf, rb.ts)
	}
	o.retMu.Unlock()
	o.reenc = buf
	conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
	_, err := conn.Write(buf)
	return err
}

// appendDurableBatch appends ts as exactly one batch frame (never the
// legacy single-tuple shape), upgraded to the traced/keyed record forms
// when needed — a seqmark must be followed by one batch frame.
func appendDurableBatch(dst []byte, ts []Tuple) []byte {
	traced, keyed := false, false
	for i := range ts {
		if ts[i].Flags != 0 {
			traced = true
		}
		if ts[i].Key != 0 {
			keyed = true
		}
	}
	return appendBatchFrame(dst, ts, traced, keyed)
}

// setConn publishes the live connection so a sever fault can break it.
func (o *outbox) setConn(c net.Conn) {
	o.connMu.Lock()
	o.conn = c
	o.connMu.Unlock()
}

// breakConn severs the live connection (if any); the writer loop sees the
// write error and falls back into the dial/backoff cycle.
func (o *outbox) breakConn() {
	o.connMu.Lock()
	c := o.conn
	o.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dial connects to the peer, honoring an injected link fault.
func (o *outbox) dial() (net.Conn, error) {
	if f := o.node.linkFault(o.addr); f != nil && f.Sever {
		return nil, fmt.Errorf("engine: link to %s severed by fault", o.addr)
	}
	return net.DialTimeout("tcp", o.addr, o.node.cfg.DialTimeout)
}

// run is the outbox goroutine: connect (with backoff), drain the rings,
// reconnect on failure, until quit.
func (o *outbox) run() {
	defer o.node.wg.Done()
	attempt := 0
	connected := false
	for {
		conn, err := o.dial()
		if err != nil {
			o.node.peerDown(o.addr, err)
			d := backoffDelay(o.node.cfg.BackoffBase, o.node.cfg.BackoffMax, attempt, rand.Float64())
			attempt++
			select {
			case <-o.quit:
				o.dropRemaining()
				return
			case <-time.After(d):
			}
			continue
		}
		if connected || attempt > 0 {
			o.reconnects.Add(1)
		}
		attempt = 0
		connected = true
		o.setConn(conn)
		o.node.peerUp(o.addr)
		err = o.writeLoop(conn)
		o.setConn(nil)
		conn.Close()
		if errors.Is(err, errOutboxClosed) {
			return
		}
		o.node.peerDown(o.addr, err)
	}
}

// writeLoop ships tuples over one connection until it fails or quit fires.
// Each iteration gathers one run from every source ring and flushes the
// gather with a single vectored write (one net.Buffers WriteTo) under a
// write deadline, so a stalled peer surfaces as an error instead of
// blocking shutdown. Drop accounting stays per tuple: a fault-dropped or
// write-failed gather counts each of its tuples.
func (o *outbox) writeLoop(conn net.Conn) error {
	tw, err := NewTupleWriter(conn)
	if err != nil {
		return err
	}
	// Flush the connection preamble now: subsequent batched flushes write
	// straight to the socket (vectored), bypassing the TupleWriter's
	// buffer, so nothing may linger in it.
	conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
	if err := tw.Flush(); err != nil {
		return err
	}
	var ackDone chan error
	if o.durable {
		if err := o.sendHelloAndRetained(conn); err != nil {
			return err
		}
		ackDone = make(chan error, 1)
		go o.ackReader(conn, ackDone)
	}
	for {
		select {
		case err := <-ackDone:
			// The ack channel died: reconnect so retained batches re-send
			// even though we may have nothing new to write.
			return err
		case <-o.quit:
			// Best-effort final drain of whatever is already buffered.
			f := o.node.linkFault(o.addr)
			for {
				run := o.gatherRuns()
				if len(run) == 0 {
					return errOutboxClosed
				}
				if err := o.ship(tw, conn, run, f); err != nil {
					o.dropRemaining()
					return errOutboxClosed
				}
			}
		case <-o.notify:
		}
		for {
			run := o.gatherRuns()
			if len(run) == 0 {
				break
			}
			f := o.node.linkFault(o.addr)
			if err := o.ship(tw, conn, run, f); err != nil {
				return err
			}
		}
	}
}

// ship writes and flushes one gathered run, honoring an injected fault,
// and settles the run's accounting (sent on success, dropped on fault or
// failure; in-flight is cleared either way). In batch mode each source run
// is encoded into its own reusable buffer and the whole gather goes out as
// one vectored write; BatchMax == 1 keeps the legacy per-tuple frame path.
func (o *outbox) ship(tw *TupleWriter, conn net.Conn, run []Tuple, f *LinkFault) error {
	total := int64(len(run))
	if f != nil && f.Drop {
		o.dropped.Add(total)
		o.inflight.Store(0)
		return nil
	}
	// Stage boundary: a traced tuple leaves the outbox now; the time since
	// its last boundary (the worker's service end, or its ingress admission
	// on a relay hop) is outbox residence. The tuples go onto the wire with
	// the refreshed TraceTs, so the receiver's transit stage starts here.
	if ev, stages, _ := o.node.observer(); ev != nil || stages != nil {
		var now int64
		for i := range run {
			if run[i].Flags&TupleTraced == 0 {
				continue
			}
			if now == 0 {
				now = time.Now().UnixNano()
			}
			var wait float64
			if run[i].TraceTs > 0 {
				wait = float64(now-run[i].TraceTs) / float64(time.Second)
			}
			run[i].TraceTs = now
			stages.Observe(obs.StageOutbox, wait)
			ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "outbox",
				"addr", o.addr, "stream", int(run[i].Stream), "seq", run[i].Seq,
				"ts", run[i].Ts, "wait", wait)
		}
	}
	if o.durable {
		return o.shipDurable(conn, run, f)
	}
	var err error
	if o.node.cfg.BatchMax > 1 {
		bufs := o.vbufs[:0]
		prev := 0
		for si, end := range o.segEnds {
			seg := run[prev:end]
			prev = end
			if len(seg) == 0 {
				continue
			}
			o.encBufs[si] = appendFrames(o.encBufs[si][:0], seg)
			bufs = append(bufs, o.encBufs[si])
		}
		o.vbufs = bufs // WriteTo consumes its receiver; keep the backing array
		if len(bufs) > 0 {
			if f != nil && f.Delay > 0 {
				select {
				case <-o.quit:
				case <-time.After(f.Delay):
				}
			}
			conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
			_, err = bufs.WriteTo(conn)
		}
	} else {
		for _, t := range run {
			if err = tw.Send(t); err != nil {
				break
			}
		}
		if err == nil {
			if f != nil && f.Delay > 0 {
				select {
				case <-o.quit:
				case <-time.After(f.Delay):
				}
			}
			conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
			err = tw.Flush()
		}
	}
	if err != nil {
		o.dropped.Add(total)
		o.inflight.Store(0)
		return err
	}
	o.sent.Add(total)
	o.inflight.Store(0)
	return nil
}

// shipDurable ships one gather in durable mode: wait for retention room
// (acks free it — dropping here would defeat retain-until-ack, so overload
// backpressures into the rings instead), retain a copy under the next
// sequence number, then write the seqmark+batch pair. `sent` does NOT
// advance here — applyAck settles it when the peer's fsync ack arrives. A
// write error keeps the retained copies for the reconnect replay.
//
// A single gather can exceed OutboxCap (one run from the shared ring plus
// one per lane ring, each up to outboxBatchMax), so the run ships as a
// sequence of bounded seqmark+batch pairs. The room wait only blocks while
// something IS retained: an empty retention always admits the next chunk,
// so the writer can never livelock waiting for acks that would only arrive
// once it makes progress.
func (o *outbox) shipDurable(conn net.Conn, run []Tuple, f *LinkFault) error {
	max := o.node.cfg.OutboxCap
	if max > outboxBatchMax {
		max = outboxBatchMax
	}
	var werr error
	for len(run) > 0 {
		chunk := run
		if len(chunk) > max {
			chunk = run[:max]
		}
		run = run[len(chunk):]
		// Once the write has failed no acks are coming on this connection,
		// so skip the room wait and just retain the rest for the replay
		// (a transient, gather-bounded overshoot of the retention cap).
		for werr == nil {
			ret := int(o.retTuples.Load())
			if ret == 0 || ret+len(chunk) <= o.node.cfg.OutboxCap {
				break
			}
			select {
			case <-o.quit:
				o.dropped.Add(int64(len(chunk) + len(run)))
				o.inflight.Store(0)
				return errOutboxClosed
			case <-time.After(500 * time.Microsecond):
			}
		}
		o.batchSeq++
		rb := retainedBatch{seq: o.batchSeq, ts: append([]Tuple(nil), chunk...)}
		o.retMu.Lock()
		o.retained = append(o.retained, rb)
		o.retTuples.Add(int64(len(chunk)))
		o.retMu.Unlock()
		o.inflight.Store(int64(len(run)))
		if werr != nil {
			continue
		}
		buf := appendSeqMark(o.reenc[:0], rb.seq)
		buf = appendDurableBatch(buf, rb.ts)
		o.reenc = buf
		if f != nil && f.Delay > 0 {
			select {
			case <-o.quit:
			case <-time.After(f.Delay):
			}
		}
		conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
		if _, err := conn.Write(buf); err != nil {
			werr = err
		}
	}
	return werr
}

// dropRemaining counts everything still buffered as dropped (shutdown or
// terminal link failure with no connection to drain into). The SPSC rings
// are swept consumer-side; callers must guarantee the writer goroutine is
// not concurrently gathering (it is the writer itself, or Node.Close after
// every goroutine has stopped).
func (o *outbox) dropRemaining() {
	o.mu.Lock()
	k := int64(o.count)
	o.head = 0
	o.count = 0
	o.mu.Unlock()
	for _, r := range o.lanes {
		k += int64(r.discard())
	}
	k += o.inflight.Swap(0)
	// Sweep retained-but-unacked batches: at shutdown no ack is coming.
	o.retMu.Lock()
	for _, rb := range o.retained {
		k += int64(len(rb.ts))
	}
	o.retained = nil
	o.retTuples.Store(0)
	o.retMu.Unlock()
	if k > 0 {
		o.dropped.Add(k)
	}
}

// backoffDelay computes the reconnect delay for the given attempt:
// base·2^attempt capped at max, scaled by a jitter factor in [0.75, 1.25)
// derived from jitter ∈ [0, 1). Exposed as a pure function for testing.
func backoffDelay(base, max time.Duration, attempt int, jitter float64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	scaled := time.Duration(float64(d) * (0.75 + 0.5*jitter))
	if scaled <= 0 {
		scaled = base
	}
	return scaled
}

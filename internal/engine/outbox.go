package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rodsp/internal/obs"
)

// Per-peer outbox: every remote destination gets its own goroutine fed by a
// bounded, mutex-guarded ring of tuples, so one dead or slow peer can never
// head-of-line-block the worker. Both sides of the ring are batch-amortized:
// enqueueBatch copies a whole run under one lock acquisition (the old
// channel paid one channel operation per tuple), and the writer drains runs
// of up to outboxBatchMax tuples per acquisition, shipping them as batch
// frames. The outbox dials with exponential backoff plus jitter, drops with
// a counter when the ring overflows or the link is down, and re-arms the
// per-peer relay-error latch on recovery so repeated failures stay visible.

// errOutboxClosed signals an orderly shutdown of the writer loop.
var errOutboxClosed = errors.New("engine: outbox closed")

// outboxBatchMax bounds how many tuples one flush batch may carry, so a
// saturated ring cannot delay the flush (and hence delivery) unboundedly.
const outboxBatchMax = 512

// LinkFault is an injected fault on the outbound link to one peer address:
// Sever fails dials and breaks the live connection, Drop silently discards
// tuples (counted as outbox drops), Delay stalls each flush by the given
// duration. Faults compose (a Drop+Delay link discards slowly).
type LinkFault struct {
	Sever bool
	Drop  bool
	Delay time.Duration
}

// outboxStats is a snapshot of one outbox's accounting. The invariant
// enqueued == sent + dropped + pending holds at quiescence (Pending counts
// both ring-buffered tuples and a drained-but-unflushed writer run).
type outboxStats struct {
	Addr       string
	Enqueued   int64 // tuples accepted into the ring
	Sent       int64 // tuples flushed to the socket
	Dropped    int64 // overflow + fault-drop + lost-on-disconnect
	Pending    int64 // still buffered (ring + writer in-flight)
	Reconnects int64 // successful connections after a loss
}

type outbox struct {
	node *Node
	addr string
	quit chan struct{}

	mu     sync.Mutex
	ring   []Tuple       // fixed capacity cfg.OutboxCap
	head   int           // index of the oldest buffered tuple
	count  int           // buffered tuples
	notify chan struct{} // capacity-1 writer wakeup

	connMu sync.Mutex
	conn   net.Conn

	enqueued   atomic.Int64
	sent       atomic.Int64
	dropped    atomic.Int64
	inflight   atomic.Int64 // drained from the ring, not yet flushed
	reconnects atomic.Int64
}

func newOutbox(n *Node, addr string) *outbox {
	return &outbox{
		node:   n,
		addr:   addr,
		ring:   make([]Tuple, n.cfg.OutboxCap),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
}

// enqueue offers one tuple without blocking; on overflow the tuple is
// dropped and counted.
func (o *outbox) enqueue(t Tuple) bool {
	batch := [1]Tuple{t}
	return o.enqueueBatch(batch[:]) == 1
}

// enqueueBatch offers a run of tuples under a single lock acquisition,
// accepting the longest prefix the ring has room for and dropping (with a
// counter) the rest. It never blocks; the tuples are copied, so the caller
// keeps ownership of ts.
func (o *outbox) enqueueBatch(ts []Tuple) int {
	o.enqueued.Add(int64(len(ts)))
	o.mu.Lock()
	k := len(o.ring) - o.count
	if k > len(ts) {
		k = len(ts)
	}
	tail := (o.head + o.count) % len(o.ring)
	first := len(o.ring) - tail
	if first > k {
		first = k
	}
	copy(o.ring[tail:], ts[:first])
	copy(o.ring, ts[first:k])
	o.count += k
	o.mu.Unlock()
	if k < len(ts) {
		o.dropped.Add(int64(len(ts) - k))
	}
	if k > 0 {
		select {
		case o.notify <- struct{}{}:
		default:
		}
	}
	return k
}

// drainInto moves up to max buffered tuples into dst (reusing its backing
// array) under one lock acquisition, marking them in-flight for the stats
// invariant. It returns the drained run.
func (o *outbox) drainInto(dst []Tuple, max int) []Tuple {
	o.mu.Lock()
	k := o.count
	if k > max {
		k = max
	}
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, o.ring[(o.head+i)%len(o.ring)])
	}
	o.head = (o.head + k) % len(o.ring)
	o.count -= k
	o.inflight.Store(int64(k))
	o.mu.Unlock()
	return dst
}

func (o *outbox) stats() outboxStats {
	o.mu.Lock()
	pending := int64(o.count)
	o.mu.Unlock()
	return outboxStats{
		Addr:       o.addr,
		Enqueued:   o.enqueued.Load(),
		Sent:       o.sent.Load(),
		Dropped:    o.dropped.Load(),
		Pending:    pending + o.inflight.Load(),
		Reconnects: o.reconnects.Load(),
	}
}

// setConn publishes the live connection so a sever fault can break it.
func (o *outbox) setConn(c net.Conn) {
	o.connMu.Lock()
	o.conn = c
	o.connMu.Unlock()
}

// breakConn severs the live connection (if any); the writer loop sees the
// write error and falls back into the dial/backoff cycle.
func (o *outbox) breakConn() {
	o.connMu.Lock()
	c := o.conn
	o.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dial connects to the peer, honoring an injected link fault.
func (o *outbox) dial() (net.Conn, error) {
	if f := o.node.linkFault(o.addr); f != nil && f.Sever {
		return nil, fmt.Errorf("engine: link to %s severed by fault", o.addr)
	}
	return net.DialTimeout("tcp", o.addr, o.node.cfg.DialTimeout)
}

// run is the outbox goroutine: connect (with backoff), drain the ring,
// reconnect on failure, until quit.
func (o *outbox) run() {
	defer o.node.wg.Done()
	attempt := 0
	connected := false
	scratch := make([]Tuple, 0, outboxBatchMax)
	for {
		conn, err := o.dial()
		if err != nil {
			o.node.peerDown(o.addr, err)
			d := backoffDelay(o.node.cfg.BackoffBase, o.node.cfg.BackoffMax, attempt, rand.Float64())
			attempt++
			select {
			case <-o.quit:
				o.dropRemaining()
				return
			case <-time.After(d):
			}
			continue
		}
		if connected || attempt > 0 {
			o.reconnects.Add(1)
		}
		attempt = 0
		connected = true
		o.setConn(conn)
		o.node.peerUp(o.addr)
		err = o.writeLoop(conn, scratch)
		o.setConn(nil)
		conn.Close()
		if errors.Is(err, errOutboxClosed) {
			return
		}
		o.node.peerDown(o.addr, err)
	}
}

// writeLoop ships tuples over one connection until it fails or quit fires.
// Each iteration drains one run from the ring (bounded by outboxBatchMax)
// under a single lock acquisition, writes it — as one batch frame when the
// node's BatchMax allows, as legacy single frames otherwise — and flushes
// under a write deadline so a stalled peer surfaces as an error instead of
// blocking shutdown. Drop accounting stays per tuple: a fault-dropped or
// write-failed run counts each of its tuples.
func (o *outbox) writeLoop(conn net.Conn, scratch []Tuple) error {
	tw, err := NewTupleWriter(conn)
	if err != nil {
		return err
	}
	for {
		select {
		case <-o.quit:
			// Best-effort final drain of whatever is already buffered.
			f := o.node.linkFault(o.addr)
			for {
				run := o.drainInto(scratch, outboxBatchMax)
				if len(run) == 0 {
					return errOutboxClosed
				}
				if err := o.ship(tw, conn, run, f); err != nil {
					o.dropRemaining()
					return errOutboxClosed
				}
			}
		case <-o.notify:
		}
		for {
			run := o.drainInto(scratch, outboxBatchMax)
			if len(run) == 0 {
				break
			}
			f := o.node.linkFault(o.addr)
			if err := o.ship(tw, conn, run, f); err != nil {
				return err
			}
		}
	}
}

// ship writes and flushes one drained run, honoring an injected fault, and
// settles the run's accounting (sent on success, dropped on fault or
// failure; in-flight is cleared either way).
func (o *outbox) ship(tw *TupleWriter, conn net.Conn, run []Tuple, f *LinkFault) error {
	n := int64(len(run))
	if f != nil && f.Drop {
		o.dropped.Add(n)
		o.inflight.Store(0)
		return nil
	}
	// Stage boundary: a traced tuple leaves the outbox now; the time since
	// its last boundary (the worker's service end, or its ingress admission
	// on a relay hop) is outbox residence. The tuples go onto the wire with
	// the refreshed TraceTs, so the receiver's transit stage starts here.
	if ev, stages, _ := o.node.observer(); ev != nil || stages != nil {
		var now int64
		for i := range run {
			if run[i].Flags&TupleTraced == 0 {
				continue
			}
			if now == 0 {
				now = time.Now().UnixNano()
			}
			var wait float64
			if run[i].TraceTs > 0 {
				wait = float64(now-run[i].TraceTs) / float64(time.Second)
			}
			run[i].TraceTs = now
			stages.Observe(obs.StageOutbox, wait)
			ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "outbox",
				"addr", o.addr, "stream", int(run[i].Stream), "seq", run[i].Seq,
				"ts", run[i].Ts, "wait", wait)
		}
	}
	var err error
	if o.node.cfg.BatchMax > 1 {
		err = tw.SendBatch(run)
	} else {
		for _, t := range run {
			if err = tw.Send(t); err != nil {
				break
			}
		}
	}
	if err == nil {
		if f != nil && f.Delay > 0 {
			select {
			case <-o.quit:
			case <-time.After(f.Delay):
			}
		}
		conn.SetWriteDeadline(time.Now().Add(o.node.cfg.FlushTimeout)) //nolint:errcheck
		err = tw.Flush()
	}
	if err != nil {
		o.dropped.Add(n)
		o.inflight.Store(0)
		return err
	}
	o.sent.Add(n)
	o.inflight.Store(0)
	return nil
}

// dropRemaining counts everything still buffered as dropped (shutdown or
// terminal link failure with no connection to drain into).
func (o *outbox) dropRemaining() {
	o.mu.Lock()
	k := o.count
	o.head = 0
	o.count = 0
	o.mu.Unlock()
	if k > 0 {
		o.dropped.Add(int64(k))
	}
}

// backoffDelay computes the reconnect delay for the given attempt:
// base·2^attempt capped at max, scaled by a jitter factor in [0.75, 1.25)
// derived from jitter ∈ [0, 1). Exposed as a pure function for testing.
func backoffDelay(base, max time.Duration, attempt int, jitter float64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	scaled := time.Duration(float64(d) * (0.75 + 0.5*jitter))
	if scaled <= 0 {
		scaled = base
	}
	return scaled
}

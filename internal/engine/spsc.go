package engine

import "sync/atomic"

// spscRing is a bounded single-producer/single-consumer tuple ring: one
// worker lane enqueues (push), one outbox writer dequeues (drainInto), and
// neither side ever takes a lock. Progress is communicated through two
// monotonically increasing positions:
//
//	tail — written only by the producer, read by the consumer
//	head — written only by the consumer, read by the producer
//
// The occupied region is buf[head&mask : tail&mask) (positions are free
// running; the buffer index is position & mask, capacity a power of two).
//
// Memory-ordering argument: Go's sync/atomic operations are sequentially
// consistent, which gives the two release/acquire edges this ring needs.
// The producer writes the tuple slots *before* publishing them with
// tail.Store (release); the consumer's tail.Load (acquire) therefore
// observes fully written tuples for every position < tail. Symmetrically,
// the consumer finishes reading slots *before* retiring them with
// head.Store (release); the producer's head.Load (acquire) therefore only
// reuses a slot after the consumer's reads of it completed. Each slot is
// touched by exactly one side between the two fences, so there is no data
// race for the race detector to find — and no mutex on the hot enqueue
// path. The pads keep head and tail on separate cache lines so the two
// sides do not false-share.
type spscRing struct {
	buf  []Tuple
	mask uint64

	_    [64]byte
	head atomic.Uint64 // consumer position (oldest unconsumed)
	_    [64]byte
	tail atomic.Uint64 // producer position (next free)
	_    [64]byte
}

// newSPSCRing returns a ring holding at least capacity tuples (rounded up
// to a power of two, minimum 64).
func newSPSCRing(capacity int) *spscRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]Tuple, n), mask: uint64(n - 1)}
}

// push copies the longest prefix of ts the ring has room for and returns
// how many tuples were accepted; the caller counts the rest as dropped.
// Producer side only — never blocks, never locks.
func (r *spscRing) push(ts []Tuple) int {
	tail := r.tail.Load() // own store; plain value, atomic for the detector
	head := r.head.Load() // acquire: slots below head are reusable
	free := len(r.buf) - int(tail-head)
	k := free
	if k > len(ts) {
		k = len(ts)
	}
	for i := 0; i < k; i++ {
		r.buf[(tail+uint64(i))&r.mask] = ts[i]
	}
	r.tail.Store(tail + uint64(k)) // release: publish the slots
	return k
}

// drainInto appends up to max buffered tuples to dst (reusing its backing
// array) and retires them. Consumer side only.
func (r *spscRing) drainInto(dst []Tuple, max int) []Tuple {
	tail := r.tail.Load() // acquire: slots below tail are readable
	head := r.head.Load()
	k := int(tail - head)
	if k > max {
		k = max
	}
	for i := 0; i < k; i++ {
		dst = append(dst, r.buf[(head+uint64(i))&r.mask])
	}
	r.head.Store(head + uint64(k)) // release: slots are reusable
	return dst
}

// size reports the buffered tuple count (racy snapshot; exact once both
// sides are quiescent, which is when the stats invariant is audited).
func (r *spscRing) size() int {
	return int(r.tail.Load() - r.head.Load())
}

// discard retires everything buffered and returns the count. Consumer side
// only (shutdown sweep once the producer has stopped).
func (r *spscRing) discard() int {
	tail := r.tail.Load()
	head := r.head.Load()
	r.head.Store(tail)
	return int(tail - head)
}

package engine

import (
	"testing"
	"time"

	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// chainGraph builds in → a → b (delay costs ca, cb) for move-planning tests.
func chainGraph(t *testing.T, ca, cb float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", ca, 1, in)
	b.Delay("b", cb, 1, s)
	return b.MustBuild()
}

func TestPlanMovesBudgetAndOrder(t *testing.T) {
	g := chainGraph(t, 0.001, 0.0001)
	cur := []int{0, 0}
	cand := []int{1, 2}
	opLoads := []float64{0.8, 0.1}
	stale := []bool{false, false, false}
	routed := map[query.StreamID]map[int]bool{}
	seedRouted(routed, nil, g, cur)

	// Budget 1: only the heaviest operator moves.
	moves := planMoves(cur, cand, opLoads, stale, g, routed, nil, 1)
	if len(moves) != 1 || moves[0].Op != 0 || moves[0].To != 1 {
		t.Fatalf("budget-1 moves = %+v, want op 0 → node 1", moves)
	}
	// Budget 2: both, heaviest first.
	moves = planMoves(cur, cand, opLoads, stale, g, routed, nil, 2)
	if len(moves) != 2 || moves[0].Op != 0 || moves[1].Op != 1 {
		t.Fatalf("budget-2 moves = %+v, want ops [0 1]", moves)
	}
	// planMoves must not commit to the shared routed sets (the hysteresis
	// gate may still reject the whole set): planning again must yield the
	// same moves.
	again := planMoves(cur, cand, opLoads, stale, g, routed, nil, 2)
	if len(again) != 2 {
		t.Fatalf("replanning yielded %+v — planMoves committed tentative routes", again)
	}
}

func TestPlanMovesAdmissibility(t *testing.T) {
	g := chainGraph(t, 0.001, 0.0001)
	cur := []int{0, 0}
	cand := []int{1, 2}
	opLoads := []float64{0.8, 0.1}
	stale := []bool{false, false, false}

	// Node 2 already held a route for b's input stream (a past migration
	// left a relay): moving b there would double-deliver, so only a moves.
	routed := map[query.StreamID]map[int]bool{}
	seedRouted(routed, nil, g, cur)
	bOp := g.Op(1)
	routed[bOp.Inputs[0]][2] = true
	moves := planMoves(cur, cand, opLoads, stale, g, routed, nil, 2)
	if len(moves) != 1 || moves[0].Op != 0 {
		t.Fatalf("moves = %+v, want only op 0 (node 2 inadmissible for op 1)", moves)
	}

	// Stale endpoints are skipped: a stale destination for a, a stale
	// source for everything on node 0.
	routed = map[query.StreamID]map[int]bool{}
	seedRouted(routed, nil, g, cur)
	moves = planMoves(cur, cand, opLoads, []bool{false, true, false}, g, routed, nil, 2)
	if len(moves) != 1 || moves[0].Op != 1 {
		t.Fatalf("moves = %+v, want only op 1 (node 1 stale)", moves)
	}
	moves = planMoves(cur, cand, opLoads, []bool{true, false, false}, g, routed, nil, 2)
	if len(moves) != 0 {
		t.Fatalf("moves = %+v, want none (source node stale)", moves)
	}
}

func TestMinHeadroomSkipsStale(t *testing.T) {
	loads := []float64{0.5, 2.0, 0.9}
	caps := mat.Vec{1, 1, 1}
	h, arg := minHeadroom(loads, caps, []bool{false, false, false})
	if arg != 1 || h > -0.99 {
		t.Fatalf("minHeadroom = (%g, %d), want node 1 at -1", h, arg)
	}
	// Node 1 stale (its load figure is fiction): the minimum moves on.
	h, arg = minHeadroom(loads, caps, []bool{false, true, false})
	if arg != 2 || h < 0.09 || h > 0.11 {
		t.Fatalf("minHeadroom with stale node = (%g, %d), want node 2 at 0.1", h, arg)
	}
	h, arg = minHeadroom(loads, caps, []bool{true, true, true})
	if arg != -1 {
		t.Fatalf("all-stale minHeadroom arg = %d, want -1", arg)
	}
	_ = h
}

func TestMonitorClearQueueFloor(t *testing.T) {
	// OverloadQueue < 4 used to default ClearQueue to 0, demanding a
	// perfectly empty queue to clear the latch.
	cfg := MonitorConfig{OverloadQueue: 2}
	cfg.applyDefaults()
	if cfg.ClearQueue != 1 {
		t.Fatalf("ClearQueue = %d for OverloadQueue 2, want the ≥1 clamp", cfg.ClearQueue)
	}
	cfg = MonitorConfig{OverloadQueue: 100}
	cfg.applyDefaults()
	if cfg.ClearQueue != 25 {
		t.Fatalf("ClearQueue = %d for OverloadQueue 100, want 25", cfg.ClearQueue)
	}
	// Negative requests an explicit empty-queue threshold.
	cfg = MonitorConfig{OverloadQueue: 100, ClearQueue: -1}
	cfg.applyDefaults()
	if cfg.ClearQueue != 0 {
		t.Fatalf("explicit ClearQueue -1 → %d, want 0", cfg.ClearQueue)
	}
}

func TestControllerConfigDefaults(t *testing.T) {
	cfg := ControllerConfig{}
	cfg.applyDefaults()
	if cfg.Interval != 500*time.Millisecond || cfg.Horizon != 3*cfg.Interval {
		t.Fatalf("interval/horizon defaults wrong: %v/%v", cfg.Interval, cfg.Horizon)
	}
	if cfg.MaxMoves != 1 || cfg.HeadroomLow != 0.1 || cfg.Warmup != 3 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

// A killed node must be marked stale by the monitor — latch cleared,
// gauges zeroed, node_stale emitted — instead of freezing at its
// last-observed values.
func TestMonitorMarksDeadNodeStale(t *testing.T) {
	g := chainGraph(t, 0.0001, 0.0001)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.NewEventLog(0)
	m := cl.StartMonitor(MonitorConfig{
		Interval: 20 * time.Millisecond,
		Events:   ev,
		LM:       lm,
		Plan:     plan,
		Caps:     mat.Vec(caps),
	})
	defer m.Close()

	time.Sleep(80 * time.Millisecond)
	if snap := m.Snapshot(); snap.Stale[0] || snap.Stale[1] {
		t.Fatalf("healthy nodes marked stale: %+v", snap.Stale)
	}
	if err := cl.Controls[1].Fault(FaultSpec{Kill: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		snap := m.Snapshot()
		if snap.Stale[1] {
			if snap.Utils[1] != 0 || snap.Headrooms[1] != 0 {
				t.Fatalf("stale node gauges not zeroed: util=%g head=%g", snap.Utils[1], snap.Headrooms[1])
			}
			if snap.Overloaded[1] {
				t.Fatal("overload latch still set on a stale node")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 1 never marked stale after kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	e, ok := ev.Find(obs.EventNodeStale)
	if !ok {
		t.Fatal("no node_stale event emitted")
	}
	if e.Fields["state"] != "stale" {
		t.Fatalf("node_stale state = %v, want stale", e.Fields["state"])
	}
}

// Controller lifecycle on an idle cluster: requires a monitor with a load
// model, registers its metrics, decides on schedule, and holds while the
// headroom is fine.
func TestControllerIdleHolds(t *testing.T) {
	g := chainGraph(t, 0.0001, 0.0001)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.StartController(ControllerConfig{}); err == nil {
		t.Fatal("StartController without a monitor must error")
	}
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	m := cl.StartMonitor(MonitorConfig{
		Interval: 10 * time.Millisecond,
		LM:       lm,
		Plan:     plan,
		Caps:     mat.Vec(caps),
	})
	defer m.Close()
	ctrl, err := cl.StartController(ControllerConfig{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ctrl.Stats().Decisions < 3 {
		if time.Now().After(deadline) {
			t.Fatal("controller never decided")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctrl.Close()
	st := ctrl.Stats()
	if st.Moves != 0 || st.MoveFailures != 0 {
		t.Fatalf("idle cluster provoked migrations: %+v", st)
	}
	if st.LastAction != "hold:headroom_ok" && st.LastAction != "hold:warmup" {
		t.Fatalf("last action = %q, want a hold", st.LastAction)
	}
	if m.Registry().Counter(obs.MetricControllerDecisions).Value() != st.Decisions {
		t.Fatal("decision counter not registered through the monitor registry")
	}
}

package engine

import (
	"math"
	"testing"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/trace"
)

// Regression for the source-driver tick-drift bug: delivery used to
// accumulate a fixed per-tick quantum (rate × nominal period), so any tick
// arriving late — a coarse TickInterval stands in for scheduler delay —
// silently under-delivered. Integration over the measured inter-tick
// elapsed time must keep the delivered count within 1% of the trace
// integral regardless of tick granularity.
func TestSourceDriverCoarseTickWithinOnePercent(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1) // no ops: tuples are counted and discarded
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	const rate = 200.0
	src := &SourceDriver{
		Stream:       1,
		Trace:        trace.New("const", 1, []float64{rate, rate}),
		Addrs:        []string{n.Addr()},
		TickInterval: 47 * time.Millisecond, // ≈ a 2ms scheduler delayed 23×
	}
	injected, err := src.Run(time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := rate * 1.0 // trace integral over [0, duration]
	if diff := math.Abs(float64(injected) - want); diff > want*0.01 {
		t.Fatalf("injected %d tuples under coarse ticks, want %.0f ± 1%%", injected, want)
	}
	// Everything injected actually reached the destination.
	waitUntil(t, 2*time.Second, "delivery", func() bool {
		return n.Stats().Injected == injected
	})
}

// The collector's latency retention is a uniform reservoir, not a silent
// prefix cap: late-run samples must be represented and the digest must
// report both the exact observation count and the retained sample size.
func TestCollectorReservoirSampling(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetSampleCap(100)
	for i := 0; i < 5000; i++ {
		c.record(1.0)
	}
	for i := 0; i < 5000; i++ {
		c.record(2.0)
	}
	sum, ok := c.LatencySummary()
	if !ok {
		t.Fatal("no summary")
	}
	if sum.Count != 10000 {
		t.Fatalf("count = %d, want 10000", sum.Count)
	}
	if sum.Retained != 100 {
		t.Fatalf("retained = %d, want 100 (the reservoir cap)", sum.Retained)
	}
	// A prefix cap would retain only the first phase (all 1.0s): the
	// reservoir must hold samples from both phases.
	if sum.Max != 2.0 {
		t.Fatalf("max = %g: no late-phase sample survived — prefix-cap behavior", sum.Max)
	}
	if sum.Mean <= 1.05 || sum.Mean >= 1.95 {
		t.Fatalf("reservoir mean = %g, want both phases represented", sum.Mean)
	}
	// The exact running mean is unaffected by reservoir replacement.
	count, mean, _, _, _ := c.LatencyStats()
	if count != 10000 || math.Abs(mean-1.5) > 1e-9 {
		t.Fatalf("exact stats: count=%d mean=%g, want 10000 / 1.5", count, mean)
	}
}

// Cluster.Stats must degrade to a partial snapshot when one node's control
// channel fails: nil for the failed node, live stats for the rest, a
// control_error event, and no error while any node still answers.
func TestClusterStatsPartial(t *testing.T) {
	cl, err := StartCluster([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ev := obs.NewEventLog(0)
	cl.SetEvents(ev)
	if err := cl.Nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatalf("partial poll must not error while a node survives: %v", err)
	}
	if sts[0] == nil {
		t.Fatal("surviving node reported nil stats")
	}
	if sts[1] != nil {
		t.Fatal("dead node reported non-nil stats")
	}
	if ev.Count(obs.EventControlError) == 0 {
		t.Fatal("no control_error event for the failed stats call")
	}
}

// Package engine is the distributed stream-processing prototype standing in
// for Borealis in the paper's prototype experiments: real nodes on localhost
// TCP, a JSON control plane for deployment, binary tuple framing on the data
// plane, and a token-bucket *virtual CPU* per node so that a node with
// capacity c completes c cost-units of operator work per wall-clock second.
// Overload therefore manifests exactly as in the paper's testbed — queues
// grow and end-to-end latency climbs — without burning host CPU.
package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Connection type bytes: the first byte of every inbound connection
// declares its role.
const (
	connControl byte = 'C' // newline-delimited JSON control messages
	connTuples  byte = 'T' // fixed-size binary tuple frames
)

// Tuple is the data-plane unit. Ts is the origin timestamp in nanoseconds
// (wall clock at injection) used for end-to-end latency; Value is an opaque
// payload the delay-style operators carry through.
type Tuple struct {
	Stream int32
	Ts     int64
	Seq    int64
	Value  float64
}

const tupleFrameSize = 4 + 8 + 8 + 8

// WriteTuple writes one frame.
func WriteTuple(w io.Writer, t Tuple) error {
	var buf [tupleFrameSize]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(t.Stream))
	binary.BigEndian.PutUint64(buf[4:12], uint64(t.Ts))
	binary.BigEndian.PutUint64(buf[12:20], uint64(t.Seq))
	binary.BigEndian.PutUint64(buf[20:28], math.Float64bits(t.Value))
	_, err := w.Write(buf[:])
	return err
}

// ReadTuple reads one frame.
func ReadTuple(r io.Reader) (Tuple, error) {
	var buf [tupleFrameSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Tuple{}, err
	}
	var t Tuple
	t.Stream = int32(binary.BigEndian.Uint32(buf[0:4]))
	t.Ts = int64(binary.BigEndian.Uint64(buf[4:12]))
	t.Seq = int64(binary.BigEndian.Uint64(buf[12:20]))
	t.Value = math.Float64frombits(binary.BigEndian.Uint64(buf[20:28]))
	return t, nil
}

// TupleWriter batches frames over a connection.
type TupleWriter struct {
	bw *bufio.Writer
	c  io.Closer
}

// NewTupleWriter wraps w, sending the tuple-connection preamble byte.
func NewTupleWriter(w io.Writer) (*TupleWriter, error) {
	bw := bufio.NewWriterSize(w, 16*1024)
	if err := bw.WriteByte(connTuples); err != nil {
		return nil, fmt.Errorf("engine: writing preamble: %w", err)
	}
	return &TupleWriter{bw: bw}, nil
}

// NewTupleWriterDial dials a TCP address and returns a TupleWriter over the
// new connection; Close releases it.
func NewTupleWriterDial(addr string) (*TupleWriter, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("engine: dialing %s: %w", addr, err)
	}
	tw, err := NewTupleWriter(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	tw.c = conn
	return tw, nil
}

// Send writes one tuple into the buffer.
func (tw *TupleWriter) Send(t Tuple) error { return WriteTuple(tw.bw, t) }

// Flush pushes buffered frames to the socket.
func (tw *TupleWriter) Flush() error { return tw.bw.Flush() }

// Close flushes and closes the underlying connection when the writer owns
// one (constructed by NewTupleWriterDial).
func (tw *TupleWriter) Close() error {
	ferr := tw.Flush()
	if tw.c != nil {
		if err := tw.c.Close(); err != nil {
			return err
		}
	}
	return ferr
}

// Package engine is the distributed stream-processing prototype standing in
// for Borealis in the paper's prototype experiments: real nodes on localhost
// TCP, a JSON control plane for deployment, binary tuple framing on the data
// plane, and a token-bucket *virtual CPU* per node so that a node with
// capacity c completes c cost-units of operator work per wall-clock second.
// Overload therefore manifests exactly as in the paper's testbed — queues
// grow and end-to-end latency climbs — without burning host CPU.
package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Connection type bytes: the first byte of every inbound connection
// declares its role.
const (
	connControl byte = 'C' // newline-delimited JSON control messages
	connTuples  byte = 'T' // binary tuple frames (legacy single or batch)
)

// Frame versioning inside a tuple connection. Wire stream ids are
// non-negative, so the big-endian first byte of a legacy 28-byte tuple
// frame is always 0x00–0x7F; bytes with the high bit set are reserved as
// versioned frame opcodes. Legacy senders therefore interoperate with
// batch-aware receivers on the same connection, frame by frame.
const (
	// opBatch introduces a length-prefixed batch frame:
	//
	//	opBatch | uint32(count) | count × 28-byte tuple
	opBatch byte = 0x81
	// opTraced introduces a trace-annotated batch frame:
	//
	//	opTraced | uint32(count) | count × 37-byte traced record
	//
	// where each record is the 28-byte tuple followed by one flags byte
	// and the big-endian trace timestamp (nanoseconds at the tuple's last
	// stage boundary). Writers emit it only when a batch contains at least
	// one flagged tuple, so untraced traffic pays no wire overhead; legacy
	// and plain batch frames decode with zero trace context.
	opTraced byte = 0x82
	// opKeyed introduces a keyed batch frame:
	//
	//	opKeyed | uint32(count) | count × 36-byte keyed record
	//
	// where each record is the 28-byte tuple followed by the big-endian
	// 64-bit partition key. Writers emit it only when a batch carries at
	// least one nonzero key, so unkeyed traffic pays no wire overhead;
	// older frames decode with key zero.
	opKeyed byte = 0x83
	// opKeyedTraced combines opTraced and opKeyed: 45-byte records, the
	// traced record followed by the 64-bit key.
	opKeyedTraced byte = 0x84
	// opHello identifies a durable sender right after the preamble:
	//
	//	opHello | uint64(incarnation) | uint16(len) | sender address
	//
	// The incarnation is the sender outbox's birth timestamp; a receiver
	// uses (address, incarnation) to tell a reconnect of the same outbox
	// from a restarted node. Non-durable senders never emit it, and
	// receivers that predate it would reject the opcode — durable mode is
	// only negotiated between nodes of one cluster, which share a binary.
	opHello byte = 0x85
	// opAck is the durability acknowledgement:
	//
	//	opAck | uint64(batchSeq)
	//
	// written by the RECEIVER back over the same TCP connection after the
	// batch with that per-connection sequence number has been fsynced into
	// its WAL (or deduplicated away). Acks are cumulative: acking seq s
	// releases every retained batch ≤ s. The sender reads them off the
	// connection's return direction; a TupleReader that encounters one
	// (a stray on a half-duplex reader) skips it harmlessly.
	opAck byte = 0x86
	// opSeqMark tags the NEXT batch frame with a per-connection durability
	// sequence number:
	//
	//	opSeqMark | uint64(batchSeq)
	//
	// A durable sender emits mark+batch pairs; the receiver logs the batch
	// and acks the mark's sequence. Unmarked frames (legacy senders, or a
	// sender in plain mode) take the non-durable path unchanged, so all
	// frame shapes coexist on one connection.
	opSeqMark byte = 0x87
)

// MaxBatchWire caps the tuple count one batch frame may declare; larger
// batches are split by the writer and rejected by the reader (bounding
// the decoder's allocation to ~1.8 MB no matter what the prefix claims).
const MaxBatchWire = 65536

// TupleTraced flags a tuple carrying causal trace context: its TraceTs is
// live and every hop records a stage duration for it.
const TupleTraced uint8 = 1 << 0

// Tuple is the data-plane unit. Ts is the origin timestamp in nanoseconds
// (wall clock at injection) used for end-to-end latency; Value is an opaque
// payload the delay-style operators carry through. Flags and TraceTs are
// the sampled-trace context: TraceTs holds the wall timestamp (ns) of the
// tuple's last recorded stage boundary, so each hop can attribute
// now−TraceTs to one stage and the stage durations telescope to the
// end-to-end latency. Only the traced batch frame carries them on the
// wire; legacy and plain batch frames drop both (decode as zero).
type Tuple struct {
	Stream int32
	Ts     int64
	Seq    int64
	Value  float64

	Flags   uint8
	TraceTs int64

	// Key is the partition key for keyed (sharded) streams: hashed through
	// the per-operator partition table to pick a shard replica. Zero means
	// unkeyed; only the keyed frames carry it on the wire.
	Key uint64

	// target is in-memory routing state (never on the wire): when nonzero,
	// the tuple is addressed to local operator id target−1 alone instead of
	// every subscriber of its stream — how keyed ingress delivers one key
	// partition to one co-located shard replica.
	target int32
}

const tupleFrameSize = 4 + 8 + 8 + 8

// tracedFrameSize is the traced record: tuple + flags byte + trace ts.
const tracedFrameSize = tupleFrameSize + 1 + 8

// keyedFrameSize is the keyed record: tuple + 64-bit partition key.
const keyedFrameSize = tupleFrameSize + 8

// keyedTracedFrameSize is the keyed traced record: traced record + key.
const keyedTracedFrameSize = tracedFrameSize + 8

// batchHeaderSize is the opcode plus the uint32 tuple count.
const batchHeaderSize = 1 + 4

// ackFrameSize is the opAck / opSeqMark frame: opcode + uint64 sequence.
const ackFrameSize = 1 + 8

// maxHelloAddr bounds the sender-address length a hello frame may declare.
const maxHelloAddr = 256

// appendHello appends a hello frame identifying a durable sender.
func appendHello(dst []byte, incarnation uint64, sender string) []byte {
	if len(sender) > maxHelloAddr {
		sender = sender[:maxHelloAddr]
	}
	var hdr [1 + 8 + 2]byte
	hdr[0] = opHello
	binary.BigEndian.PutUint64(hdr[1:9], incarnation)
	binary.BigEndian.PutUint16(hdr[9:11], uint16(len(sender)))
	dst = append(dst, hdr[:]...)
	return append(dst, sender...)
}

// appendSeqMark appends a durability sequence mark for the next batch frame.
func appendSeqMark(dst []byte, seq uint64) []byte {
	var buf [ackFrameSize]byte
	buf[0] = opSeqMark
	binary.BigEndian.PutUint64(buf[1:9], seq)
	return append(dst, buf[:]...)
}

// writeAck writes one ack frame for batchSeq to w (the receiver→sender
// direction of a durable connection).
func writeAck(w io.Writer, seq uint64) error {
	var buf [ackFrameSize]byte
	buf[0] = opAck
	binary.BigEndian.PutUint64(buf[1:9], seq)
	_, err := w.Write(buf[:])
	return err
}

// readAck reads one ack frame from r, tolerating (skipping) any stray
// seqmark or hello frames. Used by a durable sender's ack-reader loop.
func readAck(r io.Reader) (uint64, error) {
	var buf [ackFrameSize]byte
	for {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			return 0, err
		}
		switch buf[0] {
		case opAck:
			if _, err := io.ReadFull(r, buf[1:]); err != nil {
				return 0, unexpectedEOF(err)
			}
			return binary.BigEndian.Uint64(buf[1:9]), nil
		case opSeqMark:
			if _, err := io.ReadFull(r, buf[1:]); err != nil {
				return 0, unexpectedEOF(err)
			}
		case opHello:
			var hdr [10]byte
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return 0, unexpectedEOF(err)
			}
			n := int(binary.BigEndian.Uint16(hdr[8:10]))
			if n > maxHelloAddr {
				return 0, fmt.Errorf("engine: hello declares %d-byte sender (cap %d)", n, maxHelloAddr)
			}
			if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
				return 0, unexpectedEOF(err)
			}
		default:
			return 0, fmt.Errorf("engine: unexpected frame opcode 0x%02x on ack channel", buf[0])
		}
	}
}

// encodeTuple writes t's 28-byte wire form into buf[:tupleFrameSize].
func encodeTuple(buf []byte, t Tuple) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(t.Stream))
	binary.BigEndian.PutUint64(buf[4:12], uint64(t.Ts))
	binary.BigEndian.PutUint64(buf[12:20], uint64(t.Seq))
	binary.BigEndian.PutUint64(buf[20:28], math.Float64bits(t.Value))
}

// decodeTuple parses one 28-byte wire form from buf[:tupleFrameSize].
func decodeTuple(buf []byte) Tuple {
	return Tuple{
		Stream: int32(binary.BigEndian.Uint32(buf[0:4])),
		Ts:     int64(binary.BigEndian.Uint64(buf[4:12])),
		Seq:    int64(binary.BigEndian.Uint64(buf[12:20])),
		Value:  math.Float64frombits(binary.BigEndian.Uint64(buf[20:28])),
	}
}

// encodeTraced writes t's 37-byte traced record into buf[:tracedFrameSize].
func encodeTraced(buf []byte, t Tuple) {
	encodeTuple(buf, t)
	buf[tupleFrameSize] = t.Flags
	binary.BigEndian.PutUint64(buf[tupleFrameSize+1:tracedFrameSize], uint64(t.TraceTs))
}

// decodeTraced parses one traced record from buf[:tracedFrameSize].
func decodeTraced(buf []byte) Tuple {
	t := decodeTuple(buf)
	t.Flags = buf[tupleFrameSize]
	t.TraceTs = int64(binary.BigEndian.Uint64(buf[tupleFrameSize+1 : tracedFrameSize]))
	return t
}

// encodeKeyed writes t's 36-byte keyed record into buf[:keyedFrameSize].
func encodeKeyed(buf []byte, t Tuple) {
	encodeTuple(buf, t)
	binary.BigEndian.PutUint64(buf[tupleFrameSize:keyedFrameSize], t.Key)
}

// decodeKeyed parses one keyed record from buf[:keyedFrameSize].
func decodeKeyed(buf []byte) Tuple {
	t := decodeTuple(buf)
	t.Key = binary.BigEndian.Uint64(buf[tupleFrameSize:keyedFrameSize])
	return t
}

// encodeKeyedTraced writes t's 45-byte keyed traced record.
func encodeKeyedTraced(buf []byte, t Tuple) {
	encodeTraced(buf, t)
	binary.BigEndian.PutUint64(buf[tracedFrameSize:keyedTracedFrameSize], t.Key)
}

// decodeKeyedTraced parses one keyed traced record.
func decodeKeyedTraced(buf []byte) Tuple {
	t := decodeTraced(buf)
	t.Key = binary.BigEndian.Uint64(buf[tracedFrameSize:keyedTracedFrameSize])
	return t
}

// WriteTuple writes one legacy single-tuple frame.
func WriteTuple(w io.Writer, t Tuple) error {
	var buf [tupleFrameSize]byte
	encodeTuple(buf[:], t)
	_, err := w.Write(buf[:])
	return err
}

// ReadTuple reads one legacy single-tuple frame.
func ReadTuple(r io.Reader) (Tuple, error) {
	var buf [tupleFrameSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Tuple{}, err
	}
	return decodeTuple(buf[:]), nil
}

// TupleWriter batches frames over a connection. Send writes legacy
// single-tuple frames; SendBatch amortizes framing and buffer management
// over a whole batch via the versioned batch frame, reusing one encode
// buffer across calls.
type TupleWriter struct {
	bw  *bufio.Writer
	c   io.Closer
	enc []byte // reusable batch encode buffer
}

// NewTupleWriter wraps w, sending the tuple-connection preamble byte.
func NewTupleWriter(w io.Writer) (*TupleWriter, error) {
	bw := bufio.NewWriterSize(w, 16*1024)
	if err := bw.WriteByte(connTuples); err != nil {
		return nil, fmt.Errorf("engine: writing preamble: %w", err)
	}
	return &TupleWriter{bw: bw}, nil
}

// NewTupleWriterDial dials a TCP address and returns a TupleWriter over the
// new connection; Close releases it.
func NewTupleWriterDial(addr string) (*TupleWriter, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("engine: dialing %s: %w", addr, err)
	}
	tw, err := NewTupleWriter(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	tw.c = conn
	return tw, nil
}

// Send writes one tuple into the buffer as a legacy single-tuple frame.
func (tw *TupleWriter) Send(t Tuple) error { return WriteTuple(tw.bw, t) }

// SendBatch writes a batch of tuples into the buffer. A single untraced
// tuple goes out as a legacy frame (no batch overhead); larger batches use
// the versioned batch frame, split at MaxBatchWire. Batches containing any
// flagged tuple use the traced frame so the context survives the hop — a
// single flagged tuple goes as a one-record traced frame, since the legacy
// frame cannot carry it. The encode buffer is reused across calls, so the
// steady-state path allocates nothing.
func (tw *TupleWriter) SendBatch(ts []Tuple) error {
	tw.enc = appendFrames(tw.enc[:0], ts)
	if len(tw.enc) == 0 {
		return nil
	}
	_, err := tw.bw.Write(tw.enc)
	return err
}

// appendFrames appends the wire encoding of ts to dst and returns the
// extended buffer, emitting exactly the frames SendBatch would: a single
// untraced, unkeyed tuple goes out as a legacy 28-byte frame; anything
// else as versioned batch frames split at MaxBatchWire, upgraded to the
// traced/keyed record shapes when any tuple in the run needs them. Shared
// by the buffered TupleWriter path and the outbox's vectored flush.
func appendFrames(dst []byte, ts []Tuple) []byte {
	traced, keyed := false, false
	for i := range ts {
		if ts[i].Flags != 0 {
			traced = true
		}
		if ts[i].Key != 0 {
			keyed = true
		}
		if traced && keyed {
			break
		}
	}
	for len(ts) > MaxBatchWire {
		dst = appendBatchFrame(dst, ts[:MaxBatchWire], traced, keyed)
		ts = ts[MaxBatchWire:]
	}
	switch len(ts) {
	case 0:
		return dst
	case 1:
		if traced || keyed {
			return appendBatchFrame(dst, ts, traced, keyed)
		}
		n := len(dst)
		dst = append(dst, make([]byte, tupleFrameSize)...)
		encodeTuple(dst[n:], ts[0])
		return dst
	default:
		return appendBatchFrame(dst, ts, traced, keyed)
	}
}

func appendBatchFrame(dst []byte, ts []Tuple, traced, keyed bool) []byte {
	rec, op := tupleFrameSize, opBatch
	switch {
	case traced && keyed:
		rec, op = keyedTracedFrameSize, opKeyedTraced
	case traced:
		rec, op = tracedFrameSize, opTraced
	case keyed:
		rec, op = keyedFrameSize, opKeyed
	}
	n := len(dst)
	need := batchHeaderSize + len(ts)*rec
	if cap(dst)-n < need {
		grown := make([]byte, n, n+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+need]
	buf := dst[n:]
	buf[0] = op
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(ts)))
	switch op {
	case opKeyedTraced:
		for i, t := range ts {
			encodeKeyedTraced(buf[batchHeaderSize+i*rec:], t)
		}
	case opTraced:
		for i, t := range ts {
			encodeTraced(buf[batchHeaderSize+i*rec:], t)
		}
	case opKeyed:
		for i, t := range ts {
			encodeKeyed(buf[batchHeaderSize+i*rec:], t)
		}
	default:
		for i, t := range ts {
			encodeTuple(buf[batchHeaderSize+i*rec:], t)
		}
	}
	return dst
}

// Flush pushes buffered frames to the socket.
func (tw *TupleWriter) Flush() error { return tw.bw.Flush() }

// Close flushes and closes the underlying connection when the writer owns
// one (constructed by NewTupleWriterDial).
func (tw *TupleWriter) Close() error {
	ferr := tw.Flush()
	if tw.c != nil {
		if err := tw.c.Close(); err != nil {
			return err
		}
	}
	return ferr
}

// TupleReader decodes the frame stream after the connTuples preamble,
// accepting legacy single-tuple frames, versioned batch frames and
// trace-annotated batch frames interleaved on the same connection. The decode slab and payload buffer
// are reused across calls, so steady-state decoding allocates nothing.
type TupleReader struct {
	r    io.Reader
	hdr  [batchHeaderSize]byte
	buf  []byte  // reusable frame payload buffer
	slab []Tuple // reusable decode slab; valid until the next ReadBatch

	// Durability context recorded from control frames interleaved with the
	// tuple frames. A seqmark applies to the batch returned by the SAME
	// ReadBatch call that consumed it; TakeMark reads and clears it.
	mark        uint64
	hasMark     bool
	helloInc    uint64
	helloSender string
	sawHello    bool
}

// TakeMark returns the durability sequence attached to the batch just
// returned by ReadBatch (and clears it). ok is false for unmarked frames.
func (tr *TupleReader) TakeMark() (seq uint64, ok bool) {
	seq, ok = tr.mark, tr.hasMark
	tr.hasMark = false
	return seq, ok
}

// Hello returns the sender identity announced on this connection, if any.
func (tr *TupleReader) Hello() (incarnation uint64, sender string, ok bool) {
	return tr.helloInc, tr.helloSender, tr.sawHello
}

// NewTupleReader wraps r (typically already buffered by the caller).
func NewTupleReader(r io.Reader) *TupleReader {
	return &TupleReader{r: r}
}

// ReadBatch reads the next frame and returns its tuples. The returned
// slice aliases the reader's internal slab and is only valid until the
// next call. Legacy frames yield a one-tuple batch. Frames declaring more
// than MaxBatchWire tuples (or an unknown opcode) are rejected with an
// error rather than trusted with an allocation.
func (tr *TupleReader) ReadBatch() ([]Tuple, error) {
	for {
		if _, err := io.ReadFull(tr.r, tr.hdr[:1]); err != nil {
			return nil, err
		}
		if tr.hdr[0]&0x80 == 0 {
			// Legacy frame: the byte we read is the stream id's first byte.
			if cap(tr.buf) < tupleFrameSize {
				tr.buf = make([]byte, tupleFrameSize)
			}
			buf := tr.buf[:tupleFrameSize]
			buf[0] = tr.hdr[0]
			if _, err := io.ReadFull(tr.r, buf[1:]); err != nil {
				return nil, unexpectedEOF(err)
			}
			if cap(tr.slab) < 1 {
				tr.slab = make([]Tuple, 1)
			}
			tr.slab = tr.slab[:1]
			tr.slab[0] = decodeTuple(buf)
			return tr.slab, nil
		}
		var rec int
		switch tr.hdr[0] {
		case opBatch:
			rec = tupleFrameSize
		case opTraced:
			rec = tracedFrameSize
		case opKeyed:
			rec = keyedFrameSize
		case opKeyedTraced:
			rec = keyedTracedFrameSize
		case opHello:
			var hdr [10]byte
			if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
				return nil, unexpectedEOF(err)
			}
			n := int(binary.BigEndian.Uint16(hdr[8:10]))
			if n > maxHelloAddr {
				return nil, fmt.Errorf("engine: hello declares %d-byte sender (cap %d)", n, maxHelloAddr)
			}
			if cap(tr.buf) < n {
				tr.buf = make([]byte, n)
			}
			if _, err := io.ReadFull(tr.r, tr.buf[:n]); err != nil {
				return nil, unexpectedEOF(err)
			}
			tr.helloInc = binary.BigEndian.Uint64(hdr[0:8])
			tr.helloSender = string(tr.buf[:n])
			tr.sawHello = true
			continue
		case opSeqMark:
			var buf [8]byte
			if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
				return nil, unexpectedEOF(err)
			}
			tr.mark = binary.BigEndian.Uint64(buf[:])
			tr.hasMark = true
			continue
		case opAck:
			// Stray ack on the tuple direction: skip harmlessly.
			var buf [8]byte
			if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
				return nil, unexpectedEOF(err)
			}
			continue
		default:
			return nil, fmt.Errorf("engine: unknown frame opcode 0x%02x", tr.hdr[0])
		}
		if _, err := io.ReadFull(tr.r, tr.hdr[1:]); err != nil {
			return nil, unexpectedEOF(err)
		}
		n := int(binary.BigEndian.Uint32(tr.hdr[1:5]))
		if n > MaxBatchWire {
			return nil, fmt.Errorf("engine: batch frame declares %d tuples (cap %d)", n, MaxBatchWire)
		}
		if n == 0 {
			continue // empty batch: keep-alive, nothing to deliver
		}
		need := n * rec
		if cap(tr.buf) < need {
			tr.buf = make([]byte, need)
		}
		buf := tr.buf[:need]
		if _, err := io.ReadFull(tr.r, buf); err != nil {
			return nil, unexpectedEOF(err)
		}
		if cap(tr.slab) < n {
			tr.slab = make([]Tuple, n)
		}
		tr.slab = tr.slab[:n]
		switch rec {
		case tracedFrameSize:
			for i := range tr.slab {
				tr.slab[i] = decodeTraced(buf[i*rec:])
			}
		case keyedFrameSize:
			for i := range tr.slab {
				tr.slab[i] = decodeKeyed(buf[i*rec:])
			}
		case keyedTracedFrameSize:
			for i := range tr.slab {
				tr.slab[i] = decodeKeyedTraced(buf[i*rec:])
			}
		default:
			for i := range tr.slab {
				tr.slab[i] = decodeTuple(buf[i*rec:])
			}
		}
		return tr.slab, nil
	}
}

// unexpectedEOF upgrades a mid-frame EOF so callers can distinguish a
// clean end-of-stream (between frames) from a truncated frame.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

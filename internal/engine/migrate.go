package engine

import (
	"fmt"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// Live operator migration — the dynamic-movement capability the paper
// contrasts ROD against (their prototype's "base overhead of run-time
// operator migration is on the order of a few hundred milliseconds").
//
// The protocol avoids tuple loss without global pauses:
//
//  1. the destination node installs the operator and its outbound routes;
//  2. both nodes charge a stall (the state-transfer cost) to their virtual
//     CPUs;
//  3. the source node removes the operator and converts its input streams
//     into relay routes toward the destination, so upstream producers and
//     source drivers keep sending to the old home and tuples take one extra
//     hop until the next full redeployment.
//
// During the brief hand-over both homes may process a few of the same
// tuples (at-least-once), the usual trade of pause-free migration.

// MoveOperator migrates one operator to dstNode at runtime, updating the
// plan in place. stall is the simulated state-transfer time charged to both
// nodes' virtual CPUs (0 for stateless operators).
func (cl *Cluster) MoveOperator(g *query.Graph, plan *placement.Plan, opID query.OpID, dstNode int, stall time.Duration) error {
	if dstNode < 0 || dstNode >= len(cl.Nodes) {
		return fmt.Errorf("engine: destination node %d outside [0,%d)", dstNode, len(cl.Nodes))
	}
	if int(opID) < 0 || int(opID) >= g.NumOps() {
		return fmt.Errorf("engine: unknown operator %d", opID)
	}
	srcNode := plan.NodeOf[opID]
	if srcNode == dstNode {
		return nil
	}
	op := g.Op(opID)
	spec := opSpecOf(op)
	addrs := cl.Addrs()

	// Routes the destination needs: the operator's output fan-out under the
	// updated plan, plus local subscriptions for its input streams. A
	// splitter's output is keyed — it routes through a partition table
	// pushed separately below, never through broadcast fan-out (fan-out
	// would deliver every tuple to every replica).
	routes := map[int][]Dest{}
	consumers := g.Consumers(op.Out)
	if op.Shard != query.ShardSplit {
		remote := map[int]bool{}
		for _, c := range consumers {
			cn := plan.NodeOf[c]
			if cn == dstNode {
				routes[int(op.Out)] = append(routes[int(op.Out)], Dest{Local: true, LocalOp: int(c)})
			} else if !remote[cn] {
				remote[cn] = true
				routes[int(op.Out)] = append(routes[int(op.Out)], Dest{Addr: addrs[cn]})
			}
		}
		if len(consumers) == 0 && cl.Collector != nil {
			routes[int(op.Out)] = append(routes[int(op.Out)], Dest{Addr: cl.Collector.Addr()})
		}
	}
	for _, in := range op.Inputs {
		routes[int(in)] = append(routes[int(in)], Dest{Local: true, LocalOp: int(op.ID)})
	}

	// 1. Install at the destination.
	if err := cl.Controls[dstNode].AddOp(&spec, routes); err != nil {
		cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "addop", "node", dstNode, "err", err.Error())
		return fmt.Errorf("engine: installing op %d on node %d: %w", opID, dstNode, err)
	}
	cl.events.Emit(obs.LevelInfo, obs.EventMigrateInstall,
		"op", int(opID), "from", srcNode, "to", dstNode)

	// abort rolls the destination install back after a later step failed, so
	// the operator is never left live on both homes with no relay and a
	// stale plan. If the rollback itself fails (destination died too), the
	// plan still reflects reality — the source copy is the only survivor.
	abort := func(step string, cause error) error {
		if rbErr := cl.Controls[dstNode].RemoveOp(int(op.ID), nil); rbErr != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError,
				"op", "rollback", "node", dstNode, "err", rbErr.Error())
		}
		cl.events.Emit(obs.LevelWarn, obs.EventMigrateAbort,
			"op", int(opID), "from", srcNode, "to", dstNode,
			"step", step, "err", cause.Error())
		return fmt.Errorf("engine: migrating op %d to node %d aborted at %s (destination rolled back): %w",
			opID, dstNode, step, cause)
	}

	// Sharded operators carry keyed routing state: the destination must
	// hold a partition table marking the moved shard local *before* the
	// source gives the operator up, or a destination already hosting a
	// sibling replica would bounce the shard's tuples back per its stale
	// table (a routing loop, since the source then forwards them right
	// back). A migrating splitter likewise needs the table at its new home
	// to route its own keyed output.
	var shardSt *shardState
	var shardSid int
	switch {
	case op.Shard == query.ShardReplica && len(op.Inputs) == 1:
		shardSid = int(op.Inputs[0])
	case op.Shard == query.ShardSplit:
		shardSid = int(op.Out)
	}
	if op.Shard == query.ShardReplica || op.Shard == query.ShardSplit {
		cl.shardMu.Lock()
		shardSt = cl.shards[shardSid]
		var dstSpec *PartitionSpec
		if shardSt != nil {
			nodeOf := append([]int(nil), plan.NodeOf...)
			nodeOf[opID] = dstNode
			ps := shardSt.specFor(shardSid, dstNode, nodeOf, addrs)
			dstSpec = &ps
		}
		cl.shardMu.Unlock()
		if dstSpec != nil {
			if err := cl.Controls[dstNode].Repart(dstSpec); err != nil {
				cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "repart", "node", dstNode, "err", err.Error())
				return abort("repart_dst", err)
			}
		}
	}

	// 2. State-transfer stall on both ends.
	if stall > 0 {
		if err := cl.Controls[srcNode].Stall(stall); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "stall", "node", srcNode, "err", err.Error())
			return abort("stall_src", err)
		}
		if err := cl.Controls[dstNode].Stall(stall); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "stall", "node", dstNode, "err", err.Error())
			return abort("stall_dst", err)
		}
		cl.events.Emit(obs.LevelInfo, obs.EventMigrateStall,
			"op", int(opID), "sec", stall.Seconds())
	}
	// 3. Remove at the source, relaying its inputs toward the destination.
	relay := map[int][]Dest{}
	for _, in := range op.Inputs {
		relay[int(in)] = append(relay[int(in)], Dest{Addr: addrs[dstNode]})
	}
	if err := cl.Controls[srcNode].RemoveOp(int(op.ID), relay); err != nil {
		cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "removeop", "node", srcNode, "err", err.Error())
		return abort("removeop", fmt.Errorf("engine: removing op %d from node %d: %w", opID, srcNode, err))
	}
	cl.events.Emit(obs.LevelInfo, obs.EventMigrateRemove,
		"op", int(opID), "from", srcNode, "to", dstNode)
	plan.NodeOf[opID] = dstNode
	// Keep the Deploy-time plan (the shard table pushes' source of truth)
	// tracking migrations executed against a caller-owned plan copy.
	cl.shardMu.Lock()
	if cl.plan != nil && cl.plan != plan && int(opID) < len(cl.plan.NodeOf) {
		cl.plan.NodeOf[opID] = dstNode
	}
	cl.shardMu.Unlock()
	if cl.monitor != nil {
		cl.monitor.setOp(opID, dstNode)
	}

	// Refresh every remaining table holder (splitter home, sibling replica
	// homes, the vacated source) so keyed tuples stop detouring through the
	// old home's relay. Push failures only warn: a stale table still routes
	// correctly via that relay, so the move itself has succeeded.
	if shardSt != nil {
		nodeOf := append([]int(nil), plan.NodeOf...)
		involved := shardSt.nodes(nodeOf)
		hasSrc := false
		for _, nd := range involved {
			if nd == srcNode {
				hasSrc = true
			}
		}
		if !hasSrc {
			involved = append(involved, srcNode)
		}
		for _, nd := range involved {
			if nd == dstNode {
				continue // already holds the updated table
			}
			ps := shardSt.specFor(shardSid, nd, nodeOf, addrs)
			if err := cl.Controls[nd].Repart(&ps); err != nil {
				cl.events.Emit(obs.LevelWarn, obs.EventControlError,
					"op", "repart", "node", nd, "err", err.Error())
			}
		}
	}
	return nil
}

// opSpecOf converts a graph operator to its wire form.
func opSpecOf(op *query.Operator) OpSpec {
	ins := make([]int, len(op.Inputs))
	for i, in := range op.Inputs {
		ins[i] = int(in)
	}
	return OpSpec{
		ID:          int(op.ID),
		Name:        op.Name,
		Kind:        op.Kind.String(),
		Cost:        op.Cost,
		Selectivity: op.Selectivity,
		Window:      op.Window,
		Inputs:      ins,
		Out:         int(op.Out),
	}
}

// AddOp installs an operator and merges routes at runtime.
func (c *ControlClient) AddOp(spec *OpSpec, routes map[int][]Dest) error {
	_, err := c.call(&controlRequest{Cmd: "addop", Op: spec, Routes: routes})
	return err
}

// RemoveOp uninstalls an operator, replacing the local subscriptions of its
// input streams with the given relay routes.
func (c *ControlClient) RemoveOp(id int, relay map[int][]Dest) error {
	_, err := c.call(&controlRequest{Cmd: "removeop", OpID: &id, Routes: relay})
	return err
}

// Stall charges the node's virtual CPU with a state-transfer pause.
func (c *ControlClient) Stall(d time.Duration) error {
	sec := d.Seconds()
	_, err := c.call(&controlRequest{Cmd: "stall", StallSec: &sec})
	return err
}

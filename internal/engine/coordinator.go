package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/stats"
	"rodsp/internal/trace"
)

// ControlClient is a JSON control-plane connection to one node.
type ControlClient struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	mu   sync.Mutex
}

// DialControl opens a control connection to a node.
func DialControl(addr string) (*ControlClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("engine: dialing control %s: %w", addr, err)
	}
	if _, err := conn.Write([]byte{connControl}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("engine: control preamble: %w", err)
	}
	return &ControlClient{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close closes the control connection.
func (c *ControlClient) Close() error { return c.conn.Close() }

func (c *ControlClient) call(req *controlRequest) (*ControlResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("engine: control send: %w", err)
	}
	var resp ControlResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("engine: control recv: %w", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("engine: node error: %s", resp.Err)
	}
	return &resp, nil
}

// Deploy ships a node spec.
func (c *ControlClient) Deploy(spec *NodeSpec) error {
	_, err := c.call(&controlRequest{Cmd: "deploy", Spec: spec})
	return err
}

// Start begins paced execution and resets metrics.
func (c *ControlClient) Start() error {
	_, err := c.call(&controlRequest{Cmd: "start"})
	return err
}

// Stop pauses paced execution.
func (c *ControlClient) Stop() error {
	_, err := c.call(&controlRequest{Cmd: "stop"})
	return err
}

// Stats fetches the node's metrics snapshot.
func (c *ControlClient) Stats() (*NodeStats, error) {
	resp, err := c.call(&controlRequest{Cmd: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Fault injects (or clears) a fault on the node: sever/drop/delay an
// outbound link, or kill the node entirely (it acknowledges, then closes).
func (c *ControlClient) Fault(spec FaultSpec) error {
	_, err := c.call(&controlRequest{Cmd: "fault", Fault: &spec})
	return err
}

// Restart asks the node to close with restart intent: a supervisor
// (rodnode's main loop, or Cluster.RestartNode) recreates it on the same
// address and WAL directory, recovering its state.
func (c *ControlClient) Restart() error {
	_, err := c.call(&controlRequest{Cmd: "restart"})
	return err
}

// DefaultLatencyReservoir is how many latency samples the collector
// retains for quantile estimation (a uniform reservoir over the whole run).
const DefaultLatencyReservoir = 200000

// Collector receives sink tuples and measures end-to-end latency. Retained
// samples form a uniform reservoir (Vitter's algorithm R) over the entire
// run, so long runs estimate quantiles over all traffic instead of biasing
// toward startup as a plain prefix cap would.
type Collector struct {
	ln net.Listener
	mu sync.Mutex
	wg sync.WaitGroup

	latencies []float64
	cap       int
	rng       *rand.Rand
	count     int64
	welford   stats.Welford
	closing   bool
	conns     map[net.Conn]bool

	hist       *obs.Histogram // optional; set via SetObserver
	sinkCount  *obs.Counter
	stages     *obs.StageSet
	events     *obs.EventLog
	traceEvery int64

	// At-least-once sink dedup (SetDedup): per-stream max-Seq watermarks.
	// A tuple at or below its stream's watermark is a duplicate delivery —
	// counted and excluded from every latency/count statistic, so the
	// kill-and-recover ledger can gate on Duplicates() == 0.
	dedup     bool
	sinkMarks map[int32]int64
	dups      int64
}

// NewCollector starts a collector on addr.
func NewCollector(addr string) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: collector listen: %w", err)
	}
	c := &Collector{
		ln:    ln,
		cap:   DefaultLatencyReservoir,
		rng:   rand.New(rand.NewSource(1)),
		conns: map[net.Conn]bool{},
	}
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// SetSampleCap resizes the latency reservoir (tests and memory-constrained
// runs); existing overflow samples are truncated.
func (c *Collector) SetSampleCap(n int) {
	if n <= 0 {
		n = DefaultLatencyReservoir
	}
	c.mu.Lock()
	c.cap = n
	if len(c.latencies) > n {
		c.latencies = c.latencies[:n]
	}
	c.mu.Unlock()
}

// record folds one latency observation into the running stats and the
// uniform reservoir. Callers must not hold c.mu.
func (c *Collector) record(lat float64) {
	c.mu.Lock()
	c.count++
	c.welford.Add(lat)
	if len(c.latencies) < c.cap {
		c.latencies = append(c.latencies, lat)
	} else if j := c.rng.Int63n(c.count); int(j) < c.cap {
		c.latencies[j] = lat
	}
	c.mu.Unlock()
}

// Addr returns the collector's address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// SetObserver mirrors sink latencies into an obs histogram and counter,
// records traced tuples' final deliver stage into stages, and emits sampled
// sink trace spans (1 in traceEvery tuples per stream; 0 disables spans).
// Any argument may be nil.
func (c *Collector) SetObserver(h *obs.Histogram, count *obs.Counter, stages *obs.StageSet, ev *obs.EventLog, traceEvery int64) {
	c.mu.Lock()
	c.hist, c.sinkCount, c.stages, c.events, c.traceEvery = h, count, stages, ev, traceEvery
	c.mu.Unlock()
}

// SetDedup enables (or disables) duplicate-delivery filtering at the sink:
// per-stream max-Seq watermarks drop any tuple already delivered. Used by
// kill-and-recover episodes, whose ledger requires exactly-once *observable*
// delivery on top of the engine's at-least-once transport. Enabling resets
// the watermarks and the duplicate count.
func (c *Collector) SetDedup(on bool) {
	c.mu.Lock()
	c.dedup = on
	c.sinkMarks = map[int32]int64{}
	c.dups = 0
	c.mu.Unlock()
}

// Duplicates returns how many duplicate deliveries the sink dedup filter
// has dropped (0 unless SetDedup is enabled).
func (c *Collector) Duplicates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// sinkAdmit applies the dedup watermark to one delivered tuple, reporting
// whether it should be recorded (always true with dedup disabled).
func (c *Collector) sinkAdmit(t Tuple) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dedup {
		return true
	}
	// Missing entry = stream never seen; sequences start at 0, so the map's
	// zero value cannot stand in for "none".
	if mk, seen := c.sinkMarks[t.Stream]; seen && t.Seq <= mk {
		c.dups++
		return false
	}
	c.sinkMarks[t.Stream] = t.Seq
	return true
}

func (c *Collector) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns[conn] = true
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				conn.Close()
				c.mu.Lock()
				delete(c.conns, conn)
				c.mu.Unlock()
			}()
			br := bufio.NewReader(conn)
			kind, err := br.ReadByte()
			if err != nil || kind != connTuples {
				return
			}
			tr := NewTupleReader(br)
			for {
				batch, err := tr.ReadBatch()
				if err != nil {
					return
				}
				now := time.Now().UnixNano()
				c.mu.Lock()
				hist, count, stages, ev, every := c.hist, c.sinkCount, c.stages, c.events, c.traceEvery
				c.mu.Unlock()
				for _, t := range batch {
					if !c.sinkAdmit(t) {
						continue // duplicate delivery (recovery re-send)
					}
					lat := float64(now-t.Ts) / float64(time.Second)
					c.record(lat)
					if hist != nil {
						hist.Observe(lat)
					}
					if count != nil {
						count.Inc()
					}
					if t.Flags&TupleTraced != 0 {
						// Final stage boundary: the latency is computed at the
						// same instant, so the tuple's stage durations
						// telescope to exactly this sink latency.
						var deliver float64
						if t.TraceTs > 0 {
							deliver = float64(now-t.TraceTs) / float64(time.Second)
						}
						stages.Observe(obs.StageDeliver, deliver)
						ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "sink",
							"stream", int(t.Stream), "seq", t.Seq, "ts", t.Ts,
							"deliver", deliver, "latency", lat)
					} else if tracePick(every, t) {
						// Context stripped by a legacy hop: still emit the sink
						// span so the trace remains correlated end to end.
						ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "sink",
							"stream", int(t.Stream), "seq", t.Seq, "ts", t.Ts,
							"latency", lat)
					}
				}
			}
		}()
	}
}

// LatencyStats returns (count, mean, p95, p99, max) in seconds. With no
// retained samples the quantiles are zero (obs.Quantiles never panics on
// an empty set, unlike stats.Percentile).
func (c *Collector) LatencyStats() (int64, float64, float64, float64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	qs, ok := obs.Quantiles(c.latencies, 95, 99, 100)
	if !ok {
		return c.count, 0, 0, 0, 0
	}
	return c.count, c.welford.Mean(), qs[0], qs[1], qs[2]
}

// LatencySummary digests the retained latencies into the shared summary
// form (ok=false with no samples) — the same digest the simulator reports.
// Count is the exact observation total; Retained is the reservoir size the
// quantiles were estimated from.
func (c *Collector) LatencySummary() (obs.LatencySummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := obs.Summarize(c.latencies)
	if ok {
		s.Count = c.count // retained reservoir is capped; count is exact
	}
	return s, ok
}

// Reset clears accumulated latencies.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencies = c.latencies[:0]
	c.count = 0
	c.welford = stats.Welford{}
	c.sinkMarks = map[int32]int64{}
	c.dups = 0
}

// Close shuts the collector down.
func (c *Collector) Close() error {
	err := c.ln.Close()
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

// SourceDriver injects tuples for one input stream at trace-driven rates to
// every node hosting a consumer of that stream.
type SourceDriver struct {
	Stream query.StreamID
	Trace  *trace.Trace
	Addrs  []string // destination node data addresses

	// Speedup compresses trace time: a Speedup of 10 plays 10 trace seconds
	// per wall second (rates scale accordingly). Default 1.
	Speedup float64
	// MaxRate caps the injection rate (tuples/second wall time) to protect
	// the host; 0 = no cap.
	MaxRate float64
	// TickInterval is the injection scheduler period. Default 2ms. Delivery
	// is integrated over the *measured* inter-tick elapsed time, so a
	// coarse or delayed tick still injects the trace's full tuple count.
	TickInterval time.Duration

	// Count, when set, is incremented once per injected tuple; wire it to
	// Monitor.SourceCounter so the monitor can estimate the stream's rate.
	Count *obs.Counter

	// Keys, when set, stamps each injected tuple's partition key (e.g. a
	// seeded Zipfian generator from internal/workload). Keyed tuples ride
	// the keyed wire frames and route through partition tables downstream;
	// nil leaves tuples unkeyed (slot fallback hashes the sequence number).
	Keys func() uint64

	// Legacy forces per-tuple legacy wire frames instead of batch frames —
	// the pre-batching baseline that rodload measures the speedup against.
	// Legacy frames cannot carry trace context; the first batch-aware node
	// re-marks the same sampled tuples from the shared stride.
	Legacy bool

	// TraceEvery flags 1 in TraceEvery tuples (per-stream rotating offset)
	// with trace context at the source, stamping the origin timestamp as
	// the first stage boundary so downstream hops decompose the end-to-end
	// latency. 0 disables source-side marking.
	TraceEvery int64

	// Dropped counts per-destination sends skipped because that
	// destination's connection died mid-run (the driver keeps feeding the
	// surviving destinations instead of aborting). Read it after Run.
	Dropped int64
}

// srcDest is one destination connection; dead once a send/flush failed.
type srcDest struct {
	tw   *TupleWriter
	dead bool
}

// Run injects for the given wall-clock duration or until stop is closed.
// It returns the number of tuples injected. A destination whose connection
// fails mid-run is dropped (counted in Dropped) while the remaining
// destinations keep receiving; Run errors only when no destination is left.
func (s *SourceDriver) Run(duration time.Duration, stop <-chan struct{}) (int64, error) {
	speed := s.Speedup
	if speed <= 0 {
		speed = 1
	}
	tickEvery := s.TickInterval
	if tickEvery <= 0 {
		tickEvery = 2 * time.Millisecond
	}
	dests := make([]*srcDest, len(s.Addrs))
	for i, addr := range s.Addrs {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return 0, fmt.Errorf("engine: source dial %s: %w", addr, err)
		}
		tw, err := NewTupleWriter(conn)
		if err != nil {
			conn.Close()
			return 0, err
		}
		dests[i] = &srcDest{tw: tw}
		defer conn.Close()
	}
	start := time.Now()
	var seq int64
	var injected int64
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	var batch []Tuple // reused per tick; SendBatch copies before returning
	var carry float64
	lastElapsed := 0.0
	for {
		select {
		case <-stop:
			s.flushAll(dests)
			return injected, nil
		case now := <-ticker.C:
			es := now.Sub(start).Seconds()
			end := false
			if es >= duration.Seconds() {
				// Clamp the final interval to the requested duration so the
				// delivered count matches the trace integral over [0, duration].
				es = duration.Seconds()
				end = true
			}
			// Integrate by measured inter-tick elapsed time: a tick delayed
			// by the scheduler injects proportionally more, instead of
			// silently under-delivering a fixed per-tick quantum.
			dt := es - lastElapsed
			lastElapsed = es
			traceTime := es * speed
			rate := s.Trace.RateAt(traceTime) * speed
			if s.MaxRate > 0 && rate > s.MaxRate {
				rate = s.MaxRate
			}
			carry += rate * dt
			k := int(carry)
			carry -= float64(k)
			if k > 0 {
				batch = batch[:0]
				for i := 0; i < k; i++ {
					t := Tuple{Stream: int32(s.Stream), Ts: time.Now().UnixNano(), Seq: seq}
					if s.Keys != nil {
						t.Key = s.Keys()
					}
					if s.TraceEvery > 0 && tracePick(s.TraceEvery, t) {
						t.Flags = TupleTraced
						t.TraceTs = t.Ts
					}
					batch = append(batch, t)
					seq++
				}
				alive := 0
				for _, d := range dests {
					if d.dead {
						s.Dropped += int64(k)
						continue
					}
					var err error
					if s.Legacy {
						for _, t := range batch {
							if err = d.tw.Send(t); err != nil {
								break
							}
						}
					} else {
						err = d.tw.SendBatch(batch)
					}
					if err != nil {
						d.dead = true
						s.Dropped += int64(k)
						continue
					}
					alive++
				}
				if alive == 0 {
					return injected, fmt.Errorf("engine: source %d: every destination failed", s.Stream)
				}
				injected += int64(k)
				if s.Count != nil {
					s.Count.Add(int64(k))
				}
			}
			if err := s.flushAll(dests); err != nil {
				return injected, err
			}
			if end {
				return injected, nil
			}
		}
	}
}

// flushAll flushes every live destination, marking failures dead; it errors
// only when no destination remains.
func (s *SourceDriver) flushAll(dests []*srcDest) error {
	alive := 0
	for _, d := range dests {
		if d.dead {
			continue
		}
		if err := d.tw.Flush(); err != nil {
			d.dead = true
			continue
		}
		alive++
	}
	if alive == 0 && len(dests) > 0 {
		return fmt.Errorf("engine: source %d: every destination failed", s.Stream)
	}
	return nil
}

// Cluster is an in-process engine cluster: N nodes plus a collector, with
// deployment and measurement helpers — the harness the prototype
// experiments and examples drive.
type Cluster struct {
	Nodes     []*Node
	Controls  []*ControlClient
	Collector *Collector

	external    bool
	remoteAddrs []string

	// Launch parameters retained so RestartNode can recreate a node with
	// the same capacity, config and WAL directory it was born with.
	caps []float64
	cfg  NodeConfig

	events  *obs.EventLog // nil-safe; set via SetEvents or StartMonitor
	monitor *Monitor

	// Keyed-stream bookkeeping, recorded at Deploy: the live slot tables
	// and replica sets (see shard.go), plus the plan whose NodeOf tracks
	// migrations so table pushes resolve replica homes correctly.
	shardMu sync.Mutex
	shards  map[int]*shardState
	plan    *placement.Plan
}

// SetEvents attaches an event log to the cluster's control plane: deploys,
// node connect/disconnect and swallowed control errors become events. It
// records the current membership as node_connect events.
func (cl *Cluster) SetEvents(ev *obs.EventLog) {
	cl.events = ev
	for i, addr := range cl.Addrs() {
		ev.Emit(obs.LevelInfo, obs.EventNodeConnect, "node", i, "addr", addr, "external", cl.external)
	}
}

// ConnectCluster attaches to externally started nodes (e.g. rodnode
// processes) by address, starting a local collector for sink latencies.
// The attached Cluster's Close closes the control connections and the
// collector but leaves the remote nodes running.
func ConnectCluster(addrs []string) (*Cluster, error) {
	cl := &Cluster{external: true}
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cl.Collector = col
	for _, addr := range addrs {
		ctl, err := DialControl(addr)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Controls = append(cl.Controls, ctl)
		cl.remoteAddrs = append(cl.remoteAddrs, addr)
	}
	return cl, nil
}

// StartCluster launches n nodes with the given capacities on ephemeral
// localhost ports, plus a collector.
func StartCluster(capacities []float64) (*Cluster, error) {
	return StartClusterConfig(capacities, NodeConfig{})
}

// StartClusterConfig launches a cluster whose nodes share the given
// data-plane resilience configuration (queue bounds, shed policy, outbox
// sizing, reconnect backoff).
func StartClusterConfig(capacities []float64, cfg NodeConfig) (*Cluster, error) {
	cl := &Cluster{caps: append([]float64(nil), capacities...), cfg: cfg}
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cl.Collector = col
	for i, c := range capacities {
		node, err := NewNodeConfig("127.0.0.1:0", c, cl.nodeConfig(i))
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Nodes = append(cl.Nodes, node)
		ctl, err := DialControl(node.Addr())
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Controls = append(cl.Controls, ctl)
	}
	return cl, nil
}

// nodeConfig derives node i's NodeConfig from the cluster template: when a
// WAL root is set, each node gets its own index-keyed subdirectory (stable
// across restarts, so RestartNode recovers from the same directory).
func (cl *Cluster) nodeConfig(i int) NodeConfig {
	cfg := cl.cfg
	if cfg.WALDir != "" {
		cfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("n%d", i))
	}
	return cfg
}

// RestartNode simulates a crash-and-supervise cycle for in-process node i:
// close the current incarnation (dropping everything not on its WAL), then
// recreate it on the SAME data-plane address with the same capacity and WAL
// directory so it recovers its state and peers reconnect transparently. The
// old listener's port is rebound with a short retry window.
func (cl *Cluster) RestartNode(i int) error {
	if cl.external {
		return fmt.Errorf("engine: cannot restart external node %d", i)
	}
	if i < 0 || i >= len(cl.Nodes) || cl.Nodes[i] == nil {
		return fmt.Errorf("engine: restart: no such node %d", i)
	}
	addr := cl.Nodes[i].Addr()
	if ctl := cl.Controls[i]; ctl != nil {
		ctl.Close()
		cl.Controls[i] = nil
	}
	cl.Nodes[i].Close()
	cl.Nodes[i] = nil
	var node *Node
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		node, err = NewNodeConfig(addr, cl.caps[i], cl.nodeConfig(i))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: restart node %d: %w", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctl, err := DialControl(node.Addr())
	if err != nil {
		node.Close()
		return fmt.Errorf("engine: restart node %d: %w", i, err)
	}
	cl.Nodes[i] = node
	cl.Controls[i] = ctl
	cl.events.Emit(obs.LevelInfo, obs.EventNodeRestart, "node", i, "addr", addr)
	return nil
}

// Addrs returns the data-plane addresses of the nodes.
func (cl *Cluster) Addrs() []string {
	if cl.external {
		out := make([]string, len(cl.remoteAddrs))
		copy(out, cl.remoteAddrs)
		return out
	}
	out := make([]string, len(cl.Nodes))
	for i, n := range cl.Nodes {
		out[i] = n.Addr()
	}
	return out
}

// Deploy compiles and ships a graph+plan, routing sinks to the collector.
func (cl *Cluster) Deploy(g *query.Graph, plan *placement.Plan, capacities []float64) error {
	specs, err := BuildSpecs(g, plan, capacities, cl.Addrs(), cl.Collector.Addr())
	if err != nil {
		return err
	}
	groups, err := query.ShardGroups(g)
	if err != nil {
		return err
	}
	cl.shardMu.Lock()
	cl.plan = plan
	cl.shards = map[int]*shardState{}
	for _, grp := range groups {
		cl.shards[int(grp.Stream)] = &shardState{
			parent: grp.Parent,
			split:  grp.Split,
			k:      grp.K,
			slots:  query.UniformSlots(grp.K),
			ops:    append([]query.OpID(nil), grp.Replicas...),
		}
	}
	cl.shardMu.Unlock()
	for i, spec := range specs {
		if err := cl.Controls[i].Deploy(spec); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "deploy", "node", i, "err", err.Error())
			return fmt.Errorf("engine: deploying to node %d: %w", i, err)
		}
		cl.events.Emit(obs.LevelInfo, obs.EventDeploy, "node", i, "ops", len(spec.Ops))
	}
	return nil
}

// Start begins paced execution on every node.
func (cl *Cluster) Start() error {
	for i, ctl := range cl.Controls {
		if err := ctl.Start(); err != nil {
			return fmt.Errorf("engine: starting node %d: %w", i, err)
		}
	}
	return nil
}

// Stop pauses every node. Only the first error is returned, but every
// failure surfaces in the event log.
func (cl *Cluster) Stop() error {
	var first error
	for i, ctl := range cl.Controls {
		if err := ctl.Stop(); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "stop", "node", i, "err", err.Error())
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Stats gathers every node's snapshot. A node whose control channel fails
// yields a nil entry plus a control_error event instead of aborting the
// whole poll, so the monitor keeps observing the survivors through a
// single-node failure; the error is non-nil only when every node failed.
func (cl *Cluster) Stats() ([]*NodeStats, error) {
	out := make([]*NodeStats, len(cl.Controls))
	var firstErr error
	failed := 0
	for i, ctl := range cl.Controls {
		s, err := ctl.Stats()
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
			cl.events.Emit(obs.LevelWarn, obs.EventControlError,
				"op", "stats", "node", i, "err", err.Error())
			continue
		}
		out[i] = s
	}
	if failed > 0 && failed == len(cl.Controls) {
		return out, firstErr
	}
	return out, nil
}

// Close tears the cluster down. Close errors are reported to the event log
// rather than swallowed (teardown still proceeds through every component).
func (cl *Cluster) Close() {
	if cl.monitor != nil {
		cl.monitor.Close()
		cl.monitor = nil
	}
	for i, ctl := range cl.Controls {
		if ctl == nil {
			continue
		}
		if err := ctl.Close(); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "close", "node", i, "err", err.Error())
		}
		cl.events.Emit(obs.LevelInfo, obs.EventNodeDisconnect, "node", i)
	}
	for i, n := range cl.Nodes {
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "node_close", "node", i, "err", err.Error())
		}
	}
	if cl.Collector != nil {
		if err := cl.Collector.Close(); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError, "op", "collector_close", "err", err.Error())
		}
	}
}

package engine

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// tupleSink is a raw TCP collector: it accepts tuple connections (the
// connTuples preamble plus binary frames, exactly what a peer node would
// read) and records arrivals per stream in arrival order.
type tupleSink struct {
	ln       net.Listener
	mu       sync.Mutex
	byStream map[int32][]Tuple
	total    int
}

func newTupleSink(t *testing.T) *tupleSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &tupleSink{ln: ln, byStream: map[int32][]Tuple{}}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *tupleSink) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 16*1024)
	if kind, err := br.ReadByte(); err != nil || kind != connTuples {
		return
	}
	tr := NewTupleReader(br)
	for {
		batch, err := tr.ReadBatch()
		if err != nil {
			return
		}
		s.mu.Lock()
		for _, t := range batch {
			s.byStream[t.Stream] = append(s.byStream[t.Stream], t)
			s.total++
		}
		s.mu.Unlock()
	}
}

func (s *tupleSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Per-(stream, key) FIFO ordering, end to end: tuples injected in order on
// one stream must arrive at a remote sink in that order after crossing the
// full multicore data plane — sharded ingress admission, a pinned worker
// lane, the lane's lock-free SPSC outbox ring, and the vectored flush. Runs
// with GOMAXPROCS >= 4 and four worker lanes so the lanes genuinely execute
// in parallel under -race.
func TestLaneOrderingEndToEnd(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	sink := newTupleSink(t)

	const (
		streams   = 8
		perStream = 2000
		workers   = 4
	)
	n, err := NewNodeConfig("127.0.0.1:0", 1e6, NodeConfig{
		Workers:   workers,
		OutboxCap: 16 * streams * perStream, // no ring overflow: every tuple must arrive
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got := n.Workers(); got != workers {
		t.Fatalf("Workers() = %d, want %d", got, workers)
	}
	// One pass-through operator per stream, each forwarding its output
	// stream to the sink. Distinct input streams spread across the lanes.
	spec := &NodeSpec{NodeID: 0, Capacity: 1e6, Routes: map[int][]Dest{}}
	for sid := 1; sid <= streams; sid++ {
		spec.Ops = append(spec.Ops, OpSpec{
			ID: sid - 1, Kind: "map", Cost: 0.0001, Selectivity: 1,
			Inputs: []int{sid}, Out: 100 + sid,
		})
		spec.Routes[sid] = []Dest{{Local: true, LocalOp: sid - 1}}
		spec.Routes[100+sid] = []Dest{{Addr: sink.ln.Addr().String()}}
	}
	if err := n.deploy(spec); err != nil {
		t.Fatal(err)
	}

	// Four concurrent producers, two streams each, injecting interleaved
	// batches. Each stream is owned by one producer, so injection order is
	// the per-stream FIFO order the sink must observe.
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a, b := int32(2*p+1), int32(2*p+2)
			batch := make([]Tuple, 0, 32)
			for seq := int64(0); seq < perStream; seq += 16 {
				batch = batch[:0]
				for i := int64(0); i < 16 && seq+i < perStream; i++ {
					batch = append(batch,
						Tuple{Stream: a, Seq: seq + i, Key: uint64(a)},
						Tuple{Stream: b, Seq: seq + i, Key: uint64(b)})
				}
				n.enqueueInboundBatch(batch)
			}
		}(p)
	}
	wg.Wait()

	const total = streams * perStream
	waitUntil(t, 20*time.Second, "sink received every tuple", func() bool {
		return sink.count() >= total
	})

	// Order: each stream's arrivals are exactly Seq 0..perStream-1, FIFO.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for sid := 1; sid <= streams; sid++ {
		got := sink.byStream[int32(100+sid)]
		if len(got) != perStream {
			t.Fatalf("stream %d: %d tuples at sink, want %d", 100+sid, len(got), perStream)
		}
		for i, tp := range got {
			if tp.Seq != int64(i) {
				t.Fatalf("stream %d: arrival %d has Seq %d, want %d (FIFO broken)", 100+sid, i, tp.Seq, i)
			}
			if tp.Key != uint64(sid) {
				t.Fatalf("stream %d: arrival %d lost its key (got %d, want %d)", 100+sid, i, tp.Key, sid)
			}
		}
	}

	// Ledger closure at quiescence: every injected tuple was processed and
	// every emitted tuple was sent — nothing shed, dropped or stranded.
	st := n.Stats()
	if st.Injected != total || st.Shed != 0 || st.DroppedNoRoute != 0 {
		t.Fatalf("ingress ledger: injected %d shed %d noroute %d, want %d/0/0",
			st.Injected, st.Shed, st.DroppedNoRoute, total)
	}
	if st.Emitted != total {
		t.Fatalf("emitted = %d, want %d", st.Emitted, total)
	}
	if st.OutboxDropped != 0 || st.OutboxEnqueued != st.OutboxSent+st.OutboxPending {
		t.Fatalf("outbox ledger: enqueued %d != sent %d + pending %d (dropped %d)",
			st.OutboxEnqueued, st.OutboxSent, st.OutboxPending, st.OutboxDropped)
	}
	if len(st.Lanes) != workers {
		t.Fatalf("Stats.Lanes has %d entries, want %d", len(st.Lanes), workers)
	}
	var processed int64
	for _, ls := range st.Lanes {
		processed += ls.Processed
	}
	if processed != total {
		t.Fatalf("lane processed sum = %d, want %d", processed, total)
	}
}

// Streams sharing a consumer operator (a join's two inputs) must pin to one
// lane, so the operator's mutable state is single-lane in steady state;
// unrelated streams may land anywhere, and keyed (targeted) tuples hash
// their addressed replica regardless of the stream pinning.
func TestComputeLanesGroupsSharedConsumers(t *testing.T) {
	rs := emptyRouteState()
	rs.subs[1] = []int{0}
	rs.subs[2] = []int{0} // joins op 0 with stream 1
	rs.subs[3] = []int{1}
	rs.subs[4] = []int{1, 2} // chains: op 1 ties 3+4, op 2 ties 4+5
	rs.subs[5] = []int{2}
	rs.computeLanes(4)
	if rs.laneOf[1] != rs.laneOf[2] {
		t.Fatalf("join inputs split across lanes: %d vs %d", rs.laneOf[1], rs.laneOf[2])
	}
	if rs.laneOf[3] != rs.laneOf[4] || rs.laneOf[4] != rs.laneOf[5] {
		t.Fatalf("transitively shared consumers split: %v", rs.laneOf)
	}
	// A targeted tuple ignores the stream pinning: its lane is the replica
	// hash, stable for a given target across any route snapshot.
	tt := Tuple{Stream: 1, target: 7}
	if got, want := rs.laneFor(&tt, 4), fibLane(7, 4); got != want {
		t.Fatalf("targeted lane = %d, want %d", got, want)
	}
	// Single lane: everything collapses to lane 0.
	rs.computeLanes(1)
	for sid, l := range rs.laneOf {
		if l != 0 {
			t.Fatalf("w=1: stream %d on lane %d", sid, l)
		}
	}
}

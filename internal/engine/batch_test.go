package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rodsp/internal/obs"
)

// SendBatch → ReadBatch round-trips tuples exactly, splitting batches that
// exceed the wire cap and emitting single tuples as legacy frames.
func TestBatchWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 256, MaxBatchWire + 7} {
		var buf bytes.Buffer
		tw, err := NewTupleWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]Tuple, n)
		for i := range in {
			in[i] = Tuple{Stream: int32(i % 5), Ts: int64(i) * 100, Seq: int64(i), Value: float64(i) / 3}
		}
		if err := tw.SendBatch(in); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if b := buf.Bytes(); len(b) == 0 || b[0] != connTuples {
			t.Fatalf("n=%d: preamble missing", n)
		}
		if n == 1 {
			// Single tuples must cost no batch-header overhead.
			if buf.Len() != 1+tupleFrameSize {
				t.Fatalf("single tuple used %d bytes, want %d", buf.Len(), 1+tupleFrameSize)
			}
		}
		tr := NewTupleReader(bytes.NewReader(buf.Bytes()[1:])) // skip preamble
		var out []Tuple
		for len(out) < n {
			batch, err := tr.ReadBatch()
			if err != nil {
				t.Fatalf("n=%d: ReadBatch after %d tuples: %v", n, len(out), err)
			}
			if len(batch) > MaxBatchWire {
				t.Fatalf("n=%d: frame carried %d tuples (cap %d)", n, len(batch), MaxBatchWire)
			}
			out = append(out, batch...)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: tuple %d = %+v, want %+v", n, i, out[i], in[i])
			}
		}
	}
}

// A batch frame declaring more tuples than the cap is rejected with an
// error before any payload is trusted.
func TestReadBatchRejectsOversizedCount(t *testing.T) {
	frame := []byte{opBatch, 0xff, 0xff, 0xff, 0xff}
	if _, err := NewTupleReader(bytes.NewReader(frame)).ReadBatch(); err == nil {
		t.Fatal("oversized batch count must error")
	}
	if _, err := NewTupleReader(bytes.NewReader([]byte{0x80})).ReadBatch(); err == nil {
		t.Fatal("unknown opcode must error")
	}
}

// Mixed-version wire: legacy single-tuple frames and batch frames
// interleaved on one connection all reach the node — an old sender and a
// batching sender can share a receiver.
func TestMixedVersionWire(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Subscribe stream 1 to an operator so arrivals are queued, not dropped.
	n.addOp(&OpSpec{ID: 1, Name: "sink", Kind: "delay", Cost: 0, Selectivity: 0, Inputs: []int{1}, Out: 2},
		map[int][]Dest{1: {{Local: true, LocalOp: 1}}})

	tw, err := NewTupleWriterDial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	total := 0
	batch := make([]Tuple, 64)
	for round := 0; round < 4; round++ {
		if err := tw.Send(Tuple{Stream: 1, Seq: int64(total)}); err != nil {
			t.Fatal(err)
		}
		total++
		for i := range batch {
			batch[i] = Tuple{Stream: 1, Seq: int64(total + i)}
		}
		if err := tw.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
		total += len(batch)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "all mixed frames injected", func() bool {
		return n.Stats().Injected == int64(total)
	})
}

// A tuple with no local subscription and no relay route is counted in
// DroppedNoRoute and warns once per stream instead of vanishing.
func TestNoRouteAccounting(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ev := obs.NewEventLog(0)
	n.SetObserver(ev, nil, 0)

	for i := 0; i < 10; i++ {
		n.enqueueInbound(Tuple{Stream: 7, Seq: int64(i)})
	}
	n.enqueueInboundBatch([]Tuple{{Stream: 8}, {Stream: 8}, {Stream: 7}})
	s := n.Stats()
	if s.DroppedNoRoute != 13 {
		t.Fatalf("DroppedNoRoute = %d, want 13", s.DroppedNoRoute)
	}
	if s.Injected != 13 {
		t.Fatalf("Injected = %d, want 13", s.Injected)
	}
	// One warn event per stream, not per tuple.
	if got := ev.Count(obs.EventNoRoute); got != 2 {
		t.Fatalf("no_route events = %d, want 2 (one per stream)", got)
	}
}

// Outbox invariant under batched flushes: concurrent batch enqueues racing
// a severed/healed link and reconnects still satisfy
// enqueued == sent + dropped + pending at quiescence, with every tuple
// accounted exactly once. Run with -race.
func TestOutboxBatchInvariant(t *testing.T) {
	a, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		OutboxCap:   512,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr := b.Addr()

	const (
		producers  = 4
		batches    = 50
		batchSize  = 32
		totalSent  = producers * batches * batchSize
		faultFlips = 6
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]Tuple, batchSize)
			for i := 0; i < batches; i++ {
				for j := range batch {
					batch[j] = Tuple{Stream: 1, Seq: int64(p*batches*batchSize + i*batchSize + j)}
				}
				a.sendBatch(addr, batch)
			}
		}(p)
	}
	// Flip the link while producers hammer the ring.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < faultFlips; i++ {
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		if i%2 == 0 {
			a.SetLinkFault(addr, LinkFault{Sever: true})
		} else {
			a.ClearLinkFault(addr)
		}
	}
	wg.Wait()
	a.ClearLinkFault(addr)

	// Quiescence: the writer drains the ring (link is healed), after which
	// the books must balance exactly.
	waitUntil(t, 5*time.Second, "outbox drained after heal", func() bool {
		s := a.outboxSnapshots()[0]
		return s.Pending == 0 && s.Sent+s.Dropped == s.Enqueued
	})
	s := a.outboxSnapshots()[0]
	if s.Enqueued != totalSent {
		t.Fatalf("enqueued = %d, want %d", s.Enqueued, totalSent)
	}
	if s.Enqueued != s.Sent+s.Dropped+s.Pending {
		t.Fatalf("invariant broken: %+v", s)
	}
	// Everything the receiver saw must be a subset of what was sent.
	if got := b.Stats().Injected; got > int64(totalSent) || got != s.Sent {
		t.Fatalf("receiver injected %d, sender sent %d (dropped %d)", got, s.Sent, s.Dropped)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	s = a.outboxSnapshots()[0]
	if s.Pending != 0 || s.Enqueued != s.Sent+s.Dropped {
		t.Fatalf("post-close accounting: %+v", s)
	}
}

// Batched routing keeps per-destination order: a run of outputs for one
// peer arrives in emission order even when shipped as multiple frames.
func TestOutboxBatchOrdering(t *testing.T) {
	a, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const total = 1000
	batch := make([]Tuple, total)
	for i := range batch {
		batch[i] = Tuple{Stream: 1, Seq: int64(i)}
	}
	if got := a.sendBatch(b.Addr(), batch); got != total {
		t.Fatalf("accepted %d of %d", got, total)
	}
	waitUntil(t, 2*time.Second, "all tuples delivered", func() bool {
		return b.Stats().Injected == total
	})
}

func BenchmarkSendBatchEncode(bench *testing.B) {
	for _, size := range []int{1, 64, 512} {
		bench.Run(fmt.Sprintf("batch%d", size), func(bench *testing.B) {
			tw, err := NewTupleWriter(discard{})
			if err != nil {
				bench.Fatal(err)
			}
			batch := make([]Tuple, size)
			bench.ReportAllocs()
			bench.ResetTimer()
			for i := 0; i < bench.N; i++ {
				if err := tw.SendBatch(batch); err != nil {
					bench.Fatal(err)
				}
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

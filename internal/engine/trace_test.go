package engine

import (
	"bytes"
	"math"
	"testing"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/trace"
)

// Traced batch frames round-trip flags and trace timestamps exactly, and
// mixed batches (any flagged tuple) promote the whole frame to the traced
// variant without corrupting untraced members.
func TestTracedWireRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 63, 256} {
		var buf bytes.Buffer
		tw, err := NewTupleWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]Tuple, n)
		for i := range in {
			in[i] = Tuple{Stream: int32(i % 5), Ts: int64(i) * 100, Seq: int64(i), Value: float64(i) / 3}
			if i%3 == 0 {
				in[i].Flags = TupleTraced
				in[i].TraceTs = int64(i)*100 + 7
			}
		}
		if err := tw.SendBatch(in); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		// Any flagged member forces the traced frame (a legacy frame cannot
		// carry the context), so even n=1 pays the batch header here.
		if want := 1 + batchHeaderSize + n*tracedFrameSize; buf.Len() != want {
			t.Fatalf("n=%d: frame used %d bytes, want %d", n, buf.Len(), want)
		}
		if op := buf.Bytes()[1]; op != opTraced {
			t.Fatalf("n=%d: opcode 0x%02x, want opTraced", n, op)
		}
		tr := NewTupleReader(bytes.NewReader(buf.Bytes()[1:])) // skip preamble
		var out []Tuple
		for len(out) < n {
			batch, err := tr.ReadBatch()
			if err != nil {
				t.Fatalf("n=%d: ReadBatch after %d tuples: %v", n, len(out), err)
			}
			out = append(out, batch...)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: tuple %d = %+v, want %+v", n, i, out[i], in[i])
			}
		}
	}
}

// A fully untraced batch must NOT pay the 9-byte-per-tuple trace overhead.
func TestUntracedBatchStaysPlain(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTupleWriter(&buf)
	if err := tw.SendBatch(make([]Tuple, 16)); err != nil {
		t.Fatal(err)
	}
	tw.Flush() //nolint:errcheck
	if want := 1 + batchHeaderSize + 16*tupleFrameSize; buf.Len() != want {
		t.Fatalf("untraced batch used %d bytes, want %d", buf.Len(), want)
	}
	if op := buf.Bytes()[1]; op != opBatch {
		t.Fatalf("opcode 0x%02x, want opBatch", op)
	}
}

// Legacy, plain-batch and traced frames interleaved on one connection all
// decode in order, with trace context surviving exactly where it was sent.
func TestMixedTracedWire(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTupleWriter(&buf)
	legacy := Tuple{Stream: 1, Seq: 1, Value: 0.5}
	plain := []Tuple{{Stream: 2, Seq: 2}, {Stream: 2, Seq: 3}}
	traced := []Tuple{
		{Stream: 3, Seq: 4, Flags: TupleTraced, TraceTs: 99},
		{Stream: 3, Seq: 5},
	}
	if err := tw.Send(legacy); err != nil {
		t.Fatal(err)
	}
	if err := tw.SendBatch(plain); err != nil {
		t.Fatal(err)
	}
	if err := tw.SendBatch(traced); err != nil {
		t.Fatal(err)
	}
	if err := tw.Send(legacy); err != nil {
		t.Fatal(err)
	}
	tw.Flush() //nolint:errcheck

	tr := NewTupleReader(bytes.NewReader(buf.Bytes()[1:]))
	var out []Tuple
	for len(out) < 6 {
		batch, err := tr.ReadBatch()
		if err != nil {
			t.Fatalf("ReadBatch after %d tuples: %v", len(out), err)
		}
		out = append(out, batch...)
	}
	want := []Tuple{legacy, plain[0], plain[1], traced[0], traced[1], legacy}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("tuple %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

// tracePick samples every stream at exactly 1-in-every with a per-stream
// phase: the offsets spread across the stride instead of all landing on
// residue zero (the old Seq%every==0 rule never sampled streams whose seqs
// miss that residue, and oversampled seq 0 of every stream).
func TestTracePickPerStreamOffsets(t *testing.T) {
	const every = 64
	const streams = 32
	offsets := map[int64]bool{}
	zeroOffset := 0
	for stream := int32(0); stream < streams; stream++ {
		var picked []int64
		for seq := int64(0); seq < every*4; seq++ {
			if tracePick(every, Tuple{Stream: stream, Seq: seq}) {
				picked = append(picked, seq)
			}
		}
		if len(picked) != 4 {
			t.Fatalf("stream %d: %d picks in 4 strides, want 4", stream, len(picked))
		}
		off := picked[0]
		if off < 0 || off >= every {
			t.Fatalf("stream %d: offset %d outside stride", stream, off)
		}
		for i, s := range picked {
			if s != off+int64(i)*every {
				t.Fatalf("stream %d: picks %v not one per stride", stream, picked)
			}
		}
		offsets[off] = true
		if off == 0 {
			zeroOffset++
		}
	}
	if len(offsets) < 8 {
		t.Fatalf("only %d distinct offsets across %d streams; phases not rotating", len(offsets), streams)
	}
	if zeroOffset == streams {
		t.Fatal("every stream sampled at offset 0 — the bias tracePick exists to fix")
	}
	// Disabled sampling and reserved stream ids never pick.
	if tracePick(0, Tuple{}) || tracePick(-1, Tuple{Seq: 0}) {
		t.Fatal("every<=0 must disable sampling")
	}
	if tracePick(1, Tuple{Stream: stallStream}) {
		t.Fatal("negative (reserved) streams must not be sampled")
	}
}

// End-to-end trace on a real 2-node pipeline at full sampling: the per-stage
// histograms must telescope to the sink latency histogram, and at least one
// tuple must correlate source→ingress→worker→outbox→…→sink with monotone
// hop times.
func TestStageTelescoping(t *testing.T) {
	g := pipeline(t, 0, 0)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	stages := obs.NewStageSet(reg)
	sinkHist := reg.Histogram(obs.MetricSinkLatency, nil)
	ev := obs.NewEventLog(1 << 14)
	for _, nd := range cl.Nodes {
		nd.SetObserver(ev, stages, 1) // sample every tuple
	}
	cl.Collector.SetObserver(sinkHist, nil, stages, ev, 1)

	src := &SourceDriver{
		Stream:     g.Inputs()[0],
		Trace:      trace.New("const", 1, []float64{200}),
		Addrs:      []string{cl.Nodes[0].Addr()},
		TraceEvery: 1,
	}
	injected, err := src.Run(900*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Give the collector's final batch a beat to land in the histograms.
	waitUntil(t, 2*time.Second, "all tuples delivered", func() bool {
		return sinkHist.Count() >= injected
	})

	// Telescoping: with every tuple sampled and nothing shed, total stage
	// seconds equal total sink latency seconds (each tuple's stages sum to
	// its own latency by construction; tolerance covers float accumulation).
	stageSum := stages.SumSeconds()
	sinkSum := sinkHist.Sum()
	if sinkSum <= 0 {
		t.Fatalf("sink histogram empty (injected %d)", injected)
	}
	if diff := math.Abs(stageSum - sinkSum); diff > 0.01*sinkSum+0.002 {
		t.Fatalf("stage sum %.6fs vs sink sum %.6fs (diff %.6fs): stages do not telescope",
			stageSum, sinkSum, diff)
	}
	// Every stage on the 2-hop path must have observations.
	for _, st := range []int{obs.StageTransit, obs.StageQueue, obs.StageService, obs.StageOutbox, obs.StageDeliver} {
		if stages.Count(st) == 0 {
			t.Fatalf("stage %s recorded no crossings", obs.StageName(st))
		}
	}

	// Correlation: pick a sink span and walk its tuple's hops in emission
	// order — the trace must cross both nodes and end at the sink with
	// non-decreasing wall offsets.
	events := ev.Events()
	var key struct {
		ts, seq int64
		found   bool
	}
	for _, e := range events {
		if e.Type == obs.EventSpan && e.Fields["stage"] == "sink" {
			key.ts = asInt64(e.Fields["ts"])
			key.seq = asInt64(e.Fields["seq"])
			key.found = true
			break
		}
	}
	if !key.found {
		t.Fatal("no sink span emitted")
	}
	var stagesSeen []string
	lastT := -1.0
	for _, e := range events {
		if e.Type != obs.EventSpan || asInt64(e.Fields["ts"]) != key.ts || asInt64(e.Fields["seq"]) != key.seq {
			continue
		}
		if e.T < lastT {
			t.Fatalf("hop %s at t=%.6f precedes previous hop at t=%.6f", e.Fields["stage"], e.T, lastT)
		}
		lastT = e.T
		stagesSeen = append(stagesSeen, e.Fields["stage"].(string))
	}
	counts := map[string]int{}
	for _, s := range stagesSeen {
		counts[s]++
	}
	// Two TCP hops (node0→node1, node1→collector): ingress and process on
	// both nodes, at least one outbox crossing, exactly one sink arrival.
	if counts["ingress"] < 2 || counts["process"] < 2 || counts["outbox"] < 1 || counts["sink"] != 1 {
		t.Fatalf("trace not fully correlated: hops %v", stagesSeen)
	}
	if stagesSeen[0] != "ingress" || stagesSeen[len(stagesSeen)-1] != "sink" {
		t.Fatalf("trace must start at ingress and end at sink: %v", stagesSeen)
	}
}

// asInt64 reads an event field recorded as any integer type.
func asInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float64:
		return int64(x)
	}
	return math.MinInt64
}

// With tracing armed but a batch containing no sampled tuple, the ingress
// path must not allocate: the trace branch costs a hash and a compare, not
// a span.
func TestUnsampledIngressAllocsZero(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetObserver(obs.NewEventLog(0), obs.NewStageSet(obs.NewRegistry()), 1<<30)

	batch := make([]Tuple, 64)
	seq := int64(1)
	for i := range batch {
		for tracePick(1<<30, Tuple{Stream: 9, Seq: seq}) {
			seq++
		}
		batch[i] = Tuple{Stream: 9, Seq: seq}
		seq++
	}
	// Warm-up latches the once-per-stream no-route warning (the batch has
	// no consumer, so tuples exit before the queue — keeping the worker
	// out of the allocation measurement).
	n.enqueueInboundBatch(batch)
	avg := testing.AllocsPerRun(200, func() {
		n.enqueueInboundBatch(batch)
	})
	if avg != 0 {
		t.Fatalf("unsampled ingress allocates %.1f per batch, want 0", avg)
	}
}

// BenchmarkIngressTraceArmed measures the per-batch ingress cost with trace
// capture compiled in and armed at the default sampling rate but no tuple
// sampled — the overhead every unsampled batch pays.
func BenchmarkIngressTraceArmed(b *testing.B) {
	for _, every := range []int64{0, 8192} {
		name := "off"
		if every > 0 {
			name = "armed"
		}
		b.Run(name, func(b *testing.B) {
			n, err := NewNode("127.0.0.1:0", 1)
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			n.SetObserver(obs.NewEventLog(0), obs.NewStageSet(obs.NewRegistry()), every)
			batch := make([]Tuple, 64)
			seq := int64(1)
			for i := range batch {
				for every > 0 && tracePick(every, Tuple{Stream: 9, Seq: seq}) {
					seq++
				}
				batch[i] = Tuple{Stream: 9, Seq: seq}
				seq++
			}
			n.enqueueInboundBatch(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.enqueueInboundBatch(batch)
			}
		})
	}
}

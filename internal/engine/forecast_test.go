package engine

import (
	"math"
	"testing"
)

func TestForecastConstantSeries(t *testing.T) {
	f := newForecaster(0.5, 0.3, 0, 0)
	for i := 0; i < 50; i++ {
		f.Observe(100)
	}
	for _, h := range []int{0, 1, 10} {
		if got := f.Forecast(h); math.Abs(got-100) > 1e-6 {
			t.Fatalf("Forecast(%d) = %g on a constant 100 series", h, got)
		}
	}
}

func TestForecastLinearRamp(t *testing.T) {
	// A plain EWMA lags a ramp forever; the Holt trend must project ahead
	// of the last observation.
	f := newForecaster(0.5, 0.3, 0, 0)
	for i := 0; i < 60; i++ {
		f.Observe(float64(100 + 10*i))
	}
	last := 100.0 + 10*59
	h := 10
	want := last + 10*float64(h)
	got := f.Forecast(h)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("Forecast(%d) = %g, want ≈ %g (last obs %g)", h, got, want, last)
	}
	if got <= last {
		t.Fatalf("Forecast(%d) = %g does not lead the ramp (last obs %g)", h, got, last)
	}
}

func TestForecastClampedNonNegative(t *testing.T) {
	f := newForecaster(0.5, 0.3, 0, 0)
	for i := 0; i < 30; i++ {
		f.Observe(float64(300 - 10*i)) // steep decline through zero
	}
	if got := f.Forecast(20); got < 0 {
		t.Fatalf("Forecast projected a negative rate: %g", got)
	}
}

func TestForecastSeasonalCycle(t *testing.T) {
	// An additive sine of period 8: after a few cycles the seasonal
	// forecaster should predict the cycle markedly better than the
	// trend-only one, whose slope chases the oscillation.
	period := 8
	series := func(i int) float64 {
		return 100 + 50*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	sf := newForecaster(0.3, 0.1, 0.4, period)
	tf := newForecaster(0.3, 0.1, 0, 0)
	n := period * 12
	for i := 0; i < n; i++ {
		sf.Observe(series(i))
		tf.Observe(series(i))
	}
	var seasErr, trendErr float64
	for h := 1; h <= period; h++ {
		want := series(n - 1 + h)
		seasErr += math.Abs(sf.Forecast(h) - want)
		trendErr += math.Abs(tf.Forecast(h) - want)
	}
	if seasErr >= trendErr {
		t.Fatalf("seasonal forecaster no better than trend-only on a pure cycle: %g vs %g", seasErr, trendErr)
	}
}

func TestForecastDefaults(t *testing.T) {
	f := newForecaster(-1, 2, 0, 1)
	if f.alpha != 0.5 || f.beta != 0.3 {
		t.Fatalf("out-of-range smoothing not defaulted: alpha=%g beta=%g", f.alpha, f.beta)
	}
	if f.period != 0 {
		t.Fatalf("period 1 should disable seasonality, got %d", f.period)
	}
	if got := f.Forecast(5); got != 0 {
		t.Fatalf("Forecast before any observation = %g, want 0", got)
	}
}

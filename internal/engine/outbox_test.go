package engine

import (
	"bufio"
	"net"
	"testing"
	"time"

	"rodsp/internal/obs"
)

func TestBackoffSchedule(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	// Neutral jitter (0.5) leaves the exponential schedule untouched.
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{3, 800 * time.Millisecond},
		{4, time.Second}, // capped
		{10, time.Second},
	} {
		if got := backoffDelay(base, max, tc.attempt, 0.5); got != tc.want {
			t.Errorf("attempt %d: got %v, want %v", tc.attempt, got, tc.want)
		}
	}
	// Jitter scales within [0.75, 1.25).
	if got := backoffDelay(base, max, 0, 0); got != 75*time.Millisecond {
		t.Errorf("jitter 0: got %v, want 75ms", got)
	}
	if got := backoffDelay(base, max, 0, 0.999); got >= 125*time.Millisecond || got <= 100*time.Millisecond {
		t.Errorf("jitter ~1: got %v, want in (100ms, 125ms)", got)
	}
	// Zero/negative inputs fall back to sane defaults, never zero delay.
	if got := backoffDelay(0, 0, 3, 0); got <= 0 {
		t.Errorf("defaulted schedule produced non-positive delay %v", got)
	}
}

// deadAddr returns a localhost address nothing is listening on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Overflow accounting: with the link severed, a small outbox accepts up to
// its capacity and drops (with a counter) beyond it; after Close every
// buffered tuple is accounted as dropped, so enqueued == sent + dropped.
func TestOutboxOverflowAccounting(t *testing.T) {
	n, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		OutboxCap:   8,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := deadAddr(t)
	n.SetLinkFault(addr, LinkFault{Sever: true}) // dials must fail, deterministically

	const total = 100
	accepted := 0
	for i := 0; i < total; i++ {
		if n.send(addr, Tuple{Stream: 1, Seq: int64(i)}) {
			accepted++
		}
	}
	snaps := n.outboxSnapshots()
	if len(snaps) != 1 {
		t.Fatalf("want 1 outbox, got %d", len(snaps))
	}
	s := snaps[0]
	if s.Enqueued != total {
		t.Fatalf("enqueued = %d, want %d", s.Enqueued, total)
	}
	if int64(accepted) != s.Enqueued-s.Dropped {
		t.Fatalf("accepted %d but enqueued-dropped = %d", accepted, s.Enqueued-s.Dropped)
	}
	if s.Dropped < total-8 {
		t.Fatalf("dropped = %d, want >= %d (cap 8)", s.Dropped, total-8)
	}
	if s.Enqueued != s.Sent+s.Dropped+s.Pending {
		t.Fatalf("accounting broken: enqueued %d != sent %d + dropped %d + pending %d",
			s.Enqueued, s.Sent, s.Dropped, s.Pending)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close: nothing pending, nothing sent, everything accounted.
	s = n.outboxSnapshots()[0]
	if s.Sent != 0 || s.Pending != 0 || s.Enqueued != s.Dropped {
		t.Fatalf("post-close accounting: %+v", s)
	}
}

// A severed link falls into the backoff/reconnect cycle (emitting one
// relay_error per episode) and recovers once the fault clears: delivery
// resumes, the reconnect counter advances, and peer_up re-arms the latch.
func TestOutboxReconnectAfterPartition(t *testing.T) {
	a, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ev := obs.NewEventLog(0)
	a.SetObserver(ev, nil, 0)
	b, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr := b.Addr()

	a.send(addr, Tuple{Stream: 1})
	waitUntil(t, 2*time.Second, "first delivery", func() bool {
		return b.Stats().Injected > 0
	})
	before := b.Stats().Injected

	a.SetLinkFault(addr, LinkFault{Sever: true})
	// The severed link surfaces as a relay_error once the outbox notices
	// (the break, or the next failed dial).
	waitUntil(t, 2*time.Second, "relay_error after sever", func() bool {
		a.send(addr, Tuple{Stream: 1})
		return ev.Count(obs.EventRelayError) > 0
	})

	a.ClearLinkFault(addr)
	waitUntil(t, 4*time.Second, "delivery after heal", func() bool {
		a.send(addr, Tuple{Stream: 1})
		return b.Stats().Injected > before
	})
	if s := a.outboxSnapshots()[0]; s.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1 (%+v)", s.Reconnects, s)
	}
	if ev.Count(obs.EventPeerUp) == 0 {
		t.Fatal("no peer_up event after the link healed")
	}
	if ev.Count(obs.EventLinkFault) < 2 {
		t.Fatal("link_fault events missing for set/clear")
	}
}

// A Drop fault silently discards tuples while counting them, without
// breaking the connection.
func TestOutboxDropFault(t *testing.T) {
	a, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr := b.Addr()

	a.send(addr, Tuple{Stream: 1})
	waitUntil(t, 2*time.Second, "first delivery", func() bool {
		return b.Stats().Injected > 0
	})
	before := b.Stats().Injected

	a.SetLinkFault(addr, LinkFault{Drop: true})
	for i := 0; i < 50; i++ {
		a.send(addr, Tuple{Stream: 1})
	}
	waitUntil(t, 2*time.Second, "drops counted", func() bool {
		return a.outboxSnapshots()[0].Dropped >= 50
	})
	if got := b.Stats().Injected; got != before {
		t.Fatalf("receiver saw %d tuples during a drop fault (had %d)", got, before)
	}
	a.ClearLinkFault(addr)
	waitUntil(t, 2*time.Second, "delivery after clearing drop fault", func() bool {
		a.send(addr, Tuple{Stream: 1})
		return b.Stats().Injected > before
	})
}

// TestDurableShipOversizedGather pins the retention livelock: with workers,
// one gather can collect more tuples than OutboxCap (a run from the shared
// ring plus one per lane ring), so a durable writer that waits for
// retTuples+len(run) <= cap before retaining would spin forever on its very
// first gather. The oversized gather must instead ship as multiple bounded
// seqmark+batch pairs and fully settle once the peer acks them.
func TestDurableShipOversizedGather(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Receiver: decode frames off the connection and ack every seqmark, the
	// way a durable peer would after its group commit.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReaderSize(conn, 16*1024)
		if _, err := br.ReadByte(); err != nil { // connTuples preamble
			return
		}
		tr := NewTupleReader(br)
		for {
			if _, err := tr.ReadBatch(); err != nil {
				return
			}
			if seq, ok := tr.TakeMark(); ok {
				if err := writeAck(conn, seq); err != nil {
					return
				}
			}
		}
	}()

	n, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		OutboxCap: 64,
		Workers:   4,
		WALDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Build the durable outbox by hand so the rings can be filled past
	// OutboxCap before its writer goroutine ever runs.
	o := newOutbox(n, ln.Addr().String(), true)
	shared := make([]Tuple, n.cfg.OutboxCap)
	for i := range shared {
		shared[i] = Tuple{Stream: 1, Seq: int64(i)}
	}
	if got := o.enqueueBatch(shared); got != len(shared) {
		t.Fatalf("shared ring accepted %d of %d", got, len(shared))
	}
	total := len(shared)
	for li := range o.lanes {
		laneRun := make([]Tuple, 16)
		for i := range laneRun {
			laneRun[i] = Tuple{Stream: 2, Seq: int64(li*16 + i)}
		}
		total += o.enqueueLane(li, laneRun)
	}
	if total <= n.cfg.OutboxCap {
		t.Fatalf("test needs a gather larger than OutboxCap, buffered only %d", total)
	}
	n.peersMu.Lock()
	n.peers[o.addr] = o
	n.peersMu.Unlock()
	n.wg.Add(1)
	go o.run()

	waitUntil(t, 5*time.Second, "oversized gather shipped and acked", func() bool {
		return o.sent.Load() == int64(total) && o.retTuples.Load() == 0
	})
	if d := o.dropped.Load(); d != 0 {
		t.Fatalf("durable path dropped %d tuples", d)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

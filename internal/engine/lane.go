package engine

import (
	"sync"
	"sync/atomic"
)

// Worker lanes — the node's sharded ingress and multi-worker data plane.
//
// A node runs W = NodeConfig.Workers lanes. Each lane owns a bounded work
// queue, a condition variable, its own shed accounting and a worker
// goroutine, so reader goroutines and workers stop serializing on one node
// mutex. Tuples are assigned to lanes so that no operator's mutable state
// is ever touched by two lanes at once and per-(stream, key) order is
// preserved:
//
//   - targeted (keyed) tuples hash their addressed replica: every tuple of
//     one partition slot resolves to one replica and therefore one lane,
//     which is the Fibonacci hash of (stream, key) by way of the partition
//     table — keyed-shard slot affinity;
//   - broadcast tuples hash their stream's *consumer group*: streams that
//     share a consumer operator (a join's two inputs, a merge's replica
//     outputs) are unioned into one group so the shared operator stays
//     single-lane, and the group's lane is the Fibonacci hash of its
//     lowest stream id — per-stream FIFO order is preserved because one
//     stream maps to exactly one lane.
//
// Route mutations (deploy, addop/removeop during migration, repart) can
// re-pin a stream to a different lane; liveOp state is mutex-guarded (see
// process) so such transitions are safe, and the transient cross-lane
// reordering they allow is the same reordering migration relays already
// introduce.

// maxWorkers caps the lane count (and with it the per-peer SPSC ring
// count) at a sane bound.
const maxWorkers = 64

// resolveWorkers maps the configured worker count to the effective lane
// count. The zero value selects ONE lane: the deterministic legacy data
// plane (single queue, single worker), which every existing workload and
// test observes unchanged regardless of GOMAXPROCS. Multicore scaling is
// opt-in: deployments pass an explicit count (the CLIs map their -workers
// auto setting to runtime.GOMAXPROCS(0)), which is honored as given — also
// above GOMAXPROCS, so tests can exercise multi-lane interleavings on a
// single-core machine — and capped at maxWorkers.
func resolveWorkers(cfg int) int {
	if cfg <= 0 {
		return 1
	}
	if cfg > maxWorkers {
		return maxWorkers
	}
	return cfg
}

// fibLane is the Fibonacci-hash lane assignment: multiply by the 64-bit
// golden-ratio constant and fold the well-mixed high bits onto [0, w).
func fibLane(x uint64, w uint32) uint32 {
	if w <= 1 {
		return 0
	}
	return uint32((x*0x9E3779B97F4A7C15)>>33) % w
}

// lane is one worker lane: a bounded queue and the counters the ledger
// aggregates. Counters that other goroutines read while the lane runs hot
// are atomics; queue state is guarded by the lane's own mutex, which only
// this lane's admissions and worker contend for. Lanes are individually
// heap-allocated (the node holds []*lane) and padded so two lanes' hot
// fields never share a cache line.
type lane struct {
	id  uint32
	cap int // per-lane ingress bound: ceil(IngressCap / W)

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []Tuple
	qhead        int
	inRun        int
	shedding     bool
	shedByStream map[int32]int64

	shed      atomic.Int64
	processed atomic.Int64
	busy      atomic.Int64 // ns of virtual-CPU time charged by this lane
	_         [64]byte
}

func newLane(id uint32, capacity int) *lane {
	l := &lane{id: id, cap: capacity, shedByStream: map[int32]int64{}}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// qlenLocked returns the queued tuple count; callers hold l.mu.
func (l *lane) qlenLocked() int { return len(l.queue) - l.qhead }

// admitResult reports what one lane admission run did, so the caller can
// emit events after all locks are released.
type admitResult struct {
	admitted    bool
	shedOnset   bool
	onsetStream int32
	qlen        int
	shedTotal   int64
}

// admit appends a run of tuples to the lane queue under one lock
// acquisition, shedding per the node policy when the lane bound is hit.
// Per-tuple accounting (shed counters, the onset hysteresis latch) matches
// the single-queue semantics exactly, per lane.
func (l *lane) admit(ts []Tuple, policy ShedPolicy) admitResult {
	var res admitResult
	l.mu.Lock()
	for i := range ts {
		if l.qlenLocked() >= l.cap {
			// Lane full: shed. Drop-newest rejects the arrival; drop-oldest
			// evicts the head to admit it.
			victim := ts[i]
			if policy == DropOldest {
				victim = l.queue[l.qhead]
				l.queue[l.qhead] = Tuple{}
				l.qhead++
				l.queue = append(l.queue, ts[i])
				res.admitted = true
			}
			l.shed.Add(1)
			l.shedByStream[victim.Stream]++
			if !l.shedding {
				l.shedding = true
				res.shedOnset = true
				res.onsetStream = victim.Stream
			}
		} else {
			l.queue = append(l.queue, ts[i])
			res.admitted = true
		}
	}
	if res.admitted {
		l.cond.Signal()
	}
	res.qlen = l.qlenLocked()
	res.shedTotal = l.shed.Load()
	l.mu.Unlock()
	return res
}

// requeue appends operator outputs back onto the lane queue. Local
// re-entries are never shed (matching the single-queue data plane: only
// ingress admissions are bounded).
func (l *lane) requeue(ts []Tuple) {
	l.mu.Lock()
	l.queue = append(l.queue, ts...)
	l.cond.Signal()
	l.mu.Unlock()
}

// routeState is the node's copy-on-write routing snapshot: the data-plane
// hot paths (ingress admission, worker consumer resolution, egress
// routing) read it with one atomic load and then walk immutable maps, so
// they never contend with control-plane mutations. Mutators (deploy,
// addop, removeop, repart) serialize on n.mu, clone the state, and publish
// the successor with n.route.Store. liveOp pointers and partTable counts
// slices are shared across snapshots: operator state follows the operator,
// and per-slot counters (atomics) keep accumulating across repartitions.
type routeState struct {
	spec   *NodeSpec
	ops    map[int]*liveOp
	subs   map[int][]int  // stream → local consumer ops
	fwd    map[int][]Dest // stream → remote destinations (producer side)
	relays map[int][]Dest // stream → relay targets for *inbound* tuples
	parts  map[int]*partTable
	xfer   map[int]float64
	laneOf map[int32]uint32 // stream → pinned lane (consumer-group hash)
}

func emptyRouteState() *routeState {
	return &routeState{
		ops:    map[int]*liveOp{},
		subs:   map[int][]int{},
		fwd:    map[int][]Dest{},
		relays: map[int][]Dest{},
		parts:  map[int]*partTable{},
		xfer:   map[int]float64{},
		laneOf: map[int32]uint32{},
	}
}

// nodeID returns the deployed node id (-1 before deployment).
func (rs *routeState) nodeID() int {
	if rs.spec == nil {
		return -1
	}
	return rs.spec.NodeID
}

// clone deep-copies the routing maps (sharing liveOp pointers and
// partition-count slices, see routeState) so a mutator can edit freely
// before publishing.
func (rs *routeState) clone() *routeState {
	c := &routeState{
		spec:   rs.spec,
		ops:    make(map[int]*liveOp, len(rs.ops)),
		subs:   make(map[int][]int, len(rs.subs)),
		fwd:    make(map[int][]Dest, len(rs.fwd)),
		relays: make(map[int][]Dest, len(rs.relays)),
		parts:  make(map[int]*partTable, len(rs.parts)),
		xfer:   make(map[int]float64, len(rs.xfer)),
	}
	for k, v := range rs.ops {
		c.ops[k] = v
	}
	for k, v := range rs.subs {
		c.subs[k] = append([]int(nil), v...)
	}
	for k, v := range rs.fwd {
		c.fwd[k] = append([]Dest(nil), v...)
	}
	for k, v := range rs.relays {
		c.relays[k] = append([]Dest(nil), v...)
	}
	for k, v := range rs.parts {
		c.parts[k] = v.clone()
	}
	for k, v := range rs.xfer {
		c.xfer[k] = v
	}
	return c
}

// computeLanes (re)derives the stream → lane pinning from the subscription
// map: streams sharing a consumer operator are unioned into one group (so
// a join or merge is fed by a single lane), and each group hashes its
// lowest stream id to a lane. Called by mutators before publishing.
func (rs *routeState) computeLanes(w uint32) {
	rs.laneOf = make(map[int32]uint32, len(rs.subs))
	if w <= 1 {
		for sid := range rs.subs {
			rs.laneOf[int32(sid)] = 0
		}
		return
	}
	// Union-find over stream ids, keyed by shared consumer op.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra { // keep the lowest stream id as the root
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	byOp := map[int]int{} // op id → representative input stream
	for sid, ids := range rs.subs {
		find(sid)
		for _, id := range ids {
			if rep, ok := byOp[id]; ok {
				union(rep, sid)
			} else {
				byOp[id] = sid
			}
		}
	}
	for sid := range rs.subs {
		rs.laneOf[int32(sid)] = fibLane(uint64(uint32(find(sid))), w)
	}
}

// laneFor assigns one tuple to its lane: targeted (keyed) tuples hash the
// addressed replica, broadcast tuples use their stream's pinned consumer
// group, and unrouted streams fall back to a plain stream hash.
func (rs *routeState) laneFor(t *Tuple, w uint32) uint32 {
	if t.target != 0 {
		return fibLane(uint64(uint32(t.target)), w)
	}
	if l, ok := rs.laneOf[t.Stream]; ok {
		return l
	}
	return fibLane(uint64(uint32(t.Stream)), w)
}

// clone copies a partition table for a copy-on-write route mutation. The
// counts slice is shared — per-slot routed counters are atomics that keep
// accumulating across snapshot swaps (and survive repartitions).
func (pt *partTable) clone() *partTable {
	c := &partTable{
		parent: pt.parent,
		k:      pt.k,
		slots:  append([]int(nil), pt.slots...),
		shards: append([]Dest(nil), pt.shards...),
		ops:    append([]int(nil), pt.ops...),
		counts: pt.counts,
		relay:  make(map[int]string, len(pt.relay)),
	}
	for k, v := range pt.relay {
		c.relay[k] = v
	}
	return c
}

package engine

// Short-horizon per-stream rate forecasting for the elastic controller:
// Holt's linear-trend double exponential smoothing, with an optional
// additive seasonal component (Holt-Winters) for diurnal-wave workloads.
// A plain EWMA lags a ramp by construction — by the time the smoothed rate
// crosses the feasibility boundary the node is already overloaded. Tracking
// the trend lets the controller project the rate point a horizon ahead and
// start migration while the cluster still has headroom to pay for it.

// forecaster smooths one stream's observed rate and extrapolates it h steps
// ahead. Zero value is not usable; construct with newForecaster.
type forecaster struct {
	alpha float64 // level smoothing
	beta  float64 // trend smoothing
	gamma float64 // seasonal smoothing (ignored when period == 0)

	period   int // seasonal buckets per cycle; 0 disables seasonality
	seasonal []float64
	idx      int // bucket the next observation falls into

	level float64
	trend float64
	seen  int
}

// newForecaster builds a Holt(-Winters) forecaster. alpha/beta outside (0,1]
// fall back to 0.5/0.3; period <= 1 disables the seasonal term and gamma is
// then ignored (out-of-range gamma falls back to 0.2).
func newForecaster(alpha, beta, gamma float64, period int) *forecaster {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if beta <= 0 || beta > 1 {
		beta = 0.3
	}
	if gamma <= 0 || gamma > 1 {
		gamma = 0.2
	}
	if period <= 1 {
		period = 0
	}
	f := &forecaster{alpha: alpha, beta: beta, gamma: gamma, period: period}
	if period > 0 {
		f.seasonal = make([]float64, period)
	}
	return f
}

// Observe folds one rate sample into the level/trend (and seasonal) state.
// Samples are assumed equally spaced at the controller's tick interval.
func (f *forecaster) Observe(x float64) {
	defer func() {
		f.seen++
		if f.period > 0 {
			f.idx = (f.idx + 1) % f.period
		}
	}()
	switch f.seen {
	case 0:
		f.level = x
		return
	case 1:
		f.trend = x - f.level
	}
	s := 0.0
	if f.period > 0 {
		s = f.seasonal[f.idx]
	}
	prevLevel := f.level
	f.level = f.alpha*(x-s) + (1-f.alpha)*(f.level+f.trend)
	f.trend = f.beta*(f.level-prevLevel) + (1-f.beta)*f.trend
	if f.period > 0 {
		f.seasonal[f.idx] = f.gamma*(x-f.level) + (1-f.gamma)*s
	}
}

// Forecast extrapolates h steps past the last observation, clamped at 0
// (a projected negative rate is meaningless). h <= 0 returns the current
// level plus the seasonal term for the next bucket.
func (f *forecaster) Forecast(h int) float64 {
	if f.seen == 0 {
		return 0
	}
	if h < 0 {
		h = 0
	}
	v := f.level + float64(h)*f.trend
	if f.period > 0 {
		v += f.seasonal[(f.idx+h)%f.period]
	}
	if v < 0 {
		return 0
	}
	return v
}

package engine

import (
	"testing"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Live migration mid-run: a→b starts co-located on node 0; b moves to
// node 1 while the source keeps injecting. Processing must continue, node 1
// must pick up load, and the collector must keep receiving sink tuples.
func TestLiveMigration(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", 0.0005, 1, in)
	b.Delay("b", 0.004, 1, s)
	g := b.MustBuild()

	plan, _ := placement.NewPlan([]int{0, 0}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	srcDone := make(chan int64)
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{120, 120, 120}),
		Addrs:  []string{cl.Nodes[0].Addr()},
	}
	go func() {
		n, _ := src.Run(2500*time.Millisecond, stop)
		srcDone <- n
	}()

	// Move mid-stream: wait until the pipeline demonstrably flows (sink
	// progress) rather than trusting a fixed settle time.
	waitUntil(t, 3*time.Second, "pipeline flowing before the move", func() bool {
		c, _, _, _, _ := cl.Collector.LatencyStats()
		return c > 0
	})
	preStats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if preStats[1].Utilization > 0.02 {
		t.Fatalf("node 1 should be idle before the move, util %g", preStats[1].Utilization)
	}
	preCount, _, _, _, _ := cl.Collector.LatencyStats()

	// Move operator b (id 1) to node 1 with a 100ms state stall.
	if err := cl.MoveOperator(g, plan, 1, 1, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if plan.NodeOf[1] != 1 {
		t.Fatal("plan not updated by the move")
	}

	// Post-move progress is a condition, not a timer: node 1 must be
	// carrying b's load and the sink still receiving. Demand a real slab of
	// post-move traffic (~0.5s at 120/s) so the cumulative utilization
	// checked after the drain stays well above the floor.
	waitUntil(t, 5*time.Second, "node 1 processing after the move", func() bool {
		sts, err := cl.Stats()
		if err != nil {
			return false
		}
		c, _, _, _, _ := cl.Collector.LatencyStats()
		return c >= preCount+60 && sts[1].Utilization >= 0.1
	})
	close(stop)
	injected := <-srcDone
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}

	postStats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 now carries b's load (0.004·120 ≈ 0.48 while active).
	if postStats[1].Utilization < 0.1 {
		t.Fatalf("node 1 took no load after the move: %+v", postStats[1])
	}
	// The pipeline kept flowing: the collector saw tuples after the move.
	postCount, _, _, _, _ := cl.Collector.LatencyStats()
	if postCount <= preCount {
		t.Fatalf("no sink tuples after the move: %d -> %d", preCount, postCount)
	}
	// End-to-end continuity: most injected tuples reached the sink (the
	// hand-over may drop nothing; allow in-flight slack).
	if postCount < injected*8/10 {
		t.Fatalf("only %d of %d tuples reached the sink", postCount, injected)
	}
}

func TestMoveOperatorValidation(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	b.Delay("a", 0.001, 1, in)
	g := b.MustBuild()
	plan, _ := placement.NewPlan([]int{0}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.MoveOperator(g, plan, 0, 5, 0); err == nil {
		t.Fatal("bad destination must error")
	}
	if err := cl.MoveOperator(g, plan, 99, 1, 0); err == nil {
		t.Fatal("unknown operator must error")
	}
	// Moving to the current home is a no-op.
	if err := cl.MoveOperator(g, plan, 0, 0, 0); err != nil {
		t.Fatalf("no-op move errored: %v", err)
	}
}

// A migration that fails after the destination install must roll the
// install back: the operator stays at its source in the plan, the
// destination does not keep a live copy, and a migrate_abort event records
// the failure. Killing the source node makes the post-install stall fail
// deterministically.
func TestMoveOperatorRollbackOnSourceFailure(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	b.Delay("a", 0.001, 1, in)
	g := b.MustBuild()
	plan, _ := placement.NewPlan([]int{0}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ev := obs.NewEventLog(0)
	cl.SetEvents(ev)
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Controls[0].Fault(FaultSpec{Kill: true}); err != nil {
		t.Fatal(err)
	}
	// Kill acknowledges before dying; wait until the control plane is
	// genuinely down so the migration's source stall must fail.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := cl.Controls[0].Stats(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 0 never died after the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cl.MoveOperator(g, plan, 0, 1, 50*time.Millisecond); err == nil {
		t.Fatal("migrating off a dead source must error")
	}
	if plan.NodeOf[0] != 0 {
		t.Fatalf("aborted move mutated the plan: op 0 on node %d", plan.NodeOf[0])
	}
	if _, ok := ev.Find(obs.EventMigrateAbort); !ok {
		t.Fatal("no migrate_abort event emitted")
	}
	// The destination rolled back: removing the operator there must report
	// it was never (still) deployed.
	if err := cl.Controls[1].RemoveOp(0, nil); err == nil {
		t.Fatal("destination kept a live copy after the abort")
	}
}

func TestControlMigrationCommandErrors(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ctl, err := DialControl(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.call(&controlRequest{Cmd: "addop"}); err == nil {
		t.Fatal("addop without op must error")
	}
	if _, err := ctl.call(&controlRequest{Cmd: "removeop"}); err == nil {
		t.Fatal("removeop without id must error")
	}
	if err := ctl.RemoveOp(42, nil); err == nil {
		t.Fatal("removing an undeployed op must error")
	}
	if _, err := ctl.call(&controlRequest{Cmd: "stall"}); err == nil {
		t.Fatal("stall without duration must error")
	}
	neg := -1.0
	if _, err := ctl.call(&controlRequest{Cmd: "stall", StallSec: &neg}); err == nil {
		t.Fatal("negative stall must error")
	}
}

// A dead downstream peer must not poison the sender forever: after the
// peer restarts (same address), the outbox reconnects and delivery resumes.
func TestPeerReconnectAfterFailure(t *testing.T) {
	a, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bNode, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := bNode.Addr()
	if !a.send(addr, Tuple{Stream: 1}) {
		t.Fatal("first send rejected")
	}
	deadline := time.Now().Add(2 * time.Second)
	for bNode.Stats().Injected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first tuple never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	bNode.Close()
	// Sends never block while the peer is down: the outbox buffers (and
	// eventually drops), the caller always returns immediately.
	a.send(addr, Tuple{Stream: 1})
	// Restart a node on the same address; the outbox must reconnect and
	// deliver subsequent tuples.
	b2, err := NewNode(addr, 1)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer b2.Close()
	deadline = time.Now().Add(4 * time.Second)
	for {
		a.send(addr, Tuple{Stream: 1})
		if b2.Stats().Injected > 0 {
			return // reconnected and delivering
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never recovered after peer restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStallChargesVirtualCPU(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ctl, err := DialControl(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Stall(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Fixed window by design, not a drain stand-in: utilization is
	// cumulative busy/elapsed, so the assertion needs a known elapsed
	// denominator (~200ms busy over ~350ms).
	time.Sleep(350 * time.Millisecond)
	st, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// ~200ms of busy time over ~350ms elapsed.
	if st.Utilization < 0.3 || st.Utilization > 0.9 {
		t.Fatalf("stall utilization = %g, want ~0.57", st.Utilization)
	}
}

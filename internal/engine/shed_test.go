package engine

import (
	"testing"
	"time"

	"rodsp/internal/obs"
)

// startShedNode builds a started node with a tiny ingress bound, one local
// consumer on stream 1, and a worker pinned by a virtual-CPU stall so the
// queue fills deterministically.
func startShedNode(t *testing.T, ingressCap int, policy ShedPolicy, stallSec float64) (*Node, *obs.EventLog) {
	t.Helper()
	n, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		IngressCap: ingressCap,
		ShedPolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ev := obs.NewEventLog(0)
	n.SetObserver(ev, nil, 0)
	err = n.deploy(&NodeSpec{
		NodeID:   0,
		Capacity: 1,
		Ops:      []OpSpec{{ID: 0, Kind: "delay", Cost: 0.001, Selectivity: 0, Inputs: []int{1}, Out: 2}},
		Routes:   map[int][]Dest{1: {{Local: true, LocalOp: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := n.handleControl(&controlRequest{Cmd: "start"}); !resp.OK {
		t.Fatalf("start: %s", resp.Err)
	}
	n.stall(stallSec)
	// The stall rides lane 0's queue; wait until the worker has dequeued it
	// (and is busy sleeping) instead of pausing a fixed 20ms.
	waitUntil(t, time.Second, "stall dequeued", func() bool {
		return len(queueSeqs(n)) == 0
	})
	return n, ev
}

// queueSeqs snapshots the Seq values currently queued, lane by lane (the
// shed tests run single-lane, so lane order is irrelevant).
func queueSeqs(n *Node) []int64 {
	var out []int64
	for _, l := range n.lanes {
		l.mu.Lock()
		for _, t := range l.queue[l.qhead:] {
			out = append(out, t.Seq)
		}
		l.mu.Unlock()
	}
	return out
}

// Drop-newest: arrivals beyond the bound are rejected, the oldest admitted
// tuples survive, and the episode is bracketed by shed_onset/shed_clear.
func TestShedDropNewest(t *testing.T) {
	n, ev := startShedNode(t, 4, DropNewest, 0.3)
	for i := 0; i < 10; i++ {
		n.enqueueInbound(Tuple{Stream: 1, Seq: int64(i)})
	}
	if got := queueSeqs(n); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("drop-newest queue = %v, want [0 1 2 3]", got)
	}
	st := n.Stats()
	if st.Shed != 6 {
		t.Fatalf("shed = %d, want 6", st.Shed)
	}
	if st.ShedByStream[1] != 6 {
		t.Fatalf("shedByStream = %v, want {1: 6}", st.ShedByStream)
	}
	if st.Injected != 10 {
		t.Fatalf("injected = %d, want 10", st.Injected)
	}
	if ev.Count(obs.EventShedOnset) != 1 {
		t.Fatalf("shed_onset events = %d, want 1", ev.Count(obs.EventShedOnset))
	}
	// Once the stall ends the worker drains the backlog and declares the
	// episode over at half the cap.
	waitUntil(t, 2*time.Second, "shed_clear", func() bool {
		return ev.Count(obs.EventShedClear) == 1
	})
}

// Drop-oldest: the head is evicted to admit each arrival, so the newest
// tuples survive and the evicted ones are counted against their stream.
func TestShedDropOldest(t *testing.T) {
	n, ev := startShedNode(t, 4, DropOldest, 0.3)
	for i := 0; i < 10; i++ {
		n.enqueueInbound(Tuple{Stream: 1, Seq: int64(i)})
	}
	if got := queueSeqs(n); len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Fatalf("drop-oldest queue = %v, want [6 7 8 9]", got)
	}
	st := n.Stats()
	if st.Shed != 6 {
		t.Fatalf("shed = %d, want 6", st.Shed)
	}
	if st.ShedByStream[1] != 6 {
		t.Fatalf("shedByStream = %v, want {1: 6}", st.ShedByStream)
	}
	if ev.Count(obs.EventShedOnset) != 1 {
		t.Fatalf("shed_onset events = %d, want 1", ev.Count(obs.EventShedOnset))
	}
	waitUntil(t, 2*time.Second, "shed_clear", func() bool {
		return ev.Count(obs.EventShedClear) == 1
	})
}

func TestParseShedPolicy(t *testing.T) {
	if p, err := ParseShedPolicy(""); err != nil || p != DropNewest {
		t.Fatalf("empty: %v %v", p, err)
	}
	if p, err := ParseShedPolicy("drop-oldest"); err != nil || p != DropOldest {
		t.Fatalf("drop-oldest: %v %v", p, err)
	}
	if _, err := ParseShedPolicy("lifo"); err == nil {
		t.Fatal("unknown policy must error")
	}
	if DropNewest.String() != "drop-newest" || DropOldest.String() != "drop-oldest" {
		t.Fatal("String() mismatch")
	}
}

package engine

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

func TestTupleWireRoundTrip(t *testing.T) {
	f := func(stream int32, ts, seq int64, val float64) bool {
		var buf bytes.Buffer
		in := Tuple{Stream: stream, Ts: ts, Seq: seq, Value: val}
		if err := WriteTuple(&buf, in); err != nil {
			return false
		}
		out, err := ReadTuple(&buf)
		if err != nil {
			return false
		}
		if math.IsNaN(val) {
			return out.Stream == in.Stream && out.Ts == in.Ts && out.Seq == in.Seq && math.IsNaN(out.Value)
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleWriterBatches(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTupleWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tw.Send(Tuple{Stream: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1+10*tupleFrameSize {
		t.Fatalf("buffer = %d bytes", buf.Len())
	}
	if buf.Bytes()[0] != connTuples {
		t.Fatal("preamble missing")
	}
}

// pipeline builds in → a → b with the given costs; both delay-style.
func pipeline(t *testing.T, costA, costB float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", costA, 1, in)
	b.Delay("b", costB, 1, s)
	return b.MustBuild()
}

func TestBuildSpecs(t *testing.T) {
	g := pipeline(t, 0.001, 0.002)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 2}
	addrs := []string{"127.0.0.1:1111", "127.0.0.1:2222"}
	specs, err := BuildSpecs(g, plan, caps, addrs, "127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	if len(specs[0].Ops) != 1 || specs[0].Ops[0].Name != "a" {
		t.Fatalf("node 0 ops: %+v", specs[0].Ops)
	}
	if len(specs[1].Ops) != 1 || specs[1].Ops[0].Name != "b" {
		t.Fatalf("node 1 ops: %+v", specs[1].Ops)
	}
	// Node 0: input stream routes locally to a; a.out routes remotely to node 1.
	aOut := specs[0].Ops[0].Out
	foundRemote := false
	for _, d := range specs[0].Routes[aOut] {
		if !d.Local && d.Addr == addrs[1] {
			foundRemote = true
		}
	}
	if !foundRemote {
		t.Fatalf("a.out must route to node 1: %+v", specs[0].Routes)
	}
	// Node 1: a.out routes locally to b; b.out routes to the collector.
	bIn := specs[1].Ops[0].Inputs[0]
	if len(specs[1].Routes[bIn]) == 0 || !specs[1].Routes[bIn][0].Local {
		t.Fatalf("node 1 must consume a.out locally: %+v", specs[1].Routes)
	}
	bOut := specs[1].Ops[0].Out
	if len(specs[1].Routes[bOut]) != 1 || specs[1].Routes[bOut][0].Addr != "127.0.0.1:9999" {
		t.Fatalf("sink must route to collector: %+v", specs[1].Routes[bOut])
	}
	// Errors.
	if _, err := BuildSpecs(g, plan, caps, addrs[:1], ""); err == nil {
		t.Fatal("addr-count mismatch must error")
	}
	badPlan, _ := placement.NewPlan([]int{0}, 2)
	if _, err := BuildSpecs(g, badPlan, caps, addrs, ""); err == nil {
		t.Fatal("plan-size mismatch must error")
	}
}

func TestInputNodes(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	b.Map("m1", 0.001, in)
	b.Map("m2", 0.001, in)
	g := b.MustBuild()
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	nodes := InputNodes(g, plan)
	got := nodes[g.Inputs()[0]]
	if len(got) != 2 {
		t.Fatalf("input must be delivered to both nodes: %v", got)
	}
}

func TestNodeRejectsBadCapacity(t *testing.T) {
	if _, err := NewNode("127.0.0.1:0", 0); err == nil {
		t.Fatal("zero capacity must error")
	}
}

func TestControlUnknownCommand(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ctl, err := DialControl(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.call(&controlRequest{Cmd: "bogus"}); err == nil {
		t.Fatal("unknown command must error")
	}
	if _, err := ctl.call(&controlRequest{Cmd: "deploy"}); err == nil {
		t.Fatal("deploy without spec must error")
	}
}

func TestDeployWhileStartedRejected(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ctl, err := DialControl(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Deploy(&NodeSpec{NodeID: 0}); err == nil {
		t.Fatal("deploy while started must error")
	}
	if err := ctl.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Deploy(&NodeSpec{NodeID: 0}); err != nil {
		t.Fatalf("deploy after stop: %v", err)
	}
}

// End-to-end: a two-node pipeline driven at a known rate must show the
// predicted utilizations and deliver sink tuples to the collector with
// small latency.
func TestClusterEndToEnd(t *testing.T) {
	g := pipeline(t, 0.002, 0.001)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	// Constant 100 tuples/s for 1.2s: node0 load 0.2, node1 load 0.1.
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{100, 100}),
		Addrs:  []string{cl.Nodes[0].Addr()},
	}
	injected, err := src.Run(1200*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if injected < 100 || injected > 140 {
		t.Fatalf("injected = %d, want ~120", injected)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sts[0].Utilization-0.2) > 0.1 {
		t.Fatalf("node 0 utilization = %g, want ~0.2", sts[0].Utilization)
	}
	if math.Abs(sts[1].Utilization-0.1) > 0.08 {
		t.Fatalf("node 1 utilization = %g, want ~0.1", sts[1].Utilization)
	}
	count, mean, _, _, _ := cl.Collector.LatencyStats()
	if count < int64(float64(injected)*0.8) {
		t.Fatalf("collector saw %d of %d tuples", count, injected)
	}
	if mean > 0.1 {
		t.Fatalf("mean latency %gs too high for an unloaded pipeline", mean)
	}
	// Measured operator costs should approximate the configured ones.
	if c, ok := sts[0].OpCost[0]; !ok || math.Abs(c-0.002) > 1e-9 {
		t.Fatalf("node 0 measured op cost = %v, want 0.002", sts[0].OpCost)
	}
	if err := cl.Stop(); err != nil {
		t.Fatal(err)
	}
}

// Overload: drive the node beyond capacity; utilization pins at 1, queue
// grows and latency climbs — the engine-level signature of infeasibility.
func TestClusterOverload(t *testing.T) {
	g := pipeline(t, 0.01, 0.0001)
	plan, _ := placement.NewPlan([]int{0, 0}, 1)
	caps := []float64{1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{300, 300}),
		Addrs:  []string{cl.Nodes[0].Addr()},
	}
	if _, err := src.Run(1*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Utilization < 0.9 {
		t.Fatalf("overloaded utilization = %g, want ~1", sts[0].Utilization)
	}
	if sts[0].QueueLen < 50 {
		t.Fatalf("overloaded queue = %d, want growing backlog", sts[0].QueueLen)
	}
	_, _, _, p99, _ := cl.Collector.LatencyStats()
	if p99 < 0.05 {
		t.Fatalf("overloaded p99 latency = %g, want large", p99)
	}
}

// ConnectCluster attaches to already-running nodes (the rodnode workflow)
// and drives them exactly like an owned cluster.
func TestConnectClusterToExternalNodes(t *testing.T) {
	var nodes []*Node
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := NewNode("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}
	cl, err := ConnectCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Addrs(); len(got) != 2 || got[0] != addrs[0] {
		t.Fatalf("attached addrs = %v", got)
	}
	g := pipeline(t, 0.001, 0.001)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 1}
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{100}),
		Addrs:  []string{addrs[0]},
	}
	if _, err := src.Run(500*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Injected == 0 {
		t.Fatal("attached cluster processed nothing")
	}
	// Closing the attachment must leave the external nodes alive.
	cl.Close()
	if nodes[0].QueueLen() < 0 {
		t.Fatal("unreachable")
	}
	ctl, err := DialControl(addrs[0])
	if err != nil {
		t.Fatalf("external node died with the attachment: %v", err)
	}
	ctl.Close()
}

// A join on the engine: pair throughput must track the paper's w·r_u·r_v
// load model, as it does in the simulator.
func TestEngineJoinThroughput(t *testing.T) {
	b := query.NewBuilder()
	l := b.Input("L")
	r := b.Input("R")
	b.Join("j", 0.0004, 0.1, 1.0, l, r)
	g := b.MustBuild()
	plan, _ := placement.NewPlan([]int{0}, 1)
	caps := []float64{1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{}, 2)
	for _, in := range g.Inputs() {
		src := &SourceDriver{
			Stream: in,
			Trace:  trace.New("const", 1, []float64{30, 30}),
			Addrs:  []string{cl.Nodes[0].Addr()},
		}
		go func() {
			src.Run(1500*time.Millisecond, stop) //nolint:errcheck
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Expected pairs/s = w·rL·rR = 900; load = 900·0.0004 = 0.36.
	if sts[0].Utilization < 0.15 || sts[0].Utilization > 0.6 {
		t.Fatalf("join utilization = %g, want ~0.36", sts[0].Utilization)
	}
	// Output rate ≈ sel·w·rL·rR = 90/s ≈ 1.5× the 60/s input.
	count, _, _, _, _ := cl.Collector.LatencyStats()
	if count < 60 {
		t.Fatalf("join emitted only %d tuples", count)
	}
}

// The Section 7.1 procedure: distribute operators randomly, run for a
// while, and derive operator costs and selectivities from the gathered
// statistics. The measured load model must match the configured one.
func TestStatisticsDrivenLoadModel(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("I")
	f := b.Filter("f", 0.0020, 0.5, in)
	m := b.Map("m", 0.0010, f)
	b.Filter("g", 0.0015, 0.25, m)
	g := b.MustBuild()

	plan, _ := placement.NewPlan([]int{0, 1, 0}, 2)
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{200, 200}),
		Addrs:  []string{cl.Nodes[plan.NodeOf[0]].Addr()},
	}
	if _, err := src.Run(1200*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Merge per-node measurements into one view.
	cost := map[int]float64{}
	sel := map[int]float64{}
	for _, s := range sts {
		for id, c := range s.OpCost {
			cost[id] = c
		}
		for id, v := range s.OpSel {
			sel[id] = v
		}
	}
	for _, op := range g.Ops() {
		c, ok := cost[int(op.ID)]
		if !ok {
			t.Fatalf("no measured cost for %s", op.Name)
		}
		if math.Abs(c-op.Cost) > op.Cost*0.02 {
			t.Fatalf("%s measured cost %g, configured %g", op.Name, c, op.Cost)
		}
		s, ok := sel[int(op.ID)]
		if !ok {
			t.Fatalf("no measured selectivity for %s", op.Name)
		}
		if math.Abs(s-op.Selectivity) > 0.05 {
			t.Fatalf("%s measured selectivity %g, configured %g", op.Name, s, op.Selectivity)
		}
	}
	// Rebuild the graph from measurements and compare load models: the
	// measured L^o must match the configured one.
	nb := query.NewBuilder()
	nin := nb.Input("I")
	nf := nb.Filter("f", cost[0], sel[0], nin)
	nm := nb.Map("m", cost[1], nf)
	nb.Filter("g", cost[2], sel[2], nm)
	ng := nb.MustBuild()
	lmWant, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	lmGot, err := query.BuildLoadModel(ng)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < lmWant.Coef.Rows; j++ {
		want := lmWant.Coef.At(j, 0)
		got := lmGot.Coef.At(j, 0)
		if math.Abs(got-want) > want*0.1 {
			t.Fatalf("measured L^o[%d] = %g, configured %g", j, got, want)
		}
	}
}

// A node with double capacity finishes the same work at half the
// utilization — the virtual-CPU model respects heterogeneity.
func TestHeterogeneousCapacity(t *testing.T) {
	g := pipeline(t, 0.002, 0.002)
	plan, _ := placement.NewPlan([]int{0, 1}, 2)
	caps := []float64{1, 2}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{150, 150}),
		Addrs:  []string{cl.Nodes[0].Addr()},
	}
	if _, err := src.Run(1100*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Same per-tuple cost: node 0 (capacity 1) ≈ 0.3 busy, node 1
	// (capacity 2) ≈ 0.15.
	if math.Abs(sts[0].Utilization-0.3) > 0.12 {
		t.Fatalf("node 0 utilization = %g, want ~0.3", sts[0].Utilization)
	}
	ratio := sts[0].Utilization / sts[1].Utilization
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("capacity-2 node should run at ~half utilization: %g vs %g",
			sts[0].Utilization, sts[1].Utilization)
	}
}

func TestSourceDriverStopChannel(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	stop := make(chan struct{})
	done := make(chan int64)
	src := &SourceDriver{
		Stream: 0,
		Trace:  trace.New("const", 1, []float64{1000}),
		Addrs:  []string{n.Addr()},
	}
	go func() {
		inj, _ := src.Run(10*time.Second, stop)
		done <- inj
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	select {
	case inj := <-done:
		if inj < 10 {
			t.Fatalf("injected = %d before stop", inj)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("source did not stop")
	}
}

func TestSourceDriverSpeedup(t *testing.T) {
	n, err := NewNode("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// 10 trace seconds at rate 50 played 10x fast in ~0.5s wall: rate 500/s.
	src := &SourceDriver{
		Stream:  0,
		Trace:   trace.New("const", 1, []float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50}),
		Addrs:   []string{n.Addr()},
		Speedup: 10,
	}
	injected, err := src.Run(500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if injected < 180 || injected > 320 {
		t.Fatalf("injected = %d, want ~250 (10x speedup)", injected)
	}
}

func TestCollectorReset(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := NewTupleWriterDial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		conn.Send(Tuple{Ts: time.Now().UnixNano()})
	}
	conn.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if count, _, _, _, _ := col.LatencyStats(); count == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("collector never saw the tuples")
		}
		time.Sleep(10 * time.Millisecond)
	}
	col.Reset()
	if count, _, _, _, _ := col.LatencyStats(); count != 0 {
		t.Fatalf("count after reset = %d", count)
	}
}

package engine

import (
	"testing"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Chaos: a deployed query runs under a mid-run node kill and a link
// partition. The surviving nodes must never stall (the sink keeps receiving
// and the worker-path send never blocks), every lost tuple must be
// accounted by the shed/drop counters, and the cluster must close cleanly.
// Run with -race: the fault paths (outbox reconnect, control kill, partial
// stats) are exactly where data races would hide.
func TestChaosKillAndPartition(t *testing.T) {
	// I → a (node 0); a's output fans out to b (node 1) and c (node 2);
	// both outputs sink to the collector.
	qb := query.NewBuilder()
	in := qb.Input("I")
	s := qb.Delay("a", 0.0002, 1, in)
	qb.Delay("b", 0.0002, 1, s)
	qb.Delay("c", 0.0002, 1, s)
	g := qb.MustBuild()
	plan, err := placement.NewPlan([]int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1, 1}
	cl, err := StartClusterConfig(caps, NodeConfig{
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		OutboxCap:   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			cl.Close()
		}
	}()
	ev := obs.NewEventLog(0)
	cl.SetEvents(ev)
	for _, nd := range cl.Nodes {
		nd.SetObserver(ev, nil, 0)
	}
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	addrs := cl.Addrs()
	srcDone := make(chan int64, 1)
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{400, 400, 400}),
		Addrs:  []string{addrs[0]},
	}
	go func() {
		n, err := src.Run(2200*time.Millisecond, nil)
		if err != nil {
			t.Errorf("source: %v", err)
		}
		srcDone <- n
	}()

	// Kill node 1 mid-stream: wait until the pipeline demonstrably flows
	// (sink progress), not for a fixed settle time.
	waitUntil(t, 3*time.Second, "pipeline flowing before the fault", func() bool {
		c, _, _, _, _ := cl.Collector.LatencyStats()
		return c > 0
	})
	countBeforeKill, _, _, _, _ := cl.Collector.LatencyStats()
	if err := cl.Controls[1].Fault(FaultSpec{Kill: true}); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Survivor progress after the kill is likewise a condition, not a timer.
	waitUntil(t, 3*time.Second, "sink progress after the kill", func() bool {
		c, _, _, _, _ := cl.Collector.LatencyStats()
		return c > countBeforeKill
	})
	countAfterKill, _, _, _, _ := cl.Collector.LatencyStats()

	// Partition the surviving path (node 0 → node 2), then heal it. This
	// sleep IS the fault — the partition must stay up long enough for
	// senders to run into it — not a drain stand-in.
	cl.Nodes[0].SetLinkFault(addrs[2], LinkFault{Sever: true})
	time.Sleep(400 * time.Millisecond)
	cl.Nodes[0].ClearLinkFault(addrs[2])

	injected := <-srcDone
	if injected == 0 {
		t.Fatal("source injected nothing")
	}
	// Drain: the killed node never flushes, so settle (stable counters on
	// the survivors) is the strongest barrier available.
	if err := cl.AwaitSettled(5*time.Second, 100*time.Millisecond); err != nil {
		t.Fatalf("settle: %v", err)
	}

	// The healed path delivered again after the partition.
	endCount, _, _, _, _ := cl.Collector.LatencyStats()
	if endCount <= countAfterKill {
		t.Fatalf("sink stalled across the partition: %d -> %d", countAfterKill, endCount)
	}

	// Partial stats: the killed node yields nil (with a control_error
	// event), the survivors still report.
	sts, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if sts[1] != nil {
		t.Fatal("killed node should report nil stats")
	}
	if sts[0] == nil || sts[2] == nil {
		t.Fatalf("survivors must report stats: %v %v", sts[0], sts[2])
	}
	if ev.Count(obs.EventControlError) == 0 {
		t.Fatal("no control_error event for the killed node's stats poll")
	}

	// The worker path never blocked on a dead or partitioned peer.
	if sts[0].SendMaxMs >= 50 {
		t.Fatalf("worker-path send blocked %.2fms (>= 50ms)", sts[0].SendMaxMs)
	}

	// The failure episodes surfaced: relay errors while links were down,
	// peer_up when the partition healed.
	if ev.Count(obs.EventRelayError) == 0 {
		t.Fatal("no relay_error events despite a kill and a partition")
	}
	waitUntil(t, 2*time.Second, "peer_up after heal", func() bool {
		return ev.Count(obs.EventPeerUp) > 0
	})

	// Clean close, bounded: a blocked outbox or leaked goroutine hangs here.
	done := make(chan struct{})
	go func() {
		cl.Close()
		close(done)
	}()
	select {
	case <-done:
		closed = true
	case <-time.After(5 * time.Second):
		t.Fatal("cluster close hung")
	}

	// At quiescence every tuple node 0 handed to an outbox is accounted:
	// enqueued == sent + dropped (+ pending, zero after close).
	for _, o := range cl.Nodes[0].outboxSnapshots() {
		if o.Enqueued != o.Sent+o.Dropped+o.Pending {
			t.Fatalf("outbox %s accounting broken: %+v", o.Addr, o)
		}
		if o.Pending != 0 {
			t.Fatalf("outbox %s still pending after close: %+v", o.Addr, o)
		}
	}
}

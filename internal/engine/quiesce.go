package engine

import (
	"fmt"
	"strings"
	"time"
)

// Quiescence barrier — deterministic "the pipeline has drained" detection.
//
// Tests and the conformance harness (internal/check) need a moment at which
// the cluster's counters are final: every ingress queue empty, every outbox
// flushed or dropped, and no tuple still moving between nodes. Fixed sleeps
// guess at that moment and flake on slow machines; the barrier instead polls
// the existing control-plane stats until the cluster is *drained* (queues and
// outboxes empty on every reachable node) and *stable* (every counter,
// including the collector's delivered count, unchanged for a settle window).
// No new hot-path locks: the barrier reads the same snapshots the monitor
// already polls.

// DefaultQuiescePoll is the barrier's stats-polling period.
const DefaultQuiescePoll = 10 * time.Millisecond

// AwaitQuiescence blocks until the cluster drains and its counters settle,
// or the timeout elapses. A node whose control channel is down (e.g. killed
// by fault injection) is skipped — its counters are gone regardless — but at
// least one node must remain reachable. settle is how long the drained
// fingerprint must hold (default 50ms); timeout defaults to 10s.
//
// Callers should heal link faults first: a severed outbox retains pending
// tuples across reconnect backoff and can legitimately take seconds to drain.
func (cl *Cluster) AwaitQuiescence(timeout, settle time.Duration) error {
	return cl.await(timeout, settle, true)
}

// AwaitSettled waits only for counter stability, not for empty queues and
// outboxes: after a node kill, the survivors' outboxes toward the dead peer
// hold pending tuples that can never flush, yet the rest of the cluster
// still reaches a stable (auditable) state.
func (cl *Cluster) AwaitSettled(timeout, settle time.Duration) error {
	return cl.await(timeout, settle, false)
}

func (cl *Cluster) await(timeout, settle time.Duration, requireDrained bool) error {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if settle <= 0 {
		settle = 50 * time.Millisecond
	}
	start := time.Now()
	var last string
	var since time.Time
	var why string
	for {
		stats, err := cl.Stats()
		fp, drained, reach := quiesceFingerprint(stats, cl.Collector)
		now := time.Now()
		if fp != last {
			last, since = fp, now
		}
		switch {
		case reach == 0:
			why = "no node reachable"
			if err != nil {
				why += ": " + err.Error()
			}
		case requireDrained && !drained:
			why = "not drained: " + fp
		case now.Sub(since) >= settle:
			return nil
		default:
			why = "counters still moving: " + fp
		}
		if now.Sub(start) >= timeout {
			return fmt.Errorf("engine: cluster not quiescent after %v (%s)", timeout, why)
		}
		time.Sleep(DefaultQuiescePoll)
	}
}

// quiesceFingerprint condenses one stats poll into a comparable string plus
// a drained flag. The fingerprint covers every conservation-relevant counter
// so "stable" means no tuple moved anywhere between two polls.
func quiesceFingerprint(stats []*NodeStats, col *Collector) (fp string, drained bool, reachable int) {
	var b strings.Builder
	drained = true
	for i, s := range stats {
		if s == nil {
			fmt.Fprintf(&b, "n%d:down;", i)
			continue
		}
		reachable++
		if s.QueueLen != 0 || s.WorkerInFlight != 0 || s.OutboxPending != 0 {
			drained = false
		}
		fmt.Fprintf(&b, "n%d:q%d,w%d,i%d,e%d,s%d,nr%d,oe%d,os%d,od%d,op%d;",
			i, s.QueueLen, s.WorkerInFlight, s.Injected, s.Emitted, s.Shed, s.DroppedNoRoute,
			s.OutboxEnqueued, s.OutboxSent, s.OutboxDropped, s.OutboxPending)
	}
	if col != nil {
		n, _, _, _, _ := col.LatencyStats()
		fmt.Fprintf(&b, "sink:%d", n)
	}
	if reachable == 0 {
		drained = false
	}
	return b.String(), drained, reachable
}

// AwaitDrained is the single-node barrier used by tests that drive a Node
// directly (no Cluster): it polls Stats until the ingress queue and outbox
// are empty and the counters hold still for settle.
func (n *Node) AwaitDrained(timeout, settle time.Duration) error {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if settle <= 0 {
		settle = 50 * time.Millisecond
	}
	start := time.Now()
	var last string
	var since time.Time
	for {
		fp, drained, _ := quiesceFingerprint([]*NodeStats{n.Stats()}, nil)
		now := time.Now()
		if fp != last {
			last, since = fp, now
		}
		if drained && now.Sub(since) >= settle {
			return nil
		}
		if now.Sub(start) >= timeout {
			return fmt.Errorf("engine: node not drained after %v (%s)", timeout, fp)
		}
		time.Sleep(DefaultQuiescePoll)
	}
}

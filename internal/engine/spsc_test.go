package engine

import (
	"sync"
	"testing"
)

// Wraparound FIFO: push many more tuples than the ring holds in ragged
// runs, draining with ragged limits, and require every tuple to come out
// exactly once in push order. The head/tail positions are free-running, so
// this exercises the index-mask wraparound dozens of times on a 64-slot
// ring.
func TestSPSCWraparoundFIFO(t *testing.T) {
	r := newSPSCRing(1) // rounds up to the 64-slot minimum
	if len(r.buf) != 64 {
		t.Fatalf("capacity = %d, want 64 (minimum)", len(r.buf))
	}
	const total = 10000
	var pushed, drained int64
	batch := make([]Tuple, 0, 16)
	scratch := make([]Tuple, 0, 64)
	for drained < total {
		// Offer a ragged batch (retrying any rejected suffix next round).
		batch = batch[:0]
		k := int(pushed%13) + 1
		for i := 0; i < k && pushed+int64(i) < total; i++ {
			batch = append(batch, Tuple{Stream: 1, Seq: pushed + int64(i)})
		}
		pushed += int64(r.push(batch))
		// Drain with a ragged limit and check the FIFO sequence.
		scratch = r.drainInto(scratch[:0], int(drained%17)+1)
		for _, tp := range scratch {
			if tp.Seq != drained {
				t.Fatalf("drained seq %d, want %d (FIFO broken)", tp.Seq, drained)
			}
			drained++
		}
	}
	if pushed != total || r.size() != 0 {
		t.Fatalf("pushed %d drained %d size %d, want %d/%d/0", pushed, drained, r.size(), total, total)
	}
}

// Full-ring accounting: push accepts exactly the free space as a prefix of
// the offered batch and reports the count, so the caller's
// accepted+rejected arithmetic (the outbox drop counter) is exact. After a
// partial drain, exactly the freed slots are accepted again.
func TestSPSCFullRingDropAccounting(t *testing.T) {
	r := newSPSCRing(64)
	capN := len(r.buf)
	offer := make([]Tuple, capN+50)
	for i := range offer {
		offer[i] = Tuple{Stream: 1, Seq: int64(i)}
	}
	accepted := r.push(offer)
	if accepted != capN {
		t.Fatalf("accepted %d of %d, want exactly the capacity %d", accepted, len(offer), capN)
	}
	if got := r.push(offer[accepted:]); got != 0 {
		t.Fatalf("full ring accepted %d more, want 0", got)
	}
	if r.size() != capN {
		t.Fatalf("size = %d, want %d", r.size(), capN)
	}
	// Free 10 slots; exactly 10 of the rejected suffix fit, in order.
	got := r.drainInto(nil, 10)
	for i, tp := range got {
		if tp.Seq != int64(i) {
			t.Fatalf("drained[%d].Seq = %d, want %d", i, tp.Seq, i)
		}
	}
	if n := r.push(offer[accepted:]); n != 10 {
		t.Fatalf("after freeing 10 slots push accepted %d, want 10", n)
	}
	// Drain everything: the survivors must be the accepted prefix plus the
	// retried suffix, still strictly in offer order.
	rest := r.drainInto(nil, capN+1)
	if len(rest) != capN {
		t.Fatalf("drained %d, want %d", len(rest), capN)
	}
	for i, tp := range rest {
		if want := int64(i + 10); tp.Seq != want {
			t.Fatalf("drained[%d].Seq = %d, want %d", i, tp.Seq, want)
		}
	}
	// discard retires whatever is left and reports the count (shutdown sweep).
	r.push(offer[:7])
	if got := r.discard(); got != 7 || r.size() != 0 {
		t.Fatalf("discard = %d (size %d), want 7 (0)", got, r.size())
	}
}

// Concurrent producer/consumer: one goroutine pushes (retrying rejected
// suffixes), one drains, with no synchronization besides the ring itself.
// Under -race this validates the memory-ordering argument in the type
// comment: the consumer must only ever observe fully written tuples, in
// FIFO order, each exactly once.
func TestSPSCConcurrentProducerConsumer(t *testing.T) {
	r := newSPSCRing(64)
	const total = 200000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]Tuple, 0, 32)
		next := int64(0)
		for next < total {
			batch = batch[:0]
			for i := 0; i < 32 && next+int64(i) < total; i++ {
				batch = append(batch, Tuple{Stream: 7, Seq: next + int64(i), Key: uint64(next + int64(i))})
			}
			next += int64(r.push(batch)) // rejected suffix is retried
		}
	}()
	scratch := make([]Tuple, 0, 64)
	want := int64(0)
	for want < total {
		scratch = r.drainInto(scratch[:0], 64)
		for _, tp := range scratch {
			if tp.Seq != want || tp.Key != uint64(want) {
				t.Fatalf("got seq %d key %d, want %d (lost/duplicated/torn tuple)", tp.Seq, tp.Key, want)
			}
			want++
		}
	}
	wg.Wait()
	if r.size() != 0 {
		t.Fatalf("ring size = %d after full drain, want 0", r.size())
	}
}

package engine

import (
	"sync/atomic"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/stats"
)

// workerRun holds one lane worker's reusable per-run scratch: the drained
// tuples, the per-stream consumer cache (resolved lazily from the immutable
// route snapshot — no lock needed), emitted outputs, per-destination
// forward groups, local re-entry buckets per lane, and the per-operator
// estimator samples accumulated over the run. Reuse keeps the steady-state
// dequeue path allocation-free.
type workerRun struct {
	tuples  []Tuple
	outs    []Tuple
	cons    []consEntry
	tgts    []tgtEntry
	fwds    []relayRun  // queued-before-migration tuples to relay onward
	egress  []relayRun  // routeBatch per-destination remote groups
	locals  [][]Tuple   // routeBatch per-lane local re-entry buckets
	samples []runSample // per-(op, run) estimator aggregation
}

// runSample accumulates one operator's estimator sample over a whole run,
// so the estimator mutex is taken once per (op, run) instead of per tuple
// (stats.CostEstimator.Record is cumulative, so the aggregate is exact for
// Cost and Selectivity).
type runSample struct {
	id  int
	in  int64
	out int64
	cpu float64
}

func (r *workerRun) sample(id int, out int64, cpu float64) {
	for i := range r.samples {
		if r.samples[i].id == id {
			r.samples[i].in++
			r.samples[i].out += out
			r.samples[i].cpu += cpu
			return
		}
	}
	r.samples = append(r.samples, runSample{id: id, in: 1, out: out, cpu: cpu})
}

func (r *workerRun) flushSamples(est *stats.CostEstimator) {
	for i := range r.samples {
		s := &r.samples[i]
		est.Record(s.id, stats.OpSample{In: s.in, Out: s.out, CPU: s.cpu})
	}
	r.samples = r.samples[:0]
}

// tgtEntry caches the resolution of one targeted (keyed) delivery for the
// current run: the addressed replica when it is still installed, or the
// relay address of its new home when it migrated away mid-queue.
type tgtEntry struct {
	id    int32
	op    *liveOp
	relay string
}

// targetOf returns the cached resolution for a targeted tuple, resolving
// it from the route snapshot (and the stream's partition-table relay map)
// on a miss. The snapshot is immutable, so no lock is needed.
func (r *workerRun) targetOf(rs *routeState, t *Tuple) *tgtEntry {
	for i := range r.tgts {
		if r.tgts[i].id == t.target {
			return &r.tgts[i]
		}
	}
	e := tgtEntry{id: t.target}
	if op := rs.ops[int(t.target)-1]; op != nil {
		e.op = op
	} else if pt := rs.parts[int(t.Stream)]; pt != nil {
		e.relay = pt.relay[int(t.target)-1]
	}
	r.tgts = append(r.tgts, e)
	return &r.tgts[len(r.tgts)-1]
}

// fwdTo groups one tuple into the run's per-destination forward slices,
// reusing backing arrays across runs.
func (r *workerRun) fwdTo(addr string, t Tuple) {
	i := 0
	for ; i < len(r.fwds); i++ {
		if r.fwds[i].addr == addr {
			break
		}
	}
	if i == len(r.fwds) {
		if i < cap(r.fwds) {
			r.fwds = r.fwds[:i+1]
			r.fwds[i].addr = addr
			r.fwds[i].ts = r.fwds[i].ts[:0]
		} else {
			r.fwds = append(r.fwds, relayRun{addr: addr})
		}
	}
	r.fwds[i].ts = append(r.fwds[i].ts, t)
}

// consEntry caches one stream's local consumer operators for the current
// run. liveOp pointers come from the immutable route snapshot; their
// mutable state is guarded by the per-op mutex. When a stream's
// subscriptions have all been removed (its operator migrated away between
// admission and processing), relay carries the stream's relay routes so
// the drained tuples follow the operator to its new home instead of
// vanishing.
type consEntry struct {
	sid   int32
	ops   []*liveOp
	relay []Dest
}

// consumersOf returns the cached consumer set for sid, resolving it from
// the route snapshot on a miss.
func (r *workerRun) consumersOf(rs *routeState, sid int32) []*liveOp {
	for i := range r.cons {
		if r.cons[i].sid == sid {
			return r.cons[i].ops
		}
	}
	if len(r.cons) < cap(r.cons) {
		r.cons = r.cons[:len(r.cons)+1]
	} else {
		r.cons = append(r.cons, consEntry{})
	}
	e := &r.cons[len(r.cons)-1]
	e.sid = sid
	e.ops = e.ops[:0]
	for _, id := range rs.subs[int(sid)] {
		if op := rs.ops[id]; op != nil {
			e.ops = append(e.ops, op)
		}
	}
	e.relay = e.relay[:0]
	if len(e.ops) == 0 {
		// The stream's consumer left after these tuples were admitted
		// (operator migration). Snapshot the relay routes so the worker can
		// forward the stranded tuples to the new home.
		e.relay = append(e.relay, rs.relays[int(sid)]...)
	}
	return e.ops
}

// relayOf returns the relay routes snapshotted for sid (non-empty only
// when the stream has no local consumers).
func (r *workerRun) relayOf(sid int32) []Dest {
	for i := range r.cons {
		if r.cons[i].sid == sid {
			return r.cons[i].relay
		}
	}
	return nil
}

// laneWorker is one lane's share of the node's virtual CPU: it dequeues
// tuples from its own lane queue, charges their processing cost against
// the node-wide virtual-time accumulator (sleeping whenever virtual time
// runs ahead of wall time), and routes outputs. The lane lock is taken
// once per run of up to BatchMax tuples; all routing state comes from one
// atomic snapshot load per run.
func (n *Node) laneWorker(l *lane) {
	defer n.wg.Done()
	run := workerRun{locals: make([][]Tuple, n.workers)}
	for {
		l.mu.Lock()
		for l.qlenLocked() == 0 && !n.closed.Load() {
			l.cond.Wait()
		}
		if n.closed.Load() {
			l.mu.Unlock()
			return
		}
		k := l.qlenLocked()
		if k > n.cfg.BatchMax {
			k = n.cfg.BatchMax
		}
		run.tuples = append(run.tuples[:0], l.queue[l.qhead:l.qhead+k]...)
		for i := 0; i < k; i++ {
			l.queue[l.qhead+i] = Tuple{}
		}
		l.qhead += k
		// Tuples leave the queue before they finish processing; a costly
		// run can hold them for hundreds of milliseconds. Track the count
		// so stats (and the quiescence barrier) never report an empty
		// pipeline while the worker still owns admitted tuples.
		l.inRun = k
		if l.qhead > 4096 && l.qhead*2 > len(l.queue) {
			l.queue = append(l.queue[:0], l.queue[l.qhead:]...)
			l.qhead = 0
		}
		qlen := l.qlenLocked()
		shedClear := false
		if l.shedding && qlen <= l.cap/2 {
			// Hysteresis: declare shedding over once the backlog has
			// drained to half the cap, not at the first free slot.
			l.shedding = false
			shedClear = true
		}
		shedTotal := l.shed.Load()
		l.mu.Unlock()

		rs := n.route.Load()
		nodeID := rs.nodeID()
		ev, stages, _ := n.observer()
		if shedClear {
			ev.Emit(obs.LevelInfo, obs.EventShedClear,
				"node", nodeID, "lane", int(l.id), "queue", qlen, "cap", l.cap,
				"shed", shedTotal)
		}

		// Process the run outside any lock, pacing per tuple against a
		// locally accumulated busy delta (concurrent charges from other
		// lanes and the ingress transfer cost land in n.busy and are picked
		// up at the next flush).
		started := n.started.Load()
		startNano := n.startNano.Load()
		busyBase := n.busy.Load()
		var busyDelta, laneBusy int64
		var stranded int64
		run.outs = run.outs[:0]
		run.fwds = run.fwds[:0]
		run.cons = run.cons[:0]
		run.tgts = run.tgts[:0]
		for _, t := range run.tuples {
			var cost float64
			outsBefore := len(run.outs)
			// Stage boundary: a traced tuple leaves the queue now; the time
			// since its ingress admission is queue wait, the time until its
			// outputs are ready (including virtual-CPU pacing) is service.
			tracedT := t.Flags&TupleTraced != 0 && t.Stream != stallStream
			var svcStart int64
			if tracedT {
				svcStart = time.Now().UnixNano()
			}
			if t.Stream == stallStream {
				// Migration state-transfer pause: Value already carries the
				// cost units making svc = Value/capacity = the stall seconds.
				cost = t.Value
			} else if t.target != 0 {
				// Targeted (keyed) delivery: exactly one addressed replica,
				// never the stream's broadcast consumer set. If the replica
				// migrated between admission and draining, forward to its
				// recorded new home; with no record left, count the loss.
				if e := run.targetOf(rs, &t); e.op != nil {
					cost = n.process(&run, e.op, t)
				} else if e.relay != "" {
					run.fwdTo(e.relay, t)
				} else {
					stranded++
				}
			} else if cons := run.consumersOf(rs, t.Stream); len(cons) > 0 {
				for _, op := range cons {
					cost += n.process(&run, op, t)
				}
			} else {
				// Admitted while a local consumer existed, drained after it
				// migrated away: relay toward the new home, or — with no
				// relay route left — count the loss instead of silently
				// absorbing the tuple (the conservation ledger audits this).
				relay := run.relayOf(t.Stream)
				if len(relay) == 0 {
					stranded++
				}
				for _, d := range relay {
					run.fwdTo(d.Addr, t)
				}
			}
			if cost > 0 {
				d := int64(time.Duration(cost / n.capacity * float64(time.Second)))
				busyDelta += d
				laneBusy += d
				if started {
					// Pace: virtual time must not run ahead of wall time.
					ahead := busyBase + busyDelta - (time.Now().UnixNano() - startNano)
					if ahead > int64(500*time.Microsecond) {
						// Flush the accumulated virtual time before sleeping
						// so stats polled mid-sleep see it (a costly run can
						// carry seconds of virtual time; utilization must not
						// lag by that much). The zero-cost path never touches
						// the shared accumulator.
						busyBase = n.busy.Add(busyDelta)
						busyDelta = 0
						time.Sleep(time.Duration(ahead))
					}
				}
			}
			if tracedT {
				svcEnd := time.Now().UnixNano()
				var queueSec float64
				if t.TraceTs > 0 {
					queueSec = float64(svcStart-t.TraceTs) / float64(time.Second)
				}
				svcSec := float64(svcEnd-svcStart) / float64(time.Second)
				stages.Observe(obs.StageQueue, queueSec)
				stages.Observe(obs.StageService, svcSec)
				// Outputs inherit the service-end boundary, so their next
				// crossing (outbox residence or local re-queue wait) starts
				// here and the stage durations keep telescoping.
				for j := outsBefore; j < len(run.outs); j++ {
					run.outs[j].TraceTs = svcEnd
				}
				ev.Emit(obs.LevelDebug, obs.EventSpan, "stage", "process",
					"node", nodeID, "stream", int(t.Stream), "seq", t.Seq,
					"ts", t.Ts, "queue", queueSec, "service", svcSec,
					"cost", cost, "outs", len(run.outs)-outsBefore)
			}
		}
		if busyDelta > 0 {
			n.busy.Add(busyDelta)
		}
		if laneBusy > 0 {
			l.busy.Add(laneBusy)
		}
		if stranded > 0 {
			n.dropNoRt.Add(stranded)
		}
		l.processed.Add(int64(len(run.tuples)))
		run.flushSamples(n.estimator)
		for i := range run.fwds {
			n.sendBatchLane(l.id, run.fwds[i].addr, run.fwds[i].ts)
		}
		n.routeBatch(l, rs, &run)
		// Only after the outputs are routed (and counted) does the run's
		// in-flight claim lapse — one uncontended lock per run, not per
		// tuple.
		l.mu.Lock()
		l.inRun = 0
		l.mu.Unlock()
	}
}

// process runs one tuple through one operator, appending emitted tuples to
// run.outs and returning the cost-units consumed. The operator's mutable
// state is guarded by its own mutex (uncontended while one lane owns the
// operator's streams; see liveOp).
func (n *Node) process(run *workerRun, op *liveOp, t Tuple) float64 {
	op.mu.Lock()
	cost := op.spec.Cost
	produced := op.spec.Selectivity
	if op.spec.Kind == "join" {
		now := time.Now().UnixNano()
		side := op.sideOf[int(t.Stream)]
		op.window[side] = append(op.window[side], now)
		horizon := now - int64(op.spec.Window/2*float64(time.Second))
		for s := range op.window {
			win := op.window[s]
			lo := 0
			for lo < len(win) && win[lo] < horizon {
				lo++
			}
			op.window[s] = win[lo:]
		}
		pairs := len(op.window[1-side])
		cost = op.spec.Cost * float64(pairs)
		produced = op.spec.Selectivity * float64(pairs)
	}
	op.selAcc += produced
	k := int(op.selAcc)
	op.selAcc -= float64(k)
	op.processed++
	out := int32(op.spec.Out)
	op.mu.Unlock()
	run.sample(op.spec.ID, int64(k), cost)
	for i := 0; i < k; i++ {
		// Outputs inherit the partition key (so downstream sharded stages
		// keep keyed semantics) but never the in-memory target: addressing
		// is resolved per stream by whoever routes the output.
		run.outs = append(run.outs, Tuple{
			Stream: out, Ts: t.Ts, Seq: t.Seq, Value: t.Value,
			Key: t.Key, Flags: t.Flags, TraceTs: t.TraceTs,
		})
	}
	return cost
}

// egressTo groups one tuple into routeBatch's per-destination remote
// slices, reusing backing arrays across runs.
func (r *workerRun) egressTo(addr string, t Tuple) {
	i := 0
	for ; i < len(r.egress); i++ {
		if r.egress[i].addr == addr {
			break
		}
	}
	if i == len(r.egress) {
		if i < cap(r.egress) {
			r.egress = r.egress[:i+1]
			r.egress[i].addr = addr
			r.egress[i].ts = r.egress[i].ts[:0]
		} else {
			r.egress = append(r.egress, relayRun{addr: addr})
		}
	}
	r.egress[i].ts = append(r.egress[i].ts, t)
}

// routeBatch delivers a run of operator-emitted tuples: local consumers
// re-enter their lane's queue (bucketed per lane, one lock acquisition per
// lane); remote destinations are aggregated per peer and pushed onto the
// lane's SPSC outbox rings (charging send-side transfer cost per accepted
// tuple). Routing state comes from the run's route snapshot; no node-wide
// lock is taken.
func (n *Node) routeBatch(l *lane, rs *routeState, run *workerRun) {
	outs := run.outs
	if len(outs) == 0 {
		return
	}
	closing := n.closed.Load()
	run.egress = run.egress[:0]
	var localCount int64
	for _, t := range outs {
		// Partitioned (keyed) streams: pick the one replica owning the
		// tuple's slot — a targeted local re-entry when it lives here, a
		// grouped remote send otherwise. This is also where the per-slot
		// rate counters accumulate: every tuple of the keyed stream passes
		// through its splitter's home exactly once.
		if pt := rs.parts[int(t.Stream)]; pt != nil {
			slot := slotOf(&t)
			atomic.AddInt64(&pt.counts[slot], 1)
			d := pt.shards[pt.slots[slot]]
			if d.Local {
				if _, ok := rs.ops[d.LocalOp]; ok && !closing {
					t.target = int32(d.LocalOp) + 1
					li := fibLane(uint64(uint32(t.target)), n.workers)
					run.locals[li] = append(run.locals[li], t)
					localCount++
					continue
				}
				addr := pt.relay[d.LocalOp]
				if addr == "" {
					n.dropNoRt.Add(1)
					continue
				}
				d = Dest{Addr: addr}
			}
			run.egressTo(d.Addr, t)
			continue
		}
		if len(rs.subs[int(t.Stream)]) > 0 && !closing {
			li := rs.laneFor(&t, n.workers)
			run.locals[li] = append(run.locals[li], t)
			localCount++
		}
		for _, d := range rs.fwd[int(t.Stream)] {
			run.egressTo(d.Addr, t)
		}
	}
	if localCount > 0 {
		n.emitted.Add(localCount)
		for li := range run.locals {
			if len(run.locals[li]) == 0 {
				continue
			}
			n.lanes[li].requeue(run.locals[li])
			run.locals[li] = run.locals[li][:0]
		}
	}
	for gi := range run.egress {
		g := &run.egress[gi]
		accepted := n.sendBatchLane(l.id, g.addr, g.ts)
		if accepted == 0 {
			continue
		}
		var xferBusy int64
		for _, t := range g.ts[:accepted] {
			if x := rs.xfer[int(t.Stream)]; x > 0 {
				xferBusy += int64(time.Duration(x / n.capacity * float64(time.Second)))
			}
		}
		n.emitted.Add(int64(accepted))
		if xferBusy > 0 {
			n.busy.Add(xferBusy)
			l.busy.Add(xferBusy)
		}
	}
}

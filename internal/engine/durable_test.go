package engine

import (
	"net"
	"sync"
	"testing"
	"time"

	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// TestDedupWatermarkFirstTuple pins the "seq 0" regression: sources number
// tuples from zero, so a missing watermark entry must admit seq 0 — the
// map's zero value cannot double as "already seen". The very first tuple
// of every stream was silently dropped as a duplicate before this was an
// existence check.
func TestDedupWatermarkFirstTuple(t *testing.T) {
	n, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	first := []Tuple{{Stream: 7, Seq: 0}, {Stream: 7, Seq: 1}}
	keep := n.dedupFilter(first, nil)
	if len(keep) != 2 {
		t.Fatalf("fresh stream: kept %d of 2 (seq 0 must pass an empty watermark)", len(keep))
	}
	n.advanceMarks(keep)

	// Re-sent retained batch: both now behind the watermark.
	keep = n.dedupFilter(first, keep[:0])
	if len(keep) != 0 {
		t.Fatalf("re-send: kept %d, want 0", len(keep))
	}
	if got := n.dedupDropped.Load(); got != 2 {
		t.Fatalf("dedupDropped = %d, want 2", got)
	}

	// Progress resumes past the mark, and an unrelated stream starts fresh
	// at seq 0 too.
	keep = n.dedupFilter([]Tuple{{Stream: 7, Seq: 2}, {Stream: 9, Seq: 0}}, keep[:0])
	if len(keep) != 2 {
		t.Fatalf("progress + fresh stream: kept %d of 2", len(keep))
	}
}

// TestDurableIngressMixedFrames drives one live tuple connection through
// every frame generation at once — hello, seqmark-tagged durable batches,
// an unmarked legacy frame, a traced batch, and a duplicate re-send — and
// asserts the durability contract visible at the two ends: every marked
// batch is acked (after the group commit), the duplicate re-send is
// filtered by the watermarks yet still acked, and the sink sees each
// distinct tuple exactly once.
func TestDurableIngressMixedFrames(t *testing.T) {
	g := pipeline(t, 0.00001, 0.00001)
	plan, _ := placement.NewPlan([]int{0, 0}, 1)
	caps := []float64{1}
	cl, err := StartClusterConfig(caps, NodeConfig{WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Collector.SetDedup(true)
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	in := int32(g.Inputs()[0])

	conn, err := net.DialTimeout("tcp", cl.Nodes[0].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := conn.Write([]byte{connTuples}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(appendHello(nil, 42, "test-sender")); err != nil {
		t.Fatal(err)
	}
	frame := func(ts []Tuple) []byte {
		var buf []byte
		buf = appendFrames(buf, ts)
		return buf
	}
	sendMarked := func(mark uint64, ts []Tuple) {
		t.Helper()
		if _, err := conn.Write(appendSeqMark(nil, mark)); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame(ts)); err != nil {
			t.Fatal(err)
		}
		ack, err := readAck(conn)
		if err != nil {
			t.Fatalf("ack for mark %d: %v", mark, err)
		}
		if ack != mark {
			t.Fatalf("ack = %d, want %d", ack, mark)
		}
	}

	// Durable batch from seq 0 (the watermark regression path).
	sendMarked(1, []Tuple{{Stream: in, Seq: 0}, {Stream: in, Seq: 1}, {Stream: in, Seq: 2}})
	// Unmarked legacy frame on the same connection: volatile path, no ack.
	if err := WriteTuple(conn, Tuple{Stream: in, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	// Traced durable batch.
	sendMarked(2, []Tuple{
		{Stream: in, Seq: 4, Flags: TupleTraced, TraceTs: time.Now().UnixNano()},
		{Stream: in, Seq: 5},
	})
	// Duplicate re-send of the first batch (a retained outbox replaying
	// after a reconnect): filtered, but still acked so the sender settles.
	sendMarked(3, []Tuple{{Stream: in, Seq: 0}, {Stream: in, Seq: 1}, {Stream: in, Seq: 2}})

	if err := cl.AwaitQuiescence(10*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	if delivered != 6 {
		t.Fatalf("delivered = %d, want 6 (seq 0..5 exactly once)", delivered)
	}
	if dups := cl.Collector.Duplicates(); dups != 0 {
		t.Fatalf("sink saw %d duplicates", dups)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !sts[0].WALActive {
		t.Fatal("node must report an active WAL")
	}
	if sts[0].DedupDropped != 3 {
		t.Fatalf("DedupDropped = %d, want 3 (the re-sent batch)", sts[0].DedupDropped)
	}
	if sts[0].WALRecords < 2 {
		t.Fatalf("WALRecords = %d, want >= 2", sts[0].WALRecords)
	}
}

// TestClusterKillRestartRecovers is the in-process kill-and-recover path:
// a three-node chain with the middle node durable-killed mid-stream, then
// restarted from its WAL directory by the coordinator. Everything injected
// must reach the sink exactly once — replay plus upstream re-send cover
// the crash window, the watermarks and the sink filter suppress the
// overlap.
func TestClusterKillRestartRecovers(t *testing.T) {
	qb := query.NewBuilder()
	in := qb.Input("I")
	s1 := qb.Delay("a", 0.00002, 1, in)
	s2 := qb.Delay("b", 0.00002, 1, s1)
	qb.Delay("c", 0.00002, 1, s2)
	g := qb.MustBuild()
	plan, _ := placement.NewPlan([]int{0, 1, 2}, 3)
	caps := []float64{1, 1, 1}
	cl, err := StartClusterConfig(caps, NodeConfig{
		WALDir:          t.TempDir(),
		CheckpointEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Collector.SetDedup(true)
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	src := &SourceDriver{
		Stream:  g.Inputs()[0],
		Trace:   trace.New("const", 1, []float64{400, 400}),
		Addrs:   []string{cl.Nodes[0].Addr()},
		MaxRate: 5000,
	}
	done := make(chan int64, 1)
	go func() {
		n, _ := src.Run(900*time.Millisecond, nil)
		done <- n
	}()

	time.Sleep(300 * time.Millisecond)
	if err := cl.Controls[1].Fault(FaultSpec{Kill: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := cl.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	injected := <-done

	if err := cl.AwaitQuiescence(15*time.Second, 100*time.Millisecond); err != nil {
		t.Fatalf("recovery never drained: %v", err)
	}
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	if delivered != injected {
		t.Fatalf("delivered %d of %d injected across the crash", delivered, injected)
	}
	if dups := cl.Collector.Duplicates(); dups != 0 {
		t.Fatalf("sink saw %d duplicate deliveries", dups)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sts[1] == nil || !sts[1].Recovered {
		t.Fatalf("restarted node must report Recovered: %+v", sts[1])
	}
	for i, s := range sts {
		if s.Shed != 0 || s.OutboxDropped != 0 || s.DroppedNoRoute != 0 {
			t.Fatalf("node %d lost tuples: shed=%d dropped=%d noroute=%d",
				i, s.Shed, s.OutboxDropped, s.DroppedNoRoute)
		}
	}
}

// TestConcurrentReplaySameSenderNoDuplicates pins the reconnect-replay
// admission race: a sender that reconnects and replays retained batches
// while its OLD connection's goroutine is still mid-admission (between
// dedupFilter and advanceMarks, typically blocked in WaitCommitted) must
// not get the same batch admitted twice. Two live connections announcing
// the same hello identity hammer identical marked batches concurrently;
// the sink must see every distinct tuple exactly once.
func TestConcurrentReplaySameSenderNoDuplicates(t *testing.T) {
	g := pipeline(t, 0.00001, 0.00001)
	plan, _ := placement.NewPlan([]int{0, 0}, 1)
	caps := []float64{1}
	cl, err := StartClusterConfig(caps, NodeConfig{WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Collector.SetDedup(true)
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	in := int32(g.Inputs()[0])

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.DialTimeout("tcp", cl.Nodes[0].Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck
		if _, err := conn.Write([]byte{connTuples}); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(appendHello(nil, 7, "same-sender")); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	connA, connB := dial(), dial()
	defer connA.Close()
	defer connB.Close()

	const batches, per = 40, 5
	sendMarked := func(conn net.Conn, mark uint64, ts []Tuple) error {
		buf := appendSeqMark(nil, mark)
		buf = appendFrames(buf, ts)
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		_, err := readAck(conn)
		return err
	}
	var wg sync.WaitGroup
	for ci, conn := range []net.Conn{connA, connB} {
		wg.Add(1)
		go func(ci int, conn net.Conn) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				ts := make([]Tuple, per)
				for j := range ts {
					ts[j] = Tuple{Stream: in, Seq: int64(i*per + j)}
				}
				if err := sendMarked(conn, uint64(i+1), ts); err != nil {
					t.Errorf("conn %d batch %d: %v", ci, i, err)
					return
				}
			}
		}(ci, conn)
	}
	wg.Wait()

	if err := cl.AwaitQuiescence(15*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	if delivered != batches*per {
		t.Fatalf("delivered = %d, want %d (each distinct tuple exactly once)", delivered, batches*per)
	}
	if dups := cl.Collector.Duplicates(); dups != 0 {
		t.Fatalf("sink saw %d duplicate deliveries", dups)
	}
}

// TestDeployRefreshesOutboxDurability pins the stale-mode gap: an outbox
// created before the spec named its peer durable must be recreated in the
// right mode when the spec lands (and back again when a redeploy drops the
// peer), instead of silently keeping the mode decided at creation.
func TestDeployRefreshesOutboxDurability(t *testing.T) {
	n, err := NewNodeConfig("127.0.0.1:0", 1, NodeConfig{
		WALDir:      t.TempDir(),
		BackoffBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	peer := deadAddr(t)

	peerOutbox := func() *outbox {
		n.peersMu.Lock()
		defer n.peersMu.Unlock()
		return n.peers[peer]
	}
	n.send(peer, Tuple{Stream: 1}) // creates the outbox before any spec
	o := peerOutbox()
	if o == nil || o.durable {
		t.Fatalf("pre-deploy outbox must exist in volatile mode (got %+v)", o)
	}
	if err := n.deploy(&NodeSpec{DurablePeers: []string{peer}}); err != nil {
		t.Fatal(err)
	}
	n.send(peer, Tuple{Stream: 1})
	o2 := peerOutbox()
	if o2 == nil || !o2.durable {
		t.Fatal("deploy naming the peer durable must recreate the outbox in durable mode")
	}
	if o2 == o {
		t.Fatal("stale volatile outbox survived the deploy")
	}
	// A redeploy that drops the peer reverts the link to volatile mode.
	if err := n.deploy(&NodeSpec{}); err != nil {
		t.Fatal(err)
	}
	n.send(peer, Tuple{Stream: 1})
	if o3 := peerOutbox(); o3 == nil || o3.durable || o3 == o2 {
		t.Fatal("redeploy dropping the peer must recreate the outbox in volatile mode")
	}
}

// TestRestartNodeRejectsLiveExternal pins RestartNode's guard rails: only
// coordinator-owned nodes can be restarted in-process.
func TestRestartNodeRejectsLiveExternal(t *testing.T) {
	cl, err := StartCluster([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RestartNode(5); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

package engine

import (
	"fmt"

	"rodsp/internal/obs"
	"rodsp/internal/query"
)

// Cluster-side shard bookkeeping: the coordinator mirrors every keyed
// stream's slot table and replica set so it can push consistent partition
// tables on repartition and keep them tracking replica migrations. Node
// tables may go stale between pushes — routing stays safe because a stale
// entry forwards through the replica's previous home, which relays onward.

// shardState is the coordinator's view of one sharded stream.
type shardState struct {
	parent string
	split  query.OpID
	k      int
	slots  []int
	ops    []query.OpID // shard index → replica operator
}

// specFor renders the node-specific partition table: shard destinations
// are local where the replica is co-located under nodeOf, remote addresses
// otherwise.
func (st *shardState) specFor(sid, node int, nodeOf []int, addrs []string) PartitionSpec {
	ps := PartitionSpec{
		Stream: sid,
		Parent: st.parent,
		K:      st.k,
		Slots:  append([]int(nil), st.slots...),
		Shards: make([]Dest, st.k),
		Ops:    make([]int, st.k),
	}
	for i, r := range st.ops {
		ps.Ops[i] = int(r)
		if rn := nodeOf[r]; rn == node {
			ps.Shards[i] = Dest{Local: true, LocalOp: int(r)}
		} else {
			ps.Shards[i] = Dest{Addr: addrs[rn]}
		}
	}
	return ps
}

// nodes returns the nodes carrying this stream's table under nodeOf: the
// splitter's home plus every replica home, deduplicated, ascending.
func (st *shardState) nodes(nodeOf []int) []int {
	seen := map[int]bool{nodeOf[st.split]: true}
	out := []int{nodeOf[st.split]}
	for _, r := range st.ops {
		if n := nodeOf[r]; !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Repart pushes a partition table to the node.
func (c *ControlClient) Repart(ps *PartitionSpec) error {
	_, err := c.call(&controlRequest{Cmd: "repart", Part: ps})
	return err
}

// ShardStreams returns the keyed stream ids the deployed graph shards,
// ascending (empty before Deploy or for unsharded graphs).
func (cl *Cluster) ShardStreams() []query.StreamID {
	cl.shardMu.Lock()
	defer cl.shardMu.Unlock()
	out := make([]query.StreamID, 0, len(cl.shards))
	for sid := range cl.shards {
		out = append(out, query.StreamID(sid))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ShardSlotsOf returns a copy of the current slot assignment of one keyed
// stream (nil when the stream is not sharded).
func (cl *Cluster) ShardSlotsOf(sid query.StreamID) []int {
	cl.shardMu.Lock()
	defer cl.shardMu.Unlock()
	st := cl.shards[int(sid)]
	if st == nil {
		return nil
	}
	return append([]int(nil), st.slots...)
}

// ShardK returns the shard count of one keyed stream (0 when unsharded).
func (cl *Cluster) ShardK(sid query.StreamID) int {
	cl.shardMu.Lock()
	defer cl.shardMu.Unlock()
	if st := cl.shards[int(sid)]; st != nil {
		return st.k
	}
	return 0
}

// Repartition reassigns the slot table of one sharded stream at runtime,
// pushing the updated table to every node hosting the splitter or a
// replica. slots must have query.ShardSlots entries in [0, k). The swap is
// lossless: a node still on the old table routes each slot to a live
// replica either way, and in-queue targeted tuples are unaffected. On a
// partial push failure the cluster keeps the new assignment (mixed tables
// remain safe) and the error is returned.
func (cl *Cluster) Repartition(sid query.StreamID, slots []int) error {
	cl.shardMu.Lock()
	st := cl.shards[int(sid)]
	if st == nil {
		cl.shardMu.Unlock()
		return fmt.Errorf("engine: stream %d is not sharded", sid)
	}
	if len(slots) != query.ShardSlots {
		cl.shardMu.Unlock()
		return fmt.Errorf("engine: repartition needs %d slots, got %d", query.ShardSlots, len(slots))
	}
	for i, s := range slots {
		if s < 0 || s >= st.k {
			cl.shardMu.Unlock()
			return fmt.Errorf("engine: slot %d assigned to shard %d outside [0,%d)", i, s, st.k)
		}
	}
	st.slots = append(st.slots[:0], slots...)
	nodeOf := cl.planNodeOfLocked()
	cl.shardMu.Unlock()

	addrs := cl.Addrs()
	for _, node := range st.nodes(nodeOf) {
		ps := st.specFor(int(sid), node, nodeOf, addrs)
		if err := cl.Controls[node].Repart(&ps); err != nil {
			cl.events.Emit(obs.LevelWarn, obs.EventControlError,
				"op", "repart", "node", node, "err", err.Error())
			return fmt.Errorf("engine: repartitioning stream %d on node %d: %w", sid, node, err)
		}
	}
	cl.events.Emit(obs.LevelInfo, obs.EventRepartition,
		"stream", int(sid), "k", st.k, "nodes", len(st.nodes(nodeOf)))
	return nil
}

// planNodeOfLocked copies the live placement recorded at Deploy (updated
// in place by MoveOperator). Callers hold cl.shardMu.
func (cl *Cluster) planNodeOfLocked() []int {
	if cl.plan == nil {
		return nil
	}
	return append([]int(nil), cl.plan.NodeOf...)
}

package engine

import (
	"fmt"

	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// OpSpec deploys one operator onto a node.
type OpSpec struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Cost        float64 `json:"cost"`
	Selectivity float64 `json:"selectivity"`
	Window      float64 `json:"window,omitempty"`
	Inputs      []int   `json:"inputs"` // stream ids
	Out         int     `json:"out"`    // output stream id
}

// Dest routes a stream: either to a local operator, to a remote node's
// address, or to the collector address (sink latency measurement).
type Dest struct {
	LocalOp int    `json:"localOp,omitempty"`
	Addr    string `json:"addr,omitempty"`
	Local   bool   `json:"local"`
}

// PartitionSpec installs the keyed routing table of one sharded stream on a
// node: the fixed slot table (query.ShardSlots entries, slot → shard index)
// and the per-shard destination — local when that replica lives on this
// node, the replica's node address otherwise. Every node hosting the
// splitter or any replica carries the table, so each can route a keyed
// tuple to exactly one replica wherever it arrives.
type PartitionSpec struct {
	Stream int    `json:"stream"`
	Parent string `json:"parent"`
	K      int    `json:"k"`
	Slots  []int  `json:"slots"`
	Shards []Dest `json:"shards"` // shard index → destination
	Ops    []int  `json:"ops"`    // shard index → replica operator id
}

// NodeSpec is the full deployment for one node.
type NodeSpec struct {
	NodeID   int             `json:"nodeId"`
	Capacity float64         `json:"capacity"`
	Ops      []OpSpec        `json:"ops"`
	Routes   map[int][]Dest  `json:"routes"` // stream id → destinations
	XferCost map[int]float64 `json:"xferCost,omitempty"`
	Parts    []PartitionSpec `json:"parts,omitempty"`

	// DurablePeers lists the data-plane addresses of the other cluster
	// nodes. A node configured with a WAL ships to these peers in durable
	// (retain-until-ack) mode; the collector is deliberately absent (sinks
	// sit outside the ack protocol). Inert when the node runs without a
	// WAL, so BuildSpecs always populates it.
	DurablePeers []string `json:"durablePeers,omitempty"`
}

// BuildSpecs compiles a graph + plan into one deployment spec per node.
// addrs maps node index → data-plane address; collector is where sink
// streams are shipped for latency measurement ("" drops sink tuples).
func BuildSpecs(g *query.Graph, plan *placement.Plan, capacities []float64, addrs []string, collector string) ([]*NodeSpec, error) {
	if plan.NumOps() != g.NumOps() {
		return nil, fmt.Errorf("engine: plan covers %d of %d operators", plan.NumOps(), g.NumOps())
	}
	if len(addrs) != plan.N || len(capacities) != plan.N {
		return nil, fmt.Errorf("engine: need %d addrs and capacities, got %d/%d", plan.N, len(addrs), len(capacities))
	}
	specs := make([]*NodeSpec, plan.N)
	for i := range specs {
		specs[i] = &NodeSpec{
			NodeID:   i,
			Capacity: capacities[i],
			Routes:   map[int][]Dest{},
			XferCost: map[int]float64{},
		}
		for j, a := range addrs {
			if j != i {
				specs[i].DurablePeers = append(specs[i].DurablePeers, a)
			}
		}
	}
	for _, op := range g.Ops() {
		node := plan.NodeOf[op.ID]
		ins := make([]int, len(op.Inputs))
		for k, in := range op.Inputs {
			ins[k] = int(in)
		}
		specs[node].Ops = append(specs[node].Ops, OpSpec{
			ID:          int(op.ID),
			Name:        op.Name,
			Kind:        op.Kind.String(),
			Cost:        op.Cost,
			Selectivity: op.Selectivity,
			Window:      op.Window,
			Inputs:      ins,
			Out:         int(op.Out),
		})
	}
	// Keyed (sharded) streams route through a partition table, not the
	// broadcast fan-out below: each tuple goes to exactly one replica.
	groups, err := query.ShardGroups(g)
	if err != nil {
		return nil, err
	}
	keyed := map[query.StreamID]query.ShardGroup{}
	for _, grp := range groups {
		keyed[grp.Stream] = grp
	}
	for _, grp := range groups {
		onNode := map[int]bool{plan.NodeOf[grp.Split]: true}
		for _, r := range grp.Replicas {
			onNode[plan.NodeOf[r]] = true
		}
		s := g.Stream(grp.Stream)
		for node := range onNode {
			ps := PartitionSpec{
				Stream: int(grp.Stream),
				Parent: grp.Parent,
				K:      grp.K,
				Slots:  query.UniformSlots(grp.K),
				Shards: make([]Dest, grp.K),
				Ops:    make([]int, grp.K),
			}
			for i, r := range grp.Replicas {
				ps.Ops[i] = int(r)
				if rn := plan.NodeOf[r]; rn == node {
					ps.Shards[i] = Dest{Local: true, LocalOp: int(r)}
				} else {
					ps.Shards[i] = Dest{Addr: addrs[rn]}
				}
			}
			specs[node].Parts = append(specs[node].Parts, ps)
			if s.XferCost > 0 {
				specs[node].XferCost[int(s.ID)] = s.XferCost
			}
		}
	}

	// Routing: every stream's producer node forwards to each consumer —
	// locally when co-located, to the consumer's node address otherwise.
	// Remote deliveries are deduplicated per destination node (the receiving
	// node fans out to its own local consumers).
	for _, s := range g.Streams() {
		if _, isKeyed := keyed[s.ID]; isKeyed {
			continue
		}
		consumers := g.Consumers(s.ID)
		producerNodes := producerNodesOf(g, plan, s.ID)
		for _, prodNode := range producerNodes {
			remote := map[int]bool{}
			for _, c := range consumers {
				cn := plan.NodeOf[c]
				if cn == prodNode {
					specs[prodNode].Routes[int(s.ID)] = append(specs[prodNode].Routes[int(s.ID)],
						Dest{Local: true, LocalOp: int(c)})
				} else if !remote[cn] {
					remote[cn] = true
					specs[prodNode].Routes[int(s.ID)] = append(specs[prodNode].Routes[int(s.ID)],
						Dest{Addr: addrs[cn]})
					if s.XferCost > 0 {
						specs[prodNode].XferCost[int(s.ID)] = s.XferCost
					}
				}
			}
			if len(consumers) == 0 && collector != "" {
				specs[prodNode].Routes[int(s.ID)] = append(specs[prodNode].Routes[int(s.ID)],
					Dest{Addr: collector})
			}
		}
	}
	// Inbound remote tuples also need local fan-out entries on the
	// receiving node; add local routes for consumers of streams whose
	// producer lives elsewhere (or is a system input).
	for _, s := range g.Streams() {
		if _, isKeyed := keyed[s.ID]; isKeyed {
			continue // keyed ingress delivers through the partition table
		}
		for _, c := range g.Consumers(s.ID) {
			cn := plan.NodeOf[c]
			if !s.Input() && plan.NodeOf[s.Producer] == cn {
				continue // already routed locally by the producer
			}
			specs[cn].Routes[int(s.ID)] = append(specs[cn].Routes[int(s.ID)],
				Dest{Local: true, LocalOp: int(c)})
			if s.XferCost > 0 {
				specs[cn].XferCost[int(s.ID)] = s.XferCost
			}
		}
	}
	return specs, nil
}

// producerNodesOf returns the node hosting a stream's producer operator;
// system input streams have no producer node (empty).
func producerNodesOf(g *query.Graph, plan *placement.Plan, sid query.StreamID) []int {
	s := g.Stream(sid)
	if s.Input() {
		return nil
	}
	return []int{plan.NodeOf[s.Producer]}
}

// InputNodes returns, per system input stream, the set of node indices that
// must receive injected tuples (the homes of that stream's consumers).
func InputNodes(g *query.Graph, plan *placement.Plan) map[query.StreamID][]int {
	out := map[query.StreamID][]int{}
	for _, in := range g.Inputs() {
		seen := map[int]bool{}
		for _, c := range g.Consumers(in) {
			n := plan.NodeOf[c]
			if !seen[n] {
				seen[n] = true
				out[in] = append(out[in], n)
			}
		}
	}
	return out
}

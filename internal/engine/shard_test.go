package engine

import (
	"testing"
	"time"

	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// shardedPipeline builds I → a → b with a sharded into k replicas, and
// returns the graph plus its shard group.
func shardedPipeline(t *testing.T, costA, costB float64, k int) (*query.Graph, query.ShardGroup) {
	t.Helper()
	b := query.NewBuilder()
	in := b.Input("I")
	s := b.Delay("a", costA, 1, in)
	b.Delay("b", costB, 1, s)
	g, err := query.Shards(b.MustBuild(), 0, query.DefaultShardConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := query.ShardGroups(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("%d shard groups", len(groups))
	}
	return g, groups[0]
}

// keyCounter returns a deterministic key source: sequential keys spread
// across the slot table by the Fibonacci hash.
func keyCounter() func() uint64 {
	var k uint64
	return func() uint64 {
		k++
		return k
	}
}

func sumStats(sts []*NodeStats) (shed, noroute, partTotal int64) {
	for _, s := range sts {
		shed += s.Shed
		noroute += s.DroppedNoRoute
		for _, counts := range s.PartCounts {
			for _, c := range counts {
				partTotal += c
			}
		}
	}
	return
}

// End-to-end keyed routing: a k=3 sharded operator spread over two nodes
// must deliver every injected tuple exactly once (co-located replicas do
// not double-process), feed every replica, and account every keyed tuple
// in the splitter home's partition counters.
func TestShardedClusterEndToEnd(t *testing.T) {
	g, grp := shardedPipeline(t, 0.002, 0.0005, 3)
	// split:0  replicas:1,2,3  merge:4  b:5 — splitter and two replicas
	// co-located on node 0, the rest on node 1.
	nodeOf := make([]int, g.NumOps())
	nodeOf[grp.Split] = 0
	nodeOf[grp.Replicas[0]] = 0
	nodeOf[grp.Replicas[1]] = 1
	nodeOf[grp.Replicas[2]] = 0
	nodeOf[grp.Merge] = 1
	for _, op := range g.Ops() {
		if op.Shard == query.ShardNone {
			nodeOf[op.ID] = 1
		}
	}
	plan, err := placement.NewPlan(nodeOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if got := cl.ShardStreams(); len(got) != 1 || got[0] != grp.Stream {
		t.Fatalf("ShardStreams = %v, want [%d]", got, grp.Stream)
	}
	if cl.ShardK(grp.Stream) != 3 {
		t.Fatalf("ShardK = %d", cl.ShardK(grp.Stream))
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{200, 200}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Keys:   keyCounter(),
	}
	injected, err := src.Run(1200*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	shed, noroute, partTotal := sumStats(sts)
	if shed != 0 || noroute != 0 {
		t.Fatalf("shed = %d, noroute = %d, want 0/0", shed, noroute)
	}
	// Exactly-once: the collector must see every tuple exactly once even
	// though two replicas share node 0.
	count, _, _, _, _ := cl.Collector.LatencyStats()
	if count != injected {
		t.Fatalf("collector saw %d of %d tuples (keyed routing lost or duplicated)", count, injected)
	}
	// Every keyed tuple crosses the splitter's partition table once.
	if partTotal != injected {
		t.Fatalf("partition counters total %d, want %d", partTotal, injected)
	}
	// Sequential keys through the Fibonacci hash feed all three replicas.
	cost := map[int]bool{}
	for _, s := range sts {
		for id := range s.OpCost {
			cost[id] = true
		}
	}
	for _, r := range grp.Replicas {
		if !cost[int(r)] {
			t.Fatalf("replica %d processed nothing (OpCost keys %v)", r, cost)
		}
	}
}

// A live repartition mid-traffic must lose nothing: old and new tables both
// route every slot to a live replica.
func TestShardedRepartitionLive(t *testing.T) {
	g, grp := shardedPipeline(t, 0.002, 0.0005, 3)
	nodeOf := make([]int, g.NumOps())
	nodeOf[grp.Split] = 0
	nodeOf[grp.Replicas[0]] = 0
	nodeOf[grp.Replicas[1]] = 1
	nodeOf[grp.Replicas[2]] = 1
	nodeOf[grp.Merge] = 0
	for _, op := range g.Ops() {
		if op.Shard == query.ShardNone {
			nodeOf[op.ID] = 0
		}
	}
	plan, err := placement.NewPlan(nodeOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{200, 200, 200}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Keys:   keyCounter(),
	}
	done := make(chan int64, 1)
	go func() {
		inj, _ := src.Run(1500*time.Millisecond, nil)
		done <- inj
	}()
	time.Sleep(500 * time.Millisecond)
	// Rotate every slot to the next replica while tuples are in flight.
	cur := cl.ShardSlotsOf(grp.Stream)
	next := make([]int, len(cur))
	for i, s := range cur {
		next[i] = (s + 1) % 3
	}
	if err := cl.Repartition(grp.Stream, next); err != nil {
		t.Fatalf("repartition: %v", err)
	}
	injected := <-done
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := cl.ShardSlotsOf(grp.Stream); got[0] != next[0] {
		t.Fatalf("slot table not updated: %v", got[:4])
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	shed, noroute, partTotal := sumStats(sts)
	if shed != 0 || noroute != 0 {
		t.Fatalf("shed = %d, noroute = %d across repartition, want 0/0", shed, noroute)
	}
	count, _, _, _, _ := cl.Collector.LatencyStats()
	if count != injected {
		t.Fatalf("collector saw %d of %d tuples across a live repartition", count, injected)
	}
	if partTotal != injected {
		t.Fatalf("partition counters total %d, want %d", partTotal, injected)
	}
}

// Migrating a shard replica mid-traffic: the destination's table must mark
// the shard local before the source lets go (no routing loop), and no
// tuples may be lost.
func TestShardedReplicaMigration(t *testing.T) {
	g, grp := shardedPipeline(t, 0.002, 0.0005, 3)
	nodeOf := make([]int, g.NumOps())
	nodeOf[grp.Split] = 0
	nodeOf[grp.Replicas[0]] = 0
	nodeOf[grp.Replicas[1]] = 1
	nodeOf[grp.Replicas[2]] = 1
	nodeOf[grp.Merge] = 0
	for _, op := range g.Ops() {
		if op.Shard == query.ShardNone {
			nodeOf[op.ID] = 0
		}
	}
	plan, err := placement.NewPlan(nodeOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{200, 200, 200}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Keys:   keyCounter(),
	}
	done := make(chan int64, 1)
	go func() {
		inj, _ := src.Run(1500*time.Millisecond, nil)
		done <- inj
	}()
	time.Sleep(500 * time.Millisecond)
	// Move replica 1 onto node 0, where replica 0 already lives — the case
	// where a stale destination table would bounce tuples back.
	if err := cl.MoveOperator(g, plan, grp.Replicas[1], 0, 0); err != nil {
		t.Fatalf("migrate replica: %v", err)
	}
	if plan.NodeOf[grp.Replicas[1]] != 0 {
		t.Fatal("plan not updated")
	}
	injected := <-done
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	shed, noroute, _ := sumStats(sts)
	if shed != 0 || noroute != 0 {
		t.Fatalf("shed = %d, noroute = %d across migration, want 0/0", shed, noroute)
	}
	count, _, _, _, _ := cl.Collector.LatencyStats()
	if count < injected*98/100 || count > injected {
		t.Fatalf("collector saw %d of %d tuples across a replica migration", count, injected)
	}
	// The monitor's per-slot rates must reflect the keyed stream.
	if cl.monitor != nil {
		t.Fatal("no controller started — monitor must be nil")
	}
}

// Migrating the splitter moves the partition table with it: keyed routing
// keeps working from the new home.
func TestShardedSplitterMigration(t *testing.T) {
	g, grp := shardedPipeline(t, 0.002, 0.0005, 2)
	nodeOf := make([]int, g.NumOps())
	nodeOf[grp.Split] = 0
	nodeOf[grp.Replicas[0]] = 0
	nodeOf[grp.Replicas[1]] = 1
	nodeOf[grp.Merge] = 1
	for _, op := range g.Ops() {
		if op.Shard == query.ShardNone {
			nodeOf[op.ID] = 1
		}
	}
	plan, err := placement.NewPlan(nodeOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	src := &SourceDriver{
		Stream: g.Inputs()[0],
		Trace:  trace.New("const", 1, []float64{200, 200, 200}),
		Addrs:  []string{cl.Nodes[0].Addr()},
		Keys:   keyCounter(),
	}
	done := make(chan int64, 1)
	go func() {
		inj, _ := src.Run(1500*time.Millisecond, nil)
		done <- inj
	}()
	time.Sleep(500 * time.Millisecond)
	if err := cl.MoveOperator(g, plan, grp.Split, 1, 0); err != nil {
		t.Fatalf("migrate splitter: %v", err)
	}
	injected := <-done
	if err := cl.AwaitQuiescence(5*time.Second, 50*time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sts, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	shed, noroute, _ := sumStats(sts)
	if shed != 0 || noroute != 0 {
		t.Fatalf("shed = %d, noroute = %d across splitter migration, want 0/0", shed, noroute)
	}
	count, _, _, _, _ := cl.Collector.LatencyStats()
	if count < injected*98/100 || count > injected {
		t.Fatalf("collector saw %d of %d tuples across a splitter migration", count, injected)
	}
}

// Repartition input validation.
func TestRepartitionValidation(t *testing.T) {
	g, grp := shardedPipeline(t, 0.001, 0.0005, 2)
	nodeOf := make([]int, g.NumOps())
	plan, err := placement.NewPlan(nodeOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1}
	cl, err := StartCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		t.Fatal(err)
	}
	if err := cl.Repartition(grp.Stream+100, query.UniformSlots(2)); err == nil {
		t.Fatal("unsharded stream must error")
	}
	if err := cl.Repartition(grp.Stream, []int{0, 1}); err == nil {
		t.Fatal("short slot table must error")
	}
	bad := query.UniformSlots(2)
	bad[5] = 2
	if err := cl.Repartition(grp.Stream, bad); err == nil {
		t.Fatal("out-of-range shard must error")
	}
}

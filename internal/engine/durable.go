package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rodsp/internal/obs"
	"rodsp/internal/wal"
)

// Per-node durability layer (enabled by NodeConfig.WALDir).
//
// The design splits responsibility between the two ends of every durable
// link:
//
//   - The RECEIVER logs each seqmark-tagged ingress batch to its WAL and
//     acks only after the fsync-batched group commit — so an acked batch
//     is recoverable, and an unacked one is by definition still retained
//     in the sender's outbox and will be re-sent on reconnect.
//   - Duplicates from re-sends and replay are filtered by per-stream
//     tuple-sequence watermarks (sources emit dense per-stream sequences,
//     lanes preserve per-stream FIFO, and one stream reaches a node over
//     one link, so "Seq ≤ watermark" identifies a duplicate exactly). The
//     watermarks are the node's ONLY dedup state: they are checkpointed
//     with the operator state and re-advanced by replay.
//
// Checkpoints land only at drained moments (no in-flight durable
// admission, empty lanes, no worker mid-batch, empty outboxes including
// retained-unacked batches): at such a moment every logged input's effects
// are durable downstream — processed, shipped, and acked — so the WAL
// prefix can be truncated. The checkpoint captures the scalar operator
// state (selectivity accumulator, processed count) and the watermarks;
// windowed join contents restore empty, which is sound for the
// at-least-once gates because recover scenarios use selectivity-1 chains
// (documented limitation, as are runtime route mutations: recovery
// restores the spec persisted at deploy/start/stop, so migrations are not
// scheduled across a crash).
//
// Recovery (openDurability) runs before the node accepts any connection:
// restore the manifest's spec, apply the checkpoint, replay the WAL tail
// into the lane queues, then open the gates. Re-sent retained batches
// arriving afterwards dedup against the restored+replayed watermarks.

// walRecordTuples tags a WAL record holding admitted ingress tuples
// (version byte followed by standard wire frames).
const walRecordTuples byte = 0x01

// manifestFile persists the deployed spec and run state at control-plane
// transitions; checkpointFile persists drained-moment operator state.
const (
	manifestFile   = "manifest.json"
	checkpointFile = "checkpoint.json"
)

// durableManifest is written at deploy/start/stop so a restart can
// redeploy without any checkpoint having landed.
type durableManifest struct {
	Spec      *NodeSpec `json:"spec"`
	Started   bool      `json:"started"`
	StartNano int64     `json:"startNano"`
}

// opCheckpoint is one operator's scalar state snapshot.
type opCheckpoint struct {
	ID        int     `json:"id"`
	SelAcc    float64 `json:"selAcc"`
	Processed int64   `json:"processed"`
}

// streamMark is one stream's dedup watermark.
type streamMark struct {
	Stream int32 `json:"stream"`
	Seq    int64 `json:"seq"`
}

// checkpointState is the drained-moment snapshot: everything before WalPos
// is truncated, everything after replays on recovery.
type checkpointState struct {
	WalPos uint64         `json:"walPos"`
	Ops    []opCheckpoint `json:"ops,omitempty"`
	Marks  []streamMark   `json:"marks,omitempty"`
}

// openDurability opens (or recovers) the node's WAL directory. Called from
// NewNodeConfig before any goroutine starts; see the package comment for
// the ordering argument.
func (n *Node) openDurability() error {
	dir := n.cfg.WALDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: wal dir: %w", err)
	}
	wl, err := wal.Open(dir, wal.Options{SegmentBytes: n.cfg.WALSegmentBytes})
	if err != nil {
		return fmt.Errorf("engine: opening wal: %w", err)
	}
	n.wal = wl
	m, err := loadJSON[durableManifest](filepath.Join(dir, manifestFile))
	if err != nil {
		wl.Close()
		return fmt.Errorf("engine: reading manifest: %w", err)
	}
	if m == nil || m.Spec == nil {
		return nil // fresh directory: nothing to recover
	}
	if err := n.deploy(m.Spec); err != nil {
		wl.Close()
		return fmt.Errorf("engine: redeploying recovered spec: %w", err)
	}
	from := uint64(1)
	ck, err := loadJSON[checkpointState](filepath.Join(dir, checkpointFile))
	if err != nil {
		wl.Close()
		return fmt.Errorf("engine: reading checkpoint: %w", err)
	}
	if ck != nil {
		rs := n.route.Load()
		for _, oc := range ck.Ops {
			if op := rs.ops[oc.ID]; op != nil {
				op.mu.Lock()
				op.selAcc = oc.SelAcc
				op.processed = oc.Processed
				op.mu.Unlock()
			}
		}
		n.dedupMu.Lock()
		for _, mk := range ck.Marks {
			n.dedup[mk.Stream] = mk.Seq
		}
		n.dedupMu.Unlock()
		from = ck.WalPos + 1
	}
	if err := wl.Replay(from, func(_ uint64, payload []byte) error {
		n.replayRecord(payload)
		return nil
	}); err != nil {
		wl.Close()
		return fmt.Errorf("engine: replaying wal: %w", err)
	}
	if m.Started {
		n.startNano.Store(m.StartNano)
		n.started.Store(true)
	}
	n.recovered.Store(true)
	return nil
}

// replayRecord re-admits one WAL record's tuples: advance the dedup
// watermarks (these tuples were admitted by the previous incarnation) and
// enqueue them into the lane queues. Unknown record versions are skipped —
// replay is idempotent and tolerant by construction.
func (n *Node) replayRecord(payload []byte) {
	if len(payload) == 0 || payload[0] != walRecordTuples {
		return
	}
	tr := NewTupleReader(bytes.NewReader(payload[1:]))
	for {
		batch, err := tr.ReadBatch()
		if err != nil {
			return // io.EOF between frames: done; anything else: stop (CRC already vetted the record)
		}
		n.dedupMu.Lock()
		for i := range batch {
			if mk, seen := n.dedup[batch[i].Stream]; !seen || batch[i].Seq > mk {
				n.dedup[batch[i].Stream] = batch[i].Seq
			}
		}
		n.dedupMu.Unlock()
		n.replayed.Add(int64(len(batch)))
		n.enqueueInboundBatch(batch)
	}
}

// dedupFilter filters a durable ingress batch against the per-stream
// watermarks, appending survivors to keep WITHOUT advancing the marks —
// advanceMarks runs only after the batch is durably logged, so a WAL
// failure never strands tuples behind an advanced watermark (the sender
// re-sends and they pass the filter again). Duplicates (re-sent retained
// batches covering tuples this node already logged) are counted and
// dropped — they are ledger-invisible, since the sender's `sent` counts
// each tuple exactly once (on ack). One stream arrives over one link and
// each connection is served sequentially, so filter-then-advance is not
// racy per stream.
func (n *Node) dedupFilter(batch []Tuple, keep []Tuple) []Tuple {
	n.dedupMu.Lock()
	for i := range batch {
		// A missing entry means the stream has never been admitted here —
		// sequences start at 0, so the zero value cannot double as "none".
		if mk, seen := n.dedup[batch[i].Stream]; !seen || batch[i].Seq > mk {
			keep = append(keep, batch[i])
		} else {
			n.dedupDropped.Add(1)
		}
	}
	n.dedupMu.Unlock()
	return keep
}

// advanceMarks advances the per-stream watermarks over ts (now durable).
func (n *Node) advanceMarks(ts []Tuple) {
	n.dedupMu.Lock()
	for i := range ts {
		if mk, seen := n.dedup[ts[i].Stream]; !seen || ts[i].Seq > mk {
			n.dedup[ts[i].Stream] = ts[i].Seq
		}
	}
	n.dedupMu.Unlock()
}

// persistManifest writes the deployed spec and run state; called by the
// control plane after deploy/start/stop so a restart can recover them even
// before the first checkpoint lands.
func (n *Node) persistManifest() {
	if n.wal == nil {
		return
	}
	rs := n.route.Load()
	m := durableManifest{
		Spec:      rs.spec,
		Started:   n.started.Load(),
		StartNano: n.startNano.Load(),
	}
	data, err := json.Marshal(&m)
	if err == nil {
		err = wal.WriteFileAtomic(filepath.Join(n.cfg.WALDir, manifestFile), data)
	}
	if err != nil {
		ev, _, _ := n.observer()
		ev.Emit(obs.LevelWarn, obs.EventWALError, "node", rs.nodeID(), "err", err.Error())
	}
}

// checkpointLoop attempts a checkpoint every CheckpointEvery; only drained
// moments land one (tryCheckpoint), so under sustained load the WAL simply
// grows until the next lull.
func (n *Node) checkpointLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.ckQuit:
			return
		case <-tick.C:
			n.tryCheckpoint()
		}
	}
}

// drained reports whether the node is momentarily quiescent: no durable
// admission between WAL append and lane enqueue, nothing queued or
// mid-process in any lane, and nothing buffered, in flight, or retained
// unacked in any outbox. At such a moment every logged input's effects are
// durable downstream, which is what licenses WAL truncation.
func (n *Node) drained() bool {
	if n.durableInflight.Load() != 0 {
		return false
	}
	for _, l := range n.lanes {
		l.mu.Lock()
		busy := l.qlenLocked() > 0 || l.inRun > 0
		l.mu.Unlock()
		if busy {
			return false
		}
	}
	for _, o := range n.outboxSnapshots() {
		if o.Pending != 0 {
			return false
		}
	}
	return true
}

// tryCheckpoint lands a checkpoint if the node is drained and stays
// drained (with no WAL growth) across the state capture; returns whether
// one landed. The capture-verify-capture discipline closes the race where
// a batch is logged but not yet admitted: such an admission either bumps
// durableInflight (first check fails) or appends a record (LastSeq moved,
// second check fails).
func (n *Node) tryCheckpoint() bool {
	if n.wal == nil {
		return false
	}
	pos := n.wal.Stats().LastSeq
	if !n.drained() {
		return false
	}
	rs := n.route.Load()
	ck := checkpointState{WalPos: pos}
	for id, op := range rs.ops {
		op.mu.Lock()
		ck.Ops = append(ck.Ops, opCheckpoint{ID: id, SelAcc: op.selAcc, Processed: op.processed})
		op.mu.Unlock()
	}
	n.dedupMu.Lock()
	for sid, seq := range n.dedup {
		ck.Marks = append(ck.Marks, streamMark{Stream: sid, Seq: seq})
	}
	n.dedupMu.Unlock()
	if !n.drained() || n.wal.Stats().LastSeq != pos {
		return false
	}
	sort.Slice(ck.Ops, func(i, j int) bool { return ck.Ops[i].ID < ck.Ops[j].ID })
	sort.Slice(ck.Marks, func(i, j int) bool { return ck.Marks[i].Stream < ck.Marks[j].Stream })
	data, err := json.Marshal(&ck)
	if err == nil {
		err = wal.WriteFileAtomic(filepath.Join(n.cfg.WALDir, checkpointFile), data)
	}
	if err != nil {
		ev, _, _ := n.observer()
		ev.Emit(obs.LevelWarn, obs.EventWALError, "node", rs.nodeID(), "err", err.Error())
		return false
	}
	if err := n.wal.TruncateBefore(pos + 1); err != nil {
		ev, _, _ := n.observer()
		ev.Emit(obs.LevelWarn, obs.EventWALError, "node", rs.nodeID(), "err", err.Error())
	}
	n.checkpoints.Add(1)
	ev, _, _ := n.observer()
	ev.Emit(obs.LevelDebug, obs.EventCheckpoint,
		"node", rs.nodeID(), "walPos", int64(pos), "ops", len(ck.Ops), "marks", len(ck.Marks))
	return true
}

// loadJSON reads and decodes a JSON file, returning nil (no error) when
// the file does not exist and an error on unreadable or corrupt content.
func loadJSON[T any](path string) (*T, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return &v, nil
}

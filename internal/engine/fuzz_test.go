package engine

import (
	"bytes"
	"testing"
)

// FuzzReadTuple ensures the frame decoder never panics and round-trips
// whatever WriteTuple produced.
func FuzzReadTuple(f *testing.F) {
	var seed bytes.Buffer
	WriteTuple(&seed, Tuple{Stream: 3, Ts: 123456789, Seq: 42, Value: 3.14}) //nolint:errcheck
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := ReadTuple(bytes.NewReader(data))
		if err != nil {
			return // short/invalid input is fine; must not panic
		}
		var buf bytes.Buffer
		if err := WriteTuple(&buf, tup); err != nil {
			t.Fatal(err)
		}
		if len(data) >= tupleFrameSize && !bytes.Equal(buf.Bytes(), data[:tupleFrameSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", buf.Bytes(), data[:tupleFrameSize])
		}
	})
}

package engine

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzReadTuple ensures the frame decoder never panics and round-trips
// whatever WriteTuple produced.
func FuzzReadTuple(f *testing.F) {
	var seed bytes.Buffer
	WriteTuple(&seed, Tuple{Stream: 3, Ts: 123456789, Seq: 42, Value: 3.14}) //nolint:errcheck
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := ReadTuple(bytes.NewReader(data))
		if err != nil {
			return // short/invalid input is fine; must not panic
		}
		var buf bytes.Buffer
		if err := WriteTuple(&buf, tup); err != nil {
			t.Fatal(err)
		}
		if len(data) >= tupleFrameSize && !bytes.Equal(buf.Bytes(), data[:tupleFrameSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", buf.Bytes(), data[:tupleFrameSize])
		}
	})
}

// FuzzReadFrame covers the versioned frame decoder: arbitrary opcode and
// length prefixes must never panic or over-allocate (declared batch counts
// are capped), and a stream beginning with a legacy frame must decode it
// identically to ReadTuple.
func FuzzReadFrame(f *testing.F) {
	var legacy bytes.Buffer
	WriteTuple(&legacy, Tuple{Stream: 3, Ts: 123456789, Seq: 42, Value: 3.14}) //nolint:errcheck
	f.Add(legacy.Bytes())
	var batched bytes.Buffer
	tw, _ := NewTupleWriter(&batched)
	tw.SendBatch([]Tuple{{Stream: 1}, {Stream: 2, Seq: 9}, {Stream: 3, Value: -1}}) //nolint:errcheck
	tw.Flush()                                                                      //nolint:errcheck
	f.Add(batched.Bytes()[1:])                                                      // strip the connTuples preamble
	var traced bytes.Buffer
	tw2, _ := NewTupleWriter(&traced)
	tw2.SendBatch([]Tuple{ //nolint:errcheck
		{Stream: 1, Flags: TupleTraced, TraceTs: 987654321},
		{Stream: 2, Seq: 9},
	})
	tw2.Flush() //nolint:errcheck
	f.Add(traced.Bytes()[1:])
	// One connection interleaving all three frame variants.
	var mixed bytes.Buffer
	tw3, _ := NewTupleWriter(&mixed)
	tw3.Send(Tuple{Stream: 7, Seq: 1})                                          //nolint:errcheck
	tw3.SendBatch([]Tuple{{Stream: 7, Seq: 2}, {Stream: 8, Seq: 3}})            //nolint:errcheck
	tw3.SendBatch([]Tuple{{Stream: 7, Seq: 4, Flags: TupleTraced, TraceTs: 5}}) //nolint:errcheck
	tw3.Flush()                                                                 //nolint:errcheck
	f.Add(mixed.Bytes()[1:])
	f.Add([]byte{opBatch, 0xff, 0xff, 0xff, 0xff})  // absurd declared count
	f.Add([]byte{opBatch, 0, 0, 0, 0})              // keep-alive (empty batch)
	f.Add([]byte{opTraced, 0xff, 0xff, 0xff, 0xff}) // absurd traced count
	f.Add([]byte{opTraced, 0, 0, 0, 0})             // empty traced batch
	f.Add([]byte{0x80, 1, 2, 3})                    // unknown opcode
	f.Add([]byte{})
	// Durability opcodes: a hello announcing a sender identity, a seqmark
	// tagging the following batch, and a stray ack (acks normally flow the
	// other way; the reader must skip one without desync).
	hello := appendHello(nil, 12345, "127.0.0.1:7101")
	f.Add(hello)
	f.Add(hello[:3])                                                         // truncated hello
	f.Add(appendHello(nil, 1, string(make([]byte, 300))))                    // oversized sender addr
	f.Add(appendSeqMark(nil, 42))                                            // mark with no batch behind it
	f.Add([]byte{opSeqMark, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // absurd mark seq
	var ackBuf bytes.Buffer
	writeAck(&ackBuf, 7) //nolint:errcheck
	f.Add(ackBuf.Bytes())
	// A durable sender's stream: hello, then seqmark-tagged batches
	// interleaved with every legacy variant on one connection. The batch
	// frames are rendered through the normal writer (preamble stripped) so
	// the seed is byte-exact wire traffic.
	frame := func(ts []Tuple) []byte {
		var buf bytes.Buffer
		w, _ := NewTupleWriter(&buf)
		w.SendBatch(ts) //nolint:errcheck
		w.Flush()       //nolint:errcheck
		return buf.Bytes()[1:]
	}
	var durable bytes.Buffer
	durable.Write(appendHello(nil, 99, "127.0.0.1:9"))                                  //nolint:errcheck
	durable.Write(appendSeqMark(nil, 1))                                                //nolint:errcheck
	durable.Write(frame([]Tuple{{Stream: 5, Seq: 1}, {Stream: 5, Seq: 2}}))             //nolint:errcheck
	WriteTuple(&durable, Tuple{Stream: 6, Seq: 3})                                      //nolint:errcheck
	durable.Write(appendSeqMark(nil, 2))                                                //nolint:errcheck
	durable.Write(frame([]Tuple{{Stream: 5, Seq: 3, Flags: TupleTraced, TraceTs: 11}})) //nolint:errcheck
	f.Add(durable.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTupleReader(bytes.NewReader(data))
		first := true
		for {
			batch, err := tr.ReadBatch()
			if err != nil {
				break // truncated/invalid input is fine; must not panic
			}
			if len(batch) == 0 || len(batch) > MaxBatchWire {
				t.Fatalf("ReadBatch returned %d tuples", len(batch))
			}
			if first && len(data) > 0 && data[0]&0x80 == 0 {
				// Legacy first frame: must match the single-frame decoder.
				want, err := ReadTuple(bytes.NewReader(data))
				if err != nil || len(batch) != 1 {
					t.Fatalf("legacy frame: batch=%d err=%v", len(batch), err)
				}
				if batch[0] != want && !(batch[0].Value != batch[0].Value && want.Value != want.Value) {
					t.Fatalf("legacy decode mismatch: %+v vs %+v", batch[0], want)
				}
			}
			first = false
		}
		// The reader's reusable buffers stay bounded by the wire cap no
		// matter what lengths the input declared (traced records are the
		// widest frame variant).
		if cap(tr.buf) > MaxBatchWire*tracedFrameSize {
			t.Fatalf("payload buffer grew to %d", cap(tr.buf))
		}
		if cap(tr.slab) > MaxBatchWire {
			t.Fatalf("decode slab grew to %d", cap(tr.slab))
		}
	})
}

// FuzzControlCommand drives raw bytes at a live node's control plane. The
// contract under attack: no input — malformed JSON, absurd specs, truncated
// frames, valid commands in hostile order — may panic the node or wedge it;
// after the fuzz bytes are consumed a fresh control connection must still
// answer a well-formed stats request. The one exception is an input that
// legitimately decodes to a kill fault, which is *supposed* to stop the node.
func FuzzControlCommand(f *testing.F) {
	f.Add([]byte(`{"cmd":"stats"}`))
	f.Add([]byte(`{"cmd":"deploy"}`))
	f.Add([]byte(`{"cmd":"deploy","spec":{"nodeId":-7,"ops":[{"id":99}]}}`))
	f.Add([]byte(`{"cmd":"addop","op":{"id":0,"kind":"delay","cost":-1}}`))
	f.Add([]byte(`{"cmd":"removeop","opId":12345}`))
	f.Add([]byte(`{"cmd":"stall","stallSec":-3}`))
	f.Add([]byte(`{"cmd":"stall","stallSec":1e308}`))
	f.Add([]byte(`{"cmd":"fault"}`))
	f.Add([]byte(`{"cmd":"fault","fault":{"delayMs":-5}}`))
	f.Add([]byte(`{"cmd":"fault","fault":{"addr":" bogus","sever":true}}`))
	f.Add([]byte(`{"cmd":"nosuch"}{"cmd":"stats"}`))
	f.Add([]byte(`{"cmd":`))
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte(`{"cmd":"stats"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// An input containing a decodable kill fault is allowed (required,
		// even) to stop the node; skip the liveness assertion for those.
		expectDead := false
		dec := json.NewDecoder(bytes.NewReader(data))
		for {
			var req controlRequest
			if err := dec.Decode(&req); err != nil {
				break
			}
			if req.Cmd == "fault" && req.Fault != nil && req.Fault.Kill {
				expectDead = true
			}
		}

		n, err := NewNode("127.0.0.1:0", 1)
		if err != nil {
			t.Skip("node listen unavailable")
		}
		defer n.Close()

		conn, err := net.DialTimeout("tcp", n.Addr(), 2*time.Second)
		if err != nil {
			t.Skip("dial unavailable")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		conn.Write([]byte{connControl})                   //nolint:errcheck
		conn.Write(data)                                  //nolint:errcheck
		// Half-close the write side so the server sees EOF once it has
		// consumed the input, then drain its responses until it hangs up
		// (the deadline bounds a server that neither answers nor closes).
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite() //nolint:errcheck
		}
		io.Copy(io.Discard, conn) //nolint:errcheck
		conn.Close()

		if expectDead {
			return
		}
		ctl, err := DialControl(n.Addr())
		if err != nil {
			t.Fatalf("control plane wedged after %q: %v", data, err)
		}
		defer ctl.Close()
		if _, err := ctl.Stats(); err != nil {
			t.Fatalf("stats refused after %q: %v", data, err)
		}
	})
}

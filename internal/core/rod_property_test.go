package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
)

// Property: for any positively-loaded operator matrix and any capacities,
// every selector produces a structurally valid plan whose weight matrix
// keeps the capacity-weighted column means at exactly 1.
func TestPlaceQuickProperty(t *testing.T) {
	f := func(seed int64, mRaw, dRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw%30)
		d := 1 + int(dRaw%4)
		n := 1 + int(nRaw%5)
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.05+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.05+rng.Float64())
		}
		c := make(mat.Vec, n)
		for i := range c {
			c[i] = 0.25 + rng.Float64()
		}
		for _, sel := range []Selector{SelectRandom, SelectMaxPlaneDistance, SelectAxisBalance} {
			plan, report, err := Place(lo, c, Config{Selector: sel, Seed: seed})
			if err != nil {
				return false
			}
			if plan.NumOps() != m || plan.N != n {
				return false
			}
			for _, node := range plan.NodeOf {
				if node < 0 || node >= n {
					return false
				}
			}
			ct := c.Sum()
			for k := 0; k < d; k++ {
				var s float64
				for i := 0; i < n; i++ {
					s += report.Weights.At(i, k) * c[i] / ct
				}
				if math.Abs(s-1) > 1e-6 {
					return false
				}
			}
			// Plane distance never exceeds the ideal.
			if report.MinPlaneDistance > feasible.IdealPlaneDistance(d)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBestWithLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lo := mat.NewMatrix(12, 2)
	for j := 0; j < 12; j++ {
		lo.Set(j, rng.Intn(2), 0.2+rng.Float64())
	}
	c := mat.VecOf(1, 1, 1)
	lk := lo.ColSums()
	lb := mat.VecOf(0.5*c.Sum()/lk[0], 0)
	plan, report, err := PlaceBest(lo, c, Config{LowerBound: lb}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps() != 12 {
		t.Fatal("plan incomplete")
	}
	if report == nil || report.Weights == nil {
		t.Fatal("report missing")
	}
	// The restricted evaluation must succeed and be in range.
	r, err := placement.EvaluateFrom(plan, lo, c, lb, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > 1 {
		t.Fatalf("restricted ratio %g", r)
	}
}

func TestPlaceBestDefaultSamples(t *testing.T) {
	lo := mat.MatrixOf([]float64{1, 0}, []float64{0, 1}, []float64{1, 0}, []float64{0, 1})
	if _, _, err := PlaceBest(lo, mat.VecOf(1, 1), Config{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBestPropagatesErrors(t *testing.T) {
	bad := mat.MatrixOf([]float64{1, 0}) // dead variable 1
	if _, _, err := PlaceBest(bad, mat.VecOf(1), Config{}, 100); err == nil {
		t.Fatal("expected error for dead variable")
	}
}

func TestPinnedOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lo := mat.NewMatrix(16, 2)
	for j := 0; j < 16; j++ {
		lo.Set(j, rng.Intn(2), 0.2+rng.Float64())
	}
	c := mat.VecOf(1, 1, 1)
	pins := map[int]int{0: 2, 5: 2, 9: 0}
	plan, report, err := Place(lo, c, Config{
		Selector: SelectMaxPlaneDistance,
		Pinned:   pins,
	})
	if err != nil {
		t.Fatal(err)
	}
	for op, node := range pins {
		if plan.NodeOf[op] != node {
			t.Fatalf("pinned op %d on node %d, want %d", op, plan.NodeOf[op], node)
		}
	}
	if report.PinnedAssignments != 3 {
		t.Fatalf("PinnedAssignments = %d", report.PinnedAssignments)
	}
	if report.ClassIAssignments+report.ClassIIAssignments+report.PinnedAssignments != 16 {
		t.Fatal("assignment counts do not cover all operators")
	}
	// The rest of the placement still balances: plan quality degrades
	// gracefully, not catastrophically, vs the unpinned run.
	free, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance})
	if err != nil {
		t.Fatal(err)
	}
	rPinned, err := placement.Evaluate(plan, lo, c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	rFree, err := placement.Evaluate(free, lo, c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if rPinned < rFree*0.5 {
		t.Fatalf("pinning collapsed the plan: %g vs %g", rPinned, rFree)
	}
}

func TestPinnedValidation(t *testing.T) {
	lo := mat.MatrixOf([]float64{1, 0}, []float64{0, 1})
	c := mat.VecOf(1, 1)
	if _, _, err := Place(lo, c, Config{Pinned: map[int]int{5: 0}}); err == nil {
		t.Fatal("out-of-range pinned op must error")
	}
	if _, _, err := Place(lo, c, Config{Pinned: map[int]int{0: 7}}); err == nil {
		t.Fatal("out-of-range pinned node must error")
	}
}

// Property: ROD is scale-invariant — multiplying all coefficients, or all
// capacities, by a positive constant must not change the deterministic plan.
func TestPlaceScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, d, n := 3+rng.Intn(20), 1+rng.Intn(3), 2+rng.Intn(4)
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.1+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.1+rng.Float64())
		}
		c := make(mat.Vec, n)
		for i := range c {
			c[i] = 1
		}
		base, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance})
		if err != nil {
			t.Fatal(err)
		}
		scaledLo := lo.Clone()
		scaledLo.ScaleInPlace(7.3)
		p2, _, err := Place(scaledLo, c, Config{Selector: SelectMaxPlaneDistance})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Equal(p2) {
			t.Fatal("coefficient scaling changed the plan")
		}
		p3, _, err := Place(lo, c.Scale(3.1), Config{Selector: SelectMaxPlaneDistance})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Equal(p3) {
			t.Fatal("capacity scaling changed the plan")
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

func TestPlaceBalancedIdentityCase(t *testing.T) {
	// 4 identical ops per stream, 2 streams, 2 equal nodes: ROD must reach
	// the ideal — every stream split 2/2 — with ratio exactly 1.
	lo := mat.NewMatrix(8, 2)
	for j := 0; j < 4; j++ {
		lo.Set(j, 0, 1)
	}
	for j := 4; j < 8; j++ {
		lo.Set(j, 1, 1)
	}
	c := mat.VecOf(1, 1)
	plan, report, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := placement.Evaluate(plan, lo, c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("ratio = %g, want 1 (ideal reachable)", ratio)
	}
	if math.Abs(report.MinPlaneDistance-feasible.IdealPlaneDistance(2)) > 1e-9 {
		t.Fatalf("MinPlaneDistance = %g, want ideal %g", report.MinPlaneDistance, feasible.IdealPlaneDistance(2))
	}
	for _, d := range report.MinAxisDistances {
		if math.Abs(d-1) > 1e-9 {
			t.Fatalf("MinAxisDistances = %v, want all 1", report.MinAxisDistances)
		}
	}
}

func TestPhase1OrdersByNormDescending(t *testing.T) {
	lo := mat.MatrixOf(
		[]float64{1, 0},
		[]float64{5, 0},
		[]float64{0, 3},
		[]float64{2, 2},
	)
	_, report, err := Place(lo, mat.VecOf(1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	norms := make([]float64, lo.Rows)
	for j := 0; j < lo.Rows; j++ {
		norms[j] = lo.Row(j).Norm()
	}
	for i := 1; i < len(report.Order); i++ {
		if norms[report.Order[i-1]] < norms[report.Order[i]]-1e-12 {
			t.Fatalf("order %v not descending by norm %v", report.Order, norms)
		}
	}
	if report.Order[0] != 1 {
		t.Fatalf("largest operator (o1) must come first, got %v", report.Order)
	}
}

func TestEveryOperatorAssignedExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(40)
		d := 1 + rng.Intn(5)
		n := 1 + rng.Intn(6)
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.1+rng.Float64())
		}
		// Ensure each column has support.
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.1+rng.Float64())
		}
		c := make(mat.Vec, n)
		for i := range c {
			c[i] = 0.5 + rng.Float64()
		}
		plan, report, err := Place(lo, c, Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumOps() != m {
			t.Fatalf("plan covers %d of %d operators", plan.NumOps(), m)
		}
		if report.ClassIAssignments+report.ClassIIAssignments != m {
			t.Fatalf("class counts %d+%d != %d",
				report.ClassIAssignments, report.ClassIIAssignments, m)
		}
		// Column-sum conservation (constraint 1).
		ln := plan.NodeCoef(lo)
		if !ln.ColSums().Equal(lo.ColSums(), 1e-9) {
			t.Fatal("placement changed per-stream coefficient sums")
		}
		// Capacity-weighted column means of W are exactly 1.
		ct := c.Sum()
		for k := 0; k < d; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += report.Weights.At(i, k) * c[i] / ct
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("weight column %d capacity-mean = %g, want 1", k, s)
			}
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	lo := mat.MatrixOf([]float64{1, 0}, []float64{0, 1})
	c := mat.VecOf(1, 1)
	cases := map[string]func() error{
		"no operators": func() error {
			_, _, err := Place(&mat.Matrix{Rows: 0, Cols: 1}, c, Config{})
			return err
		},
		"no nodes": func() error {
			_, _, err := Place(lo, mat.Vec{}, Config{})
			return err
		},
		"zero capacity": func() error {
			_, _, err := Place(lo, mat.VecOf(1, 0), Config{})
			return err
		},
		"negative coefficient": func() error {
			bad := mat.MatrixOf([]float64{-1, 1}, []float64{1, 1})
			_, _, err := Place(bad, c, Config{})
			return err
		},
		"dead variable": func() error {
			bad := mat.MatrixOf([]float64{1, 0}, []float64{1, 0})
			_, _, err := Place(bad, c, Config{})
			return err
		},
		"lower bound length": func() error {
			_, _, err := Place(lo, c, Config{LowerBound: mat.VecOf(1)})
			return err
		},
		"negative lower bound": func() error {
			_, _, err := Place(lo, c, Config{LowerBound: mat.VecOf(-1, 0)})
			return err
		},
		"min-connections without graph": func() error {
			_, _, err := Place(lo, c, Config{Selector: SelectMinConnections})
			return err
		},
	}
	for name, f := range cases {
		if f() == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSelectorStrings(t *testing.T) {
	if SelectRandom.String() != "random" ||
		SelectMaxPlaneDistance.String() != "max-plane-distance" ||
		SelectMinConnections.String() != "min-connections" {
		t.Fatal("selector names wrong")
	}
	if Selector(9).String() == "" {
		t.Fatal("unknown selector must render")
	}
}

func TestDeterministicWithMaxPlaneDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lo := mat.NewMatrix(20, 3)
	for i := range lo.Data {
		lo.Data[i] = rng.Float64()
	}
	c := mat.VecOf(1, 1, 1)
	a, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("max-plane-distance selection must ignore the seed")
	}
}

func TestRandomSelectorSeedReproducible(t *testing.T) {
	lo := mat.NewMatrix(12, 2)
	rng := rand.New(rand.NewSource(5))
	for i := range lo.Data {
		lo.Data[i] = rng.Float64()
	}
	c := mat.VecOf(1, 1, 1)
	a, _, _ := Place(lo, c, Config{Seed: 7})
	b, _, _ := Place(lo, c, Config{Seed: 7})
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce the plan")
	}
}

// ROD must land close to the brute-force optimum on small instances
// (Section 7.3.1 reports average 0.95, minimum 0.82 of optimal).
func TestRODCloseToOptimalOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ratios []float64
	for trial := 0; trial < 15; trial++ {
		m := 6 + rng.Intn(5)
		d := 2
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.2+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.2+rng.Float64())
		}
		c := mat.VecOf(1, 1)
		_, opt, err := placement.Optimal(lo, c, placement.OptimalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance})
		if err != nil {
			t.Fatal(err)
		}
		got, err := placement.Evaluate(plan, lo, c, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if opt > 0 {
			ratios = append(ratios, got/opt)
		}
	}
	var sum, min float64 = 0, 2
	for _, r := range ratios {
		sum += r
		if r < min {
			min = r
		}
	}
	avg := sum / float64(len(ratios))
	if avg < 0.9 {
		t.Fatalf("ROD/OPT average = %g, want >= 0.9", avg)
	}
	if min < 0.75 {
		t.Fatalf("ROD/OPT minimum = %g, want >= 0.75", min)
	}
}

func TestLowerBoundAwareROD(t *testing.T) {
	// Construct a case where the floor matters: two streams, stream 0 has a
	// high guaranteed rate. The LB-aware run must never do worse on the
	// restricted ratio.
	rng := rand.New(rand.NewSource(23))
	worse := 0
	for trial := 0; trial < 10; trial++ {
		m, d := 10, 2
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.2+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.2+rng.Float64())
		}
		c := mat.VecOf(1, 1, 1)
		lk := lo.ColSums()
		// Floor at 40% of stream 0's ideal-axis budget.
		lb := mat.VecOf(0.4*c.Sum()/lk[0], 0)

		base, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance})
		if err != nil {
			t.Fatal(err)
		}
		aware, _, err := Place(lo, c, Config{Selector: SelectMaxPlaneDistance, LowerBound: lb})
		if err != nil {
			t.Fatal(err)
		}
		rBase, err := placement.EvaluateFrom(base, lo, c, lb, 4000)
		if err != nil {
			t.Fatal(err)
		}
		rAware, err := placement.EvaluateFrom(aware, lo, c, lb, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if rAware < rBase-0.03 {
			worse++
		}
	}
	if worse > 2 {
		t.Fatalf("LB-aware ROD lost on the restricted set in %d/10 trials", worse)
	}
}

func TestSelectMinConnectionsReducesCuts(t *testing.T) {
	// A deep chain per stream: the connection-aware Class I choice should
	// produce no more inter-node streams than the random one, on average.
	b := query.NewBuilder()
	for k := 0; k < 3; k++ {
		s := b.Input("")
		for j := 0; j < 8; j++ {
			s = b.Delay("", 0.001, 1, s)
		}
	}
	g := b.MustBuild()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mat.VecOf(1, 1, 1)
	cuts := func(p *placement.Plan) int {
		n := 0
		for _, a := range g.Arcs() {
			if p.NodeOf[a.From] != p.NodeOf[a.To] {
				n++
			}
		}
		return n
	}
	connPlan, _, err := Place(lm.Coef, c, Config{Selector: SelectMinConnections, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	randTotal := 0
	const trials = 10
	for s := 0; s < trials; s++ {
		p, _, err := Place(lm.Coef, c, Config{Seed: int64(s)})
		if err != nil {
			t.Fatal(err)
		}
		randTotal += cuts(p)
	}
	if float64(cuts(connPlan)) > float64(randTotal)/trials {
		t.Fatalf("min-connections cuts %d exceed random average %g",
			cuts(connPlan), float64(randTotal)/trials)
	}
}

func TestPlaceGraphWithJoin(t *testing.T) {
	b := query.NewBuilder()
	i1, i2 := b.Input("a"), b.Input("b")
	f1 := b.Filter("f1", 0.001, 0.8, i1)
	f2 := b.Filter("f2", 0.001, 0.8, i2)
	j := b.Join("j", 0.0001, 0.05, 1.0, f1, f2)
	b.Aggregate("agg", 0.002, 0.1, 5, j)
	g := b.MustBuild()

	plan, report, lm, err := PlaceGraph(g, mat.VecOf(1, 1), Config{Selector: SelectMaxPlaneDistance})
	if err != nil {
		t.Fatal(err)
	}
	if lm.D() != 3 {
		t.Fatalf("expected 3 variables (2 inputs + join cut), got %d", lm.D())
	}
	if plan.NumOps() != g.NumOps() {
		t.Fatal("plan must cover all operators")
	}
	if report.MinPlaneDistance <= 0 {
		t.Fatalf("MinPlaneDistance = %g", report.MinPlaneDistance)
	}
}

func TestPlaceGraphPropagatesModelErrors(t *testing.T) {
	g := &query.Graph{}
	if _, _, _, err := PlaceGraph(g, mat.VecOf(1), Config{}); err == nil {
		t.Fatal("invalid graph must error")
	}
}

func TestGraphOpCountMismatch(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("i")
	b.Map("m", 1, in)
	g := b.MustBuild()
	lo := mat.MatrixOf([]float64{1}, []float64{1}) // 2 rows, graph has 1 op
	if _, _, err := Place(lo, mat.VecOf(1), Config{Graph: g}); err == nil {
		t.Fatal("op-count mismatch must error")
	}
}

// The headline claim: ROD yields a larger feasible set than every baseline
// on random multi-stream workloads (Figure 14's ordering, in miniature).
func TestRODBeatsBaselinesOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const trials = 8
	var rodSum, llfSum, randSum float64
	for trial := 0; trial < trials; trial++ {
		m, d, n := 30, 3, 4
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.1+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.1+rng.Float64())
		}
		c := mat.VecOf(1, 1, 1, 1)

		rodPlan, _, err := Place(lo, c, Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		rates := make(mat.Vec, d)
		for k := range rates {
			rates[k] = rng.Float64()
		}
		llfPlan, err := placement.LLF(lo, c, rates)
		if err != nil {
			t.Fatal(err)
		}
		randPlan := placement.Random(m, n, rng)

		const samples = 3000
		r1, _ := placement.Evaluate(rodPlan, lo, c, samples)
		r2, _ := placement.Evaluate(llfPlan, lo, c, samples)
		r3, _ := placement.Evaluate(randPlan, lo, c, samples)
		rodSum += r1
		llfSum += r2
		randSum += r3
	}
	if rodSum <= llfSum {
		t.Fatalf("ROD average %g must beat LLF %g", rodSum/trials, llfSum/trials)
	}
	if rodSum <= randSum {
		t.Fatalf("ROD average %g must beat Random %g", rodSum/trials, randSum/trials)
	}
}

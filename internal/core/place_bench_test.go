package core

import (
	"math/rand"
	"testing"

	"rodsp/internal/mat"
)

func benchWorkload(m, d, n int) (*mat.Matrix, mat.Vec) {
	rng := rand.New(rand.NewSource(11))
	lo := mat.NewMatrix(m, d)
	for j := 0; j < m; j++ {
		lo.Set(j, rng.Intn(d), 0.05+rng.Float64())
	}
	for k := 0; k < d; k++ {
		lo.Set(rng.Intn(m), k, 0.05+rng.Float64())
	}
	c := make(mat.Vec, n)
	for i := range c {
		c[i] = 0.5 + rng.Float64()
	}
	return lo, c
}

func BenchmarkPlace(b *testing.B) {
	lo, c := benchWorkload(200, 5, 10)
	cfg := Config{Selector: SelectMaxPlaneDistance}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Place(lo, c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceBest(b *testing.B) {
	lo, c := benchWorkload(200, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PlaceBest(lo, c, Config{}, 3000); err != nil {
			b.Fatal(err)
		}
	}
}

// Package core implements ROD — Resilient Operator Distribution — the
// paper's primary contribution (Section 5), with the Section 6 extensions:
// general lower bounds on input rates and pluggable Class-I tie-breaking
// (including the communication-aware minimum-inter-node-streams choice).
//
// The algorithm has two phases. Phase 1 sorts operators by the Euclidean
// norm of their load coefficient vectors, descending, so high-impact
// operators are placed while the most freedom remains. Phase 2 walks the
// sorted list; for each operator it partitions nodes into Class I (the
// candidate hyperplane after assignment still lies entirely on or above the
// ideal hyperplane — i.e. every normalized weight w_ik stays ≤ 1, so the
// assignment cannot shrink the final feasible set) and Class II (the rest).
// A Class I node is chosen when one exists (following the MMAD heuristic);
// otherwise the Class II node with the maximum candidate plane distance is
// chosen (the MMPD heuristic).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/par"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// Selector chooses among Class I nodes, where any choice preserves the
// reachable feasible set; the paper notes a random node "or some other
// criteria" may be used (Section 5.2).
type Selector int

const (
	// SelectRandom picks a uniformly random Class I node (the paper's
	// default formulation).
	SelectRandom Selector = iota
	// SelectMaxPlaneDistance picks the Class I node keeping the maximum
	// candidate plane distance — fully deterministic.
	SelectMaxPlaneDistance
	// SelectMinConnections picks the Class I node minimizing the number of
	// new inter-node streams (Section 5.2's communication-aware choice);
	// requires Config.Graph.
	SelectMinConnections
	// SelectAxisBalance is this repository's refinement: Class I choices
	// follow the max-plane-distance rule, but Class II placements maximize
	// plane distance *divided by the node's worst axis weight*, penalizing
	// the deepest cut into the ideal simplex. It clearly beats the paper's
	// plain distance rule on operator-rich workloads and loses on sparse
	// ones; PlaceBest runs both and keeps the winner.
	SelectAxisBalance
)

// String names the selector.
func (s Selector) String() string {
	switch s {
	case SelectRandom:
		return "random"
	case SelectMaxPlaneDistance:
		return "max-plane-distance"
	case SelectMinConnections:
		return "min-connections"
	case SelectAxisBalance:
		return "axis-balance"
	default:
		return fmt.Sprintf("selector(%d)", int(s))
	}
}

// Ordering selects the phase-1 operator order. The paper sorts by
// descending coefficient norm so high-impact operators are placed while
// freedom remains (like LPT scheduling and first-fit-decreasing packing);
// the alternatives exist for the ordering ablation.
type Ordering int

const (
	// OrderNormDescending is the paper's phase 1 (the default).
	OrderNormDescending Ordering = iota
	// OrderNormAscending places small operators first (the classic greedy
	// mistake — kept for the ablation).
	OrderNormAscending
	// OrderRandom shuffles the operators (seeded by Config.Seed).
	OrderRandom
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderNormDescending:
		return "norm-desc"
	case OrderNormAscending:
		return "norm-asc"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Config tunes a ROD run.
type Config struct {
	// LowerBound is the Section 6.1 workload floor B (raw rates, length d);
	// nil optimizes against the origin.
	LowerBound mat.Vec
	// Selector picks among Class I nodes; default SelectRandom.
	Selector Selector
	// Ordering overrides the phase-1 operator order (ablation support);
	// default OrderNormDescending.
	Ordering Ordering
	// Seed drives SelectRandom and OrderRandom.
	Seed int64
	// Graph supplies connectivity for SelectMinConnections.
	Graph *query.Graph
	// Pinned forces specific operators onto specific nodes (operator row →
	// node index) before the greedy phase runs — source/sink affinity,
	// licensing constraints, co-location requirements. Pinned load is part
	// of every subsequent Class I/II decision.
	Pinned map[int]int
}

// Report captures the decisions of a ROD run for inspection and tests.
type Report struct {
	// Order is the phase-1 operator order (indices into L^o rows).
	Order []int
	// ClassIAssignments and ClassIIAssignments count how operators were
	// placed; PinnedAssignments counts pre-placed (Config.Pinned) operators.
	ClassIAssignments, ClassIIAssignments, PinnedAssignments int
	// Weights is the final normalized weight matrix W.
	Weights *mat.Matrix
	// MinPlaneDistance is the final MMPD objective value r (measured from
	// the normalized lower bound when one is configured).
	MinPlaneDistance float64
	// MinAxisDistances is the final per-axis MMAD metric.
	MinAxisDistances mat.Vec
}

// Place runs ROD over an operator load coefficient matrix and node
// capacities, returning the plan and a report.
func Place(lo *mat.Matrix, c mat.Vec, cfg Config) (*placement.Plan, *Report, error) {
	m, d := lo.Rows, lo.Cols
	n := len(c)
	if m == 0 {
		return nil, nil, fmt.Errorf("core: no operators to place")
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("core: no nodes to place onto")
	}
	for i, ci := range c {
		if ci <= 0 {
			return nil, nil, fmt.Errorf("core: node %d capacity %g must be positive", i, ci)
		}
	}
	for j := 0; j < m; j++ {
		for k := 0; k < d; k++ {
			if lo.At(j, k) < 0 {
				return nil, nil, fmt.Errorf("core: negative load coefficient l^o[%d][%d] = %g", j, k, lo.At(j, k))
			}
		}
	}
	lk := lo.ColSums()
	for k, l := range lk {
		if l <= 0 {
			return nil, nil, fmt.Errorf("core: variable %d has zero total load coefficient (stream feeds no operator)", k)
		}
	}
	ct := c.Sum()

	// Normalized lower bound b_k = B_k·l_k/C_T (zero when not configured).
	b := mat.NewVec(d)
	if cfg.LowerBound != nil {
		if len(cfg.LowerBound) != d {
			return nil, nil, fmt.Errorf("core: lower bound has %d entries for %d variables", len(cfg.LowerBound), d)
		}
		for k := range b {
			if cfg.LowerBound[k] < 0 {
				return nil, nil, fmt.Errorf("core: negative lower bound %g for variable %d", cfg.LowerBound[k], k)
			}
		}
		b = feasible.Normalize(cfg.LowerBound, lk, ct)
	}
	if cfg.Selector == SelectMinConnections && cfg.Graph == nil {
		return nil, nil, fmt.Errorf("core: SelectMinConnections requires Config.Graph")
	}
	if cfg.Graph != nil && cfg.Graph.NumOps() != m {
		return nil, nil, fmt.Errorf("core: graph has %d operators, L^o has %d rows", cfg.Graph.NumOps(), m)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Phase 1: order by ‖l^o_j‖ descending (index ascending on ties), or
	// per the ablation override.
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		norms[j] = lo.Row(j).Norm()
	}
	switch cfg.Ordering {
	case OrderNormAscending:
		sort.SliceStable(order, func(a, x int) bool { return norms[order[a]] < norms[order[x]] })
	case OrderRandom:
		rng.Shuffle(m, func(a, x int) { order[a], order[x] = order[x], order[a] })
	default:
		sort.SliceStable(order, func(a, x int) bool { return norms[order[a]] > norms[order[x]] })
	}

	// Phase 2: greedy assignment. Pinned operators are placed first so
	// their load shapes every subsequent decision.
	//
	// The incremental compute plane: per-node accumulated load rows (ln)
	// are the only mutable state, updated in O(d) on each assignment, and
	// every candidate (operator, node) pair is scored in a single fused
	// O(d) pass that never materializes the candidate weight row — the
	// Class I flag, squared norm, lower-bound dot product and worst axis
	// weight accumulate together, in the same index order the naive
	// matrix rebuild would use, so every decision (and therefore the
	// plan) is bit-identical to full recomputation.
	nodeOf := make([]int, m)
	ln := mat.NewMatrix(n, d)
	report := &Report{Order: order}
	for j, node := range cfg.Pinned {
		if j < 0 || j >= m {
			return nil, nil, fmt.Errorf("core: pinned operator %d outside [0,%d)", j, m)
		}
		if node < 0 || node >= n {
			return nil, nil, fmt.Errorf("core: operator %d pinned to node %d outside [0,%d)", j, node, n)
		}
		nodeOf[j] = node
		ln.Row(node).AddInPlace(lo.Row(j))
		report.PinnedAssignments++
	}
	share := make([]float64, n)
	for i := range share {
		share[i] = c[i] / ct
	}
	cand := candScores{
		norm: make([]float64, n),
		dotB: make([]float64, n),
		maxW: make([]float64, n),
	}
	classI := make([]int, 0, n)
	placedPrefix := make([]int, 0, m) // order prefix, every entry assigned
	const eps = 1e-9
	for _, j := range order {
		if _, pinned := cfg.Pinned[j]; pinned {
			placedPrefix = append(placedPrefix, j)
			continue
		}
		loRow := lo.Row(j)
		classI = classI[:0]
		for i := 0; i < n; i++ {
			lnRow := ln.Row(i)
			sh := share[i]
			inClassI := true
			var s2, sb, maxV float64
			for k := 0; k < d; k++ {
				v := (lnRow[k] + loRow[k]) / lk[k] / sh
				if v > 1+eps {
					inClassI = false
				}
				s2 += v * v
				sb += v * b[k]
				if k == 0 || v > maxV {
					maxV = v
				}
			}
			cand.norm[i] = math.Sqrt(s2)
			cand.dotB[i] = sb
			cand.maxW[i] = maxV
			if inClassI {
				classI = append(classI, i)
			}
		}
		var dest int
		if len(classI) > 0 {
			dest = selectClassI(classI, &cand, placedPrefix, nodeOf, j, cfg, rng)
			report.ClassIAssignments++
		} else {
			dest = selectClassII(&cand, cfg)
			report.ClassIIAssignments++
		}
		nodeOf[j] = dest
		ln.Row(dest).AddInPlace(loRow)
		placedPrefix = append(placedPrefix, j)
	}

	plan := &placement.Plan{NodeOf: nodeOf, N: n}
	wFinal, err := feasible.Weights(ln, c, lk)
	if err != nil {
		return nil, nil, err
	}
	report.Weights = wFinal
	report.MinPlaneDistance = feasible.MinPlaneDistanceFrom(wFinal, b)
	report.MinAxisDistances = feasible.MinAxisDistances(wFinal)
	return plan, report, nil
}

// candScores holds the fused per-candidate statistics of one Phase 2 step:
// for every node, the candidate weight row's Euclidean norm, its dot
// product with the normalized lower bound, and its worst axis weight —
// everything any selector needs, computed without building the row.
type candScores struct {
	norm, dotB, maxW []float64
}

// distOrigin is feasible.PlaneDistance of the candidate row: 1/‖W_i‖, with
// an empty row at infinity.
func (cs *candScores) distOrigin(i int) float64 {
	if cs.norm[i] == 0 {
		return math.Inf(1)
	}
	return 1 / cs.norm[i]
}

// distFromB is feasible.PlaneDistanceFrom of the candidate row:
// (1 − W_i·b)/‖W_i‖, the Section 6.1 lower-bound metric.
func (cs *candScores) distFromB(i int) float64 {
	if cs.norm[i] == 0 {
		return math.Inf(1)
	}
	return (1 - cs.dotB[i]) / cs.norm[i]
}

// selectClassII picks the destination when every node's candidate
// hyperplane already dips below the ideal one. The paper's rule is the
// maximum candidate plane distance (measured from the Section 6.1 lower
// bound when configured); SelectAxisBalance maximizes that distance divided
// by the node's worst axis weight, penalizing the deepest cut into the
// ideal simplex.
func selectClassII(cand *candScores, cfg Config) int {
	n := len(cand.norm)
	if cfg.Selector == SelectAxisBalance {
		best, bestScore := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			// Distance rewarded, worst-axis overshoot penalized: the deepest
			// axis cut dominates the feasible-set loss once rows exceed the
			// ideal budget.
			score := cand.distFromB(i) / cand.maxW[i]
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	}
	best, bestDist := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		if dist := cand.distFromB(i); dist > bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

func selectClassI(candidates []int, cand *candScores, placedPrefix []int, nodeOf []int, j int, cfg Config, rng *rand.Rand) int {
	switch cfg.Selector {
	case SelectMaxPlaneDistance, SelectAxisBalance:
		// Class I choices cannot shrink the reachable feasible set, so the
		// tie-break always uses the origin-based plane distance: measuring
		// from a diagonal lower bound here would systematically favour
		// axis-concentrated nodes (the Figure 8 bottleneck shape). The
		// Section 6.1 from-the-floor metric applies only to the Class II
		// (MMPD) decision.
		best, bestDist := candidates[0], math.Inf(-1)
		for _, i := range candidates {
			if dist := cand.distOrigin(i); dist > bestDist {
				best, bestDist = i, dist
			}
		}
		return best
	case SelectMinConnections:
		// Maximize already-placed neighbors on the destination (equivalent
		// to minimizing newly created inter-node streams).
		best, bestScore := candidates[0], -1
		for _, i := range candidates {
			score := 0
			for _, prev := range placedPrefix {
				if nodeOf[prev] == i && cfg.Graph.Connected(query.OpID(j), query.OpID(prev)) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	default: // SelectRandom
		return candidates[rng.Intn(len(candidates))]
	}
}

// PlaceBest is a two-run portfolio: it places with the paper's Class II
// rule (SelectMaxPlaneDistance) and with the SelectAxisBalance refinement,
// estimates each plan's feasible-set ratio by QMC over the ideal simplex
// (restricted to the configured lower bound, if any), and returns the
// better plan with its report. Neither rule dominates alone: the paper's
// wins when operators are few and coarse, the refinement on operator-rich
// workloads.
//
// The two arms run concurrently on the par worker pool; the winner is
// chosen by comparing the arms in a fixed order, so the result is
// identical to the serial portfolio for any worker count.
func PlaceBest(lo *mat.Matrix, c mat.Vec, cfg Config, samples int) (*placement.Plan, *Report, error) {
	if samples <= 0 {
		samples = 2000
	}
	lk := lo.ColSums()
	selectors := []Selector{SelectMaxPlaneDistance, SelectAxisBalance}
	type arm struct {
		plan   *placement.Plan
		report *Report
		ratio  float64
	}
	arms, err := par.Map(len(selectors), func(i int) (arm, error) {
		c2 := cfg
		c2.Selector = selectors[i]
		plan, report, err := Place(lo, c, c2)
		if err != nil {
			return arm{}, err
		}
		var ratio float64
		if cfg.LowerBound != nil {
			nb := feasible.Normalize(cfg.LowerBound, lk, c.Sum())
			ratio, err = feasible.RatioToIdealFrom(report.Weights, nb, samples)
		} else {
			ratio, err = feasible.RatioAuto(report.Weights, samples)
		}
		if err != nil {
			return arm{}, err
		}
		return arm{plan, report, ratio}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var (
		bestPlan   *placement.Plan
		bestReport *Report
		bestRatio  = -1.0
	)
	for _, a := range arms {
		if a.ratio > bestRatio {
			bestPlan, bestReport, bestRatio = a.plan, a.report, a.ratio
		}
	}
	return bestPlan, bestReport, nil
}

// PlaceGraph builds the (linearized) load model of g and runs ROD on it.
// It returns the plan, the report and the load model (whose variable list
// explains the weight-matrix columns).
func PlaceGraph(g *query.Graph, c mat.Vec, cfg Config) (*placement.Plan, *Report, *query.LoadModel, error) {
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Graph == nil {
		cfg.Graph = g
	}
	plan, report, err := Place(lm.Coef, c, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, report, lm, nil
}

package core

import (
	"fmt"
	"math"

	"rodsp/internal/mat"
	"rodsp/internal/query"
)

// ShardPlanConfig tunes the sharding planner.
type ShardPlanConfig struct {
	// MaxShards caps k per operator (default 8).
	MaxShards int
	// TargetUtil is the fraction of the largest node's capacity one shard
	// should sit at after splitting (default 0.75): k is the smallest count
	// bringing the per-shard load under TargetUtil × max capacity.
	TargetUtil float64
	// Shard supplies the shuffle-cost terms (K is overridden per decision);
	// zero value uses query.DefaultShardConfig's costs.
	Shard query.ShardConfig
}

// ShardDecision records one operator the planner split.
type ShardDecision struct {
	Op   string  // the (pre-shard) operator name
	K    int     // chosen shard count
	Load float64 // standalone load at the forecast point
}

// PlanShards walks the graph and shards every operator whose standalone
// load at the forecast rate point exceeds a single node's capacity — the
// condition under which no placement can be feasible, since ROD allocates
// whole operators. For each such operator it picks the smallest k that
// brings the per-shard load under TargetUtil of the largest node (clamped
// to [2, MaxShards]) and applies the Shards transform. The sharded graph's
// replicas are first-class operators: ROD places them like any other.
//
// The planner is strictly serial and iterates operators in id order, so the
// resulting graph (and any plan built from it) is deterministic for a given
// input, independent of par.SetWorkers.
func PlanShards(g *query.Graph, caps mat.Vec, forecast mat.Vec, cfg ShardPlanConfig) (*query.Graph, []ShardDecision, error) {
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 8
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		cfg.TargetUtil = 0.75
	}
	if cfg.Shard.SplitCost == 0 && cfg.Shard.MergeCost == 0 && cfg.Shard.XferCost == 0 {
		def := query.DefaultShardConfig(2)
		cfg.Shard.SplitCost, cfg.Shard.MergeCost, cfg.Shard.XferCost = def.SplitCost, def.MergeCost, def.XferCost
	}
	maxCap := 0.0
	for _, c := range caps {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxCap <= 0 {
		return nil, nil, fmt.Errorf("core: PlanShards needs a positive node capacity")
	}

	var decisions []ShardDecision
	for {
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, nil, err
		}
		loads, err := lm.ActualLoads(forecast)
		if err != nil {
			return nil, nil, err
		}
		target := query.OpID(-1)
		for _, op := range g.Ops() {
			if op.Shard != query.ShardNone || op.Kind == query.Join || op.Kind == query.Union {
				continue
			}
			if loads[op.ID] > maxCap {
				target = op.ID
				break
			}
		}
		if target < 0 {
			return g, decisions, nil
		}
		op := g.Op(target)
		k := int(math.Ceil(loads[target] / (cfg.TargetUtil * maxCap)))
		if k < 2 {
			k = 2
		}
		if k > cfg.MaxShards {
			k = cfg.MaxShards
		}
		sc := cfg.Shard
		sc.K = k
		next, err := query.Shards(g, target, sc)
		if err != nil {
			return nil, nil, fmt.Errorf("core: sharding %q: %w", op.Name, err)
		}
		decisions = append(decisions, ShardDecision{Op: op.Name, K: k, Load: loads[target]})
		g = next
	}
}

package core

import (
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/par"
	"rodsp/internal/query"
)

func shardHotGraph() *query.Graph {
	b := query.NewBuilder()
	in := b.Input("hot")
	pre := b.Delay("pre", 0.00005, 1, in)
	h := b.Delay("hotop", 0.0012, 1, pre)
	b.Delay("tail", 0.00005, 1, h)
	return b.MustBuild()
}

func TestPlanShardsSplitsHotOperator(t *testing.T) {
	g := shardHotGraph()
	caps := mat.Vec{1, 1, 1, 1}
	// 2500 tup/s × 1.2 ms = 3.0 load for hotop: three times one node.
	forecast := mat.Vec{2500}
	sg, dec, err := PlanShards(g, caps, forecast, ShardPlanConfig{MaxShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || dec[0].Op != "hotop" {
		t.Fatalf("decisions: %+v", dec)
	}
	if dec[0].K != 4 { // ceil(3.0 / 0.75) = 4
		t.Fatalf("k = %d, want 4", dec[0].K)
	}
	groups, err := query.ShardGroups(sg)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].K != 4 {
		t.Fatalf("groups: %+v", groups)
	}
	// Each replica's load now fits a node.
	lm, err := query.BuildLoadModel(sg)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := lm.ActualLoads(forecast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range groups[0].Replicas {
		if loads[r] > 1 {
			t.Fatalf("replica %d load %g still exceeds capacity", r, loads[r])
		}
	}
	// A cold graph is untouched.
	cold, dec2, err := PlanShards(g, caps, mat.Vec{100}, ShardPlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec2) != 0 || cold.NumOps() != g.NumOps() {
		t.Fatalf("cold graph was sharded: %+v", dec2)
	}
}

func TestShardedPlanDeterministicAcrossWorkers(t *testing.T) {
	g := shardHotGraph()
	caps := mat.Vec{1, 1, 1, 1}
	forecast := mat.Vec{2500}

	type result struct {
		nodeOf []int
		dec    []ShardDecision
	}
	run := func() result {
		sg, dec, err := PlanShards(g, caps, forecast, ShardPlanConfig{MaxShards: 8})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, _, err := PlaceGraph(sg, caps, Config{Selector: SelectMaxPlaneDistance, LowerBound: forecast})
		if err != nil {
			t.Fatal(err)
		}
		return result{nodeOf: plan.NodeOf, dec: dec}
	}
	defer par.SetWorkers(0)
	var base result
	for i, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		r := run()
		if i == 0 {
			base = r
			continue
		}
		if len(r.nodeOf) != len(base.nodeOf) {
			t.Fatalf("workers=%d: plan size differs", w)
		}
		for j := range r.nodeOf {
			if r.nodeOf[j] != base.nodeOf[j] {
				t.Fatalf("workers=%d: plan differs at op %d (%d vs %d)", w, j, r.nodeOf[j], base.nodeOf[j])
			}
		}
		if len(r.dec) != len(base.dec) || r.dec[0] != base.dec[0] {
			t.Fatalf("workers=%d: decisions differ: %+v vs %+v", w, r.dec, base.dec)
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// placeNaive is the pre-refactor Phase 2: for every (operator, node)
// candidate it clones the accumulated load matrix, rebuilds the full
// normalized weight matrix with feasible.Weights and scores the candidate
// row with the geometry helpers. It is the O(m·n·n·d) reference the fused
// incremental scorer in Place must reproduce bit for bit.
func placeNaive(lo *mat.Matrix, c mat.Vec, cfg Config) (*placement.Plan, *Report, error) {
	m, d := lo.Rows, lo.Cols
	n := len(c)
	lk := lo.ColSums()
	ct := c.Sum()
	b := mat.NewVec(d)
	if cfg.LowerBound != nil {
		b = feasible.Normalize(cfg.LowerBound, lk, ct)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		norms[j] = lo.Row(j).Norm()
	}
	switch cfg.Ordering {
	case OrderNormAscending:
		sort.SliceStable(order, func(a, x int) bool { return norms[order[a]] < norms[order[x]] })
	case OrderRandom:
		rng.Shuffle(m, func(a, x int) { order[a], order[x] = order[x], order[a] })
	default:
		sort.SliceStable(order, func(a, x int) bool { return norms[order[a]] > norms[order[x]] })
	}

	nodeOf := make([]int, m)
	ln := mat.NewMatrix(n, d)
	report := &Report{Order: order}
	for j, node := range cfg.Pinned {
		nodeOf[j] = node
		ln.Row(node).AddInPlace(lo.Row(j))
		report.PinnedAssignments++
	}
	var placed []int
	const eps = 1e-9
	for _, j := range order {
		if _, pinned := cfg.Pinned[j]; pinned {
			placed = append(placed, j)
			continue
		}
		var classI []int
		dOrigin := make([]float64, n)
		dFromB := make([]float64, n)
		maxW := make([]float64, n)
		for i := 0; i < n; i++ {
			trial := ln.Clone()
			trial.Row(i).AddInPlace(lo.Row(j))
			w, err := feasible.Weights(trial, c, lk)
			if err != nil {
				return nil, nil, err
			}
			row := w.Row(i)
			dOrigin[i] = feasible.PlaneDistance(row)
			dFromB[i] = feasible.PlaneDistanceFrom(row, b)
			maxW[i] = row.Max()
			if maxW[i] <= 1+eps {
				classI = append(classI, i)
			}
		}
		var dest int
		if len(classI) > 0 {
			switch cfg.Selector {
			case SelectMaxPlaneDistance, SelectAxisBalance:
				best, bestDist := classI[0], math.Inf(-1)
				for _, i := range classI {
					if dOrigin[i] > bestDist {
						best, bestDist = i, dOrigin[i]
					}
				}
				dest = best
			case SelectMinConnections:
				best, bestScore := classI[0], -1
				for _, i := range classI {
					score := 0
					for _, prev := range placed {
						if nodeOf[prev] == i && cfg.Graph.Connected(query.OpID(j), query.OpID(prev)) {
							score++
						}
					}
					if score > bestScore {
						best, bestScore = i, score
					}
				}
				dest = best
			default:
				dest = classI[rng.Intn(len(classI))]
			}
			report.ClassIAssignments++
		} else {
			best, bestScore := 0, math.Inf(-1)
			for i := 0; i < n; i++ {
				score := dFromB[i]
				if cfg.Selector == SelectAxisBalance {
					score = dFromB[i] / maxW[i]
				}
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			dest = best
			report.ClassIIAssignments++
		}
		nodeOf[j] = dest
		ln.Row(dest).AddInPlace(lo.Row(j))
		placed = append(placed, j)
	}

	plan := &placement.Plan{NodeOf: nodeOf, N: n}
	w, err := feasible.Weights(ln, c, lk)
	if err != nil {
		return nil, nil, err
	}
	report.Weights = w
	report.MinPlaneDistance = feasible.MinPlaneDistanceFrom(w, b)
	report.MinAxisDistances = feasible.MinAxisDistances(w)
	return plan, report, nil
}

// Property: the incremental fused scorer is bit-identical to naive full
// recomputation — same plan, same class counts, same final weight matrix
// and geometry metrics — across random tree workloads, every selector and
// every ordering, with and without lower bounds and pinned operators.
func TestPlaceMatchesNaiveRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	selectors := []Selector{SelectRandom, SelectMaxPlaneDistance, SelectMinConnections, SelectAxisBalance}
	orderings := []Ordering{OrderNormDescending, OrderNormAscending, OrderRandom}
	for trial := 0; trial < 100; trial++ {
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams:      1 + rng.Intn(3),
			OpsPerStream: 1 + rng.Intn(6),
			Seed:         rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			t.Fatal(err)
		}
		lo := lm.Coef
		n := 2 + rng.Intn(5)
		c := make(mat.Vec, n)
		for i := range c {
			c[i] = 0.25 + rng.Float64()
		}
		cfg := Config{Seed: rng.Int63(), Graph: g}
		if trial%2 == 1 {
			lk := lo.ColSums()
			lb := mat.NewVec(lo.Cols)
			for k := range lb {
				lb[k] = 0.3 * rng.Float64() * c.Sum() / lk[k] / float64(lo.Cols)
			}
			cfg.LowerBound = lb
		}
		if trial%3 == 2 && lo.Rows >= 2 {
			// Pin two operators to distinct nodes so pinned load accumulation
			// has a unique floating-point order regardless of map iteration.
			cfg.Pinned = map[int]int{0: 0, 1: 1 % n}
			if cfg.Pinned[0] == cfg.Pinned[1] {
				cfg.Pinned = map[int]int{0: 0}
			}
		}
		for _, sel := range selectors {
			for _, ord := range orderings {
				cfg.Selector, cfg.Ordering = sel, ord
				plan, rep, err := Place(lo, c, cfg)
				if err != nil {
					t.Fatalf("trial %d %v/%v: Place: %v", trial, sel, ord, err)
				}
				nPlan, nRep, err := placeNaive(lo, c, cfg)
				if err != nil {
					t.Fatalf("trial %d %v/%v: placeNaive: %v", trial, sel, ord, err)
				}
				for j := range plan.NodeOf {
					if plan.NodeOf[j] != nPlan.NodeOf[j] {
						t.Fatalf("trial %d %v/%v: operator %d on node %d, naive says %d",
							trial, sel, ord, j, plan.NodeOf[j], nPlan.NodeOf[j])
					}
				}
				if rep.ClassIAssignments != nRep.ClassIAssignments ||
					rep.ClassIIAssignments != nRep.ClassIIAssignments ||
					rep.PinnedAssignments != nRep.PinnedAssignments {
					t.Fatalf("trial %d %v/%v: class counts (%d,%d,%d) vs naive (%d,%d,%d)",
						trial, sel, ord,
						rep.ClassIAssignments, rep.ClassIIAssignments, rep.PinnedAssignments,
						nRep.ClassIAssignments, nRep.ClassIIAssignments, nRep.PinnedAssignments)
				}
				for i := range rep.Order {
					if rep.Order[i] != nRep.Order[i] {
						t.Fatalf("trial %d %v/%v: order differs at %d", trial, sel, ord, i)
					}
				}
				if !rep.Weights.Equal(nRep.Weights, 0) {
					t.Fatalf("trial %d %v/%v: weight matrices differ bit-wise", trial, sel, ord)
				}
				if rep.MinPlaneDistance != nRep.MinPlaneDistance {
					t.Fatalf("trial %d %v/%v: MinPlaneDistance %v vs %v",
						trial, sel, ord, rep.MinPlaneDistance, nRep.MinPlaneDistance)
				}
				if !rep.MinAxisDistances.Equal(nRep.MinAxisDistances, 0) {
					t.Fatalf("trial %d %v/%v: MinAxisDistances %v vs %v",
						trial, sel, ord, rep.MinAxisDistances, nRep.MinAxisDistances)
				}
			}
		}
	}
}

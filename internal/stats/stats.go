// Package stats provides the statistics toolkit the experiments rely on:
// streaming moments (Welford), correlation, percentiles, histograms, simple
// autocorrelation, and the operator cost/selectivity estimator used to
// derive load models from trial runs (Section 7.1's statistics gathering).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in one pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 with fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the sample (n−1) variance.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CV returns the coefficient of variation std/mean (0 if the mean is 0).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / w.mean
}

// Merge folds another accumulator into w (parallel-safe combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Std()
}

// Correlation returns the Pearson correlation coefficient of two equal-
// length series; it is 0 when either series is constant. It panics on a
// length mismatch.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Correlation length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Covariance returns the population covariance of two equal-length series.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// Autocorrelation returns the lag-k autocorrelation of the series.
func Autocorrelation(xs []float64, lag int) float64 {
	if lag <= 0 || lag >= len(xs) {
		return 0
	}
	return Correlation(xs[:len(xs)-lag], xs[lag:])
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks; it panics on an empty slice or a
// p outside [0,100]. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile %g outside [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns several percentiles at once, sorting only once.
func Quantiles(xs []float64, ps ...float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if len(sorted) == 0 {
			panic("stats: Quantiles of empty slice")
		}
		rank := p / 100 * float64(len(sorted)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			out[i] = sorted[lo]
		} else {
			frac := rank - float64(lo)
			out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
		}
	}
	return out
}

// Histogram counts xs into nbins equal-width bins over [min, max]; values
// at max land in the last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int64
	Total    int64
}

// NewHistogram returns a histogram with nbins bins over [min, max].
func NewHistogram(min, max float64, nbins int) *Histogram {
	if nbins <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g] x%d", min, max, nbins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, nbins)}
}

// Add records x; out-of-range values clamp to the edge bins.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

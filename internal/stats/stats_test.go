package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Count() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("Std = %g, want 2", w.Std())
	}
	if math.Abs(w.SampleVar()-32.0/7) > 1e-12 {
		t.Fatalf("SampleVar = %g", w.SampleVar())
	}
	if math.Abs(w.CV()-0.4) > 1e-12 {
		t.Fatalf("CV = %g", w.CV())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Var() != 0 || w.SampleVar() != 0 {
		t.Fatal("variance with one sample must be 0")
	}
}

func TestWelfordCVZeroMean(t *testing.T) {
	var w Welford
	w.Add(-1)
	w.Add(1)
	if w.CV() != 0 {
		t.Fatal("CV with zero mean must be 0")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 10
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	b.Add(5)
	a.Merge(b)
	if a.Mean() != 5 || a.Count() != 1 {
		t.Fatal("merge into empty must copy")
	}
	var c Welford
	a.Merge(c)
	if a.Mean() != 5 || a.Count() != 1 {
		t.Fatal("merging empty must be a no-op")
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) = 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if math.Abs(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})-2) > 1e-12 {
		t.Fatal("Std wrong")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %g", got)
	}
	if got := Correlation(nil, nil); got != 0 {
		t.Fatalf("empty correlation = %g", got)
	}
}

func TestCorrelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected length-mismatch panic")
		}
	}()
	Correlation([]float64{1}, []float64{1, 2})
}

func TestCovariance(t *testing.T) {
	got := Covariance([]float64{1, 2, 3}, []float64{4, 6, 8})
	// cov = mean((x-2)(y-6)) = ((-1)(-2) + 0 + (1)(2))/3 = 4/3.
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("Covariance = %g", got)
	}
	if Covariance(nil, nil) != 0 {
		t.Fatal("empty covariance must be 0")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Period-2 alternating series has lag-1 autocorrelation -1, lag-2 +1.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(xs, 1); math.Abs(got+1) > 1e-9 {
		t.Fatalf("lag-1 = %g", got)
	}
	if got := Autocorrelation(xs, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("lag-2 = %g", got)
	}
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, 100) != 0 {
		t.Fatal("degenerate lags must return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %g", got)
	}
	if got := Percentile(xs, 62.5); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("p62.5 = %g", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("single element percentile = %g", got)
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Fatal("Percentile must not sort its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":  func() { Percentile(nil, 50) },
		"p>100":  func() { Percentile([]float64{1}, 101) },
		"p<0":    func() { Percentile([]float64{1}, -1) },
		"qEmpty": func() { Quantiles(nil, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantilesMatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	ps := []float64{0, 10, 50, 90, 99, 100}
	qs := Quantiles(xs, ps...)
	for i, p := range ps {
		if math.Abs(qs[i]-Percentile(xs, p)) > 1e-12 {
			t.Fatalf("Quantiles[%g] = %g, Percentile = %g", p, qs[i], Percentile(xs, p))
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 3, 5, 7, 9, 10, -5, 50} {
		h.Add(x)
	}
	if h.Total != 9 {
		t.Fatalf("Total = %d", h.Total)
	}
	// -5 clamps to bin 0; 10 and 50 clamp to bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9, 10, 50
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
	if math.Abs(h.Fraction(0)-3.0/9) > 1e-12 {
		t.Fatalf("Fraction = %g", h.Fraction(0))
	}
	if NewHistogram(0, 1, 1).Fraction(0) != 0 {
		t.Fatal("empty histogram fraction must be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid range")
		}
	}()
	NewHistogram(1, 1, 5)
}

func TestCostEstimator(t *testing.T) {
	e := NewCostEstimator()
	if _, ok := e.Cost(0); ok {
		t.Fatal("empty estimator must report no cost")
	}
	if _, ok := e.Selectivity(0); ok {
		t.Fatal("empty estimator must report no selectivity")
	}
	e.Record(0, OpSample{In: 100, Out: 50, CPU: 0.2})
	e.Record(0, OpSample{In: 300, Out: 150, CPU: 0.6})
	c, ok := e.Cost(0)
	if !ok || math.Abs(c-0.002) > 1e-12 {
		t.Fatalf("Cost = %g, %v", c, ok)
	}
	s, ok := e.Selectivity(0)
	if !ok || math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Selectivity = %g, %v", s, ok)
	}
	if e.Samples(0) != 2 {
		t.Fatalf("Samples = %d", e.Samples(0))
	}
	if e.Samples(99) != 0 || e.CostStd(99) != 0 {
		t.Fatal("unknown op must report zeros")
	}
	if e.CostStd(0) != 0 {
		t.Fatalf("equal per-tuple costs should give zero std, got %g", e.CostStd(0))
	}
	// Zero-input samples are CPU-only (e.g. a window flush with no arrivals).
	e.Record(1, OpSample{In: 0, Out: 0, CPU: 0.1})
	if _, ok := e.Cost(1); ok {
		t.Fatal("op with no input tuples has no cost estimate")
	}
}

func TestCostEstimatorConcurrent(t *testing.T) {
	e := NewCostEstimator()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				e.Record(7, OpSample{In: 1, Out: 1, CPU: 0.001})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if e.Samples(7) != 8000 {
		t.Fatalf("Samples = %d, want 8000", e.Samples(7))
	}
	c, _ := e.Cost(7)
	if math.Abs(c-0.001) > 1e-12 {
		t.Fatalf("Cost = %g", c)
	}
}

package stats

import "sync"

// OpSample is one trial-run observation for an operator: tuples consumed,
// tuples produced, and CPU time spent.
type OpSample struct {
	In, Out int64
	CPU     float64 // seconds
}

// CostEstimator accumulates per-operator trial-run samples and reports the
// measured cost (CPU seconds per input tuple) and selectivity (output/input
// ratio) — the Section 7.1 procedure of randomly distributing operators and
// running "for a sufficiently long time to gather stable statistics". It is
// safe for concurrent use (engine nodes report from their own goroutines).
type CostEstimator struct {
	mu  sync.Mutex
	ops map[int]*opAccum
}

type opAccum struct {
	in, out int64
	cpu     float64
	perT    Welford // per-sample cost, for confidence reporting
}

// NewCostEstimator returns an empty estimator.
func NewCostEstimator() *CostEstimator {
	return &CostEstimator{ops: map[int]*opAccum{}}
}

// Record folds one sample for the operator with the given id.
func (e *CostEstimator) Record(op int, s OpSample) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.ops[op]
	if a == nil {
		a = &opAccum{}
		e.ops[op] = a
	}
	a.in += s.In
	a.out += s.Out
	a.cpu += s.CPU
	if s.In > 0 {
		a.perT.Add(s.CPU / float64(s.In))
	}
}

// Cost returns the measured CPU seconds per input tuple, and whether any
// tuples were observed.
func (e *CostEstimator) Cost(op int) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.ops[op]
	if a == nil || a.in == 0 {
		return 0, false
	}
	return a.cpu / float64(a.in), true
}

// Selectivity returns the measured output/input ratio, and whether any
// tuples were observed.
func (e *CostEstimator) Selectivity(op int) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.ops[op]
	if a == nil || a.in == 0 {
		return 0, false
	}
	return float64(a.out) / float64(a.in), true
}

// Samples returns how many per-tuple cost samples were folded for op.
func (e *CostEstimator) Samples(op int) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.ops[op]
	if a == nil {
		return 0
	}
	return a.perT.Count()
}

// CostStd returns the standard deviation of the per-sample cost estimates,
// a stability signal for deciding when statistics have converged.
func (e *CostEstimator) CostStd(op int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.ops[op]
	if a == nil {
		return 0
	}
	return a.perT.Std()
}

// Package cliutil holds the small flag-parsing helpers shared by the
// command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"rodsp/internal/mat"
)

// ParseVec parses a comma-separated float vector. wantLen > 0 enforces an
// exact length.
func ParseVec(s string, wantLen int) (mat.Vec, error) {
	if s == "" {
		return nil, fmt.Errorf("empty vector")
	}
	parts := strings.Split(s, ",")
	v := make(mat.Vec, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		v[i] = x
	}
	if wantLen > 0 && len(v) != wantLen {
		return nil, fmt.Errorf("got %d values, want %d", len(v), wantLen)
	}
	return v, nil
}

// ParseInts parses a comma-separated int vector.
func ParseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty vector")
	}
	parts := strings.Split(s, ",")
	v := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		v[i] = x
	}
	return v, nil
}

// ParseCaps parses capacities, defaulting to n unit-capacity nodes when the
// flag is empty, and rejects non-positive entries.
func ParseCaps(s string, n int) (mat.Vec, error) {
	if s == "" {
		if n <= 0 {
			return nil, fmt.Errorf("need a positive node count, got %d", n)
		}
		caps := make(mat.Vec, n)
		for i := range caps {
			caps[i] = 1
		}
		return caps, nil
	}
	caps, err := ParseVec(s, -1)
	if err != nil {
		return nil, err
	}
	for i, c := range caps {
		if c <= 0 {
			return nil, fmt.Errorf("capacity %d is %g, must be positive", i, c)
		}
	}
	return caps, nil
}

// ParseAddrs parses a comma-separated address list, trimming whitespace.
func ParseAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

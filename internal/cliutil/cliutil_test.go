package cliutil

import (
	"testing"

	"rodsp/internal/mat"
)

func TestParseVec(t *testing.T) {
	v, err := ParseVec("1, 2.5,3", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(mat.VecOf(1, 2.5, 3), 0) {
		t.Fatalf("ParseVec = %v", v)
	}
	if _, err := ParseVec("", -1); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := ParseVec("1,x", -1); err == nil {
		t.Fatal("non-numeric must error")
	}
	if _, err := ParseVec("1,2", 3); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := ParseVec("1,2,3", 3); err != nil {
		t.Fatal("exact length must pass")
	}
}

func TestParseInts(t *testing.T) {
	v, err := ParseInts("0, 1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[2] != 2 {
		t.Fatalf("ParseInts = %v", v)
	}
	if _, err := ParseInts(""); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := ParseInts("1,1.5"); err == nil {
		t.Fatal("float must error")
	}
}

func TestParseCaps(t *testing.T) {
	v, err := ParseCaps("", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(mat.VecOf(1, 1, 1), 0) {
		t.Fatalf("default caps = %v", v)
	}
	if _, err := ParseCaps("", 0); err == nil {
		t.Fatal("zero node count must error")
	}
	v, err = ParseCaps("2,0.5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(mat.VecOf(2, 0.5), 0) {
		t.Fatalf("explicit caps = %v", v)
	}
	if _, err := ParseCaps("1,0", 0); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := ParseCaps("1,-2", 0); err == nil {
		t.Fatal("negative capacity must error")
	}
}

func TestParseAddrs(t *testing.T) {
	got := ParseAddrs(" a:1, b:2 ,,c:3")
	if len(got) != 3 || got[0] != "a:1" || got[2] != "c:3" {
		t.Fatalf("ParseAddrs = %v", got)
	}
	if ParseAddrs("") != nil {
		t.Fatal("empty must be nil")
	}
}

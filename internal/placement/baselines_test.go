package placement

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/query"
)

// chainGraph builds d parallel chains of ops ops each, one chain per input.
func chainGraph(t *testing.T, d, ops int, cost float64) *query.Graph {
	t.Helper()
	b := query.NewBuilder()
	for k := 0; k < d; k++ {
		s := b.Input("")
		for j := 0; j < ops; j++ {
			s = b.Delay("", cost, 1, s)
		}
	}
	return b.MustBuild()
}

func loadModel(t *testing.T, g *query.Graph) *query.LoadModel {
	t.Helper()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

func TestLLFBalancesLoad(t *testing.T) {
	// 8 identical single-variable operators, 2 nodes: perfect 4/4 split.
	lo := mat.NewMatrix(8, 1)
	for i := 0; i < 8; i++ {
		lo.Set(i, 0, 1)
	}
	c := mat.VecOf(1, 1)
	p, err := LLF(lo, c, mat.VecOf(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := p.Counts()
	if counts[0] != 4 || counts[1] != 4 {
		t.Fatalf("LLF counts = %v", counts)
	}
}

func TestLLFRespectsCapacity(t *testing.T) {
	// One big op and two small ones; node 1 has 3x capacity.
	lo := mat.MatrixOf([]float64{9}, []float64{1}, []float64{1})
	c := mat.VecOf(1, 3)
	p, err := LLF(lo, c, mat.VecOf(1))
	if err != nil {
		t.Fatal(err)
	}
	// Big op must land on the big node.
	if p.NodeOf[0] != 1 {
		t.Fatalf("LLF put the big operator on node %d", p.NodeOf[0])
	}
	// Utilization skew must be modest.
	ln := p.NodeCoef(lo)
	u0 := ln.At(0, 0) / c[0]
	u1 := ln.At(1, 0) / c[1]
	if math.Abs(u0-u1) > 3 {
		t.Fatalf("LLF wildly unbalanced: %g vs %g", u0, u1)
	}
}

func TestLLFErrors(t *testing.T) {
	if _, err := LLF(mat.NewMatrix(1, 2), mat.VecOf(1), mat.VecOf(1)); err == nil {
		t.Fatal("rate-length mismatch must error")
	}
}

func TestConnectedKeepsNeighborsTogether(t *testing.T) {
	// One chain of 6 ops on 2 nodes: Connected should co-locate runs of
	// neighbors, producing at most ~2 cut arcs; compare against the worst
	// case of alternation (5 cuts).
	g := chainGraph(t, 1, 6, 1)
	lm := loadModel(t, g)
	c := mat.VecOf(1, 1)
	p, err := Connected(g, lm.Coef, c, mat.VecOf(1))
	if err != nil {
		t.Fatal(err)
	}
	cuts := 0
	for _, a := range g.Arcs() {
		if p.NodeOf[a.From] != p.NodeOf[a.To] {
			cuts++
		}
	}
	if cuts > 2 {
		t.Fatalf("Connected produced %d cut arcs on a 6-chain", cuts)
	}
	// Both nodes must still receive work (load balancing half).
	counts := p.Counts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("Connected left a node empty: %v", counts)
	}
}

func TestConnectedErrors(t *testing.T) {
	g := chainGraph(t, 1, 2, 1)
	lm := loadModel(t, g)
	if _, err := Connected(g, lm.Coef, mat.VecOf(1, 1), mat.VecOf(1, 2)); err == nil {
		t.Fatal("rate mismatch must error")
	}
	if _, err := Connected(g, mat.NewMatrix(1, 1), mat.VecOf(1, 1), mat.VecOf(1)); err == nil {
		t.Fatal("row mismatch must error")
	}
}

func TestCorrelationSeparatesCorrelatedOps(t *testing.T) {
	// Two operators driven by stream 0, two by stream 1 (loads perfectly
	// correlated within a pair, independent across pairs). The correlation
	// scheme must split each pair across the two nodes.
	lo := mat.MatrixOf(
		[]float64{1, 0},
		[]float64{1, 0},
		[]float64{0, 1},
		[]float64{0, 1},
	)
	c := mat.VecOf(1, 1)
	// Anti-correlated rate series for the two streams.
	series := mat.MatrixOf(
		[]float64{2, 1},
		[]float64{1, 2},
		[]float64{3, 1},
		[]float64{1, 3},
		[]float64{2.5, 1.2},
		[]float64{1.2, 2.5},
	)
	p, err := CorrelationBased(lo, c, series)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf[0] == p.NodeOf[1] {
		t.Fatalf("stream-0 pair co-located: %v", p.NodeOf)
	}
	if p.NodeOf[2] == p.NodeOf[3] {
		t.Fatalf("stream-1 pair co-located: %v", p.NodeOf)
	}
}

func TestCorrelationErrors(t *testing.T) {
	lo := mat.NewMatrix(2, 2)
	c := mat.VecOf(1, 1)
	if _, err := CorrelationBased(lo, c, mat.NewMatrix(3, 1)); err == nil {
		t.Fatal("variable-count mismatch must error")
	}
	if _, err := CorrelationBased(lo, c, mat.NewMatrix(1, 2)); err == nil {
		t.Fatal("too-short series must error")
	}
}

func TestOptimalFindsIdealSplit(t *testing.T) {
	// Two ops per stream, two nodes: the optimum balances each stream
	// across both nodes, attaining the ideal (Theorem 1), ratio 1.
	lo := mat.MatrixOf([]float64{1, 0}, []float64{1, 0}, []float64{0, 1}, []float64{0, 1})
	c := mat.VecOf(1, 1)
	p, ratio, err := Optimal(lo, c, OptimalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("optimal ratio = %g, want 1", ratio)
	}
	if p.NodeOf[0] == p.NodeOf[1] || p.NodeOf[2] == p.NodeOf[3] {
		t.Fatalf("optimal plan co-located a stream's pair: %v", p.NodeOf)
	}

	// With only one operator per stream, the ideal is unreachable: the best
	// achievable is the per-stream split, whose ratio is exactly 0.5.
	lo2 := mat.MatrixOf([]float64{1, 0}, []float64{0, 1})
	p2, ratio2, err := Optimal(lo2, c, OptimalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio2-0.5) > 1e-9 {
		t.Fatalf("single-op-per-stream optimum = %g, want 0.5", ratio2)
	}
	if p2.NodeOf[0] == p2.NodeOf[1] {
		t.Fatalf("optimum should still separate the streams: %v", p2.NodeOf)
	}
}

func TestOptimalBeatsOrMatchesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		m, n := 6, 2
		lo := mat.NewMatrix(m, 2)
		for i := range lo.Data {
			lo.Data[i] = rng.Float64()
		}
		c := mat.VecOf(1, 1)
		_, best, err := Optimal(lo, c, OptimalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			p := Random(m, n, rng)
			ratio, err := Evaluate(p, lo, c, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if ratio > best+1e-9 {
				t.Fatalf("random plan %v ratio %g beats 'optimal' %g", p.NodeOf, ratio, best)
			}
		}
	}
}

func TestOptimalMaxPlansGuard(t *testing.T) {
	lo := mat.NewMatrix(10, 2)
	for i := range lo.Data {
		lo.Data[i] = 1
	}
	_, _, err := Optimal(lo, mat.VecOf(1, 1), OptimalConfig{MaxPlans: 3})
	if err == nil {
		t.Fatal("expected MaxPlans overflow error")
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, _, err := Optimal(mat.NewMatrix(1, 1), mat.Vec{}, OptimalConfig{}); err == nil {
		t.Fatal("no nodes must error")
	}
}

func TestOptimalHeterogeneousCapacities(t *testing.T) {
	// One heavy stream; node 1 has double capacity. The optimum must load
	// node 1 more (canonical pruning is disabled for heterogeneous nodes,
	// so labels matter).
	lo := mat.MatrixOf([]float64{1}, []float64{1}, []float64{1})
	c := mat.VecOf(1, 2)
	p, ratio, err := Optimal(lo, c, OptimalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Best 1-D split: node0 gets 1 op (1/1 per unit rate), node1 gets 2
	// (2/2): both hit capacity at r = C_T/l = 1, the ideal → ratio 1.
	if math.Abs(ratio-1) > 1e-9 {
		t.Fatalf("ratio = %g, want 1 (perfect capacity-proportional split)", ratio)
	}
	counts := p.Counts()
	if counts[1] != 2 {
		t.Fatalf("optimal counts %v, want 2 ops on the big node", counts)
	}
}

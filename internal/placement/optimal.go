package placement

import (
	"fmt"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
)

// Evaluate computes the feasible-set size of a plan as a ratio to the ideal
// feasible set, by QMC over the ideal simplex — exact geometry at d = 2
// (polygon clipping) and d = 3 (polytope vertex enumeration), where it is
// both faster and error-free.
func Evaluate(p *Plan, lo *mat.Matrix, c mat.Vec, samples int) (float64, error) {
	w, err := WeightsOf(p, lo, c)
	if err != nil {
		return 0, err
	}
	switch lo.Cols {
	case 2:
		return feasible.ExactRatio2D(w), nil
	case 3:
		return feasible.ExactRatio3D(w), nil
	default:
		return feasible.RatioToIdeal(w, samples)
	}
}

// EvaluateFrom is Evaluate over the Section 6.1 restricted workload set
// {R ≥ B}; lb is the raw lower bound (length d), converted to normalized
// coordinates internally.
func EvaluateFrom(p *Plan, lo *mat.Matrix, c mat.Vec, lb mat.Vec, samples int) (float64, error) {
	w, err := WeightsOf(p, lo, c)
	if err != nil {
		return 0, err
	}
	nb := feasible.Normalize(lb, lo.ColSums(), c.Sum())
	return feasible.RatioToIdealFrom(w, nb, samples)
}

// WeightsOf returns the normalized weight matrix of a plan.
func WeightsOf(p *Plan, lo *mat.Matrix, c mat.Vec) (*mat.Matrix, error) {
	ln := p.NodeCoef(lo)
	return feasible.Weights(ln, c, lo.ColSums())
}

// OptimalConfig bounds the brute-force search.
type OptimalConfig struct {
	// Samples is the QMC budget per candidate when d > 2.
	Samples int
	// MaxPlans caps the number of evaluated candidates (0 = no cap). The
	// search fails rather than silently truncating when the cap is hit.
	MaxPlans int
}

// Optimal exhaustively searches all operator placements and returns one
// with the maximum feasible-set ratio, together with that ratio. With
// homogeneous capacities the search enumerates only canonical
// (restricted-growth) assignments, cutting the n^m space by up to n!.
// It is intended for the small instances of Section 7.3.1 (≤ ~20 operators
// on 2 nodes).
func Optimal(lo *mat.Matrix, c mat.Vec, cfg OptimalConfig) (*Plan, float64, error) {
	m := lo.Rows
	n := len(c)
	if m == 0 || n == 0 {
		return nil, 0, fmt.Errorf("placement: Optimal needs operators and nodes")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4096
	}
	homogeneous := true
	for _, ci := range c[1:] {
		if ci != c[0] {
			homogeneous = false
			break
		}
	}

	var (
		best      *Plan
		bestRatio = -1.0
		evaluated = 0
	)
	nodeOf := make([]int, m)
	var rec func(j, used int) error
	rec = func(j, used int) error {
		if j == m {
			if cfg.MaxPlans > 0 && evaluated >= cfg.MaxPlans {
				return fmt.Errorf("placement: Optimal exceeded MaxPlans=%d", cfg.MaxPlans)
			}
			evaluated++
			p := &Plan{NodeOf: nodeOf, N: n}
			ratio, err := Evaluate(p, lo, c, cfg.Samples)
			if err != nil {
				return err
			}
			if ratio > bestRatio {
				bestRatio = ratio
				best = p.Clone()
			}
			return nil
		}
		limit := n
		if homogeneous && used < n {
			// Canonical form: operator j may open at most one new node.
			limit = used + 1
		}
		for i := 0; i < limit; i++ {
			nodeOf[j] = i
			nextUsed := used
			if i == used {
				nextUsed++
			}
			if err := rec(j+1, nextUsed); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, 0, err
	}
	return best, bestRatio, nil
}

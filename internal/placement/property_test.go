package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
)

// Property: Canonical is idempotent and invariant under node relabeling.
func TestCanonicalQuickProperties(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw%20)
		n := 1 + int(nRaw%6)
		nodeOf := make([]int, m)
		for j := range nodeOf {
			nodeOf[j] = rng.Intn(n)
		}
		p := &Plan{NodeOf: nodeOf, N: n}
		c1 := p.Canonical()
		// Idempotent.
		if !c1.Canonical().Equal(c1) {
			return false
		}
		// Invariant under a random permutation of node labels.
		perm := rng.Perm(n)
		permuted := make([]int, m)
		for j := range nodeOf {
			permuted[j] = perm[nodeOf[j]]
		}
		q := &Plan{NodeOf: permuted, N: n}
		if !q.Canonical().Equal(c1) {
			return false
		}
		// Canonical keeps the same co-location structure.
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				same := nodeOf[a] == nodeOf[b]
				if (c1.NodeOf[a] == c1.NodeOf[b]) != same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a node's constraint can only shrink the feasible set —
// evaluating a plan on a subset of its nodes upper-bounds the full ratio.
func TestEvaluateMonotoneInConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		m, d := 8+rng.Intn(10), 2
		lo := mat.NewMatrix(m, d)
		for j := 0; j < m; j++ {
			lo.Set(j, rng.Intn(d), 0.1+rng.Float64())
		}
		for k := 0; k < d; k++ {
			lo.Set(rng.Intn(m), k, 0.1+rng.Float64())
		}
		// Evaluate on 3 nodes vs the same assignment squashed to 2 nodes
		// (merging nodes 1 and 2 removes one constraint but concentrates
		// load — the 3-node system is never worse than the squashed one
		// at matched capacity... not in general). Instead check the exact
		// statement: a system with a strict subset of another's constraint
		// rows has a ratio at least as large, at equal total capacity per
		// remaining row. Build W directly.
		p3 := Random(m, 3, rng)
		c3 := mat.VecOf(1, 1, 1)
		w, err := WeightsOf(p3, lo, c3)
		if err != nil {
			t.Fatal(err)
		}
		full := exactOrQMC(w)
		// Drop the last constraint row: feasible set can only grow.
		sub := mat.NewMatrix(2, d)
		copy(sub.Row(0), w.Row(0))
		copy(sub.Row(1), w.Row(1))
		subRatio := exactOrQMC(sub)
		if subRatio < full-1e-9 {
			t.Fatalf("dropping a constraint shrank the set: %g -> %g", full, subRatio)
		}
	}
}

func exactOrQMC(w *mat.Matrix) float64 {
	// d=2 in these tests: exact.
	return feasible.ExactRatio2D(w)
}

package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/stats"
)

// Random produces the paper's Random baseline: a uniformly random placement
// that keeps an equal number of operators on each node (Section 7.2).
func Random(m, n int, rng *rand.Rand) *Plan {
	perm := rng.Perm(m)
	nodeOf := make([]int, m)
	for pos, j := range perm {
		nodeOf[j] = pos % n
	}
	return &Plan{NodeOf: nodeOf, N: n}
}

// LLF is the Largest-Load-First load balancer: operators ordered by their
// average load level (at the observed average rates) and greedily assigned
// to the currently least-utilized node.
func LLF(lo *mat.Matrix, c mat.Vec, avgRates mat.Vec) (*Plan, error) {
	if lo.Rows == 0 {
		return nil, fmt.Errorf("placement: LLF needs operators")
	}
	if lo.Cols != len(avgRates) {
		return nil, fmt.Errorf("placement: LLF got %d rates for %d variables", len(avgRates), lo.Cols)
	}
	loads := lo.MulVec(avgRates)
	order := sortByDesc(loads)
	nodeOf := make([]int, lo.Rows)
	nodeLoad := make(mat.Vec, len(c))
	for _, j := range order {
		best, bestU := 0, nodeLoad[0]/c[0]
		for i := 1; i < len(c); i++ {
			u := nodeLoad[i] / c[i]
			// Prefer lower utilization; on ties, the larger node.
			if u < bestU-1e-15 || (u <= bestU+1e-15 && c[i] > c[best]) {
				best, bestU = i, u
			}
		}
		nodeOf[j] = best
		nodeLoad[best] += loads[j]
	}
	return &Plan{NodeOf: nodeOf, N: len(c)}, nil
}

// Connected is the Connected-Load-Balancing baseline: (1) assign the most
// loaded unassigned operator to the currently least-utilized node N_s,
// (2) keep pulling operators connected to N_s's operators onto N_s while its
// load stays below its capacity-proportional share, (3) repeat.
func Connected(g *query.Graph, lo *mat.Matrix, c mat.Vec, avgRates mat.Vec) (*Plan, error) {
	if lo.Rows != g.NumOps() {
		return nil, fmt.Errorf("placement: Connected: %d coefficient rows for %d operators", lo.Rows, g.NumOps())
	}
	if lo.Cols != len(avgRates) {
		return nil, fmt.Errorf("placement: Connected got %d rates for %d variables", len(avgRates), lo.Cols)
	}
	loads := lo.MulVec(avgRates)
	total := loads.Sum()
	ct := c.Sum()

	m := g.NumOps()
	assigned := make([]bool, m)
	nodeOf := make([]int, m)
	nodeLoad := make(mat.Vec, len(c))
	remaining := m
	for remaining > 0 {
		// (1) Most loaded unassigned operator to least-utilized node.
		seed := -1
		for j := 0; j < m; j++ {
			if !assigned[j] && (seed == -1 || loads[j] > loads[seed]) {
				seed = j
			}
		}
		ns := 0
		for i := 1; i < len(c); i++ {
			if nodeLoad[i]/c[i] < nodeLoad[ns]/c[ns] {
				ns = i
			}
		}
		assign := func(j int) {
			assigned[j] = true
			nodeOf[j] = ns
			nodeLoad[ns] += loads[j]
			remaining--
		}
		assign(seed)
		// (2) Pull connected operators while below the capacity share.
		share := total * c[ns] / ct
		for {
			cand := -1
			for j := 0; j < m; j++ {
				if assigned[j] {
					continue
				}
				connected := false
				for k := 0; k < m && !connected; k++ {
					if assigned[k] && nodeOf[k] == ns && g.Connected(query.OpID(j), query.OpID(k)) {
						connected = true
					}
				}
				if connected && (cand == -1 || loads[j] > loads[cand]) {
					cand = j
				}
			}
			if cand == -1 || nodeLoad[ns]+loads[cand] > share+1e-12 {
				break
			}
			assign(cand)
		}
	}
	return &Plan{NodeOf: nodeOf, N: len(c)}, nil
}

// CorrelationBased is our rendition of the paper's fourth baseline (their
// earlier dynamic correlation-based scheme [23] applied statically):
// operators are ordered by average load and each is assigned, among the
// nodes whose utilization is currently below the running average, to the
// one whose aggregate load time series has the smallest correlation with
// the operator's own load series (ties broken by lower utilization). The
// rateSeries matrix holds one row per time step and one column per model
// variable.
func CorrelationBased(lo *mat.Matrix, c mat.Vec, rateSeries *mat.Matrix) (*Plan, error) {
	if rateSeries.Cols != lo.Cols {
		return nil, fmt.Errorf("placement: rate series has %d variables, L^o has %d", rateSeries.Cols, lo.Cols)
	}
	if rateSeries.Rows < 2 {
		return nil, fmt.Errorf("placement: rate series needs at least 2 time steps")
	}
	m := lo.Rows
	n := len(c)
	steps := rateSeries.Rows

	// Per-operator load time series.
	opSeries := make([][]float64, m)
	avgLoad := make(mat.Vec, m)
	for j := 0; j < m; j++ {
		s := make([]float64, steps)
		row := lo.Row(j)
		for t := 0; t < steps; t++ {
			s[t] = row.Dot(rateSeries.Row(t))
		}
		opSeries[j] = s
		avgLoad[j] = stats.Mean(s)
	}

	order := sortByDesc(avgLoad)
	nodeOf := make([]int, m)
	nodeSeries := make([][]float64, n)
	for i := range nodeSeries {
		nodeSeries[i] = make([]float64, steps)
	}
	nodeLoad := make(mat.Vec, n)
	var placedLoad float64
	for _, j := range order {
		// Candidate nodes: utilization below the average utilization the
		// system would have if already-placed load were spread by capacity.
		avgU := placedLoad / c.Sum()
		var candidates []int
		for i := 0; i < n; i++ {
			if nodeLoad[i]/c[i] <= avgU+1e-12 {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			candidates = allNodes(n)
		}
		best := candidates[0]
		bestScore := scoreCorr(opSeries[j], nodeSeries[best], nodeLoad[best]/c[best])
		for _, i := range candidates[1:] {
			if s := scoreCorr(opSeries[j], nodeSeries[i], nodeLoad[i]/c[i]); s < bestScore {
				best, bestScore = i, s
			}
		}
		nodeOf[j] = best
		for t := 0; t < steps; t++ {
			nodeSeries[best][t] += opSeries[j][t]
		}
		nodeLoad[best] += avgLoad[j]
		placedLoad += avgLoad[j]
	}
	return &Plan{NodeOf: nodeOf, N: n}, nil
}

// scoreCorr ranks a candidate node: primarily by correlation (separate
// correlated operators), with a small utilization term to break ties
// deterministically toward emptier nodes.
func scoreCorr(op, node []float64, util float64) float64 {
	return stats.Correlation(op, node) + 1e-3*util
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sortByDesc returns operator indices ordered by the given key descending,
// with index order as a deterministic tie-break.
func sortByDesc(key mat.Vec) []int {
	order := make([]int, len(key))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key[order[a]] > key[order[b]] })
	return order
}

package placement

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan([]int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan([]int{0, 2}, 2); err == nil {
		t.Fatal("out-of-range node must error")
	}
	if _, err := NewPlan([]int{-1}, 2); err == nil {
		t.Fatal("negative node must error")
	}
	if _, err := NewPlan(nil, 2); err == nil {
		t.Fatal("empty assignment must error")
	}
	if _, err := NewPlan([]int{0}, 0); err == nil {
		t.Fatal("zero nodes must error")
	}
}

func TestNewPlanCopies(t *testing.T) {
	src := []int{0, 1}
	p, err := NewPlan(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 1
	if p.NodeOf[0] != 0 {
		t.Fatal("NewPlan must copy the slice")
	}
}

func TestPlanAccessors(t *testing.T) {
	p, _ := NewPlan([]int{0, 1, 0, 1, 1}, 3)
	if p.NumOps() != 5 {
		t.Fatalf("NumOps = %d", p.NumOps())
	}
	if got := p.OpsOn(1); len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("OpsOn(1) = %v", got)
	}
	if got := p.OpsOn(2); got != nil {
		t.Fatalf("OpsOn(2) = %v, want empty", got)
	}
	counts := p.Counts()
	if counts[0] != 2 || counts[1] != 3 || counts[2] != 0 {
		t.Fatalf("Counts = %v", counts)
	}
	if p.String() == "" {
		t.Fatal("String should render")
	}
}

func TestAllocAndNodeCoef(t *testing.T) {
	// The paper's Example 2 / Table 2: L^o = [[4 0][6 0][0 9][0 2]].
	lo := mat.MatrixOf([]float64{4, 0}, []float64{6, 0}, []float64{0, 9}, []float64{0, 2})
	// Plan: {o1,o4} on N1, {o2,o3} on N2 → L^n = [[4 2][6 9]].
	p, _ := NewPlan([]int{0, 1, 1, 0}, 2)
	a := p.Alloc()
	if a.Rows != 2 || a.Cols != 4 {
		t.Fatalf("Alloc shape %dx%d", a.Rows, a.Cols)
	}
	// Each column of A has exactly one 1.
	for j := 0; j < 4; j++ {
		if a.Col(j).Sum() != 1 {
			t.Fatalf("column %d of A sums to %g", j, a.Col(j).Sum())
		}
	}
	ln := p.NodeCoef(lo)
	want := mat.MatrixOf([]float64{4, 2}, []float64{6, 9})
	if !ln.Equal(want, 0) {
		t.Fatalf("NodeCoef =\n%v\nwant\n%v", ln, want)
	}
	// A·L^o must agree with the incremental NodeCoef.
	if !a.Mul(lo).Equal(ln, 0) {
		t.Fatal("A·L^o disagrees with NodeCoef")
	}
	// Constraint (1): column sums preserved.
	if !ln.ColSums().Equal(lo.ColSums(), 0) {
		t.Fatal("allocation must preserve per-stream coefficient sums")
	}
}

func TestNodeCoefShapePanics(t *testing.T) {
	p, _ := NewPlan([]int{0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row mismatch")
		}
	}()
	p.NodeCoef(mat.NewMatrix(2, 2))
}

func TestCloneEqual(t *testing.T) {
	p, _ := NewPlan([]int{0, 1, 2}, 3)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone must be equal")
	}
	q.NodeOf[0] = 1
	if p.Equal(q) {
		t.Fatal("mutated clone must differ")
	}
	if p.NodeOf[0] != 0 {
		t.Fatal("clone must not share storage")
	}
	r, _ := NewPlan([]int{0, 1}, 3)
	if p.Equal(r) {
		t.Fatal("different lengths must differ")
	}
	s, _ := NewPlan([]int{0, 1, 2}, 4)
	if p.Equal(s) {
		t.Fatal("different node counts must differ")
	}
}

func TestCanonical(t *testing.T) {
	// 2,2,0,1 relabels to 0,0,1,2.
	p, _ := NewPlan([]int{2, 2, 0, 1}, 3)
	c := p.Canonical()
	want := []int{0, 0, 1, 2}
	for j := range want {
		if c.NodeOf[j] != want[j] {
			t.Fatalf("Canonical = %v, want %v", c.NodeOf, want)
		}
	}
	// Plans equal up to node permutation canonicalize identically.
	q, _ := NewPlan([]int{1, 1, 2, 0}, 3)
	if !q.Canonical().Equal(c) {
		t.Fatalf("permuted plan canonicalizes differently: %v vs %v", q.Canonical().NodeOf, c.NodeOf)
	}
}

func TestRandomPlanBalancedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(6)
		p := Random(m, n, rng)
		counts := p.Counts()
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("Random counts unbalanced: %v", counts)
		}
	}
}

func TestRandomPlanIsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(20, 4, rng)
	b := Random(20, 4, rng)
	if a.Equal(b) {
		t.Fatal("consecutive random plans should differ (vanishingly unlikely otherwise)")
	}
}

func TestEvaluateIdealPlan(t *testing.T) {
	// Two identical operators on two nodes: placing one on each achieves
	// the ideal (W = all ones), ratio 1; placing both on one node gives 1/2
	// in 1-D... here d=1: ratio = axis cut at l/(2l)=1/2 → exactly 0.5.
	lo := mat.MatrixOf([]float64{1}, []float64{1})
	c := mat.VecOf(1, 1)
	split, _ := NewPlan([]int{0, 1}, 2)
	ratio, err := Evaluate(split, lo, c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("split ratio = %g, want 1", ratio)
	}
	lump, _ := NewPlan([]int{0, 0}, 2)
	ratio, err = Evaluate(lump, lo, c, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("lumped ratio = %g, want ~0.5", ratio)
	}
}

func TestEvaluateUses2DExact(t *testing.T) {
	lo := mat.MatrixOf([]float64{4, 0}, []float64{6, 0}, []float64{0, 9}, []float64{0, 2})
	c := mat.VecOf(1, 1)
	p, _ := NewPlan([]int{0, 1, 1, 0}, 2)
	// W rows: N1 = ((4/10)/0.5, (2/11)/0.5) = (0.8, 4/11);
	//         N2 = (1.2, 18/11). Exact area ratio must be deterministic.
	r1, err := Evaluate(p, lo, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Evaluate(p, lo, c, 999999)
	if r1 != r2 {
		t.Fatal("d=2 evaluation must be exact, independent of sample budget")
	}
	if r1 <= 0 || r1 >= 1 {
		t.Fatalf("ratio = %g out of (0,1)", r1)
	}
}

func TestEvaluateFrom(t *testing.T) {
	// Two ops per stream split across nodes balances every stream: the
	// ideal plan, so the restricted ratio is 1 anywhere meaningful.
	lo4 := mat.MatrixOf([]float64{1, 0}, []float64{1, 0}, []float64{0, 1}, []float64{0, 1})
	c := mat.VecOf(1, 1)
	ideal, _ := NewPlan([]int{0, 1, 0, 1}, 2)
	got, err := EvaluateFrom(ideal, lo4, c, mat.VecOf(0.2, 0.2), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("restricted ratio = %g", got)
	}
	// Lumping both single-stream ops on node 0 makes the system infeasible
	// whenever r1+r2 > 1; a raw floor of (0.6,0.6) normalizes to (0.3,0.3)
	// whose sum 0.6 already exceeds the plan's x1+x2 ≤ 0.5 budget, so the
	// whole restricted region is infeasible.
	lo := mat.MatrixOf([]float64{1, 0}, []float64{0, 1})
	lump, _ := NewPlan([]int{0, 0}, 2)
	got, err = EvaluateFrom(lump, lo, c, mat.VecOf(0.6, 0.6), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("floor-violating plan ratio = %g, want 0", got)
	}
}

// Package placement defines operator-to-node placement plans and the four
// alternative load-distribution algorithms the paper compares ROD against
// (Section 7.2): Random, Largest-Load-First load balancing, Connected load
// balancing, and Correlation-based load balancing — plus the brute-force
// Optimal search used on small instances (Section 7.3.1).
package placement

import (
	"fmt"
	"strings"

	"rodsp/internal/mat"
)

// Plan assigns every operator to exactly one node: NodeOf[j] is the node
// hosting operator j. It is the dense form of the paper's allocation
// matrix A.
type Plan struct {
	NodeOf []int
	N      int // number of nodes
}

// NewPlan validates and wraps an assignment vector.
func NewPlan(nodeOf []int, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: need at least one node, got %d", n)
	}
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("placement: empty assignment")
	}
	for j, i := range nodeOf {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("placement: operator %d assigned to node %d outside [0,%d)", j, i, n)
		}
	}
	cp := make([]int, len(nodeOf))
	copy(cp, nodeOf)
	return &Plan{NodeOf: cp, N: n}, nil
}

// NumOps returns the number of operators m.
func (p *Plan) NumOps() int { return len(p.NodeOf) }

// OpsOn returns the operators placed on node i, in increasing id order.
func (p *Plan) OpsOn(i int) []int {
	var ops []int
	for j, node := range p.NodeOf {
		if node == i {
			ops = append(ops, j)
		}
	}
	return ops
}

// Counts returns how many operators each node hosts.
func (p *Plan) Counts() []int {
	c := make([]int, p.N)
	for _, i := range p.NodeOf {
		c[i]++
	}
	return c
}

// Alloc returns the n×m 0/1 allocation matrix A.
func (p *Plan) Alloc() *mat.Matrix {
	a := mat.NewMatrix(p.N, len(p.NodeOf))
	for j, i := range p.NodeOf {
		a.Set(i, j, 1)
	}
	return a
}

// NodeCoef returns L^n = A·L^o: the per-node load coefficient matrix under
// this plan.
func (p *Plan) NodeCoef(lo *mat.Matrix) *mat.Matrix {
	if lo.Rows != len(p.NodeOf) {
		panic(fmt.Sprintf("placement: plan has %d operators, L^o has %d rows", len(p.NodeOf), lo.Rows))
	}
	ln := mat.NewMatrix(p.N, lo.Cols)
	for j, i := range p.NodeOf {
		ln.Row(i).AddInPlace(lo.Row(j))
	}
	return ln
}

// Clone returns a deep copy of the plan.
func (p *Plan) Clone() *Plan {
	cp := make([]int, len(p.NodeOf))
	copy(cp, p.NodeOf)
	return &Plan{NodeOf: cp, N: p.N}
}

// Equal reports whether two plans make identical assignments.
func (p *Plan) Equal(q *Plan) bool {
	if p.N != q.N || len(p.NodeOf) != len(q.NodeOf) {
		return false
	}
	for j := range p.NodeOf {
		if p.NodeOf[j] != q.NodeOf[j] {
			return false
		}
	}
	return true
}

// Canonical relabels nodes in order of first use (restricted-growth form),
// so plans identical up to a homogeneous-node permutation compare equal.
func (p *Plan) Canonical() *Plan {
	relabel := make([]int, p.N)
	for i := range relabel {
		relabel[i] = -1
	}
	next := 0
	out := make([]int, len(p.NodeOf))
	for j, i := range p.NodeOf {
		if relabel[i] == -1 {
			relabel[i] = next
			next++
		}
		out[j] = relabel[i]
	}
	return &Plan{NodeOf: out, N: p.N}
}

// String renders the plan as node→operators groups.
func (p *Plan) String() string {
	var b strings.Builder
	for i := 0; i < p.N; i++ {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "N%d:%v", i, p.OpsOn(i))
	}
	return b.String()
}

package check

import "testing"

func TestLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live loopback cluster")
	}
	res, err := RunLockstep(LockstepConfig{Seed: 11, Nodes: 3})
	if err != nil {
		t.Fatalf("lockstep infrastructure error: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("sim and engine diverged: %v", res.Violation)
	}
	if res.SimDelivered == 0 || res.EngDelivered == 0 {
		t.Fatalf("lockstep moved no tuples: sim=%d engine=%d", res.SimDelivered, res.EngDelivered)
	}
}

package check

import (
	"fmt"
	"strings"

	"rodsp/internal/engine"
)

// Ledger is the cluster-wide tuple-conservation account, assembled from the
// per-node stats snapshots and the collector/driver counters at (or near)
// quiescence. For a unit-multiplicity topology — every stream has exactly
// one consumer and every operator selectivity 1, the shape the conformance
// scenarios use — conservation is exact:
//
//	Sources == SrcDropped + Delivered + Shed + OutboxDropped + NoRoute + InFlight
//
// because each source tuple takes a single path and every exit from that
// path is counted: the driver skipping a dead destination, the collector
// recording the sink arrival, a bounded ingress queue shedding it, an
// outbox dropping it (overflow, drop fault, failed write), a routing gap
// discarding it, or the tuple still sitting in a queue or outbox ring.
type Ledger struct {
	Sources       int64 // tuples emitted by all source drivers
	SrcDropped    int64 // per-destination sends the drivers skipped (dead link)
	Delivered     int64 // sink tuples recorded by the collector
	Shed          int64 // tuples shed at bounded ingress queues
	OutboxDropped int64 // tuples dropped by per-peer outboxes
	NoRoute       int64 // tuples discarded for lack of any route
	InFlight      int64 // queued, in a worker's current run, or outbox-buffered at snapshot
}

// Assemble builds the ledger from a cluster stats poll (nil entries — e.g.
// killed nodes — are skipped), the collector's delivered count, and the
// source drivers' emitted/skipped totals.
func Assemble(stats []*engine.NodeStats, delivered, sources, srcDropped int64) Ledger {
	l := Ledger{Sources: sources, SrcDropped: srcDropped, Delivered: delivered}
	for _, s := range stats {
		if s == nil {
			continue
		}
		l.Shed += s.Shed
		l.OutboxDropped += s.OutboxDropped
		l.NoRoute += s.DroppedNoRoute
		l.InFlight += int64(s.QueueLen) + s.WorkerInFlight + s.OutboxPending
	}
	return l
}

// Residual is sources minus every accounted disposition. Zero means exact
// conservation; positive means tuples vanished without being counted
// anywhere (silent loss — always a bug); negative means double counting
// (e.g. a run counted dropped after its write partially reached the peer).
func (l Ledger) Residual() int64 {
	return l.Sources - l.SrcDropped - l.Delivered - l.Shed - l.OutboxDropped - l.NoRoute - l.InFlight
}

// Check validates conservation. slack bounds how negative the residual may
// go: a severed connection can fail a write after the peer already received
// the run (counted dropped and delivered), so episodes that injected sever
// faults pass the number of severs times the outbox batch bound. Positive
// residuals are never excused.
func (l Ledger) Check(slack int64) error {
	r := l.Residual()
	if r > 0 {
		return fmt.Errorf("check: conservation violated: %d tuples unaccounted for (silent loss)\n%s", r, l)
	}
	if r < -slack {
		return fmt.Errorf("check: conservation violated: %d tuples double-counted (slack %d)\n%s", -r, slack, l)
	}
	return nil
}

// String renders the account for failure messages.
func (l Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  sources        %d\n", l.Sources)
	fmt.Fprintf(&b, "  src_dropped    %d\n", l.SrcDropped)
	fmt.Fprintf(&b, "  delivered      %d\n", l.Delivered)
	fmt.Fprintf(&b, "  shed           %d\n", l.Shed)
	fmt.Fprintf(&b, "  outbox_dropped %d\n", l.OutboxDropped)
	fmt.Fprintf(&b, "  no_route       %d\n", l.NoRoute)
	fmt.Fprintf(&b, "  in_flight      %d\n", l.InFlight)
	fmt.Fprintf(&b, "  residual       %d", l.Residual())
	return b.String()
}

// CheckOutboxes verifies each reachable node's outbox identity
// enqueued == sent + dropped + pending, which must hold exactly at any
// stats snapshot taken at quiescence.
func CheckOutboxes(stats []*engine.NodeStats) error {
	for i, s := range stats {
		if s == nil {
			continue
		}
		if s.OutboxEnqueued != s.OutboxSent+s.OutboxDropped+s.OutboxPending {
			return fmt.Errorf("check: node %d outbox identity violated: enqueued %d != sent %d + dropped %d + pending %d",
				i, s.OutboxEnqueued, s.OutboxSent, s.OutboxDropped, s.OutboxPending)
		}
	}
	return nil
}

package check

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
)

// ControllerLockstepResult carries both runs' summaries for reporting.
type ControllerLockstepResult struct {
	Scenario *Scenario
	// Moves are the engine controller's successful autonomous migrations,
	// replayed verbatim into the simulator.
	Moves        []sim.ScheduledMove
	SimUtil      []float64
	EngUtil      []float64
	SimHeadroom  []float64
	EngHeadroom  []float64
	SimDelivered int64
	EngDelivered int64
	Violation    error
}

// RunControllerLockstep cross-validates the closed loop itself: the seeded
// controller scenario runs live on the engine with the elastic controller
// deciding, then the migrations it actually executed are replayed into the
// discrete-event simulator as a scheduled-move script with the simulator's
// controller schema mirror enabled. Both runtimes must emit the identical
// obs metric schema — including the five controller instruments — and
// agree on per-node utilization, feasibility headroom, and delivery within
// tolerances. A systematic gap here means the controller's view of the
// cluster (the monitor it steers by) has drifted from the model the
// placement math assumes.
func RunControllerLockstep(seed int64, tol Tolerances) (*ControllerLockstepResult, error) {
	tol.defaults()
	sc, err := GenerateController(seed)
	if err != nil {
		return nil, err
	}
	res := &ControllerLockstepResult{Scenario: sc}

	engSeries, engStats, engDelivered, moves, err := runControllerLockstepEngine(sc)
	if err != nil {
		return nil, fmt.Errorf("check: controller lockstep engine: %w", err)
	}
	res.Moves = moves
	simRes, err := runControllerLockstepSim(sc, moves)
	if err != nil {
		return nil, fmt.Errorf("check: controller lockstep sim: %w", err)
	}

	if err := sameSchema(simRes.Series, engSeries); err != nil {
		res.Violation = err
		return res, nil
	}

	res.SimDelivered = simRes.TuplesOut
	res.EngDelivered = engDelivered
	for i := 0; i < sc.Nodes; i++ {
		node := strconv.Itoa(i)
		res.SimUtil = append(res.SimUtil, seriesMean(simRes.Series, obs.MetricNodeUtilization, node))
		res.EngUtil = append(res.EngUtil, seriesMean(engSeries, obs.MetricNodeUtilization, node))
		res.SimHeadroom = append(res.SimHeadroom, seriesMean(simRes.Series, obs.MetricNodeHeadroom, node))
		res.EngHeadroom = append(res.EngHeadroom, seriesMean(engSeries, obs.MetricNodeHeadroom, node))
	}
	var engShed int64
	for _, s := range engStats {
		if s != nil {
			engShed += s.Shed
		}
	}

	for i := 0; i < sc.Nodes; i++ {
		if d := math.Abs(res.SimUtil[i] - res.EngUtil[i]); d > tol.UtilAbs {
			res.Violation = fmt.Errorf("check: controller lockstep: node %d mean utilization diverged by %.3f (sim %.3f vs engine %.3f, tol %.3f)",
				i, d, res.SimUtil[i], res.EngUtil[i], tol.UtilAbs)
			return res, nil
		}
		if d := math.Abs(res.SimHeadroom[i] - res.EngHeadroom[i]); d > tol.HeadroomAbs {
			res.Violation = fmt.Errorf("check: controller lockstep: node %d mean headroom diverged by %.3f (sim %.3f vs engine %.3f, tol %.3f)",
				i, d, res.SimHeadroom[i], res.EngHeadroom[i], tol.HeadroomAbs)
			return res, nil
		}
	}
	if simRes.TuplesOut > 0 {
		gap := math.Abs(float64(engDelivered-simRes.TuplesOut)) / float64(simRes.TuplesOut)
		if gap > tol.DeliveredRel {
			res.Violation = fmt.Errorf("check: controller lockstep: delivered counts diverged by %.1f%% (sim %d vs engine %d, tol %.0f%%)",
				gap*100, simRes.TuplesOut, engDelivered, tol.DeliveredRel*100)
			return res, nil
		}
	}
	if engShed > tol.ShedMax {
		res.Violation = fmt.Errorf("check: controller lockstep: engine shed %d tuples under the closed loop (tol %d)",
			engShed, tol.ShedMax)
		return res, nil
	}
	return res, nil
}

// runControllerLockstepEngine drives the controller scenario with the
// elastic controller live, returning the monitor series, node stats,
// delivered count, and the successful autonomous migrations as a
// sim-replayable move script.
func runControllerLockstepEngine(sc *Scenario) (*obs.SeriesSet, []*engine.NodeStats, int64, []sim.ScheduledMove, error) {
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	lm, err := query.BuildLoadModel(sc.Graph)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	cl, err := engine.StartClusterConfig(sc.Caps, sc.Config)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	defer cl.Close()
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		return nil, nil, 0, nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, nil, 0, nil, err
	}
	mon := cl.StartMonitor(engine.MonitorConfig{
		Interval:  50 * time.Millisecond,
		LM:        lm,
		Plan:      plan,
		Caps:      mat.Vec(sc.Caps),
		RateAlpha: 0.6,
	})
	defer mon.Close()
	ctrlCfg := controllerConfigFor(sc.Seed)
	ctrl, err := cl.StartController(ctrlCfg)
	if err != nil {
		return nil, nil, 0, nil, fmt.Errorf("check: starting controller: %w", err)
	}

	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)
	inputs := sc.Graph.Inputs()
	errs := make([]error, len(inputs))
	done := make(chan int, len(inputs))
	for i, in := range inputs {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		drv := &engine.SourceDriver{
			Stream:  in,
			Trace:   sc.Traces[i],
			Addrs:   dests,
			MaxRate: 5000,
			Count:   mon.SourceCounter(in),
		}
		go func(slot int) {
			_, errs[slot] = drv.Run(sc.Wall, nil)
			done <- slot
		}(i)
	}
	for range inputs {
		<-done
	}
	ctrl.Close()
	for _, e := range errs {
		if e != nil {
			return nil, nil, 0, nil, e
		}
	}
	if err := cl.AwaitQuiescence(15*time.Second, 100*time.Millisecond); err != nil {
		return nil, nil, 0, nil, err
	}
	var moves []sim.ScheduledMove
	for _, mv := range ctrl.Moves() {
		if mv.OK {
			moves = append(moves, sim.ScheduledMove{
				Time:  mv.T,
				Op:    mv.Op,
				To:    mv.To,
				Stall: ctrlCfg.Stall.Seconds(),
			})
		}
	}
	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	return mon.Series(), stats, delivered, moves, nil
}

// runControllerLockstepSim replays the controller arm in the simulator:
// same graph, plan and traces, the controller's migrations as scheduled
// moves, and the controller schema mirror on so both runtimes expose the
// same instrument set.
func runControllerLockstepSim(sc *Scenario, moves []sim.ScheduledMove) (*sim.Result, error) {
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range sc.Graph.Inputs() {
		sources[in] = sc.Traces[i]
	}
	return sim.Run(sim.Config{
		Graph:          sc.Graph,
		NodeOf:         sc.Plan.NodeOf,
		Capacities:     mat.Vec(sc.Caps),
		Sources:        sources,
		Duration:       sc.Wall.Seconds(),
		Seed:           sc.Seed,
		ChargeTransfer: true,
		MaxEvents:      20_000_000,
		Moves:          moves,
		Obs:            &sim.ObsConfig{Controller: true},
	})
}

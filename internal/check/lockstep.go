package check

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
)

// Tolerances are the lockstep gates: how far the engine may diverge from
// the simulator on the same seeded scenario before the cross-validation
// fails. Zero fields take the defaults (chosen loose enough for a loaded
// CI machine, tight enough to catch systematic modeling errors).
type Tolerances struct {
	UtilAbs      float64 // per-node mean utilization |sim − engine| (default 0.20)
	HeadroomAbs  float64 // per-node mean feasibility headroom |sim − engine| (default 0.25)
	DeliveredRel float64 // relative delivered-count gap (default 0.15)
	ShedMax      int64   // tuples the engine may shed at feasible load (default 0)
}

func (t *Tolerances) defaults() {
	if t.UtilAbs <= 0 {
		t.UtilAbs = 0.20
	}
	if t.HeadroomAbs <= 0 {
		t.HeadroomAbs = 0.25
	}
	if t.DeliveredRel <= 0 {
		t.DeliveredRel = 0.15
	}
}

// LockstepConfig drives one sim↔engine cross-validation: the same seeded
// graph, placement, traces and migration schedule run through the
// discrete-event simulator (virtual time) and a loopback engine cluster
// (wall time), and the per-series summaries are gated by Tol.
type LockstepConfig struct {
	Seed  int64
	Nodes int
	Tol   Tolerances
}

// LockstepResult carries both runs' summaries for reporting.
type LockstepResult struct {
	Scenario     *Scenario
	SimUtil      []float64 // per-node mean utilization
	EngUtil      []float64
	SimHeadroom  []float64 // per-node mean feasibility headroom
	EngHeadroom  []float64
	SimDelivered int64
	EngDelivered int64
	EngShed      int64
	Migrations   int
	Violation    error
}

// RunLockstep executes the cross-validation. Scenarios are generated with
// the shed exercise disabled and only the migration portion of the chaos
// schedule applied — link faults have no simulator counterpart, while
// migrations map exactly onto sim.Config.Moves (engine wall seconds =
// simulator virtual seconds).
func RunLockstep(cfg LockstepConfig) (*LockstepResult, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	cfg.Tol.defaults()
	sc, err := generate(cfg.Seed, cfg.Nodes, Strict, false)
	if err != nil {
		return nil, err
	}
	var moves []FaultOp
	for _, op := range sc.Schedule {
		if op.Kind == FaultMigrate {
			moves = append(moves, op)
		}
	}
	res := &LockstepResult{Scenario: sc, Migrations: len(moves)}

	simRes, err := runLockstepSim(sc, moves)
	if err != nil {
		return nil, fmt.Errorf("check: lockstep sim: %w", err)
	}
	engSeries, engStats, engDelivered, err := runLockstepEngine(sc, moves)
	if err != nil {
		return nil, fmt.Errorf("check: lockstep engine: %w", err)
	}

	if err := sameSchema(simRes.Series, engSeries); err != nil {
		res.Violation = err
		return res, nil
	}

	res.SimDelivered = simRes.TuplesOut
	res.EngDelivered = engDelivered
	for i := 0; i < sc.Nodes; i++ {
		node := strconv.Itoa(i)
		res.SimUtil = append(res.SimUtil, seriesMean(simRes.Series, obs.MetricNodeUtilization, node))
		res.EngUtil = append(res.EngUtil, seriesMean(engSeries, obs.MetricNodeUtilization, node))
		res.SimHeadroom = append(res.SimHeadroom, seriesMean(simRes.Series, obs.MetricNodeHeadroom, node))
		res.EngHeadroom = append(res.EngHeadroom, seriesMean(engSeries, obs.MetricNodeHeadroom, node))
	}
	for _, s := range engStats {
		if s != nil {
			res.EngShed += s.Shed
		}
	}

	// Gates.
	for i := 0; i < sc.Nodes; i++ {
		if d := math.Abs(res.SimUtil[i] - res.EngUtil[i]); d > cfg.Tol.UtilAbs {
			res.Violation = fmt.Errorf("check: lockstep: node %d mean utilization diverged by %.3f (sim %.3f vs engine %.3f, tol %.3f)",
				i, d, res.SimUtil[i], res.EngUtil[i], cfg.Tol.UtilAbs)
			return res, nil
		}
		if d := math.Abs(res.SimHeadroom[i] - res.EngHeadroom[i]); d > cfg.Tol.HeadroomAbs {
			res.Violation = fmt.Errorf("check: lockstep: node %d mean headroom diverged by %.3f (sim %.3f vs engine %.3f, tol %.3f)",
				i, d, res.SimHeadroom[i], res.EngHeadroom[i], cfg.Tol.HeadroomAbs)
			return res, nil
		}
	}
	if simRes.TuplesOut > 0 {
		gap := math.Abs(float64(engDelivered-simRes.TuplesOut)) / float64(simRes.TuplesOut)
		if gap > cfg.Tol.DeliveredRel {
			res.Violation = fmt.Errorf("check: lockstep: delivered counts diverged by %.1f%% (sim %d vs engine %d, tol %.0f%%)",
				gap*100, simRes.TuplesOut, engDelivered, cfg.Tol.DeliveredRel*100)
			return res, nil
		}
	}
	if res.EngShed > cfg.Tol.ShedMax {
		res.Violation = fmt.Errorf("check: lockstep: engine shed %d tuples on a feasible workload (tol %d)",
			res.EngShed, cfg.Tol.ShedMax)
		return res, nil
	}
	return res, nil
}

func runLockstepSim(sc *Scenario, moves []FaultOp) (*sim.Result, error) {
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range sc.Graph.Inputs() {
		sources[in] = sc.Traces[i]
	}
	var sims []sim.ScheduledMove
	for _, mv := range moves {
		sims = append(sims, sim.ScheduledMove{
			Time:  mv.At.Seconds(),
			Op:    mv.Op,
			To:    mv.To,
			Stall: mv.Stall.Seconds(),
		})
	}
	return sim.Run(sim.Config{
		Graph:          sc.Graph,
		NodeOf:         sc.Plan.NodeOf,
		Capacities:     sc.Caps,
		Sources:        sources,
		Duration:       sc.Wall.Seconds(),
		Seed:           sc.Seed,
		ChargeTransfer: true,
		MaxEvents:      20_000_000,
		Moves:          sims,
		Obs:            &sim.ObsConfig{},
	})
}

func runLockstepEngine(sc *Scenario, moves []FaultOp) (*obs.SeriesSet, []*engine.NodeStats, int64, error) {
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, nil, 0, err
	}
	lm, err := query.BuildLoadModel(sc.Graph)
	if err != nil {
		return nil, nil, 0, err
	}
	cl, err := engine.StartClusterConfig(sc.Caps, sc.Config)
	if err != nil {
		return nil, nil, 0, err
	}
	defer cl.Close()
	mon := cl.StartMonitor(engine.MonitorConfig{
		Interval: 50 * time.Millisecond,
		LM:       lm,
		Plan:     plan,
		Caps:     sc.Caps,
	})
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		return nil, nil, 0, err
	}
	if err := cl.Start(); err != nil {
		return nil, nil, 0, err
	}
	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)
	inputs := sc.Graph.Inputs()
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		drv := &engine.SourceDriver{
			Stream:  in,
			Trace:   sc.Traces[i],
			Addrs:   dests,
			MaxRate: 5000,
			Count:   mon.SourceCounter(in),
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			_, errs[slot] = drv.Run(sc.Wall, nil)
		}(i)
	}
	start := time.Now()
	for _, mv := range moves {
		if d := mv.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if err := cl.MoveOperator(sc.Graph, plan, query.OpID(mv.Op), mv.To, mv.Stall); err != nil {
			return nil, nil, 0, err
		}
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, 0, e
		}
	}
	if err := cl.AwaitQuiescence(15*time.Second, 100*time.Millisecond); err != nil {
		return nil, nil, 0, err
	}
	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	return mon.Series(), stats, delivered, nil
}

// sameSchema verifies both runtimes emitted the identical obs metric
// schema — the contract that makes their series directly comparable.
func sameSchema(a, b *obs.SeriesSet) error {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return fmt.Errorf("check: obs schema mismatch: sim %v vs engine %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			return fmt.Errorf("check: obs schema mismatch: sim %v vs engine %v", an, bn)
		}
	}
	return nil
}

// seriesMean is the time-average of one labeled series (0 when empty).
func seriesMean(set *obs.SeriesSet, metric, node string) float64 {
	_, vs := set.Series(metric, "node", node).Points()
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

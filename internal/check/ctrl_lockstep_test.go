package check

import "testing"

// TestControllerLockstep cross-validates the closed loop: the engine's
// autonomous migrations replayed in the simulator must land on the same
// per-node utilization/headroom profile under an identical obs schema.
func TestControllerLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("controller lockstep drives ~3s of wall-clock sources")
	}
	res, err := RunControllerLockstep(1, Tolerances{})
	if err != nil {
		t.Fatalf("infrastructure: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	t.Logf("replayed %d autonomous moves; delivered sim %d vs engine %d",
		len(res.Moves), res.SimDelivered, res.EngDelivered)
	for i := range res.SimUtil {
		t.Logf("node %d: util sim %.3f eng %.3f | headroom sim %.3f eng %.3f",
			i, res.SimUtil[i], res.EngUtil[i], res.SimHeadroom[i], res.EngHeadroom[i])
	}
}

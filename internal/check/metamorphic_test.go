package check

import "testing"

func TestMetamorphicInvariants(t *testing.T) {
	cases, samples := 8, 4096
	if testing.Short() {
		cases, samples = 3, 1024
	}
	for seed := int64(0); seed < 3; seed++ {
		if err := RunMetamorphic(MetamorphicConfig{Seed: seed, Cases: cases, Samples: samples}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

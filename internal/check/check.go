// Package check is the cluster-wide conformance harness: deterministic,
// seeded verification that the engine and the simulator actually deliver
// the properties the paper's claims rest on.
//
// Three pillars:
//
//   - The tuple-conservation ledger (ledger.go): at quiescence, every tuple
//     a source emitted is delivered, shed, dropped by an outbox, dropped for
//     lack of a route, or still in flight — assembled entirely from the
//     stats snapshots the control plane already exposes, with no new
//     hot-path locks. A positive residual is silent loss; a negative one
//     beyond the fault-model slack is double counting.
//
//   - Lockstep sim↔engine cross-validation (lockstep.go): the same seeded
//     graph, traces and migration schedule driven through internal/sim and
//     a loopback engine cluster, gated by per-series tolerances on
//     utilization, feasibility headroom, delivered counts and shed onset.
//
//   - The chaos soak (scenario.go + episode.go): seeded scenarios composing
//     link faults (sever/drop/delay), node kills, live migrations and
//     batch/legacy wire mixes, asserting the ledger plus the paper-derived
//     metamorphic invariants (metamorphic.go) after every episode.
//
// cmd/rodcheck is the CLI entry point; CI runs a small seeded scenario set
// per push and a nightly soak with longer episodes.
package check

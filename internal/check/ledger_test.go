package check

import (
	"strings"
	"testing"

	"rodsp/internal/engine"
)

func balancedStats() []*engine.NodeStats {
	return []*engine.NodeStats{
		{Injected: 600, Shed: 25, DroppedNoRoute: 5, OutboxDropped: 40, QueueLen: 0, OutboxPending: 10},
		{Injected: 400, Shed: 0, DroppedNoRoute: 0, OutboxDropped: 0, QueueLen: 20, OutboxPending: 0},
	}
}

func TestLedgerBalances(t *testing.T) {
	// sources 1000 = srcDropped 50 + delivered 850 + shed 25 + outboxDropped 40
	//              + noRoute 5 + inFlight 30
	l := Assemble(balancedStats(), 850, 1000, 50)
	if r := l.Residual(); r != 0 {
		t.Fatalf("residual = %d, want 0\n%s", r, l)
	}
	if err := l.Check(0); err != nil {
		t.Fatalf("balanced ledger rejected: %v", err)
	}
}

// TestLedgerCatchesDropUndercount is the acceptance-criteria negative test:
// a drop counter that under-counts by one (the classic off-by-one in a shed
// or outbox-drop path) leaves a positive residual — a tuple the cluster lost
// without accounting for it — and the ledger must flag it at zero slack.
func TestLedgerCatchesDropUndercount(t *testing.T) {
	stats := balancedStats()
	stats[0].OutboxDropped-- // off-by-one: one dropped tuple not counted
	l := Assemble(stats, 850, 1000, 50)
	if r := l.Residual(); r != 1 {
		t.Fatalf("residual = %d, want +1", r)
	}
	err := l.Check(0)
	if err == nil {
		t.Fatal("ledger accepted a silent tuple loss")
	}
	if !strings.Contains(err.Error(), "silent") {
		t.Fatalf("want silent-loss diagnosis, got: %v", err)
	}
	// Positive residuals are never excused by sever slack.
	if err := l.Check(1 << 20); err == nil {
		t.Fatal("slack must not excuse a positive residual")
	}
}

func TestLedgerCatchesDropOvercount(t *testing.T) {
	stats := balancedStats()
	stats[0].Shed++ // off-by-one the other way: a tuple counted twice
	l := Assemble(stats, 850, 1000, 50)
	if err := l.Check(0); err == nil {
		t.Fatal("ledger accepted a double-counted tuple at zero slack")
	}
	// One sever fault's write slack legitimately covers it.
	if err := l.Check(severWriteSlack); err != nil {
		t.Fatalf("slack should cover a bounded double-count: %v", err)
	}
}

func TestLedgerSkipsUnreachableNodes(t *testing.T) {
	stats := balancedStats()
	stats = append(stats, nil) // killed node
	l := Assemble(stats, 850, 1000, 50)
	if r := l.Residual(); r != 0 {
		t.Fatalf("nil stats changed the residual: %d", r)
	}
}

func TestCheckOutboxesIdentity(t *testing.T) {
	good := []*engine.NodeStats{
		{OutboxEnqueued: 100, OutboxSent: 80, OutboxDropped: 15, OutboxPending: 5},
		nil,
	}
	if err := CheckOutboxes(good); err != nil {
		t.Fatalf("valid outbox identity rejected: %v", err)
	}
	bad := []*engine.NodeStats{
		{OutboxEnqueued: 100, OutboxSent: 80, OutboxDropped: 14, OutboxPending: 5},
	}
	if err := CheckOutboxes(bad); err == nil {
		t.Fatal("outbox identity violation not caught")
	}
}

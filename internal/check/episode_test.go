package check

import (
	"testing"

	"rodsp/internal/obs"
	"rodsp/internal/query"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, 4, Strict)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, 4, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumOps() != b.Graph.NumOps() || a.Wall != b.Wall ||
		len(a.Schedule) != len(b.Schedule) || a.Severs != b.Severs {
		t.Fatalf("same seed produced different scenarios: %+v vs %+v", a, b)
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedule[%d] differs: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
	if len(a.Plan.NodeOf) != len(b.Plan.NodeOf) {
		t.Fatal("placements differ")
	}
}

func TestMigrationsAvoidRoutedNodes(t *testing.T) {
	// Destinations of scheduled migrations must hold no prior route for the
	// operator's streams (the no-duplication constraint).
	for seed := int64(0); seed < 30; seed++ {
		sc, err := Generate(seed, 4, Strict)
		if err != nil {
			t.Fatal(err)
		}
		routed := routedNodes(sc.Graph, sc.Plan.NodeOf)
		nodeOf := append([]int(nil), sc.Plan.NodeOf...)
		for _, op := range sc.Schedule {
			if op.Kind != FaultMigrate {
				continue
			}
			o := sc.Graph.Op(query.OpID(op.Op))
			if routed[o.Out][op.To] {
				t.Fatalf("seed %d: migration dest %d already routes output stream %d", seed, op.To, o.Out)
			}
			for _, in := range o.Inputs {
				if routed[in][op.To] {
					t.Fatalf("seed %d: migration dest %d already routes input stream %d", seed, op.To, in)
				}
			}
			nodeOf[o.ID] = op.To
			for _, in := range o.Inputs {
				routed[in][op.To] = true
			}
			routed[o.Out][op.To] = true
		}
	}
}

func TestRunEpisodeStrict(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live loopback cluster")
	}
	ev := obs.NewEventLog(256)
	sc, err := Generate(1, 4, Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEpisode(sc, ev)
	if err != nil {
		t.Fatalf("episode infrastructure error: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("strict episode violated invariants: %v", res.Violation)
	}
	if res.Sources == 0 || res.Delivered == 0 {
		t.Fatalf("episode moved no tuples: sources=%d delivered=%d", res.Sources, res.Delivered)
	}
}

// TestRunEpisodePerturbedLedgerFails closes the loop on the negative test:
// a real episode's snapshot, perturbed by a one-tuple drop undercount, must
// fail the same ledger check the episode just passed.
func TestRunEpisodePerturbedLedgerFails(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live loopback cluster")
	}
	sc, err := Generate(2, 3, Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEpisode(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("baseline episode failed: %v", res.Violation)
	}
	l := res.Ledger
	if err := l.Check(sc.Slack()); err != nil {
		t.Fatalf("baseline ledger rejected: %v", err)
	}
	l.OutboxDropped-- // inject the off-by-one
	if err := l.Check(sc.Slack()); err == nil {
		t.Fatal("perturbed ledger passed: off-by-one drop undercount not caught")
	}
}

func TestRunEpisodeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live loopback cluster")
	}
	sc, err := Generate(3, 4, KillNode)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEpisode(sc, nil)
	if err != nil {
		t.Fatalf("kill episode infrastructure error: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("kill episode violated invariants: %v", res.Violation)
	}
}

package check

import (
	"testing"

	"rodsp/internal/obs"
)

func TestGenerateRecoverDeterministic(t *testing.T) {
	a, err := GenerateRecover(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRecover(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumOps() != b.Graph.NumOps() || a.Wall != b.Wall ||
		a.KillAt != b.KillAt || a.Downtime != b.Downtime || a.Victim != b.Victim {
		t.Fatalf("same seed produced different recover scenarios: %+v vs %+v", a, b)
	}
	if _, err := GenerateRecover(1, 2); err == nil {
		t.Fatal("recover scenario accepted a 2-node cluster")
	}
}

// TestGenerateRecoverVictimInterior pins the placement shape the ledger
// argument depends on: every chain's middle operator lives on the victim,
// and no source-facing (head) or sink-facing (tail) operator does — the
// victim is strictly interior to the durable ack protocol.
func TestGenerateRecoverVictimInterior(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sc, err := GenerateRecover(seed, 3+int(seed%3))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range sc.Graph.Ops() {
			home := sc.Plan.NodeOf[op.ID]
			mid := len(sc.Graph.Consumers(op.Out)) > 0 && !sc.Graph.Stream(op.Inputs[0]).Input()
			if mid && home != sc.Victim {
				t.Fatalf("seed %d: middle op %d placed on %d, not victim %d", seed, op.ID, home, sc.Victim)
			}
			if !mid && home == sc.Victim {
				t.Fatalf("seed %d: head/tail op %d placed on victim %d", seed, op.ID, home)
			}
		}
	}
}

func TestRunRecoverEpisode(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live loopback cluster through a kill and restart")
	}
	ev := obs.NewEventLog(256)
	sc, err := GenerateRecover(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRecoverEpisode(sc, ev)
	if err != nil {
		t.Fatalf("recover episode infrastructure error: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("recover episode violated invariants: %v", res.Violation)
	}
	if res.Sources == 0 || res.Delivered == 0 {
		t.Fatalf("episode moved no tuples: sources=%d delivered=%d", res.Sources, res.Delivered)
	}
	if res.RecoverMillis <= 0 {
		t.Fatalf("restart latency not recorded: %v ms", res.RecoverMillis)
	}
	if res.WALDir != "" {
		t.Fatalf("passing episode left its WAL root behind: %s", res.WALDir)
	}
}

package check

import (
	"fmt"
	"math"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Controller episodes close the paper's loop end to end: a flash-crowd
// ramp on one chain plus a diurnal sine on another, everything initially
// packed onto node 0 of a three-node cluster. With the elastic controller
// enabled the episode must (a) migrate the hot operator autonomously,
// (b) do so *before* any overload onset — the proactive path, driven by
// the trend forecast, not the overload latch — and (c) settle with the
// conservation ledger at residual 0 and zero shed across the autonomous
// migrations. The same episode with the controller disabled must shed or
// overload, or the workload never stressed the cluster and the pass is
// vacuous.

// controllerEpisodeWall is the source drive time of a controller episode.
const controllerEpisodeWall = 3 * time.Second

// GenerateController builds the deterministic controller scenario for one
// seed: the shape is fixed (the assertions depend on it); the seed drives
// the controller's re-placement and trace jitter stays at zero so the
// flash-crowd timing is exact.
func GenerateController(seed int64) (*Scenario, error) {
	s := &Scenario{Seed: seed, Class: Controller, Nodes: 3}

	b := query.NewBuilder()
	in0 := b.Input("flash")
	hot := b.Delay("hot", 0.0004, 1, in0)
	b.Delay("hot_tail", 0.00005, 1, hot)
	in1 := b.Input("wave")
	warm := b.Delay("warm", 0.0009, 1, in1)
	b.Delay("warm_tail", 0.00005, 1, warm)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("check: controller graph: %w", err)
	}
	s.Graph = g

	// Everything starts on node 0 — feasible at the base rates (≈0.7 load),
	// infeasible once the flash crowd peaks (≈1.5 sustained; the node's
	// virtual CPU banks idle credit from the quiet first second, so the
	// overload must outlast that credit), and each chain fits a node alone,
	// so the controller can restore feasibility by spreading the chains.
	plan, err := placement.NewPlan(make([]int, g.NumOps()), s.Nodes)
	if err != nil {
		return nil, fmt.Errorf("check: controller plan: %w", err)
	}
	s.Plan = plan
	s.Caps = []float64{1, 1, 1}
	s.Wall = controllerEpisodeWall

	// flash: 250/s base, ramping linearly to 2000/s over [1.0s, 1.6s] and
	// holding — the flash crowd (peak chain load 0.9). wave: a 600/s
	// diurnal sine (period 1s, ±50%, peak chain load ≈0.86) that the
	// seasonal forecaster must absorb without tripping on its slopes.
	const dt = 0.05
	bins := int(s.Wall.Seconds()/dt) + 1
	flash := make([]float64, bins)
	wave := make([]float64, bins)
	for i := 0; i < bins; i++ {
		t := float64(i) * dt
		switch {
		case t < 1.0:
			flash[i] = 250
		case t < 1.6:
			flash[i] = 250 + (2000-250)*(t-1.0)/0.6
		default:
			flash[i] = 2000
		}
		wave[i] = 600 * (1 + 0.5*math.Sin(2*math.Pi*t))
	}
	s.Traces = append(s.Traces,
		trace.New("flash", dt, flash), trace.New("wave", dt, wave))

	s.Config = engine.NodeConfig{
		BatchMax:    64,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  150 * time.Millisecond,
	}
	return s, nil
}

// controllerConfigFor is the per-episode controller tuning: a 50ms decision
// cadence with a 600ms forecast horizon (12 ticks of lead), so the ramp's
// trend trips re-placement several hundred milliseconds before the load
// point actually leaves the feasible region. SeasonPeriod matches the
// wave's 1s cycle (20 ticks) so the sine feeds the seasonal term instead
// of masquerading as trend.
func controllerConfigFor(seed int64) engine.ControllerConfig {
	return engine.ControllerConfig{
		Interval:       50 * time.Millisecond,
		Horizon:        600 * time.Millisecond,
		Cooldown:       time.Second,
		MaxMoves:       2,
		HeadroomLow:    0.15,
		HysteresisGain: 0.02,
		Samples:        400,
		Stall:          10 * time.Millisecond,
		Seed:           seed,
		SeasonPeriod:   20,
	}
}

// RunControllerEpisode drives the controller scenario once, with the
// elastic controller enabled or disabled, asserting the class's per-arm
// invariants (outbox identities, residual-0 ledger, delivery, coefficient
// conservation across autonomous moves). ev receives the monitor's events;
// the caller inspects it for the cross-arm proactive gate.
func RunControllerEpisode(sc *Scenario, ev *obs.EventLog, enabled bool) (*EpisodeResult, error) {
	if ev == nil {
		ev = obs.NewEventLog(8192)
	}
	res := &EpisodeResult{Scenario: sc}
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(sc.Graph)
	if err != nil {
		return nil, fmt.Errorf("check: controller load model: %w", err)
	}

	cl, err := engine.StartClusterConfig(sc.Caps, sc.Config)
	if err != nil {
		return nil, fmt.Errorf("check: starting cluster: %w", err)
	}
	defer cl.Close()
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	mon := cl.StartMonitor(engine.MonitorConfig{
		Interval:  50 * time.Millisecond,
		Events:    ev,
		LM:        lm,
		Plan:      plan,
		Caps:      mat.Vec(sc.Caps),
		RateAlpha: 0.6,
	})
	defer mon.Close()

	var ctrl *engine.Controller
	if enabled {
		ctrl, err = cl.StartController(controllerConfigFor(sc.Seed))
		if err != nil {
			return nil, fmt.Errorf("check: starting controller: %w", err)
		}
	}

	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)
	inputs := sc.Graph.Inputs()
	type srcOut struct {
		injected int64
		dropped  int64
		err      error
	}
	outs := make([]srcOut, len(inputs))
	done := make(chan int, len(inputs))
	for i, in := range inputs {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		drv := &engine.SourceDriver{
			Stream:  in,
			Trace:   sc.Traces[i],
			Addrs:   dests,
			MaxRate: 5000,
			Count:   mon.SourceCounter(in),
		}
		go func(slot int) {
			n, err := drv.Run(sc.Wall, nil)
			outs[slot] = srcOut{injected: n, dropped: drv.Dropped, err: err}
			done <- slot
		}(i)
	}
	for range inputs {
		<-done
	}
	// Stop deciding before the drain: the workload is over, and the final
	// placement must be stable for the conservation checks below.
	if ctrl != nil {
		ctrl.Close()
	}
	for i := range outs {
		res.Sources += outs[i].injected
		res.SrcDropped += outs[i].dropped
		if outs[i].err != nil {
			return nil, fmt.Errorf("check: source %d: %w", i, outs[i].err)
		}
	}

	if err := cl.AwaitQuiescence(15*time.Second, 100*time.Millisecond); err != nil {
		res.Violation = violation(ev, sc, fmt.Errorf("check: liveness: %w", err))
		return res, nil
	}

	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	res.Delivered = delivered
	if s, ok := cl.Collector.LatencySummary(); ok {
		res.P50Ms, res.P99Ms = s.P50*1000, s.P99*1000
	}
	res.Ledger = Assemble(stats, delivered, res.Sources, res.SrcDropped)

	if err := CheckOutboxes(stats); err != nil {
		res.Violation = violation(ev, sc, err)
		return res, nil
	}
	if err := res.Ledger.Check(0); err != nil {
		res.Violation = violation(ev, sc, err)
		return res, nil
	}
	if res.Delivered == 0 {
		res.Violation = violation(ev, sc, fmt.Errorf("check: no tuple reached the sink (sources=%d)", res.Sources))
		return res, nil
	}
	if ctrl != nil {
		for _, mv := range ctrl.Moves() {
			if mv.OK {
				plan.NodeOf[mv.Op] = mv.To
				res.Migrations++
			}
		}
		if res.Migrations > 0 {
			if err := checkCoefSums(sc.Graph, plan); err != nil {
				res.Violation = violation(ev, sc, err)
				return res, nil
			}
		}
	}
	return res, nil
}

// ControllerPairResult reports the two arms of one controller episode and
// the cross-arm proactive/baseline gate.
type ControllerPairResult struct {
	Scenario *Scenario
	On, Off  *EpisodeResult

	// FirstMoveT is the first successful autonomous migration's event time
	// (seconds); FirstOnsetT the controller arm's first overload onset
	// (0 when the controller kept the cluster out of overload entirely).
	FirstMoveT  float64
	FirstOnsetT float64

	Violation error
}

// RunControllerPair runs the seeded controller episode twice — controller
// on, controller off — and asserts the closed-loop acceptance gate:
//
//   - on-arm: ≥1 autonomous migration, residual-0 ledger, zero shed, and
//     every migration strictly precedes any overload onset (proactive);
//   - off-arm: sheds or overloads, proving the workload genuinely exceeds
//     the static placement (otherwise the on-arm pass is vacuous).
//
// ev (optional) receives an invariant_violation event on failure.
func RunControllerPair(seed int64, ev *obs.EventLog) (*ControllerPairResult, error) {
	sc, err := GenerateController(seed)
	if err != nil {
		return nil, err
	}
	pr := &ControllerPairResult{Scenario: sc}

	onEv := obs.NewEventLog(8192)
	pr.On, err = RunControllerEpisode(sc, onEv, true)
	if err != nil {
		return nil, err
	}
	offEv := obs.NewEventLog(8192)
	pr.Off, err = RunControllerEpisode(sc, offEv, false)
	if err != nil {
		return nil, err
	}

	for _, e := range onEv.Events() {
		switch e.Type {
		case obs.EventControllerMigrate:
			if ok, _ := e.Fields["ok"].(bool); ok && pr.FirstMoveT == 0 {
				pr.FirstMoveT = e.T
			}
		case obs.EventOverloadOnset:
			if pr.FirstOnsetT == 0 {
				pr.FirstOnsetT = e.T
			}
		}
	}

	fail := func(err error) (*ControllerPairResult, error) {
		pr.Violation = violation(ev, sc, err)
		return pr, nil
	}
	if pr.On.Violation != nil {
		return fail(fmt.Errorf("check: controller arm: %w", pr.On.Violation))
	}
	if pr.Off.Violation != nil {
		return fail(fmt.Errorf("check: baseline arm: %w", pr.Off.Violation))
	}
	if pr.On.Migrations == 0 {
		return fail(fmt.Errorf("check: controller never migrated under the flash crowd"))
	}
	if pr.On.Ledger.Shed != 0 {
		return fail(fmt.Errorf("check: controller arm shed %d tuples — migration came too late", pr.On.Ledger.Shed))
	}
	if pr.FirstOnsetT > 0 && pr.FirstOnsetT <= pr.FirstMoveT {
		return fail(fmt.Errorf("check: reactive, not proactive: first onset %.3fs ≤ first migration %.3fs",
			pr.FirstOnsetT, pr.FirstMoveT))
	}
	offOnsets := offEv.Count(obs.EventOverloadOnset)
	if pr.Off.Ledger.Shed == 0 && offOnsets == 0 {
		return fail(fmt.Errorf("check: baseline neither shed nor overloaded — workload too weak to prove anything"))
	}
	return pr, nil
}

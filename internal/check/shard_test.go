package check

import (
	"testing"

	"rodsp/internal/obs"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// TestShardedPair runs the keyed-parallelism acceptance episode: the
// unsharded hot operator must shed, both k=4 sharded arms must settle at
// ledger residual 0 with zero shed (the skew-aware arm across one live
// repartition), and skew-aware slot packing must strictly beat uniform
// hashing's minimum node headroom under Zipf(1.1) keys.
func TestShardedPair(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded episode drives ~6s of wall-clock sources")
	}
	ev := obs.NewEventLog(0)
	pr, err := RunShardedPair(1, 0, ev)
	if err != nil {
		t.Fatalf("infrastructure: %v", err)
	}
	if pr.Violation != nil {
		t.Fatalf("violation: %v", pr.Violation)
	}
	t.Logf("unsharded: shed %d of %d", pr.Unsharded.Ledger.Shed, pr.Unsharded.Sources)
	t.Logf("uniform k=%d: residual %d, min headroom %.3f",
		pr.Scenario.K, pr.Uniform.Ledger.Residual(), pr.HeadroomUniform)
	t.Logf("skew-aware: residual %d, min headroom %.3f", pr.SkewAware.Ledger.Residual(), pr.HeadroomSkew)
}

// The generated sharded scenario is deterministic: the same seed yields the
// same planner decision, placement, and slot profile.
func TestGenerateShardedDeterministic(t *testing.T) {
	a, err := GenerateSharded(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSharded(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 4 || b.K != a.K {
		t.Fatalf("k = %d/%d, want the planner to land on 4", a.K, b.K)
	}
	if len(a.Plan.NodeOf) != len(b.Plan.NodeOf) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.Plan.NodeOf), len(b.Plan.NodeOf))
	}
	for i := range a.Plan.NodeOf {
		if a.Plan.NodeOf[i] != b.Plan.NodeOf[i] {
			t.Fatalf("plans diverge at op %d: %d vs %d", i, a.Plan.NodeOf[i], b.Plan.NodeOf[i])
		}
	}
	for i := range a.SlotRates {
		if a.SlotRates[i] != b.SlotRates[i] {
			t.Fatalf("slot profiles diverge at slot %d", i)
		}
	}
	// The skew-aware table must not do worse than uniform on the profile the
	// episode's headroom gate is judged against.
	skew := workload.AssignSkewAware(a.SlotRates, a.K)
	if got, want := workload.MaxShardLoad(skew, a.SlotRates, a.K),
		workload.MaxShardLoad(query.UniformSlots(a.K), a.SlotRates, a.K); got > want {
		t.Fatalf("skew-aware max shard load %.4f exceeds uniform's %.4f", got, want)
	}
}

package check

import (
	"fmt"
	"os"
	"sync"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
)

// RunRecoverEpisode drives one Recover-class scenario: deploy onto a durable
// cluster (every node gets a WAL directory under a fresh temp root), start
// the sources, kill the interior victim node mid-episode, restart it from
// its WAL directory after the scheduled downtime, drain to full quiescence,
// and assert the crash-spanning invariants:
//
//   - the conservation ledger closes at residual 0 with ZERO slack — the
//     retained-until-ack outboxes cover every tuple in flight to the victim
//     at the kill, and WAL replay covers every tuple the victim had admitted
//     but not finished;
//   - Shed == 0 (recover scenarios are provisioned feasible, so any shed
//     means the recovery path lost provisioning, not the workload);
//   - the sink saw ZERO duplicate deliveries (Collector.SetDedup counts and
//     suppresses them — at-least-once transport, exactly-once observation);
//   - at least one tuple reached the sink.
//
// On success the WAL temp root is removed; on violation it is kept and its
// path reported, so a failing seed's log and checkpoint survive for triage.
func RunRecoverEpisode(sc *Scenario, ev *obs.EventLog) (*EpisodeResult, error) {
	res := &EpisodeResult{Scenario: sc}
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, err
	}

	walRoot, err := os.MkdirTemp("", "rodcheck-wal-")
	if err != nil {
		return nil, fmt.Errorf("check: wal temp root: %w", err)
	}
	res.WALDir = walRoot
	cfg := sc.Config
	cfg.WALDir = walRoot

	cl, err := engine.StartClusterConfig(sc.Caps, cfg)
	if err != nil {
		os.RemoveAll(walRoot)
		return nil, fmt.Errorf("check: starting durable cluster: %w", err)
	}
	defer cl.Close()
	if ev != nil {
		cl.SetEvents(ev)
	}
	cl.Collector.SetDedup(true)
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		os.RemoveAll(walRoot)
		return nil, err
	}
	if err := cl.Start(); err != nil {
		os.RemoveAll(walRoot)
		return nil, err
	}

	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)

	type srcOut struct {
		injected int64
		dropped  int64
		err      error
	}
	inputs := sc.Graph.Inputs()
	outs := make([]srcOut, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		drv := &engine.SourceDriver{
			Stream:  in,
			Trace:   sc.Traces[i],
			Addrs:   dests,
			MaxRate: 5000,
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			n, err := drv.Run(sc.Wall, nil)
			outs[slot] = srcOut{injected: n, dropped: drv.Dropped, err: err}
		}(i)
	}

	// The crash: kill the victim at KillAt, leave it down for Downtime, then
	// restart it from its WAL directory. RestartNode's latency IS the
	// recovery cost (port rebind + manifest redeploy + checkpoint load + WAL
	// replay), recorded for the recovery-time experiment.
	start := time.Now()
	if d := sc.KillAt - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	if err := cl.Controls[sc.Victim].Fault(engine.FaultSpec{Kill: true}); err != nil {
		os.RemoveAll(walRoot)
		return nil, fmt.Errorf("check: killing victim %d: %w", sc.Victim, err)
	}
	time.Sleep(sc.Downtime)
	restartStart := time.Now()
	if err := cl.RestartNode(sc.Victim); err != nil {
		os.RemoveAll(walRoot)
		return nil, fmt.Errorf("check: restarting victim %d: %w", sc.Victim, err)
	}
	res.RecoverMillis = float64(time.Since(restartStart)) / float64(time.Millisecond)

	wg.Wait()
	for i := range outs {
		res.Sources += outs[i].injected
		res.SrcDropped += outs[i].dropped
		if outs[i].err != nil {
			os.RemoveAll(walRoot)
			return nil, fmt.Errorf("check: source %d: %w", i, outs[i].err)
		}
	}

	// Full quiescence is required: the restarted victim must finish its
	// replay, re-acked retention must drain, and every outbox — retained
	// batches included — must empty. A recovery that wedges fails here.
	if err := cl.AwaitQuiescence(20*time.Second, 100*time.Millisecond); err != nil {
		res.Violation = recoverViolation(ev, sc, res, fmt.Errorf("check: liveness across restart: %w", err))
		return res, nil
	}

	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	res.Delivered = delivered
	res.Duplicates = cl.Collector.Duplicates()
	if s, ok := cl.Collector.LatencySummary(); ok {
		res.P50Ms, res.P99Ms = s.P50*1000, s.P99*1000
	}
	res.Ledger = Assemble(stats, delivered, res.Sources, res.SrcDropped)
	if os.Getenv("CHECKDEBUG") != "" {
		for i, s := range stats {
			fmt.Fprintf(os.Stderr, "check: node %d: %+v\n", i, s)
		}
		fmt.Fprintf(os.Stderr, "check: sink duplicates: %d\n", res.Duplicates)
	}

	for i, s := range stats {
		if s == nil {
			res.Violation = recoverViolation(ev, sc, res, fmt.Errorf("check: node %d unreachable after recovery", i))
			return res, nil
		}
	}
	if err := CheckOutboxes(stats); err != nil {
		res.Violation = recoverViolation(ev, sc, res, err)
		return res, nil
	}
	// Zero slack: no sever faults are scheduled, and the kill cannot
	// double-count — an unacked write to the victim stays retained (pending)
	// until the re-send is acked, and the sink filter keeps re-deliveries
	// out of Delivered.
	if err := res.Ledger.Check(0); err != nil {
		res.Violation = recoverViolation(ev, sc, res, err)
		return res, nil
	}
	if res.Ledger.Shed != 0 {
		res.Violation = recoverViolation(ev, sc, res, fmt.Errorf("check: %d tuples shed in a recover episode (must be 0)", res.Ledger.Shed))
		return res, nil
	}
	if res.Duplicates != 0 {
		res.Violation = recoverViolation(ev, sc, res, fmt.Errorf("check: %d duplicate sink deliveries after recovery (must be 0)", res.Duplicates))
		return res, nil
	}
	if res.Delivered == 0 {
		res.Violation = recoverViolation(ev, sc, res, fmt.Errorf("check: no tuple reached the sink (sources=%d)", res.Sources))
		return res, nil
	}
	os.RemoveAll(walRoot)
	res.WALDir = ""
	return res, nil
}

// recoverViolation records the failure and notes the retained WAL root.
func recoverViolation(ev *obs.EventLog, sc *Scenario, res *EpisodeResult, err error) error {
	err = fmt.Errorf("%w (wal dir kept: %s)", err, res.WALDir)
	return violation(ev, sc, err)
}

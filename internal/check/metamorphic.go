package check

import (
	"fmt"
	"math"
	"math/rand"

	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// Metamorphic invariants — properties the paper's math guarantees for *any*
// input, checked on seeded random instances. Unlike the engine episodes,
// these are pure compute-plane checks: fully deterministic given the seed
// (the QMC point set is fixed, so set-inclusion arguments hold exactly
// sample by sample, not just statistically).
//
//   - The ideal placement's feasible-set ratio is exactly 1, and every
//     placement's ratio lies in [0, 1] (Theorem 1: the ideal coefficient
//     matrix attains the maximum feasible set).
//   - Scaling the weight matrix up — globally or any single node's row —
//     can only shrink the feasible set: the ratio is monotone
//     non-increasing, pointwise on the shared QMC sample set.
//   - Feasibility is monotone under rate scaling: if rate point R is
//     feasible then αR is feasible for every α ∈ [0, 1] (the feasible set
//     is downward closed — the property that makes "resilience to load
//     variations" well-defined).
//   - Aggregating operator coefficient rows by node conserves the column
//     sums under any placement and any sequence of migrations (load moves
//     between nodes; it is never created or destroyed).
type MetamorphicConfig struct {
	Seed    int64
	Cases   int // random instances per invariant (default 8)
	Samples int // QMC budget per ratio estimate (default 4096)
}

// RunMetamorphic executes the invariant catalog, returning the first
// violation (nil = all hold).
func RunMetamorphic(cfg MetamorphicConfig) error {
	if cfg.Cases <= 0 {
		cfg.Cases = 8
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4096
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := checkIdealRatio(rng, cfg); err != nil {
		return err
	}
	if err := checkRatioMonotone(rng, cfg); err != nil {
		return err
	}
	if err := checkFeasibilityDownwardClosed(rng, cfg); err != nil {
		return err
	}
	if err := checkPlacementConservation(rng, cfg); err != nil {
		return err
	}
	return nil
}

// checkIdealRatio: the ideal coefficient matrix normalizes to the all-ones
// weight matrix, whose feasible set IS the ideal simplex — ratio exactly 1.
func checkIdealRatio(rng *rand.Rand, cfg MetamorphicConfig) error {
	for i := 0; i < cfg.Cases; i++ {
		n := 2 + rng.Intn(4)
		d := 2 + rng.Intn(4)
		c := randVec(rng, n, 0.5, 2)
		lk := randVec(rng, d, 0.2, 3)
		w, err := feasible.Weights(feasible.IdealCoef(lk, c), c, lk)
		if err != nil {
			return fmt.Errorf("check: ideal weights: %w", err)
		}
		ratio, err := feasible.RatioToIdeal(w, cfg.Samples)
		if err != nil {
			return err
		}
		if ratio != 1 {
			return fmt.Errorf("check: ideal placement ratio = %g, want exactly 1 (n=%d d=%d case %d)", ratio, n, d, i)
		}
	}
	return nil
}

// checkRatioMonotone: ratios live in [0, 1] and scaling weights up (whole
// matrix or one row) never grows the feasible set.
func checkRatioMonotone(rng *rand.Rand, cfg MetamorphicConfig) error {
	for i := 0; i < cfg.Cases; i++ {
		n := 2 + rng.Intn(4)
		d := 2 + rng.Intn(4)
		w := mat.NewMatrix(n, d)
		for k := range w.Data {
			w.Data[k] = 0.3 + rng.Float64()*2.5
		}
		prev := math.Inf(1)
		for _, alpha := range []float64{1, 1.3, 2, 4} {
			ws := w.Clone()
			ws.ScaleInPlace(alpha)
			ratio, err := feasible.RatioToIdeal(ws, cfg.Samples)
			if err != nil {
				return err
			}
			if ratio < 0 || ratio > 1 {
				return fmt.Errorf("check: ratio %g outside [0,1] (case %d, alpha %g)", ratio, i, alpha)
			}
			if ratio > prev {
				return fmt.Errorf("check: ratio grew from %g to %g when scaling weights by %g (case %d)", prev, ratio, alpha, i)
			}
			prev = ratio
		}
		// Single-row scale-up: overloading one node shrinks (or keeps) the set.
		base, err := feasible.RatioToIdeal(w, cfg.Samples)
		if err != nil {
			return err
		}
		row := rng.Intn(n)
		ws := w.Clone()
		r := ws.Row(row)
		for k := range r {
			r[k] *= 1.8
		}
		scaled, err := feasible.RatioToIdeal(ws, cfg.Samples)
		if err != nil {
			return err
		}
		if scaled > base {
			return fmt.Errorf("check: ratio grew from %g to %g when scaling node %d's weights (case %d)", base, scaled, row, i)
		}
	}
	return nil
}

// checkFeasibilityDownwardClosed: L^n R ≤ C and 0 ≤ α ≤ 1 imply
// L^n (αR) ≤ C for non-negative load coefficients.
func checkFeasibilityDownwardClosed(rng *rand.Rand, cfg MetamorphicConfig) error {
	for i := 0; i < cfg.Cases; i++ {
		n := 2 + rng.Intn(4)
		d := 2 + rng.Intn(4)
		ln := mat.NewMatrix(n, d)
		for k := range ln.Data {
			ln.Data[k] = rng.Float64() * 2
		}
		sys := &feasible.System{Ln: ln, C: randVec(rng, n, 0.5, 2)}
		// Scale the all-ones direction onto the feasible boundary's 90%.
		u := sys.Utilizations(onesVec(d))
		umax := u.Max()
		if umax <= 0 {
			continue
		}
		r := make(mat.Vec, d)
		for k := range r {
			r[k] = 0.9 / umax
		}
		if !sys.FeasibleAt(r) {
			return fmt.Errorf("check: constructed rate point infeasible (case %d)", i)
		}
		for _, alpha := range []float64{0.9, 0.5, 0.1, 0} {
			ra := make(mat.Vec, d)
			for k := range r {
				ra[k] = alpha * r[k]
			}
			if !sys.FeasibleAt(ra) {
				return fmt.Errorf("check: feasible set not downward closed: R feasible but %g·R not (case %d)", alpha, i)
			}
		}
	}
	return nil
}

// checkPlacementConservation: ROD placements and arbitrary migration
// sequences conserve the load model's coefficient column sums.
func checkPlacementConservation(rng *rand.Rand, cfg MetamorphicConfig) error {
	for i := 0; i < cfg.Cases; i++ {
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams:      2 + rng.Intn(3),
			OpsPerStream: 3 + rng.Intn(5),
			Seed:         rng.Int63(),
		})
		if err != nil {
			return err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return err
		}
		nodes := 2 + rng.Intn(4)
		caps := onesVec(nodes)
		plan, _, err := core.Place(lm.Coef, caps, core.Config{})
		if err != nil {
			return err
		}
		nodeOf := append([]int(nil), plan.NodeOf...)
		want := lm.CoefSums()
		for step := 0; step <= 5; step++ {
			if step > 0 { // migrate a random operator
				nodeOf[rng.Intn(len(nodeOf))] = rng.Intn(nodes)
			}
			// Aggregate rows into the per-node coefficient matrix, then sum
			// the nodes back — the round trip the migration path exercises.
			nodeAgg := mat.NewMatrix(nodes, lm.D())
			for op := 0; op < lm.Coef.Rows; op++ {
				if nodeOf[op] < 0 || nodeOf[op] >= nodes {
					return fmt.Errorf("check: operator %d unplaced (case %d)", op, i)
				}
				row := lm.Coef.Row(op)
				dst := nodeAgg.Row(nodeOf[op])
				for j := range row {
					dst[j] += row[j]
				}
			}
			got := nodeAgg.ColSums()
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					return fmt.Errorf("check: coefficient sum for var %d drifted to %g (want %g) after %d migrations (case %d)",
						j, got[j], want[j], step, i)
				}
			}
		}
	}
	return nil
}

func randVec(rng *rand.Rand, n int, lo, hi float64) mat.Vec {
	v := make(mat.Vec, n)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

func onesVec(n int) mat.Vec {
	v := make(mat.Vec, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
